package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	indoorpath "indoorpath"
)

func TestParsePoint(t *testing.T) {
	tests := []struct {
		in      string
		x, y    float64
		floor   int
		wantErr bool
	}{
		{"1,2,0", 1, 2, 0, false},
		{"100.5, 50.25, 3", 100.5, 50.25, 3, false},
		{" -4 , 7 , 1 ", -4, 7, 1, false},
		{"1,2", 0, 0, 0, true},
		{"1,2,3,4", 0, 0, 0, true},
		{"a,b,c", 0, 0, 0, true},
		{"1,b,0", 0, 0, 0, true},
		{"1,2,z", 0, 0, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.in, func(t *testing.T) {
			p, err := parsePoint(tc.in)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if err == nil && (p.X != tc.x || p.Y != tc.y || p.Floor != tc.floor) {
				t.Errorf("parsed %v", p)
			}
		})
	}
}

// --- end-to-end CLI runs -------------------------------------------------

// runCLI drives run() in-process and captures both streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// demoVenue is a hall and a shop joined by one door with business
// hours — enough to make every method's behaviour distinguishable.
func demoVenue(t *testing.T) *indoorpath.Venue {
	t.Helper()
	b := indoorpath.NewBuilder("demo")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 20, 10, 0))
	shop := b.AddPartition("shop", indoorpath.PublicPartition, indoorpath.NewRect(20, 0, 30, 10, 0))
	gate := b.AddDoor("gate", indoorpath.PublicDoor, indoorpath.Pt(20, 5, 0),
		indoorpath.MustSchedule("[8:00, 16:00)"))
	b.ConnectBi(gate, hall, shop)
	return b.MustBuild()
}

// demoVenueFile writes the demo venue as JSON for local-mode runs.
func demoVenueFile(t *testing.T) string {
	t.Helper()
	file := filepath.Join(t.TempDir(), "demo.json")
	f, err := os.Create(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := indoorpath.SaveVenue(f, demoVenue(t)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return file
}

func TestRunMethods(t *testing.T) {
	venue := demoVenueFile(t)
	base := []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0"}
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantOut  []string
	}{
		{name: "asyn open", args: []string{"-at", "12:00"},
			wantOut: []string{"path:    (ps, gate, pt)", "length:  23.00 m (1 doors)", "depart:  12:00   arrive: 12:00:17"}},
		{name: "syn open", args: []string{"-at", "12:00", "-method", "syn"},
			wantOut: []string{"path:    (ps, gate, pt)"}},
		{name: "static ignores closure", args: []string{"-at", "20:00", "-method", "static"},
			wantOut: []string{"path:    (ps, gate, pt)"}},
		{name: "asyn closed", args: []string{"-at", "20:00"},
			wantCode: 1, wantOut: []string{"no such routes"}},
		{name: "syn closed", args: []string{"-at", "20:00", "-method", "syn"},
			wantCode: 1, wantOut: []string{"no such routes"}},
		{name: "waiting before opening", args: []string{"-at", "7:00", "-method", "waiting"},
			wantOut: []string{"waiting:", "depart:  7:00"}},
		{name: "waiting after last close", args: []string{"-at", "20:00", "-method", "waiting"},
			wantCode: 1, wantOut: []string{"no such routes"}},
		{name: "verbose stats", args: []string{"-at", "12:00", "-v"},
			wantOut: []string{"stats:   method=ITG/A"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errb := runCLI(t, append(append([]string{}, base...), tc.args...)...)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, out, errb)
			}
			for _, want := range tc.wantOut {
				if !strings.Contains(out, want) {
					t.Fatalf("stdout missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunWorkersMatchesEngine(t *testing.T) {
	venue := demoVenueFile(t)
	base := []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-at", "12:00", "-v"}
	codeA, outA, _ := runCLI(t, base...)
	codeB, outB, _ := runCLI(t, append(append([]string{}, base...), "-workers", "2")...)
	if codeA != 0 || codeB != 0 {
		t.Fatalf("exits = %d, %d", codeA, codeB)
	}
	if outA != outB {
		t.Fatalf("pooled output differs from engine output:\n--- engine\n%s--- pool\n%s", outA, outB)
	}
}

func TestRunSweep(t *testing.T) {
	venue := demoVenueFile(t)
	code, out, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-workers", "2", "-sweep", "6h", "-v")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // 4 rows + cache summary + pool stats
		t.Fatalf("want 4 sweep rows + cache + stats, got:\n%s", out)
	}
	for _, want := range []string{"0:00  no such routes", "12:00", "18:00  no such routes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep missing %q:\n%s", want, out)
		}
	}
	if lines[4] != "cache:   queries=4 exact=0 window=0 searches=4" {
		t.Fatalf("cache line = %q", lines[4])
	}
	if !strings.HasPrefix(lines[5], "pool:    queries=4") {
		t.Fatalf("stats line = %q", lines[5])
	}
}

// TestRunSweepWindow: with -window and one worker the sweep is served
// in departure order, so every same-slot repeat after the first found
// answer is a window hit — demonstrated end to end by the summary line.
func TestRunSweepWindow(t *testing.T) {
	venue := demoVenueFile(t)
	code, out, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-workers", "1", "-sweep", "2h", "-window")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	// Departures 8:00..14:00 cross the gate ([8:00,16:00)): 8:00 is the
	// one search, 10:00/12:00/14:00 ride its validity window.
	if !strings.Contains(out, "cache:   queries=12 exact=0 window=3 searches=9") {
		t.Fatalf("window sweep summary missing:\n%s", out)
	}
	// The found rows are byte-identical to a windowless sweep.
	codeB, outB, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-workers", "1", "-sweep", "2h")
	if codeB != 0 {
		t.Fatalf("exit = %d", codeB)
	}
	rows := func(s string) string {
		var kept []string
		for _, ln := range strings.Split(s, "\n") {
			if !strings.HasPrefix(ln, "cache:") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	if rows(out) != rows(outB) {
		t.Fatalf("window sweep rows differ from exact sweep:\n--- window\n%s--- exact\n%s", out, outB)
	}
	if !strings.Contains(outB, "cache:   queries=12 exact=0 window=0 searches=12") {
		t.Fatalf("exact sweep summary missing:\n%s", outB)
	}
}

func TestRunErrorPaths(t *testing.T) {
	venue := demoVenueFile(t)
	cases := []struct {
		name     string
		args     []string
		wantCode int
		wantErr  string
	}{
		{name: "missing flags", args: []string{"-venue", venue}, wantCode: 2},
		{name: "unknown flag", args: []string{"-nope"}, wantCode: 2},
		{name: "bad from", args: []string{"-venue", venue, "-from", "1,2", "-to", "25,5,0"},
			wantCode: 1, wantErr: "-from"},
		{name: "bad to", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "a,b,c"},
			wantCode: 1, wantErr: "-to"},
		{name: "malformed time", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-at", "25:61"},
			wantCode: 1, wantErr: "-at"},
		{name: "unknown method", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-method", "bfs"},
			wantCode: 1, wantErr: "unknown method"},
		{name: "unknown venue file", args: []string{"-venue", filepath.Join(t.TempDir(), "missing.json"), "-from", "2,5,0", "-to", "25,5,0"},
			wantCode: 1, wantErr: "missing.json"},
		{name: "sweep without workers", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-sweep", "2h"},
			wantCode: 1, wantErr: "-sweep requires -workers"},
		{name: "bad sweep step", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-workers", "2", "-sweep", "zero"},
			wantCode: 1, wantErr: "bad step"},
		{name: "workers with waiting", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-method", "waiting", "-workers", "2"},
			wantCode: 1, wantErr: "not waiting"},
		{name: "window without workers", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-window"},
			wantCode: 1, wantErr: "-window requires -workers"},
		{name: "window with waiting", args: []string{"-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-method", "waiting", "-window"},
			wantCode: 1, wantErr: "not waiting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out, errb := runCLI(t, tc.args...)
			if code != tc.wantCode {
				t.Fatalf("exit = %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, out, errb)
			}
			if tc.wantErr != "" && !strings.Contains(errb, tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, errb)
			}
		})
	}
}

// startServer boots the HTTP daemon stack in-process with the demo
// venue registered as "demo".
func startServer(t *testing.T) *httptest.Server {
	t.Helper()
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{})
	if err := reg.Add("demo", demoVenue(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(indoorpath.NewServer(reg, indoorpath.ServerOptions{}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRunServerModeByteIdentical proves -server output matches local
// mode byte for byte across methods and outcomes.
func TestRunServerModeByteIdentical(t *testing.T) {
	venue := demoVenueFile(t)
	ts := startServer(t)
	cases := []struct {
		name string
		args []string
	}{
		{name: "found", args: []string{"-from", "2,5,0", "-to", "25,5,0", "-at", "12:00"}},
		{name: "found verbose", args: []string{"-from", "2,5,0", "-to", "25,5,0", "-at", "12:00", "-v"}},
		{name: "syn", args: []string{"-from", "2,5,0", "-to", "25,5,0", "-at", "9:30", "-method", "syn", "-v"}},
		{name: "static", args: []string{"-from", "2,5,0", "-to", "25,5,0", "-at", "20:00", "-method", "static"}},
		{name: "no route", args: []string{"-from", "2,5,0", "-to", "25,5,0", "-at", "20:00"}},
		{name: "waiting", args: []string{"-from", "2,5,0", "-to", "25,5,0", "-at", "7:00", "-method", "waiting"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			localCode, localOut, _ := runCLI(t, append([]string{"-venue", venue}, tc.args...)...)
			remoteCode, remoteOut, remoteErr := runCLI(t,
				append([]string{"-server", ts.URL, "-venue", "demo"}, tc.args...)...)
			if remoteCode != localCode {
				t.Fatalf("exit = %d, want %d\nstderr:\n%s", remoteCode, localCode, remoteErr)
			}
			if remoteOut != localOut {
				t.Fatalf("server output differs from local:\n--- local\n%s--- server\n%s", localOut, remoteOut)
			}
		})
	}
}

func TestRunServerModeSweep(t *testing.T) {
	venue := demoVenueFile(t)
	ts := startServer(t)
	_, localOut, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-workers", "2", "-sweep", "6h")
	code, remoteOut, errb := runCLI(t, "-server", ts.URL, "-venue", "demo",
		"-from", "2,5,0", "-to", "25,5,0", "-sweep", "6h")
	if code != 0 {
		t.Fatalf("exit = %d\nstderr:\n%s", code, errb)
	}
	if remoteOut != localOut {
		t.Fatalf("server sweep differs from local:\n--- local\n%s--- server\n%s", localOut, remoteOut)
	}
	// Verbose adds the server pool's counters from /statsz.
	code, remoteOut, _ = runCLI(t, "-server", ts.URL, "-venue", "demo",
		"-from", "2,5,0", "-to", "25,5,0", "-sweep", "6h", "-v")
	if code != 0 || !strings.Contains(remoteOut, "pool:    queries=") {
		t.Fatalf("verbose server sweep:\n%s", remoteOut)
	}
}

func TestRunServerModeErrors(t *testing.T) {
	ts := startServer(t)
	// Unknown venue ID on the server.
	code, _, errb := runCLI(t, "-server", ts.URL, "-venue", "atlantis",
		"-from", "2,5,0", "-to", "25,5,0", "-at", "12:00")
	if code != 1 || !strings.Contains(errb, "unknown venue") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	// A point outside every partition surfaces the engine's message.
	code, _, errb = runCLI(t, "-server", ts.URL, "-venue", "demo",
		"-from", "-99,-99,0", "-to", "25,5,0", "-at", "12:00")
	if code != 1 || !strings.Contains(errb, "not covered by any partition") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	// Server unreachable.
	code, _, errb = runCLI(t, "-server", "http://127.0.0.1:1", "-venue", "demo",
		"-from", "2,5,0", "-to", "25,5,0", "-at", "12:00")
	if code != 1 || errb == "" {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	// -window is a local pool knob; with -server it points at the
	// daemon's flag instead.
	code, _, errb = runCLI(t, "-server", ts.URL, "-venue", "demo",
		"-from", "2,5,0", "-to", "25,5,0", "-window")
	if code != 1 || !strings.Contains(errb, "itspqd -window-cache") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
}

// TestRunSweepShared: with -shared and the static method the whole day
// sweep is one shared-source group — ONE engine search answers every
// departure — and the cache line reports the planner's work.
func TestRunSweepShared(t *testing.T) {
	venue := demoVenueFile(t)
	code, out, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-method", "static", "-workers", "2", "-sweep", "6h", "-shared")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "cache:   queries=4 exact=0 window=0 searches=1 sharedRuns=1 sharedAnswers=4") {
		t.Fatalf("shared static sweep summary missing:\n%s", out)
	}
	// Rows are byte-identical to the unshared sweep.
	codeB, outB, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-method", "static", "-workers", "2", "-sweep", "6h")
	if codeB != 0 {
		t.Fatalf("exit = %d", codeB)
	}
	stripCache := func(s string) string {
		var kept []string
		for _, ln := range strings.Split(s, "\n") {
			if !strings.HasPrefix(ln, "cache:") {
				kept = append(kept, ln)
			}
		}
		return strings.Join(kept, "\n")
	}
	if stripCache(out) != stripCache(outB) {
		t.Fatalf("shared sweep rows differ from unshared:\n--- shared\n%s--- plain\n%s", out, outB)
	}
}

// TestRunSweepMultiTarget: several ';'-separated -to targets sweep as
// one batch with per-target block headers; with -shared every
// departure's fan-out is one engine run.
func TestRunSweepMultiTarget(t *testing.T) {
	venue := demoVenueFile(t)
	code, out, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0;22,8,0",
		"-workers", "2", "-sweep", "6h", "-shared")
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	for _, want := range []string{"target:  25,5,0", "target:  22,8,0",
		"cache:   queries=8 exact=0 window=0 searches=4 sharedRuns=4 sharedAnswers=8"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multi-target sweep missing %q:\n%s", want, out)
		}
	}
	// 2 headers + 8 rows + cache line.
	if lines := strings.Split(strings.TrimRight(out, "\n"), "\n"); len(lines) != 11 {
		t.Fatalf("want 11 output lines, got %d:\n%s", len(lines), out)
	}
}

// TestRunServerModeSweepShared: the multi-target shared sweep through a
// -shared-batch daemon is byte-identical to local -shared mode.
func TestRunServerModeSweepShared(t *testing.T) {
	venue := demoVenueFile(t)
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{SharedBatch: true})
	if err := reg.Add("demo", demoVenue(t)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(indoorpath.NewServer(reg, indoorpath.ServerOptions{}))
	t.Cleanup(ts.Close)

	_, localOut, _ := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0;22,8,0",
		"-workers", "2", "-sweep", "6h", "-shared")
	code, remoteOut, errb := runCLI(t, "-server", ts.URL, "-venue", "demo",
		"-from", "2,5,0", "-to", "25,5,0;22,8,0", "-sweep", "6h")
	if code != 0 {
		t.Fatalf("exit = %d\nstderr:\n%s", code, errb)
	}
	if remoteOut != localOut {
		t.Fatalf("server shared sweep differs from local:\n--- local\n%s--- server\n%s", localOut, remoteOut)
	}
}

// TestRunToEmptySegments: ';'-separated -to lists must reject empty
// segments (trailing ';', "a;;b", a lone ';') with a clear usage error
// instead of silently dropping them and querying the wrong target set.
func TestRunToEmptySegments(t *testing.T) {
	venue := demoVenueFile(t)
	for _, to := range []string{
		"25,5,0;",         // trailing separator
		"25,5,0;;22,8,0",  // double separator
		";25,5,0",         // leading separator
		";",               // nothing but separators
		"25,5,0; ;22,8,0", // blank segment
	} {
		t.Run(to, func(t *testing.T) {
			code, out, errb := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", to,
				"-workers", "2", "-sweep", "6h")
			if code != 1 {
				t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errb)
			}
			if !strings.Contains(errb, "-to") || !strings.Contains(errb, "empty target segment") {
				t.Fatalf("stderr should name the empty -to segment:\n%s", errb)
			}
		})
	}
	// The plain single-target form is untouched.
	if code, out, errb := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", " 25,5,0 ", "-at", "12:00"); code != 0 {
		t.Fatalf("single target with spaces: exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errb)
	}
}

// TestRunSharedFlagErrors: -shared is a local pool knob with its own
// guidance, and multi-target -to requires -sweep.
func TestRunSharedFlagErrors(t *testing.T) {
	venue := demoVenueFile(t)
	ts := startServer(t)
	code, _, errb := runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0", "-shared")
	if code != 1 || !strings.Contains(errb, "-shared requires -workers") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	code, _, errb = runCLI(t, "-server", ts.URL, "-venue", "demo",
		"-from", "2,5,0", "-to", "25,5,0", "-shared")
	if code != 1 || !strings.Contains(errb, "itspqd -shared-batch") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	code, _, errb = runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0;22,8,0",
		"-workers", "2")
	if code != 1 || !strings.Contains(errb, "require -sweep") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
	code, _, errb = runCLI(t, "-venue", venue, "-from", "2,5,0", "-to", "25,5,0",
		"-method", "waiting", "-shared")
	if code != 1 || !strings.Contains(errb, "not waiting") {
		t.Fatalf("exit = %d, stderr:\n%s", code, errb)
	}
}
