package main

import "testing"

func TestParsePoint(t *testing.T) {
	tests := []struct {
		in      string
		x, y    float64
		floor   int
		wantErr bool
	}{
		{"1,2,0", 1, 2, 0, false},
		{"100.5, 50.25, 3", 100.5, 50.25, 3, false},
		{" -4 , 7 , 1 ", -4, 7, 1, false},
		{"1,2", 0, 0, 0, true},
		{"1,2,3,4", 0, 0, 0, true},
		{"a,b,c", 0, 0, 0, true},
		{"1,b,0", 0, 0, 0, true},
		{"1,2,z", 0, 0, 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.in, func(t *testing.T) {
			p, err := parsePoint(tc.in)
			if (err != nil) != tc.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tc.wantErr)
			}
			if err == nil && (p.X != tc.x || p.Y != tc.y || p.Floor != tc.floor) {
				t.Errorf("parsed %v", p)
			}
		})
	}
}
