// Command itspq answers a single ITSPQ(ps, pt, t) query over a venue
// JSON file (see cmd/venuegen).
//
// Usage:
//
//	itspq -venue mall.json -from 100,50,0 -to 900,700,2 -at 12:00
//	itspq -venue figure1.json -from 26,11,0 -to 34,11,0 -at 9:00 -method syn
//	itspq -venue office.json -from 2,3,0 -to 6,24,0 -at 7:30 -method waiting
//	itspq -venue mall.json -from 100,50,0 -to 900,700,2 -workers 8 -sweep 2h
//
// Methods: asyn (default, ITG/A), syn (ITG/S), static (temporal-unaware
// baseline), waiting (earliest arrival with waiting tolerance).
//
// -workers N routes through the concurrent serving pool (indoorpath
// .NewPool) with N batch workers instead of a bare engine; -sweep STEP
// additionally fans the query out over the whole day at the given step
// as one concurrent batch, printing one summary row per departure time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("itspq: ")
	var (
		venueFile = flag.String("venue", "", "venue JSON file (required)")
		from      = flag.String("from", "", "source point x,y,floor (required)")
		to        = flag.String("to", "", "target point x,y,floor (required)")
		atStr     = flag.String("at", "12:00", "query time of day (H:MM)")
		method    = flag.String("method", "asyn", "syn | asyn | static | waiting")
		workers   = flag.Int("workers", 0, "route through the concurrent pool with this many batch workers (0 = bare engine)")
		sweepStr  = flag.String("sweep", "", "with -workers: batch-answer the query across the day at this step (e.g. 2h, 30m)")
		verbose   = flag.Bool("v", false, "print search statistics")
	)
	flag.Parse()
	if *venueFile == "" || *from == "" || *to == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*venueFile)
	if err != nil {
		log.Fatal(err)
	}
	venue, err := indoorpath.LoadVenue(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}

	src, err := parsePoint(*from)
	if err != nil {
		log.Fatalf("-from: %v", err)
	}
	tgt, err := parsePoint(*to)
	if err != nil {
		log.Fatalf("-to: %v", err)
	}
	at, err := indoorpath.ParseTime(*atStr)
	if err != nil {
		log.Fatalf("-at: %v", err)
	}

	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		log.Fatal(err)
	}
	q := indoorpath.Query{Source: src, Target: tgt, At: at}

	var (
		path  *indoorpath.Path
		stats indoorpath.SearchStats
	)
	switch *method {
	case "waiting":
		if *workers > 0 {
			log.Fatal("-workers applies to syn/asyn/static, not waiting")
		}
		if *sweepStr != "" {
			log.Fatal("-sweep applies to syn/asyn/static, not waiting")
		}
		path, err = indoorpath.NewWaitingRouter(g).Route(q)
	case "syn", "asyn", "static":
		m := map[string]indoorpath.Method{
			"syn": indoorpath.MethodSyn, "asyn": indoorpath.MethodAsyn, "static": indoorpath.MethodStatic,
		}[*method]
		if *workers > 0 {
			pool := indoorpath.NewPool(g, indoorpath.PoolOptions{
				Engine:  indoorpath.Options{Method: m},
				Workers: *workers,
			})
			if *sweepStr != "" {
				sweep(pool, q, *sweepStr, *verbose)
				return
			}
			path, stats, err = pool.Route(q)
		} else {
			if *sweepStr != "" {
				log.Fatal("-sweep requires -workers")
			}
			path, stats, err = indoorpath.NewEngine(g, indoorpath.Options{Method: m}).Route(q)
		}
	default:
		log.Fatalf("unknown method %q", *method)
	}
	switch {
	case errors.Is(err, indoorpath.ErrNoRoute):
		fmt.Println("no such routes")
		os.Exit(1)
	case err != nil:
		log.Fatal(err)
	}

	fmt.Printf("path:    %s\n", path.Format(venue))
	fmt.Printf("length:  %.2f m (%d doors)\n", path.Length, path.Hops())
	fmt.Printf("depart:  %v   arrive: %v\n", path.DepartedAt, path.ArrivalAtTgt)
	if path.TotalWait > 0 {
		fmt.Printf("waiting: %v\n", path.TotalWait)
	}
	for i, d := range path.Doors {
		fmt.Printf("  %2d. %-14s at %v\n", i+1, venue.Door(d).Name, path.Arrivals[i])
	}
	if *verbose && *method != "waiting" {
		fmt.Printf("stats:   method=%s pops=%d settled=%d relax=%d checks=%d heapMax=%d est=%dB\n",
			stats.Method, stats.Pops, stats.Settled, stats.Relaxations,
			stats.Checker.Checks, stats.HeapMax, stats.BytesEstimate)
	}
}

// sweep answers the OD pair at every step across the day as one
// concurrent batch through the pool, printing a summary row per
// departure time.
func sweep(pool *indoorpath.ServicePool, q indoorpath.Query, stepStr string, verbose bool) {
	step, err := time.ParseDuration(stepStr)
	if err != nil || step <= 0 {
		log.Fatalf("-sweep: bad step %q", stepStr)
	}
	stepSec := indoorpath.TimeOfDay(step.Seconds())
	var batch []indoorpath.Query
	for at := indoorpath.TimeOfDay(0); at < 24*3600; at += stepSec {
		bq := q
		bq.At = at
		batch = append(batch, bq)
	}
	results := pool.RouteBatch(batch)
	for i, r := range results {
		switch {
		case errors.Is(r.Err, indoorpath.ErrNoRoute):
			fmt.Printf("%8v  no such routes\n", batch[i].At)
		case r.Err != nil:
			log.Fatal(r.Err)
		default:
			fmt.Printf("%8v  %8.2f m  %2d doors  arrive %v\n",
				batch[i].At, r.Path.Length, r.Path.Hops(), r.Path.ArrivalAtTgt)
		}
	}
	if verbose {
		st := pool.Stats()
		fmt.Printf("pool:    queries=%d deduped=%d cacheHits=%d engines=%d\n",
			st.Queries, st.Deduped, st.CacheHits, st.EnginesCreated)
	}
}

func parsePoint(s string) (indoorpath.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return indoorpath.Point{}, fmt.Errorf("want x,y,floor, got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return indoorpath.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return indoorpath.Point{}, err
	}
	floor, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return indoorpath.Point{}, err
	}
	return indoorpath.Pt(x, y, floor), nil
}
