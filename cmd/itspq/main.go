// Command itspq answers a single ITSPQ(ps, pt, t) query over a venue
// JSON file (see cmd/venuegen) or against a running itspqd server.
//
// Usage:
//
//	itspq -venue mall.json -from 100,50,0 -to 900,700,2 -at 12:00
//	itspq -venue figure1.json -from 26,11,0 -to 34,11,0 -at 9:00 -method syn
//	itspq -venue office.json -from 2,3,0 -to 6,24,0 -at 7:30 -method waiting
//	itspq -venue mall.json -from 100,50,0 -to 900,700,2 -workers 8 -sweep 2h
//	itspq -server http://localhost:8080 -venue hospital -from 30,10,0 -to 5,34,0 -at 11:00
//
// Methods: asyn (default, ITG/A), syn (ITG/S), static (temporal-unaware
// baseline), waiting (earliest arrival with waiting tolerance).
//
// -workers N routes through the concurrent serving pool (indoorpath
// .NewPool) with N batch workers instead of a bare engine; -sweep STEP
// additionally fans the query out over the whole day at the given step
// as one concurrent batch, printing one summary row per departure time
// plus a cache summary line (queries, exact hits, window hits, engine
// searches). -window enables the validity-window result cache on the
// pool, so sweep departures inside an already-computed answer's
// validity window are served without a search:
//
//	itspq -venue mall.json -from 100,50,0 -to 900,700,2 -workers 1 -sweep 15m -window
//
// -shared enables the shared-execution batch planner on the pool: the
// sweep batch is partitioned into shared-endpoint groups and each group
// is answered by ONE engine run (the cache line grows sharedRuns /
// sharedAnswers). With -sweep, -to also accepts several targets
// separated by ';' — a multi-target sweep from one source is the
// planner's showcase workload (every departure's fan-out is one
// search):
//
//	itspq -venue mall.json -from 100,50,0 -to "900,700,2;820,640,2;905,80,1" \
//	      -workers 4 -sweep 1m -shared
//
// -server URL sends the query to a running itspqd instead of loading
// the venue locally; -venue then names the venue ID on the server. The
// printed output is byte-identical to local mode, so the CLI doubles
// as a smoke client. -sweep goes through the server's batch endpoint
// (no -workers needed — the server owns its worker pool; start itspqd
// with -shared-batch for server-side shared execution).
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	indoorpath "indoorpath"
	"indoorpath/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so tests can drive the
// CLI end to end in-process. Exit codes: 0 found, 1 no route or error,
// 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("itspq", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		venueFile = fs.String("venue", "", "venue JSON file, or venue ID with -server (required)")
		from      = fs.String("from", "", "source point x,y,floor (required)")
		to        = fs.String("to", "", "target point x,y,floor; with -sweep, several targets separated by ';' (required)")
		atStr     = fs.String("at", "12:00", "query time of day (H:MM)")
		method    = fs.String("method", "asyn", "syn | asyn | static | waiting")
		workers   = fs.Int("workers", 0, "route through the concurrent pool with this many batch workers (0 = bare engine)")
		sweepStr  = fs.String("sweep", "", "with -workers or -server: batch-answer the query across the day at this step (e.g. 2h, 30m)")
		window    = fs.Bool("window", false, "with -workers: enable the validity-window result cache (cross-time cache hits)")
		shared    = fs.Bool("shared", false, "with -workers: enable the shared-execution batch planner (one engine run per shared-endpoint group)")
		serverURL = fs.String("server", "", "itspqd base URL; query the daemon instead of loading the venue locally")
		verbose   = fs.Bool("v", false, "print search statistics")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "itspq: "+format+"\n", a...)
		return 1
	}
	if *venueFile == "" || *from == "" || *to == "" {
		fs.Usage()
		return 2
	}

	src, err := parsePoint(*from)
	if err != nil {
		return fail("-from: %v", err)
	}
	targets, err := parseTargets(*to)
	if err != nil {
		return fail("-to: %v", err)
	}
	tgt := targets[0]
	if len(targets) > 1 && *sweepStr == "" {
		return fail("multiple -to targets require -sweep")
	}
	at, err := indoorpath.ParseTime(*atStr)
	if err != nil {
		return fail("-at: %v", err)
	}
	switch *method {
	case "syn", "asyn", "static", "waiting":
	default:
		return fail("unknown method %q", *method)
	}

	if *serverURL != "" {
		if *window {
			return fail("-window applies to local -workers mode (enable it on the daemon with itspqd -window-cache)")
		}
		if *shared {
			return fail("-shared applies to local -workers mode (enable it on the daemon with itspqd -shared-batch)")
		}
		c := &client{base: strings.TrimSuffix(*serverURL, "/"), venue: *venueFile}
		if *sweepStr != "" {
			return c.sweep(src, targets, *method, *sweepStr, *verbose, stdout, stderr)
		}
		return c.route(src, tgt, at, *method, *verbose, stdout, stderr)
	}

	f, err := os.Open(*venueFile)
	if err != nil {
		return fail("%v", err)
	}
	venue, err := indoorpath.LoadVenue(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fail("%v", err)
	}
	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		return fail("%v", err)
	}
	q := indoorpath.Query{Source: src, Target: tgt, At: at}

	var (
		path  *indoorpath.Path
		stats indoorpath.SearchStats
	)
	switch *method {
	case "waiting":
		if *workers > 0 {
			return fail("-workers applies to syn/asyn/static, not waiting")
		}
		if *sweepStr != "" {
			return fail("-sweep applies to syn/asyn/static, not waiting")
		}
		if *window {
			return fail("-window applies to syn/asyn/static, not waiting")
		}
		if *shared {
			return fail("-shared applies to syn/asyn/static, not waiting")
		}
		path, err = indoorpath.NewWaitingRouter(g).Route(q)
	default:
		m := map[string]indoorpath.Method{
			"syn": indoorpath.MethodSyn, "asyn": indoorpath.MethodAsyn, "static": indoorpath.MethodStatic,
		}[*method]
		if *workers > 0 {
			pool := indoorpath.NewPool(g, indoorpath.PoolOptions{
				Engine:      indoorpath.Options{Method: m},
				Workers:     *workers,
				WindowCache: *window,
				SharedBatch: *shared,
			})
			if *sweepStr != "" {
				return sweep(pool, q, targets, *sweepStr, *verbose, stdout, stderr)
			}
			path, stats, err = pool.Route(q)
		} else {
			if *sweepStr != "" {
				return fail("-sweep requires -workers (or -server)")
			}
			if *window {
				return fail("-window requires -workers (or itspqd -window-cache for -server)")
			}
			if *shared {
				return fail("-shared requires -workers (or itspqd -shared-batch for -server)")
			}
			path, stats, err = indoorpath.NewEngine(g, indoorpath.Options{Method: m}).Route(q)
		}
	}
	switch {
	case errors.Is(err, indoorpath.ErrNoRoute):
		fmt.Fprintln(stdout, "no such routes")
		return 1
	case err != nil:
		return fail("%v", err)
	}

	printPath(stdout, pathLines{
		format:  path.Format(venue),
		length:  path.Length,
		hops:    path.Hops(),
		depart:  path.DepartedAt,
		arrive:  path.ArrivalAtTgt,
		wait:    path.TotalWait,
		doors:   doorLinesOf(venue, path),
		verbose: *verbose && *method != "waiting",
		stats:   stats,
	})
	return 0
}

// pathLines is everything the CLI prints about a found path, shared by
// local and server modes so the two are byte-identical.
type pathLines struct {
	format         string
	length         float64
	hops           int
	depart, arrive indoorpath.TimeOfDay
	wait           indoorpath.TimeOfDay
	doors          []doorLine
	verbose        bool
	stats          indoorpath.SearchStats
}

type doorLine struct {
	name   string
	arrive indoorpath.TimeOfDay
}

func doorLinesOf(venue *indoorpath.Venue, path *indoorpath.Path) []doorLine {
	out := make([]doorLine, len(path.Doors))
	for i, d := range path.Doors {
		out[i] = doorLine{name: venue.Door(d).Name, arrive: path.Arrivals[i]}
	}
	return out
}

func printPath(w io.Writer, p pathLines) {
	fmt.Fprintf(w, "path:    %s\n", p.format)
	fmt.Fprintf(w, "length:  %.2f m (%d doors)\n", p.length, p.hops)
	fmt.Fprintf(w, "depart:  %v   arrive: %v\n", p.depart, p.arrive)
	if p.wait > 0 {
		fmt.Fprintf(w, "waiting: %v\n", p.wait)
	}
	for i, d := range p.doors {
		fmt.Fprintf(w, "  %2d. %-14s at %v\n", i+1, d.name, d.arrive)
	}
	if p.verbose {
		fmt.Fprintf(w, "stats:   method=%s pops=%d settled=%d relax=%d checks=%d heapMax=%d est=%dB\n",
			p.stats.Method, p.stats.Pops, p.stats.Settled, p.stats.Relaxations,
			p.stats.Checker.Checks, p.stats.HeapMax, p.stats.BytesEstimate)
	}
}

// sweep answers every (target, departure) pair of the day sweep as one
// concurrent batch through the pool, printing a summary row per
// departure time (per target, with a target header when several) and a
// cache summary line (how many answers came from the exact cache, the
// validity-window cache, or an engine search — plus the shared-
// execution tallies when the planner shared anything).
func sweep(pool *indoorpath.ServicePool, q indoorpath.Query, targets []indoorpath.Point,
	stepStr string, verbose bool, stdout, stderr io.Writer) int {

	batch, rows, errCode := sweepBatch(q, targets, stepStr, stderr)
	if errCode != 0 {
		return errCode
	}
	results, sum := pool.RouteBatchSummary(batch)
	for i, r := range results {
		if i%rows == 0 && len(targets) > 1 {
			printSweepTarget(stdout, batch[i].Target)
		}
		switch {
		case errors.Is(r.Err, indoorpath.ErrNoRoute):
			printSweepMiss(stdout, batch[i].At)
		case r.Err != nil:
			fmt.Fprintf(stderr, "itspq: %v\n", r.Err)
			return 1
		default:
			printSweepRow(stdout, batch[i].At, r.Path.Length, r.Path.Hops(), r.Path.ArrivalAtTgt)
		}
	}
	printSweepCache(stdout, int64(sum.Queries), int64(sum.ExactHits), int64(sum.WindowHits),
		int64(sum.Searches), int64(sum.SharedRuns), int64(sum.SharedAnswers))
	if verbose {
		fmt.Fprintf(stdout, "pool:    %s\n", pool.Stats())
	}
	return 0
}

// printSweepCache renders the sweep cache summary, shared by local and
// server modes so the two are byte-identical. searches counts engine
// runs; the shared tallies print only when the planner shared work.
func printSweepCache(w io.Writer, queries, exact, window, searches, sharedRuns, sharedAnswers int64) {
	fmt.Fprintf(w, "cache:   queries=%d exact=%d window=%d searches=%d", queries, exact, window, searches)
	if sharedRuns > 0 {
		fmt.Fprintf(w, " sharedRuns=%d sharedAnswers=%d", sharedRuns, sharedAnswers)
	}
	fmt.Fprintln(w)
}

// printSweepTarget renders a multi-target sweep's block header.
func printSweepTarget(w io.Writer, tgt indoorpath.Point) {
	fmt.Fprintf(w, "target:  %g,%g,%d\n", tgt.X, tgt.Y, tgt.Floor)
}

// sweepBatch expands the query across the day at the given step, one
// block of departures per target (target-major, so the printed rows
// group by target). rows is the number of departures per target.
func sweepBatch(q indoorpath.Query, targets []indoorpath.Point, stepStr string, stderr io.Writer) ([]indoorpath.Query, int, int) {
	step, err := time.ParseDuration(stepStr)
	if err != nil || step <= 0 {
		fmt.Fprintf(stderr, "itspq: -sweep: bad step %q\n", stepStr)
		return nil, 0, 1
	}
	stepSec := indoorpath.TimeOfDay(step.Seconds())
	var batch []indoorpath.Query
	rows := 0
	for _, tgt := range targets {
		rows = 0
		for at := indoorpath.TimeOfDay(0); at < 24*3600; at += stepSec {
			bq := q
			bq.Target = tgt
			bq.At = at
			batch = append(batch, bq)
			rows++
		}
	}
	return batch, rows, 0
}

// parseTargets reads one or more ';'-separated x,y,floor points. Empty
// segments (a trailing ';', "a;;b", a lone ';') are rejected rather
// than skipped: silently dropping them would turn a typo into a query
// over the wrong target set.
func parseTargets(s string) ([]indoorpath.Point, error) {
	parts := strings.Split(s, ";")
	out := make([]indoorpath.Point, 0, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty target segment %d in %q (';' separates x,y,floor points)", i+1, s)
		}
		pt, err := parsePoint(part)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func printSweepMiss(w io.Writer, at indoorpath.TimeOfDay) {
	fmt.Fprintf(w, "%8v  no such routes\n", at)
}

func printSweepRow(w io.Writer, at indoorpath.TimeOfDay, length float64, hops int, arrive indoorpath.TimeOfDay) {
	fmt.Fprintf(w, "%8v  %8.2f m  %2d doors  arrive %v\n", at, length, hops, arrive)
}

// client talks to a running itspqd.
type client struct {
	base  string
	venue string
}

// post sends a JSON body and decodes the response into out, mapping
// the server's structured error envelope onto an error.
func (c *client) post(httpMethod, path string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	req, err := http.NewRequest(httpMethod, c.base+path, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *client) get(path string, out any) error {
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *client) do(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var envelope struct {
			Error *server.ErrorDoc `json:"error"`
		}
		if jerr := json.NewDecoder(resp.Body).Decode(&envelope); jerr == nil && envelope.Error != nil {
			return errors.New(envelope.Error.Message)
		}
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// route answers one query through the server, printing exactly what
// local mode would.
func (c *client) route(src, tgt indoorpath.Point, at indoorpath.TimeOfDay, method string, verbose bool, stdout, stderr io.Writer) int {
	req := server.RouteRequest{
		From:   &server.PointDoc{X: src.X, Y: src.Y, Floor: src.Floor},
		To:     &server.PointDoc{X: tgt.X, Y: tgt.Y, Floor: tgt.Floor},
		At:     at.String(),
		Method: method,
	}
	var resp server.RouteResponse
	if err := c.post(http.MethodPost, "/v1/venues/"+c.venue+"/route", req, &resp); err != nil {
		fmt.Fprintf(stderr, "itspq: %v\n", err)
		return 1
	}
	if !resp.Found {
		fmt.Fprintln(stdout, "no such routes")
		return 1
	}
	p := resp.Path
	lines := pathLines{
		format: p.Format,
		length: p.LengthM,
		hops:   p.Hops,
		depart: indoorpath.TimeOfDay(p.DepartSec),
		arrive: indoorpath.TimeOfDay(p.ArriveSec),
		wait:   indoorpath.TimeOfDay(p.WaitSec),
	}
	for _, d := range p.Doors {
		lines.doors = append(lines.doors, doorLine{name: d.Door, arrive: indoorpath.TimeOfDay(d.ArriveSec)})
	}
	if verbose && method != "waiting" && resp.Stats != nil {
		lines.verbose = true
		lines.stats = *resp.Stats
	}
	printPath(stdout, lines)
	return 0
}

// sweep runs the day sweep through the server's batch endpoint.
func (c *client) sweep(src indoorpath.Point, targets []indoorpath.Point, method, stepStr string, verbose bool, stdout, stderr io.Writer) int {
	if method == "waiting" {
		fmt.Fprintln(stderr, "itspq: -sweep applies to syn/asyn/static, not waiting")
		return 1
	}
	batch, rows, errCode := sweepBatch(indoorpath.Query{Source: src}, targets, stepStr, stderr)
	if errCode != 0 {
		return errCode
	}
	req := server.BatchRequest{Method: method}
	for _, q := range batch {
		req.Queries = append(req.Queries, server.RouteRequest{
			From: &server.PointDoc{X: q.Source.X, Y: q.Source.Y, Floor: q.Source.Floor},
			To:   &server.PointDoc{X: q.Target.X, Y: q.Target.Y, Floor: q.Target.Floor},
			At:   q.At.String(),
		})
	}
	var resp server.BatchResponse
	if err := c.post(http.MethodPost, "/v1/venues/"+c.venue+"/route:batch", req, &resp); err != nil {
		fmt.Fprintf(stderr, "itspq: %v\n", err)
		return 1
	}
	if len(resp.Results) != len(batch) {
		fmt.Fprintf(stderr, "itspq: server returned %d results for %d queries\n", len(resp.Results), len(batch))
		return 1
	}
	for i, r := range resp.Results {
		if i%rows == 0 && len(targets) > 1 {
			printSweepTarget(stdout, batch[i].Target)
		}
		switch {
		case r.Error != nil:
			fmt.Fprintf(stderr, "itspq: %s\n", r.Error.Message)
			return 1
		case !r.Found:
			printSweepMiss(stdout, batch[i].At)
		default:
			printSweepRow(stdout, batch[i].At, r.Path.LengthM, r.Path.Hops, indoorpath.TimeOfDay(r.Path.ArriveSec))
		}
	}
	printSweepCache(stdout, int64(resp.Cache.Queries), int64(resp.Cache.ExactHits),
		int64(resp.Cache.WindowHits), int64(resp.Cache.Searches),
		int64(resp.Cache.SharedRuns), int64(resp.Cache.SharedAnswers))
	if verbose {
		var stats server.StatsResponse
		if err := c.get("/statsz", &stats); err != nil {
			fmt.Fprintf(stderr, "itspq: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "pool:    %s\n", stats.Venues[c.venue].Methods[method])
	}
	return 0
}

// parsePoint reads "x,y,floor" — the one syntax shared with the
// server's profile endpoint.
func parsePoint(s string) (indoorpath.Point, error) { return server.ParsePoint(s) }
