// Command itspqreplay replays a deterministic "day in the venue"
// workload against a live ITSPQ daemon and writes a BENCH_replay.json
// report with latency percentiles, engine-search rates, cache/window/
// coalesce provenance and self-check verdicts.
//
// Usage:
//
//	itspqreplay -scenario rush-hour -quick               # self-hosted daemon
//	itspqreplay -scenario flip-storm -addr http://127.0.0.1:8080
//	itspqreplay -list                                    # scenario names
//
// Without -addr the tool self-hosts: it builds the scenario's preset
// venue in process behind an httptest server configured like
// `itspqd -coalesce -shared-batch -window-cache -skeleton-cache` and
// replays against that. With -addr it drives the daemon you started
// (which must serve the scenario's preset under the same ID —
// `itspqd -preset hospital` for the built-in scenarios).
//
// The query stream is a pure function of (scenario, seed): wall-clock
// numbers vary run to run, but two reports with equal
// stream_fingerprint values replayed the identical day.
//
// Exit status: 0 all verdicts pass, 1 a verdict failed or the run
// errored, 2 usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"

	indoorpath "indoorpath"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("itspqreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "", "built-in scenario name: "+strings.Join(indoorpath.ReplayScenarios(), ", "))
		quick    = fs.Bool("quick", false, "10x smaller per-phase query counts (CI smoke variant)")
		seed     = fs.Int64("seed", 0, "override the scenario's stream seed (0 = scenario default)")
		addr     = fs.String("addr", "", "daemon base URL, e.g. http://127.0.0.1:8080 (empty = self-host the scenario's preset in process)")
		out      = fs.String("out", "BENCH_replay.json", "report output path (- = stdout)")
		list     = fs.Bool("list", false, "list built-in scenarios and exit")
		verbose  = fs.Bool("v", false, "per-phase progress on stderr, plus the server-side per-stage latency breakdown and decision-provenance reason tables")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range indoorpath.ReplayScenarios() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}
	if *scenario == "" {
		fmt.Fprintln(stderr, "itspqreplay: need -scenario (or -list)")
		fs.Usage()
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "itspqreplay: "+format+"\n", a...)
		return 1
	}

	sc, err := indoorpath.BuiltinReplayScenario(*scenario, *quick)
	if err != nil {
		return fail("%v", err)
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	base := *addr
	if base == "" {
		ts, err := selfHost(sc.Venue)
		if err != nil {
			return fail("%v", err)
		}
		defer ts.Close()
		base = ts.URL
		fmt.Fprintf(stdout, "itspqreplay: self-hosting preset %s at %s\n", sc.Venue, base)
	}

	opts := indoorpath.ReplayOptions{BaseURL: base, Quick: *quick}
	if *verbose {
		opts.Logf = func(format string, a ...any) {
			fmt.Fprintf(stderr, "itspqreplay: "+format+"\n", a...)
		}
	}
	rep, err := indoorpath.RunReplay(sc, opts)
	if err != nil {
		return fail("%v", err)
	}

	if *out == "-" {
		if err := rep.WriteJSON(stdout); err != nil {
			return fail("%v", err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			return fail("%v", err)
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fail("write %s: %v", *out, werr)
		}
		fmt.Fprintf(stdout, "itspqreplay: wrote %s\n", *out)
	}
	fmt.Fprint(stdout, rep.Summary())
	if *verbose {
		if tbl := rep.StageTable(); tbl != "" {
			fmt.Fprint(stdout, "itspqreplay: server-side stage breakdown\n"+tbl)
		}
		if tbl := rep.ReasonsTable(); tbl != "" {
			fmt.Fprint(stdout, "itspqreplay: decision provenance (miss / solo reasons per phase)\n"+tbl)
		}
		if tbl := rep.HotPairsTable(); tbl != "" {
			fmt.Fprint(stdout, "itspqreplay: hot partition pairs (top movers per phase)\n"+tbl)
		}
		if tbl := rep.EffortTable(); tbl != "" {
			fmt.Fprint(stdout, "itspqreplay: per-search engine effort per phase\n"+tbl)
		}
	}
	if !rep.Pass {
		return 1
	}
	return 0
}

// selfHost boots an in-process daemon serving the scenario's preset,
// configured like `itspqd -coalesce -shared-batch -window-cache
// -skeleton-cache` — the full serving stack the scenarios are written
// to exercise.
func selfHost(preset string) (*httptest.Server, error) {
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{
		WindowCache:   true,
		SkeletonCache: true,
		SharedBatch:   true,
	})
	if _, err := reg.AddPresets(preset); err != nil {
		return nil, err
	}
	srv := indoorpath.NewServer(reg, indoorpath.ServerOptions{Coalesce: true})
	return httptest.NewServer(srv), nil
}
