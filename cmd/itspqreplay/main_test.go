package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	indoorpath "indoorpath"
)

func TestListScenarios(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, stderr %q", code, errb.String())
	}
	for _, name := range indoorpath.ReplayScenarios() {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestUsage(t *testing.T) {
	var out, errb strings.Builder
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit = %d", code)
	}
	if code := run([]string{"-scenario", "nope"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario: exit = %d", code)
	}
}

// TestSelfHostQuickRun is the CLI end-to-end path the CI replay-smoke
// job depends on: self-host the preset, replay the quick flash-crowd
// day, write the report, exit 0 on all-verdicts-pass.
func TestSelfHostQuickRun(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_replay.json")
	var stdout, stderr strings.Builder
	code := run([]string{"-scenario", "flash-crowd", "-quick", "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep indoorpath.ReplayReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v\n%s", err, raw)
	}
	if !rep.Pass || rep.Scenario != "flash-crowd" || !rep.Quick {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].LatencyMs.P99 <= 0 {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if rep.Fingerprint == "" {
		t.Fatal("no stream fingerprint in report")
	}
	if !strings.Contains(stdout.String(), "ALL VERDICTS PASS") {
		t.Fatalf("summary missing verdict line:\n%s", stdout.String())
	}
}
