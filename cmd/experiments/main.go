// Command experiments regenerates the paper's evaluation figures
// (Liu et al., ICDE 2020, Section III) on this machine and prints the
// data series in tabular form.
//
// Usage:
//
//	experiments                 # all four figures at paper scale
//	experiments -fig 4          # Figure 4 only
//	experiments -fig a1         # ablation: lazy vs eager heap init
//	experiments -quick          # reduced scale (smoke test)
//	experiments -csv            # machine-readable output
//	experiments -runs 10 -queries 5 -floors 5 -seed 42
//
// Figures: 4 (time vs |T|), 5 (time vs δs2t), 6 (time vs t),
// 7 (memory vs t). Ablations: a1 (heap init), a3 (distance matrix),
// a5 (floors).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"indoorpath/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		fig     = flag.String("fig", "all", "all | 4 | 5 | 6 | 7 | a1 | a3 | a5")
		quick   = flag.Bool("quick", false, "reduced scale for smoke testing")
		floors  = flag.Int("floors", 5, "mall floors")
		queries = flag.Int("queries", 5, "query instances per setting")
		runs    = flag.Int("runs", 10, "repetitions per query instance")
		seed    = flag.Int64("seed", 42, "generation seed")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		diag    = flag.Bool("diag", false, "append per-cell diagnostics")
	)
	flag.Parse()

	cfg := bench.Config{
		Floors:       *floors,
		QueryCount:   *queries,
		RunsPerQuery: *runs,
		Seed:         *seed,
		Quick:        *quick,
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }
	emit := func(fd *bench.FigureData) {
		if *csv {
			fmt.Printf("# %s\n%s\n", fd.ID, bench.RenderCSV(fd))
		} else {
			fmt.Println(bench.RenderTable(fd))
		}
		if *diag {
			fmt.Println(bench.Summary(fd))
		}
	}

	ran := false
	if want("4") {
		fd, err := bench.RunFig4(cfg)
		exitOn(err)
		emit(fd)
		ran = true
	}
	if want("5") {
		fd, err := bench.RunFig5(cfg)
		exitOn(err)
		emit(fd)
		ran = true
	}
	if want("6") || want("7") {
		f6, f7, err := bench.RunFig6And7(cfg)
		exitOn(err)
		if want("6") {
			emit(f6)
		}
		if want("7") {
			emit(f7)
		}
		ran = true
	}
	if want("a1") {
		fd, err := bench.RunAblationHeapInit(cfg)
		exitOn(err)
		emit(fd)
		ran = true
	}
	if want("a3") {
		fd, err := bench.RunAblationDM(cfg)
		exitOn(err)
		emit(fd)
		ran = true
	}
	if want("a6") {
		fd, err := bench.RunAblationPartitionExpansion(cfg)
		exitOn(err)
		emit(fd)
		exactLen, literalLen, err := bench.PathQualityComparison(cfg)
		exitOn(err)
		fmt.Printf("avg path length: exact %.1f m, literal %.1f m (+%.2f%%)\n\n",
			exactLen, literalLen, 100*(literalLen-exactLen)/exactLen)
		ran = true
	}
	if want("a5") {
		var fls []int
		if *quick {
			fls = []int{1, 2}
		} else {
			fls = []int{1, 3, 5, 7}
		}
		fd, err := bench.RunAblationFloors(cfg, fls)
		exitOn(err)
		emit(fd)
		ran = true
	}
	if !ran {
		log.Fatalf("unknown -fig %q (want all, 4, 5, 6, 7, a1, a3, a5, a6)", *fig)
	}
	if !*csv {
		fmt.Fprintln(os.Stderr, strings.TrimSpace(`
Note: absolute numbers depend on this machine; compare the *shapes*
against the paper (see EXPERIMENTS.md for the recorded comparison).`))
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
