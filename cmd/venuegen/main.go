// Command venuegen generates indoor venues and writes them as JSON.
//
// Usage:
//
//	venuegen -kind mall -floors 5 -checkpoints 8 -seed 42 -out mall.json
//	venuegen -kind paper -out figure1.json
//	venuegen -kind hospital
//	venuegen -kind office
//
// Without -out the document is written to stdout; -stats prints a
// one-line venue summary to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	indoorpath "indoorpath"
	"indoorpath/internal/render"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("venuegen: ")
	var (
		kind        = flag.String("kind", "mall", "venue kind: mall | paper | hospital | office")
		floors      = flag.Int("floors", 5, "mall floors")
		checkpoints = flag.Int("checkpoints", 8, "mall |T| (even)")
		seed        = flag.Int64("seed", 42, "generator seed")
		out         = flag.String("out", "", "output file (default stdout)")
		stats       = flag.Bool("stats", false, "print venue statistics to stderr")
		format      = flag.String("format", "json", "output format: json | svg | dot")
		floor       = flag.Int("floor", 0, "floor to draw (svg format)")
		at          = flag.String("at", "", "colour doors by openness at this time (svg format)")
		lint        = flag.Bool("lint", false, "run consistency checks and print findings to stderr")
	)
	flag.Parse()

	venue, err := buildVenue(*kind, *floors, *checkpoints, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	switch *format {
	case "json":
		err = indoorpath.SaveVenue(w, venue)
	case "svg":
		opts := render.SVGOptions{Floor: *floor, Labels: true, At: -1}
		if *at != "" {
			t, perr := indoorpath.ParseTime(*at)
			if perr != nil {
				log.Fatalf("-at: %v", perr)
			}
			opts.At = t
		}
		err = render.WriteSVG(w, venue, opts)
	case "dot":
		err = render.WriteDOT(w, venue)
	default:
		log.Fatalf("unknown -format %q (want json, svg or dot)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		fmt.Fprintln(os.Stderr, venue.Stats())
		fmt.Fprint(os.Stderr, render.FloorSummary(venue))
	}
	if *lint {
		for _, p := range venue.Lint() {
			fmt.Fprintln(os.Stderr, p)
		}
	}
}

func buildVenue(kind string, floors, checkpoints int, seed int64) (*indoorpath.Venue, error) {
	switch kind {
	case "mall":
		m, err := indoorpath.GenerateMall(indoorpath.MallConfig{
			Floors: floors,
			Seed:   seed,
			ATI:    indoorpath.ATIConfig{CheckpointCount: checkpoints, Seed: seed + 1},
		})
		if err != nil {
			return nil, err
		}
		return m.Venue, nil
	case "paper":
		return indoorpath.PaperFigure1().Venue, nil
	case "hospital":
		return indoorpath.Hospital(), nil
	case "office":
		return indoorpath.Office(), nil
	}
	return nil, fmt.Errorf("unknown venue kind %q", kind)
}
