package main

import "testing"

func TestBuildVenue(t *testing.T) {
	for _, kind := range []string{"paper", "hospital", "office"} {
		v, err := buildVenue(kind, 0, 0, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if v.PartitionCount() == 0 || v.DoorCount() == 0 {
			t.Errorf("%s: empty venue", kind)
		}
	}
	v, err := buildVenue("mall", 1, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.FloorPartitions != 141 {
		t.Errorf("mall floor partitions = %d", st.FloorPartitions)
	}
	if _, err := buildVenue("nope", 1, 8, 7); err == nil {
		t.Error("unknown kind must fail")
	}
	if _, err := buildVenue("mall", 1, 7, 7); err == nil {
		t.Error("odd checkpoint count must fail")
	}
}
