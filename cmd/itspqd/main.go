// Command itspqd is the ITSPQ query daemon: an HTTP/JSON server
// answering indoor shortest-path queries over one or more venues, with
// live door-schedule updates.
//
// Usage:
//
//	itspqd -preset hospital,office                 # built-in venues
//	itspqd -venues ./venues                        # every *.json in a dir
//	itspqd -addr :9000 -preset mall -workers 8     # tuned
//	itspqd -preset mall -coalesce -coalesce-hold 2ms   # cross-request coalescing
//
// -coalesce holds each solo route request for up to -coalesce-hold and
// flushes the accumulated queries as ONE shared-execution batch, so
// shareable singletons arriving on separate requests (same source and
// departure, or static shared destination) cost one engine run
// together instead of one each. It implies -shared-batch.
//
// -skeleton-cache enables the point-free answer layer: the first miss
// between a partition pair stores the pair's door-to-door skeleton
// family, and any later query between the same partitions — different
// points, different departure inside the checkpoint slot — is answered
// by composing first leg + skeleton + last leg ("hit":"skeleton"),
// bit-identical to a fresh engine search or not served at all.
//
// Endpoints (see the package documentation of indoorpath for request
// and response bodies):
//
//	GET  /healthz
//	GET  /buildz
//	GET  /statsz
//	GET  /metricsz
//	GET  /tracez    (filters: ?venue= ?method= ?min_ms= ?outcome=)
//	GET  /loadz
//	GET  /v1/venues
//	POST /v1/venues/{id}/route
//	POST /v1/venues/{id}/route:batch
//	GET  /v1/venues/{id}/profile?from=x,y,floor&to=x,y,floor
//	PUT  /v1/venues/{id}/schedules
//
// -debug-addr starts a second listener serving net/http/pprof under
// /debug/pprof/ — deliberately a separate mux and port, so profiling
// never ships with the public API.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// closes, in-flight requests get ShutdownGrace to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	indoorpath "indoorpath"
)

// ShutdownGrace bounds how long in-flight requests may run after a
// termination signal.
const ShutdownGrace = 10 * time.Second

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("itspqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		venues  = fs.String("venues", "", "directory of venue JSON files (id = file name)")
		presets = fs.String("preset", "", "comma-separated built-in venues: mall, hospital, office, figure1")
		workers = fs.Int("workers", 0, "batch fan-out goroutines per venue pool (0 = GOMAXPROCS)")
		cache   = fs.Int("cache", 0, "result-cache capacity per pool (0 = default, negative = disabled)")
		window  = fs.Bool("window-cache", false, "enable the validity-window temporal result cache (cross-time cache hits)")
		skel    = fs.Bool("skeleton-cache", false, "enable the door-to-door skeleton store (cross-point cache hits: compose answers for any points of a cached partition pair)")
		shared  = fs.Bool("shared-batch", false, "enable the shared-execution batch planner (one engine run answers each same-endpoint batch group)")
		coal    = fs.Bool("coalesce", false, "coalesce concurrent solo route requests into shared engine runs (implies -shared-batch)")
		hold    = fs.Duration("coalesce-hold", 0, "coalescer accumulation window (0 = 2ms default); solo requests wait at most this long for company")
		timeout = fs.Duration("timeout", 0, "per-request timeout (0 = server default, negative = none)")
		debug   = fs.String("debug-addr", "", "optional second listen address serving net/http/pprof (e.g. 127.0.0.1:6060); kept off the serving mux so profiling is never exposed with the API")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "itspqd: "+format+"\n", a...)
		return 1
	}
	if *venues == "" && *presets == "" {
		fmt.Fprintln(stderr, "itspqd: need -venues and/or -preset")
		fs.Usage()
		return 2
	}
	if *hold != 0 && !*coal {
		fmt.Fprintln(stderr, "itspqd: -coalesce-hold requires -coalesce")
		return 2
	}

	// Coalescing flushes through the batch planner; without SharedBatch
	// on the pools a flush could only deduplicate, not share runs.
	reg, err := newRegistry(*venues, *presets, *workers, *cache, *window, *skel, *shared || *coal)
	if err != nil {
		return fail("%v", err)
	}
	// The -venues directory doubles as the base for hot reloads (POST
	// /v1/venues {"dir": ...}); without it, only preset reloads work.
	srv := indoorpath.NewServer(reg, indoorpath.ServerOptions{
		RequestTimeout: *timeout,
		VenueDirBase:   *venues,
		Coalesce:       *coal,
		CoalesceHold:   *hold,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fail("%v", err)
	}
	fmt.Fprintf(stdout, "itspqd: serving %s on http://%s\n",
		strings.Join(reg.IDs(), ", "), ln.Addr())

	if *debug != "" {
		dln, err := net.Listen("tcp", *debug)
		if err != nil {
			ln.Close()
			return fail("debug listener: %v", err)
		}
		defer dln.Close()
		fmt.Fprintf(stdout, "itspqd: debug (pprof) on http://%s/debug/pprof/\n", dln.Addr())
		go func() { _ = http.Serve(dln, debugMux()) }()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return serve(ctx, ln, srv, stdout, stderr)
}

// debugMux builds the profiling mux for -debug-addr. The handlers are
// registered explicitly on a dedicated mux — importing net/http/pprof
// for its side effect would hang them on http.DefaultServeMux, which
// the serving listener must never pick up.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newRegistry loads the requested venues into a fresh registry.
func newRegistry(venuesDir, presets string, workers, cache int, window, skeleton, shared bool) (*indoorpath.VenueRegistry, error) {
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{
		Workers:       workers,
		CacheCapacity: cache,
		WindowCache:   window,
		SkeletonCache: skeleton,
		SharedBatch:   shared,
	})
	if presets != "" {
		if _, err := reg.AddPresets(presets); err != nil {
			return nil, err
		}
	}
	if venuesDir != "" {
		if _, err := reg.LoadDir(venuesDir); err != nil {
			return nil, err
		}
	}
	if reg.Len() == 0 {
		return nil, errors.New("no venues loaded")
	}
	return reg, nil
}

// serve runs the HTTP server until ctx is cancelled, then drains
// in-flight requests for up to ShutdownGrace.
func serve(ctx context.Context, ln net.Listener, h http.Handler, stdout, stderr io.Writer) int {
	hs := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		fmt.Fprintf(stderr, "itspqd: %v\n", err)
		return 1
	case <-ctx.Done():
	}
	fmt.Fprintln(stdout, "itspqd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintf(stderr, "itspqd: shutdown: %v\n", err)
		return 1
	}
	return 0
}
