package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	indoorpath "indoorpath"
)

func TestNewRegistry(t *testing.T) {
	// Presets load under their own IDs.
	reg, err := newRegistry("", "hospital,office", 2, 0, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 2 || got[0] != "hospital" || got[1] != "office" {
		t.Fatalf("IDs = %v", got)
	}

	// A venue directory loads alongside presets.
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "wing.json"))
	if err != nil {
		t.Fatal(err)
	}
	b := indoorpath.NewBuilder("wing")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", indoorpath.PublicPartition, indoorpath.NewRect(10, 0, 20, 10, 0))
	b.ConnectBi(b.AddDoor("d", indoorpath.PublicDoor, indoorpath.Pt(10, 5, 0), nil), hall, room)
	if err := indoorpath.SaveVenue(f, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reg, err = newRegistry(dir, "figure1", 0, 0, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 2 || got[0] != "figure1" || got[1] != "wing" {
		t.Fatalf("IDs = %v", got)
	}

	// window=true reaches the pools: a shifted repeat of the same OD
	// pair is served from the validity-window cache.
	wing, _ := reg.Get("wing")
	pool := wing.Pool(indoorpath.MethodAsyn)
	for _, at := range []indoorpath.TimeOfDay{indoorpath.Clock(12, 0, 0), indoorpath.Clock(13, 0, 0)} {
		if _, _, err := pool.Route(indoorpath.Query{
			Source: indoorpath.Pt(5, 5, 0), Target: indoorpath.Pt(15, 5, 0), At: at,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := pool.Stats(); st.WindowHits != 1 {
		t.Fatalf("window cache not enabled through newRegistry: %v", st)
	}

	// Errors propagate.
	if _, err := newRegistry("", "narnia", 0, 0, false, false); err == nil {
		t.Fatal("unknown preset should fail")
	}
	if _, err := newRegistry(t.TempDir(), "", 0, 0, false, false); err == nil {
		t.Fatal("empty venue dir should fail")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit = %d", code)
	}
	errb.Reset()
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no venues: exit = %d", code)
	}
	if !strings.Contains(errb.String(), "-venues and/or -preset") {
		t.Fatalf("stderr = %q", errb.String())
	}
	if code := run([]string{"-preset", "narnia"}, &out, &errb); code != 1 {
		t.Fatalf("unknown preset: exit = %d", code)
	}
}

// TestServeGracefulShutdown boots the daemon's serve loop on an
// ephemeral port, exercises the API over real HTTP, then cancels the
// context and expects a clean exit.
func TestServeGracefulShutdown(t *testing.T) {
	reg, err := newRegistry("", "hospital", 0, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := indoorpath.NewServer(reg, indoorpath.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- serve(ctx, ln, srv, &out, &errb) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Venues int    `json:"venues"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Venues != 1 {
		t.Fatalf("healthz = %+v", h)
	}

	resp, err = http.Post(base+"/v1/venues/hospital/route", "application/json",
		strings.NewReader(`{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:00"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Found bool `json:"found"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rr.Found {
		t.Fatal("route not found over the daemon")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exit = %d, stderr:\n%s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("stdout = %q", out.String())
	}
}
