package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	indoorpath "indoorpath"
)

func TestNewRegistry(t *testing.T) {
	// Presets load under their own IDs.
	reg, err := newRegistry("", "hospital,office", 2, 0, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 2 || got[0] != "hospital" || got[1] != "office" {
		t.Fatalf("IDs = %v", got)
	}

	// A venue directory loads alongside presets.
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "wing.json"))
	if err != nil {
		t.Fatal(err)
	}
	b := indoorpath.NewBuilder("wing")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", indoorpath.PublicPartition, indoorpath.NewRect(10, 0, 20, 10, 0))
	b.ConnectBi(b.AddDoor("d", indoorpath.PublicDoor, indoorpath.Pt(10, 5, 0), nil), hall, room)
	if err := indoorpath.SaveVenue(f, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reg, err = newRegistry(dir, "figure1", 0, 0, true, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.IDs(); len(got) != 2 || got[0] != "figure1" || got[1] != "wing" {
		t.Fatalf("IDs = %v", got)
	}

	// window=true reaches the pools: a shifted repeat of the same OD
	// pair is served from the validity-window cache.
	wing, _ := reg.Get("wing")
	pool := wing.Pool(indoorpath.MethodAsyn)
	for _, at := range []indoorpath.TimeOfDay{indoorpath.Clock(12, 0, 0), indoorpath.Clock(13, 0, 0)} {
		if _, _, err := pool.Route(indoorpath.Query{
			Source: indoorpath.Pt(5, 5, 0), Target: indoorpath.Pt(15, 5, 0), At: at,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if st := pool.Stats(); st.WindowHits != 1 {
		t.Fatalf("window cache not enabled through newRegistry: %v", st)
	}

	// Errors propagate.
	if _, err := newRegistry("", "narnia", 0, 0, false, false, false); err == nil {
		t.Fatal("unknown preset should fail")
	}
	if _, err := newRegistry(t.TempDir(), "", 0, 0, false, false, false); err == nil {
		t.Fatal("empty venue dir should fail")
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-nope"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit = %d", code)
	}
	errb.Reset()
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no venues: exit = %d", code)
	}
	if !strings.Contains(errb.String(), "-venues and/or -preset") {
		t.Fatalf("stderr = %q", errb.String())
	}
	if code := run([]string{"-preset", "narnia"}, &out, &errb); code != 1 {
		t.Fatalf("unknown preset: exit = %d", code)
	}
	errb.Reset()
	if code := run([]string{"-preset", "hospital", "-coalesce-hold", "5ms"}, &out, &errb); code != 2 {
		t.Fatalf("-coalesce-hold without -coalesce: exit = %d", code)
	}
	if !strings.Contains(errb.String(), "-coalesce-hold requires -coalesce") {
		t.Fatalf("stderr = %q", errb.String())
	}
}

// TestServeGracefulShutdown boots the daemon's serve loop on an
// ephemeral port, exercises the API over real HTTP, then cancels the
// context and expects a clean exit.
func TestServeGracefulShutdown(t *testing.T) {
	reg, err := newRegistry("", "hospital", 0, 0, false, false, false)
	if err != nil {
		t.Fatal(err)
	}
	srv := indoorpath.NewServer(reg, indoorpath.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- serve(ctx, ln, srv, &out, &errb) }()

	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status string `json:"status"`
		Venues int    `json:"venues"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Status != "ok" || h.Venues != 1 {
		t.Fatalf("healthz = %+v", h)
	}

	resp, err = http.Post(base+"/v1/venues/hospital/route", "application/json",
		strings.NewReader(`{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:00"}`))
	if err != nil {
		t.Fatal(err)
	}
	var rr struct {
		Found bool `json:"found"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rr.Found {
		t.Fatal("route not found over the daemon")
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exit = %d, stderr:\n%s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("stdout = %q", out.String())
	}
}

// TestServeCoalesced boots the daemon stack the way `itspqd -preset
// hospital -coalesce` wires it (SharedBatch pools + a coalescing
// server) and proves over real HTTP that two concurrent solo requests
// are answered out of one coalesced flush.
func TestServeCoalesced(t *testing.T) {
	// -coalesce implies -shared-batch on the pools (see run()).
	reg, err := newRegistry("", "hospital", 0, 0, false, false, true)
	if err != nil {
		t.Fatal(err)
	}
	srv := indoorpath.NewServer(reg, indoorpath.ServerOptions{
		Coalesce:     true,
		CoalesceHold: 500 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() { done <- serve(ctx, ln, srv, &out, &errb) }()
	base := "http://" + ln.Addr().String()

	// Two concurrent solo requests, same source and departure: both
	// land in one 500ms hold window and flush together.
	type result struct {
		coalesced bool
		err       error
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			body := `{"from":{"x":30,"y":10,"floor":0},"to":{"x":` +
				[]string{"5", "10"}[i] + `,"y":24,"floor":0},"at":"11:00"}`
			resp, err := http.Post(base+"/v1/venues/hospital/route", "application/json",
				strings.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var rr struct {
				Found     bool `json:"found"`
				Coalesced bool `json:"coalesced"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				results <- result{err: err}
				return
			}
			if !rr.Found {
				results <- result{err: errNotFound}
				return
			}
			results <- result{coalesced: rr.Coalesced}
		}(i)
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if !r.coalesced {
			t.Fatal("concurrent solo request not marked coalesced")
		}
	}

	resp, err := http.Get(base + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Venues map[string]struct {
			Coalesce map[string]struct {
				Groups  int64 `json:"coalesced_groups"`
				Answers int64 `json:"coalesced_answers"`
			} `json:"coalesce"`
		} `json:"venues"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	cs := sr.Venues["hospital"].Coalesce["asyn"]
	if cs.Groups != 1 || cs.Answers != 2 {
		t.Fatalf("coalesce stats = %+v, want one 2-answer group", cs)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("serve exit = %d, stderr:\n%s", code, errb.String())
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not shut down")
	}
}

var errNotFound = errors.New("route not found over the daemon")
