// Hospital: visiting hours as temporal variation. Wards only admit
// visitors 10:00–12:00 and 14:00–18:00 (a split ATI schedule like the
// paper's door d13); the staff area is private and never traversed. The
// example contrasts the paper's no-waiting semantics with the
// waiting-tolerance extension: arriving during the lunch closure, the
// ITSPQ answer is "no route", while the waiting router waits for the
// 14:00 reopening.
//
//	go run ./examples/hospital
package main

import (
	"errors"
	"fmt"
	"log"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)

	venue := indoorpath.Hospital()
	fmt.Println("venue:", venue.Stats())
	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		log.Fatal(err)
	}

	wardID, ok := venue.PartitionByName("ward-3")
	if !ok {
		log.Fatal("ward-3 missing")
	}
	ward := venue.Partition(wardID).Rect.Center()
	lobby := indoorpath.Pt(10, 10, 0)

	engine := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
	waiting := indoorpath.NewWaitingRouter(g)

	fmt.Println("\nLobby → ward-3 across the day:")
	for _, at := range []string{"9:00", "10:30", "12:30", "15:00", "19:00"} {
		t := indoorpath.MustParseTime(at)
		q := indoorpath.Query{Source: lobby, Target: ward, At: t}
		p, _, err := engine.Route(q)
		switch {
		case errors.Is(err, indoorpath.ErrNoRoute):
			fmt.Printf("  %5s: no valid route (outside visiting hours)\n", at)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  %5s: %.1f m via %s, arrive %v\n", at, p.Length, p.Format(venue), p.ArrivalAtTgt)
		}

		wp, werr := waiting.Route(q)
		if werr == nil && wp.TotalWait > 0 {
			fmt.Printf("         with waiting: arrive %v after waiting %v at %s\n",
				wp.ArrivalAtTgt, wp.TotalWait, venue.Door(wp.Doors[len(wp.Doors)-1]).Name)
		}
	}

	// The pharmacy is reachable through the ER at night? No — the
	// pharmacy doors close at 20:00; the ER itself stays open via its
	// own 24 h entrance.
	pharmacyID, _ := venue.PartitionByName("pharmacy")
	pharmacy := venue.Partition(pharmacyID).Rect.Center()
	erID, _ := venue.PartitionByName("emergency")
	er := venue.Partition(erID).Rect.Center()
	fmt.Println("\nNight access (22:00):")
	for name, tgt := range map[string]indoorpath.Point{"pharmacy": pharmacy, "emergency": er} {
		q := indoorpath.Query{Source: lobby, Target: tgt, At: indoorpath.MustParseTime("22:00")}
		p, _, err := engine.Route(q)
		if errors.Is(err, indoorpath.ErrNoRoute) {
			fmt.Printf("  lobby → %s: closed\n", name)
		} else if err != nil {
			log.Fatal(err)
		} else {
			fmt.Printf("  lobby → %s: %.1f m via %s\n", name, p.Length, p.Format(venue))
		}
	}

	// Staff-only areas never appear on visitor paths even when their
	// doors are open.
	staffID, _ := venue.PartitionByName("staff-only")
	q := indoorpath.Query{Source: lobby, Target: pharmacy, At: indoorpath.MustParseTime("11:00")}
	p, _, err := engine.Route(q)
	if err != nil {
		log.Fatal(err)
	}
	for _, part := range p.Partitions {
		if part == staffID {
			log.Fatal("visitor path crossed the staff area!")
		}
	}
	fmt.Printf("\nLobby → pharmacy at 11:00 avoids staff-only: %s (%.1f m)\n", p.Format(venue), p.Length)
}
