// Quickstart: build a tiny venue with the public API, then answer the
// same query at different times of day, showing how temporal variation
// changes the answer.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)

	// A hallway, a café with opening hours, a store-room (private), and
	// a 24 h vending corner reachable the long way round.
	b := indoorpath.NewBuilder("quickstart")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 40, 10, 0))
	cafe := b.AddPartition("cafe", indoorpath.PublicPartition, indoorpath.NewRect(0, 10, 20, 25, 0))
	vending := b.AddPartition("vending", indoorpath.PublicPartition, indoorpath.NewRect(20, 10, 40, 25, 0))
	store := b.AddPartition("store-room", indoorpath.PrivatePartition, indoorpath.NewRect(40, 0, 50, 25, 0))

	cafeDoor := b.AddDoor("cafe-door", indoorpath.PublicDoor, indoorpath.Pt(10, 10, 0),
		indoorpath.MustSchedule("[7:30, 18:00)"))
	sideDoor := b.AddDoor("cafe-vending", indoorpath.PublicDoor, indoorpath.Pt(20, 17, 0),
		indoorpath.MustSchedule("[7:30, 18:00)"))
	vendDoor := b.AddDoor("vending-door", indoorpath.PublicDoor, indoorpath.Pt(30, 10, 0), nil) // 24h
	storeDoor := b.AddDoor("store-door", indoorpath.PrivateDoor, indoorpath.Pt(40, 5, 0), nil)

	b.ConnectBi(cafeDoor, hall, cafe)
	b.ConnectBi(sideDoor, cafe, vending)
	b.ConnectBi(vendDoor, hall, vending)
	b.ConnectBi(storeDoor, hall, store)

	venue, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(g.Stats())

	engine := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
	from := indoorpath.Pt(5, 5, 0) // in the hall
	to := indoorpath.Pt(25, 20, 0) // inside the vending corner
	inCafe := indoorpath.Pt(5, 20, 0)

	for _, at := range []string{"6:00", "12:00", "19:00"} {
		t := indoorpath.MustParseTime(at)
		fmt.Printf("\nITSPQ(hall → vending, %s):\n", at)
		report(engine, venue, indoorpath.Query{Source: from, Target: to, At: t})

		fmt.Printf("ITSPQ(hall → cafe interior, %s):\n", at)
		report(engine, venue, indoorpath.Query{Source: from, Target: inCafe, At: t})
	}
}

func report(e *indoorpath.Engine, v *indoorpath.Venue, q indoorpath.Query) {
	p, _, err := e.Route(q)
	switch {
	case errors.Is(err, indoorpath.ErrNoRoute):
		fmt.Println("  no such routes")
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("  %s  %.1f m, arrive %v\n", p.Format(v), p.Length, p.ArrivalAtTgt)
	}
}
