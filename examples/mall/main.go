// Mall: the paper's evaluation scenario end to end — generate the
// 5-floor synthetic shopping mall (141 partitions / 224 doors per
// floor), generate δs2t-controlled query instances, and answer them
// with both ITG/S and ITG/A at several times of day, comparing search
// effort.
//
//	go run ./examples/mall
package main

import (
	"errors"
	"fmt"
	"log"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)

	mall, err := indoorpath.GenerateMall(indoorpath.MallConfig{
		Floors: 5,
		Seed:   42,
		ATI:    indoorpath.ATIConfig{CheckpointCount: 8, Seed: 43},
	})
	if err != nil {
		log.Fatal(err)
	}
	venue := mall.Venue
	fmt.Println("venue:", venue.Stats())

	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g.Stats())
	fmt.Printf("checkpoints T = %v\n\n", g.Checkpoints().Times())

	queries, err := indoorpath.GenerateQueries(mall, g, indoorpath.QueryConfig{
		S2T: 1500, Count: 3, Seed: 44,
	})
	if err != nil {
		log.Fatal(err)
	}

	syn := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodSyn})
	asy := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})

	for _, at := range []string{"4:00", "8:00", "12:00", "21:00"} {
		t := indoorpath.MustParseTime(at)
		open := venue.OpenDoorCount(t)
		fmt.Printf("== t = %s (%d/%d doors open) ==\n", at, open, venue.DoorCount())
		for i, qi := range queries {
			q := indoorpath.Query{Source: qi.Source, Target: qi.Target, At: t}
			ps, ss, errS := syn.Route(q)
			pa, sa, errA := asy.Route(q)
			switch {
			case errors.Is(errS, indoorpath.ErrNoRoute):
				fmt.Printf("  q%d (δ=%.0f m): no such routes\n", i+1, qi.StaticDist)
			case errS != nil:
				log.Fatal(errS)
			default:
				fmt.Printf("  q%d (δ=%.0f m): %.1f m over %d doors, arrive %v\n",
					i+1, qi.StaticDist, ps.Length, ps.Hops(), ps.ArrivalAtTgt)
			}
			// The two methods must agree; their cost differs.
			if (errS == nil) != (errA == nil) {
				log.Fatalf("method disagreement on q%d", i+1)
			}
			if errS == nil && pa.Length != ps.Length {
				log.Fatalf("length disagreement on q%d", i+1)
			}
			fmt.Printf("      ITG/S: %4d ATI probes   ITG/A: %4d snapshot probes, %d reduced-list expansions\n",
				ss.Checker.ATIProbes, sa.Checker.SnapshotProbes, sa.Checker.PrunedLists)
		}
	}
}
