// Replanning: operating an indoor venue whose hours change — the
// dynamic side of temporal variation. Shows four extensions built on
// the ITSPQ core:
//
//  1. ValidityWindow — how long a computed route stays usable;
//
//  2. DayProfile — how an OD pair's answer evolves across the day;
//
//  3. NearestPartitions — "closest open rooms right now" (the
//     location-based assistance the paper's introduction motivates);
//
//  4. Venue.WithSchedules — what-if re-planning: simulate a lockdown of
//     one wing and re-answer the same queries.
//
//     go run ./examples/replanning
package main

import (
	"errors"
	"fmt"
	"log"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)

	ex := indoorpath.PaperFigure1() // the paper's Figure 1 venue
	venue := ex.Venue
	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		log.Fatal(err)
	}
	engine := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})

	// 1. Route p3 → p4 at 9:00 (the paper's Example 1) and ask how long
	// that answer remains valid.
	q := indoorpath.Query{Source: ex.P3, Target: ex.P4, At: indoorpath.MustParseTime("9:00")}
	p, _, err := engine.Route(q)
	if err != nil {
		log.Fatal(err)
	}
	w, err := indoorpath.ValidityWindow(g, p, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ITSPQ(p3, p4, 9:00) = %s, %.0f m\n", p.Format(venue), p.Length)
	fmt.Printf("  the same route works for departures in %v\n\n", w)

	// 2. Day profile of the pair: when is p4 reachable from p3 at all?
	profile, err := indoorpath.DayProfile(engine, ex.P3, ex.P4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("day profile p3 → p4:")
	for _, e := range profile {
		if e.Reachable {
			fmt.Printf("  [%v, %v): %.0f m over %d door(s)\n", e.Start, e.End, e.Length, e.Hops)
		} else {
			fmt.Printf("  [%v, %v): unreachable\n", e.Start, e.End)
		}
	}

	// 3. Closest open rooms from p1 (in hallway v3) at 7:00 vs 12:00.
	for _, at := range []string{"7:00", "12:00"} {
		near, err := indoorpath.NearestPartitions(g, ex.P1, indoorpath.MustParseTime(at), 3, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nnearest open rooms from p1 at %s:\n", at)
		for _, n := range near {
			fmt.Printf("  %-4s %6.1f m\n", venue.Partition(n.Partition).Name, n.Dist)
		}
	}

	// 4. What-if: lock down d18 (maintenance) and re-answer Example 1.
	d18, _ := venue.DoorByName("d18")
	locked, err := venue.WithSchedules(map[indoorpath.DoorID]indoorpath.Schedule{d18: {}})
	if err != nil {
		log.Fatal(err)
	}
	g2, err := indoorpath.NewGraph(locked)
	if err != nil {
		log.Fatal(err)
	}
	engine2 := indoorpath.NewEngine(g2, indoorpath.Options{Method: indoorpath.MethodAsyn})
	p2, _, err := engine2.Route(q)
	switch {
	case errors.Is(err, indoorpath.ErrNoRoute):
		fmt.Println("\nwith d18 locked: no route at 9:00")
	case err != nil:
		log.Fatal(err)
	default:
		fmt.Printf("\nwith d18 locked: %s, %.1f m (detour)\n", p2.Format(locked), p2.Length)
	}
	// When is the earliest valid departure after 23:30 in the original
	// venue (Example 1's null case)? None before midnight — then probe
	// the lockdown case at 9:00.
	lateQ := q
	lateQ.At = indoorpath.MustParseTime("23:30")
	if _, _, ok := indoorpath.EarliestValidDeparture(engine, lateQ); !ok {
		fmt.Println("after 23:30 no departure works before midnight (paper's null answer)")
	}
}
