// Office: door directionality and the static-baseline failure mode.
// The office fire exit is one-way (exit only); meeting rooms keep core
// hours; the kitchen sits behind a private office, so reaching it means
// going around through the meeting rooms. A temporal-unaware static
// router happily routes through doors that are closed on arrival —
// StaticThenValidate then reports "no route" even though ITSPQ finds a
// valid detour, the paper's motivation for ITSPQ.
//
//	go run ./examples/office
package main

import (
	"errors"
	"fmt"
	"log"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)

	venue := indoorpath.Office()
	fmt.Println("venue:", venue.Stats())
	g, err := indoorpath.NewGraph(venue)
	if err != nil {
		log.Fatal(err)
	}
	engine := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
	static := indoorpath.NewStaticRouter(g)

	kitchenID, _ := venue.PartitionByName("kitchen")
	kitchen := venue.Partition(kitchenID).Rect.Center()
	hallway := indoorpath.Pt(15, 3, 0)

	// During core hours: the way to the kitchen leads through meeting
	// room 1 (the direct door belongs to the private office-1).
	officeID, _ := venue.PartitionByName("office-1")
	for _, at := range []string{"10:00", "20:00"} {
		q := indoorpath.Query{Source: hallway, Target: kitchen, At: indoorpath.MustParseTime(at)}
		p, _, err := engine.Route(q)
		switch {
		case errors.Is(err, indoorpath.ErrNoRoute):
			fmt.Printf("%5s: kitchen unreachable (meeting rooms closed)\n", at)
		case err != nil:
			log.Fatal(err)
		default:
			for _, part := range p.Partitions {
				if part == officeID {
					log.Fatal("path crossed the private office!")
				}
			}
			fmt.Printf("%5s: kitchen via %s (%.1f m)\n", at, p.Format(venue), p.Length)
		}
		// The static baseline ignores hours entirely.
		sp, _, serr := static.Route(q)
		if serr == nil {
			valid := "valid"
			if sp.Validate(g, q) != nil {
				valid = "INVALID at this hour"
			}
			fmt.Printf("       static baseline: %s (%.1f m) — %s\n", sp.Format(venue), sp.Length, valid)
		}
	}

	// Directionality: leaving through the fire exit works at any time,
	// but it cannot be used to come back in.
	outside := hallwayOutside()
	_ = outside
	fireID, _ := venue.DoorByName("fire-exit")
	fire := venue.Door(fireID)
	fmt.Printf("\nfire exit %s: bidirectional=%v (exit only)\n", fire.Name, fire.Bidirectional())

	// Demonstrate one-way enforcement via the mappings.
	hallB, _ := venue.PartitionByName("hall-b")
	if len(venue.NextPartitions(fireID, hallB)) == 0 {
		log.Fatal("fire exit should allow leaving hall-b")
	}
	outdoor := venue.NextPartitions(fireID, hallB)[0]
	if n := venue.NextPartitions(fireID, outdoor); len(n) != 0 {
		log.Fatal("fire exit must not allow re-entry")
	}
	fmt.Println("fire exit permits hall-b → outdoors but not outdoors → hall-b")
}

// hallwayOutside is a point outside the office (documentation only).
func hallwayOutside() indoorpath.Point { return indoorpath.Pt(-5, 3, 0) }
