// Server example: boot the HTTP query daemon stack in-process over the
// hospital preset, answer routes over real HTTP, push a live schedule
// update and watch the answer change, fan a shared-source batch out
// through the shared-execution planner, coalesce concurrent solo
// requests into one engine run, and hot-load a second venue — the
// serving loop of cmd/itspqd in ~100 lines.
//
//	go run ./examples/server
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	indoorpath "indoorpath"
)

func main() {
	log.SetFlags(0)

	// Registry: venue ID -> per-venue serving pools. cmd/itspqd builds
	// the same thing from -venues / -preset flags. SharedBatch turns on
	// the shared-execution planner (itspqd -shared-batch): batch groups
	// with a common endpoint are answered by one engine run each;
	// WindowCache adds the validity-window temporal cache (itspqd
	// -window-cache), whose coverage map /cachez renders below;
	// SkeletonCache adds the point-free door-to-door skeleton store
	// (itspqd -skeleton-cache) the jittered wave below runs against.
	reg := indoorpath.NewVenueRegistry(indoorpath.PoolOptions{
		SharedBatch:   true,
		WindowCache:   true,
		SkeletonCache: true,
	})
	if _, err := reg.AddPresets("hospital"); err != nil {
		log.Fatal(err)
	}
	// Coalesce holds each solo route request for up to CoalesceHold and
	// flushes concurrent arrivals as ONE shared batch (itspqd -coalesce
	// -coalesce-hold 5ms).
	ts := httptest.NewServer(indoorpath.NewServer(reg, indoorpath.ServerOptions{
		Coalesce:     true,
		CoalesceHold: 5 * time.Millisecond,
	}))
	defer ts.Close()
	fmt.Printf("serving %v at %s\n\n", reg.IDs(), ts.URL)

	// ER -> ward-1 during visiting hours: routable.
	route := `{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:00"}`
	show("route at 11:00", call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", route))

	// In the visiting-hours gap: no such routes.
	gap := strings.Replace(route, "11:00", "13:00", 1)
	show("route at 13:00", call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", gap))

	// Live update: extend ward-1 visiting hours across the afternoon
	// gap. One atomic swap per pool — no stale answers, no draining.
	update := `{"updates":{"ward-1-door":["10:00-18:00"]}}`
	show("PUT schedules", call(ts.URL, http.MethodPut, "/v1/venues/hospital/schedules", update))

	// The same 13:00 query now routes.
	show("route at 13:00 after update", call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", gap))

	// Shared execution: one crowd position fanning out to many rooms at
	// one departure. The planner groups the whole batch onto ONE engine
	// search — watch "searches" and "shared_answers" in the cache
	// summary (shared_runs=1 means 1 run answered every miss).
	batch := `{"queries":[
	  {"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:00"},
	  {"from":{"x":30,"y":10,"floor":0},"to":{"x":15,"y":34,"floor":0},"at":"11:00"},
	  {"from":{"x":30,"y":10,"floor":0},"to":{"x":25,"y":34,"floor":0},"at":"11:00"},
	  {"from":{"x":30,"y":10,"floor":0},"to":{"x":35,"y":34,"floor":0},"at":"11:00"}]}`
	batch = strings.ReplaceAll(strings.ReplaceAll(batch, "\n", ""), "\t", "")
	show("shared-source batch", call(ts.URL, http.MethodPost, "/v1/venues/hospital/route:batch", batch))

	// Cross-batch coalescing: the same crowd as SEPARATE concurrent
	// solo requests. They land in one 5ms hold window and flush as one
	// shared run — each response carries "coalesced":true, and the
	// statsz "coalesce" block counts the merged group.
	var wg sync.WaitGroup
	var first string
	for i, tgt := range []string{"5", "15", "25", "35"} {
		wg.Add(1)
		go func(i int, tgt string) {
			defer wg.Done()
			q := `{"from":{"x":30,"y":10,"floor":0},"to":{"x":` + tgt + `,"y":34,"floor":0},"at":"11:30"}`
			resp := call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", q)
			if i == 0 {
				first = resp
			}
		}(i, tgt)
	}
	wg.Wait()
	show("coalesced solo request", first)

	// Point-free answers: a jittered wave — the same ER -> ward-1 crowd,
	// but every walker stands on a DIFFERENT spot, so the exact and
	// window caches (both keyed on endpoint points) never hit. The first
	// route above certified the pair's door-to-door skeleton family;
	// each jittered query is now answered by composition — first leg to
	// the entry door, stored chain, last leg from the anchor door — and
	// carries "hit":"skeleton" with no engine search.
	var jittered string
	for i, pts := range [][2]string{
		{`"x":27,"y":13`, `"x":7,"y":36`},
		{`"x":33,"y":8`, `"x":3,"y":31`},
		{`"x":24,"y":16`, `"x":8,"y":38`},
	} {
		q := `{"from":{` + pts[0] + `,"floor":0},"to":{` + pts[1] + `,"floor":0},"at":"11:00"}`
		resp := call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", q)
		if i == 0 {
			jittered = resp
		}
	}
	show("jittered route (skeleton hit)", jittered)
	if i := strings.LastIndex(jittered, `"hit"`); i >= 0 {
		show("…its provenance", "…"+jittered[i:])
	}

	// Hot venue reload: load another preset into the running daemon.
	show("POST /v1/venues", call(ts.URL, http.MethodPost, "/v1/venues", `{"preset":"office"}`))

	// Serving counters, per venue and method.
	show("statsz", call(ts.URL, http.MethodGet, "/statsz", ""))

	// Observability: "trace": true on a solo route returns the span
	// breakdown inline — decode, hold (coalescer wait), probe (cache),
	// engine, store — with per-stage durations in milliseconds.
	traced := `{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"11:45","trace":true}`
	show("route with inline trace", call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", traced))

	// /tracez keeps the slowest-K requests plus a 1-in-N sample;
	// /metricsz renders indoorpath_request_seconds{venue,method,outcome}
	// and indoorpath_stage_seconds{stage} histograms for Prometheus.
	show("tracez", call(ts.URL, http.MethodGet, "/tracez", ""))
	show("metricsz (request histogram)", grepLines(
		call(ts.URL, http.MethodGet, "/metricsz", ""), "indoorpath_request_seconds_count"))

	// Decision provenance: a miss explains itself inline ("explain":
	// "no_exact_entry", "outside_windows", ...) — a fresh departure has
	// no cached answer, so this response carries the reason; a repeat
	// of it would be an exact hit and carry none.
	miss := `{"from":{"x":30,"y":10,"floor":0},"to":{"x":5,"y":34,"floor":0},"at":"12:10"}`
	missBody := call(ts.URL, http.MethodPost, "/v1/venues/hospital/route", miss)
	if i := strings.LastIndex(missBody, `"explain"`); i >= 0 {
		show("route miss with explain", "…"+missBody[i:])
	}

	// /loadz is the rolling load view the adaptive serving layer steers
	// by: trailing 10s/1m/5m windows per venue and method — arrival
	// rate, hit rates, shareability, coalescer hold utilization — plus
	// per-reason miss/solo tallies. The same derived rates export as
	// indoorpath_load_*{venue,method,window} gauges on /metricsz.
	show("loadz", call(ts.URL, http.MethodGet, "/loadz", ""))
	show("metricsz (load gauges)", grepLines(
		call(ts.URL, http.MethodGet, "/metricsz", ""), "indoorpath_load_arrival_per_sec"))

	// /cachez is the cache-introspection view: exact-cache and
	// window-store occupancy vs capacity with eviction counters, the
	// per-OD-pair window coverage map (day_coverage = share of the 24h
	// departure axis covered by stored validity windows), and the
	// space-saving top-K pair table — which partition pairs dominate
	// the traffic and how well each is served. Strict filters narrow
	// the body: ?venue= / ?method= (typos answer 400, not "everything").
	show("cachez (hospital/asyn)", call(ts.URL, http.MethodGet, "/cachez?venue=hospital&method=asyn", ""))

	// Per-search engine effort rides /metricsz as count-valued
	// histograms: pops, settled, relaxations and temporal checks per
	// engine run — the "did searches get deeper?" axis next to the
	// latency histograms.
	show("metricsz (engine effort)", grepLines(
		call(ts.URL, http.MethodGet, "/metricsz", ""), "indoorpath_engine_effort_pops_count"))
}

// grepLines keeps only the lines of body containing substr.
func grepLines(body, substr string) string {
	var keep []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n  ")
}

func call(base, method, path, body string) string {
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimSpace(string(raw))
}

func show(label, body string) {
	const max = 240
	if len(body) > max {
		body = body[:max] + "…"
	}
	fmt.Printf("%s:\n  %s\n\n", label, body)
}
