package indoorpath_test

import (
	"errors"
	"fmt"

	indoorpath "indoorpath"
)

// ExampleRoute reproduces the paper's Example 1: at 9:00 the valid
// shortest path from p3 to p4 crosses d18 (12 m), because the shorter
// 10 m candidate runs through the private partition v15; at 23:30 d18
// is closed and no valid path exists.
func ExampleRoute() {
	ex := indoorpath.PaperFigure1()

	p, err := indoorpath.Route(ex.Venue, indoorpath.Query{
		Source: ex.P3, Target: ex.P4, At: indoorpath.MustParseTime("9:00"),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ITSPQ(p3, p4, 9:00)  = %s, %.0f m\n", p.Format(ex.Venue), p.Length)

	_, err = indoorpath.Route(ex.Venue, indoorpath.Query{
		Source: ex.P3, Target: ex.P4, At: indoorpath.MustParseTime("23:30"),
	})
	if errors.Is(err, indoorpath.ErrNoRoute) {
		fmt.Println("ITSPQ(p3, p4, 23:30) = null")
	}
	// Output:
	// ITSPQ(p3, p4, 9:00)  = (ps, d18, pt), 12 m
	// ITSPQ(p3, p4, 23:30) = null
}

// ExampleNewBuilder shows venue construction with opening hours and a
// query whose answer depends on the time of day.
func ExampleNewBuilder() {
	b := indoorpath.NewBuilder("kiosk")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 20, 10, 0))
	kiosk := b.AddPartition("kiosk", indoorpath.PublicPartition, indoorpath.NewRect(20, 0, 30, 10, 0))
	door := b.AddDoor("kiosk-door", indoorpath.PublicDoor, indoorpath.Pt(20, 5, 0),
		indoorpath.MustSchedule("[9:00, 17:00)"))
	b.ConnectBi(door, hall, kiosk)
	venue := b.MustBuild()

	g, _ := indoorpath.NewGraph(venue)
	e := indoorpath.NewEngine(g, indoorpath.Options{Method: indoorpath.MethodAsyn})
	for _, at := range []string{"8:00", "12:00"} {
		_, _, err := e.Route(indoorpath.Query{
			Source: indoorpath.Pt(5, 5, 0),
			Target: indoorpath.Pt(25, 5, 0),
			At:     indoorpath.MustParseTime(at),
		})
		if errors.Is(err, indoorpath.ErrNoRoute) {
			fmt.Printf("%s: closed\n", at)
		} else {
			fmt.Printf("%s: open\n", at)
		}
	}
	// Output:
	// 8:00: closed
	// 12:00: open
}

// ExampleNewWaitingRouter contrasts the paper's no-waiting semantics
// with the waiting-tolerance extension: before opening hours the strict
// query fails, while the waiting router waits at the door.
func ExampleNewWaitingRouter() {
	b := indoorpath.NewBuilder("wait")
	hall := b.AddPartition("hall", indoorpath.HallwayPartition, indoorpath.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", indoorpath.PublicPartition, indoorpath.NewRect(20, 0, 30, 10, 0))
	door := b.AddDoor("door", indoorpath.PublicDoor, indoorpath.Pt(20, 5, 0),
		indoorpath.MustSchedule("[8:00, 16:00)"))
	b.ConnectBi(door, hall, room)
	venue := b.MustBuild()

	g, _ := indoorpath.NewGraph(venue)
	q := indoorpath.Query{
		Source: indoorpath.Pt(2, 5, 0),
		Target: indoorpath.Pt(25, 5, 0),
		At:     indoorpath.MustParseTime("7:59"),
	}
	if _, _, err := indoorpath.NewEngine(g, indoorpath.Options{}).Route(q); errors.Is(err, indoorpath.ErrNoRoute) {
		fmt.Println("no-waiting: no valid route at 7:59")
	}
	p, _ := indoorpath.NewWaitingRouter(g).Route(q)
	fmt.Printf("waiting: cross at %v, arrive %v\n", p.Arrivals[0], p.ArrivalAtTgt)
	// Output:
	// no-waiting: no valid route at 7:59
	// waiting: cross at 8:00, arrive 8:00:04
}
