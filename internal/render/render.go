// Package render produces human-readable views of venues and IT-Graphs:
// SVG floor plans (the shape of the paper's Figure 1) and Graphviz DOT
// dumps of the accessibility graph (the shape of Figure 2). Both are
// plain-text formats generated with the standard library only, used by
// cmd/venuegen for debugging and documentation.
package render

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// partitionFill maps partition kinds to SVG fill colours.
var partitionFill = map[model.PartitionKind]string{
	model.PublicPartition:    "#e8f1fb",
	model.PrivatePartition:   "#f6d5d5",
	model.HallwayPartition:   "#f4f4ee",
	model.StairwellPartition: "#ddd2ef",
	model.OutdoorPartition:   "#ffffff",
}

// doorStroke maps door kinds to marker colours.
var doorStroke = map[model.DoorKind]string{
	model.PublicDoor:   "#2c7a2c",
	model.PrivateDoor:  "#b03030",
	model.VirtualDoor:  "#9a9a9a",
	model.StairDoor:    "#6a3fb0",
	model.EntranceDoor: "#20639b",
}

// SVGOptions tune floor-plan rendering.
type SVGOptions struct {
	// Floor selects which floor to draw.
	Floor int
	// Scale is pixels per metre (default keeps the long side near 1000).
	Scale float64
	// At, when non-negative, colours doors by openness at that instant
	// (closed doors render hollow). Negative means "ignore schedules".
	At temporal.TimeOfDay
	// Labels draws partition names.
	Labels bool
}

// WriteSVG renders one floor of the venue as an SVG document.
func WriteSVG(w io.Writer, v *model.Venue, opts SVGOptions) error {
	minX, minY := 0.0, 0.0
	maxX, maxY := 1.0, 1.0
	first := true
	for _, p := range v.Partitions() {
		if p.Rect.Floor != opts.Floor || p.Kind == model.OutdoorPartition || p.Rect.Area() <= 0 {
			continue
		}
		if first {
			minX, minY, maxX, maxY = p.Rect.MinX, p.Rect.MinY, p.Rect.MaxX, p.Rect.MaxY
			first = false
			continue
		}
		minX = min(minX, p.Rect.MinX)
		minY = min(minY, p.Rect.MinY)
		maxX = max(maxX, p.Rect.MaxX)
		maxY = max(maxY, p.Rect.MaxY)
	}
	if first {
		return fmt.Errorf("render: venue has no drawable partitions on floor %d", opts.Floor)
	}
	scale := opts.Scale
	if scale <= 0 {
		long := max(maxX-minX, maxY-minY)
		scale = 1000 / long
	}
	width := (maxX - minX) * scale
	height := (maxY - minY) * scale
	// SVG y grows downwards; flip so the plan reads like the paper's.
	tx := func(x float64) float64 { return (x - minX) * scale }
	ty := func(y float64) float64 { return height - (y-minY)*scale }

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.1f %.1f">`+"\n",
		width+20, height+20, width+20, height+20)
	fmt.Fprintf(&sb, `<g transform="translate(10,10)" font-family="sans-serif">`+"\n")
	for _, p := range v.Partitions() {
		if p.Rect.Floor != opts.Floor || p.Kind == model.OutdoorPartition || p.Rect.Area() <= 0 {
			continue
		}
		fill := partitionFill[p.Kind]
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#555" stroke-width="1"><title>%s (%s)</title></rect>`+"\n",
			tx(p.Rect.MinX), ty(p.Rect.MaxY), p.Rect.Width()*scale, p.Rect.Height()*scale, fill, p.Name, p.Kind)
		if opts.Labels {
			c := p.Rect.Center()
			fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle" fill="#333">%s</text>`+"\n",
				tx(c.X), ty(c.Y), p.Name)
		}
	}
	for _, d := range v.Doors() {
		if d.Pos.Floor != opts.Floor {
			continue
		}
		stroke := doorStroke[d.Kind]
		fill := stroke
		if opts.At >= 0 && !d.OpenAt(opts.At) {
			fill = "none"
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" stroke="%s" stroke-width="1.5"><title>%s %s ATIs=%s</title></circle>`+"\n",
			tx(d.Pos.X), ty(d.Pos.Y), fill, stroke, d.Name, d.Kind, d.ATIs)
	}
	sb.WriteString("</g>\n</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteDOT dumps the venue's accessibility graph in Graphviz DOT form:
// one node per partition, one edge per door (directional doors render
// as directed edges), door names and ATIs as edge labels — the textual
// counterpart of the paper's Figure 2.
func WriteDOT(w io.Writer, v *model.Venue) error {
	var sb strings.Builder
	sb.WriteString("digraph itgraph {\n  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n  edge [fontsize=8];\n")
	for _, p := range v.Partitions() {
		style := ""
		switch p.Kind {
		case model.PrivatePartition:
			style = `, style=filled, fillcolor="#f6d5d5"`
		case model.HallwayPartition:
			style = `, style=filled, fillcolor="#f4f4ee"`
		case model.StairwellPartition:
			style = `, style=filled, fillcolor="#ddd2ef"`
		case model.OutdoorPartition:
			style = `, shape=doublecircle`
		}
		fmt.Fprintf(&sb, "  %q [label=%q%s];\n", p.Name, p.Name, style)
	}
	// Render bidirectional doors as one undirected-style edge (dir=none)
	// and one-way arcs as arrows.
	for _, d := range v.Doors() {
		label := d.Name
		if !d.ATIs.AlwaysOpenAllDay() {
			label += "\\n" + d.ATIs.String()
		}
		seen := map[[2]model.PartitionID]bool{}
		for _, a := range d.Arcs {
			rev := [2]model.PartitionID{a.To, a.From}
			if seen[rev] {
				continue // second arc of a bidirectional pair
			}
			seen[[2]model.PartitionID{a.From, a.To}] = true
			dir := ""
			if !v.CanCross(d.ID, a.To, a.From) {
				dir = "" // keep arrowhead for one-way
			} else {
				dir = ", dir=none"
			}
			fmt.Fprintf(&sb, "  %q -> %q [label=%q%s];\n",
				v.Partition(a.From).Name, v.Partition(a.To).Name, label, dir)
		}
	}
	sb.WriteString("}\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// FloorSummary renders a compact text table of a venue's floors, used
// by cmd/venuegen -stats.
func FloorSummary(v *model.Venue) string {
	type row struct{ parts, doors int }
	rows := map[int]*row{}
	for _, p := range v.Partitions() {
		if p.Kind == model.OutdoorPartition {
			continue
		}
		r := rows[p.Rect.Floor]
		if r == nil {
			r = &row{}
			rows[p.Rect.Floor] = r
		}
		r.parts++
	}
	for _, d := range v.Doors() {
		r := rows[d.Pos.Floor]
		if r == nil {
			r = &row{}
			rows[d.Pos.Floor] = r
		}
		r.doors++
	}
	floors := make([]int, 0, len(rows))
	for f := range rows {
		floors = append(floors, f)
	}
	sort.Ints(floors)
	var sb strings.Builder
	sb.WriteString("floor  partitions  doors\n")
	for _, f := range floors {
		fmt.Fprintf(&sb, "%5d  %10d  %5d\n", f, rows[f].parts, rows[f].doors)
	}
	return sb.String()
}
