package render

import (
	"bytes"
	"strings"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/synth"
	"indoorpath/internal/temporal"
)

func TestWriteSVGPaperFixture(t *testing.T) {
	v := synth.PaperFigure1().Venue
	var buf bytes.Buffer
	err := WriteSVG(&buf, v, SVGOptions{Floor: 0, Labels: true, At: temporal.MustParse("9:00")})
	if err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	// All 17 indoor partitions and 21 doors appear.
	if n := strings.Count(svg, "<rect"); n != 17 {
		t.Errorf("rect count = %d, want 17", n)
	}
	if n := strings.Count(svg, "<circle"); n != 21 {
		t.Errorf("circle count = %d, want 21", n)
	}
	// Closed doors at 9:00 (d4 opens at 9:00 → open; d9 open; d2 open).
	// d14/d17 always open → filled. The count of hollow markers equals
	// closed doors at 9:00.
	closed := 0
	for _, d := range v.Doors() {
		if !d.OpenAt(temporal.MustParse("9:00")) {
			closed++
		}
	}
	if n := strings.Count(svg, `fill="none"`); n != closed {
		t.Errorf("hollow door markers = %d, want %d", n, closed)
	}
	if !strings.Contains(svg, ">v16<") {
		t.Error("labels missing")
	}
}

func TestWriteSVGErrors(t *testing.T) {
	v := synth.PaperFigure1().Venue
	var buf bytes.Buffer
	if err := WriteSVG(&buf, v, SVGOptions{Floor: 7}); err == nil {
		t.Error("empty floor must fail")
	}
}

func TestWriteDOT(t *testing.T) {
	v := synth.PaperFigure1().Venue
	var buf bytes.Buffer
	if err := WriteDOT(&buf, v); err != nil {
		t.Fatal(err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph itgraph {") {
		t.Fatal("not a DOT document")
	}
	// One edge line per door (bidirectional pairs collapse to one).
	if n := strings.Count(dot, "->"); n != 21 {
		t.Errorf("edge count = %d, want 21", n)
	}
	// d3 is one-way: its edge must keep the arrowhead (no dir=none on
	// the d3 line).
	for _, line := range strings.Split(dot, "\n") {
		if strings.Contains(line, `label="d3`) && strings.Contains(line, "dir=none") {
			t.Error("one-way d3 rendered as undirected")
		}
		if strings.Contains(line, `label="d18`) && !strings.Contains(line, "dir=none") {
			t.Error("bidirectional d18 rendered as directed")
		}
	}
	// ATIs on temporal doors.
	if !strings.Contains(dot, "[8:00, 16:00)") {
		t.Error("ATIs missing from edge labels")
	}
	// Outdoors gets the special shape.
	if !strings.Contains(dot, "doublecircle") {
		t.Error("outdoors node style missing")
	}
}

func TestFloorSummary(t *testing.T) {
	b := model.NewBuilder("two-floor")
	h0 := b.AddPartition("h0", model.HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	h1 := b.AddPartition("h1", model.HallwayPartition, geom.NewRect(0, 0, 10, 10, 1))
	sw := b.AddStairwell("sw", geom.NewRect(10, 0, 13, 3, 0))
	lo := b.AddDoor("lo", model.StairDoor, geom.Pt(10, 1, 0), nil)
	hi := b.AddDoor("hi", model.StairDoor, geom.Pt(10, 1, 1), nil)
	b.ConnectBi(lo, h0, sw)
	b.ConnectBi(hi, sw, h1)
	v := b.MustBuild()
	s := FloorSummary(v)
	if !strings.Contains(s, "floor") || !strings.Contains(s, "0") {
		t.Errorf("summary: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 { // header + 2 floors
		t.Errorf("summary lines = %d:\n%s", len(lines), s)
	}
}
