// Package core implements ITSPQ processing (Liu et al., ICDE 2020,
// Section II-B): the door-graph search framework of Algorithm 1 with the
// synchronous (Algorithm 2) and asynchronous (Algorithms 3–4) temporal-
// variation checks, plus the baselines and extensions evaluated in this
// repository (temporal-unaware static search, static-then-validate, an
// earliest-arrival router with waiting, and an exhaustive oracle for
// testing).
package core

import (
	"errors"
	"fmt"
	"strings"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// WalkingSpeedMPS is the paper's human average walking speed, 5 km/h.
const WalkingSpeedMPS = 5.0 * 1000 / 3600

// ErrNoRoute is returned when no valid path exists — the paper's
// "no such routes" / null result (e.g. ITSPQ(p3, p4, 23:30) in
// Example 1).
var ErrNoRoute = errors.New("core: no valid route")

// ErrNotIndoor is returned when a query endpoint lies in no partition.
var ErrNotIndoor = errors.New("core: point is not covered by any partition")

// Query is one ITSPQ(ps, pt, t) instance.
type Query struct {
	Source geom.Point
	Target geom.Point
	At     temporal.TimeOfDay
	// Speed overrides the walking speed in m/s; zero means the paper's
	// 5 km/h.
	Speed float64
}

// speed returns the effective walking speed.
func (q Query) speed() float64 {
	if q.Speed > 0 {
		return q.Speed
	}
	return WalkingSpeedMPS
}

// Path is a valid indoor path from a source point to a target point:
// the door sequence, the partition sequence threading them
// (len(Partitions) == len(Doors)+1), the total walking length, and the
// arrival instant at each door given the query time and walking speed.
type Path struct {
	Source, Target geom.Point
	Doors          []model.DoorID
	Partitions     []model.PartitionID
	Length         float64
	Arrivals       []temporal.TimeOfDay // at each door, same index as Doors
	ArrivalAtTgt   temporal.TimeOfDay
	DepartedAt     temporal.TimeOfDay
	// TotalWait is nonzero only for paths produced by WaitingRouter.
	TotalWait temporal.TimeOfDay
}

// Hops returns the number of doors crossed.
func (p *Path) Hops() int { return len(p.Doors) }

// Format renders the paper's path notation, e.g. "(p3, d18, p4)", with
// door names resolved from the venue.
func (p *Path) Format(v *model.Venue) string {
	var sb strings.Builder
	sb.WriteString("(ps")
	for _, d := range p.Doors {
		sb.WriteString(", ")
		sb.WriteString(v.Door(d).Name)
	}
	sb.WriteString(", pt)")
	return sb.String()
}

// String implements fmt.Stringer.
func (p *Path) String() string {
	return fmt.Sprintf("path{%d doors, %.2fm, arrive %v}", len(p.Doors), p.Length, p.ArrivalAtTgt)
}

// Validate replays the path against the IT-Graph and query semantics,
// returning the first violated rule. It is the independent correctness
// check used by the test suite: connectivity (every hop is a permitted
// arc), temporal validity (every door open at its arrival instant, rule
// 1), privacy (no private partition other than the endpoints', rule 2),
// and internal consistency of Length and Arrivals.
func (p *Path) Validate(g *itgraph.Graph, q Query) error {
	v := g.Venue()
	if len(p.Partitions) != len(p.Doors)+1 {
		return fmt.Errorf("core: malformed path: %d partitions for %d doors", len(p.Partitions), len(p.Doors))
	}
	if len(p.Arrivals) != len(p.Doors) {
		return fmt.Errorf("core: malformed path: %d arrivals for %d doors", len(p.Arrivals), len(p.Doors))
	}
	srcPart, ok := v.Locate(q.Source)
	if !ok || !partitionCovers(v, p.Partitions[0], q.Source) {
		return fmt.Errorf("core: source partition %d does not cover source", p.Partitions[0])
	}
	tgtPart := p.Partitions[len(p.Partitions)-1]
	if !partitionCovers(v, tgtPart, q.Target) {
		return fmt.Errorf("core: target partition %d does not cover target", tgtPart)
	}
	speed := q.speed()

	// Walk the path accumulating distance.
	dist := 0.0
	cur := p.Partitions[0]
	var prevDoor model.DoorID = model.NoDoor
	for i, d := range p.Doors {
		// Leg inside partition cur: from previous anchor to door d.
		if prevDoor == model.NoDoor {
			dist += g.DM().PointToDoor(cur, q.Source, d)
		} else {
			dist += g.DM().Dist(cur, prevDoor, d)
		}
		next := p.Partitions[i+1]
		if !v.CanCross(d, cur, next) {
			return fmt.Errorf("core: hop %d: door %s does not permit %s → %s",
				i, v.Door(d).Name, v.Partition(cur).Name, v.Partition(next).Name)
		}
		// Rule 2: privacy.
		if next != tgtPart && next != srcPart && v.Partition(next).Kind.IsPrivate() {
			return fmt.Errorf("core: hop %d enters private partition %s", i, v.Partition(next).Name)
		}
		// Rule 1: door open at arrival (waiting paths arrive later).
		arr := p.Arrivals[i]
		walkArr := q.At + temporal.TimeOfDay(dist/speed)
		if p.TotalWait == 0 {
			if diff := float64(arr - walkArr); diff > 1e-6 || diff < -1e-6 {
				return fmt.Errorf("core: hop %d arrival %v inconsistent with distance (want %v)", i, arr, walkArr)
			}
		} else if arr < walkArr-1e-6 {
			return fmt.Errorf("core: hop %d arrives before walking time allows", i)
		}
		if !v.Door(d).OpenAt(arr.Mod()) {
			return fmt.Errorf("core: hop %d: door %s closed at %v (ATIs %v)",
				i, v.Door(d).Name, arr.Mod(), v.Door(d).ATIs)
		}
		cur = next
		prevDoor = d
	}
	// Final leg to the target point.
	if prevDoor == model.NoDoor {
		dist += g.DM().PointToPoint(cur, q.Source, q.Target)
	} else {
		dist += g.DM().PointToDoor(cur, q.Target, prevDoor)
	}
	if diff := p.Length - dist; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("core: length %v inconsistent with legs sum %v", p.Length, dist)
	}
	return nil
}

// partitionCovers allows boundary points: the point must be covered by
// the named partition (LocateAll may return several).
func partitionCovers(v *model.Venue, p model.PartitionID, pt geom.Point) bool {
	for _, id := range v.LocateAll(pt) {
		if id == p {
			return true
		}
	}
	return false
}
