package core

import (
	"math"
	"sort"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/pqueue"
	"indoorpath/internal/temporal"
)

// The service-query layer builds the indoor LBS operations the paper's
// introduction motivates (navigation assistance, location-based
// shopping) on top of the ITSPQ machinery: single-source valid
// distances, k-nearest reachable partitions, and day profiles of an OD
// pair.

// DistanceMap is the result of SingleSource: temporally valid shortest
// distances from one point at one departure time.
type DistanceMap struct {
	Source geom.Point
	At     temporal.TimeOfDay
	// Doors maps every reachable door to its valid shortest distance.
	Doors map[model.DoorID]float64
	// Partitions maps every reachable partition to the shortest valid
	// distance to its nearest entering door (the source partition maps
	// to 0).
	Partitions map[model.PartitionID]float64
}

// SingleSource computes temporally valid shortest distances from src at
// departure time at to every reachable door and partition, under the
// same semantics as ITSPQ (doors open on arrival, no waiting, no
// private through-traffic). It is the one-to-all building block for
// kNN and range queries.
func SingleSource(g *itgraph.Graph, src geom.Point, at temporal.TimeOfDay, speed float64) (*DistanceMap, error) {
	v := g.Venue()
	srcPart, ok := v.Locate(src)
	if !ok {
		return nil, ErrNotIndoor
	}
	if speed <= 0 {
		speed = WalkingSpeedMPS
	}
	at = at.Mod()
	checker := NewSynChecker(g)
	checker.Begin(at, speed)

	dm := &DistanceMap{
		Source:     src,
		At:         at,
		Doors:      map[model.DoorID]float64{},
		Partitions: map[model.PartitionID]float64{srcPart: 0},
	}
	prevPart := map[model.DoorID]model.PartitionID{}
	settled := map[model.DoorID]bool{}
	h := pqueue.New(64)

	relax := func(w model.PartitionID, anchor model.DoorID, base float64) {
		for _, dj := range v.LeaveDoors(w) {
			if settled[dj] {
				continue
			}
			var leg float64
			if anchor == model.NoDoor {
				leg = g.DM().PointToDoor(w, src, dj)
			} else {
				leg = g.DM().Dist(w, anchor, dj)
			}
			if math.IsInf(leg, 1) {
				continue
			}
			cand := base + leg
			if !checker.Check(dj, cand) {
				continue
			}
			if old, seen := dm.Doors[dj]; !seen || cand < old {
				dm.Doors[dj] = cand
				prevPart[dj] = w
				h.Push(int32(dj), cand)
			}
		}
	}
	relax(srcPart, model.NoDoor, 0)
	for {
		item, ok := h.Pop()
		if !ok {
			break
		}
		d := model.DoorID(item.Key)
		if settled[d] {
			continue
		}
		settled[d] = true
		base := dm.Doors[d]
		for _, w := range v.NextPartitions(d, prevPart[d]) {
			if old, seen := dm.Partitions[w]; !seen || base < old {
				dm.Partitions[w] = base
			}
			if v.Partition(w).Kind.IsPrivate() && w != srcPart {
				continue // enterable as a destination, not traversable
			}
			relax(w, d, base)
		}
	}
	return dm, nil
}

// Near is one kNN result: a reachable partition with its valid walking
// distance at the query time.
type Near struct {
	Partition model.PartitionID
	Dist      float64
}

// NearestPartitions returns the k nearest partitions (by temporally
// valid walking distance from src at time at) among those accepted by
// filter (nil = public, hallway-free partitions, i.e. rooms/shops).
// Results are sorted by distance. Fewer than k results mean the rest of
// the venue is unreachable at that time.
func NearestPartitions(g *itgraph.Graph, src geom.Point, at temporal.TimeOfDay, k int,
	filter func(model.Partition) bool) ([]Near, error) {

	if filter == nil {
		filter = func(p model.Partition) bool { return p.Kind == model.PublicPartition }
	}
	dm, err := SingleSource(g, src, at, 0)
	if err != nil {
		return nil, err
	}
	v := g.Venue()
	var out []Near
	for p, d := range dm.Partitions {
		if filter(*v.Partition(p)) {
			out = append(out, Near{Partition: p, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Partition < out[j].Partition
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// ProfileEntry is one slot of a day profile: the outcome of the OD pair
// when departing at Start.
type ProfileEntry struct {
	Start, End temporal.TimeOfDay
	Reachable  bool
	Length     float64
	Hops       int
}

// DayProfile answers the OD pair at the start of every checkpoint slot
// of the venue, summarising how the answer evolves over the day (the
// temporal counterpart of a distance profile). Slot boundaries are the
// only instants where the topology changes, though within a slot the
// answer can still drift as walking windows shift; the profile reports
// the slot-start outcome.
func DayProfile(e *Engine, src, tgt geom.Point) ([]ProfileEntry, error) {
	cps := e.Graph().Checkpoints()
	var out []ProfileEntry
	for slot := 0; slot < cps.SlotCount(); slot++ {
		at := cps.SlotStart(slot)
		p, _, err := e.RouteOrNil(Query{Source: src, Target: tgt, At: at})
		if err != nil {
			return nil, err
		}
		entry := ProfileEntry{Start: at, End: cps.SlotEnd(slot)}
		if p != nil {
			entry.Reachable = true
			entry.Length = p.Length
			entry.Hops = p.Hops()
		}
		out = append(out, entry)
	}
	return out, nil
}
