package core

import (
	"fmt"
	"math"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// This file implements shared execution: answering many ITSPQ queries
// that share an endpoint with ONE door-graph search instead of one per
// query (the shared-execution idea of Mahmud et al. applied to the
// ITSPQ framework; see doc.go "Shared execution" for the soundness
// argument). Two primitives:
//
//   - RouteMany: one source, many targets, one departure — a single
//     forward temporal search that keeps expanding past the first
//     target until every grouped target's entry is settled, then
//     reconstructs one path per target.
//   - RouteManyTo: many sources, one target — a single reverse run
//     rooted at the target. Only the static method is grouped (its
//     topology is time-invariant, so reversal is trivially sound); the
//     temporal methods fall back to per-source solo routes.
//
// Both return answers byte-identical to what a solo Engine.Route would
// produce for each query (same TV_Check semantics for syn/asyn/static)
// whenever the query's shortest valid path is unique — the generic
// case, and the condition real venues with irregular geometry satisfy.
// Under an exact float-length tie between distinct door sequences a
// shared run may tie-break differently than the solo heap and return
// the other, equally shortest, answer (both validate; both are
// optimal). This is what lets the serving layer cache and serve shared
// answers interchangeably with solo results. Targets (or sources) the shared
// run cannot soundly cover — private endpoint partitions, whose rule-2
// exemption is query-specific, or any query under the
// SinglePartitionExpansion ablation, whose answers are not
// expansion-order-free — are answered by internal per-query fallback
// searches and flagged Solo.

// ManyOutcome is one query's answer from a shared run. Path and Err are
// exactly what a solo Engine.Route would have returned for the query;
// Stats are the statistics of the run that produced the answer (the one
// shared search for grouped queries, the individual search for Solo
// fallbacks), with Found/PathHops/PathLength set per outcome.
type ManyOutcome struct {
	Path  *Path
	Stats SearchStats
	Err   error
	// Solo reports that this outcome came from an internal per-query
	// fallback search rather than the shared run (private endpoint
	// partition, SinglePartitionExpansion, or a temporal-method
	// RouteManyTo). Callers metering engine work count one search per
	// Solo outcome plus one for the shared run (if any non-Solo,
	// non-error outcome exists).
	Solo bool
}

// sharedTarget pairs a grouped target with its located partition.
type sharedTarget struct {
	idx  int
	pt   geom.Point
	part model.PartitionID
}

// RouteMany answers ITSPQ(src, targets[j], at) for every target with at
// most one shared forward search plus per-target fallbacks (see
// ManyOutcome.Solo). Outcomes align positionally with targets, each
// byte-identical to a solo Engine.Route of the same query. speed <= 0
// means the paper's walking speed, mirroring Query.Speed.
func (e *Engine) RouteMany(src geom.Point, targets []geom.Point, at temporal.TimeOfDay, speed float64) []ManyOutcome {
	out := make([]ManyOutcome, len(targets))
	name := e.checker.Name()
	srcPart, ok := e.v.Locate(src)
	if !ok {
		err := fmt.Errorf("%w: source %v", ErrNotIndoor, src)
		for j := range out {
			out[j] = ManyOutcome{Stats: SearchStats{Method: name}, Err: err}
		}
		return out
	}
	var shared []sharedTarget
	var solo []int
	for j, pt := range targets {
		part, located := e.v.Locate(pt)
		switch {
		case !located:
			out[j] = ManyOutcome{Stats: SearchStats{Method: name},
				Err: fmt.Errorf("%w: target %v", ErrNotIndoor, pt)}
		case e.opts.SinglePartitionExpansion || (e.v.Partition(part).Kind.IsPrivate() && part != srcPart):
			// A private target partition is exempt from rule 2 only for
			// its own query, so the shared expansion would be query-
			// specific; the ablation's answers depend on expansion order.
			// Both go to byte-identical-by-construction solo searches.
			solo = append(solo, j)
		default:
			shared = append(shared, sharedTarget{idx: j, pt: pt, part: part})
		}
	}
	if len(shared) > 0 {
		e.routeShared(src, srcPart, shared, at, speed, out)
	}
	for _, j := range solo {
		p, st, err := e.Route(Query{Source: src, Target: targets[j], At: at, Speed: speed})
		out[j] = ManyOutcome{Path: p, Stats: st, Err: err, Solo: true}
	}
	return out
}

// bestEntry tracks one grouped query's answer candidate during a shared
// run, updated with exactly Route's virtual-target relaxation rule
// (strict improvement only, anchors in settle order).
type bestEntry struct {
	dist float64
	via  int32 // settled handle whose expansion set the entry
	seen bool
	done bool // frontier passed dist: the entry can no longer improve
}

// settleBests marks entries the frontier has passed. When the heap
// minimum reaches a seen entry's distance, no future expansion can
// strictly improve it (legs are non-negative) — exactly the moment a
// solo Route would pop its virtual target node and stop.
func settleBests(bests []bestEntry, frontier float64, pending int) int {
	for i := range bests {
		if !bests[i].done && bests[i].seen && frontier >= bests[i].dist {
			bests[i].done = true
			pending--
		}
	}
	return pending
}

// routeShared is the one shared forward search of RouteMany: Algorithm
// 1 with the per-target special cases hoisted out of the expansion.
// Differences from Route, and why they preserve per-target answers:
//
//   - there are no virtual target nodes in the heap; each target keeps
//     a bestEntry updated by the same relaxation rule in the same
//     anchor-settle order, and is finalised when the frontier passes
//     its distance — the exact instant Route would pop its target node;
//   - expansion continues through grouped target partitions
//     ("settled-partition expansion"). Under the convex-cell model a
//     shortest route can never leave and re-enter the target's own
//     partition (entering it once and walking straight to the target is
//     strictly shorter), so the prev chains along every per-target
//     answer are the ones the pruned solo search builds;
//   - rule 2 needs no per-target exemption: grouped target partitions
//     are never private (RouteMany routes those solo).
func (e *Engine) routeShared(src geom.Point, srcPart model.PartitionID, ts []sharedTarget,
	at temporal.TimeOfDay, speed float64, out []ManyOutcome) {

	t0 := at.Mod()
	if speed <= 0 {
		speed = WalkingSpeedMPS
	}
	run := SearchStats{Method: e.checker.Name()}
	e.reset()
	e.checker.Begin(t0, speed)

	srcH := int32(e.v.DoorCount())
	inf := math.Inf(1)
	if e.opts.EagerHeapInit {
		for d := 0; d < e.v.DoorCount(); d++ {
			e.st.heap.Push(int32(d), inf)
		}
	}
	e.st.dist[srcH] = 0
	e.st.heap.Push(srcH, 0)

	bests := make([]bestEntry, len(ts))
	byPart := make(map[model.PartitionID][]int, len(ts))
	for i, tg := range ts {
		byPart[tg.part] = append(byPart[tg.part], i)
	}
	pending := len(ts)

	q := Query{Source: src} // expand reads only the source point

	for pending > 0 {
		item, ok := e.st.heap.Pop()
		if !ok || math.IsInf(item.Prio, 1) {
			break // heap exhausted: unseen targets have no route
		}
		h := item.Key
		run.Pops++
		if pending = settleBests(bests, item.Prio, pending); pending == 0 {
			break
		}
		if e.st.settled[h] {
			continue
		}
		e.st.settled[h] = true
		run.Settled++
		baseDist := e.st.dist[h]

		var anchor model.DoorID = model.NoDoor
		var nexts []model.PartitionID
		if h == srcH {
			nexts = []model.PartitionID{srcPart}
		} else {
			anchor = model.DoorID(h)
			nexts = e.v.NextPartitions(anchor, e.st.prevPart[h])
		}
		for _, w := range nexts {
			// Route's target relaxation (Algorithm 1 lines 20–24), once
			// per grouped target located in this partition.
			for _, i := range byPart[w] {
				b := &bests[i]
				if b.done {
					continue
				}
				var cand float64
				if anchor == model.NoDoor {
					cand = baseDist + e.g.DM().PointToPoint(w, src, ts[i].pt)
				} else {
					cand = baseDist + e.g.DM().PointToDoor(w, ts[i].pt, anchor)
				}
				if (!b.seen || cand < b.dist) && !math.IsInf(cand, 1) {
					b.dist = cand
					b.via = h
					b.seen = true
					run.Relaxations++
				}
			}
			if w != srcPart && e.v.Partition(w).Kind.IsPrivate() {
				continue // rule 2 (grouped target partitions are never private)
			}
			if !e.st.visited[w] {
				e.st.visited[w] = true
				run.PartitionsVisited++
			}
			// NoPartition disables expand's target-partition exemption:
			// it is not needed here (no grouped target is private).
			e.expand(q, w, anchor, h, baseDist, &run, srcPart, model.NoPartition)
		}
	}

	e.finishStats(&run)
	for i, tg := range ts {
		b := bests[i]
		st := run
		if !b.seen {
			out[tg.idx] = ManyOutcome{Stats: st, Err: ErrNoRoute}
			continue
		}
		p := e.reconstructEntry(src, tg.pt, b.via, srcH, tg.part, b.dist, t0, speed)
		st.Found = true
		st.PathHops = p.Hops()
		st.PathLength = p.Length
		out[tg.idx] = ManyOutcome{Path: p, Stats: st}
	}
}

// reconstructEntry is Route's reconstruct rooted at a bestEntry: via is
// what prevDoor[tgtH] would have been, dist the target-node distance.
func (e *Engine) reconstructEntry(src, tgt geom.Point, via, srcH int32, tgtPart model.PartitionID,
	length float64, t0 temporal.TimeOfDay, speed float64) *Path {

	var doors []model.DoorID
	var parts []model.PartitionID
	for h := via; h != srcH; h = e.st.prevDoor[h] {
		doors = append(doors, model.DoorID(h))
		parts = append(parts, e.st.prevPart[h])
	}
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
		parts[i], parts[j] = parts[j], parts[i]
	}
	parts = append(parts, tgtPart)
	arrivals := make([]temporal.TimeOfDay, len(doors))
	for i, d := range doors {
		arrivals[i] = t0 + temporal.TimeOfDay(e.st.dist[int32(d)]/speed)
	}
	return &Path{
		Source:       src,
		Target:       tgt,
		Doors:        doors,
		Partitions:   parts,
		Length:       length,
		Arrivals:     arrivals,
		ArrivalAtTgt: t0 + temporal.TimeOfDay(length/speed),
		DepartedAt:   t0,
	}
}

// sharedSource pairs a grouped source with its located partition.
type sharedSource struct {
	idx  int
	pt   geom.Point
	part model.PartitionID
}

// RouteManyTo answers ITSPQ(sources[j], tgt, at) for every source.
// With the static method the group is served by one reverse run rooted
// at the target (the accessibility graph is time-invariant, so the
// reverse shortest tree reproduces every forward answer; distances and
// arrivals are re-derived by a forward leg replay, bit-identical to a
// solo search). The temporal methods cannot soundly share a
// destination-rooted run — TV_Check probes openness at the *forward*
// walked distance, which differs per source — so they fall back to solo
// routes per source, as do sources in private partitions.
func (e *Engine) RouteManyTo(sources []geom.Point, tgt geom.Point, at temporal.TimeOfDay, speed float64) []ManyOutcome {
	out := make([]ManyOutcome, len(sources))
	name := e.checker.Name()
	tgtPart, tok := e.v.Locate(tgt)
	var shared []sharedSource
	var solo []int
	for j, pt := range sources {
		part, located := e.v.Locate(pt)
		switch {
		case !located:
			// Route checks the source first, so an unlocatable source
			// wins over an unlocatable target.
			out[j] = ManyOutcome{Stats: SearchStats{Method: name},
				Err: fmt.Errorf("%w: source %v", ErrNotIndoor, pt)}
		case !tok:
			out[j] = ManyOutcome{Stats: SearchStats{Method: name},
				Err: fmt.Errorf("%w: target %v", ErrNotIndoor, tgt)}
		case e.opts.Method != MethodStatic || e.opts.SinglePartitionExpansion ||
			(e.v.Partition(part).Kind.IsPrivate() && part != tgtPart):
			solo = append(solo, j)
		default:
			shared = append(shared, sharedSource{idx: j, pt: pt, part: part})
		}
	}
	if len(shared) > 0 {
		e.routeSharedReverse(tgt, tgtPart, shared, at, speed, out)
	}
	for _, j := range solo {
		p, st, err := e.Route(Query{Source: sources[j], Target: tgt, At: at, Speed: speed})
		out[j] = ManyOutcome{Path: p, Stats: st, Err: err, Solo: true}
	}
	return out
}

// routeSharedReverse is the one reverse (destination-rooted) run of
// RouteManyTo: a Dijkstra over the arc-reversed door graph, starting
// inside the target's partition and reverse-crossing doors against
// their permitted direction (model.Venue.PrevPartitions), mirroring
// Route's rules arc for arc:
//
//   - the target's partition is expanded only from the root (Route
//     never expands through its target partition);
//   - rule 2 keeps private partitions out, with the target's partition
//     exempt; grouped source partitions are never private;
//   - reverse-entering a grouped source's partition sets that source's
//     terminal candidate — the mirror image of Route's first expansion
//     out of the source partition.
//
// Reconstruction replays every leg forward (source → target, the same
// float64 operations in the same order as a forward search), so
// lengths, distances and arrivals are bit-identical to solo answers
// even though the reverse run accumulated its sums in the opposite
// order.
func (e *Engine) routeSharedReverse(tgt geom.Point, tgtPart model.PartitionID, ss []sharedSource,
	at temporal.TimeOfDay, speed float64, out []ManyOutcome) {

	t0 := at.Mod()
	if speed <= 0 {
		speed = WalkingSpeedMPS
	}
	run := SearchStats{Method: e.checker.Name()}
	e.reset()
	e.checker.Begin(t0, speed)

	tgtH := int32(e.v.DoorCount())
	if e.opts.EagerHeapInit {
		// Mirror routeShared (and Route): the ablation enheaps every
		// door at ∞ up front in reverse runs too.
		inf := math.Inf(1)
		for d := 0; d < e.v.DoorCount(); d++ {
			e.st.heap.Push(int32(d), inf)
		}
	}
	e.st.dist[tgtH] = 0
	e.st.heap.Push(tgtH, 0)

	bests := make([]bestEntry, len(ss))
	byPart := make(map[model.PartitionID][]int, len(ss))
	for i, s := range ss {
		byPart[s.part] = append(byPart[s.part], i)
	}
	pending := len(ss)

	for pending > 0 {
		item, ok := e.st.heap.Pop()
		if !ok || math.IsInf(item.Prio, 1) {
			break
		}
		h := item.Key
		run.Pops++
		if pending = settleBests(bests, item.Prio, pending); pending == 0 {
			break
		}
		if e.st.settled[h] {
			continue
		}
		e.st.settled[h] = true
		run.Settled++
		baseDist := e.st.dist[h]

		var anchor model.DoorID = model.NoDoor
		var prevs []model.PartitionID
		if h == tgtH {
			prevs = []model.PartitionID{tgtPart}
		} else {
			anchor = model.DoorID(h)
			prevs = e.v.PrevPartitions(anchor, e.st.prevPart[h])
		}
		for _, w := range prevs {
			for _, i := range byPart[w] {
				b := &bests[i]
				if b.done {
					continue
				}
				var cand float64
				if anchor == model.NoDoor {
					cand = baseDist + e.g.DM().PointToPoint(w, ss[i].pt, tgt)
				} else {
					cand = baseDist + e.g.DM().PointToDoor(w, ss[i].pt, anchor)
				}
				if (!b.seen || cand < b.dist) && !math.IsInf(cand, 1) {
					b.dist = cand
					b.via = h
					b.seen = true
					run.Relaxations++
				}
			}
			if w == tgtPart && anchor != model.NoDoor {
				continue // the target partition is expanded only from the root
			}
			if w != tgtPart && e.v.Partition(w).Kind.IsPrivate() {
				continue // rule 2 (grouped source partitions are never private)
			}
			if !e.st.visited[w] {
				e.st.visited[w] = true
				run.PartitionsVisited++
			}
			e.expandReverse(tgt, tgtPart, w, anchor, h, baseDist, &run)
		}
	}

	e.finishStats(&run)
	for i, s := range ss {
		b := bests[i]
		st := run
		if !b.seen {
			out[s.idx] = ManyOutcome{Stats: st, Err: ErrNoRoute}
			continue
		}
		p := e.reconstructReverse(s.pt, tgt, b.via, tgtH, s.part, t0, speed)
		st.Found = true
		st.PathHops = p.Hops()
		st.PathLength = p.Length
		out[s.idx] = ManyOutcome{Path: p, Stats: st}
	}
}

// expandReverse relaxes every forward-enterable door of partition w
// from the reverse anchor — the mirror image of expand over the
// arc-reversed graph, static method only (no TV_Check).
func (e *Engine) expandReverse(tgt geom.Point, tgtPart, w model.PartitionID, anchor model.DoorID, h int32,
	baseDist float64, stats *SearchStats) {

	for _, dj := range e.v.EnterDoors(w) {
		hj := int32(dj)
		if e.st.settled[hj] {
			continue
		}
		// Mirror of expand's privacy prune: a door approachable only
		// from private partitions (other than the target's) cannot lie
		// on any grouped answer — grouped source partitions are public.
		useful := false
		for _, prv := range e.v.PrevPartitions(dj, w) {
			if prv == tgtPart || !e.v.Partition(prv).Kind.IsPrivate() {
				useful = true
				break
			}
		}
		if !useful {
			continue
		}
		var leg float64
		if anchor == model.NoDoor {
			leg = e.g.DM().PointToDoor(w, tgt, dj)
		} else {
			leg = e.legDist(w, anchor, dj)
		}
		if math.IsInf(leg, 1) {
			continue
		}
		distj := baseDist + leg
		stats.Relaxations++
		if old, seen := e.st.dist[hj]; !seen || distj < old {
			e.st.dist[hj] = distj
			e.st.prevDoor[hj] = h
			e.st.prevPart[hj] = w
			e.st.heap.Push(hj, distj)
		}
	}
}

// reconstructReverse turns one reverse prev chain into a forward Path:
// the chain from the entry door already reads source → target, and the
// cumulative distances are re-accumulated forward so every float64 is
// the one a forward search would have produced.
func (e *Engine) reconstructReverse(src, tgt geom.Point, via, tgtH int32, srcPart model.PartitionID,
	t0 temporal.TimeOfDay, speed float64) *Path {

	var doors []model.DoorID
	var parts []model.PartitionID
	for h := via; h != tgtH; h = e.st.prevDoor[h] {
		doors = append(doors, model.DoorID(h))
		parts = append(parts, e.st.prevPart[h])
	}
	fullParts := make([]model.PartitionID, 0, len(doors)+1)
	fullParts = append(fullParts, srcPart)
	fullParts = append(fullParts, parts...)

	var length float64
	dists := make([]float64, len(doors))
	if len(doors) == 0 {
		length = e.g.DM().PointToPoint(srcPart, src, tgt)
	} else {
		d := e.g.DM().PointToDoor(fullParts[0], src, doors[0])
		dists[0] = d
		for i := 1; i < len(doors); i++ {
			d += e.legDist(fullParts[i], doors[i-1], doors[i])
			dists[i] = d
		}
		length = d + e.g.DM().PointToDoor(fullParts[len(doors)], tgt, doors[len(doors)-1])
	}
	arrivals := make([]temporal.TimeOfDay, len(doors))
	for i := range doors {
		arrivals[i] = t0 + temporal.TimeOfDay(dists[i]/speed)
	}
	return &Path{
		Source:       src,
		Target:       tgt,
		Doors:        doors,
		Partitions:   fullParts,
		Length:       length,
		Arrivals:     arrivals,
		ArrivalAtTgt: t0 + temporal.TimeOfDay(length/speed),
		DepartedAt:   t0,
	}
}

// RebaseDeparture restates a found answer for query q's own departure:
// the door and partition slices are shared (paths are immutable), the
// length is unchanged, and every arrival is recomputed as t' +
// dist_i/speed from the engine's own leg replay (PathDistances) — bit-
// identical to what a fresh search departing at t' would return. Sound
// only when the engine's answer is provably departure-independent: the
// static method, whose checker ignores time entirely. p must be a
// found, no-waiting answer for q's endpoints and speed.
func (e *Engine) RebaseDeparture(p *Path, q Query) *Path {
	t0 := q.At.Mod()
	speed := q.speed()
	dists := e.PathDistances(p, q)
	arrivals := make([]temporal.TimeOfDay, len(dists))
	for i, d := range dists {
		arrivals[i] = t0 + temporal.TimeOfDay(d/speed)
	}
	return &Path{
		Source:       p.Source,
		Target:       p.Target,
		Doors:        p.Doors,
		Partitions:   p.Partitions,
		Length:       p.Length,
		Arrivals:     arrivals,
		ArrivalAtTgt: t0 + temporal.TimeOfDay(p.Length/speed),
		DepartedAt:   t0,
	}
}
