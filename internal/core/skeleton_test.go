package core

import (
	"errors"
	"math/rand"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/temporal"
)

// skelInterior samples a point strictly inside a partition's rectangle
// (10% margin), so Locate resolves it to that partition unambiguously.
func skelInterior(rng *rand.Rand, r geom.Rect) geom.Point {
	mx, my := r.Width()*0.1, r.Height()*0.1
	return geom.Pt(
		r.MinX+mx+rng.Float64()*(r.Width()-2*mx),
		r.MinY+my+rng.Float64()*(r.Height()-2*my),
		r.Floor)
}

// TestSkeletonComposeByteIdentical is the point-free answer oracle: for
// random venues and every method, any composition a stored family
// certifies must match a fresh sequential engine run byte for byte —
// same doors, partitions, length, arrivals and target arrival, down to
// float64 identity, for endpoints jittered anywhere inside the pair's
// partitions and departures swept across the certified window.
func TestSkeletonComposeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	composed, refused := 0, 0
	for trial := 0; trial < 40; trial++ {
		rows, cols := 2+rng.Intn(3), 2+rng.Intn(3)
		v := randomVenue(t, rng, rows, cols)
		g := itgraph.MustNew(v)
		for _, m := range []Method{MethodSyn, MethodAsyn, MethodStatic} {
			e := NewEngine(g, Options{Method: m})
			for probe := 0; probe < 6; probe++ {
				src := geom.Pt(rng.Float64()*float64(cols)*10, rng.Float64()*float64(rows)*10, 0)
				tgt := geom.Pt(rng.Float64()*float64(cols)*10, rng.Float64()*float64(rows)*10, 0)
				srcPart, ok1 := v.Locate(src)
				tgtPart, ok2 := v.Locate(tgt)
				if !ok1 || !ok2 || srcPart == tgtPart {
					continue
				}
				at := temporal.TimeOfDay(rng.Float64() * 86400)
				fam := e.BuildSkeletonFamily(srcPart, tgtPart, at)
				if fam == nil {
					continue
				}
				for k := 0; k < 5; k++ {
					q := Query{
						Source: skelInterior(rng, v.Partition(srcPart).Rect),
						Target: skelInterior(rng, v.Partition(tgtPart).Rect),
						At:     fam.Window.Open + temporal.TimeOfDay(rng.Float64()*float64(fam.Window.Duration())),
					}
					comp, ok := e.ComposeSkeleton(q.Source, q.Target, q.At, q.Speed, fam)
					if !ok {
						refused++
						continue
					}
					composed++
					fresh, _, err := e.Route(q)
					if err != nil {
						t.Fatalf("trial %d %v: composition certified but fresh run errored: %v", trial, m, err)
					}
					assertSkelIdentical(t, comp, fresh)
				}
			}
		}
	}
	if composed < 100 {
		t.Fatalf("only %d compositions certified (%d refused) — the property was barely exercised", composed, refused)
	}
}

// TestSkeletonFamilyRefusals pins the documented refusal cases: same
// partition pair, the SinglePartitionExpansion ablation, departures
// outside the family's slot, and walks crossing the slot's close.
func TestSkeletonFamilyRefusals(t *testing.T) {
	g, parts, _ := corridorVenue(t)
	e := NewEngine(g, Options{Method: MethodSyn})
	at := temporal.Clock(12, 0, 0)

	if fam := e.BuildSkeletonFamily(parts["A"], parts["A"], at); fam != nil {
		t.Fatal("same-partition family must refuse to build")
	}
	abl := NewEngine(g, Options{Method: MethodSyn, SinglePartitionExpansion: true})
	if fam := abl.BuildSkeletonFamily(parts["A"], parts["D"], at); fam != nil {
		t.Fatal("ablation engine must refuse to build families")
	}

	fam := e.BuildSkeletonFamily(parts["A"], parts["D"], at)
	if fam == nil {
		t.Fatal("A→D family did not build")
	}
	if fam.Slot < 0 || !fam.Window.Contains(at) {
		t.Fatalf("family window %v does not cover the build instant %v", fam.Window, at)
	}
	src, tgt := geom.Pt(5, 5, 0), geom.Pt(35, 5, 0)
	if _, ok := e.ComposeSkeleton(src, tgt, fam.Window.Close, 0, fam); ok {
		t.Fatal("departure outside the slot window must refuse")
	}
	// A departure so close to the slot end that the walk cannot finish
	// inside it must refuse (the AnswerWindow clamp).
	if _, ok := e.ComposeSkeleton(src, tgt, fam.Window.Close-1e-6, 0, fam); ok {
		t.Fatal("walk crossing the slot close must refuse")
	}
	if p, ok := e.ComposeSkeleton(src, tgt, at, 0, fam); !ok {
		t.Fatal("mid-slot composition refused")
	} else {
		fresh, _, err := e.Route(Query{Source: src, Target: tgt, At: at})
		if err != nil {
			t.Fatal(err)
		}
		assertSkelIdentical(t, p, fresh)
	}

	// Static families certify the whole day.
	st := NewEngine(g, Options{Method: MethodStatic})
	sfam := st.BuildSkeletonFamily(parts["A"], parts["D"], at)
	if sfam == nil || sfam.Slot != SkeletonStaticSlot {
		t.Fatalf("static family = %+v, want full-day pseudo-slot", sfam)
	}
	for _, dep := range []temporal.TimeOfDay{0, at, 86000} {
		p, ok := st.ComposeSkeleton(src, tgt, dep, 0, sfam)
		if !ok {
			t.Fatalf("static composition refused at %v", dep)
		}
		fresh, _, err := st.Route(Query{Source: src, Target: tgt, At: dep})
		if err != nil {
			t.Fatal(err)
		}
		assertSkelIdentical(t, p, fresh)
	}
}

// TestSkeletonRespectsClosedDoors: a family built for a slot where the
// short corridor door is shut must route via the detour, exactly as a
// fresh search does, and never certify a composition using the closed
// door.
func TestSkeletonRespectsClosedDoors(t *testing.T) {
	g, parts, doors := corridorVenue(t)
	e := NewEngine(g, Options{Method: MethodSyn})
	// d2 (B→C) is open 8:00–16:00; at 20:00 the A→C answer detours via X.
	at := temporal.Clock(20, 0, 0)
	fam := e.BuildSkeletonFamily(parts["A"], parts["C"], at)
	if fam == nil {
		t.Fatal("A→C family did not build for the closed-door slot")
	}
	for _, sk := range fam.Chains {
		for _, d := range sk.Doors {
			if d == doors["d2"] {
				t.Fatal("closed-slot family stored a chain through the closed door d2")
			}
		}
	}
	src, tgt := geom.Pt(2, 2, 0), geom.Pt(25, 5, 0)
	p, ok := e.ComposeSkeleton(src, tgt, at, 0, fam)
	if !ok {
		t.Fatal("detour composition refused")
	}
	fresh, _, err := e.Route(Query{Source: src, Target: tgt, At: at})
	if err != nil {
		t.Fatal(err)
	}
	assertSkelIdentical(t, p, fresh)
	if verr := p.Validate(g, Query{Source: src, Target: tgt, At: at}); verr != nil {
		t.Fatalf("composed path invalid: %v", verr)
	}
}

// TestSkeletonNoRouteAgreement: when the engine has no valid route
// between two partitions in a slot, the family either fails to build or
// refuses every composition — it never conjures an answer.
func TestSkeletonNoRouteAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 30; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{Method: MethodSyn})
		for probe := 0; probe < 8; probe++ {
			src := geom.Pt(rng.Float64()*30, rng.Float64()*30, 0)
			tgt := geom.Pt(rng.Float64()*30, rng.Float64()*30, 0)
			srcPart, ok1 := v.Locate(src)
			tgtPart, ok2 := v.Locate(tgt)
			if !ok1 || !ok2 || srcPart == tgtPart {
				continue
			}
			at := temporal.TimeOfDay(rng.Float64() * 86400)
			q := Query{Source: src, Target: tgt, At: at}
			_, _, err := e.Route(q)
			if !errors.Is(err, ErrNoRoute) {
				continue
			}
			fam := e.BuildSkeletonFamily(srcPart, tgtPart, at)
			if fam == nil {
				continue
			}
			if p, ok := e.ComposeSkeleton(src, tgt, at, 0, fam); ok {
				t.Fatalf("trial %d: engine has no route but composition served %v", trial, p)
			}
		}
	}
}

// assertSkelIdentical requires bitwise equality between a composed and
// a freshly searched path: the byte-identity contract of point-free
// answers.
func assertSkelIdentical(t *testing.T, comp, fresh *Path) {
	t.Helper()
	if len(comp.Doors) != len(fresh.Doors) {
		t.Fatalf("door count %d != fresh %d", len(comp.Doors), len(fresh.Doors))
	}
	for i := range comp.Doors {
		if comp.Doors[i] != fresh.Doors[i] {
			t.Fatalf("door[%d] = %d != fresh %d", i, comp.Doors[i], fresh.Doors[i])
		}
	}
	if len(comp.Partitions) != len(fresh.Partitions) {
		t.Fatalf("partition count %d != fresh %d", len(comp.Partitions), len(fresh.Partitions))
	}
	for i := range comp.Partitions {
		if comp.Partitions[i] != fresh.Partitions[i] {
			t.Fatalf("partition[%d] = %d != fresh %d", i, comp.Partitions[i], fresh.Partitions[i])
		}
	}
	if comp.Length != fresh.Length {
		t.Fatalf("length %v != fresh %v (must be bit-identical)", comp.Length, fresh.Length)
	}
	for i := range comp.Arrivals {
		if comp.Arrivals[i] != fresh.Arrivals[i] {
			t.Fatalf("arrival[%d] = %v != fresh %v", i, comp.Arrivals[i], fresh.Arrivals[i])
		}
	}
	if comp.ArrivalAtTgt != fresh.ArrivalAtTgt || comp.DepartedAt != fresh.DepartedAt {
		t.Fatalf("arrival %v/%v != fresh %v/%v",
			comp.ArrivalAtTgt, comp.DepartedAt, fresh.ArrivalAtTgt, fresh.DepartedAt)
	}
}
