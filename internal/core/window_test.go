package core

import (
	"math/rand"
	"reflect"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func TestValidityWindow(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	e := NewEngine(g, Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ValidityWindow(g, p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Contains(q.At) {
		t.Fatalf("window %v must contain the original departure", w)
	}
	// d2 ([8:00,16:00)) sits 18 m into the path (walk ≈ 12.96 s): the
	// window must end just before 16:00 minus that walk.
	wantClose := temporal.Clock(16, 0, 0) - temporal.TimeOfDay(18.0/WalkingSpeedMPS)
	if diff := float64(w.Close - wantClose); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("window close = %v, want %v", w.Close, wantClose)
	}
	wantOpen := temporal.Clock(8, 0, 0) - temporal.TimeOfDay(18.0/WalkingSpeedMPS)
	if diff := float64(w.Open - wantOpen); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("window open = %v, want %v", w.Open, wantOpen)
	}
}

// TestValidityWindowProperty: departing at random instants inside the
// window, the same door sequence must stay valid; departing just past
// either edge must not.
func TestValidityWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{})
		q := Query{
			Source: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
			Target: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
			At:     temporal.TimeOfDay(rng.Float64() * 86400),
		}
		p, _, err := e.RouteOrNil(q)
		if err != nil || p == nil || p.Hops() == 0 {
			continue
		}
		w, err := ValidityWindow(g, p, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		replay := func(at temporal.TimeOfDay) error {
			// Rebuild the path arrivals for the shifted departure and
			// validate the same door sequence.
			shifted := *p
			shifted.DepartedAt = at
			shifted.Arrivals = make([]temporal.TimeOfDay, len(p.Arrivals))
			for i := range p.Arrivals {
				shifted.Arrivals[i] = p.Arrivals[i] - q.At.Mod() + at
			}
			shifted.ArrivalAtTgt = p.ArrivalAtTgt - q.At.Mod() + at
			qq := q
			qq.At = at
			return shifted.Validate(g, qq)
		}
		for probe := 0; probe < 5; probe++ {
			at := w.Open + temporal.TimeOfDay(rng.Float64())*(w.Close-w.Open)
			if err := replay(at); err != nil {
				t.Fatalf("trial %d: departure %v inside window %v invalid: %v", trial, at, w, err)
			}
		}
		// Past either edge the path must be invalid — or valid only via a
		// *different* ATI than the original departure used (the window is
		// maximal within the original ATIs; an adjacent ATI or midnight
		// wrap can re-validate the sequence).
		atiSignature := func(at temporal.TimeOfDay) []int {
			sig := make([]int, len(p.Doors))
			for i, d := range p.Doors {
				arr := (p.Arrivals[i] - q.At.Mod() + at).Mod()
				sig[i] = -1
				for k, iv := range v.Door(d).ATIs {
					if iv.Contains(arr) {
						sig[i] = k
						break
					}
				}
			}
			return sig
		}
		orig := atiSignature(q.At.Mod())
		checkEdge := func(at temporal.TimeOfDay) {
			if at < 0 || at >= temporal.DaySeconds {
				return
			}
			if err := replay(at); err == nil {
				sig := atiSignature(at)
				same := true
				for i := range sig {
					if sig[i] != orig[i] {
						same = false
						break
					}
				}
				if same {
					t.Fatalf("trial %d: departure %v outside window %v valid via the same ATIs", trial, at, w)
				}
			}
		}
		const eps = 1.0 // one second past the edge
		checkEdge(w.Close + eps)
		if w.Open > 0 {
			checkEdge(w.Open - eps)
		}
	}
}

func TestValidityWindowErrors(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	e := NewEngine(g, Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	// Waiting paths are rejected.
	pw := *p
	pw.TotalWait = 60
	if _, err := ValidityWindow(g, &pw, q); err == nil {
		t.Error("waiting path must be rejected")
	}
	// A query time at which the path is invalid is rejected.
	qBad := q
	qBad.At = temporal.Clock(3, 0, 0)
	if _, err := ValidityWindow(g, p, qBad); err == nil {
		t.Error("invalid departure must be rejected")
	}
}

// wrapVenue: hall and room joined by one door; the door's schedule is
// configurable so midnight-wrap behaviour can be probed. Source 2,5 →
// target 38,5 walks 18 m to the door at (20,5).
func wrapVenue(t testing.TB, doorSched temporal.Schedule) *itgraph.Graph {
	t.Helper()
	b := model.NewBuilder("wrap-window")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(20, 0, 40, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(20, 5, 0), doorSched)
	b.ConnectBi(d, hall, room)
	return itgraph.MustNew(b.MustBuild())
}

func TestValidityWindowMidnightWrap(t *testing.T) {
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(23, 59, 50)}

	// Always-open door: the wrapped arrival sits in a full-day ATI, which
	// imposes no constraint — the window is the whole day.
	g := wrapVenue(t, nil)
	p, _, err := NewEngine(g, Options{}).Route(q)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ValidityWindow(g, p, q)
	if err != nil {
		t.Fatalf("full-day ATI with wrapped arrival: %v", err)
	}
	if w.Open != 0 || w.Close != temporal.DaySeconds {
		t.Fatalf("window = %v, want the full day", w)
	}

	// Bounded ATI: the arrival (walk ≈ 12.96 s past 23:59:50) wraps past
	// midnight into [0:00, 1:00); the single-interval window arithmetic
	// cannot express that constraint, so the window must be refused — a
	// silently derived [0-walk, 1:00-walk) would not contain t0 at all.
	g2 := wrapVenue(t, temporal.MustSchedule(
		temporal.MustInterval(temporal.Clock(0, 0, 0), temporal.Clock(1, 0, 0)),
		temporal.MustInterval(temporal.Clock(23, 0, 0), temporal.Clock(24, 0, 0)),
	))
	p2, _, err := NewEngine(g2, Options{}).Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidityWindow(g2, p2, q); err == nil {
		t.Fatal("wrapped arrival in a bounded ATI must refuse a window")
	}
}

func TestAnswerWindowClampsToSlot(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	e := NewEngine(g, Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	w, err := e.AnswerWindow(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Contains(q.At) {
		t.Fatalf("answer window %v must contain the departure", w)
	}
	// The clamp: departure stays inside its checkpoint slot and the
	// whole walk (Length/speed) completes before the slot ends.
	cps := g.Checkpoints()
	slot := cps.SlotOf(q.At)
	wantOpen := cps.SlotStart(slot)
	wantClose := cps.SlotEnd(slot) - temporal.TimeOfDay(p.Length/WalkingSpeedMPS)
	if w.Open != wantOpen || w.Close != wantClose {
		t.Fatalf("window = %v, want [%v, %v)", w, wantOpen, wantClose)
	}
	// The answer window is a sub-interval of the validity window.
	vw, err := ValidityWindow(g, p, q)
	if err != nil {
		t.Fatal(err)
	}
	if w.Open < vw.Open || w.Close > vw.Close {
		t.Fatalf("answer window %v escapes validity window %v", w, vw)
	}
}

// TestAnswerWindowEmptyOnCheckpointCrossing: when the original walk
// itself spans a checkpoint — even one belonging to a door far off the
// path — the clamped window is empty and must be refused rather than
// collapse to a zero-length interval.
func TestAnswerWindowEmptyOnCheckpointCrossing(t *testing.T) {
	b := model.NewBuilder("cross-window")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(20, 0, 40, 10, 0))
	side := b.AddPartition("side", model.PublicPartition, geom.NewRect(0, 10, 20, 20, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(20, 5, 0), nil)
	// An unrelated door whose ATI boundary at 12:00 creates a checkpoint.
	dy := b.AddDoor("dy", model.PublicDoor, geom.Pt(10, 10, 0), sched("12:00", "13:00"))
	b.ConnectBi(d, hall, room)
	b.ConnectBi(dy, hall, side)
	g := itgraph.MustNew(b.MustBuild())
	e := NewEngine(g, Options{})

	// Depart 5 s before the 12:00 checkpoint: the ~26 s walk crosses it.
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(11, 59, 55)}
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	// The path's own door is always open, so the validity window is wide…
	if vw, err := ValidityWindow(g, p, q); err != nil || vw.Duration() <= 0 {
		t.Fatalf("validity window = %v, %v", vw, err)
	}
	// …but the answer window must refuse the checkpoint-crossing walk.
	if _, err := e.AnswerWindow(p, q); err == nil {
		t.Fatal("walk crossing a checkpoint must refuse an answer window")
	}
	// Departing safely inside the slot, the window reappears.
	q2 := q
	q2.At = temporal.Clock(11, 0, 0)
	p2, _, err := e.Route(q2)
	if err != nil {
		t.Fatal(err)
	}
	if w, err := e.AnswerWindow(p2, q2); err != nil || !w.Contains(q2.At) {
		t.Fatalf("answer window = %v, %v", w, err)
	}
}

func TestAnswerWindowStatic(t *testing.T) {
	// Static answers ignore temporal variation: even a path crossing a
	// closed door is the engine's answer at every departure, so the
	// window is the whole day.
	g := wrapVenue(t, sched("8:00", "16:00"))
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(20, 0, 0)}
	e := NewEngine(g, Options{Method: MethodStatic})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	w, err := e.AnswerWindow(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if w.Open != 0 || w.Close != temporal.DaySeconds {
		t.Fatalf("static window = %v, want the full day", w)
	}
	// A waiting path is refused regardless of method.
	pw := *p
	pw.TotalWait = 30
	if _, err := e.AnswerWindow(&pw, q); err == nil {
		t.Fatal("waiting path must be refused")
	}
}

// TestAnswerWindowProperty is the caching soundness property: every
// departure sampled inside an answer window makes a fresh engine run
// return a byte-identical answer — same doors, same partitions, same
// length, and arrivals equal to the rebased originals bit for bit
// (departure + PathDistances/speed).
func TestAnswerWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	windows := 0
	for trial := 0; trial < 60; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		method := []Method{MethodSyn, MethodAsyn}[trial%2]
		// Every third trial runs the NoDistanceMatrix ablation: the
		// window derivation must stay faithful to whatever leg
		// arithmetic the engine actually searches with.
		e := NewEngine(g, Options{Method: method, NoDistanceMatrix: trial%3 == 0})
		q := Query{
			Source: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
			Target: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
			At:     temporal.TimeOfDay(rng.Float64() * 86400),
		}
		p, _, err := e.RouteOrNil(q)
		if err != nil || p == nil {
			continue
		}
		w, err := e.AnswerWindow(p, q)
		if err != nil {
			continue // walk crosses a checkpoint: legitimately uncacheable
		}
		windows++
		dists := e.PathDistances(p, q)
		for probe := 0; probe < 6; probe++ {
			at := w.Open + temporal.TimeOfDay(rng.Float64())*(w.Close-w.Open)
			if probe == 0 {
				at = w.Open // the closed edge must hold exactly
			}
			qq := q
			qq.At = at
			fresh, _, err := e.Route(qq)
			if err != nil {
				t.Fatalf("trial %d (%v): fresh route at %v inside window %v failed: %v", trial, method, at, w, err)
			}
			if !reflect.DeepEqual(fresh.Doors, p.Doors) || !reflect.DeepEqual(fresh.Partitions, p.Partitions) {
				t.Fatalf("trial %d (%v): answer changed inside window %v at %v:\n got  %v %v\n want %v %v",
					trial, method, w, at, fresh.Doors, fresh.Partitions, p.Doors, p.Partitions)
			}
			if fresh.Length != p.Length {
				t.Fatalf("trial %d (%v): length %v != %v inside window", trial, method, fresh.Length, p.Length)
			}
			// Rebased arrivals must be bit-identical to the fresh run's.
			for i := range dists {
				if want := at + temporal.TimeOfDay(dists[i]/WalkingSpeedMPS); fresh.Arrivals[i] != want {
					t.Fatalf("trial %d: arrival[%d] = %v, rebased %v", trial, i, fresh.Arrivals[i], want)
				}
			}
			if want := at + temporal.TimeOfDay(p.Length/WalkingSpeedMPS); fresh.ArrivalAtTgt != want {
				t.Fatalf("trial %d: target arrival %v, rebased %v", trial, fresh.ArrivalAtTgt, want)
			}
		}
	}
	if windows < 10 {
		t.Fatalf("only %d answer windows derived across trials — fixture too weak", windows)
	}
}

// TestPathDistances: the cumulative distances replay the search's own
// accumulation, so original arrivals are reproduced bit for bit.
func TestPathDistances(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	e := NewEngine(g, Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	dists := e.PathDistances(p, q)
	if len(dists) != len(p.Doors) {
		t.Fatalf("%d distances for %d doors", len(dists), len(p.Doors))
	}
	for i, d := range dists {
		if got := q.At + temporal.TimeOfDay(d/WalkingSpeedMPS); got != p.Arrivals[i] {
			t.Fatalf("arrival[%d]: rebased %v != engine %v", i, got, p.Arrivals[i])
		}
		if i > 0 && dists[i] <= dists[i-1] {
			t.Fatalf("distances not increasing: %v", dists)
		}
	}
	if len(dists) > 0 && dists[len(dists)-1] >= p.Length {
		t.Fatalf("last door distance %v >= path length %v", dists[len(dists)-1], p.Length)
	}
}

func TestEarliestValidDeparture(t *testing.T) {
	g, _, _ := corridorVenue(t)
	e := NewEngine(g, Options{})
	// Isolated room behind d2 only... corridorVenue's detour keeps D
	// reachable; use the dead-end venue instead.
	b := deadEndVenue(t)
	g2 := itgraph.MustNew(b)
	e2 := NewEngine(g2, Options{})
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(5, 0, 0)}
	at, p, ok := EarliestValidDeparture(e2, q)
	if !ok {
		t.Fatal("expected a departure to exist")
	}
	if at != temporal.Clock(8, 0, 0) {
		t.Errorf("earliest departure = %v, want 8:00", at)
	}
	if p == nil || p.Hops() != 1 {
		t.Errorf("path = %v", p)
	}
	// Immediately routable queries return the original time.
	qNoon := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	at2, _, ok := EarliestValidDeparture(e, qNoon)
	if !ok || at2 != qNoon.At {
		t.Errorf("noon departure = %v, %v", at2, ok)
	}
	// After the last closing there is no departure.
	qLate := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(17, 0, 0)}
	if _, _, ok := EarliestValidDeparture(e2, qLate); ok {
		t.Error("late departure should not exist")
	}
}

// deadEndVenue: hall and a room joined by a single 8:00–16:00 door.
func deadEndVenue(t testing.TB) *model.Venue {
	t.Helper()
	b := model.NewBuilder("dead-end-window")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), sched("8:00", "16:00"))
	b.ConnectBi(d, hall, room)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v
}
