package core

import (
	"math/rand"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func TestValidityWindow(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	e := NewEngine(g, Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ValidityWindow(g, p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Contains(q.At) {
		t.Fatalf("window %v must contain the original departure", w)
	}
	// d2 ([8:00,16:00)) sits 18 m into the path (walk ≈ 12.96 s): the
	// window must end just before 16:00 minus that walk.
	wantClose := temporal.Clock(16, 0, 0) - temporal.TimeOfDay(18.0/WalkingSpeedMPS)
	if diff := float64(w.Close - wantClose); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("window close = %v, want %v", w.Close, wantClose)
	}
	wantOpen := temporal.Clock(8, 0, 0) - temporal.TimeOfDay(18.0/WalkingSpeedMPS)
	if diff := float64(w.Open - wantOpen); diff > 1e-6 || diff < -1e-6 {
		t.Errorf("window open = %v, want %v", w.Open, wantOpen)
	}
}

// TestValidityWindowProperty: departing at random instants inside the
// window, the same door sequence must stay valid; departing just past
// either edge must not.
func TestValidityWindowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{})
		q := Query{
			Source: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
			Target: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
			At:     temporal.TimeOfDay(rng.Float64() * 86400),
		}
		p, _, err := e.RouteOrNil(q)
		if err != nil || p == nil || p.Hops() == 0 {
			continue
		}
		w, err := ValidityWindow(g, p, q)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		replay := func(at temporal.TimeOfDay) error {
			// Rebuild the path arrivals for the shifted departure and
			// validate the same door sequence.
			shifted := *p
			shifted.DepartedAt = at
			shifted.Arrivals = make([]temporal.TimeOfDay, len(p.Arrivals))
			for i := range p.Arrivals {
				shifted.Arrivals[i] = p.Arrivals[i] - q.At.Mod() + at
			}
			shifted.ArrivalAtTgt = p.ArrivalAtTgt - q.At.Mod() + at
			qq := q
			qq.At = at
			return shifted.Validate(g, qq)
		}
		for probe := 0; probe < 5; probe++ {
			at := w.Open + temporal.TimeOfDay(rng.Float64())*(w.Close-w.Open)
			if err := replay(at); err != nil {
				t.Fatalf("trial %d: departure %v inside window %v invalid: %v", trial, at, w, err)
			}
		}
		// Past either edge the path must be invalid — or valid only via a
		// *different* ATI than the original departure used (the window is
		// maximal within the original ATIs; an adjacent ATI or midnight
		// wrap can re-validate the sequence).
		atiSignature := func(at temporal.TimeOfDay) []int {
			sig := make([]int, len(p.Doors))
			for i, d := range p.Doors {
				arr := (p.Arrivals[i] - q.At.Mod() + at).Mod()
				sig[i] = -1
				for k, iv := range v.Door(d).ATIs {
					if iv.Contains(arr) {
						sig[i] = k
						break
					}
				}
			}
			return sig
		}
		orig := atiSignature(q.At.Mod())
		checkEdge := func(at temporal.TimeOfDay) {
			if at < 0 || at >= temporal.DaySeconds {
				return
			}
			if err := replay(at); err == nil {
				sig := atiSignature(at)
				same := true
				for i := range sig {
					if sig[i] != orig[i] {
						same = false
						break
					}
				}
				if same {
					t.Fatalf("trial %d: departure %v outside window %v valid via the same ATIs", trial, at, w)
				}
			}
		}
		const eps = 1.0 // one second past the edge
		checkEdge(w.Close + eps)
		if w.Open > 0 {
			checkEdge(w.Open - eps)
		}
	}
}

func TestValidityWindowErrors(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	e := NewEngine(g, Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	// Waiting paths are rejected.
	pw := *p
	pw.TotalWait = 60
	if _, err := ValidityWindow(g, &pw, q); err == nil {
		t.Error("waiting path must be rejected")
	}
	// A query time at which the path is invalid is rejected.
	qBad := q
	qBad.At = temporal.Clock(3, 0, 0)
	if _, err := ValidityWindow(g, p, qBad); err == nil {
		t.Error("invalid departure must be rejected")
	}
}

func TestEarliestValidDeparture(t *testing.T) {
	g, _, _ := corridorVenue(t)
	e := NewEngine(g, Options{})
	// Isolated room behind d2 only... corridorVenue's detour keeps D
	// reachable; use the dead-end venue instead.
	b := deadEndVenue(t)
	g2 := itgraph.MustNew(b)
	e2 := NewEngine(g2, Options{})
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(5, 0, 0)}
	at, p, ok := EarliestValidDeparture(e2, q)
	if !ok {
		t.Fatal("expected a departure to exist")
	}
	if at != temporal.Clock(8, 0, 0) {
		t.Errorf("earliest departure = %v, want 8:00", at)
	}
	if p == nil || p.Hops() != 1 {
		t.Errorf("path = %v", p)
	}
	// Immediately routable queries return the original time.
	qNoon := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	at2, _, ok := EarliestValidDeparture(e, qNoon)
	if !ok || at2 != qNoon.At {
		t.Errorf("noon departure = %v, %v", at2, ok)
	}
	// After the last closing there is no departure.
	qLate := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(17, 0, 0)}
	if _, _, ok := EarliestValidDeparture(e2, qLate); ok {
		t.Error("late departure should not exist")
	}
}

// deadEndVenue: hall and a room joined by a single 8:00–16:00 door.
func deadEndVenue(t testing.TB) *model.Venue {
	t.Helper()
	b := model.NewBuilder("dead-end-window")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), sched("8:00", "16:00"))
	b.ConnectBi(d, hall, room)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v
}
