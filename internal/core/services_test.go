package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func TestSingleSourceMatchesPairwise(t *testing.T) {
	// Distances from SingleSource must equal per-pair engine routes to
	// partition-center targets.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{})
		src := geom.Pt(5, 5, 0) // corner partition is always public
		at := temporal.TimeOfDay(rng.Float64() * 86400)
		dm, err := SingleSource(g, src, at, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range v.Partitions() {
			center := p.Rect.Center()
			path, _, err := e.Route(Query{Source: src, Target: center, At: at})
			pd, reach := dm.Partitions[p.ID]
			if errors.Is(err, ErrNoRoute) {
				// The partition may still be "reached" by the map while
				// the center is unreachable only if ... it cannot: center
				// targets share the partition's entering doors.
				if reach && p.ID != dm.mustLocate(t, v, src) {
					t.Fatalf("trial %d: map reaches %s but route does not", trial, p.Name)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reach {
				t.Fatalf("trial %d: route reaches %s but map does not", trial, p.Name)
			}
			// Path length = door distance + final in-partition leg >= map
			// distance to the partition.
			if path.Length < pd-1e-9 {
				t.Fatalf("trial %d: pair %v < map %v for %s", trial, path.Length, pd, p.Name)
			}
			_ = pd
		}
	}
}

// mustLocate is a test helper fetching the source partition.
func (dm *DistanceMap) mustLocate(t *testing.T, v *model.Venue, src geom.Point) model.PartitionID {
	t.Helper()
	id, ok := v.Locate(src)
	if !ok {
		t.Fatal("source not indoor")
	}
	return id
}

func TestSingleSourceDoorsMatchEngineDist(t *testing.T) {
	g, _, ds := corridorVenue(t)
	at := temporal.Clock(12, 0, 0)
	src := geom.Pt(2, 5, 0)
	dm, err := SingleSource(g, src, at, 0)
	if err != nil {
		t.Fatal(err)
	}
	// d1 at (10,5): straight 8 m. d2 via B: 8+10. d3 via C: 28.
	want := map[model.DoorID]float64{
		ds["d1"]: 8, ds["d2"]: 18, ds["d3"]: 28,
	}
	for d, w := range want {
		if got := dm.Doors[d]; math.Abs(got-w) > 1e-9 {
			t.Errorf("door %v dist = %v, want %v", d, got, w)
		}
	}
	// At 3:00, d2 is closed: C reachable only via the detour.
	dm2, err := SingleSource(g, src, temporal.Clock(3, 0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if dm2.Doors[ds["d2"]] != 0 && dm2.Doors[ds["d2"]] == 18 {
		t.Error("closed d2 must not keep its daytime distance")
	}
	if _, ok := dm2.Doors[ds["d2"]]; ok {
		t.Error("closed d2 must be absent from the map")
	}
	if dm2.Partitions[mustPart(t, g.Venue(), "C")] <= dm.Partitions[mustPart(t, g.Venue(), "C")] {
		t.Error("C must be farther at night (detour)")
	}
}

func mustPart(t *testing.T, v *model.Venue, name string) model.PartitionID {
	t.Helper()
	id, ok := v.PartitionByName(name)
	if !ok {
		t.Fatalf("partition %s missing", name)
	}
	return id
}

func TestSingleSourceErrors(t *testing.T) {
	g, _, _ := corridorVenue(t)
	if _, err := SingleSource(g, geom.Pt(-99, -99, 0), 0, 0); !errors.Is(err, ErrNotIndoor) {
		t.Errorf("err = %v", err)
	}
}

func TestNearestPartitions(t *testing.T) {
	g, ps, _ := corridorVenue(t)
	src := geom.Pt(2, 5, 0)
	at := temporal.Clock(12, 0, 0)
	near, err := NearestPartitions(g, src, at, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(near) != 3 {
		t.Fatalf("got %d results", len(near))
	}
	if near[0].Partition != ps["A"] || near[0].Dist != 0 {
		t.Errorf("nearest should be the source partition: %+v", near[0])
	}
	if !sort.SliceIsSorted(near, func(i, j int) bool {
		return near[i].Dist < near[j].Dist || (near[i].Dist == near[j].Dist && near[i].Partition < near[j].Partition)
	}) {
		t.Error("results not sorted")
	}
	// At 3:00 fewer partitions are reachable... all partitions here are
	// reachable via detours except through d2; count stays 3 of 5.
	nearNight, err := NearestPartitions(g, src, temporal.Clock(3, 0, 0), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nearNight) == 0 {
		t.Error("night kNN empty")
	}
	// Custom filter: hallway-like X only.
	only := func(p model.Partition) bool { return p.Name == "X" }
	nx, err := NearestPartitions(g, src, at, 0, only)
	if err != nil {
		t.Fatal(err)
	}
	if len(nx) != 1 || nx[0].Partition != ps["X"] {
		t.Errorf("filtered kNN = %+v", nx)
	}
	if _, err := NearestPartitions(g, geom.Pt(-1, -1, 0), at, 1, nil); err == nil {
		t.Error("outdoor source must fail")
	}
}

func TestNearestRespectsClosures(t *testing.T) {
	v := deadEndVenue(t)
	g := itgraph.MustNew(v)
	src := geom.Pt(2, 5, 0)
	day, err := NearestPartitions(g, src, temporal.Clock(12, 0, 0), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	night, err := NearestPartitions(g, src, temporal.Clock(20, 0, 0), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(day) != 1 { // "room" is the only public partition
		t.Fatalf("day kNN = %+v", day)
	}
	if len(night) != 0 {
		t.Fatalf("night kNN should be empty, got %+v", night)
	}
}

func TestDayProfile(t *testing.T) {
	v := deadEndVenue(t)
	g := itgraph.MustNew(v)
	e := NewEngine(g, Options{})
	profile, err := DayProfile(e, geom.Pt(2, 5, 0), geom.Pt(15, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoints 8:00 and 16:00 → slots [0,8), [8,16), [16,24).
	if len(profile) != 3 {
		t.Fatalf("profile has %d entries", len(profile))
	}
	if profile[0].Reachable {
		t.Error("slot [0,8) must be unreachable")
	}
	if !profile[1].Reachable || profile[1].Hops != 1 {
		t.Errorf("slot [8,16) = %+v", profile[1])
	}
	if profile[2].Reachable {
		t.Error("slot [16,24) must be unreachable")
	}
	if profile[1].Start != temporal.Clock(8, 0, 0) || profile[1].End != temporal.Clock(16, 0, 0) {
		t.Errorf("slot bounds %v–%v", profile[1].Start, profile[1].End)
	}
	if math.Abs(profile[1].Length-13) > 1e-9 { // 8 m to the door + 5 m inside
		t.Errorf("slot length = %v", profile[1].Length)
	}
}
