package core

import (
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// AccessChecker is the paper's TV_Check(dj, distj, t) hook of Algorithm
// 1 line 30: it decides whether door d can be passed by a user who
// leaves the source at time t and has walked dist metres upon reaching
// d. Implementations are stateful per query; Begin resets them.
type AccessChecker interface {
	// Name identifies the method in experiment output ("ITG/S", "ITG/A").
	Name() string
	// Begin prepares the checker for a query issued at time t with the
	// given walking speed (m/s).
	Begin(t temporal.TimeOfDay, speed float64)
	// Check reports whether door d is open on arrival after dist metres.
	Check(d model.DoorID, dist float64) bool
	// Stats returns counters accumulated since Begin.
	Stats() CheckerStats
}

// CheckerStats counts checker work for the experiment harness
// (JSON-tagged for the server wire, like SearchStats).
type CheckerStats struct {
	Checks         int `json:"checks"` // TV_Check invocations
	Passed         int `json:"passed"`
	ATIProbes      int `json:"ati_probes"`      // schedule binary searches (Syn)
	SnapshotProbes int `json:"snapshot_probes"` // O(1) bitset probes (Asyn)
	SlotSwitches   int `json:"slot_switches"`   // times the arrival crossed into another slot
	SnapshotBuilds int `json:"snapshot_builds"` // Graph_Update executions triggered by this query
	SnapshotBytes  int `json:"snapshot_bytes"`  // bytes of snapshots consulted by this query
	PrunedLists    int `json:"pruned_lists"`    // expansions served from reduced leave-door lists
}

// leavePruner is the optional fast path of the asynchronous method: an
// expansion whose entire arrival window [base, base+maxLeg] (in walked
// metres) stays inside one checkpoint slot can iterate the slot's
// reduced leave-door list directly — every listed door is open
// throughout the slot, so the per-door TV check is subsumed. This is
// the paper's "reduced versions of IT-Graph in the outward expansion".
type leavePruner interface {
	// PrunedLeaveDoors returns the open leaveable doors of partition w
	// for arrivals between base and base+maxLeg walked metres, with
	// ok=false when the window crosses a checkpoint (caller must fall
	// back to the full list plus per-door checks).
	PrunedLeaveDoors(w model.PartitionID, base, maxLeg float64) ([]model.DoorID, bool)
}

// SynChecker is the synchronous check of Algorithm 2: compute the
// arrival time and search the door's ATIs directly.
type SynChecker struct {
	venue *model.Venue
	t     temporal.TimeOfDay
	speed float64
	stats CheckerStats
}

// NewSynChecker builds the ITG/S checker for a graph.
func NewSynChecker(g *itgraph.Graph) *SynChecker {
	return &SynChecker{venue: g.Venue()}
}

// Name implements AccessChecker.
func (c *SynChecker) Name() string { return "ITG/S" }

// Begin implements AccessChecker.
func (c *SynChecker) Begin(t temporal.TimeOfDay, speed float64) {
	c.t = t
	c.speed = speed
	c.stats = CheckerStats{}
}

// Check implements AccessChecker: tarr ← t + dist/velocity; return
// tarr ∈ d.ATIs.
func (c *SynChecker) Check(d model.DoorID, dist float64) bool {
	c.stats.Checks++
	tarr := (c.t + temporal.TimeOfDay(dist/c.speed)).Mod()
	c.stats.ATIProbes++
	ok := c.venue.Door(d).ATIs.Contains(tarr)
	if ok {
		c.stats.Passed++
	}
	return ok
}

// Stats implements AccessChecker.
func (c *SynChecker) Stats() CheckerStats { return c.stats }

// AsynChecker is the asynchronous check of Algorithm 4: instead of
// scanning ATIs per door, it consults the reduced IT-Graph snapshot
// (built by Graph_Update, Algorithm 3) for the checkpoint slot
// containing the arrival time. Snapshot membership is an O(1) bitset
// probe; snapshots are cached across checks and across queries, so
// Graph_Update runs at most once per slot per graph.
//
// Because slot boundaries are exactly the ATI boundaries, the probe is
// semantically identical to the synchronous check — ITG/A returns the
// same paths as ITG/S (verified by property test), only cheaper.
type AsynChecker struct {
	snaps *itgraph.SnapshotSeries
	t     temporal.TimeOfDay
	speed float64
	cur   *itgraph.Snapshot // current reduced graph G'_IT
	stats CheckerStats
}

// NewAsynChecker builds the ITG/A checker for a graph.
func NewAsynChecker(g *itgraph.Graph) *AsynChecker {
	return &AsynChecker{snaps: g.Snapshots()}
}

// Name implements AccessChecker.
func (c *AsynChecker) Name() string { return "ITG/A" }

// Begin implements AccessChecker: position the current snapshot at the
// query time.
func (c *AsynChecker) Begin(t temporal.TimeOfDay, speed float64) {
	c.t = t
	c.speed = speed
	c.stats = CheckerStats{}
	before := c.snaps.Builds()
	c.cur = c.snaps.At(t.Mod())
	c.stats.SnapshotBuilds += c.snaps.Builds() - before
	c.stats.SnapshotBytes = c.cur.MemoryBytes()
}

// Check implements AccessChecker.
func (c *AsynChecker) Check(d model.DoorID, dist float64) bool {
	c.stats.Checks++
	tarr := (c.t + temporal.TimeOfDay(dist/c.speed)).Mod()
	// Asyn_Check line 4: if the arrival falls outside the current
	// snapshot's slot, run Graph_Update for the slot containing tarr.
	if tarr < c.cur.Start || tarr >= c.cur.End {
		c.stats.SlotSwitches++
		before := c.snaps.Builds()
		c.cur = c.snaps.At(tarr)
		c.stats.SnapshotBuilds += c.snaps.Builds() - before
		c.stats.SnapshotBytes += c.cur.MemoryBytes()
	}
	c.stats.SnapshotProbes++
	ok := c.cur.DoorOpen(d)
	if ok {
		c.stats.Passed++
	}
	return ok
}

// Stats implements AccessChecker.
func (c *AsynChecker) Stats() CheckerStats { return c.stats }

// PrunedLeaveDoors implements leavePruner.
func (c *AsynChecker) PrunedLeaveDoors(w model.PartitionID, base, maxLeg float64) ([]model.DoorID, bool) {
	lo := c.t + temporal.TimeOfDay(base/c.speed)
	hi := c.t + temporal.TimeOfDay((base+maxLeg)/c.speed)
	if hi >= temporal.DaySeconds {
		return nil, false // window wraps midnight: fall back
	}
	if lo < c.cur.Start || lo >= c.cur.End {
		c.stats.SlotSwitches++
		before := c.snaps.Builds()
		c.cur = c.snaps.At(lo)
		c.stats.SnapshotBuilds += c.snaps.Builds() - before
		c.stats.SnapshotBytes += c.cur.MemoryBytes()
	}
	if hi >= c.cur.End {
		return nil, false // window crosses the next checkpoint
	}
	c.stats.PrunedLists++
	return c.cur.LeaveDoors(w), true
}

// alwaysOpenChecker ignores temporal variation — the temporal-unaware
// static baseline (classic ISPQ over the accessibility graph).
type alwaysOpenChecker struct{ checks int }

func (c *alwaysOpenChecker) Name() string                          { return "Static" }
func (c *alwaysOpenChecker) Begin(_ temporal.TimeOfDay, _ float64) { c.checks = 0 }
func (c *alwaysOpenChecker) Check(_ model.DoorID, _ float64) bool  { c.checks++; return true }
func (c *alwaysOpenChecker) Stats() CheckerStats {
	return CheckerStats{Checks: c.checks, Passed: c.checks}
}
