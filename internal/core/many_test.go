package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// manyGridVenue builds a grid of rooms with randomised door schedules,
// positions, directionality and a sprinkle of private rooms — the
// adversarial fixture for shared-execution equivalence. It mirrors the
// serving layer's grid fixture so the two suites cover the same ground
// from both sides of the engine API.
func manyGridVenue(t testing.TB, rng *rand.Rand, rows, cols int) *model.Venue {
	t.Helper()
	b := model.NewBuilder(fmt.Sprintf("many-grid-%dx%d", rows, cols))
	const cell = 10.0
	parts := make([][]model.PartitionID, rows)
	for r := 0; r < rows; r++ {
		parts[r] = make([]model.PartitionID, cols)
		for c := 0; c < cols; c++ {
			kind := model.PublicPartition
			corner := (r == 0 || r == rows-1) && (c == 0 || c == cols-1)
			if !corner && rng.Float64() < 0.15 {
				kind = model.PrivatePartition
			}
			parts[r][c] = b.AddPartition(fmt.Sprintf("r%dc%d", r, c), kind,
				geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
		}
	}
	randSched := func() temporal.Schedule {
		if rng.Intn(3) == 0 {
			return nil // always open
		}
		o := temporal.TimeOfDay(rng.Intn(14) * 3600)
		return temporal.MustSchedule(temporal.MustInterval(o, o+temporal.TimeOfDay(3600*(2+rng.Intn(10)))))
	}
	connect := func(d model.DoorID, a, b2 model.PartitionID) {
		if rng.Float64() < 0.15 {
			b.ConnectOneWay(d, a, b2) // one-way door
			return
		}
		b.ConnectBi(d, a, b2)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < 0.92 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c+1)*cell, float64(r)*cell+rng.Float64()*cell, 0), randSched())
				connect(d, parts[r][c], parts[r][c+1])
			}
			if r+1 < rows && rng.Float64() < 0.92 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c)*cell+rng.Float64()*cell, float64(r+1)*cell, 0), randSched())
				connect(d, parts[r][c], parts[r+1][c])
			}
		}
	}
	return b.MustBuild()
}

// assertSameAsSolo checks one ManyOutcome against the solo engine
// answer for the same query, byte for byte.
func assertSameAsSolo(t *testing.T, label string, e *Engine, q Query, got ManyOutcome) {
	t.Helper()
	wantPath, _, wantErr := e.Route(q)
	if (got.Err == nil) != (wantErr == nil) {
		t.Fatalf("%s: err = %v, solo err = %v", label, got.Err, wantErr)
	}
	if got.Err != nil {
		if errors.Is(got.Err, ErrNoRoute) != errors.Is(wantErr, ErrNoRoute) ||
			errors.Is(got.Err, ErrNotIndoor) != errors.Is(wantErr, ErrNotIndoor) ||
			got.Err.Error() != wantErr.Error() {
			t.Fatalf("%s: err = %v, solo err = %v", label, got.Err, wantErr)
		}
		return
	}
	if !reflect.DeepEqual(got.Path, wantPath) {
		t.Fatalf("%s: shared path differs from solo\n got: %+v\nwant: %+v", label, got.Path, wantPath)
	}
}

var manyMethods = []Method{MethodSyn, MethodAsyn, MethodStatic}

// TestRouteManyMatchesSolo: a shared-source fan-out over many random
// targets (locatable or not, private or not) is byte-identical per
// target to solo Route, for every method, on two fixtures.
func TestRouteManyMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(1201))
	for trial, dims := range [][2]int{{4, 5}, {6, 6}} {
		v := manyGridVenue(t, rng, dims[0], dims[1])
		g := itgraph.MustNew(v)
		w := float64(dims[1]) * 10
		h := float64(dims[0]) * 10
		for probe := 0; probe < 4; probe++ {
			src := geom.Pt(rng.Float64()*w, rng.Float64()*h, 0)
			at := temporal.TimeOfDay(rng.Intn(86400))
			var targets []geom.Point
			for i := 0; i < 24; i++ {
				targets = append(targets, geom.Pt(rng.Float64()*w, rng.Float64()*h, 0))
			}
			targets = append(targets, geom.Pt(-40, 0, 0)) // unlocatable
			targets = append(targets, src)                // source partition target
			targets = append(targets, targets[0])         // duplicate
			for _, m := range manyMethods {
				e := NewEngine(g, Options{Method: m})
				solo := NewEngine(g, Options{Method: m})
				outs := e.RouteMany(src, targets, at, 0)
				if len(outs) != len(targets) {
					t.Fatalf("RouteMany returned %d outcomes for %d targets", len(outs), len(targets))
				}
				for j, o := range outs {
					label := fmt.Sprintf("trial %d probe %d method %v target %d", trial, probe, m, j)
					assertSameAsSolo(t, label, solo, Query{Source: src, Target: targets[j], At: at}, o)
				}
			}
		}
	}
}

// TestRouteManyUnlocatableSource: every outcome carries the solo
// source error when the shared source is outside the venue.
func TestRouteManyUnlocatableSource(t *testing.T) {
	rng := rand.New(rand.NewSource(1301))
	g := itgraph.MustNew(manyGridVenue(t, rng, 3, 3))
	e := NewEngine(g, Options{})
	src := geom.Pt(-5, -5, 0)
	outs := e.RouteMany(src, []geom.Point{geom.Pt(5, 5, 0), geom.Pt(15, 15, 0)}, temporal.Clock(12, 0, 0), 0)
	solo := NewEngine(g, Options{})
	for j, o := range outs {
		if o.Err == nil || !errors.Is(o.Err, ErrNotIndoor) {
			t.Fatalf("target %d: err = %v, want ErrNotIndoor", j, o.Err)
		}
		_, _, wantErr := solo.Route(Query{Source: src, Target: geom.Pt(5, 5, 0), At: temporal.Clock(12, 0, 0)})
		if o.Err.Error() != wantErr.Error() {
			t.Fatalf("target %d: err %q, solo err %q", j, o.Err, wantErr)
		}
	}
}

// TestRouteManyPrivateTargetsGoSolo: targets in private partitions are
// answered by fallback searches (Solo flag) and still match solo.
func TestRouteManyPrivateTargetsGoSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(1401))
	var v *model.Venue
	var private geom.Point
	found := false
	for tries := 0; tries < 20 && !found; tries++ {
		v = manyGridVenue(t, rng, 5, 5)
		for p := 0; p < v.PartitionCount(); p++ {
			part := v.Partition(model.PartitionID(p))
			if part.Kind.IsPrivate() {
				r := part.Rect
				private = geom.Pt((r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2, part.Floor())
				found = true
				break
			}
		}
	}
	if !found {
		t.Skip("no private partition generated")
	}
	g := itgraph.MustNew(v)
	e := NewEngine(g, Options{Method: MethodSyn})
	src := geom.Pt(2, 2, 0)
	outs := e.RouteMany(src, []geom.Point{private, geom.Pt(42, 42, 0)}, temporal.Clock(12, 0, 0), 0)
	if !outs[0].Solo {
		t.Fatal("private-partition target was not routed solo")
	}
	if outs[1].Solo {
		t.Fatal("public target was routed solo")
	}
	solo := NewEngine(g, Options{Method: MethodSyn})
	assertSameAsSolo(t, "private target", solo, Query{Source: src, Target: private, At: temporal.Clock(12, 0, 0)}, outs[0])
}

// TestRouteManyToMatchesSolo: the reverse destination-rooted run of the
// static method is byte-identical per source to solo Route; temporal
// methods fall back to solo searches (and still match trivially).
func TestRouteManyToMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(1501))
	for trial, dims := range [][2]int{{4, 5}, {6, 6}} {
		v := manyGridVenue(t, rng, dims[0], dims[1])
		g := itgraph.MustNew(v)
		w := float64(dims[1]) * 10
		h := float64(dims[0]) * 10
		for probe := 0; probe < 4; probe++ {
			tgt := geom.Pt(rng.Float64()*w, rng.Float64()*h, 0)
			at := temporal.TimeOfDay(rng.Intn(86400))
			var sources []geom.Point
			for i := 0; i < 24; i++ {
				sources = append(sources, geom.Pt(rng.Float64()*w, rng.Float64()*h, 0))
			}
			sources = append(sources, geom.Pt(-40, 0, 0)) // unlocatable
			sources = append(sources, tgt)                // target partition source
			for _, m := range manyMethods {
				e := NewEngine(g, Options{Method: m})
				solo := NewEngine(g, Options{Method: m})
				outs := e.RouteManyTo(sources, tgt, at, 0)
				sharedSeen := false
				for j, o := range outs {
					label := fmt.Sprintf("trial %d probe %d method %v source %d", trial, probe, m, j)
					assertSameAsSolo(t, label, solo, Query{Source: sources[j], Target: tgt, At: at}, o)
					sharedSeen = sharedSeen || (!o.Solo && o.Err == nil)
				}
				if m != MethodStatic {
					for j, o := range outs {
						if o.Err == nil && !o.Solo {
							t.Fatalf("method %v source %d: temporal RouteManyTo did not fall back to solo", m, j)
						}
					}
				} else if !sharedSeen && probe == 0 && trial == 0 {
					t.Log("note: no shared reverse answers on this draw")
				}
			}
		}
	}
}

// TestRebaseDeparture: a static answer rebased to a different departure
// is byte-identical to a fresh static search at that departure.
func TestRebaseDeparture(t *testing.T) {
	rng := rand.New(rand.NewSource(1601))
	v := manyGridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	e := NewEngine(g, Options{Method: MethodStatic})
	solo := NewEngine(g, Options{Method: MethodStatic})
	rebased := 0
	for probe := 0; probe < 40; probe++ {
		q := Query{
			Source: geom.Pt(rng.Float64()*40, rng.Float64()*40, 0),
			Target: geom.Pt(rng.Float64()*40, rng.Float64()*40, 0),
			At:     temporal.TimeOfDay(rng.Intn(86400)),
		}
		p, _, err := e.Route(q)
		if err != nil {
			continue
		}
		q2 := q
		q2.At = temporal.TimeOfDay(rng.Intn(2 * 86400)) // may need Mod
		got := e.RebaseDeparture(p, q2)
		want, _, err := solo.Route(q2)
		if err != nil {
			t.Fatalf("solo static re-route failed: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("rebased path differs from fresh search\n got: %+v\nwant: %+v", got, want)
		}
		rebased++
	}
	if rebased == 0 {
		t.Fatal("no found paths to rebase")
	}
}

// TestRouteManyEngineReusableAfter: a shared run must leave the engine
// in a clean state for ordinary Route calls (pooling contract).
func TestRouteManyEngineReusableAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(1701))
	v := manyGridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	e := NewEngine(g, Options{Method: MethodAsyn})
	solo := NewEngine(g, Options{Method: MethodAsyn})
	src := geom.Pt(5, 5, 0)
	targets := []geom.Point{geom.Pt(35, 35, 0), geom.Pt(15, 25, 0)}
	e.RouteMany(src, targets, temporal.Clock(11, 0, 0), 0)
	q := Query{Source: geom.Pt(12, 8, 0), Target: geom.Pt(33, 14, 0), At: temporal.Clock(13, 0, 0)}
	gotPath, _, gotErr := e.Route(q)
	wantPath, _, wantErr := solo.Route(q)
	if (gotErr == nil) != (wantErr == nil) || !reflect.DeepEqual(gotPath, wantPath) {
		t.Fatalf("post-RouteMany Route diverged: %v/%v vs %v/%v", gotPath, gotErr, wantPath, wantErr)
	}
}
