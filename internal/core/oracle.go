package core

import (
	"math"

	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// OracleResult is the outcome of the exhaustive reference search.
type OracleResult struct {
	Found  bool
	Length float64
	Doors  []model.DoorID
}

// OracleShortest exhaustively enumerates every simple partition
// sequence from the source to the target and returns the shortest valid
// one under ITSPQ semantics (doors open on arrival, no waiting, no
// private through-partitions). It is exponential and intended only for
// validating the engine on small venues in tests.
func OracleShortest(g *itgraph.Graph, q Query) OracleResult {
	v := g.Venue()
	srcPart, ok := v.Locate(q.Source)
	if !ok {
		return OracleResult{}
	}
	tgtPart, ok := v.Locate(q.Target)
	if !ok {
		return OracleResult{}
	}
	speed := q.speed()
	t0 := q.At.Mod()

	best := OracleResult{Length: math.Inf(1)}
	inPath := map[model.PartitionID]bool{srcPart: true}
	var doors []model.DoorID

	var dfs func(w model.PartitionID, anchor model.DoorID, dist float64)
	dfs = func(w model.PartitionID, anchor model.DoorID, dist float64) {
		// Reaching the target partition ends the walk at pt.
		if w == tgtPart {
			var leg float64
			if anchor == model.NoDoor {
				leg = g.DM().PointToPoint(w, q.Source, q.Target)
			} else {
				leg = g.DM().PointToDoor(w, q.Target, anchor)
			}
			if total := dist + leg; total < best.Length {
				best.Found = true
				best.Length = total
				best.Doors = append(best.Doors[:0], doors...)
			}
			return
		}
		for _, dj := range v.LeaveDoors(w) {
			var leg float64
			if anchor == model.NoDoor {
				leg = g.DM().PointToDoor(w, q.Source, dj)
			} else {
				leg = g.DM().Dist(w, anchor, dj)
			}
			if math.IsInf(leg, 1) {
				continue
			}
			distj := dist + leg
			if distj >= best.Length {
				continue
			}
			tarr := (t0 + temporal.TimeOfDay(distj/speed)).Mod()
			if !v.Door(dj).OpenAt(tarr) {
				continue
			}
			for _, nxt := range v.NextPartitions(dj, w) {
				if inPath[nxt] {
					continue
				}
				if nxt != tgtPart && v.Partition(nxt).Kind.IsPrivate() {
					continue
				}
				inPath[nxt] = true
				doors = append(doors, dj)
				dfs(nxt, dj, distj)
				doors = doors[:len(doors)-1]
				delete(inPath, nxt)
			}
		}
	}
	dfs(srcPart, model.NoDoor, 0)
	if !best.Found {
		return OracleResult{}
	}
	return best
}
