package core

import (
	"errors"
	"math"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func sched(open, close string) temporal.Schedule {
	return temporal.MustSchedule(temporal.MustInterval(
		temporal.MustParse(open), temporal.MustParse(close)))
}

// corridorVenue builds a 1x4 corridor of rooms:
//
//	A(0..10) -d1- B(10..20) -d2- C(20..30) -d3- D(30..40)
//	plus a detour row: A -d4- X(0..20, y10..20) -d5- C (joining at C)
//
// d2 has restricted hours so the detour matters.
func corridorVenue(t testing.TB) (*itgraph.Graph, map[string]model.PartitionID, map[string]model.DoorID) {
	t.Helper()
	b := model.NewBuilder("corridor")
	A := b.AddPartition("A", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	B := b.AddPartition("B", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	C := b.AddPartition("C", model.PublicPartition, geom.NewRect(20, 0, 30, 10, 0))
	D := b.AddPartition("D", model.PublicPartition, geom.NewRect(30, 0, 40, 10, 0))
	X := b.AddPartition("X", model.PublicPartition, geom.NewRect(0, 10, 30, 20, 0))

	d1 := b.AddDoor("d1", model.PublicDoor, geom.Pt(10, 5, 0), nil)
	d2 := b.AddDoor("d2", model.PublicDoor, geom.Pt(20, 5, 0), sched("8:00", "16:00"))
	d3 := b.AddDoor("d3", model.PublicDoor, geom.Pt(30, 5, 0), nil)
	d4 := b.AddDoor("d4", model.PublicDoor, geom.Pt(5, 10, 0), nil)
	d5 := b.AddDoor("d5", model.PublicDoor, geom.Pt(25, 10, 0), nil)

	b.ConnectBi(d1, A, B)
	b.ConnectBi(d2, B, C)
	b.ConnectBi(d3, C, D)
	b.ConnectBi(d4, A, X)
	b.ConnectBi(d5, X, C)

	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return itgraph.MustNew(v),
		map[string]model.PartitionID{"A": A, "B": B, "C": C, "D": D, "X": X},
		map[string]model.DoorID{"d1": d1, "d2": d2, "d3": d3, "d4": d4, "d5": d5}
}

func routeBoth(t *testing.T, g *itgraph.Graph, q Query) (*Path, *Path) {
	t.Helper()
	syn := NewEngine(g, Options{Method: MethodSyn})
	asy := NewEngine(g, Options{Method: MethodAsyn})
	ps, _, errS := syn.Route(q)
	pa, _, errA := asy.Route(q)
	if (errS == nil) != (errA == nil) {
		t.Fatalf("ITG/S err=%v but ITG/A err=%v", errS, errA)
	}
	if errS != nil {
		if !errors.Is(errS, ErrNoRoute) {
			t.Fatalf("unexpected error: %v", errS)
		}
		return nil, nil
	}
	if math.Abs(ps.Length-pa.Length) > 1e-9 {
		t.Fatalf("length mismatch: ITG/S %v vs ITG/A %v", ps.Length, pa.Length)
	}
	return ps, pa
}

func TestDirectSamePartition(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(1, 1, 0), Target: geom.Pt(4, 5, 0), At: temporal.Clock(12, 0, 0)}
	p, _ := routeBoth(t, g, q)
	if p == nil {
		t.Fatal("no route")
	}
	if p.Hops() != 0 {
		t.Errorf("hops = %d, want direct", p.Hops())
	}
	if want := 5.0; math.Abs(p.Length-want) > 1e-9 {
		t.Errorf("length = %v, want %v", p.Length, want)
	}
	if err := p.Validate(g, q); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestShortestThroughOpenDoors(t *testing.T) {
	g, _, ds := corridorVenue(t)
	// At noon d2 is open: straight line A→B→C→D along y=5.
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	p, _ := routeBoth(t, g, q)
	if p == nil {
		t.Fatal("no route")
	}
	if want := 36.0; math.Abs(p.Length-want) > 1e-9 {
		t.Errorf("length = %v, want %v", p.Length, want)
	}
	if p.Hops() != 3 {
		t.Errorf("hops = %d, want 3", p.Hops())
	}
	if p.Doors[1] != ds["d2"] {
		t.Errorf("expected middle door d2, got %v", p.Doors)
	}
	if err := p.Validate(g, q); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Arrivals are increasing and consistent.
	for i := 1; i < len(p.Arrivals); i++ {
		if p.Arrivals[i] < p.Arrivals[i-1] {
			t.Error("arrivals must be non-decreasing")
		}
	}
}

func TestDetourWhenDoorClosed(t *testing.T) {
	g, _, ds := corridorVenue(t)
	// At 6:00 d2 is closed: must take the detour through X.
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(6, 0, 0)}
	p, _ := routeBoth(t, g, q)
	if p == nil {
		t.Fatal("no route")
	}
	for _, d := range p.Doors {
		if d == ds["d2"] {
			t.Fatal("path crosses closed d2")
		}
	}
	if err := p.Validate(g, q); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The detour must be longer than the straight line.
	if p.Length <= 36 {
		t.Errorf("detour length = %v, should exceed 36", p.Length)
	}
	or := OracleShortest(g, q)
	if !or.Found || math.Abs(or.Length-p.Length) > 1e-9 {
		t.Errorf("oracle %v vs engine %v", or.Length, p.Length)
	}
}

func TestClosingWhileWalking(t *testing.T) {
	g, _, _ := corridorVenue(t)
	// Depart at 15:59:50: d2 (closes 16:00) is open at departure but the
	// walk to it (18 m ≈ 13 s) arrives just past 16:00 → detour.
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(15, 59, 55)}
	p, _ := routeBoth(t, g, q)
	if p == nil {
		t.Fatal("no route")
	}
	if p.Length <= 36 {
		t.Errorf("should be forced onto the detour, length = %v", p.Length)
	}
	if err := p.Validate(g, q); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Just before, the straight path still works end-to-end.
	q2 := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(15, 30, 0)}
	p2, _ := routeBoth(t, g, q2)
	if p2 == nil || math.Abs(p2.Length-36) > 1e-9 {
		t.Errorf("15:30 route length = %v, want 36", p2.Length)
	}
}

func TestNoRoute(t *testing.T) {
	g, _, _ := corridorVenue(t)
	// At 3:00 d2 closed; detour d4/d5 always open so D still reachable.
	// Cut everything: query into D at 3:00 requires d3 (open) and C —
	// reach C via detour; so route exists. Build a true no-route case:
	// source D, target B at 3:00 — B only reachable through d1 (open)
	// from A or d2 (closed) from C; A reachable via X. So still a route.
	// Instead make an isolated-at-night target: use a venue where the
	// only door into the target room is closed.
	b := model.NewBuilder("dead-end")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), sched("8:00", "16:00"))
	b.ConnectBi(d, hall, room)
	g2 := itgraph.MustNew(b.MustBuild())
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(20, 0, 0)}
	for _, m := range []Method{MethodSyn, MethodAsyn} {
		e := NewEngine(g2, Options{Method: m})
		p, st, err := e.Route(q)
		if !errors.Is(err, ErrNoRoute) {
			t.Errorf("%v: err = %v, want ErrNoRoute", m, err)
		}
		if p != nil {
			t.Errorf("%v: path should be nil", m)
		}
		if st.Found {
			t.Errorf("%v: stats.Found true on failure", m)
		}
		// RouteOrNil treats it as a regular outcome.
		p2, _, err2 := e.RouteOrNil(q)
		if p2 != nil || err2 != nil {
			t.Errorf("%v: RouteOrNil = %v, %v", m, p2, err2)
		}
	}
	_ = g
}

func TestPrivatePartitionRules(t *testing.T) {
	// A -d1- P(private) -d2- B, and a long public way A -d3- H -d4- B.
	b := model.NewBuilder("privacy")
	A := b.AddPartition("A", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	P := b.AddPartition("P", model.PrivatePartition, geom.NewRect(10, 0, 20, 10, 0))
	B := b.AddPartition("B", model.PublicPartition, geom.NewRect(20, 0, 30, 10, 0))
	H := b.AddPartition("H", model.HallwayPartition, geom.NewRect(0, 10, 30, 20, 0))
	d1 := b.AddDoor("d1", model.PrivateDoor, geom.Pt(10, 5, 0), nil)
	d2 := b.AddDoor("d2", model.PrivateDoor, geom.Pt(20, 5, 0), nil)
	d3 := b.AddDoor("d3", model.PublicDoor, geom.Pt(5, 10, 0), nil)
	d4 := b.AddDoor("d4", model.PublicDoor, geom.Pt(25, 10, 0), nil)
	b.ConnectBi(d1, A, P)
	b.ConnectBi(d2, P, B)
	b.ConnectBi(d3, A, H)
	b.ConnectBi(d4, H, B)
	g := itgraph.MustNew(b.MustBuild())

	noon := temporal.Clock(12, 0, 0)
	t.Run("through-route avoids private", func(t *testing.T) {
		q := Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(25, 5, 0), At: noon}
		p, _ := routeBoth(t, g, q)
		if p == nil {
			t.Fatal("no route")
		}
		for i, part := range p.Partitions {
			if part == P {
				t.Errorf("partition %d is the private P", i)
			}
		}
		if err := p.Validate(g, q); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
	t.Run("target inside private is allowed", func(t *testing.T) {
		q := Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: noon}
		p, _ := routeBoth(t, g, q)
		if p == nil {
			t.Fatal("target in private partition must be reachable")
		}
		if p.Hops() != 1 || p.Doors[0] != d1 {
			t.Errorf("path = %v, want direct through d1", p.Doors)
		}
		if err := p.Validate(g, q); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
	t.Run("source inside private is allowed", func(t *testing.T) {
		q := Query{Source: geom.Pt(15, 5, 0), Target: geom.Pt(25, 5, 0), At: noon}
		p, _ := routeBoth(t, g, q)
		if p == nil {
			t.Fatal("source in private partition must be able to leave")
		}
		if err := p.Validate(g, q); err != nil {
			t.Errorf("Validate: %v", err)
		}
	})
}

func TestOneWayDoors(t *testing.T) {
	// A -d(one-way A→B)- B with a long bidirectional way back.
	b := model.NewBuilder("one-way")
	A := b.AddPartition("A", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	B := b.AddPartition("B", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	H := b.AddPartition("H", model.HallwayPartition, geom.NewRect(0, 10, 20, 20, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), nil)
	d2 := b.AddDoor("d2", model.PublicDoor, geom.Pt(5, 10, 0), nil)
	d3 := b.AddDoor("d3", model.PublicDoor, geom.Pt(15, 10, 0), nil)
	b.ConnectOneWay(d, A, B)
	b.ConnectBi(d2, A, H)
	b.ConnectBi(d3, H, B)
	g := itgraph.MustNew(b.MustBuild())
	noon := temporal.Clock(12, 0, 0)

	fwd := Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: noon}
	p, _ := routeBoth(t, g, fwd)
	if p == nil || p.Hops() != 1 {
		t.Fatalf("forward should use the one-way door: %v", p)
	}
	back := Query{Source: geom.Pt(15, 5, 0), Target: geom.Pt(5, 5, 0), At: noon}
	p2, _ := routeBoth(t, g, back)
	if p2 == nil {
		t.Fatal("no route back")
	}
	if p2.Hops() != 2 {
		t.Errorf("backward hops = %d, want 2 (around through H)", p2.Hops())
	}
	for _, used := range p2.Doors {
		if used == d {
			t.Error("backward path crosses the one-way door against its direction")
		}
	}
	if err := p2.Validate(g, back); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNotIndoorErrors(t *testing.T) {
	g, _, _ := corridorVenue(t)
	e := NewEngine(g, Options{})
	if _, _, err := e.Route(Query{Source: geom.Pt(-5, -5, 0), Target: geom.Pt(5, 5, 0)}); !errors.Is(err, ErrNotIndoor) {
		t.Errorf("outdoor source err = %v", err)
	}
	if _, _, err := e.Route(Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(999, 999, 0)}); !errors.Is(err, ErrNotIndoor) {
		t.Errorf("outdoor target err = %v", err)
	}
	if _, _, err := e.Route(Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(5, 5, 7)}); !errors.Is(err, ErrNotIndoor) {
		t.Errorf("wrong-floor target err = %v", err)
	}
}

func TestEagerHeapMatchesLazy(t *testing.T) {
	g, _, _ := corridorVenue(t)
	for _, at := range []temporal.TimeOfDay{temporal.Clock(6, 0, 0), temporal.Clock(12, 0, 0), temporal.Clock(23, 0, 0)} {
		q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: at}
		lazy := NewEngine(g, Options{Method: MethodSyn})
		eager := NewEngine(g, Options{Method: MethodSyn, EagerHeapInit: true})
		pl, _, errL := lazy.Route(q)
		pe, _, errE := eager.Route(q)
		if (errL == nil) != (errE == nil) {
			t.Fatalf("at %v: lazy err %v vs eager err %v", at, errL, errE)
		}
		if errL == nil && math.Abs(pl.Length-pe.Length) > 1e-9 {
			t.Errorf("at %v: lazy %v vs eager %v", at, pl.Length, pe.Length)
		}
	}
}

func TestNoDistanceMatrixMatchesDM(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	a := NewEngine(g, Options{Method: MethodSyn})
	bE := NewEngine(g, Options{Method: MethodSyn, NoDistanceMatrix: true})
	pa, _, err1 := a.Route(q)
	pb, _, err2 := bE.Route(q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if math.Abs(pa.Length-pb.Length) > 1e-9 {
		t.Errorf("DM %v vs recompute %v", pa.Length, pb.Length)
	}
}

func TestSearchStatsPopulated(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	for _, m := range []Method{MethodSyn, MethodAsyn} {
		e := NewEngine(g, Options{Method: m})
		_, st, err := e.Route(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Pops == 0 || st.Settled == 0 || st.Relaxations == 0 {
			t.Errorf("%v: empty counters %+v", m, st)
		}
		if st.DoorsTouched == 0 || st.PartitionsVisited == 0 || st.HeapMax == 0 {
			t.Errorf("%v: empty aggregates %+v", m, st)
		}
		if st.BytesEstimate <= 0 {
			t.Errorf("%v: bytes estimate %d", m, st.BytesEstimate)
		}
		if m == MethodSyn && (st.Checker.Checks == 0 || st.Checker.ATIProbes == 0) {
			t.Error("Syn must probe ATIs")
		}
		if m == MethodAsyn && st.Checker.SnapshotProbes == 0 && st.Checker.PrunedLists == 0 {
			t.Error("Asyn must probe snapshots or use reduced lists")
		}
		if !st.Found || st.PathHops == 0 || st.PathLength <= 0 {
			t.Errorf("%v: result stats %+v", m, st)
		}
		if st.Method != m.String() {
			t.Errorf("method name %q vs %q", st.Method, m.String())
		}
	}
}

func TestStaticRouterIgnoresTime(t *testing.T) {
	g, _, ds := corridorVenue(t)
	r := NewStaticRouter(g)
	// At 3:00 d2 is closed but the static baseline uses it anyway.
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(3, 0, 0)}
	p, _, err := r.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length-36) > 1e-9 {
		t.Errorf("static length = %v, want 36", p.Length)
	}
	used := false
	for _, d := range p.Doors {
		used = used || d == ds["d2"]
	}
	if !used {
		t.Error("static path should cross the closed d2")
	}
	// And its path fails temporal validation.
	if err := p.Validate(g, q); err == nil {
		t.Error("static path should be temporally invalid at 3:00")
	}
	// StaticThenValidate therefore reports no route...
	if _, err := StaticThenValidate(g, q); !errors.Is(err, ErrNoRoute) {
		t.Errorf("StaticThenValidate err = %v, want ErrNoRoute", err)
	}
	// ...even though ITSPQ finds the valid detour — the paper's second
	// motivation.
	p2, _ := routeBoth(t, g, q)
	if p2 == nil {
		t.Fatal("ITSPQ should find the detour")
	}
}

func TestWaitingRouter(t *testing.T) {
	g, _, _ := corridorVenue(t)
	w := NewWaitingRouter(g)
	// Departing 7:59:45, the straight path reaches d2 at 7:59:58 — a 2 s
	// wait until 8:00 beats the detour (4.9 m ≈ 3.5 s longer walk).
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(7, 59, 45)}
	p, err := w.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalWait <= 0 {
		t.Errorf("expected waiting, got %v", p.TotalWait)
	}
	if math.Abs(p.Length-36) > 1e-9 {
		t.Errorf("waiting path length = %v, want straight 36", p.Length)
	}
	if err := p.Validate(g, q); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The no-waiting engine must instead detour (longer walk).
	e := NewEngine(g, Options{})
	p2, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Length <= 36 {
		t.Errorf("no-waiting length = %v, expected detour > 36", p2.Length)
	}
	// Waiting arrival must be no later than the no-waiting arrival.
	if p.ArrivalAtTgt > p2.ArrivalAtTgt+1e-9 {
		t.Errorf("waiting arrives at %v, later than no-waiting %v", p.ArrivalAtTgt, p2.ArrivalAtTgt)
	}
}

func TestWaitingRouterNoRouteAfterClose(t *testing.T) {
	b := model.NewBuilder("closed-for-day")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), sched("8:00", "16:00"))
	b.ConnectBi(d, hall, room)
	g := itgraph.MustNew(b.MustBuild())
	w := NewWaitingRouter(g)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(17, 0, 0)}
	if _, err := w.Route(q); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute (door never reopens today)", err)
	}
	// Before opening: waits until 8:00.
	q2 := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(7, 0, 0)}
	p, err := w.Route(q2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arrivals[0] != temporal.Clock(8, 0, 0) {
		t.Errorf("crossing at %v, want 8:00", p.Arrivals[0])
	}
	if err := p.Validate(g, q2); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPathFormatting(t *testing.T) {
	g, _, _ := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	p, _ := routeBoth(t, g, q)
	if p == nil {
		t.Fatal("no route")
	}
	s := p.Format(g.Venue())
	if s != "(ps, d1, d2, d3, pt)" {
		t.Errorf("Format = %q", s)
	}
	if p.String() == "" {
		t.Error("String empty")
	}
}

func TestMethodString(t *testing.T) {
	if MethodSyn.String() != "ITG/S" || MethodAsyn.String() != "ITG/A" || MethodStatic.String() != "Static" {
		t.Error("method names")
	}
	if Method(9).String() == "" {
		t.Error("unknown method name empty")
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	g, _, ds := corridorVenue(t)
	q := Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(38, 5, 0), At: temporal.Clock(12, 0, 0)}
	p, _ := routeBoth(t, g, q)
	if p == nil {
		t.Fatal("no route")
	}
	t.Run("wrong length", func(t *testing.T) {
		bad := *p
		bad.Length += 5
		if err := bad.Validate(g, q); err == nil {
			t.Error("tampered length accepted")
		}
	})
	t.Run("door swap breaks connectivity", func(t *testing.T) {
		bad := *p
		bad.Doors = append([]model.DoorID(nil), p.Doors...)
		bad.Doors[0] = ds["d5"]
		if err := bad.Validate(g, q); err == nil {
			t.Error("disconnected path accepted")
		}
	})
	t.Run("truncated arrivals", func(t *testing.T) {
		bad := *p
		bad.Arrivals = bad.Arrivals[:1]
		if err := bad.Validate(g, q); err == nil {
			t.Error("malformed arrivals accepted")
		}
	})
	t.Run("closed-door arrivals", func(t *testing.T) {
		q2 := q
		q2.At = temporal.Clock(3, 0, 0) // d2 closed
		bad := *p
		bad.DepartedAt = q2.At
		if err := bad.Validate(g, q2); err == nil {
			t.Error("path crossing closed door accepted")
		}
	})
}

// TestLiteralExpansionSuboptimal pins down interpretation note 8 of
// DESIGN.md with the minimal counterexample: an elongated corridor
// whose far entrance settles first. The literal "visited partitions"
// variant routes the length of the corridor; the exact default takes
// the near entrance.
func TestLiteralExpansionSuboptimal(t *testing.T) {
	b := model.NewBuilder("elongated")
	// corridor spans x 0..100; room A at its west end, a detour row
	// that reaches the corridor's east end cheaply, and a target room
	// hanging off the corridor near the east end.
	corridor := b.AddPartition("corridor", model.HallwayPartition, geom.NewRect(0, 10, 100, 20, 0))
	start := b.AddPartition("start", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	express := b.AddPartition("express", model.HallwayPartition, geom.NewRect(10, 0, 100, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(90, 20, 100, 30, 0))

	west := b.AddDoor("west", model.PublicDoor, geom.Pt(5, 10, 0), nil)      // start→corridor at x=5
	sideE := b.AddDoor("side", model.PublicDoor, geom.Pt(10, 5, 0), nil)     // start→express
	east := b.AddDoor("east", model.PublicDoor, geom.Pt(95, 10, 0), nil)     // express→corridor at x=95
	target := b.AddDoor("target", model.PublicDoor, geom.Pt(95, 20, 0), nil) // corridor→room at x=95
	b.ConnectBi(west, start, corridor)
	b.ConnectBi(sideE, start, express)
	b.ConnectBi(east, express, corridor)
	b.ConnectBi(target, corridor, room)
	// The express row carries a moving walkway: crossing it costs 10 m
	// of effort, so the corridor's east entrance is reached at cost 15
	// while its west entrance settles first at cost 5.
	b.SetDistance(express, sideE, east, 10)
	g := itgraph.MustNew(b.MustBuild())

	q := Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(95, 25, 0), At: temporal.Clock(12, 0, 0)}
	exact := NewEngine(g, Options{Method: MethodSyn})
	literal := NewEngine(g, Options{Method: MethodSyn, SinglePartitionExpansion: true})
	pe, _, err := exact.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := literal.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	// Exact: start → side → east → target = 5+10+10+5 = 30. The west
	// door settles first (5 m), so the literal variant expands the
	// corridor from the west only and walks its whole diagonal.
	if math.Abs(pe.Length-30) > 1e-9 {
		t.Fatalf("exact length = %v, want 30", pe.Length)
	}
	if pl.Length <= pe.Length+50 {
		t.Fatalf("literal %v should be far longer than exact %v", pl.Length, pe.Length)
	}
	if err := pe.Validate(g, q); err != nil {
		t.Error(err)
	}
	if err := pl.Validate(g, q); err != nil {
		t.Error(err) // literal paths are longer but still valid
	}
	or := OracleShortest(g, q)
	if !or.Found || math.Abs(or.Length-pe.Length) > 1e-9 {
		t.Errorf("oracle %v vs exact %v", or.Length, pe.Length)
	}
}

func TestCustomSpeed(t *testing.T) {
	g, _, _ := corridorVenue(t)
	// Slow walker departing 15:59: cannot reach d2 (20 m away in-path)
	// before 16:00 at 0.1 m/s; the fast default walker can.
	src, tgt := geom.Pt(2, 5, 0), geom.Pt(38, 5, 0)
	at := temporal.Clock(15, 58, 0)
	fast := Query{Source: src, Target: tgt, At: at}
	slow := Query{Source: src, Target: tgt, At: at, Speed: 0.1}
	e := NewEngine(g, Options{})
	pf, _, err := e.Route(fast)
	if err != nil || math.Abs(pf.Length-36) > 1e-9 {
		t.Fatalf("fast: %v %v", pf, err)
	}
	psl, _, err := e.Route(slow)
	if err != nil {
		t.Fatal(err)
	}
	if psl.Length <= 36 {
		t.Errorf("slow walker should detour, length = %v", psl.Length)
	}
}
