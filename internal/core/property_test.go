package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// randomVenue builds a rows x cols grid of rooms with randomised door
// schedules, privacy and directionality — the adversarial input for the
// cross-method equivalence and validity properties.
func randomVenue(t testing.TB, rng *rand.Rand, rows, cols int) *model.Venue {
	t.Helper()
	b := model.NewBuilder(fmt.Sprintf("rand-%dx%d", rows, cols))
	const cell = 10.0
	parts := make([][]model.PartitionID, rows)
	for r := 0; r < rows; r++ {
		parts[r] = make([]model.PartitionID, cols)
		for c := 0; c < cols; c++ {
			kind := model.PublicPartition
			// Keep the corners public so queries have endpoints; sprinkle
			// private rooms elsewhere.
			corner := (r == 0 || r == rows-1) && (c == 0 || c == cols-1)
			if !corner && rng.Float64() < 0.15 {
				kind = model.PrivatePartition
			}
			parts[r][c] = b.AddPartition(fmt.Sprintf("r%dc%d", r, c), kind,
				geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
		}
	}
	randSched := func() temporal.Schedule {
		switch rng.Intn(4) {
		case 0:
			return nil // always open
		case 1:
			o := temporal.TimeOfDay(rng.Intn(12) * 3600)
			return temporal.MustSchedule(temporal.MustInterval(o, o+temporal.TimeOfDay(3600*(1+rng.Intn(12)))))
		default:
			o1 := temporal.TimeOfDay(rng.Intn(8) * 3600)
			c1 := o1 + temporal.TimeOfDay(3600+rng.Intn(4*3600))
			o2 := c1 + temporal.TimeOfDay(1800+rng.Intn(2*3600))
			c2 := o2 + temporal.TimeOfDay(3600+rng.Intn(6*3600))
			if c2 > temporal.DaySeconds {
				c2 = temporal.DaySeconds
			}
			if o2 >= c2 {
				return temporal.MustSchedule(temporal.MustInterval(o1, c1))
			}
			return temporal.MustSchedule(temporal.MustInterval(o1, c1), temporal.MustInterval(o2, c2))
		}
	}
	addDoor := func(a, bID model.PartitionID, pos geom.Point) {
		if rng.Float64() < 0.1 {
			return // missing wall opening
		}
		d := b.AddDoor("", model.PublicDoor, pos, randSched())
		if rng.Float64() < 0.1 {
			b.ConnectOneWay(d, a, bID)
		} else {
			b.ConnectBi(d, a, bID)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				addDoor(parts[r][c], parts[r][c+1],
					geom.Pt(float64(c+1)*cell, float64(r)*cell+cell/2, 0))
			}
			if r+1 < rows {
				addDoor(parts[r][c], parts[r+1][c],
					geom.Pt(float64(c)*cell+cell/2, float64(r+1)*cell, 0))
			}
		}
	}
	return b.MustBuild()
}

// TestCrossMethodEquivalenceRandom is the core property: ITG/S, ITG/A
// and both heap-initialisation variants agree on found/not-found and on
// path length for random venues, times and endpoints; every found path
// validates.
func TestCrossMethodEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		rows, cols := 2+rng.Intn(4), 2+rng.Intn(4)
		v := randomVenue(t, rng, rows, cols)
		g := itgraph.MustNew(v)
		engines := []*Engine{
			NewEngine(g, Options{Method: MethodSyn}),
			NewEngine(g, Options{Method: MethodAsyn}),
			NewEngine(g, Options{Method: MethodSyn, EagerHeapInit: true}),
			NewEngine(g, Options{Method: MethodAsyn, EagerHeapInit: true}),
		}
		for probe := 0; probe < 10; probe++ {
			src := geom.Pt(rng.Float64()*float64(cols)*10, rng.Float64()*float64(rows)*10, 0)
			tgt := geom.Pt(rng.Float64()*float64(cols)*10, rng.Float64()*float64(rows)*10, 0)
			q := Query{Source: src, Target: tgt, At: temporal.TimeOfDay(rng.Float64() * 86400)}
			type outcome struct {
				length float64
				found  bool
			}
			var first outcome
			for i, e := range engines {
				p, _, err := e.Route(q)
				var cur outcome
				switch {
				case errors.Is(err, ErrNoRoute):
					cur = outcome{}
				case err != nil:
					t.Fatalf("trial %d engine %d: %v", trial, i, err)
				default:
					cur = outcome{length: p.Length, found: true}
					if verr := p.Validate(g, q); verr != nil {
						t.Fatalf("trial %d engine %d (%s): invalid path: %v",
							trial, i, e.MethodName(), verr)
					}
				}
				if i == 0 {
					first = cur
					continue
				}
				if cur.found != first.found {
					t.Fatalf("trial %d query %v: engine %d found=%v, engine 0 found=%v",
						trial, q.At, i, cur.found, first.found)
				}
				if cur.found && math.Abs(cur.length-first.length) > 1e-9 {
					t.Fatalf("trial %d: engine %d length %v vs engine 0 %v",
						trial, i, cur.length, first.length)
				}
			}
		}
	}
}

// TestEngineNeverBeatsOracleRandom: on random small venues the engine's
// answer is never shorter than the exhaustive optimum, equals it when
// every door is open, and the engine never finds a route the oracle
// cannot.
func TestEngineNeverBeatsOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{Method: MethodSyn})
		for probe := 0; probe < 6; probe++ {
			q := Query{
				Source: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
				Target: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
				At:     temporal.TimeOfDay(rng.Float64() * 86400),
			}
			or := OracleShortest(g, q)
			p, _, err := e.Route(q)
			if err != nil {
				if !errors.Is(err, ErrNoRoute) {
					t.Fatal(err)
				}
				continue // engine may miss non-FIFO detours; oracle null ⇒ engine null is checked below
			}
			if !or.Found {
				t.Fatalf("trial %d: engine found a %v m path the oracle missed", trial, p.Length)
			}
			if p.Length < or.Length-1e-9 {
				t.Fatalf("trial %d: engine %v beat oracle %v", trial, p.Length, or.Length)
			}
		}
	}
}

// TestEngineMatchesOracleAllOpen: with every door always open the
// greedy label-setting search is exact, so engine == oracle.
func TestEngineMatchesOracleAllOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		b := model.NewBuilder("open-grid")
		rows, cols := 3, 4
		const cell = 10.0
		parts := make([][]model.PartitionID, rows)
		for r := 0; r < rows; r++ {
			parts[r] = make([]model.PartitionID, cols)
			for c := 0; c < cols; c++ {
				parts[r][c] = b.AddPartition(fmt.Sprintf("p%d-%d", r, c), model.PublicPartition,
					geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
			}
		}
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols && rng.Float64() < 0.9 {
					d := b.AddDoor("", model.PublicDoor, geom.Pt(float64(c+1)*cell, float64(r)*cell+rng.Float64()*cell, 0), nil)
					b.ConnectBi(d, parts[r][c], parts[r][c+1])
				}
				if r+1 < rows && rng.Float64() < 0.9 {
					d := b.AddDoor("", model.PublicDoor, geom.Pt(float64(c)*cell+rng.Float64()*cell, float64(r+1)*cell, 0), nil)
					b.ConnectBi(d, parts[r][c], parts[r+1][c])
				}
			}
		}
		v, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{Method: MethodAsyn})
		for probe := 0; probe < 8; probe++ {
			q := Query{
				Source: geom.Pt(rng.Float64()*40, rng.Float64()*30, 0),
				Target: geom.Pt(rng.Float64()*40, rng.Float64()*30, 0),
				At:     temporal.Clock(12, 0, 0),
			}
			or := OracleShortest(g, q)
			p, _, err := e.Route(q)
			if or.Found != (err == nil) {
				t.Fatalf("trial %d: oracle found=%v, engine err=%v", trial, or.Found, err)
			}
			if err == nil && math.Abs(p.Length-or.Length) > 1e-9 {
				t.Fatalf("trial %d: engine %v != oracle %v", trial, p.Length, or.Length)
			}
		}
	}
}

// TestWaitingNeverArrivesLater: on random venues, whenever the
// no-waiting engine finds a path, the waiting router must find one too
// and arrive no later.
func TestWaitingNeverArrivesLater(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 30; trial++ {
		v := randomVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		e := NewEngine(g, Options{Method: MethodSyn})
		w := NewWaitingRouter(g)
		for probe := 0; probe < 6; probe++ {
			q := Query{
				Source: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
				Target: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
				At:     temporal.TimeOfDay(rng.Float64() * 86400),
			}
			p, _, err := e.Route(q)
			if err != nil {
				continue
			}
			wp, werr := w.Route(q)
			if werr != nil {
				t.Fatalf("trial %d: no-waiting found a path but waiting router failed: %v", trial, werr)
			}
			if wp.ArrivalAtTgt > p.ArrivalAtTgt+1e-6 {
				t.Fatalf("trial %d: waiting arrives %v after no-waiting %v",
					trial, wp.ArrivalAtTgt, p.ArrivalAtTgt)
			}
			if verr := wp.Validate(g, q); verr != nil {
				t.Fatalf("trial %d: waiting path invalid: %v", trial, verr)
			}
		}
	}
}

// TestConcurrentEnginesShareGraph: one graph, many goroutines with
// their own engines; snapshots are built lazily under a mutex. Run with
// -race.
func TestConcurrentEnginesShareGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	v := randomVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		method := MethodSyn
		if w%2 == 1 {
			method = MethodAsyn
		}
		seed := int64(w)
		go func() {
			defer wg.Done()
			local := rand.New(rand.NewSource(seed))
			e := NewEngine(g, Options{Method: method})
			for i := 0; i < 50; i++ {
				q := Query{
					Source: geom.Pt(local.Float64()*40, local.Float64()*40, 0),
					Target: geom.Pt(local.Float64()*40, local.Float64()*40, 0),
					At:     temporal.TimeOfDay(local.Float64() * 86400),
				}
				p, _, err := e.RouteOrNil(q)
				if err != nil {
					errc <- err
					return
				}
				if p != nil {
					if verr := p.Validate(g, q); verr != nil {
						errc <- verr
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
