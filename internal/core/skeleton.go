package core

import (
	"math"
	"sort"

	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/pqueue"
	"indoorpath/internal/temporal"
)

// Point-free answers: a Skeleton is the door-to-door portion of an
// ITSPQ answer with both point-dependent legs factored out, so one
// stored chain serves every query whose endpoints fall anywhere inside
// the same (source partition, target partition) pair. A SkeletonFamily
// holds every chain the pair can answer with under one checkpoint
// slot's frozen topology; ComposeSkeleton stitches first-leg + chain +
// last-leg back into a full Path for a concrete query, refusing
// whenever the composition cannot be certified byte-identical to a
// fresh engine run. See doc.go "# Point-free answers" for the
// soundness argument.

// SkeletonStaticSlot is the pseudo-slot of a time-blind (MethodStatic)
// family: all doors open, the whole day certified.
const SkeletonStaticSlot = -1

// Skeleton is one immutable door-to-door chain of a family: the entry
// door leaving the source partition, the full door sequence ending at
// the anchor door entering the target partition, the partition
// sequence threading them, and the per-leg intra-partition distances.
// Legs[0] is always zero — the first leg runs from the query's own
// source point and is supplied at composition time; Legs[i] (i >= 1)
// is the engine's leg from Doors[i-1] to Doors[i] inside
// Partitions[i]. Storing legs rather than cumulative sums lets
// composition replay the engine's left-to-right accumulation — the
// same float64 additions in the same order — so rebased distances and
// arrivals are bit-identical to a fresh search's.
type Skeleton struct {
	Entry      model.DoorID
	Anchor     model.DoorID
	Doors      []model.DoorID
	Partitions []model.PartitionID // len(Doors)+1; [0] = family src, last = family tgt
	Legs       []float64           // same length as Doors; Legs[0] == 0
}

// SkeletonFamily is every chain stored for one (source partition,
// target partition) pair under one checkpoint slot's frozen topology:
// for each usable entry door of the source partition, the best chain
// to each reachable anchor door of the target partition. Immutable
// once built; safe to share across goroutines.
type SkeletonFamily struct {
	Src, Tgt model.PartitionID
	// Slot is the checkpoint slot the chains were built against, or
	// SkeletonStaticSlot for a time-blind family.
	Slot int
	// Window is the slot's departure interval (the full day for a
	// static family): the band inside which the frozen topology — and
	// so the family's optimality — holds, before the per-answer walk
	// clamp ComposeSkeleton applies on top.
	Window temporal.Interval
	// Chains are ordered by ascending (Entry, Anchor) so composition's
	// strict-improvement scan is deterministic.
	Chains []*Skeleton
}

// BuildSkeletonFamily computes the (srcPart, tgtPart) family for the
// checkpoint slot containing at (the whole day for MethodStatic). It
// runs one frozen-topology Dijkstra per usable entry door of srcPart,
// mirroring Route's semantics exactly — prevPart-threaded
// NextPartitions, the privacy rule with srcPart/tgtPart exempt, no
// expansion through the target partition, the engine's own leg
// arithmetic — with every TV_Check replaced by the door's constant
// openness over the slot. It returns nil when no family can be built:
// same partition pair (the direct point-to-point candidate is not
// expressible door-to-door), the SinglePartitionExpansion ablation
// (its visited-partition gate makes per-entry-door decomposition
// unsound), or no open entry door reaches the target partition.
//
// The caller must hold the engine exclusively (the usual checked-out
// discipline); the build reuses no Route state and leaves the engine
// ready for further searches.
func (e *Engine) BuildSkeletonFamily(srcPart, tgtPart model.PartitionID, at temporal.TimeOfDay) *SkeletonFamily {
	if srcPart == tgtPart || e.opts.SinglePartitionExpansion {
		return nil
	}
	fam := &SkeletonFamily{Src: srcPart, Tgt: tgtPart, Slot: SkeletonStaticSlot,
		Window: temporal.Interval{Open: 0, Close: temporal.DaySeconds}}
	open := func(model.DoorID) bool { return true }
	if e.opts.Method != MethodStatic {
		cps := e.g.Checkpoints()
		slot := cps.SlotOf(at.Mod())
		start := cps.SlotStart(slot)
		fam.Slot = slot
		fam.Window = temporal.Interval{Open: start, Close: cps.SlotEnd(slot)}
		// Within a slot every door's state is constant (checkpoints are
		// exactly the instants any ATI opens or closes), so openness at
		// the slot start is openness throughout.
		open = func(d model.DoorID) bool { return e.v.Door(d).OpenAt(start) }
	}

	entries := append([]model.DoorID(nil), e.v.LeaveDoors(srcPart)...)
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })
	for _, a := range entries {
		if !open(a) || !e.usefulDoor(a, srcPart, srcPart, tgtPart) {
			continue
		}
		e.appendEntryChains(fam, a, srcPart, tgtPart, open)
	}
	if len(fam.Chains) == 0 {
		return nil
	}
	return fam
}

// usefulDoor mirrors expand's early privacy prune: a door of w is worth
// relaxing only if some partition it leads to from w is the source's,
// the target's, or public.
func (e *Engine) usefulDoor(d model.DoorID, w, srcPart, tgtPart model.PartitionID) bool {
	for _, nxt := range e.v.NextPartitions(d, w) {
		if nxt == srcPart || nxt == tgtPart || !e.v.Partition(nxt).Kind.IsPrivate() {
			return true
		}
	}
	return false
}

// appendEntryChains runs the frozen-topology Dijkstra seeded at entry
// door a (entered from srcPart at distance zero) and appends one chain
// per reachable anchor door of tgtPart. Run to exhaustion: the best
// anchor for a concrete query depends on its target point, so every
// anchor's chain is kept.
func (e *Engine) appendEntryChains(fam *SkeletonFamily, a model.DoorID, srcPart, tgtPart model.PartitionID,
	open func(model.DoorID) bool) {

	heap := pqueue.New(64)
	dist := map[model.DoorID]float64{a: 0}
	prevDoor := map[model.DoorID]model.DoorID{}
	prevPart := map[model.DoorID]model.PartitionID{a: srcPart}
	settled := map[model.DoorID]bool{}
	var anchors []model.DoorID

	heap.Push(int32(a), 0)
	for {
		item, ok := heap.Pop()
		if !ok {
			break
		}
		h := model.DoorID(item.Key)
		if settled[h] {
			continue
		}
		settled[h] = true
		baseDist := dist[h]
		for _, w := range e.v.NextPartitions(h, prevPart[h]) {
			if w == tgtPart {
				// h is an anchor: the last door of a chain. Mirror Route's
				// target relaxation (dist[h] is final once settled) and its
				// no-through-expansion prune — the answer never transits
				// the target partition.
				anchors = append(anchors, h)
				continue
			}
			if w != srcPart && e.v.Partition(w).Kind.IsPrivate() {
				continue // rule 2, endpoints exempt
			}
			for _, dj := range e.v.LeaveDoors(w) {
				if settled[dj] || !e.usefulDoor(dj, w, srcPart, tgtPart) {
					continue
				}
				leg := e.legDist(w, h, dj)
				if math.IsInf(leg, 1) {
					continue
				}
				distj := baseDist + leg
				if !open(dj) {
					continue // the frozen TV_Check
				}
				if old, seen := dist[dj]; !seen || distj < old {
					dist[dj] = distj
					prevDoor[dj] = h
					prevPart[dj] = w
					heap.Push(int32(dj), distj)
				}
			}
		}
	}

	sort.Slice(anchors, func(i, j int) bool { return anchors[i] < anchors[j] })
	for _, b := range anchors {
		n := 1
		for d := b; d != a; d = prevDoor[d] {
			n++
		}
		sk := &Skeleton{
			Entry:      a,
			Anchor:     b,
			Doors:      make([]model.DoorID, n),
			Partitions: make([]model.PartitionID, n+1),
			Legs:       make([]float64, n),
		}
		sk.Partitions[n] = fam.Tgt
		i := n - 1
		for d := b; ; d = prevDoor[d] {
			sk.Doors[i] = d
			sk.Partitions[i] = prevPart[d]
			if d == a {
				break
			}
			i--
		}
		for i := 1; i < n; i++ {
			sk.Legs[i] = e.legDist(sk.Partitions[i], sk.Doors[i-1], sk.Doors[i])
		}
		fam.Chains = append(fam.Chains, sk)
	}
}

// ComposeSkeletonPath stitches first-leg + chain + last-leg for a
// concrete query against a stored family, without needing an engine:
// it reads only the immutable graph (the distance matrices), so cache
// probes can compose before any engine is checked out. It returns
// (nil, false) — the caller falls through to an engine search —
// whenever the composition cannot be certified byte-identical to a
// fresh run:
//
//   - the departure falls outside the family's slot window;
//   - no chain reaches both endpoints with finite legs;
//   - the composed walk would cross the slot's closing checkpoint
//     (the AnswerWindow clamp: t + length/speed must stay inside the
//     slot a temporal family was built for);
//   - two chains tie exactly for the minimum length (the engine's
//     winner would depend on settle order, which the table cannot
//     replay).
//
// The returned path's distances and arrivals replay the engine's
// accumulation order exactly (PathDistances arithmetic), so a served
// composition matches a fresh sequential Route bit for bit.
func ComposeSkeletonPath(g *itgraph.Graph, src, tgt geom.Point, at temporal.TimeOfDay,
	speed float64, fam *SkeletonFamily) (*Path, bool) {

	if fam == nil || len(fam.Chains) == 0 {
		return nil, false
	}
	t0 := at.Mod()
	if speed <= 0 {
		speed = WalkingSpeedMPS
	}
	if fam.Slot != SkeletonStaticSlot && !fam.Window.Contains(t0) {
		return nil, false
	}
	dm := g.DM()
	best := -1
	bestLen := math.Inf(1)
	tied := false
	for ci, sk := range fam.Chains {
		first := dm.PointToDoor(fam.Src, src, sk.Entry)
		last := dm.PointToDoor(fam.Tgt, tgt, sk.Anchor)
		if math.IsInf(first, 1) || math.IsInf(last, 1) {
			continue
		}
		// Replay the engine's accumulation left to right; a running
		// partial sum in any other association could round differently
		// and mis-rank near-equal chains.
		d := first
		for i := 1; i < len(sk.Legs); i++ {
			d += sk.Legs[i]
		}
		total := d + last
		switch {
		case total < bestLen:
			best, bestLen, tied = ci, total, false
		case total == bestLen:
			tied = true
		}
	}
	if best < 0 || tied {
		return nil, false
	}
	if fam.Slot != SkeletonStaticSlot {
		walk := temporal.TimeOfDay(bestLen / speed)
		if t0+walk >= fam.Window.Close {
			return nil, false
		}
	}
	sk := fam.Chains[best]
	n := len(sk.Doors)
	dists := make([]float64, n)
	arrivals := make([]temporal.TimeOfDay, n)
	d := dm.PointToDoor(fam.Src, src, sk.Entry)
	dists[0] = d
	for i := 1; i < n; i++ {
		d += sk.Legs[i]
		dists[i] = d
	}
	length := d + dm.PointToDoor(fam.Tgt, tgt, sk.Anchor)
	for i := range dists {
		arrivals[i] = t0 + temporal.TimeOfDay(dists[i]/speed)
	}
	return &Path{
		Source:       src,
		Target:       tgt,
		Doors:        sk.Doors,
		Partitions:   sk.Partitions,
		Length:       length,
		Arrivals:     arrivals,
		ArrivalAtTgt: t0 + temporal.TimeOfDay(length/speed),
		DepartedAt:   t0,
	}, true
}

// ComposeSkeleton is ComposeSkeletonPath bound to this engine's graph
// — the form callers holding an engine use.
func (e *Engine) ComposeSkeleton(src, tgt geom.Point, at temporal.TimeOfDay,
	speed float64, sk *SkeletonFamily) (*Path, bool) {
	return ComposeSkeletonPath(e.g, src, tgt, at, speed, sk)
}
