package core

import (
	"fmt"

	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// ValidityWindow computes the interval of departure times for which the
// given path's exact door sequence stays valid — an extension beyond
// the paper useful for answer caching and "leave by" guidance: a path
// computed for ITSPQ(ps, pt, t) can be reused for any departure in the
// window without re-running the search.
//
// For door i at cumulative walked distance d_i, a departure t' crosses
// it at t' + d_i/speed, which must fall inside the same ATI the
// original departure used; the window is the intersection of those
// per-door constraints (clipped to the day). The path must be a
// no-waiting path produced for the given query.
func ValidityWindow(g *itgraph.Graph, p *Path, q Query) (temporal.Interval, error) {
	if p.TotalWait > 0 {
		return temporal.Interval{}, fmt.Errorf("core: validity windows apply to no-waiting paths only")
	}
	// DM-based cumulative distances: the engine default. An engine with
	// non-default leg arithmetic derives windows via Engine.AnswerWindow,
	// which replays its own distances.
	dists := make([]float64, len(p.Doors))
	dist := 0.0
	for i, d := range p.Doors {
		if i == 0 {
			dist += g.DM().PointToDoor(p.Partitions[0], q.Source, d)
		} else {
			dist += g.DM().Dist(p.Partitions[i], p.Doors[i-1], d)
		}
		dists[i] = dist
	}
	return validityFromDists(g.Venue(), p, dists, q)
}

// validityFromDists is the per-door ATI constraint intersection of
// ValidityWindow over precomputed cumulative door distances, so callers
// can supply engine-faithful distances (Engine.AnswerWindow) or the
// DM-based default (ValidityWindow).
func validityFromDists(v *model.Venue, p *Path, dists []float64, q Query) (temporal.Interval, error) {
	speed := q.speed()
	t0 := q.At.Mod()
	lo, hi := temporal.TimeOfDay(0), temporal.DaySeconds
	for i, d := range p.Doors {
		walk := temporal.TimeOfDay(dists[i] / speed)
		arr := t0 + walk
		// Find the ATI containing the original arrival.
		var ati temporal.Interval
		found := false
		for _, iv := range v.Door(d).ATIs {
			if iv.Contains(arr.Mod()) {
				ati = iv
				found = true
				break
			}
		}
		if !found {
			return temporal.Interval{}, fmt.Errorf("core: door %s closed at %v — path invalid for the query",
				v.Door(d).Name, arr.Mod())
		}
		// t' + walk ∈ [ati.Open, ati.Close) ⇒ t' ∈ [Open-walk, Close-walk).
		// A full-day ATI imposes no constraint: arrivals wrap across
		// midnight and remain inside it.
		if !(ati.Open == 0 && ati.Close == temporal.DaySeconds) {
			if arr >= temporal.DaySeconds {
				// The arrival wrapped past midnight into a bounded ATI:
				// the per-door constraint cannot be expressed as one
				// in-day departure interval (shifting t' moves the
				// wrapped arrival against un-wrapped bounds), so the
				// window is undefined rather than silently wrong.
				return temporal.Interval{}, fmt.Errorf("core: door %s reached past midnight (at %v) within bounded ATI %v — validity window undefined across the day wrap",
					v.Door(d).Name, arr, ati)
			}
			if b := ati.Open - walk; b > lo {
				lo = b
			}
			if b := ati.Close - walk; b < hi {
				hi = b
			}
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi > temporal.DaySeconds {
		hi = temporal.DaySeconds
	}
	if lo >= hi {
		return temporal.Interval{}, fmt.Errorf("core: empty validity window")
	}
	return temporal.Interval{Open: lo, Close: hi}, nil
}

// AnswerWindow computes the departure-time interval over which this
// engine's *answer* to q — not merely the path's validity — is provably
// unchanged: any departure t' in the window makes a fresh search return
// the exact same door and partition sequence and length as p, with
// every arrival shifted by t'-t. It is the interval a result cache may
// serve without consulting an engine (internal/tcache). It is an
// Engine method because the derivation must be engine-faithful: the
// per-door walks replay this engine's own leg arithmetic
// (PathDistances, honouring options such as NoDistanceMatrix), and the
// static method short-circuits to the full day.
//
// ValidityWindow alone is not enough for caching: it proves p stays
// *walkable* across the interval, but a door that was closed at the
// original departure can open at a shifted one and create a shorter
// path, so the cached answer would no longer be what the engine
// returns. The answer is frozen exactly while no TV_Check outcome the
// search could make changes, and since every check probes door
// openness at t' + x for some walked distance x ∈ [0, p.Length], it
// suffices that the whole swept band stays inside one constant-
// topology checkpoint slot. AnswerWindow therefore intersects the
// path's ValidityWindow with that clamp:
//
//	[ SlotStart(slot(t)), SlotEnd(slot(t)) - Length/speed )
//
// (departure stays in its slot AND the walk completes before the slot
// ends). For MethodStatic the checker ignores time entirely, so the
// window is the whole day. The returned window always contains q.At;
// when the original walk itself crosses a checkpoint the window is
// empty and an error is returned (such answers are not reusable).
func (e *Engine) AnswerWindow(p *Path, q Query) (temporal.Interval, error) {
	return e.AnswerWindowDists(p, q, e.PathDistances(p, q))
}

// AnswerWindowDists is AnswerWindow over precomputed cumulative door
// distances (Engine.PathDistances), so callers that also keep the
// distances — the window cache stores them for arrival rebasing —
// derive both from one leg replay.
func (e *Engine) AnswerWindowDists(p *Path, q Query, dists []float64) (temporal.Interval, error) {
	if p.TotalWait > 0 {
		return temporal.Interval{}, fmt.Errorf("core: answer windows apply to no-waiting paths only")
	}
	if e.opts.Method == MethodStatic {
		return temporal.Interval{Open: 0, Close: temporal.DaySeconds}, nil
	}
	w, err := validityFromDists(e.v, p, dists, q)
	if err != nil {
		return temporal.Interval{}, err
	}
	t0 := q.At.Mod()
	cps := e.g.Checkpoints()
	slot := cps.SlotOf(t0)
	walk := temporal.TimeOfDay(p.Length / q.speed())
	lo, hi := cps.SlotStart(slot), cps.SlotEnd(slot)-walk
	if w.Open > lo {
		lo = w.Open
	}
	if w.Close < hi {
		hi = w.Close
	}
	if lo >= hi || t0 < lo || t0 >= hi {
		return temporal.Interval{}, fmt.Errorf("core: empty answer window (walk of %v crosses a checkpoint from %v)", walk, t0)
	}
	return temporal.Interval{Open: lo, Close: hi}, nil
}

// PathDistances returns the cumulative walked distance at each door of
// p, accumulated leg by leg in path order — the same float64 operations
// in the same order as the search that produced p, so rebasing the path
// at a new departure t' reproduces engine arrivals bit for bit:
// arrival_i = t' + dist_i/speed. It honours the engine's options
// (NoDistanceMatrix replays geometric legs exactly as expand did).
func (e *Engine) PathDistances(p *Path, q Query) []float64 {
	if len(p.Doors) == 0 {
		return nil
	}
	out := make([]float64, len(p.Doors))
	dist := e.g.DM().PointToDoor(p.Partitions[0], q.Source, p.Doors[0])
	out[0] = dist
	for i := 1; i < len(p.Doors); i++ {
		dist += e.legDist(p.Partitions[i], p.Doors[i-1], p.Doors[i])
		out[i] = dist
	}
	return out
}

// EarliestValidDeparture finds the earliest departure time >= q.At for
// which a no-waiting valid path exists, by probing q.At and then every
// subsequent checkpoint of the venue (topology only changes there, and
// within a slot a later departure shifts every arrival uniformly, so
// probing slot starts plus the original instant covers all outcomes up
// to walking-time boundary effects). Returns the departure, the path,
// and ok=false when no departure before midnight works.
func EarliestValidDeparture(e *Engine, q Query) (temporal.TimeOfDay, *Path, bool) {
	probe := func(at temporal.TimeOfDay) *Path {
		qq := q
		qq.At = at
		p, _, err := e.Route(qq)
		if err != nil {
			return nil
		}
		return p
	}
	if p := probe(q.At.Mod()); p != nil {
		return q.At.Mod(), p, true
	}
	cps := e.Graph().Checkpoints()
	for _, cp := range cps.Times() {
		if cp <= q.At.Mod() {
			continue
		}
		if p := probe(cp); p != nil {
			return cp, p, true
		}
	}
	return 0, nil, false
}
