package core

import (
	"fmt"

	"indoorpath/internal/itgraph"
	"indoorpath/internal/temporal"
)

// ValidityWindow computes the interval of departure times for which the
// given path's exact door sequence stays valid — an extension beyond
// the paper useful for answer caching and "leave by" guidance: a path
// computed for ITSPQ(ps, pt, t) can be reused for any departure in the
// window without re-running the search.
//
// For door i at cumulative walked distance d_i, a departure t' crosses
// it at t' + d_i/speed, which must fall inside the same ATI the
// original departure used; the window is the intersection of those
// per-door constraints (clipped to the day). The path must be a
// no-waiting path produced for the given query.
func ValidityWindow(g *itgraph.Graph, p *Path, q Query) (temporal.Interval, error) {
	if p.TotalWait > 0 {
		return temporal.Interval{}, fmt.Errorf("core: validity windows apply to no-waiting paths only")
	}
	speed := q.speed()
	t0 := q.At.Mod()
	lo, hi := temporal.TimeOfDay(0), temporal.DaySeconds
	v := g.Venue()

	dist := 0.0
	cur := p.Partitions[0]
	var prev = -1
	for i, d := range p.Doors {
		if prev < 0 {
			dist += g.DM().PointToDoor(cur, q.Source, d)
		} else {
			dist += g.DM().Dist(cur, p.Doors[prev], d)
		}
		walk := temporal.TimeOfDay(dist / speed)
		arr := t0 + walk
		// Find the ATI containing the original arrival.
		var ati temporal.Interval
		found := false
		for _, iv := range v.Door(d).ATIs {
			if iv.Contains(arr.Mod()) {
				ati = iv
				found = true
				break
			}
		}
		if !found {
			return temporal.Interval{}, fmt.Errorf("core: door %s closed at %v — path invalid for the query",
				v.Door(d).Name, arr.Mod())
		}
		// t' + walk ∈ [ati.Open, ati.Close) ⇒ t' ∈ [Open-walk, Close-walk).
		// A full-day ATI imposes no constraint: arrivals wrap across
		// midnight and remain inside it.
		if !(ati.Open == 0 && ati.Close == temporal.DaySeconds) {
			if b := ati.Open - walk; b > lo {
				lo = b
			}
			if b := ati.Close - walk; b < hi {
				hi = b
			}
		}
		cur = p.Partitions[i+1]
		prev = i
	}
	if lo < 0 {
		lo = 0
	}
	if hi > temporal.DaySeconds {
		hi = temporal.DaySeconds
	}
	if lo >= hi {
		return temporal.Interval{}, fmt.Errorf("core: empty validity window")
	}
	return temporal.Interval{Open: lo, Close: hi}, nil
}

// EarliestValidDeparture finds the earliest departure time >= q.At for
// which a no-waiting valid path exists, by probing q.At and then every
// subsequent checkpoint of the venue (topology only changes there, and
// within a slot a later departure shifts every arrival uniformly, so
// probing slot starts plus the original instant covers all outcomes up
// to walking-time boundary effects). Returns the departure, the path,
// and ok=false when no departure before midnight works.
func EarliestValidDeparture(e *Engine, q Query) (temporal.TimeOfDay, *Path, bool) {
	probe := func(at temporal.TimeOfDay) *Path {
		qq := q
		qq.At = at
		p, _, err := e.Route(qq)
		if err != nil {
			return nil
		}
		return p
	}
	if p := probe(q.At.Mod()); p != nil {
		return q.At.Mod(), p, true
	}
	cps := e.Graph().Checkpoints()
	for _, cp := range cps.Times() {
		if cp <= q.At.Mod() {
			continue
		}
		if p := probe(cp); p != nil {
			return cp, p, true
		}
	}
	return 0, nil, false
}
