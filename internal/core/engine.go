package core

import (
	"fmt"
	"math"

	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/pqueue"
	"indoorpath/internal/temporal"
)

// Method selects the TV_Check strategy of the ITSPQ framework.
type Method uint8

// Available methods.
const (
	// MethodSyn is ITG/S: synchronous per-door ATI lookup (Algorithm 2).
	MethodSyn Method = iota
	// MethodAsyn is ITG/A: asynchronous snapshot probes (Algorithms 3–4).
	MethodAsyn
	// MethodStatic ignores temporal variation entirely — the classic
	// ISPQ baseline; returned paths may cross closed doors.
	MethodStatic
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodSyn:
		return "ITG/S"
	case MethodAsyn:
		return "ITG/A"
	case MethodStatic:
		return "Static"
	}
	return fmt.Sprintf("Method(%d)", uint8(m))
}

// Options tune the engine; the zero value is the paper's ITG/S.
type Options struct {
	Method Method
	// EagerHeapInit enheaps every door with distance ∞ up front, the
	// literal initialisation of Algorithm 1 lines 2–5. The default is
	// standard lazy insertion (identical results; ablation A1 measures
	// the difference).
	EagerHeapInit bool
	// NoDistanceMatrix recomputes intra-partition distances from door
	// geometry on every relaxation instead of reading the materialised
	// DM (ablation A3).
	NoDistanceMatrix bool
	// SinglePartitionExpansion reproduces Algorithm 1 line 18 literally:
	// each partition is expanded only from the first door that settles
	// into it ("\ visited partitions"). This is faster but suboptimal in
	// elongated partitions — a door settling later through a nearer
	// entrance never relaxes the partition's remaining doors. The
	// default expands a partition from every settled entering door
	// (exact door-graph Dijkstra, Lu et al. 2012); ablation A6 measures
	// the difference. See DESIGN.md interpretation note 8.
	SinglePartitionExpansion bool
}

// SearchStats describes one query execution for the experiment harness
// and the server's route responses (JSON-tagged for the wire).
type SearchStats struct {
	Method            string       `json:"method"`
	Pops              int          `json:"pops"`          // heap extractions
	Settled           int          `json:"settled"`       // doors finalised
	Relaxations       int          `json:"relaxations"`   // candidate door updates attempted
	DoorsTouched      int          `json:"doors_touched"` // distinct doors assigned a finite distance
	PartitionsVisited int          `json:"partitions_visited"`
	HeapMax           int          `json:"heap_max"`
	Checker           CheckerStats `json:"checker"`
	// BytesEstimate models the search working set: distance/parent map
	// entries, heap slots, the visited sets, and (for ITG/A) the
	// snapshots consulted. It is the deterministic memory metric behind
	// Fig. 7; the harness also reports live heap allocations.
	BytesEstimate int     `json:"bytes_estimate"`
	Found         bool    `json:"found"`
	PathHops      int     `json:"path_hops"`
	PathLength    float64 `json:"path_length"`
}

// searchState is the mutable working set of one ITSPQ search: the
// frontier heap, the tentative distances, the parent chains and the
// settled/visited marks. It is extracted from Engine so engines are
// cheap to construct and pool (service.Pool keeps warm engines in a
// sync.Pool); the maps are allocated on first use and cleared — not
// reallocated — between queries, so a pooled engine reuses its
// hash-table capacity across queries.
type searchState struct {
	heap     *pqueue.Heap
	dist     map[int32]float64
	prevDoor map[int32]int32
	prevPart map[int32]model.PartitionID
	settled  map[int32]bool
	visited  map[model.PartitionID]bool
}

func newSearchState() *searchState {
	return &searchState{
		heap:     pqueue.New(64),
		dist:     map[int32]float64{},
		prevDoor: map[int32]int32{},
		prevPart: map[int32]model.PartitionID{},
		settled:  map[int32]bool{},
		visited:  map[model.PartitionID]bool{},
	}
}

// reset clears the state for the next query, keeping allocations.
func (st *searchState) reset() {
	st.heap.Reset()
	clear(st.dist)
	clear(st.prevDoor)
	clear(st.prevPart)
	clear(st.settled)
	clear(st.visited)
}

// Engine answers ITSPQ queries over one IT-Graph. It keeps reusable
// search state (a searchState) between queries, so a single Engine is
// NOT safe for concurrent use. The intended concurrent deployment is
// one engine per goroutine over one shared Graph — the graph, venue,
// distance matrices and snapshot series are all safe for concurrent
// readers — and service.Pool packages exactly that pattern: it keeps
// warm engines in a sync.Pool and checks one out per query. NewEngine
// is deliberately cheap (search maps are allocated lazily on the first
// Route), so pooling engines costs little more than pooling the maps
// themselves.
type Engine struct {
	g       *itgraph.Graph
	v       *model.Venue
	opts    Options
	checker AccessChecker
	st      *searchState // lazily allocated on first Route
}

// NewEngine builds an engine for the graph with the given options.
func NewEngine(g *itgraph.Graph, opts Options) *Engine {
	e := &Engine{
		g:    g,
		v:    g.Venue(),
		opts: opts,
	}
	switch opts.Method {
	case MethodAsyn:
		e.checker = NewAsynChecker(g)
	case MethodStatic:
		e.checker = &alwaysOpenChecker{}
	default:
		e.checker = NewSynChecker(g)
	}
	return e
}

// Graph returns the engine's IT-Graph.
func (e *Engine) Graph() *itgraph.Graph { return e.g }

// MethodName returns the display name of the configured method.
func (e *Engine) MethodName() string { return e.checker.Name() }

func (e *Engine) reset() {
	if e.st == nil {
		e.st = newSearchState()
		return
	}
	e.st.reset()
}

// legDist returns the intra-partition distance between two doors of
// partition p, honouring the NoDistanceMatrix ablation.
func (e *Engine) legDist(p model.PartitionID, a, b model.DoorID) float64 {
	if !e.opts.NoDistanceMatrix {
		return e.g.DM().Dist(p, a, b)
	}
	if d, ok := e.v.DistOverride(p, a, b); ok {
		return d
	}
	da, db := e.v.Door(a), e.v.Door(b)
	if da.Pos.Floor != db.Pos.Floor {
		return e.g.DM().Dist(p, a, b) // stairwells always use the DM
	}
	return da.Pos.DistXY(db.Pos)
}

// Route answers ITSPQ(q.Source, q.Target, q.At). On success it returns
// the valid shortest path under the paper's semantics; when no valid
// path exists the error is ErrNoRoute. Stats are returned in both
// cases.
func (e *Engine) Route(q Query) (*Path, SearchStats, error) {
	stats := SearchStats{Method: e.checker.Name()}
	srcPart, ok := e.v.Locate(q.Source)
	if !ok {
		return nil, stats, fmt.Errorf("%w: source %v", ErrNotIndoor, q.Source)
	}
	tgtPart, ok := e.v.Locate(q.Target)
	if !ok {
		return nil, stats, fmt.Errorf("%w: target %v", ErrNotIndoor, q.Target)
	}
	t0 := q.At.Mod()
	speed := q.speed()

	e.reset()
	e.checker.Begin(t0, speed)

	srcH := int32(e.v.DoorCount())
	tgtH := srcH + 1
	inf := math.Inf(1)

	if e.opts.EagerHeapInit {
		// Algorithm 1 lines 2–5/7 literally: every door and pt start in
		// the heap at distance ∞.
		for d := 0; d < e.v.DoorCount(); d++ {
			e.st.heap.Push(int32(d), inf)
		}
		e.st.heap.Push(tgtH, inf)
	}
	e.st.dist[srcH] = 0
	e.st.heap.Push(srcH, 0)

	for {
		item, ok := e.st.heap.Pop()
		if !ok || math.IsInf(item.Prio, 1) {
			// Heap exhausted (lazy) or only ∞ entries remain (eager):
			// "no such routes".
			e.finishStats(&stats)
			return nil, stats, ErrNoRoute
		}
		h := item.Key
		stats.Pops++
		if h == tgtH {
			p := e.reconstruct(q, srcH, tgtH, srcPart, tgtPart, t0, speed)
			stats.Found = true
			stats.PathHops = p.Hops()
			stats.PathLength = p.Length
			e.finishStats(&stats)
			return p, stats, nil
		}
		if e.st.settled[h] {
			continue
		}
		e.st.settled[h] = true
		stats.Settled++
		baseDist := e.st.dist[h]

		// Determine the partitions to expand into and the anchor door.
		var anchor model.DoorID = model.NoDoor
		var nexts []model.PartitionID
		if h == srcH {
			nexts = []model.PartitionID{srcPart}
		} else {
			anchor = model.DoorID(h)
			nexts = e.v.NextPartitions(anchor, e.st.prevPart[h])
		}
		for _, w := range nexts {
			// Entering the target's partition: the next hop is pt itself
			// (Algorithm 1 lines 20–24).
			if w == tgtPart {
				var cand float64
				if anchor == model.NoDoor {
					cand = baseDist + e.g.DM().PointToPoint(w, q.Source, q.Target)
				} else {
					cand = baseDist + e.g.DM().PointToDoor(w, q.Target, anchor)
				}
				if old, seen := e.st.dist[tgtH]; (!seen || cand < old) && !math.IsInf(cand, 1) {
					e.st.dist[tgtH] = cand
					e.st.prevDoor[tgtH] = h
					e.st.prevPart[tgtH] = w
					e.st.heap.Push(tgtH, cand)
					stats.Relaxations++
				}
				if w != srcPart || anchor != model.NoDoor {
					// Do not expand through the target partition: any
					// route entering and leaving it again is longer
					// (convex cells, positive legs). The source
					// partition must still be expanded normally.
					continue
				}
			}
			if e.opts.SinglePartitionExpansion && e.st.visited[w] {
				continue
			}
			if w != srcPart && w != tgtPart && e.v.Partition(w).Kind.IsPrivate() {
				continue // rule 2
			}
			if !e.st.visited[w] {
				e.st.visited[w] = true
				stats.PartitionsVisited++
			}
			e.expand(q, w, anchor, h, baseDist, &stats, srcPart, tgtPart)
		}
	}
}

// expand relaxes every leaveable door of partition w from the anchor
// (Algorithm 1 lines 25–34). With the asynchronous checker, expansions
// whose whole arrival window fits inside the current checkpoint slot
// iterate the snapshot's reduced leave-door list instead, pruning
// closed doors up front and skipping the per-door check (exactly
// equivalent: listed doors are open throughout the slot).
func (e *Engine) expand(q Query, w model.PartitionID, anchor model.DoorID, h int32,
	baseDist float64, stats *SearchStats, srcPart, tgtPart model.PartitionID) {

	doors := e.v.LeaveDoors(w)
	checkEach := true
	if pruner, ok := e.checker.(leavePruner); ok {
		// Bound the longest possible leg inside w: the largest DM entry
		// covers door-to-door legs; the rectangle diagonal covers the
		// source-point legs of the first expansion.
		maxLeg := e.g.DM().Matrix(w).MaxEntry()
		if anchor == model.NoDoor {
			r := e.v.Partition(w).Rect
			if diag := math.Hypot(r.Width(), r.Height()); diag > maxLeg {
				maxLeg = diag
			}
		}
		if pruned, exact := pruner.PrunedLeaveDoors(w, baseDist, maxLeg); exact {
			doors = pruned
			checkEach = false
		}
	}
	for _, dj := range doors {
		hj := int32(dj)
		if e.st.settled[hj] {
			continue
		}
		// Early privacy prune (line 28): skip doors that lead only to
		// private partitions, unless one holds ps or pt.
		useful := false
		for _, nxt := range e.v.NextPartitions(dj, w) {
			if nxt == srcPart || nxt == tgtPart || !e.v.Partition(nxt).Kind.IsPrivate() {
				useful = true
				break
			}
		}
		if !useful {
			continue
		}
		var leg float64
		if anchor == model.NoDoor {
			leg = e.g.DM().PointToDoor(w, q.Source, dj)
		} else {
			leg = e.legDist(w, anchor, dj)
		}
		if math.IsInf(leg, 1) {
			continue
		}
		distj := baseDist + leg
		// TV_Check (line 30; see DESIGN.md on the printed polarity).
		// Skipped when the reduced list already guarantees openness.
		if checkEach && !e.checker.Check(dj, distj) {
			continue
		}
		stats.Relaxations++
		if old, seen := e.st.dist[hj]; !seen || distj < old {
			e.st.dist[hj] = distj
			e.st.prevDoor[hj] = h
			e.st.prevPart[hj] = w
			e.st.heap.Push(hj, distj)
		}
	}
}

// reconstruct rebuilds the path from the prev chains (Algorithm 1
// lines 11–17).
func (e *Engine) reconstruct(q Query, srcH, tgtH int32, srcPart, tgtPart model.PartitionID,
	t0 temporal.TimeOfDay, speed float64) *Path {

	var doors []model.DoorID
	var parts []model.PartitionID
	for h := e.st.prevDoor[tgtH]; h != srcH; h = e.st.prevDoor[h] {
		doors = append(doors, model.DoorID(h))
		parts = append(parts, e.st.prevPart[h])
	}
	// Reverse into forward order.
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
		parts[i], parts[j] = parts[j], parts[i]
	}
	parts = append(parts, tgtPart)
	length := e.st.dist[tgtH]
	arrivals := make([]temporal.TimeOfDay, len(doors))
	for i, d := range doors {
		arrivals[i] = t0 + temporal.TimeOfDay(e.st.dist[int32(d)]/speed)
	}
	return &Path{
		Source:       q.Source,
		Target:       q.Target,
		Doors:        doors,
		Partitions:   parts,
		Length:       length,
		Arrivals:     arrivals,
		ArrivalAtTgt: t0 + temporal.TimeOfDay(length/speed),
		DepartedAt:   t0,
	}
}

// finishStats derives the aggregate counters.
func (e *Engine) finishStats(s *SearchStats) {
	s.DoorsTouched = len(e.st.dist)
	s.HeapMax = e.st.heap.MaxLen()
	s.Checker = e.checker.Stats()
	// Working-set model: three hash-map entries per touched handle
	// (dist, prevDoor, prevPart at ~48 B each incl. bucket overhead),
	// one heap slot per high-water entry, one byte-pair per visited
	// partition/settled door, plus consulted snapshot bytes.
	s.BytesEstimate = len(e.st.dist)*3*48 +
		s.HeapMax*16 +
		len(e.st.visited)*16 + len(e.st.settled)*16 +
		s.Checker.SnapshotBytes
}

// RouteOrNil is Route for callers that treat "no route" as a regular
// outcome: it returns nil without error in that case.
func (e *Engine) RouteOrNil(q Query) (*Path, SearchStats, error) {
	p, st, err := e.Route(q)
	if err == ErrNoRoute {
		return nil, st, nil
	}
	return p, st, err
}
