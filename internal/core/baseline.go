package core

import (
	"errors"
	"math"

	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/pqueue"
	"indoorpath/internal/temporal"
)

// StaticRouter is the temporal-unaware baseline: the classic indoor
// shortest path query over the accessibility graph (Lu et al., ICDE
// 2012). It honours door directionality and partition privacy but
// ignores ATIs entirely, so its answers may cross doors that are closed
// on arrival — exactly the failure mode motivating ITSPQ.
type StaticRouter struct {
	engine *Engine
}

// NewStaticRouter builds the baseline router.
func NewStaticRouter(g *itgraph.Graph) *StaticRouter {
	return &StaticRouter{engine: NewEngine(g, Options{Method: MethodStatic})}
}

// Route returns the static shortest path, which may be temporally
// invalid.
func (r *StaticRouter) Route(q Query) (*Path, SearchStats, error) {
	return r.engine.Route(q)
}

// StaticThenValidate is the naive temporal strategy: compute the static
// shortest path, then check it against the ATIs. It returns ErrNoRoute
// whenever the single static path happens to cross a closed door, even
// though a slightly longer valid path may exist — the second reason the
// paper gives for why precomputed static answers are insufficient.
func StaticThenValidate(g *itgraph.Graph, q Query) (*Path, error) {
	r := NewStaticRouter(g)
	p, _, err := r.Route(q)
	if err != nil {
		return nil, err
	}
	for i, d := range p.Doors {
		if !g.Venue().Door(d).OpenAt(p.Arrivals[i].Mod()) {
			return nil, ErrNoRoute
		}
	}
	return p, nil
}

// WaitingRouter implements the extension the paper leaves as future
// work (footnote 2): routing with waiting tolerance. The objective
// changes from shortest distance to earliest arrival — a user reaching
// a closed door may wait for its next opening. Labels are earliest
// door-crossing instants; since waiting is allowed, arrival functions
// are FIFO and label-setting Dijkstra is exact.
type WaitingRouter struct {
	g *itgraph.Graph
	v *model.Venue

	heap     *pqueue.Heap
	arrive   map[int32]float64 // earliest crossing time (seconds of day)
	walked   map[int32]float64 // walked metres along the label path
	prevDoor map[int32]int32
	prevPart map[int32]model.PartitionID
	settled  map[int32]bool
}

// NewWaitingRouter builds an earliest-arrival router for the graph.
func NewWaitingRouter(g *itgraph.Graph) *WaitingRouter {
	return &WaitingRouter{
		g: g, v: g.Venue(),
		heap:     pqueue.New(64),
		arrive:   map[int32]float64{},
		walked:   map[int32]float64{},
		prevDoor: map[int32]int32{},
		prevPart: map[int32]model.PartitionID{},
		settled:  map[int32]bool{},
	}
}

func (r *WaitingRouter) reset() {
	r.heap.Reset()
	clear(r.arrive)
	clear(r.walked)
	clear(r.prevDoor)
	clear(r.prevPart)
	clear(r.settled)
}

// Route returns the earliest-arrival path from q.Source to q.Target
// departing at q.At, waiting at closed doors when beneficial. The
// returned path reports walked Length, per-door crossing times and
// TotalWait. ErrNoRoute when the target is unreachable before midnight.
func (r *WaitingRouter) Route(q Query) (*Path, error) {
	srcPart, ok := r.v.Locate(q.Source)
	if !ok {
		return nil, errors.Join(ErrNotIndoor, errors.New("source"))
	}
	tgtPart, ok := r.v.Locate(q.Target)
	if !ok {
		return nil, errors.Join(ErrNotIndoor, errors.New("target"))
	}
	speed := q.speed()
	t0 := float64(q.At.Mod())

	r.reset()
	srcH := int32(r.v.DoorCount())
	tgtH := srcH + 1
	r.arrive[srcH] = t0
	r.walked[srcH] = 0
	r.heap.Push(srcH, t0)

	for {
		item, ok := r.heap.Pop()
		if !ok {
			return nil, ErrNoRoute
		}
		h := item.Key
		if h == tgtH {
			return r.reconstruct(q, srcH, tgtH, tgtPart, speed), nil
		}
		if r.settled[h] {
			continue
		}
		r.settled[h] = true

		var anchor model.DoorID = model.NoDoor
		var nexts []model.PartitionID
		if h == srcH {
			nexts = []model.PartitionID{srcPart}
		} else {
			anchor = model.DoorID(h)
			nexts = r.v.NextPartitions(anchor, r.prevPart[h])
		}
		for _, w := range nexts {
			if w == tgtPart {
				var leg float64
				if anchor == model.NoDoor {
					leg = r.g.DM().PointToPoint(w, q.Source, q.Target)
				} else {
					leg = r.g.DM().PointToDoor(w, q.Target, anchor)
				}
				if !math.IsInf(leg, 1) {
					cand := r.arrive[h] + leg/speed
					if old, seen := r.arrive[tgtH]; !seen || cand < old {
						r.arrive[tgtH] = cand
						r.walked[tgtH] = r.walked[h] + leg
						r.prevDoor[tgtH] = h
						r.prevPart[tgtH] = w
						r.heap.Push(tgtH, cand)
					}
				}
				if anchor != model.NoDoor {
					continue
				}
			}
			if w != srcPart && w != tgtPart && r.v.Partition(w).Kind.IsPrivate() {
				continue
			}
			r.relaxPartition(q, w, anchor, h, speed)
		}
	}
}

// relaxPartition relaxes every leaveable door of w from the anchor,
// waiting at closed doors until their next opening. Unlike the
// no-waiting engine, partitions are not marked visited: a later entry
// through a different door can still improve other doors' labels, and
// door-level settling keeps the search finite.
func (r *WaitingRouter) relaxPartition(q Query, w model.PartitionID, anchor model.DoorID, h int32, speed float64) {
	for _, dj := range r.v.LeaveDoors(w) {
		hj := int32(dj)
		if r.settled[hj] {
			continue
		}
		var leg float64
		if anchor == model.NoDoor {
			leg = r.g.DM().PointToDoor(w, q.Source, dj)
		} else {
			leg = r.g.DM().Dist(w, anchor, dj)
		}
		if math.IsInf(leg, 1) {
			continue
		}
		walkArr := r.arrive[h] + leg/speed
		if walkArr >= float64(temporal.DaySeconds) {
			continue // beyond the service day
		}
		cross, ok := r.v.Door(dj).ATIs.NextOpening(temporal.TimeOfDay(walkArr))
		if !ok {
			continue // never opens again today
		}
		cand := float64(cross)
		if old, seen := r.arrive[hj]; !seen || cand < old {
			r.arrive[hj] = cand
			r.walked[hj] = r.walked[h] + leg
			r.prevDoor[hj] = h
			r.prevPart[hj] = w
			r.heap.Push(hj, cand)
		}
	}
}

func (r *WaitingRouter) reconstruct(q Query, srcH, tgtH int32, tgtPart model.PartitionID, speed float64) *Path {
	var doors []model.DoorID
	var parts []model.PartitionID
	var arrivals []temporal.TimeOfDay
	for h := r.prevDoor[tgtH]; h != srcH; h = r.prevDoor[h] {
		doors = append(doors, model.DoorID(h))
		parts = append(parts, r.prevPart[h])
		arrivals = append(arrivals, temporal.TimeOfDay(r.arrive[h]))
	}
	for i, j := 0, len(doors)-1; i < j; i, j = i+1, j-1 {
		doors[i], doors[j] = doors[j], doors[i]
		parts[i], parts[j] = parts[j], parts[i]
		arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
	}
	parts = append(parts, tgtPart)
	length := r.walked[tgtH]
	arrivalTgt := temporal.TimeOfDay(r.arrive[tgtH])
	wait := arrivalTgt - q.At.Mod() - temporal.TimeOfDay(length/speed)
	if wait < 0 {
		wait = 0
	}
	return &Path{
		Source:       q.Source,
		Target:       q.Target,
		Doors:        doors,
		Partitions:   parts,
		Length:       length,
		Arrivals:     arrivals,
		ArrivalAtTgt: arrivalTgt,
		DepartedAt:   q.At.Mod(),
		TotalWait:    wait,
	}
}
