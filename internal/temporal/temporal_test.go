package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		in      string
		want    TimeOfDay
		wantErr bool
	}{
		{"8:00", Clock(8, 0, 0), false},
		{"23:30", Clock(23, 30, 0), false},
		{"0:00", 0, false},
		{"24:00", DaySeconds, false},
		{"6:30:15", Clock(6, 30, 15), false},
		{" 12:00 ", Clock(12, 0, 0), false},
		{"9", Clock(9, 0, 0), false},
		{"25:00", 0, true},
		{"12:60", 0, true},
		{"24:01", 0, true},
		{"-1:00", 0, true},
		{"abc", 0, true},
		{"1:2:3:4", 0, true},
	}
	for _, tc := range tests {
		t.Run(tc.in, func(t *testing.T) {
			got, err := Parse(tc.in)
			if (err != nil) != tc.wantErr {
				t.Fatalf("Parse(%q) err = %v, wantErr=%v", tc.in, err, tc.wantErr)
			}
			if err == nil && got != tc.want {
				t.Errorf("Parse(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"0:00", "8:00", "12:34", "23:59", "6:30:15"} {
		got := MustParse(s).String()
		if got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if Clock(24, 0, 0).String() != "24:00" {
		t.Errorf("24:00 renders as %q", Clock(24, 0, 0).String())
	}
}

func TestMod(t *testing.T) {
	if got := (DaySeconds + Clock(1, 30, 0)).Mod(); got != Clock(1, 30, 0) {
		t.Errorf("Mod overflow = %v", got)
	}
	if got := TimeOfDay(-3600).Mod(); got != Clock(23, 0, 0) {
		t.Errorf("Mod negative = %v", got)
	}
	if got := Clock(12, 0, 0).Mod(); got != Clock(12, 0, 0) {
		t.Errorf("Mod identity = %v", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := MustInterval(Clock(8, 0, 0), Clock(16, 0, 0))
	if !iv.Contains(Clock(8, 0, 0)) {
		t.Error("open bound is inclusive")
	}
	if iv.Contains(Clock(16, 0, 0)) {
		t.Error("close bound is exclusive")
	}
	if !iv.Contains(Clock(12, 0, 0)) {
		t.Error("midday should be contained")
	}
	if iv.Duration() != Clock(8, 0, 0) {
		t.Errorf("Duration = %v", iv.Duration())
	}
	if iv.String() != "[8:00, 16:00)" {
		t.Errorf("String = %q", iv.String())
	}
	if _, err := NewInterval(Clock(16, 0, 0), Clock(8, 0, 0)); err == nil {
		t.Error("inverted interval must fail")
	}
	if _, err := NewInterval(Clock(8, 0, 0), Clock(8, 0, 0)); err == nil {
		t.Error("empty interval must fail")
	}
	if _, err := NewInterval(-1, Clock(8, 0, 0)); err == nil {
		t.Error("negative bound must fail")
	}
}

func TestParseInterval(t *testing.T) {
	iv, err := ParseInterval("[8:00, 16:00)")
	if err != nil || iv.Open != Clock(8, 0, 0) || iv.Close != Clock(16, 0, 0) {
		t.Fatalf("ParseInterval = %v, %v", iv, err)
	}
	iv, err = ParseInterval("6:30-23:00")
	if err != nil || iv.Open != Clock(6, 30, 0) {
		t.Fatalf("dash form = %v, %v", iv, err)
	}
	if _, err := ParseInterval("junk"); err == nil {
		t.Error("expected parse error")
	}
}

func TestIntervalOverlapAbut(t *testing.T) {
	a := MustInterval(Clock(8, 0, 0), Clock(12, 0, 0))
	b := MustInterval(Clock(12, 0, 0), Clock(16, 0, 0))
	c := MustInterval(Clock(10, 0, 0), Clock(14, 0, 0))
	if a.Overlaps(b) {
		t.Error("abutting intervals do not overlap")
	}
	if !a.Abuts(b) || !b.Abuts(a) {
		t.Error("Abuts should hold both ways")
	}
	if !a.Overlaps(c) || !c.Overlaps(b) {
		t.Error("overlap not detected")
	}
}

func TestScheduleNormalisation(t *testing.T) {
	s, err := NewSchedule(
		MustInterval(Clock(18, 0, 0), Clock(23, 0, 0)),
		MustInterval(Clock(5, 0, 0), Clock(12, 0, 0)),
		MustInterval(Clock(11, 0, 0), Clock(17, 0, 0)), // overlaps the 5-12
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("normalised to %d intervals: %v", len(s), s)
	}
	if s[0].Open != Clock(5, 0, 0) || s[0].Close != Clock(17, 0, 0) {
		t.Errorf("merged head = %v", s[0])
	}
	if !s.IsNormal() {
		t.Error("result must be normal")
	}
	// Abutting intervals merge too.
	s2 := MustSchedule(
		MustInterval(Clock(8, 0, 0), Clock(12, 0, 0)),
		MustInterval(Clock(12, 0, 0), Clock(16, 0, 0)),
	)
	if len(s2) != 1 || s2[0].Close != Clock(16, 0, 0) {
		t.Errorf("abutting merge = %v", s2)
	}
}

func TestScheduleContains(t *testing.T) {
	// Paper Table I: d9 has 〈[0:00, 6:00), [6:30, 23:00)〉.
	s := MustSchedule(
		MustInterval(0, Clock(6, 0, 0)),
		MustInterval(Clock(6, 30, 0), Clock(23, 0, 0)),
	)
	tests := []struct {
		at   string
		want bool
	}{
		{"0:00", true}, {"5:59", true}, {"6:00", false}, {"6:15", false},
		{"6:30", true}, {"12:00", true}, {"22:59", true}, {"23:00", false},
		{"23:30", false},
	}
	for _, tc := range tests {
		if got := s.Contains(MustParse(tc.at)); got != tc.want {
			t.Errorf("Contains(%s) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestScheduleContainsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		var ivs []Interval
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			a := TimeOfDay(rng.Float64() * float64(DaySeconds-60))
			b := a + TimeOfDay(60+rng.Float64()*20000)
			if b > DaySeconds {
				b = DaySeconds
			}
			ivs = append(ivs, Interval{Open: a, Close: b})
		}
		s := MustSchedule(ivs...)
		for probe := 0; probe < 50; probe++ {
			at := TimeOfDay(rng.Float64() * float64(DaySeconds))
			naive := false
			for _, iv := range ivs {
				if iv.Contains(at) {
					naive = true
					break
				}
			}
			if got := s.Contains(at); got != naive {
				t.Fatalf("trial %d: Contains(%v)=%v, naive=%v, sched=%v raw=%v",
					trial, at, got, naive, s, ivs)
			}
		}
	}
}

func TestScheduleNormalisationIdempotent(t *testing.T) {
	f := func(seeds [6]uint16) bool {
		var ivs []Interval
		for i := 0; i+1 < len(seeds); i += 2 {
			a := TimeOfDay(seeds[i]) * 1.3
			b := a + TimeOfDay(seeds[i+1])*0.7
			a, b = a.Mod(), b.Mod()
			if b <= a {
				a, b = b, a
			}
			if b-a < 1 {
				continue
			}
			ivs = append(ivs, Interval{Open: a, Close: b})
		}
		s1, err := NewSchedule(ivs...)
		if err != nil {
			return false
		}
		s2, err := NewSchedule(s1...)
		if err != nil || len(s1) != len(s2) {
			return false
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return s1.IsNormal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScheduleNextBoundary(t *testing.T) {
	s := MustSchedule(
		MustInterval(Clock(8, 0, 0), Clock(16, 0, 0)),
		MustInterval(Clock(18, 0, 0), Clock(23, 0, 0)),
	)
	tests := []struct {
		at, want string
		ok       bool
	}{
		{"0:00", "8:00", true},
		{"8:00", "16:00", true},
		{"12:00", "16:00", true},
		{"16:00", "18:00", true},
		{"20:00", "23:00", true},
		{"23:00", "", false},
		{"23:30", "", false},
	}
	for _, tc := range tests {
		got, ok := s.NextBoundary(MustParse(tc.at))
		if ok != tc.ok {
			t.Fatalf("NextBoundary(%s) ok=%v want %v", tc.at, ok, tc.ok)
		}
		if ok && got != MustParse(tc.want) {
			t.Errorf("NextBoundary(%s) = %v, want %s", tc.at, got, tc.want)
		}
	}
}

func TestScheduleNextOpening(t *testing.T) {
	s := MustSchedule(
		MustInterval(Clock(8, 0, 0), Clock(16, 0, 0)),
		MustInterval(Clock(18, 0, 0), Clock(23, 0, 0)),
	)
	if got, ok := s.NextOpening(Clock(7, 0, 0)); !ok || got != Clock(8, 0, 0) {
		t.Errorf("NextOpening(7:00) = %v,%v", got, ok)
	}
	if got, ok := s.NextOpening(Clock(12, 0, 0)); !ok || got != Clock(12, 0, 0) {
		t.Errorf("NextOpening while open = %v,%v", got, ok)
	}
	if got, ok := s.NextOpening(Clock(17, 0, 0)); !ok || got != Clock(18, 0, 0) {
		t.Errorf("NextOpening(17:00) = %v,%v", got, ok)
	}
	if _, ok := s.NextOpening(Clock(23, 30, 0)); ok {
		t.Error("NextOpening after final close should fail")
	}
	var empty Schedule
	if _, ok := empty.NextOpening(0); ok {
		t.Error("empty schedule never opens")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("〈[0:00, 6:00), [6:30, 23:00)〉")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[1].Open != Clock(6, 30, 0) {
		t.Errorf("parsed %v", s)
	}
	s2, err := ParseSchedule("[5:00, 23:00)")
	if err != nil || len(s2) != 1 {
		t.Fatalf("single = %v, %v", s2, err)
	}
	if _, err := ParseSchedule("〈[bad)〉"); err == nil {
		t.Error("expected error")
	}
	empty, err := ParseSchedule("〈〉")
	if err != nil || len(empty) != 0 {
		t.Errorf("empty schedule parse = %v, %v", empty, err)
	}
}

func TestScheduleMisc(t *testing.T) {
	if !AlwaysOpen().AlwaysOpenAllDay() {
		t.Error("AlwaysOpen must cover the day")
	}
	if AlwaysOpen().TotalOpen() != DaySeconds {
		t.Error("TotalOpen of AlwaysOpen")
	}
	s := MustSchedule(MustInterval(Clock(8, 0, 0), Clock(16, 0, 0)))
	if s.AlwaysOpenAllDay() {
		t.Error("8-16 is not all day")
	}
	if s.String() != "〈[8:00, 16:00)〉" {
		t.Errorf("String = %q", s.String())
	}
	c := s.Clone()
	c[0].Open = 0
	if s[0].Open == 0 {
		t.Error("Clone must be deep")
	}
	var nilSched Schedule
	if nilSched.Clone() != nil {
		t.Error("nil Clone is nil")
	}
	if nilSched.String() != "〈〉" {
		t.Errorf("nil String = %q", nilSched.String())
	}
	b := s.Boundaries(nil)
	if len(b) != 2 || b[0] != Clock(8, 0, 0) || b[1] != Clock(16, 0, 0) {
		t.Errorf("Boundaries = %v", b)
	}
}

func TestCheckpointSet(t *testing.T) {
	cs := NewCheckpointSet([]TimeOfDay{
		Clock(16, 0, 0), Clock(8, 0, 0), Clock(8, 0, 0), Clock(22, 0, 0),
		0, DaySeconds, // dropped: non-separating
	})
	if cs.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (%v)", cs.Len(), cs.Times())
	}
	if cs.SlotCount() != 4 {
		t.Errorf("SlotCount = %d", cs.SlotCount())
	}
	tests := []struct {
		at   string
		slot int
	}{
		{"0:00", 0}, {"7:59", 0}, {"8:00", 1}, {"12:00", 1},
		{"16:00", 2}, {"21:59", 2}, {"22:00", 3}, {"23:59", 3},
	}
	for _, tc := range tests {
		if got := cs.SlotOf(MustParse(tc.at)); got != tc.slot {
			t.Errorf("SlotOf(%s) = %d, want %d", tc.at, got, tc.slot)
		}
	}
	if s := cs.SlotStart(0); s != 0 {
		t.Errorf("SlotStart(0) = %v", s)
	}
	if e := cs.SlotEnd(3); e != DaySeconds {
		t.Errorf("SlotEnd(last) = %v", e)
	}
	if s := cs.SlotStart(2); s != Clock(16, 0, 0) {
		t.Errorf("SlotStart(2) = %v", s)
	}
	if e := cs.SlotEnd(1); e != Clock(16, 0, 0) {
		t.Errorf("SlotEnd(1) = %v", e)
	}
}

func TestCheckpointPrevNext(t *testing.T) {
	cs := NewCheckpointSet([]TimeOfDay{Clock(8, 0, 0), Clock(16, 0, 0)})
	if _, ok := cs.Prev(Clock(7, 0, 0)); ok {
		t.Error("Prev before first checkpoint should fail")
	}
	if p, ok := cs.Prev(Clock(8, 0, 0)); !ok || p != Clock(8, 0, 0) {
		t.Errorf("Prev(8:00) = %v,%v (checkpoint instant belongs to its slot)", p, ok)
	}
	if p, ok := cs.Prev(Clock(12, 0, 0)); !ok || p != Clock(8, 0, 0) {
		t.Errorf("Prev(12:00) = %v,%v", p, ok)
	}
	if n, ok := cs.Next(Clock(12, 0, 0)); !ok || n != Clock(16, 0, 0) {
		t.Errorf("Next(12:00) = %v,%v", n, ok)
	}
	if _, ok := cs.Next(Clock(16, 0, 0)); ok {
		t.Error("Next at last checkpoint should fail")
	}
	if !cs.Contains(Clock(8, 0, 0)) || cs.Contains(Clock(9, 0, 0)) {
		t.Error("Contains misbehaves")
	}
}

func TestCheckpointSlotConsistency(t *testing.T) {
	f := func(raw [8]uint32) bool {
		ts := make([]TimeOfDay, 0, len(raw))
		for _, r := range raw {
			ts = append(ts, TimeOfDay(r%86400))
		}
		cs := NewCheckpointSet(ts)
		for _, r := range raw {
			at := TimeOfDay(r % 86400).Mod()
			slot := cs.SlotOf(at)
			if !(cs.SlotStart(slot) <= at && at < cs.SlotEnd(slot)) {
				return false
			}
		}
		// Slots tile the day.
		for i := 0; i < cs.SlotCount(); i++ {
			if cs.SlotStart(i) >= cs.SlotEnd(i) {
				return false
			}
			if i > 0 && cs.SlotEnd(i-1) != cs.SlotStart(i) {
				return false
			}
		}
		return cs.SlotStart(0) == 0 && cs.SlotEnd(cs.SlotCount()-1) == DaySeconds
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCheckpointUnion(t *testing.T) {
	a := NewCheckpointSet([]TimeOfDay{Clock(8, 0, 0)})
	b := NewCheckpointSet([]TimeOfDay{Clock(16, 0, 0), Clock(8, 0, 0)})
	u := a.Union(b)
	if u.Len() != 2 {
		t.Errorf("Union len = %d", u.Len())
	}
}
