package temporal

// Schedule algebra: union, intersection and complement of ATI lists,
// all in normal form. These compose what-if schedules (e.g. a lockdown
// is the intersection of a door's hours with an allowed window) and
// support schedule analysis in tooling.

// Union returns the instants open under s or o.
func (s Schedule) Union(o Schedule) Schedule {
	merged := make([]Interval, 0, len(s)+len(o))
	merged = append(merged, s...)
	merged = append(merged, o...)
	out, err := NewSchedule(merged...)
	if err != nil {
		// Inputs in normal form cannot produce invalid intervals.
		panic("temporal: union of normal schedules failed: " + err.Error())
	}
	return out
}

// Intersect returns the instants open under both s and o.
func (s Schedule) Intersect(o Schedule) Schedule {
	var out Schedule
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		a, b := s[i], o[j]
		lo := a.Open
		if b.Open > lo {
			lo = b.Open
		}
		hi := a.Close
		if b.Close < hi {
			hi = b.Close
		}
		if lo < hi {
			out = append(out, Interval{Open: lo, Close: hi})
		}
		if a.Close < b.Close {
			i++
		} else {
			j++
		}
	}
	return out
}

// Invert returns the complement within the day: the instants at which
// the schedule is closed.
func (s Schedule) Invert() Schedule {
	var out Schedule
	cursor := TimeOfDay(0)
	for _, iv := range s {
		if iv.Open > cursor {
			out = append(out, Interval{Open: cursor, Close: iv.Open})
		}
		cursor = iv.Close
	}
	if cursor < DaySeconds {
		out = append(out, Interval{Open: cursor, Close: DaySeconds})
	}
	return out
}

// Subtract returns the instants open under s but not under o.
func (s Schedule) Subtract(o Schedule) Schedule {
	return s.Intersect(o.Invert())
}

// Equal reports whether two schedules cover exactly the same instants
// (both must be in normal form, as produced by NewSchedule).
func (s Schedule) Equal(o Schedule) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}
