package temporal

import (
	"testing"
)

// FuzzParse: Parse must never panic, and accepted inputs must survive a
// format/parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"8:00", "23:59", "0:00", "24:00", "6:30:15", "9", "", ":", "::",
		"25:00", "-1:00", "8:60", "08:00", " 12:00 ", "1:2:3:4", "x:y",
		"999999999999:00", "8:-5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, err := Parse(s)
		if err != nil {
			return
		}
		if !got.Valid() {
			t.Fatalf("Parse(%q) accepted out-of-range %v", s, got)
		}
		// Round trip through the canonical rendering.
		again, err := Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, got.String(), err)
		}
		if again != got {
			t.Fatalf("round trip %q -> %v -> %v", s, got, again)
		}
	})
}

// FuzzParseSchedule: ParseSchedule must never panic; accepted schedules
// must be normal and round-trip through String.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"[8:00, 16:00)", "〈[0:00, 6:00), [6:30, 23:00)〉", "8:00-16:00",
		"", "〈〉", "[)", "[8:00,", "[8:00, 7:00)", "[8:00, 16:00), [12:00, 20:00)",
		"<[1:00, 2:00)>", "junk", "[a, b)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s)
		if err != nil {
			return
		}
		if !sched.IsNormal() {
			t.Fatalf("ParseSchedule(%q) = %v not normal", s, sched)
		}
		again, err := ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("schedule %v does not re-parse: %v", sched, err)
		}
		if !again.Equal(sched) {
			t.Fatalf("round trip %q -> %v -> %v", s, sched, again)
		}
	})
}

func BenchmarkScheduleContains(b *testing.B) {
	s := MustSchedule(
		MustInterval(Clock(0, 0, 0), Clock(6, 0, 0)),
		MustInterval(Clock(6, 30, 0), Clock(12, 0, 0)),
		MustInterval(Clock(13, 0, 0), Clock(23, 0, 0)),
	)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Contains(TimeOfDay(i % 86400)) {
			n++
		}
	}
	_ = n
}

func BenchmarkCheckpointSlotOf(b *testing.B) {
	cs := NewCheckpointSet([]TimeOfDay{
		Clock(5, 0, 0), Clock(6, 0, 0), Clock(7, 0, 0), Clock(8, 30, 0),
		Clock(20, 0, 0), Clock(21, 0, 0), Clock(22, 0, 0), Clock(23, 0, 0),
	})
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += cs.SlotOf(TimeOfDay(i % 86400))
	}
	_ = n
}
