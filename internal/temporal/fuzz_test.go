package temporal

import (
	"testing"
)

// FuzzParse: Parse must never panic, and accepted inputs must survive a
// format/parse round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"8:00", "23:59", "0:00", "24:00", "6:30:15", "9", "", ":", "::",
		"25:00", "-1:00", "8:60", "08:00", " 12:00 ", "1:2:3:4", "x:y",
		"999999999999:00", "8:-5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got, err := Parse(s)
		if err != nil {
			return
		}
		if !got.Valid() {
			t.Fatalf("Parse(%q) accepted out-of-range %v", s, got)
		}
		// Round trip through the canonical rendering.
		again, err := Parse(got.String())
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", s, got.String(), err)
		}
		if again != got {
			t.Fatalf("round trip %q -> %v -> %v", s, got, again)
		}
	})
}

// FuzzParseSchedule: ParseSchedule must never panic; accepted schedules
// must be normal and round-trip through String.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"[8:00, 16:00)", "〈[0:00, 6:00), [6:30, 23:00)〉", "8:00-16:00",
		"", "〈〉", "[)", "[8:00,", "[8:00, 7:00)", "[8:00, 16:00), [12:00, 20:00)",
		"<[1:00, 2:00)>", "junk", "[a, b)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sched, err := ParseSchedule(s)
		if err != nil {
			return
		}
		if !sched.IsNormal() {
			t.Fatalf("ParseSchedule(%q) = %v not normal", s, sched)
		}
		again, err := ParseSchedule(sched.String())
		if err != nil {
			t.Fatalf("schedule %v does not re-parse: %v", sched, err)
		}
		if !again.Equal(sched) {
			t.Fatalf("round trip %q -> %v -> %v", s, sched, again)
		}
	})
}

// scheduleFromBytes decodes fuzz bytes into a normalised schedule:
// byte pairs become (open, duration) interval candidates on a coarse
// 10-minute lattice, then NewSchedule normalises the soup.
func scheduleFromBytes(data []byte) Schedule {
	const tick = 600 // 10 minutes
	var ivs []Interval
	for i := 0; i+1 < len(data) && len(ivs) < 8; i += 2 {
		open := TimeOfDay(int(data[i]) % 144 * tick)
		length := TimeOfDay((int(data[i+1])%12 + 1) * tick)
		close := open + length
		if close > DaySeconds {
			close = DaySeconds
		}
		if open >= close {
			continue
		}
		ivs = append(ivs, Interval{Open: open, Close: close})
	}
	s, err := NewSchedule(ivs...)
	if err != nil {
		return Schedule{}
	}
	return s
}

// FuzzScheduleAlgebra: the schedule algebra (Union, Intersect, Invert,
// Subtract) must keep results in normal form and agree pointwise with
// boolean logic over Contains, for arbitrary interval soups. These are
// the operations behind what-if re-planning (WithSchedules) and
// checkpoint derivation, so the pointwise law is load-bearing.
func FuzzScheduleAlgebra(f *testing.F) {
	// Seeds mirroring the repository's venue schedules: the paper's shop
	// hours, the hospital's split visiting hours, an always-open ER door
	// and a near-midnight sliver.
	f.Add([]byte{48, 8, 108, 6}, []byte{54, 4})
	f.Add([]byte{0, 11, 39, 11, 78, 11, 117, 11}, []byte{0, 11, 120, 11})
	f.Add([]byte{0, 12}, []byte{143, 1})
	f.Add([]byte{}, []byte{10, 2})

	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte) {
		a, b := scheduleFromBytes(aRaw), scheduleFromBytes(bRaw)
		union := a.Union(b)
		inter := a.Intersect(b)
		diff := a.Subtract(b)
		invA := a.Invert()
		for name, s := range map[string]Schedule{
			"union": union, "intersect": inter, "subtract": diff, "invert": invA,
		} {
			if !s.IsNormal() {
				t.Fatalf("%s(%v, %v) = %v not normal", name, a, b, s)
			}
		}
		// Pointwise agreement at every boundary of either operand (the
		// only instants where openness can flip) and just around them.
		var probes []TimeOfDay
		for _, s := range []Schedule{a, b} {
			for _, iv := range s {
				probes = append(probes, iv.Open, iv.Close, iv.Open-1, iv.Close+1)
			}
		}
		probes = append(probes, 0, DaySeconds-1, 43200)
		for _, p := range probes {
			p = p.Mod()
			inA, inB := a.Contains(p), b.Contains(p)
			if got := union.Contains(p); got != (inA || inB) {
				t.Fatalf("union.Contains(%v) = %v, want %v (a=%v b=%v)", p, got, inA || inB, a, b)
			}
			if got := inter.Contains(p); got != (inA && inB) {
				t.Fatalf("intersect.Contains(%v) = %v, want %v (a=%v b=%v)", p, got, inA && inB, a, b)
			}
			if got := diff.Contains(p); got != (inA && !inB) {
				t.Fatalf("subtract.Contains(%v) = %v, want %v (a=%v b=%v)", p, got, inA && !inB, a, b)
			}
			if got := invA.Contains(p); got != !inA {
				t.Fatalf("invert.Contains(%v) = %v, want %v (a=%v)", p, got, !inA, a)
			}
		}
		// Involution and De Morgan spot-checks at the structural level.
		if !invA.Invert().Equal(a) {
			t.Fatalf("double inversion of %v = %v", a, invA.Invert())
		}
		if !a.Subtract(b).Equal(a.Intersect(b.Invert())) {
			t.Fatalf("a\\b != a∩¬b for a=%v b=%v", a, b)
		}
	})
}

func BenchmarkScheduleContains(b *testing.B) {
	s := MustSchedule(
		MustInterval(Clock(0, 0, 0), Clock(6, 0, 0)),
		MustInterval(Clock(6, 30, 0), Clock(12, 0, 0)),
		MustInterval(Clock(13, 0, 0), Clock(23, 0, 0)),
	)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		if s.Contains(TimeOfDay(i % 86400)) {
			n++
		}
	}
	_ = n
}

func BenchmarkCheckpointSlotOf(b *testing.B) {
	cs := NewCheckpointSet([]TimeOfDay{
		Clock(5, 0, 0), Clock(6, 0, 0), Clock(7, 0, 0), Clock(8, 30, 0),
		Clock(20, 0, 0), Clock(21, 0, 0), Clock(22, 0, 0), Clock(23, 0, 0),
	})
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		n += cs.SlotOf(TimeOfDay(i % 86400))
	}
	_ = n
}
