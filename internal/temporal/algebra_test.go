package temporal

import (
	"math/rand"
	"testing"
)

func mkSched(t *testing.T, pairs ...[2]string) Schedule {
	t.Helper()
	var ivs []Interval
	for _, p := range pairs {
		ivs = append(ivs, MustInterval(MustParse(p[0]), MustParse(p[1])))
	}
	return MustSchedule(ivs...)
}

func TestUnion(t *testing.T) {
	a := mkSched(t, [2]string{"8:00", "12:00"})
	b := mkSched(t, [2]string{"10:00", "16:00"}, [2]string{"20:00", "22:00"})
	u := a.Union(b)
	want := mkSched(t, [2]string{"8:00", "16:00"}, [2]string{"20:00", "22:00"})
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if !a.Union(nil).Equal(a) {
		t.Error("union with empty must be identity")
	}
}

func TestIntersect(t *testing.T) {
	a := mkSched(t, [2]string{"8:00", "12:00"}, [2]string{"14:00", "18:00"})
	b := mkSched(t, [2]string{"10:00", "16:00"})
	got := a.Intersect(b)
	want := mkSched(t, [2]string{"10:00", "12:00"}, [2]string{"14:00", "16:00"})
	if !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if len(a.Intersect(nil)) != 0 {
		t.Error("intersect with empty must be empty")
	}
	disjoint := mkSched(t, [2]string{"0:00", "1:00"})
	if len(a.Intersect(disjoint)) != 0 {
		t.Error("disjoint intersect must be empty")
	}
}

func TestInvert(t *testing.T) {
	a := mkSched(t, [2]string{"8:00", "12:00"}, [2]string{"14:00", "18:00"})
	inv := a.Invert()
	want := mkSched(t, [2]string{"0:00", "8:00"}, [2]string{"12:00", "14:00"}, [2]string{"18:00", "24:00"})
	if !inv.Equal(want) {
		t.Errorf("Invert = %v, want %v", inv, want)
	}
	if got := AlwaysOpen().Invert(); len(got) != 0 {
		t.Errorf("invert of always-open = %v", got)
	}
	var empty Schedule
	if !empty.Invert().Equal(AlwaysOpen()) {
		t.Error("invert of empty must be always-open")
	}
}

func TestSubtract(t *testing.T) {
	a := mkSched(t, [2]string{"8:00", "18:00"})
	b := mkSched(t, [2]string{"12:00", "13:00"})
	got := a.Subtract(b)
	want := mkSched(t, [2]string{"8:00", "12:00"}, [2]string{"13:00", "18:00"})
	if !got.Equal(want) {
		t.Errorf("Subtract = %v, want %v", got, want)
	}
}

func TestEqual(t *testing.T) {
	a := mkSched(t, [2]string{"8:00", "12:00"})
	b := mkSched(t, [2]string{"8:00", "12:00"})
	c := mkSched(t, [2]string{"8:00", "12:01"})
	if !a.Equal(b) || a.Equal(c) || a.Equal(nil) {
		t.Error("Equal misbehaves")
	}
}

// randomSchedule builds a normalised schedule from random minutes.
func randomSchedule(rng *rand.Rand) Schedule {
	n := rng.Intn(4)
	var ivs []Interval
	for i := 0; i < n; i++ {
		a := TimeOfDay(rng.Intn(1380)) * 60
		b := a + TimeOfDay(1+rng.Intn(300))*60
		if b > DaySeconds {
			b = DaySeconds
		}
		ivs = append(ivs, Interval{Open: a, Close: b})
	}
	s, err := NewSchedule(ivs...)
	if err != nil {
		panic(err)
	}
	return s
}

// TestAlgebraPointwiseProperty: all operators agree with pointwise
// boolean logic at random probe instants.
func TestAlgebraPointwiseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		a, b := randomSchedule(rng), randomSchedule(rng)
		u, x, inv, sub := a.Union(b), a.Intersect(b), a.Invert(), a.Subtract(b)
		if !u.IsNormal() || !x.IsNormal() || !inv.IsNormal() || !sub.IsNormal() {
			t.Fatalf("trial %d: result not normal", trial)
		}
		for probe := 0; probe < 60; probe++ {
			at := TimeOfDay(rng.Float64() * 86400)
			pa, pb := a.Contains(at), b.Contains(at)
			if got := u.Contains(at); got != (pa || pb) {
				t.Fatalf("trial %d: union(%v) = %v, want %v (a=%v b=%v)", trial, at, got, pa || pb, a, b)
			}
			if got := x.Contains(at); got != (pa && pb) {
				t.Fatalf("trial %d: intersect(%v) = %v, want %v", trial, at, got, pa && pb)
			}
			if got := inv.Contains(at); got != !pa {
				t.Fatalf("trial %d: invert(%v) = %v, want %v", trial, at, got, !pa)
			}
			if got := sub.Contains(at); got != (pa && !pb) {
				t.Fatalf("trial %d: subtract(%v) = %v, want %v", trial, at, got, pa && !pb)
			}
		}
		// De Morgan: ¬(a ∪ b) == ¬a ∩ ¬b.
		if !u.Invert().Equal(a.Invert().Intersect(b.Invert())) {
			t.Fatalf("trial %d: De Morgan violated", trial)
		}
		// Double inversion is identity.
		if !a.Invert().Invert().Equal(a) {
			t.Fatalf("trial %d: double inversion broke %v", trial, a)
		}
	}
}
