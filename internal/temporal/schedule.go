package temporal

import (
	"fmt"
	"sort"
	"strings"
)

// Schedule is a door's list of ATIs, kept sorted by opening time with no
// overlapping or abutting intervals (normal form). The zero value is the
// always-closed schedule. Use AlwaysOpen for doors without temporal
// variation.
type Schedule []Interval

// AlwaysOpen is the ATI list <[0:00, 24:00)> of a door with no temporal
// variation.
func AlwaysOpen() Schedule {
	return Schedule{{Open: 0, Close: DaySeconds}}
}

// NewSchedule normalises the given intervals: it sorts them, merges
// overlapping or abutting ones, and validates bounds.
func NewSchedule(ivs ...Interval) (Schedule, error) {
	for _, iv := range ivs {
		if _, err := NewInterval(iv.Open, iv.Close); err != nil {
			return nil, err
		}
	}
	s := make(Schedule, len(ivs))
	copy(s, ivs)
	sort.Slice(s, func(i, j int) bool { return s[i].Open < s[j].Open })
	out := s[:0]
	for _, iv := range s {
		if n := len(out); n > 0 && iv.Open <= out[n-1].Close {
			if iv.Close > out[n-1].Close {
				out[n-1].Close = iv.Close
			}
			continue
		}
		out = append(out, iv)
	}
	return out, nil
}

// MustSchedule is NewSchedule that panics on error.
func MustSchedule(ivs ...Interval) Schedule {
	s, err := NewSchedule(ivs...)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseSchedule reads the paper's notation for ATI lists, e.g.
// "[0:00, 6:00), [6:30, 23:00)" (angle brackets optional).
func ParseSchedule(s string) (Schedule, error) {
	raw := strings.TrimSpace(s)
	raw = strings.TrimPrefix(raw, "〈")
	raw = strings.TrimSuffix(raw, "〉")
	raw = strings.TrimPrefix(raw, "<")
	raw = strings.TrimSuffix(raw, ">")
	if strings.TrimSpace(raw) == "" {
		return Schedule{}, nil
	}
	var ivs []Interval
	for _, part := range strings.Split(raw, ")") {
		part = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(part), ","))
		if part == "" {
			continue
		}
		iv, err := ParseInterval(part + ")")
		if err != nil {
			return nil, fmt.Errorf("temporal: schedule %q: %v", s, err)
		}
		ivs = append(ivs, iv)
	}
	return NewSchedule(ivs...)
}

// IsNormal reports whether s is sorted with strictly separated intervals;
// all schedules built through NewSchedule satisfy it.
func (s Schedule) IsNormal() bool {
	for i, iv := range s {
		if iv.Open >= iv.Close || !iv.Open.Valid() || !iv.Close.Valid() {
			return false
		}
		if i > 0 && s[i-1].Close >= iv.Open {
			return false
		}
	}
	return true
}

// Contains reports whether the door is open at instant t (t taken modulo
// 24 h). Binary search over the normal form.
func (s Schedule) Contains(t TimeOfDay) bool {
	t = t.Mod()
	i := sort.Search(len(s), func(i int) bool { return s[i].Close > t })
	return i < len(s) && s[i].Open <= t
}

// NextBoundary returns the earliest schedule boundary (open or close
// instant) strictly after t within the same day, and ok=false when no
// boundary remains before midnight.
func (s Schedule) NextBoundary(t TimeOfDay) (TimeOfDay, bool) {
	t = t.Mod()
	best := DaySeconds + 1
	for _, iv := range s {
		if iv.Open > t && iv.Open < best {
			best = iv.Open
		}
		if iv.Close > t && iv.Close < best {
			best = iv.Close
		}
		if iv.Open > t {
			break // sorted: later intervals only move boundaries right
		}
	}
	if best > DaySeconds {
		return 0, false
	}
	return best, true
}

// NextOpening returns the earliest instant >= t at which the door is
// open, with ok=false when it never opens again before midnight. Used by
// the waiting-allowed routing extension.
func (s Schedule) NextOpening(t TimeOfDay) (TimeOfDay, bool) {
	t = t.Mod()
	for _, iv := range s {
		if iv.Close <= t {
			continue
		}
		if iv.Open <= t {
			return t, true
		}
		return iv.Open, true
	}
	return 0, false
}

// TotalOpen returns the total open duration per day.
func (s Schedule) TotalOpen() TimeOfDay {
	var sum TimeOfDay
	for _, iv := range s {
		sum += iv.Duration()
	}
	return sum
}

// AlwaysOpenAllDay reports whether the schedule is exactly [0:00, 24:00).
func (s Schedule) AlwaysOpenAllDay() bool {
	return len(s) == 1 && s[0].Open == 0 && s[0].Close == DaySeconds
}

// Boundaries appends every open/close instant to dst and returns it;
// 0:00 and 24:00 are included when present, since they are genuine
// topology checkpoints for Graph_Update.
func (s Schedule) Boundaries(dst []TimeOfDay) []TimeOfDay {
	for _, iv := range s {
		dst = append(dst, iv.Open, iv.Close)
	}
	return dst
}

// Clone returns a deep copy.
func (s Schedule) Clone() Schedule {
	if s == nil {
		return nil
	}
	out := make(Schedule, len(s))
	copy(out, s)
	return out
}

// String renders the paper notation "〈[8:00, 16:00), [18:00, 23:00)〉".
func (s Schedule) String() string {
	if len(s) == 0 {
		return "〈〉"
	}
	parts := make([]string, len(s))
	for i, iv := range s {
		parts[i] = iv.String()
	}
	return "〈" + strings.Join(parts, ", ") + "〉"
}
