package temporal

import (
	"sort"
)

// CheckpointSet is the sorted set T of instants at which the indoor
// topology may change — the union of all door ATI boundaries (paper,
// Sec. II-B "Asynchronous Check"). Between two consecutive checkpoints
// the set of open doors is constant, which is what makes the IT-Graph
// snapshot reuse of Graph_Update (Algorithm 3) sound.
//
// The day is split into len(T)+1 half-open slots:
//
//	slot 0: [0:00, T[0])   slot i: [T[i-1], T[i])   slot n: [T[n-1], 24:00)
//
// A checkpoint at exactly 0:00 or 24:00 is dropped during construction
// since it cannot separate two in-day slots.
type CheckpointSet struct {
	times []TimeOfDay
}

// NewCheckpointSet sorts and deduplicates the given instants (0:00 and
// 24:00 are discarded as non-separating).
func NewCheckpointSet(times []TimeOfDay) CheckpointSet {
	ts := make([]TimeOfDay, 0, len(times))
	for _, t := range times {
		t = t.Mod()
		if t > 0 && t < DaySeconds {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:0]
	for _, t := range ts {
		if len(out) == 0 || out[len(out)-1] != t {
			out = append(out, t)
		}
	}
	return CheckpointSet{times: out}
}

// Len returns |T|.
func (c CheckpointSet) Len() int { return len(c.times) }

// Times returns the sorted checkpoints (shared slice; do not mutate).
func (c CheckpointSet) Times() []TimeOfDay { return c.times }

// SlotCount returns the number of constant-topology slots, |T|+1.
func (c CheckpointSet) SlotCount() int { return len(c.times) + 1 }

// SlotOf returns the index of the slot containing instant t.
func (c CheckpointSet) SlotOf(t TimeOfDay) int {
	t = t.Mod()
	// First checkpoint strictly greater than t identifies the slot.
	return sort.Search(len(c.times), func(i int) bool { return c.times[i] > t })
}

// SlotStart returns the inclusive start of slot i (0:00 for slot 0).
func (c CheckpointSet) SlotStart(i int) TimeOfDay {
	if i <= 0 {
		return 0
	}
	if i > len(c.times) {
		i = len(c.times)
	}
	return c.times[i-1]
}

// SlotEnd returns the exclusive end of slot i (24:00 for the last slot).
func (c CheckpointSet) SlotEnd(i int) TimeOfDay {
	if i < 0 {
		i = 0
	}
	if i >= len(c.times) {
		return DaySeconds
	}
	return c.times[i]
}

// Prev returns the latest checkpoint <= t, mirroring the paper's
// Find_Previous_Checkpoint; ok=false when t precedes every checkpoint
// (the slot starting at 0:00).
func (c CheckpointSet) Prev(t TimeOfDay) (TimeOfDay, bool) {
	i := c.SlotOf(t)
	if i == 0 {
		return 0, false
	}
	return c.times[i-1], true
}

// Next returns the earliest checkpoint > t, mirroring the paper's
// Find_Next_Checkpoint; ok=false when t is at or past the last
// checkpoint.
func (c CheckpointSet) Next(t TimeOfDay) (TimeOfDay, bool) {
	i := c.SlotOf(t)
	if i >= len(c.times) {
		return 0, false
	}
	return c.times[i], true
}

// Contains reports whether t is exactly a checkpoint.
func (c CheckpointSet) Contains(t TimeOfDay) bool {
	t = t.Mod()
	i := sort.Search(len(c.times), func(i int) bool { return c.times[i] >= t })
	return i < len(c.times) && c.times[i] == t
}

// Union merges two checkpoint sets.
func (c CheckpointSet) Union(o CheckpointSet) CheckpointSet {
	all := make([]TimeOfDay, 0, len(c.times)+len(o.times))
	all = append(all, c.times...)
	all = append(all, o.times...)
	return NewCheckpointSet(all)
}
