// Package temporal models time-of-day, the active time intervals (ATIs)
// attached to indoor doors, and the checkpoint sets that drive the
// asynchronous topology updates of the IT-Graph (Liu et al., ICDE 2020,
// Sections I and II).
//
// An ATI is a half-open interval [open, close): a door with ATI
// [8:00, 16:00) is opened at 8:00 and closed at 16:00; the instant 16:00
// itself is closed. A door may carry several ATIs (e.g. a lunch-break
// closure), stored sorted and non-overlapping in a Schedule.
package temporal

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// TimeOfDay is a time within a day, in seconds since midnight. Fractional
// seconds arise from walking-time arithmetic (dist / speed). Values are
// interpreted modulo DaySeconds where a day boundary could be crossed.
type TimeOfDay float64

// DaySeconds is the length of a day.
const DaySeconds TimeOfDay = 24 * 60 * 60

// Clock builds a TimeOfDay from hours, minutes and seconds.
func Clock(h, m, s int) TimeOfDay {
	return TimeOfDay(h*3600 + m*60 + s)
}

// Hours builds a TimeOfDay from a (possibly fractional) hour count.
func Hours(h float64) TimeOfDay { return TimeOfDay(h * 3600) }

// Parse reads "H:MM", "H:MM:SS" or "H" (24-hour clock). "24:00" is
// accepted and denotes end-of-day, used as an ATI close bound.
func Parse(s string) (TimeOfDay, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) == 0 || len(parts) > 3 {
		return 0, fmt.Errorf("temporal: cannot parse %q as time of day", s)
	}
	var hms [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return 0, fmt.Errorf("temporal: cannot parse %q as time of day: %v", s, err)
		}
		hms[i] = v
	}
	h, m, sec := hms[0], hms[1], hms[2]
	if h < 0 || h > 24 || m < 0 || m > 59 || sec < 0 || sec > 59 {
		return 0, fmt.Errorf("temporal: %q out of range", s)
	}
	t := Clock(h, m, sec)
	if t > DaySeconds {
		return 0, fmt.Errorf("temporal: %q beyond 24:00", s)
	}
	return t, nil
}

// MustParse is Parse that panics on error, for constants in tests,
// examples and embedded datasets.
func MustParse(s string) TimeOfDay {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// String renders the time as H:MM or H:MM:SS (seconds only when nonzero),
// matching the paper's notation, e.g. "8:00" and "23:30".
func (t TimeOfDay) String() string {
	sec := float64(t)
	neg := ""
	if sec < 0 {
		neg, sec = "-", -sec
	}
	total := int(math.Round(sec))
	h, m, s := total/3600, (total/60)%60, total%60
	if s == 0 {
		return fmt.Sprintf("%s%d:%02d", neg, h, m)
	}
	return fmt.Sprintf("%s%d:%02d:%02d", neg, h, m, s)
}

// Mod returns t reduced into [0, DaySeconds).
func (t TimeOfDay) Mod() TimeOfDay {
	v := math.Mod(float64(t), float64(DaySeconds))
	if v < 0 {
		v += float64(DaySeconds)
	}
	return TimeOfDay(v)
}

// Valid reports whether t lies in [0, 24:00].
func (t TimeOfDay) Valid() bool { return t >= 0 && t <= DaySeconds }

// Interval is one active time interval [Open, Close). Open < Close must
// hold; wrap-around hours (e.g. a bar open 22:00–2:00) are represented as
// two intervals by Schedule normalisation helpers.
type Interval struct {
	Open  TimeOfDay `json:"open"`
	Close TimeOfDay `json:"close"`
}

// NewInterval validates and returns [open, close).
func NewInterval(open, close TimeOfDay) (Interval, error) {
	if !open.Valid() || !close.Valid() {
		return Interval{}, fmt.Errorf("temporal: interval bounds [%v, %v) out of day range", open, close)
	}
	if open >= close {
		return Interval{}, fmt.Errorf("temporal: interval open %v not before close %v", open, close)
	}
	return Interval{Open: open, Close: close}, nil
}

// MustInterval is NewInterval that panics on error.
func MustInterval(open, close TimeOfDay) Interval {
	iv, err := NewInterval(open, close)
	if err != nil {
		panic(err)
	}
	return iv
}

// ParseInterval reads "[8:00, 16:00)" or "8:00-16:00".
func ParseInterval(s string) (Interval, error) {
	raw := strings.TrimSpace(s)
	raw = strings.TrimPrefix(raw, "[")
	raw = strings.TrimSuffix(raw, ")")
	var a, b string
	if i := strings.IndexAny(raw, ",-"); i >= 0 {
		a, b = raw[:i], raw[i+1:]
	} else {
		return Interval{}, fmt.Errorf("temporal: cannot parse interval %q", s)
	}
	open, err := Parse(a)
	if err != nil {
		return Interval{}, err
	}
	close, err := Parse(b)
	if err != nil {
		return Interval{}, err
	}
	return NewInterval(open, close)
}

// Contains reports whether t lies in [Open, Close).
func (iv Interval) Contains(t TimeOfDay) bool { return t >= iv.Open && t < iv.Close }

// Duration returns the interval length in seconds.
func (iv Interval) Duration() TimeOfDay { return iv.Close - iv.Open }

// Overlaps reports whether two intervals share any instant.
func (iv Interval) Overlaps(o Interval) bool { return iv.Open < o.Close && o.Open < iv.Close }

// Abuts reports whether o starts exactly where iv ends or vice versa.
func (iv Interval) Abuts(o Interval) bool { return iv.Close == o.Open || o.Close == iv.Open }

// String renders the paper notation "[8:00, 16:00)".
func (iv Interval) String() string {
	return fmt.Sprintf("[%v, %v)", iv.Open, iv.Close)
}
