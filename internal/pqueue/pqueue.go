// Package pqueue implements the indexed binary min-heap used by the
// ITSPQ search (Algorithm 1 keeps a min-heap of ⟨door, dist⟩ pairs and
// needs decrease-key when a shorter path to an already-enqueued door is
// found).
//
// Keys are int32 handles (door IDs plus the two sentinel handles for the
// query's source and target points); priorities are float64 distances.
package pqueue

// Item is one heap entry.
type Item struct {
	Key  int32
	Prio float64
}

// Heap is an indexed binary min-heap over int32 keys. The zero value is
// not usable; call New. Pushing an existing key updates its priority
// (both decrease and increase are supported).
type Heap struct {
	items []Item
	pos   map[int32]int // key -> index in items
	// maxLen tracks the high-water mark of the heap, reported to the
	// experiment harness as part of the search memory footprint.
	maxLen int
}

// New returns an empty heap with capacity hint n.
func New(n int) *Heap {
	if n < 0 {
		n = 0
	}
	return &Heap{items: make([]Item, 0, n), pos: make(map[int32]int, n)}
}

// Len returns the number of queued items.
func (h *Heap) Len() int { return len(h.items) }

// MaxLen returns the high-water mark of Len since the last Reset.
func (h *Heap) MaxLen() int { return h.maxLen }

// Reset empties the heap, retaining allocated capacity.
func (h *Heap) Reset() {
	h.items = h.items[:0]
	clear(h.pos)
	h.maxLen = 0
}

// Push inserts key with the given priority, or updates the priority if
// the key is already queued.
func (h *Heap) Push(key int32, prio float64) {
	if i, ok := h.pos[key]; ok {
		old := h.items[i].Prio
		h.items[i].Prio = prio
		switch {
		case prio < old:
			h.up(i)
		case prio > old:
			h.down(i)
		}
		return
	}
	h.items = append(h.items, Item{Key: key, Prio: prio})
	i := len(h.items) - 1
	h.pos[key] = i
	h.up(i)
	if len(h.items) > h.maxLen {
		h.maxLen = len(h.items)
	}
}

// Pop removes and returns the minimum-priority item. ok is false when
// the heap is empty.
func (h *Heap) Pop() (Item, bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	delete(h.pos, top.Key)
	if last > 0 {
		h.down(0)
	}
	return top, true
}

// Peek returns the minimum item without removing it.
func (h *Heap) Peek() (Item, bool) {
	if len(h.items) == 0 {
		return Item{}, false
	}
	return h.items[0], true
}

// Contains reports whether key is queued.
func (h *Heap) Contains(key int32) bool {
	_, ok := h.pos[key]
	return ok
}

// Prio returns the queued priority of key.
func (h *Heap) Prio(key int32) (float64, bool) {
	i, ok := h.pos[key]
	if !ok {
		return 0, false
	}
	return h.items[i].Prio, true
}

func (h *Heap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i].Key] = i
	h.pos[h.items[j].Key] = j
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Prio <= h.items[i].Prio {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.items[l].Prio < h.items[small].Prio {
			small = l
		}
		if r < n && h.items[r].Prio < h.items[small].Prio {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}
