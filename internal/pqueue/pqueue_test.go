package pqueue

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdering(t *testing.T) {
	h := New(8)
	input := []Item{{1, 5}, {2, 3}, {3, 8}, {4, 1}, {5, 9}, {6, 2}}
	for _, it := range input {
		h.Push(it.Key, it.Prio)
	}
	if h.Len() != len(input) {
		t.Fatalf("Len = %d", h.Len())
	}
	want := []int32{4, 6, 2, 1, 3, 5}
	for i, wk := range want {
		it, ok := h.Pop()
		if !ok {
			t.Fatalf("Pop %d: empty", i)
		}
		if it.Key != wk {
			t.Errorf("Pop %d = key %d, want %d", i, it.Key, wk)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty should fail")
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(1, 10)
	h.Push(2, 20)
	h.Push(3, 30)
	h.Push(3, 5) // decrease
	it, _ := h.Pop()
	if it.Key != 3 || it.Prio != 5 {
		t.Errorf("after decrease: %+v", it)
	}
	h.Push(1, 50) // increase
	it, _ = h.Pop()
	if it.Key != 2 {
		t.Errorf("after increase: %+v", it)
	}
	if p, ok := h.Prio(1); !ok || p != 50 {
		t.Errorf("Prio(1) = %v,%v", p, ok)
	}
	if !h.Contains(1) || h.Contains(99) {
		t.Error("Contains wrong")
	}
}

func TestPeekAndReset(t *testing.T) {
	h := New(0)
	if _, ok := h.Peek(); ok {
		t.Error("Peek on empty")
	}
	h.Push(7, 7)
	h.Push(8, 3)
	if it, ok := h.Peek(); !ok || it.Key != 8 {
		t.Errorf("Peek = %+v,%v", it, ok)
	}
	if h.Len() != 2 {
		t.Error("Peek must not pop")
	}
	if h.MaxLen() != 2 {
		t.Errorf("MaxLen = %d", h.MaxLen())
	}
	h.Reset()
	if h.Len() != 0 || h.MaxLen() != 0 || h.Contains(7) {
		t.Error("Reset incomplete")
	}
	h.Push(1, 1)
	if h.Len() != 1 {
		t.Error("heap unusable after Reset")
	}
}

func TestHeapSortProperty(t *testing.T) {
	f := func(prios []float64) bool {
		h := New(len(prios))
		for i, p := range prios {
			h.Push(int32(i), p)
		}
		var got []float64
		for {
			it, ok := h.Pop()
			if !ok {
				break
			}
			got = append(got, it.Prio)
		}
		if len(got) != len(prios) {
			return false
		}
		return sort.Float64sAreSorted(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomisedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New(0)
	ref := map[int32]float64{}
	for op := 0; op < 5000; op++ {
		switch {
		case rng.Float64() < 0.6 || len(ref) == 0:
			k := int32(rng.Intn(100))
			p := rng.Float64() * 1000
			h.Push(k, p)
			ref[k] = p
		default:
			it, ok := h.Pop()
			if !ok {
				t.Fatal("heap empty but reference non-empty")
			}
			wantKey, wantPrio := int32(-1), 0.0
			for k, p := range ref {
				if wantKey == -1 || p < wantPrio {
					wantKey, wantPrio = k, p
				}
			}
			if it.Prio != wantPrio {
				t.Fatalf("op %d: popped prio %v, want %v", op, it.Prio, wantPrio)
			}
			delete(ref, it.Key)
		}
		if h.Len() != len(ref) {
			t.Fatalf("op %d: len %d vs ref %d", op, h.Len(), len(ref))
		}
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	prios := make([]float64, 1024)
	for i := range prios {
		prios[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := New(len(prios))
		for k, p := range prios {
			h.Push(int32(k), p)
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
