package decompose

import (
	"math"
	"testing"

	"indoorpath/internal/geom"
)

// histogramPolygon decodes fuzz bytes into a rectilinear "histogram"
// polygon: byte pairs become (width, height) columns over a flat base,
// with equal-height runs merged so the boundary has no collinear
// duplicate vertices. Every decoded polygon is simple and rectilinear,
// so Decompose must accept it and its invariants must hold.
func histogramPolygon(data []byte) (geom.Polygon, bool) {
	type col struct{ w, h float64 }
	var cols []col
	for i := 0; i+1 < len(data) && len(cols) < 12; i += 2 {
		w := float64(data[i]%16) + 1
		h := float64(data[i+1]%16) + 1
		if n := len(cols); n > 0 && cols[n-1].h == h {
			cols[n-1].w += w // merge equal-height run
			continue
		}
		cols = append(cols, col{w, h})
	}
	if len(cols) == 0 {
		return geom.Polygon{}, false
	}
	xs := make([]float64, len(cols)+1)
	for i, c := range cols {
		xs[i+1] = xs[i] + c.w
	}
	verts := []geom.Point{geom.Pt(0, 0, 0), geom.Pt(xs[len(cols)], 0, 0)}
	for i := len(cols) - 1; i >= 0; i-- {
		verts = append(verts, geom.Pt(xs[i+1], cols[i].h, 0), geom.Pt(xs[i], cols[i].h, 0))
	}
	// The walk ends at (0, h0); NewPolygon closes back to (0, 0).
	pg, err := geom.NewPolygon(verts...)
	if err != nil {
		return geom.Polygon{}, false
	}
	return pg, true
}

// FuzzDecompose: decomposition must never panic; on well-formed
// rectilinear input it must succeed, conserve area, keep every cell
// inside the bounding box, and hang every virtual door on two existing
// cells whose shared edge contains the door position.
func FuzzDecompose(f *testing.F) {
	// Seeds shaped like the existing test venues: a plain rectangle, the
	// L-shape, a T/staircase profile, and wider corridor-like profiles.
	f.Add([]byte{9, 5})                         // rectangle
	f.Add([]byte{4, 9, 4, 4})                   // L-shape
	f.Add([]byte{3, 4, 3, 9, 3, 4})             // T profile
	f.Add([]byte{2, 2, 2, 7, 2, 3, 2, 8, 2, 1}) // staircase
	f.Add([]byte{15, 1, 1, 15})                 // long corridor + spike
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pg, ok := histogramPolygon(data)
		if !ok {
			return
		}
		d, err := Decompose(pg)
		if err != nil {
			t.Fatalf("Decompose rejected a simple rectilinear polygon %v: %v", pg.Verts, err)
		}
		if len(d.Cells) == 0 {
			t.Fatal("no cells")
		}
		if math.Abs(d.TotalArea()-pg.Area()) > 1e-6 {
			t.Fatalf("area not conserved: cells %v vs polygon %v", d.TotalArea(), pg.Area())
		}
		bb := pg.BoundingBox()
		for i, c := range d.Cells {
			if c.Area() <= 0 {
				t.Fatalf("cell %d has non-positive area: %v", i, c)
			}
			if c.MinX < bb.MinX-1e-9 || c.MaxX > bb.MaxX+1e-9 ||
				c.MinY < bb.MinY-1e-9 || c.MaxY > bb.MaxY+1e-9 {
				t.Fatalf("cell %d %v escapes bounding box %v", i, c, bb)
			}
		}
		for i, vd := range d.Doors {
			if vd.CellA < 0 || vd.CellA >= len(d.Cells) || vd.CellB < 0 || vd.CellB >= len(d.Cells) {
				t.Fatalf("door %d references cells (%d, %d) of %d", i, vd.CellA, vd.CellB, len(d.Cells))
			}
			if vd.CellA == vd.CellB {
				t.Fatalf("door %d connects cell %d to itself", i, vd.CellA)
			}
			a, b := d.Cells[vd.CellA], d.Cells[vd.CellB]
			onBoundary := func(c geom.Rect) bool {
				return (math.Abs(vd.Pos.X-c.MinX) < 1e-9 || math.Abs(vd.Pos.X-c.MaxX) < 1e-9 ||
					math.Abs(vd.Pos.Y-c.MinY) < 1e-9 || math.Abs(vd.Pos.Y-c.MaxY) < 1e-9) &&
					vd.Pos.X >= c.MinX-1e-9 && vd.Pos.X <= c.MaxX+1e-9 &&
					vd.Pos.Y >= c.MinY-1e-9 && vd.Pos.Y <= c.MaxY+1e-9
			}
			if !onBoundary(a) || !onBoundary(b) {
				t.Fatalf("door %d at %v not on the shared boundary of %v and %v", i, vd.Pos, a, b)
			}
		}
	})
}

// FuzzDecomposeArbitrary: wild vertex soups (possibly self-intersecting
// or non-rectilinear) must be rejected with an error or decomposed —
// never a panic.
func FuzzDecomposeArbitrary(f *testing.F) {
	f.Add([]byte{0, 0, 10, 0, 10, 5, 5, 5, 5, 10, 0, 10}) // valid L-shape coords
	f.Add([]byte{0, 0, 4, 4, 0, 4, 4, 0})                 // self-intersecting bowtie
	f.Add([]byte{1, 1, 1, 1, 1, 1})                       // degenerate
	f.Add([]byte{0, 0, 9, 3, 5, 7})                       // non-rectilinear triangle

	f.Fuzz(func(t *testing.T, data []byte) {
		var verts []geom.Point
		for i := 0; i+1 < len(data) && len(verts) < 16; i += 2 {
			verts = append(verts, geom.Pt(float64(data[i]%32), float64(data[i+1]%32), 0))
		}
		pg, err := geom.NewPolygon(verts...)
		if err != nil {
			return
		}
		d, err := Decompose(pg) // must not panic
		if err == nil && len(d.Cells) == 0 {
			t.Fatalf("accepted polygon %v produced no cells", pg.Verts)
		}
	})
}
