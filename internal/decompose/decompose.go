// Package decompose splits irregular (rectilinear, non-convex) hallway
// polygons into regular rectangular cells connected by virtual doors,
// following the decomposition approach of Xie, Lu and Pedersen (ICDE
// 2013) that the evaluated venue relies on ("the irregular hallways are
// decomposed into smaller, regular partitions").
//
// The decomposition is a vertical slab sweep: every distinct vertex
// x-coordinate opens a slab, each slab's interior y-intervals become
// cells, and adjacent cells that share a boundary segment of positive
// length get a virtual door at the segment midpoint. Within a cell the
// Euclidean metric is exact (cells are convex), so the cell graph plus
// virtual doors approximates the polygon's geodesic metric from above.
package decompose

import (
	"fmt"
	"math"
	"sort"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
)

// VirtualDoor records one virtual door between two cells.
type VirtualDoor struct {
	CellA, CellB int          // indices into Decomposition.Cells
	Pos          geom.Point   // door position (midpoint of shared edge)
	Edge         geom.Segment // full shared boundary segment
}

// Decomposition is the result of decomposing one rectilinear polygon.
type Decomposition struct {
	Cells []geom.Rect
	Doors []VirtualDoor
}

// Decompose splits the rectilinear simple polygon pg into rectangular
// cells with virtual doors. The polygon must have at least 4 vertices,
// axis-parallel edges only, and positive area.
func Decompose(pg geom.Polygon) (*Decomposition, error) {
	return DecomposeWithHoles(pg, nil)
}

// DecomposeWithHoles decomposes a rectilinear region with holes — the
// shape of a real hallway network, whose inner blocks (shop islands)
// are holes in the corridor polygon. Crossing parity handles the holes:
// a vertical midline enters and leaves each hole, splitting the slab's
// interior intervals around it. Hole rings must be rectilinear,
// mutually disjoint and contained in the outer ring; a hole edge lying
// on the outer boundary carves a notch instead of a hole.
func DecomposeWithHoles(outer geom.Polygon, holes []geom.Polygon) (*Decomposition, error) {
	rings := append([]geom.Polygon{outer}, holes...)
	for ri, pg := range rings {
		if len(pg.Verts) < 4 {
			return nil, fmt.Errorf("decompose: ring %d has %d vertices, need >= 4", ri, len(pg.Verts))
		}
		if !pg.IsRectilinear() {
			return nil, fmt.Errorf("decompose: ring %d is not rectilinear", ri)
		}
		if pg.Area() <= geom.Eps {
			return nil, fmt.Errorf("decompose: ring %d has no area", ri)
		}
		if pg.Floor != outer.Floor {
			return nil, fmt.Errorf("decompose: ring %d on floor %d, outer on %d", ri, pg.Floor, outer.Floor)
		}
	}
	pg := outer

	// Distinct x-coordinates (over all rings) define the slabs.
	xsSet := map[float64]bool{}
	for _, ring := range rings {
		for _, v := range ring.Verts {
			xsSet[v.X] = true
		}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	if len(xs) < 2 {
		return nil, fmt.Errorf("decompose: degenerate polygon (single x)")
	}

	// Horizontal edges of all rings (used for slab interior scans).
	type hEdge struct{ x1, x2, y float64 }
	var hedges []hEdge
	for _, ring := range rings {
		n := len(ring.Verts)
		for i := 0; i < n; i++ {
			a, b := ring.Verts[i], ring.Verts[(i+1)%n]
			if math.Abs(a.Y-b.Y) <= geom.Eps { // horizontal
				x1, x2 := math.Min(a.X, b.X), math.Max(a.X, b.X)
				if x2-x1 > geom.Eps {
					hedges = append(hedges, hEdge{x1, x2, a.Y})
				}
			}
		}
	}

	d := &Decomposition{}
	// prev holds the cell indices of the previous slab, for adjacency.
	var prev []int
	for si := 0; si+1 < len(xs); si++ {
		x0, x1 := xs[si], xs[si+1]
		if x1-x0 <= geom.Eps {
			continue
		}
		xm := (x0 + x1) / 2
		// Crossings of the vertical line x=xm with horizontal edges give
		// the inside y-intervals (even-odd pairing).
		var ys []float64
		for _, e := range hedges {
			if e.x1 < xm && xm < e.x2 {
				ys = append(ys, e.y)
			}
		}
		if len(ys)%2 != 0 {
			return nil, fmt.Errorf("decompose: odd crossing count at x=%v (self-intersecting polygon?)", xm)
		}
		sort.Float64s(ys)
		var cur []int
		for k := 0; k+1 < len(ys); k += 2 {
			if ys[k+1]-ys[k] <= geom.Eps {
				continue // degenerate interval: a hole edge on the outer boundary
			}
			cell := geom.NewRect(x0, ys[k], x1, ys[k+1], pg.Floor)
			ci := len(d.Cells)
			d.Cells = append(d.Cells, cell)
			cur = append(cur, ci)
		}
		// Virtual doors between this slab and the previous one.
		for _, pi := range prev {
			for _, ci := range cur {
				if seg, ok := d.Cells[pi].SharedEdge(d.Cells[ci]); ok {
					d.Doors = append(d.Doors, VirtualDoor{
						CellA: pi, CellB: ci, Pos: seg.Mid(), Edge: seg,
					})
				}
			}
		}
		prev = cur
	}
	if len(d.Cells) == 0 {
		return nil, fmt.Errorf("decompose: produced no cells")
	}
	return d, nil
}

// TotalArea returns the summed cell area; for a correct decomposition it
// equals the polygon area.
func (d *Decomposition) TotalArea() float64 {
	sum := 0.0
	for _, c := range d.Cells {
		sum += c.Area()
	}
	return sum
}

// CellAt returns the index of the cell containing p, or -1.
func (d *Decomposition) CellAt(p geom.Point) int {
	for i, c := range d.Cells {
		if c.Contains(p) {
			return i
		}
	}
	return -1
}

// AddToBuilder registers the decomposition's cells as hallway partitions
// and its virtual doors on the given venue builder. Cell and door names
// are prefixed ("<prefix>-c<i>", "<prefix>-vd<i>"). Virtual doors are
// always open and bidirectional. It returns the new partition and door
// IDs, indexed like Cells and Doors.
func (d *Decomposition) AddToBuilder(b *model.Builder, prefix string) ([]model.PartitionID, []model.DoorID) {
	parts := make([]model.PartitionID, len(d.Cells))
	for i, c := range d.Cells {
		parts[i] = b.AddPartition(fmt.Sprintf("%s-c%d", prefix, i), model.HallwayPartition, c)
	}
	doors := make([]model.DoorID, len(d.Doors))
	for i, vd := range d.Doors {
		doors[i] = b.AddDoor(fmt.Sprintf("%s-vd%d", prefix, i), model.VirtualDoor, vd.Pos, nil)
		b.ConnectBi(doors[i], parts[vd.CellA], parts[vd.CellB])
	}
	return parts, doors
}

// GraphDistance returns the shortest walking distance from point a to
// point b across the decomposed cells, routing through virtual door
// midpoints. It is the decomposition-level counterpart of
// dmat.VisibilityDistance and is used to validate decomposition quality
// (it upper-bounds the true geodesic distance).
func (d *Decomposition) GraphDistance(a, b geom.Point) (float64, error) {
	ca, cb := d.CellAt(a), d.CellAt(b)
	if ca < 0 || cb < 0 {
		return 0, fmt.Errorf("decompose: endpoints must lie inside the decomposed polygon")
	}
	if ca == cb {
		return a.DistXY(b), nil
	}
	// Nodes: virtual doors; plus implicit source/target handled directly.
	nd := len(d.Doors)
	const inf = math.MaxFloat64
	dist := make([]float64, nd)
	done := make([]bool, nd)
	for i := range dist {
		dist[i] = inf
	}
	doorsOf := make([][]int, len(d.Cells))
	for i, vd := range d.Doors {
		doorsOf[vd.CellA] = append(doorsOf[vd.CellA], i)
		doorsOf[vd.CellB] = append(doorsOf[vd.CellB], i)
	}
	for _, di := range doorsOf[ca] {
		dist[di] = a.DistXY(d.Doors[di].Pos)
	}
	best := inf
	for {
		u, bd := -1, inf
		for i := 0; i < nd; i++ {
			if !done[i] && dist[i] < bd {
				u, bd = i, dist[i]
			}
		}
		if u < 0 || bd >= best {
			break
		}
		done[u] = true
		for _, cell := range []int{d.Doors[u].CellA, d.Doors[u].CellB} {
			if cell == cb {
				if t := bd + d.Doors[u].Pos.DistXY(b); t < best {
					best = t
				}
			}
			for _, w := range doorsOf[cell] {
				if w == u || done[w] {
					continue
				}
				if t := bd + d.Doors[u].Pos.DistXY(d.Doors[w].Pos); t < dist[w] {
					dist[w] = t
				}
			}
		}
	}
	if best == inf {
		return 0, fmt.Errorf("decompose: cells of a and b are not connected")
	}
	return best, nil
}
