package decompose

import (
	"math"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/synth"
)

func TestDecomposeDonut(t *testing.T) {
	outer := geom.RectPolygon(geom.NewRect(0, 0, 30, 30, 0))
	hole := geom.RectPolygon(geom.NewRect(10, 10, 20, 20, 0))
	d, err := DecomposeWithHoles(outer, []geom.Polygon{hole})
	if err != nil {
		t.Fatal(err)
	}
	wantArea := outer.Area() - hole.Area()
	if math.Abs(d.TotalArea()-wantArea) > 1e-9 {
		t.Errorf("area = %v, want %v", d.TotalArea(), wantArea)
	}
	// The hole interior is in no cell.
	if i := d.CellAt(geom.Pt(15, 15, 0)); i >= 0 {
		t.Errorf("hole interior landed in cell %d", i)
	}
	// Ring interior points are covered.
	for _, p := range []geom.Point{
		geom.Pt(5, 15, 0), geom.Pt(25, 15, 0), geom.Pt(15, 5, 0), geom.Pt(15, 25, 0),
	} {
		if d.CellAt(p) < 0 {
			t.Errorf("ring point %v uncovered", p)
		}
	}
	// The ring is connected: walking distance exists all the way around.
	gd, err := d.GraphDistance(geom.Pt(5, 15, 0), geom.Pt(25, 15, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Any route must go around the hole: strictly longer than the chord.
	if gd <= 20 {
		t.Errorf("distance around the hole = %v, must exceed 20", gd)
	}
	// Cells must not leak into the hole.
	holeRect := geom.NewRect(10, 10, 20, 20, 0)
	for i, c := range d.Cells {
		if c.OverlapsInterior(holeRect) {
			t.Errorf("cell %d (%v) overlaps the hole", i, c)
		}
	}
}

func TestDecomposeTwoHoles(t *testing.T) {
	outer := geom.RectPolygon(geom.NewRect(0, 0, 50, 20, 0))
	holes := []geom.Polygon{
		geom.RectPolygon(geom.NewRect(10, 5, 20, 15, 0)),
		geom.RectPolygon(geom.NewRect(30, 5, 40, 15, 0)),
	}
	d, err := DecomposeWithHoles(outer, holes)
	if err != nil {
		t.Fatal(err)
	}
	want := 50*20 - 2*100.0
	if math.Abs(d.TotalArea()-want) > 1e-9 {
		t.Errorf("area = %v, want %v", d.TotalArea(), want)
	}
	if !connected(d) {
		t.Error("two-hole region must stay connected")
	}
}

func TestDecomposeHoleErrors(t *testing.T) {
	outer := geom.RectPolygon(geom.NewRect(0, 0, 30, 30, 0))
	slanted, err := geom.NewPolygon(geom.Pt(10, 10, 0), geom.Pt(20, 10, 0), geom.Pt(15, 18, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecomposeWithHoles(outer, []geom.Polygon{slanted}); err == nil {
		t.Error("non-rectilinear hole must fail")
	}
	wrongFloor := geom.RectPolygon(geom.NewRect(10, 10, 20, 20, 3))
	if _, err := DecomposeWithHoles(outer, []geom.Polygon{wrongFloor}); err == nil {
		t.Error("hole on another floor must fail")
	}
}

// TestDecomposeWaffleCorridorNetwork decomposes the exact corridor
// network of the synthetic mall — the outer waffle outline with the
// four fully-enclosed central blocks as holes — and checks area and
// connectivity against the generator's analytic corridor area.
func TestDecomposeWaffleCorridorNetwork(t *testing.T) {
	outer, holes := synth.MallCorridorRings(0)
	d, err := DecomposeWithHoles(outer, holes)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TotalArea()-synth.MallCorridorArea()) > 1e-6 {
		t.Errorf("corridor area = %v, want %v", d.TotalArea(), synth.MallCorridorArea())
	}
	if !connected(d) {
		t.Error("corridor network must be connected")
	}
	// The slab sweep yields 15 cells (it keeps each vertical corridor as
	// one full-height cell where the generator splits at intersections):
	// 7 slabs alternating 3 corridor intervals and 1 full strip.
	if len(d.Cells) != 15 {
		t.Errorf("cell count = %d, want 15", len(d.Cells))
	}
}

func connected(d *Decomposition) bool {
	if len(d.Cells) == 0 {
		return false
	}
	adj := make([][]int, len(d.Cells))
	for _, vd := range d.Doors {
		adj[vd.CellA] = append(adj[vd.CellA], vd.CellB)
		adj[vd.CellB] = append(adj[vd.CellB], vd.CellA)
	}
	seen := make([]bool, len(d.Cells))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[c] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	return count == len(d.Cells)
}
