package decompose

import (
	"math"
	"math/rand"
	"testing"

	"indoorpath/internal/dmat"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
)

func mustPolygon(t testing.TB, pts ...geom.Point) geom.Polygon {
	t.Helper()
	pg, err := geom.NewPolygon(pts...)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestDecomposeRectangle(t *testing.T) {
	pg := geom.RectPolygon(geom.NewRect(0, 0, 10, 6, 0))
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 1 {
		t.Fatalf("rectangle should stay one cell, got %d", len(d.Cells))
	}
	if len(d.Doors) != 0 {
		t.Errorf("no virtual doors expected, got %d", len(d.Doors))
	}
	if math.Abs(d.TotalArea()-60) > 1e-9 {
		t.Errorf("area = %v, want 60", d.TotalArea())
	}
}

func TestDecomposeLShape(t *testing.T) {
	pg := mustPolygon(t,
		geom.Pt(0, 0, 0), geom.Pt(10, 0, 0), geom.Pt(10, 5, 0),
		geom.Pt(5, 5, 0), geom.Pt(5, 10, 0), geom.Pt(0, 10, 0),
	)
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 {
		t.Fatalf("L-shape should split into 2 cells, got %d: %v", len(d.Cells), d.Cells)
	}
	if len(d.Doors) != 1 {
		t.Fatalf("expected 1 virtual door, got %d", len(d.Doors))
	}
	if math.Abs(d.TotalArea()-pg.Area()) > 1e-9 {
		t.Errorf("area mismatch: cells %v vs polygon %v", d.TotalArea(), pg.Area())
	}
	// The virtual door sits on x=5 between y=0 and y=5.
	vd := d.Doors[0]
	if math.Abs(vd.Pos.X-5) > 1e-9 || vd.Pos.Y < 0 || vd.Pos.Y > 5 {
		t.Errorf("virtual door at %v", vd.Pos)
	}
	// Cells are disjoint and inside the polygon.
	if d.Cells[0].OverlapsInterior(d.Cells[1]) {
		t.Error("cells overlap")
	}
	for _, c := range d.Cells {
		if !pg.Contains(c.Center()) {
			t.Errorf("cell center %v outside polygon", c.Center())
		}
	}
}

func TestDecomposeUShape(t *testing.T) {
	// U-shape: two towers on a base.
	pg := mustPolygon(t,
		geom.Pt(0, 0, 0), geom.Pt(30, 0, 0), geom.Pt(30, 20, 0), geom.Pt(20, 20, 0),
		geom.Pt(20, 5, 0), geom.Pt(10, 5, 0), geom.Pt(10, 20, 0), geom.Pt(0, 20, 0),
	)
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.TotalArea()-pg.Area()) > 1e-9 {
		t.Errorf("area mismatch: %v vs %v", d.TotalArea(), pg.Area())
	}
	// All cells must be connected through virtual doors (single polygon).
	adj := make([][]int, len(d.Cells))
	for _, vd := range d.Doors {
		adj[vd.CellA] = append(adj[vd.CellA], vd.CellB)
		adj[vd.CellB] = append(adj[vd.CellB], vd.CellA)
	}
	seen := make([]bool, len(d.Cells))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[c] {
			if !seen[nb] {
				seen[nb] = true
				count++
				stack = append(stack, nb)
			}
		}
	}
	if count != len(d.Cells) {
		t.Errorf("decomposition not connected: %d of %d cells", count, len(d.Cells))
	}
}

func TestDecomposeErrors(t *testing.T) {
	slanted := mustPolygon(t, geom.Pt(0, 0, 0), geom.Pt(10, 0, 0), geom.Pt(5, 8, 0))
	if _, err := Decompose(slanted); err == nil {
		t.Error("non-rectilinear polygon must fail")
	}
	if _, err := Decompose(geom.Polygon{Verts: []geom.Point{{}, {}}}); err == nil {
		t.Error("too-few vertices must fail")
	}
	degenerate := mustPolygon(t,
		geom.Pt(0, 0, 0), geom.Pt(10, 0, 0), geom.Pt(10, 0, 0), geom.Pt(0, 0, 0))
	if _, err := Decompose(degenerate); err == nil {
		t.Error("zero-area polygon must fail")
	}
}

func TestCellAt(t *testing.T) {
	pg := mustPolygon(t,
		geom.Pt(0, 0, 0), geom.Pt(10, 0, 0), geom.Pt(10, 5, 0),
		geom.Pt(5, 5, 0), geom.Pt(5, 10, 0), geom.Pt(0, 10, 0),
	)
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	if i := d.CellAt(geom.Pt(8, 8, 0)); i != -1 {
		t.Errorf("notch point in cell %d, want -1", i)
	}
	if i := d.CellAt(geom.Pt(2, 2, 0)); i < 0 {
		t.Error("interior point not located")
	}
}

func TestGraphDistanceUpperBoundsGeodesic(t *testing.T) {
	pg := mustPolygon(t,
		geom.Pt(0, 0, 0), geom.Pt(30, 0, 0), geom.Pt(30, 10, 0),
		geom.Pt(10, 10, 0), geom.Pt(10, 30, 0), geom.Pt(0, 30, 0),
	)
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		var a, b geom.Point
		for {
			a = geom.Pt(rng.Float64()*30, rng.Float64()*30, 0)
			if pg.Contains(a) && d.CellAt(a) >= 0 {
				break
			}
		}
		for {
			b = geom.Pt(rng.Float64()*30, rng.Float64()*30, 0)
			if pg.Contains(b) && d.CellAt(b) >= 0 {
				break
			}
		}
		gd, err := d.GraphDistance(a, b)
		if err != nil {
			t.Fatalf("GraphDistance(%v, %v): %v", a, b, err)
		}
		geo, err := dmat.VisibilityDistance(pg, a, b)
		if err != nil {
			t.Fatalf("VisibilityDistance: %v", err)
		}
		if gd < geo-1e-6 {
			t.Fatalf("graph distance %v below geodesic %v for %v→%v", gd, geo, a, b)
		}
		// Midpoint routing detours should stay moderate.
		if gd > geo*2+1e-6 {
			t.Fatalf("graph distance %v more than 2x geodesic %v for %v→%v", gd, geo, a, b)
		}
	}
}

func TestGraphDistanceSameCell(t *testing.T) {
	pg := geom.RectPolygon(geom.NewRect(0, 0, 10, 10, 0))
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.GraphDistance(geom.Pt(1, 1, 0), geom.Pt(4, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-9 {
		t.Errorf("same-cell distance = %v, want 5", got)
	}
	if _, err := d.GraphDistance(geom.Pt(-1, -1, 0), geom.Pt(4, 5, 0)); err == nil {
		t.Error("outside endpoint must fail")
	}
}

func TestAddToBuilder(t *testing.T) {
	pg := mustPolygon(t,
		geom.Pt(0, 0, 0), geom.Pt(10, 0, 0), geom.Pt(10, 5, 0),
		geom.Pt(5, 5, 0), geom.Pt(5, 10, 0), geom.Pt(0, 10, 0),
	)
	d, err := Decompose(pg)
	if err != nil {
		t.Fatal(err)
	}
	b := model.NewBuilder("decomposed")
	parts, doors := d.AddToBuilder(b, "hall")
	if len(parts) != len(d.Cells) || len(doors) != len(d.Doors) {
		t.Fatalf("AddToBuilder sizes: %d parts, %d doors", len(parts), len(doors))
	}
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v.PartitionCount() != len(d.Cells) {
		t.Errorf("venue partitions = %d", v.PartitionCount())
	}
	for _, did := range doors {
		door := v.Door(did)
		if door.Kind != model.VirtualDoor {
			t.Errorf("door %v kind = %v", did, door.Kind)
		}
		if !door.ATIs.AlwaysOpenAllDay() {
			t.Error("virtual doors must be always open")
		}
		if !door.Bidirectional() {
			t.Error("virtual doors must be bidirectional")
		}
	}
	// Point location works on the new partitions.
	if _, ok := v.Locate(geom.Pt(2, 2, 0)); !ok {
		t.Error("Locate failed on decomposed cell")
	}
}

func TestDecomposeManyRandomStaircases(t *testing.T) {
	// Staircase-shaped rectilinear polygons with k steps: decomposition
	// must preserve area and stay connected for every k.
	for k := 1; k <= 6; k++ {
		var pts []geom.Point
		// Build ascending staircase boundary.
		pts = append(pts, geom.Pt(0, 0, 0))
		for i := 0; i < k; i++ {
			x0, y1 := float64(i)*10, float64(i+1)*10
			pts = append(pts, geom.Pt(x0+10, float64(i)*10, 0), geom.Pt(x0+10, y1, 0))
		}
		pts = append(pts, geom.Pt(0, float64(k)*10, 0))
		pg := mustPolygon(t, pts...)
		d, err := Decompose(pg)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if math.Abs(d.TotalArea()-pg.Area()) > 1e-6 {
			t.Errorf("k=%d: area %v vs %v", k, d.TotalArea(), pg.Area())
		}
		if len(d.Cells) != k {
			t.Errorf("k=%d: got %d cells", k, len(d.Cells))
		}
		if k > 1 && len(d.Doors) != k-1 {
			t.Errorf("k=%d: got %d doors", k, len(d.Doors))
		}
	}
}
