package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Stage names one timed segment of a request's life. The pipeline
// order mirrors the serving path: decode → hold → probe → plan →
// engine → store → render.
type Stage uint8

const (
	// StageDecode covers HTTP body read, JSON decode and request
	// validation.
	StageDecode Stage = iota
	// StageHold is the coalescer hold window: enqueue until the
	// batch flush starts. Only coalesced requests record it.
	StageHold
	// StageProbe covers the exact-cache and validity-window cache
	// lookups.
	StageProbe
	// StagePlan covers batch dedup and batchplan grouping.
	StagePlan
	// StageEngine is the engine search itself (including engine
	// checkout from the pool). For shared runs one engine span
	// serves every member of the group.
	StageEngine
	// StageStore covers cache insertion and, for shared-run
	// members, restating the group answer for the member's
	// departure.
	StageStore
	// StageRender covers response JSON encode and write.
	StageRender

	numStages
)

var stageNames = [numStages]string{
	"decode", "hold", "probe", "plan", "engine", "store", "render",
}

func (s Stage) String() string {
	if s < numStages {
		return stageNames[s]
	}
	return "unknown"
}

// StageNames returns all stage names in pipeline order.
func StageNames() []string {
	out := make([]string, numStages)
	copy(out, stageNames[:])
	return out
}

// maxSpans bounds how many spans one trace retains; a 64-query batch
// would otherwise record hundreds. Excess spans still feed the stage
// histograms but are counted in dropped_spans instead of kept.
const maxSpans = 64

// SpanData is one recorded span.
type SpanData struct {
	Stage Stage
	Start time.Time
	Dur   time.Duration
	Attrs any
}

// Trace collects the spans of one request. The zero of *Trace (nil)
// is the disabled fast path: every method is a no-op that neither
// allocates nor reads the clock. Traces are safe for concurrent span
// recording (batch workers, orphaned post-timeout searches).
type Trace struct {
	obs   *Observer // sink for per-stage histograms; may be nil
	start time.Time

	mu      sync.Mutex
	spans   []SpanData
	dropped int
}

// Start opens a span for the given stage. On a nil trace it returns
// an inert Span whose End methods are no-ops.
func (t *Trace) Start(stage Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: time.Now()}
}

// Add records an externally measured span (e.g. a coalescer hold
// timed from enqueue to flush) and feeds the stage histogram.
func (t *Trace) Add(stage Stage, start time.Time, d time.Duration, attrs any) {
	if t == nil {
		return
	}
	t.record(SpanData{Stage: stage, Start: start, Dur: d, Attrs: attrs})
	if t.obs != nil {
		t.obs.stages[stage].Observe(d)
	}
}

// NewCollector returns a fresh trace sharing t's histogram sink. A
// coalescer flush records its batch work on one collector so shared
// stages feed the histograms exactly once, then each waiter Adopts
// the collector's spans for display. Nil-safe.
func (t *Trace) NewCollector() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{obs: t.obs, start: time.Now()}
}

// Adopt copies spans recorded on c into t without re-observing stage
// histograms (c already fed them when its spans ended).
func (t *Trace) Adopt(c *Trace) {
	if t == nil || c == nil || t == c {
		return
	}
	c.mu.Lock()
	spans := make([]SpanData, len(c.spans))
	copy(spans, c.spans)
	dropped := c.dropped
	c.mu.Unlock()
	t.mu.Lock()
	for _, sd := range spans {
		t.recordLocked(sd)
	}
	t.dropped += dropped
	t.mu.Unlock()
}

func (t *Trace) record(sd SpanData) {
	t.mu.Lock()
	t.recordLocked(sd)
	t.mu.Unlock()
}

func (t *Trace) recordLocked(sd SpanData) {
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, sd)
	} else {
		t.dropped++
	}
}

// Span is an open stage timing. The zero Span (from a nil trace) is
// inert: End and EndWith are no-ops that never allocate.
type Span struct {
	t     *Trace
	stage Stage
	start time.Time
}

// End closes the span, records it on its trace and feeds the stage
// histogram.
func (s Span) End() { s.end(nil) }

// EndWith is End with an attachment (e.g. *core.SearchStats) kept on
// the recorded span and serialized into trace JSON. Callers on hot
// paths must only build the attachment when the trace is non-nil, or
// escape analysis will heap-allocate it on the disabled path too.
func (s Span) EndWith(attrs any) { s.end(attrs) }

func (s Span) end(attrs any) {
	if s.t == nil {
		return
	}
	d := time.Since(s.start)
	s.t.record(SpanData{Stage: s.stage, Start: s.start, Dur: d, Attrs: attrs})
	if s.t.obs != nil {
		s.t.obs.stages[s.stage].Observe(d)
	}
}

// RequestInfo labels a finished request for the request histograms
// and the trace ring.
type RequestInfo struct {
	Venue   string
	Method  string
	Outcome string
	// Provenance flags, copied from the route result.
	Hit       string
	Coalesced bool
	SharedRun bool
}

// Request outcome labels.
const (
	OutcomeOK         = "ok"
	OutcomeNoRoute    = "no_route"
	OutcomeError      = "error"
	OutcomeTimeout    = "timeout"
	OutcomeClientGone = "client_gone"
)

// TraceDoc is the JSON form of a finished trace, as served by /tracez
// and returned inline for "trace": true requests. Docs are immutable
// once published.
type TraceDoc struct {
	Venue        string    `json:"venue"`
	Method       string    `json:"method"`
	Outcome      string    `json:"outcome"`
	Hit          string    `json:"hit,omitempty"`
	Coalesced    bool      `json:"coalesced,omitempty"`
	SharedRun    bool      `json:"shared_run,omitempty"`
	Start        time.Time `json:"start"`
	DurationMs   float64   `json:"duration_ms"`
	Slow         bool      `json:"slow,omitempty"`
	Sampled      bool      `json:"sampled,omitempty"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Spans        []SpanDoc `json:"spans"`
}

// SpanDoc is one span in a TraceDoc; Start is the offset from the
// trace start.
type SpanDoc struct {
	Stage      string  `json:"stage"`
	StartMs    float64 `json:"start_ms"`
	DurationMs float64 `json:"duration_ms"`
	Attrs      any     `json:"attrs,omitempty"`
}

// Doc snapshots the trace into its JSON form, with duration measured
// up to now. Spans are sorted by start offset. Returns nil on a nil
// trace.
func (t *Trace) Doc(info RequestInfo) *TraceDoc {
	if t == nil {
		return nil
	}
	return t.doc(info, time.Since(t.start))
}

func (t *Trace) doc(info RequestInfo, total time.Duration) *TraceDoc {
	t.mu.Lock()
	spans := make([]SpanData, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	d := &TraceDoc{
		Venue:        info.Venue,
		Method:       info.Method,
		Outcome:      info.Outcome,
		Hit:          info.Hit,
		Coalesced:    info.Coalesced,
		SharedRun:    info.SharedRun,
		Start:        t.start,
		DurationMs:   durMs(total),
		DroppedSpans: dropped,
		Spans:        make([]SpanDoc, len(spans)),
	}
	for i, sd := range spans {
		d.Spans[i] = SpanDoc{
			Stage:      sd.Stage.String(),
			StartMs:    durMs(sd.Start.Sub(t.start)),
			DurationMs: durMs(sd.Dur),
			Attrs:      sd.Attrs,
		}
	}
	return d
}

func durMs(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return float64(d) / float64(time.Millisecond)
}

type traceCtxKey struct{}

// WithTrace attaches a trace to a context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// FromContext returns the trace attached to ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}
