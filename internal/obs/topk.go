package obs

import (
	"sort"
	"sync"
)

// DefaultTopKCapacity is the slot count used by NewTopK when the caller
// passes a non-positive capacity. 32 slots recover every pair that holds
// more than ~3% of a skewed stream while keeping the per-feed linear
// scan in the tens of nanoseconds.
const DefaultTopKCapacity = 32

// PairKey identifies one origin/destination partition pair.
type PairKey struct {
	Src int32 `json:"src"`
	Tgt int32 `json:"tgt"`
}

// PairSample is one additive batch of per-pair tallies. Conventions
// mirror LoadSample: every query counts once in Queries, and at most
// one of ExactHits / WindowHits / SkeletonHits / Deduped /
// EngineSearches describes how it was answered. Effort is the summed engine work (frontier pops)
// spent on the pair's dedicated searches.
type PairSample struct {
	Queries        int64 `json:"queries"`
	ExactHits      int64 `json:"exact_hits"`
	WindowHits     int64 `json:"window_hits"`
	SkeletonHits   int64 `json:"skeleton_hits"`
	Deduped        int64 `json:"deduped"`
	EngineSearches int64 `json:"engine_searches"`
	Effort         int64 `json:"effort"`
}

func (s *PairSample) add(o PairSample) {
	s.Queries += o.Queries
	s.ExactHits += o.ExactHits
	s.WindowHits += o.WindowHits
	s.SkeletonHits += o.SkeletonHits
	s.Deduped += o.Deduped
	s.EngineSearches += o.EngineSearches
	s.Effort += o.Effort
}

// PairCount is one snapshot row: a pair, its tallies, and the
// space-saving overestimate bound. The reported Queries exceeds the
// pair's true query count by at most ErrBound (the weight it inherited
// when it took over its slot); a pair that never displaced another has
// ErrBound 0 and exact tallies.
type PairCount struct {
	Key PairKey `json:"key"`
	PairSample
	ErrBound int64 `json:"err_bound"`
}

type pairSlot struct {
	key PairKey
	s   PairSample
	err int64
}

// TopK is a bounded space-saving heavy-hitter table over OD partition
// pairs (Metwally et al.): at most Capacity pairs are tracked, a feed
// for an untracked pair displaces the current minimum-weight slot and
// inherits its query count as both starting weight and error bound, so
// the per-pair overestimate never exceeds the displaced minimum. Memory
// is fixed at construction and the feed path performs no allocation —
// slots live in one preallocated array scanned linearly (capacities are
// small), guarded by a mutex so concurrent feeders stay race-free. A
// nil *TopK drops feeds and snapshots empty, mirroring LoadRing.
type TopK struct {
	mu    sync.Mutex
	slots []pairSlot
}

// NewTopK returns a table tracking at most capacity pairs
// (DefaultTopKCapacity if capacity <= 0).
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		capacity = DefaultTopKCapacity
	}
	return &TopK{slots: make([]pairSlot, 0, capacity)}
}

// Feed folds one sample for pair k into the table. Allocation-free;
// safe for concurrent use; no-op on a nil receiver or an empty sample.
func (t *TopK) Feed(k PairKey, s PairSample) {
	if t == nil || s == (PairSample{}) {
		return
	}
	t.mu.Lock()
	min := 0
	for i := range t.slots {
		if t.slots[i].key == k {
			t.slots[i].s.add(s)
			t.mu.Unlock()
			return
		}
		if t.slots[i].s.Queries < t.slots[min].s.Queries {
			min = i
		}
	}
	if len(t.slots) < cap(t.slots) {
		t.slots = append(t.slots, pairSlot{key: k, s: s})
		t.mu.Unlock()
		return
	}
	// Space-saving takeover: the new pair adopts the minimum slot,
	// keeping its query weight (the overestimate bound) and zeroing the
	// attribute tallies, which therefore never mix across pairs. The
	// summed Queries over all slots grows by exactly s.Queries per
	// feed, so it never exceeds the queries observed by the feeder.
	sl := &t.slots[min]
	inherited := sl.s.Queries
	*sl = pairSlot{key: k, s: PairSample{Queries: inherited}, err: inherited}
	sl.s.add(s)
	t.mu.Unlock()
}

// Snapshot returns the tracked pairs sorted by descending query weight
// (ties broken by ascending Src, then Tgt, for deterministic scrapes).
func (t *TopK) Snapshot() []PairCount {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]PairCount, len(t.slots))
	for i, sl := range t.slots {
		out[i] = PairCount{Key: sl.key, PairSample: sl.s, ErrBound: sl.err}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queries != out[j].Queries {
			return out[i].Queries > out[j].Queries
		}
		if out[i].Key.Src != out[j].Key.Src {
			return out[i].Key.Src < out[j].Key.Src
		}
		return out[i].Key.Tgt < out[j].Key.Tgt
	})
	return out
}

// Len returns the number of occupied slots.
func (t *TopK) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	n := len(t.slots)
	t.mu.Unlock()
	return n
}

// Capacity returns the fixed slot budget (0 on a nil receiver).
func (t *TopK) Capacity() int {
	if t == nil {
		return 0
	}
	return cap(t.slots)
}
