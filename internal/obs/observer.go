package obs

import (
	"sort"
	"sync"
	"time"
)

// RequestKey labels one request-latency histogram.
type RequestKey struct {
	Venue   string
	Method  string
	Outcome string
}

// ObserverOptions tune an Observer; zero values select defaults.
type ObserverOptions struct {
	// Bounds are the histogram bucket upper bounds in seconds
	// (default DefaultBounds).
	Bounds []float64
	// RingCapacity is the total /tracez retention (default 64).
	RingCapacity int
	// SlowK is how many of those slots are reserved for the
	// slowest traces (default 16).
	SlowK int
	// SampleN samples 1 in N non-slow traces into the remaining
	// slots (default 16).
	SampleN int
}

// Observer owns the process-wide stage histograms, the per
// (venue, method, outcome) request histograms and the trace ring.
// All methods are safe for concurrent use and nil-receiver safe.
type Observer struct {
	bounds []float64
	stages [numStages]*Histogram
	ring   *TraceRing

	mu  sync.RWMutex
	req map[RequestKey]*Histogram
}

// NewObserver builds an Observer with the given options.
func NewObserver(opts ObserverOptions) *Observer {
	if opts.Bounds == nil {
		opts.Bounds = DefaultBounds
	}
	if opts.RingCapacity == 0 {
		opts.RingCapacity = 64
	}
	if opts.SlowK == 0 {
		opts.SlowK = 16
	}
	if opts.SampleN == 0 {
		opts.SampleN = 16
	}
	o := &Observer{
		bounds: opts.Bounds,
		ring:   NewTraceRing(opts.RingCapacity, opts.SlowK, opts.SampleN),
		req:    make(map[RequestKey]*Histogram),
	}
	for i := range o.stages {
		o.stages[i] = NewHistogram(o.bounds)
	}
	return o
}

// NewTrace starts a trace whose spans feed o's stage histograms.
// Returns nil (the disabled fast path) on a nil observer.
func (o *Observer) NewTrace() *Trace {
	if o == nil {
		return nil
	}
	return &Trace{obs: o, start: time.Now(), spans: make([]SpanData, 0, 8)}
}

// FinishRequest closes out a request: observes its total latency in
// the (venue, method, outcome) histogram and offers the trace to the
// ring. Call it after the render span ends, once per request. Nil
// observer or nil trace is a no-op.
func (o *Observer) FinishRequest(t *Trace, info RequestInfo) {
	if o == nil || t == nil {
		return
	}
	total := time.Since(t.start)
	o.histFor(RequestKey{Venue: info.Venue, Method: info.Method, Outcome: info.Outcome}).Observe(total)
	o.ring.Offer(t.doc(info, total))
}

func (o *Observer) histFor(k RequestKey) *Histogram {
	o.mu.RLock()
	h := o.req[k]
	o.mu.RUnlock()
	if h != nil {
		return h
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if h = o.req[k]; h == nil {
		h = NewHistogram(o.bounds)
		o.req[k] = h
	}
	return h
}

// StageSnapshots returns one snapshot per stage, keyed by stage name.
func (o *Observer) StageSnapshots() map[string]HistogramSnapshot {
	if o == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot, numStages)
	for i, h := range o.stages {
		out[Stage(i).String()] = h.Snapshot()
	}
	return out
}

// RequestSnapshots returns one snapshot per (venue, method, outcome)
// histogram that has been touched.
func (o *Observer) RequestSnapshots() map[RequestKey]HistogramSnapshot {
	if o == nil {
		return nil
	}
	o.mu.RLock()
	hists := make(map[RequestKey]*Histogram, len(o.req))
	for k, h := range o.req {
		hists[k] = h
	}
	o.mu.RUnlock()
	out := make(map[RequestKey]HistogramSnapshot, len(hists))
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	return out
}

// SortedRequestKeys returns the keys of a RequestSnapshots map in
// deterministic (venue, method, outcome) order, for stable text
// exposition.
func SortedRequestKeys(m map[RequestKey]HistogramSnapshot) []RequestKey {
	keys := make([]RequestKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Venue != b.Venue {
			return a.Venue < b.Venue
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		return a.Outcome < b.Outcome
	})
	return keys
}

// Traces returns the current /tracez snapshot.
func (o *Observer) Traces() []*TraceDoc {
	if o == nil {
		return nil
	}
	return o.ring.Snapshot()
}
