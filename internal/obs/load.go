package obs

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Rolling load signals: a lock-free ring of per-second buckets that
// turns the pool's monotone-since-boot counters into "right now"
// rates. Each bucket holds the atomic signal tallies for one wall
// second; readers sum the trailing 10s/1m/5m of buckets into windowed
// totals. The ring is always on — unlike traces it cannot be switched
// off — so Feed must be allocation-free and wait-free on the hot
// path (pinned by BenchmarkLoadRingFeed in CI).
//
// Consistency contract, mirroring Pool.Stats: within one bucket a
// writer adds Queries FIRST and the outcome signals after, while the
// reader loads the outcome signals first and Queries LAST, then
// re-checks the bucket's second. Any windowed view therefore
// satisfies ExactHits+WindowHits+SkeletonHits+Deduped <= Queries —
// hits may be momentarily undercounted relative to arrivals, never
// the reverse.

const (
	// loadRingSize is the bucket count; a power of two so the wall
	// second maps to a slot with a mask. 512 buckets > the 300 s
	// retention, so a slot is never reused while still inside any
	// window.
	loadRingSize = 512
	loadRingMask = loadRingSize - 1

	// LoadRetentionSec bounds how far back windowed views may reach.
	LoadRetentionSec = 300
)

// LoadWindows are the trailing spans, in seconds, served by the
// windowed views (/loadz and the indoorpath_load_* gauges).
var LoadWindows = []int{10, 60, LoadRetentionSec}

// LoadSample is one batch of signal deltas fed into the ring — and,
// symmetrically, the windowed totals read back out. All fields are
// deltas/tallies; rates are derived by the consumer (total / window).
// A query's entire outcome (arrival + hit/miss/dedup + reason) must
// ride in ONE Feed call so it lands in one bucket and the partition
// inequality holds per window.
type LoadSample struct {
	Queries        int64 `json:"queries"`
	ExactHits      int64 `json:"exact_hits"`
	WindowHits     int64 `json:"window_hits"`
	SkeletonHits   int64 `json:"skeleton_hits"`
	Deduped        int64 `json:"deduped"`
	SharedAnswers  int64 `json:"shared_answers"`
	EngineSearches int64 `json:"engine_searches"`

	// Coalescer flush telemetry. HoldNanos is the summed actual hold
	// time of the flushed waiters; HoldTargetNanos is the configured
	// hold times the same waiter count, so hold-window utilization is
	// HoldNanos/HoldTargetNanos and flush fan-out is
	// FlushedQueries/Flushes.
	Flushes         int64 `json:"flushes"`
	FlushedQueries  int64 `json:"flushed_queries"`
	HoldNanos       int64 `json:"hold_nanos"`
	HoldTargetNanos int64 `json:"hold_target_nanos"`

	// Decision-provenance tallies (see Reason). Miss reasons partition
	// the cache misses; solo reasons count members that ran a
	// dedicated search instead of sharing.
	MissUncacheable         int64 `json:"miss_uncacheable"`
	MissNoExactEntry        int64 `json:"miss_no_exact_entry"`
	MissFamilyAbsent        int64 `json:"miss_window_family_absent"`
	MissOutsideWindows      int64 `json:"miss_outside_windows"`
	MissSkeletonUncertified int64 `json:"miss_skeleton_uncertified"`
	MissEpochRaced          int64 `json:"miss_epoch_raced"`
	SoloPrivate             int64 `json:"solo_private_partition"`
	SoloSingleton           int64 `json:"solo_singleton_group"`
	SoloAblation            int64 `json:"solo_ablation"`
}

// CountReason adds one tally to the sample field matching r. ReasonNone
// is a no-op, so callers can feed a "maybe" reason unconditionally.
func (s *LoadSample) CountReason(r Reason) {
	switch r {
	case ReasonUncacheable:
		s.MissUncacheable++
	case ReasonNoExactEntry:
		s.MissNoExactEntry++
	case ReasonWindowFamilyAbsent:
		s.MissFamilyAbsent++
	case ReasonOutsideWindows:
		s.MissOutsideWindows++
	case ReasonSkeletonUncertified:
		s.MissSkeletonUncertified++
	case ReasonEpochRaced:
		s.MissEpochRaced++
	case ReasonPrivatePartition:
		s.SoloPrivate++
	case ReasonSingletonGroup:
		s.SoloSingleton++
	case ReasonAblation:
		s.SoloAblation++
	}
}

// signal indices inside a bucket. loadQueries MUST stay first: the
// snapshot reads signals in descending index order so arrivals are
// loaded last (see the consistency contract above).
const (
	loadQueries = iota
	loadExactHits
	loadWindowHits
	loadDeduped
	loadSharedAnswers
	loadEngineSearches
	loadFlushes
	loadFlushedQueries
	loadHoldNanos
	loadHoldTargetNanos
	loadMissUncacheable
	loadMissNoExactEntry
	loadMissFamilyAbsent
	loadMissOutsideWindows
	loadMissEpochRaced
	loadSoloPrivate
	loadSoloSingleton
	loadSoloAblation
	loadSkeletonHits
	loadMissSkeletonUncertified
	numLoadSignals
)

// loadBucket holds one wall second of tallies. sec is the unix second
// the counts belong to; the zero value (second 0 = 1970) never falls
// inside a window, so fresh buckets read as empty. A negative sec is
// the claim marker of a writer currently zeroing the bucket for
// second -sec.
type loadBucket struct {
	sec    atomic.Int64
	counts [numLoadSignals]atomic.Int64
}

// LoadRing is the lock-free per-second ring. The zero value is NOT
// ready; use NewLoadRing. All methods are safe for concurrent use and
// nil-safe (a nil ring drops feeds and reads empty), so wiring can
// stay unconditional.
type LoadRing struct {
	buckets [loadRingSize]loadBucket
	// now overrides the wall clock in tests (fake-clock rotation
	// edge cases). nil = time.Now().Unix.
	now func() int64
}

// NewLoadRing returns an empty ring covering the last
// LoadRetentionSec seconds.
func NewLoadRing() *LoadRing { return &LoadRing{} }

func (r *LoadRing) clockSec() int64 {
	if r.now != nil {
		return r.now()
	}
	return time.Now().Unix()
}

// bucket returns the bucket for unix second sec, rotating (zeroing) a
// stale slot on first touch of a new second. Rotation uses a claim
// protocol: the winner CASes sec to the negative claim marker, zeroes
// the counters, then publishes the new second; concurrent feeders of
// the same second spin until the claim resolves, so a feed can never
// land in a half-zeroed bucket.
func (r *LoadRing) bucket(sec int64) *loadBucket {
	b := &r.buckets[sec&loadRingMask]
	for {
		cur := b.sec.Load()
		if cur == sec {
			return b
		}
		if cur == -sec {
			// Another feeder is resetting this slot for our second.
			runtime.Gosched()
			continue
		}
		if b.sec.CompareAndSwap(cur, -sec) {
			for i := range b.counts {
				b.counts[i].Store(0)
			}
			if !b.sec.CompareAndSwap(-sec, sec) {
				// A newer second stole the slot mid-reset (writer
				// stalled for a full ring revolution); retry.
				continue
			}
			return b
		}
	}
}

// Feed adds the sample's deltas to the current second's bucket.
// Allocation-free; zero fields cost nothing beyond the skip test.
func (r *LoadRing) Feed(s LoadSample) {
	if r == nil {
		return
	}
	b := r.bucket(r.clockSec())
	// Queries first — the reader loads it last.
	b.add(loadQueries, s.Queries)
	b.add(loadExactHits, s.ExactHits)
	b.add(loadWindowHits, s.WindowHits)
	b.add(loadDeduped, s.Deduped)
	b.add(loadSharedAnswers, s.SharedAnswers)
	b.add(loadEngineSearches, s.EngineSearches)
	b.add(loadFlushes, s.Flushes)
	b.add(loadFlushedQueries, s.FlushedQueries)
	b.add(loadHoldNanos, s.HoldNanos)
	b.add(loadHoldTargetNanos, s.HoldTargetNanos)
	b.add(loadMissUncacheable, s.MissUncacheable)
	b.add(loadMissNoExactEntry, s.MissNoExactEntry)
	b.add(loadMissFamilyAbsent, s.MissFamilyAbsent)
	b.add(loadMissOutsideWindows, s.MissOutsideWindows)
	b.add(loadMissEpochRaced, s.MissEpochRaced)
	b.add(loadSoloPrivate, s.SoloPrivate)
	b.add(loadSoloSingleton, s.SoloSingleton)
	b.add(loadSoloAblation, s.SoloAblation)
	b.add(loadSkeletonHits, s.SkeletonHits)
	b.add(loadMissSkeletonUncertified, s.MissSkeletonUncertified)
}

func (b *loadBucket) add(i int, v int64) {
	if v != 0 {
		b.counts[i].Add(v)
	}
}

// Windows sums the trailing spans (seconds, each capped at
// LoadRetentionSec) into one LoadSample per span. All spans are
// filled from a single pass over the ring, so the views are mutually
// consistent: the 10s totals are a subset of the same buckets the 5m
// totals saw. Buckets that rotate mid-read are dropped whole, never
// half-counted.
func (r *LoadRing) Windows(spans []int) []LoadSample {
	out := make([]LoadSample, len(spans))
	if r == nil || len(spans) == 0 {
		return out
	}
	maxSpan := 0
	for _, s := range spans {
		if s > LoadRetentionSec {
			s = LoadRetentionSec
		}
		if s > maxSpan {
			maxSpan = s
		}
	}
	now := r.clockSec()
	var c [numLoadSignals]int64
	for sec := now - int64(maxSpan) + 1; sec <= now; sec++ {
		b := &r.buckets[sec&loadRingMask]
		if b.sec.Load() != sec {
			continue
		}
		// Outcome signals first, Queries (index 0) last, then confirm
		// the bucket still belongs to sec — a rotation between the
		// two loads of sec would have mixed seconds.
		for i := numLoadSignals - 1; i >= 0; i-- {
			c[i] = b.counts[i].Load()
		}
		if b.sec.Load() != sec {
			continue
		}
		age := int(now - sec) // 0 = current second
		for wi, span := range spans {
			if span > LoadRetentionSec {
				span = LoadRetentionSec
			}
			if age < span {
				out[wi].accumulate(&c)
			}
		}
	}
	return out
}

func (s *LoadSample) accumulate(c *[numLoadSignals]int64) {
	s.Queries += c[loadQueries]
	s.ExactHits += c[loadExactHits]
	s.WindowHits += c[loadWindowHits]
	s.Deduped += c[loadDeduped]
	s.SharedAnswers += c[loadSharedAnswers]
	s.EngineSearches += c[loadEngineSearches]
	s.Flushes += c[loadFlushes]
	s.FlushedQueries += c[loadFlushedQueries]
	s.HoldNanos += c[loadHoldNanos]
	s.HoldTargetNanos += c[loadHoldTargetNanos]
	s.MissUncacheable += c[loadMissUncacheable]
	s.MissNoExactEntry += c[loadMissNoExactEntry]
	s.MissFamilyAbsent += c[loadMissFamilyAbsent]
	s.MissOutsideWindows += c[loadMissOutsideWindows]
	s.MissEpochRaced += c[loadMissEpochRaced]
	s.SoloPrivate += c[loadSoloPrivate]
	s.SoloSingleton += c[loadSoloSingleton]
	s.SoloAblation += c[loadSoloAblation]
	s.SkeletonHits += c[loadSkeletonHits]
	s.MissSkeletonUncertified += c[loadMissSkeletonUncertified]
}
