package obs

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(1 * time.Millisecond)   // == 0.001 -> first bucket (le semantics)
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(50 * time.Millisecond)  // <= 0.1
	h.Observe(2 * time.Second)        // overflow
	h.Observe(-time.Second)           // clamps to 0 -> first bucket

	s := h.Snapshot()
	want := []int64{3, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("Count = %d, want 6", s.Count)
	}
	wantSum := 0.0005 + 0.001 + 0.005 + 0.05 + 2
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Errorf("SumSeconds = %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil histogram snapshot count = %d", s.Count)
	}
}

func TestSnapshotAddSub(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	a := h.Snapshot()
	h.Observe(20 * time.Millisecond) // overflow
	h.Observe(5 * time.Millisecond)
	b := h.Snapshot()

	d := b.Sub(a)
	if d.Count != 2 || d.Counts[1] != 1 || d.Counts[2] != 1 {
		t.Errorf("delta = %+v", d)
	}
	if math.Abs(d.SumSeconds-0.025) > 1e-9 {
		t.Errorf("delta sum = %v, want 0.025", d.SumSeconds)
	}

	m := a.Add(d)
	if m.Count != b.Count || m.SumSeconds != b.SumSeconds {
		t.Errorf("a+delta = %+v, want %+v", m, b)
	}

	// Zero value is the identity.
	var zero HistogramSnapshot
	if got := zero.Add(b); got.Count != b.Count {
		t.Errorf("zero.Add = %+v", got)
	}
	if got := b.Add(zero); got.Count != b.Count {
		t.Errorf("Add(zero) = %+v", got)
	}
	if got := b.Sub(zero); got.Count != b.Count {
		t.Errorf("Sub(zero) = %+v", got)
	}
	// Clamped: subtracting a later snapshot never goes negative.
	if got := a.Sub(b); got.Count != 0 || got.SumSeconds != 0 {
		t.Errorf("a.Sub(b) = %+v, want empty", got)
	}
	// Incompatible bounds don't combine.
	other := NewHistogram([]float64{1}).Snapshot()
	if got := b.Add(other); got.Count != b.Count {
		t.Errorf("incompatible Add changed snapshot: %+v", got)
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(500 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(5 * time.Millisecond)
	}
	h.Observe(50 * time.Millisecond)
	s := h.Snapshot()

	if got := s.Quantile(0.5); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := s.Quantile(0.95); got != 0.01 {
		t.Errorf("p95 = %v, want 0.01", got)
	}
	if got := s.Quantile(1); got != 0.1 {
		t.Errorf("p100 = %v, want 0.1", got)
	}
	if lo, hi := s.QuantileBucket(0.95); lo != 0.001 || hi != 0.01 {
		t.Errorf("p95 bucket = [%v, %v], want [0.001, 0.01]", lo, hi)
	}
	h.Observe(5 * time.Second) // overflow
	if _, hi := h.Snapshot().QuantileBucket(1); !math.IsInf(hi, 1) {
		t.Errorf("overflow quantile hi = %v, want +Inf", hi)
	}
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
	if got := s.MeanSeconds(); got <= 0 {
		t.Errorf("mean = %v", got)
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Start(StageEngine)
	sp.End()
	sp.EndWith("attrs")
	tr.Add(StageHold, time.Time{}, time.Second, nil)
	tr.Adopt(nil)
	if c := tr.NewCollector(); c != nil {
		t.Fatalf("nil collector = %v", c)
	}
	if d := tr.Doc(RequestInfo{}); d != nil {
		t.Fatalf("nil doc = %v", d)
	}
	var o *Observer
	if o.NewTrace() != nil {
		t.Fatal("nil observer produced a trace")
	}
	o.FinishRequest(nil, RequestInfo{})
	if o.Traces() != nil || o.StageSnapshots() != nil || o.RequestSnapshots() != nil {
		t.Fatal("nil observer returned non-nil snapshots")
	}
}

// TestNilTraceZeroAlloc pins the disabled fast path: starting and
// ending spans on a nil trace must not allocate at all.
func TestNilTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(200, func() {
		sp := tr.Start(StageProbe)
		sp.End()
		sp = tr.Start(StageEngine)
		sp.End()
		tr.Add(StageHold, time.Time{}, time.Second, nil)
	})
	if allocs != 0 {
		t.Fatalf("nil-trace span ops allocate %v allocs/op, want 0", allocs)
	}
}

func TestTraceSpansAndDoc(t *testing.T) {
	o := NewObserver(ObserverOptions{})
	tr := o.NewTrace()
	sp := tr.Start(StageProbe)
	sp.End()
	sp = tr.Start(StageEngine)
	sp.EndWith(map[string]int{"pops": 7})
	time.Sleep(time.Millisecond)
	doc := tr.Doc(RequestInfo{Venue: "v", Method: "asyn", Outcome: OutcomeOK, Hit: "miss"})
	if doc.Venue != "v" || doc.Method != "asyn" || doc.Outcome != OutcomeOK || doc.Hit != "miss" {
		t.Fatalf("doc labels = %+v", doc)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(doc.Spans))
	}
	if doc.Spans[0].Stage != "probe" || doc.Spans[1].Stage != "engine" {
		t.Fatalf("span order = %s, %s", doc.Spans[0].Stage, doc.Spans[1].Stage)
	}
	if doc.Spans[1].Attrs == nil {
		t.Fatal("engine span lost attrs")
	}
	if doc.DurationMs < 1 {
		t.Fatalf("duration = %v, want >= 1ms", doc.DurationMs)
	}
	for _, s := range doc.Spans {
		if s.StartMs < 0 || s.StartMs+s.DurationMs > doc.DurationMs+0.5 {
			t.Fatalf("span %+v escapes trace window %v", s, doc.DurationMs)
		}
	}
	// Stage histograms were fed.
	st := o.StageSnapshots()
	if st["probe"].Count != 1 || st["engine"].Count != 1 {
		t.Fatalf("stage counts: probe=%d engine=%d", st["probe"].Count, st["engine"].Count)
	}
}

func TestTraceSpanCap(t *testing.T) {
	o := NewObserver(ObserverOptions{})
	tr := o.NewTrace()
	for i := 0; i < maxSpans+10; i++ {
		tr.Start(StageProbe).End()
	}
	doc := tr.Doc(RequestInfo{})
	if len(doc.Spans) != maxSpans {
		t.Fatalf("spans = %d, want %d", len(doc.Spans), maxSpans)
	}
	if doc.DroppedSpans != 10 {
		t.Fatalf("dropped = %d, want 10", doc.DroppedSpans)
	}
	// Dropped spans still feed the histogram.
	if got := o.StageSnapshots()["probe"].Count; got != maxSpans+10 {
		t.Fatalf("probe count = %d, want %d", got, maxSpans+10)
	}
}

func TestCollectorAdoptNoDoubleCount(t *testing.T) {
	o := NewObserver(ObserverOptions{})
	tr1 := o.NewTrace()
	tr2 := o.NewTrace()
	col := tr1.NewCollector()
	col.Start(StageEngine).End()

	tr1.Adopt(col)
	tr2.Adopt(col)
	if got := o.StageSnapshots()["engine"].Count; got != 1 {
		t.Fatalf("engine histogram count = %d, want 1 (adopt must not re-observe)", got)
	}
	if d := tr1.Doc(RequestInfo{}); len(d.Spans) != 1 || d.Spans[0].Stage != "engine" {
		t.Fatalf("tr1 doc = %+v", d)
	}
	if d := tr2.Doc(RequestInfo{}); len(d.Spans) != 1 {
		t.Fatalf("tr2 doc = %+v", d)
	}
	// Self-adopt is a no-op.
	tr1.Adopt(tr1)
	if d := tr1.Doc(RequestInfo{}); len(d.Spans) != 1 {
		t.Fatalf("self-adopt duplicated spans: %+v", d)
	}
}

func TestContextPlumbing(t *testing.T) {
	o := NewObserver(ObserverOptions{})
	tr := o.NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %v, want %v", got, tr)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("empty context trace = %v", got)
	}
	if got := WithTrace(context.Background(), nil); got != context.Background() {
		t.Fatal("WithTrace(nil) should return ctx unchanged")
	}
}

func mkDoc(ms float64) *TraceDoc {
	return &TraceDoc{DurationMs: ms, Spans: []SpanDoc{}}
}

func TestRingBoundsAndSlowestK(t *testing.T) {
	const cap, slowK, sampleN = 10, 4, 3
	r := NewTraceRing(cap, slowK, sampleN)
	for i := 0; i < 500; i++ {
		r.Offer(mkDoc(float64(i % 97)))
		if r.Len() > cap {
			t.Fatalf("ring grew to %d > capacity %d after %d offers", r.Len(), cap, i+1)
		}
	}
	snap := r.Snapshot()
	if len(snap) > cap {
		t.Fatalf("snapshot len = %d > capacity %d", len(snap), cap)
	}
	// The slowK slowest seen (96, repeated) must be retained, sorted
	// descending at the front.
	for i := 0; i < slowK; i++ {
		if !snap[i].Slow {
			t.Fatalf("snap[%d] not flagged slow: %+v", i, snap[i])
		}
		if snap[i].DurationMs != 96 {
			t.Fatalf("slow[%d] = %v ms, want 96", i, snap[i].DurationMs)
		}
	}
	for i := 1; i < slowK; i++ {
		if snap[i].DurationMs > snap[i-1].DurationMs {
			t.Fatal("slow prefix not sorted descending")
		}
	}
	// The rest are flagged sampled.
	for _, d := range snap[slowK:] {
		if !d.Sampled || d.Slow {
			t.Fatalf("tail doc flags = %+v", d)
		}
	}
}

func TestRingSampling(t *testing.T) {
	r := NewTraceRing(100, 0, 5) // sampling only
	for i := 0; i < 50; i++ {
		r.Offer(mkDoc(1))
	}
	if got := r.Len(); got != 10 {
		t.Fatalf("1-in-5 of 50 offers retained %d, want 10", got)
	}
	// Newest first.
	r2 := NewTraceRing(3, 0, 1)
	for i := 1; i <= 5; i++ {
		r2.Offer(mkDoc(float64(i)))
	}
	snap := r2.Snapshot()
	if len(snap) != 3 || snap[0].DurationMs != 5 || snap[1].DurationMs != 4 || snap[2].DurationMs != 3 {
		t.Fatalf("ring snapshot = %v", durations(snap))
	}
}

func durations(docs []*TraceDoc) []float64 {
	out := make([]float64, len(docs))
	for i, d := range docs {
		out[i] = d.DurationMs
	}
	return out
}

func TestObserverFinishRequest(t *testing.T) {
	o := NewObserver(ObserverOptions{})
	for i := 0; i < 3; i++ {
		tr := o.NewTrace()
		tr.Start(StageProbe).End()
		o.FinishRequest(tr, RequestInfo{Venue: "v", Method: "asyn", Outcome: OutcomeOK})
	}
	tr := o.NewTrace()
	o.FinishRequest(tr, RequestInfo{Venue: "v", Method: "asyn", Outcome: OutcomeError})

	req := o.RequestSnapshots()
	if got := req[RequestKey{"v", "asyn", OutcomeOK}].Count; got != 3 {
		t.Fatalf("ok count = %d, want 3", got)
	}
	if got := req[RequestKey{"v", "asyn", OutcomeError}].Count; got != 1 {
		t.Fatalf("error count = %d, want 1", got)
	}
	keys := SortedRequestKeys(req)
	if len(keys) != 2 || keys[0].Outcome != OutcomeError || keys[1].Outcome != OutcomeOK {
		t.Fatalf("sorted keys = %v", keys)
	}
	if got := len(o.Traces()); got != 4 {
		t.Fatalf("ring holds %d traces, want 4", got)
	}
}

// TestObserverRace hammers every concurrent surface at once; run
// under -race in CI.
func TestObserverRace(t *testing.T) {
	o := NewObserver(ObserverOptions{RingCapacity: 8, SlowK: 2, SampleN: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := o.NewTrace()
				col := tr.NewCollector()
				col.Start(StageEngine).End()
				tr.Start(StageProbe).End()
				tr.Adopt(col)
				o.FinishRequest(tr, RequestInfo{
					Venue:   "v",
					Method:  "asyn",
					Outcome: fmt.Sprintf("o%d", g%3),
				})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o.Traces()
				o.StageSnapshots()
				o.RequestSnapshots()
			}
		}()
	}
	wg.Wait()
	total := int64(0)
	for _, s := range o.RequestSnapshots() {
		total += s.Count
	}
	if total != 8*200 {
		t.Fatalf("request observations = %d, want %d", total, 8*200)
	}
}
