package obs

import (
	"sync"
	"testing"
)

// TestTopKHeavyHitterRecovery feeds a deterministic skewed stream —
// a few heavy pairs buried in a long tail wider than the table — and
// checks the heavy pairs survive with tallies within the space-saving
// error bound.
func TestTopKHeavyHitterRecovery(t *testing.T) {
	tk := NewTopK(8)
	heavy := []struct {
		key PairKey
		n   int
	}{
		{PairKey{Src: 1, Tgt: 2}, 500},
		{PairKey{Src: 3, Tgt: 4}, 300},
		{PairKey{Src: 5, Tgt: 6}, 150},
	}
	// Interleave heavy hitters with a 64-pair tail (one query each,
	// repeated) so the tail constantly churns the low slots.
	tail := 0
	for round := 0; round < 10; round++ {
		for _, h := range heavy {
			for i := 0; i < h.n/10; i++ {
				tk.Feed(h.key, PairSample{Queries: 1, ExactHits: 1})
			}
		}
		for i := 0; i < 64; i++ {
			tail++
			tk.Feed(PairKey{Src: 100, Tgt: int32(tail % 64)}, PairSample{Queries: 1})
		}
	}
	snap := tk.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot has %d slots, want 8 (bounded by capacity)", len(snap))
	}
	byKey := map[PairKey]PairCount{}
	var total int64
	for _, pc := range snap {
		byKey[pc.Key] = pc
		total += pc.Queries
	}
	fed := int64(500+300+150) + int64(64*10)
	if total > fed {
		t.Fatalf("summed slot queries %d exceed fed queries %d", total, fed)
	}
	for _, h := range heavy {
		pc, ok := byKey[h.key]
		if !ok {
			t.Fatalf("heavy pair %v missing from snapshot %v", h.key, snap)
		}
		if pc.Queries < int64(h.n) {
			t.Errorf("pair %v reports %d queries, want >= true count %d", h.key, pc.Queries, h.n)
		}
		if pc.Queries > int64(h.n)+pc.ErrBound {
			t.Errorf("pair %v reports %d queries, exceeds true count %d + err bound %d",
				h.key, pc.Queries, h.n, pc.ErrBound)
		}
	}
	// Descending order by weight; the top pair is the heaviest.
	if snap[0].Key != heavy[0].key {
		t.Errorf("top slot is %v, want %v", snap[0].Key, heavy[0].key)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Queries > snap[i-1].Queries {
			t.Fatalf("snapshot not sorted descending at %d: %v", i, snap)
		}
	}
}

// TestTopKTallies checks attribute tallies accumulate per pair and are
// zeroed (not mixed) across slot takeovers.
func TestTopKTallies(t *testing.T) {
	tk := NewTopK(2)
	k := PairKey{Src: 1, Tgt: 2}
	tk.Feed(k, PairSample{Queries: 1, ExactHits: 1})
	tk.Feed(k, PairSample{Queries: 1, WindowHits: 1})
	tk.Feed(k, PairSample{Queries: 2, Deduped: 2})
	tk.Feed(k, PairSample{Queries: 1, EngineSearches: 1, Effort: 42})
	snap := tk.Snapshot()
	pc := snap[0]
	if pc.Key != k || pc.Queries != 5 || pc.ExactHits != 1 || pc.WindowHits != 1 ||
		pc.Deduped != 2 || pc.EngineSearches != 1 || pc.Effort != 42 || pc.ErrBound != 0 {
		t.Fatalf("tallies = %+v, want queries=5 exact=1 window=1 deduped=2 searches=1 effort=42 err=0", pc)
	}
	// Fill the second slot lightly, then displace it: the adopter
	// inherits only the query weight, never the attribute tallies.
	tk.Feed(PairKey{Src: 3, Tgt: 4}, PairSample{Queries: 2, ExactHits: 2})
	tk.Feed(PairKey{Src: 5, Tgt: 6}, PairSample{Queries: 1, EngineSearches: 1, Effort: 7})
	for _, pc := range tk.Snapshot() {
		if pc.Key == (PairKey{Src: 5, Tgt: 6}) {
			if pc.Queries != 3 || pc.ErrBound != 2 {
				t.Errorf("adopter queries=%d err=%d, want 3 with bound 2", pc.Queries, pc.ErrBound)
			}
			if pc.ExactHits != 0 || pc.Effort != 7 {
				t.Errorf("adopter inherited attribute tallies: %+v", pc)
			}
		}
	}
}

// TestTopKNilAndEmpty pins nil-receiver and empty-sample behaviour.
func TestTopKNilAndEmpty(t *testing.T) {
	var tk *TopK
	tk.Feed(PairKey{Src: 1, Tgt: 2}, PairSample{Queries: 1})
	if tk.Snapshot() != nil || tk.Len() != 0 || tk.Capacity() != 0 {
		t.Fatal("nil TopK must drop feeds and snapshot empty")
	}
	tk = NewTopK(0)
	if tk.Capacity() != DefaultTopKCapacity {
		t.Fatalf("capacity = %d, want default %d", tk.Capacity(), DefaultTopKCapacity)
	}
	tk.Feed(PairKey{Src: 1, Tgt: 2}, PairSample{})
	if tk.Len() != 0 {
		t.Fatal("empty sample must not occupy a slot")
	}
}

// TestTopKConcurrentFeeders hammers one table from many goroutines
// (run under -race) and checks the bounded-memory and summed-weight
// invariants afterwards.
func TestTopKConcurrentFeeders(t *testing.T) {
	tk := NewTopK(16)
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := PairKey{Src: int32(w % 4), Tgt: int32(i % 23)}
				tk.Feed(k, PairSample{Queries: 1, EngineSearches: 1, Effort: int64(i % 7)})
				if i%97 == 0 {
					tk.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if tk.Len() > 16 {
		t.Fatalf("table grew to %d slots, capacity 16", tk.Len())
	}
	var total int64
	for _, pc := range tk.Snapshot() {
		total += pc.Queries
	}
	if fed := int64(workers * perWorker); total > fed {
		t.Fatalf("summed slot queries %d exceed fed queries %d", total, fed)
	}
}

// TestTopKFeedZeroAlloc pins the always-on feed path at zero
// allocations per op, in both the tracked-pair and takeover regimes.
func TestTopKFeedZeroAlloc(t *testing.T) {
	tk := NewTopK(8)
	for i := 0; i < 16; i++ { // warm: fill and churn past capacity
		tk.Feed(PairKey{Src: int32(i), Tgt: int32(i)}, PairSample{Queries: 1})
	}
	hot := PairKey{Src: 0, Tgt: 0}
	i := 0
	if n := testing.AllocsPerRun(500, func() {
		tk.Feed(hot, PairSample{Queries: 1, ExactHits: 1})
		i++
		tk.Feed(PairKey{Src: 200, Tgt: int32(i % 64)}, PairSample{Queries: 1}) // forces takeovers
	}); n != 0 {
		t.Fatalf("TopK.Feed allocates %.1f per op, want 0 (always-on path must stay allocation-free)", n)
	}
}

// BenchmarkTopKFeed pins the always-on top-K feed at zero allocations
// per op; it self-fails on regression so the CI bench smoke catches it
// without inspecting -benchmem output.
func BenchmarkTopKFeed(b *testing.B) {
	tk := NewTopK(DefaultTopKCapacity)
	for i := 0; i < 2*DefaultTopKCapacity; i++ {
		tk.Feed(PairKey{Src: int32(i), Tgt: int32(i)}, PairSample{Queries: 1})
	}
	s := PairSample{Queries: 1, ExactHits: 1}
	k := PairKey{Src: 0, Tgt: 0}
	if n := testing.AllocsPerRun(100, func() { tk.Feed(k, s) }); n != 0 {
		b.Fatalf("TopK.Feed allocates %.1f per op, want 0 (always-on path must stay allocation-free)", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Feed(k, s)
	}
}
