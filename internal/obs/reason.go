package obs

// Reason is a compact decision-provenance code explaining why the
// serving stack made a negative decision: why a lookup missed every
// cache, or why a batch/coalesce member ran a dedicated engine search
// instead of joining a shared run. Reasons ride Results as a single
// byte, surface as the "explain" field on miss responses, and are
// tallied per pool (/statsz, /metricsz) and per second (LoadRing).
type Reason uint8

const (
	// ReasonNone: no negative decision (cache hit, shared answer).
	ReasonNone Reason = iota

	// Miss reasons — why no cache could answer.

	// ReasonUncacheable: an endpoint lies outside every partition, so
	// the query has no cache identity at all.
	ReasonUncacheable
	// ReasonNoExactEntry: the exact-key cache had no entry and no
	// window store was consulted (window cache off or absent).
	ReasonNoExactEntry
	// ReasonWindowFamilyAbsent: the window store holds no validity
	// series for this endpoint family at this speed.
	ReasonWindowFamilyAbsent
	// ReasonOutsideWindows: the family exists but the departure time
	// falls outside every stored validity window.
	ReasonOutsideWindows
	// ReasonSkeletonUncertified: a partition-pair skeleton family was
	// stored for the query's slot, but the composition could not be
	// certified byte-identical to a fresh search (no finite chain, the
	// composed walk crosses the slot boundary, or the best chain is
	// ambiguous), so the query fell through to an engine.
	ReasonSkeletonUncertified
	// ReasonEpochRaced: the lookup missed and the computed outcome was
	// then discarded because a schedule invalidation ran while the
	// search was in flight — the next identical query will miss again.
	ReasonEpochRaced

	// Solo reasons — why a member ran outside a shared engine run.

	// ReasonPrivatePartition: a private endpoint partition blocked
	// sharing (the paper's privacy rule).
	ReasonPrivatePartition
	// ReasonSingletonGroup: the member's endpoint family had nothing
	// to share with (singleton family, or caches absorbed the rest of
	// the group).
	ReasonSingletonGroup
	// ReasonAblation: the SinglePartitionExpansion ablation forbids
	// shared expansion, forcing per-query fallback searches.
	ReasonAblation

	// NumReasons sizes dense per-reason counter arrays.
	NumReasons
)

var reasonNames = [NumReasons]string{
	ReasonNone:                "",
	ReasonUncacheable:         "uncacheable",
	ReasonNoExactEntry:        "no_exact_entry",
	ReasonWindowFamilyAbsent:  "window_family_absent",
	ReasonOutsideWindows:      "outside_windows",
	ReasonSkeletonUncertified: "skeleton_uncertified",
	ReasonEpochRaced:          "epoch_raced",
	ReasonPrivatePartition:    "private_partition",
	ReasonSingletonGroup:      "singleton_group",
	ReasonAblation:            "ablation",
}

// String returns the stable wire name ("" for ReasonNone). The names
// are part of the /statsz, /loadz and "explain" vocabulary; never
// renumber or rename.
func (r Reason) String() string {
	if r < NumReasons {
		return reasonNames[r]
	}
	return ""
}

// IsMiss reports whether r explains a cache miss (as opposed to a
// solo-run decision).
func (r Reason) IsMiss() bool {
	return r >= ReasonUncacheable && r <= ReasonEpochRaced
}
