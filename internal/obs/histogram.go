// Package obs is the dependency-free observability core for the
// serving stack: lock-free duration histograms with mergeable
// snapshots, and per-request span traces carried via context.Context.
//
// Everything here is designed around one constraint: the *disabled*
// path must cost nothing. All Trace/Span methods are nil-receiver
// safe, so instrumented code threads a possibly-nil *Trace and the
// hot path (nil trace) performs two pointer comparisons and zero
// allocations per stage.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultBounds are the default histogram bucket upper bounds in
// seconds: a 1–2.5–5 ladder per decade from 10µs to 10s. Stage
// timings (cache probes, engine searches) live at the small end;
// whole requests under load at the large end. Observations above the
// last bound land in an implicit +Inf overflow bucket.
var DefaultBounds = []float64{
	0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05,
	0.1, 0.25, 0.5,
	1, 2.5, 5,
	10,
}

// CountBounds are the default bucket upper bounds for count-valued
// histograms (engine effort: frontier pops, settled doors, edge
// relaxations, TV_Check invocations): a 1–2.5–5 ladder per decade from
// 1 to 100k operations per search. Observations above the last bound
// land in the implicit +Inf overflow bucket.
var CountBounds = []float64{
	1, 2.5, 5,
	10, 25, 50,
	100, 250, 500,
	1000, 2500, 5000,
	10000, 25000, 50000,
	100000,
}

// Histogram is a fixed-bucket duration histogram safe for concurrent
// Observe calls without locking: each bucket is an atomic counter and
// the running sum is atomic nanoseconds. Snapshots taken under
// concurrent writes may be torn across buckets (sum vs counts can
// disagree by in-flight observations) but each counter is monotone,
// so deltas between two snapshots never go negative.
type Histogram struct {
	bounds []float64 // immutable after construction
	counts []atomic.Int64
	// len(counts) == len(bounds)+1; the final slot is the +Inf
	// overflow bucket.
	sumNanos atomic.Int64
	// countUnit marks a count-valued histogram (NewCountHistogram):
	// sumNanos then holds raw summed units and the snapshot's
	// SumSeconds carries that raw sum undivided.
	countUnit bool
}

// NewHistogram builds a histogram over the given ascending bucket
// upper bounds (seconds). A nil bounds slice selects DefaultBounds.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBounds
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration. Negative durations clamp to zero.
// Safe for concurrent use; never allocates.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs) // first bound >= secs, len(bounds) = overflow
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// NewCountHistogram builds a histogram over count-valued observations
// (bucket bounds are plain operation counts, not seconds). A nil
// bounds slice selects CountBounds. Feed it with ObserveCount; its
// snapshot's SumSeconds field holds the raw summed count, so
// MeanSeconds reads as "mean observed count".
func NewCountHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = CountBounds
	}
	h := NewHistogram(bounds)
	h.countUnit = true
	return h
}

// ObserveCount records one count-valued observation (negative values
// clamp to zero). Safe for concurrent use; never allocates.
func (h *Histogram) ObserveCount(n int64) {
	if h == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	i := sort.SearchFloat64s(h.bounds, float64(n))
	h.counts[i].Add(1)
	h.sumNanos.Add(n)
}

// Snapshot copies the current counters into an immutable value.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, shared
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	if h.countUnit {
		s.SumSeconds = float64(h.sumNanos.Load())
	} else {
		s.SumSeconds = float64(h.sumNanos.Load()) / float64(time.Second)
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, suitable
// for JSON exposition and for delta arithmetic between scrapes.
// Counts has len(Bounds)+1 entries; the last is the +Inf overflow
// bucket. The zero value is an empty snapshot that Add and Sub treat
// as the identity. For count-valued histograms (NewCountHistogram),
// SumSeconds holds the raw summed observation value instead of
// seconds — MeanSeconds then reads as "mean observed count".
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Counts     []int64   `json:"counts"`
	Count      int64     `json:"count"`
	SumSeconds float64   `json:"sum_seconds"`
}

// compatible reports whether o can be combined bucket-wise with s.
func (s HistogramSnapshot) compatible(o HistogramSnapshot) bool {
	if len(s.Bounds) != len(o.Bounds) || len(s.Counts) != len(o.Counts) {
		return false
	}
	for i, b := range s.Bounds {
		if o.Bounds[i] != b {
			return false
		}
	}
	return true
}

// Add merges o into a copy of s and returns it. Adding onto the zero
// value yields a copy of o; snapshots with different bucket bounds do
// not combine and s is returned unchanged.
func (s HistogramSnapshot) Add(o HistogramSnapshot) HistogramSnapshot {
	if s.Counts == nil {
		return o.clone()
	}
	if o.Counts == nil {
		return s.clone()
	}
	if !s.compatible(o) {
		return s
	}
	out := s.clone()
	for i, c := range o.Counts {
		out.Counts[i] += c
	}
	out.Count += o.Count
	out.SumSeconds += o.SumSeconds
	return out
}

// Sub returns the bucket-wise delta s − o, clamped at zero per bucket
// so torn scrapes never produce negative counts. Subtracting the zero
// value yields a copy of s; incompatible bounds return s unchanged.
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	if s.Counts == nil || o.Counts == nil {
		return s.clone()
	}
	if !s.compatible(o) {
		return s
	}
	out := s.clone()
	out.Count = 0
	for i, c := range o.Counts {
		out.Counts[i] -= c
		if out.Counts[i] < 0 {
			out.Counts[i] = 0
		}
		out.Count += out.Counts[i]
	}
	out.SumSeconds -= o.SumSeconds
	if out.SumSeconds < 0 {
		out.SumSeconds = 0
	}
	return out
}

func (s HistogramSnapshot) clone() HistogramSnapshot {
	out := s
	out.Counts = make([]int64, len(s.Counts))
	copy(out.Counts, s.Counts)
	return out
}

// MeanSeconds returns the average observed duration, or 0 when empty.
func (s HistogramSnapshot) MeanSeconds() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumSeconds / float64(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the upper bound of the bucket holding the
// nearest-rank observation. Observations in the overflow bucket
// report +Inf. Returns 0 for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	_, hi := s.QuantileBucket(q)
	return hi
}

// QuantileBucket returns the (lower, upper) bound in seconds of the
// bucket containing the q-quantile observation. The true quantile
// value lies within [lower, upper]; upper is +Inf for the overflow
// bucket. Returns (0, 0) for an empty snapshot.
func (s HistogramSnapshot) QuantileBucket(q float64) (lo, hi float64) {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0, 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i == 0 {
				lo = 0
			} else {
				lo = s.Bounds[i-1]
			}
			if i < len(s.Bounds) {
				hi = s.Bounds[i]
			} else {
				hi = math.Inf(1)
			}
			return lo, hi
		}
	}
	// Unreachable: cum over all buckets equals Count.
	return 0, math.Inf(1)
}
