package obs

import "sync"

// TraceRing is the bounded store behind /tracez. It retains at most
// `capacity` trace docs split in two populations:
//
//   - the K slowest traces seen so far (slowK), evicted only by a
//     slower arrival — the tail you actually want to debug survives
//     arbitrary churn;
//   - a 1-in-sampleN systematic sample of everything else, in a
//     ring buffer of capacity-slowK slots — an unbiased picture of
//     normal traffic.
//
// A doc lands in exactly one population (slow wins), so the total
// never exceeds capacity.
type TraceRing struct {
	mu      sync.Mutex
	slowK   int
	sampleN int
	sampCap int
	slow    []*TraceDoc
	sampled []*TraceDoc
	next    int   // ring write index into sampled
	offered int64 // non-slow offers seen, for 1-in-N selection
}

// NewTraceRing builds a ring retaining the slowK slowest plus a
// 1-in-sampleN sample, capacity docs total. Arguments are clamped to
// sane minimums (capacity >= 1, 0 <= slowK <= capacity, sampleN >= 1).
func NewTraceRing(capacity, slowK, sampleN int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	if slowK < 0 {
		slowK = 0
	}
	if slowK > capacity {
		slowK = capacity
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &TraceRing{slowK: slowK, sampleN: sampleN, sampCap: capacity - slowK}
}

// Offer submits a finished trace doc. The ring takes ownership: it
// may set the doc's Slow/Sampled flags before storing, and docs are
// immutable afterwards. Docs that are neither slow nor sampled are
// dropped.
func (r *TraceRing) Offer(d *TraceDoc) {
	if r == nil || d == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.slow) < r.slowK {
		d.Slow = true
		r.slow = append(r.slow, d)
		return
	}
	if r.slowK > 0 {
		mi := 0
		for i := 1; i < len(r.slow); i++ {
			if r.slow[i].DurationMs < r.slow[mi].DurationMs {
				mi = i
			}
		}
		if d.DurationMs > r.slow[mi].DurationMs {
			d.Slow = true
			r.slow[mi] = d
			return
		}
	}
	if r.sampCap == 0 {
		return
	}
	r.offered++
	if r.offered%int64(r.sampleN) != 0 {
		return
	}
	d.Sampled = true
	if len(r.sampled) < r.sampCap {
		r.sampled = append(r.sampled, d)
		return
	}
	r.sampled[r.next] = d
	r.next = (r.next + 1) % r.sampCap
}

// Snapshot returns the retained docs: slowest first (descending
// duration), then the sampled population newest first. The returned
// slice is fresh; the docs are shared but immutable.
func (r *TraceRing) Snapshot() []*TraceDoc {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceDoc, 0, len(r.slow)+len(r.sampled))
	out = append(out, r.slow...)
	// Insertion-sort the slow prefix by descending duration; slowK
	// is small.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].DurationMs > out[j-1].DurationMs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	// Sampled: newest first means walking backwards from the write
	// cursor.
	for i := 0; i < len(r.sampled); i++ {
		idx := r.next - 1 - i
		for idx < 0 {
			idx += len(r.sampled)
		}
		out = append(out, r.sampled[idx%len(r.sampled)])
	}
	return out
}

// Len reports how many docs are currently retained.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.slow) + len(r.sampled)
}
