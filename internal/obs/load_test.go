package obs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock pins a LoadRing to a controllable wall second.
type fakeClock struct{ sec atomic.Int64 }

func (c *fakeClock) install(r *LoadRing, start int64) {
	c.sec.Store(start)
	r.now = c.sec.Load
}

func (c *fakeClock) advance(d int64) { c.sec.Add(d) }

// windows is a test helper: totals for the standard 10s/60s/300s views.
func windows(r *LoadRing) (w10, w60, w300 LoadSample) {
	out := r.Windows(LoadWindows)
	return out[0], out[1], out[2]
}

func TestLoadRingSameSecondBurst(t *testing.T) {
	r := NewLoadRing()
	var clk fakeClock
	clk.install(r, 1_000_000)

	for i := 0; i < 100; i++ {
		r.Feed(LoadSample{Queries: 1, ExactHits: 1})
	}
	r.Feed(LoadSample{Queries: 3, Deduped: 3})

	w10, w60, w300 := windows(r)
	for _, w := range []LoadSample{w10, w60, w300} {
		if w.Queries != 103 || w.ExactHits != 100 || w.Deduped != 3 {
			t.Fatalf("burst totals = %+v, want queries=103 exact=100 dedup=3", w)
		}
	}
}

func TestLoadRingWindowRollOff(t *testing.T) {
	r := NewLoadRing()
	var clk fakeClock
	clk.install(r, 2_000_000)

	r.Feed(LoadSample{Queries: 5, WindowHits: 5})
	clk.advance(9) // old second is age 9: still inside the 10s window
	r.Feed(LoadSample{Queries: 1})

	w10, w60, _ := windows(r)
	if w10.Queries != 6 || w10.WindowHits != 5 {
		t.Fatalf("10s window = %+v, want queries=6 windowHits=5", w10)
	}

	clk.advance(1) // old second now age 10: out of 10s, still in 60s
	w10, w60, _ = windows(r)
	if w10.Queries != 1 || w10.WindowHits != 0 {
		t.Fatalf("10s window after roll-off = %+v, want queries=1", w10)
	}
	if w60.Queries != 6 || w60.WindowHits != 5 {
		t.Fatalf("60s window = %+v, want queries=6 windowHits=5", w60)
	}

	clk.advance(60) // both seconds out of 60s, still in 300s
	w10, w60, w300 := windows(r)
	if w10.Queries != 0 || w60.Queries != 0 {
		t.Fatalf("short windows not empty after advance: 10s=%+v 60s=%+v", w10, w60)
	}
	if w300.Queries != 6 {
		t.Fatalf("300s window = %+v, want queries=6", w300)
	}
}

func TestLoadRingGapBeyondRetention(t *testing.T) {
	r := NewLoadRing()
	var clk fakeClock
	clk.install(r, 3_000_000)

	r.Feed(LoadSample{Queries: 42, EngineSearches: 42})
	clk.advance(LoadRetentionSec + 700) // silence longer than the ring

	w10, w60, w300 := windows(r)
	if w10.Queries+w60.Queries+w300.Queries != 0 {
		t.Fatalf("windows not empty after gap > retention: %+v %+v %+v", w10, w60, w300)
	}

	// The ring must come back cleanly after the gap, including the
	// slots the old data occupied.
	r.Feed(LoadSample{Queries: 1, ExactHits: 1})
	_, _, w300 = windows(r)
	if w300.Queries != 1 || w300.ExactHits != 1 || w300.EngineSearches != 0 {
		t.Fatalf("post-gap totals = %+v, want queries=1 exact=1 searches=0", w300)
	}
}

// TestLoadRingStraddleRotation exercises a window that spans the ring
// seam (second index wrapping back to slot 0) and a slot being reused
// exactly one revolution later.
func TestLoadRingStraddleRotation(t *testing.T) {
	start := int64(loadRingSize*4000 - 1) // slot 511; next second wraps to slot 0
	r := NewLoadRing()
	var clk fakeClock
	clk.install(r, start)

	r.Feed(LoadSample{Queries: 2, ExactHits: 2})
	clk.advance(1) // slot 0
	r.Feed(LoadSample{Queries: 3, Deduped: 1})

	w10, _, _ := windows(r)
	if w10.Queries != 5 || w10.ExactHits != 2 || w10.Deduped != 1 {
		t.Fatalf("seam-straddling 10s window = %+v, want queries=5", w10)
	}

	// One full revolution later the same slots are reused: the stale
	// tallies must be zeroed on first touch, not added to.
	clk.advance(loadRingSize - 1) // back to slot 511, one revolution on
	r.Feed(LoadSample{Queries: 7})
	w10, _, w300 := windows(r)
	if w10.Queries != 7 || w10.ExactHits != 0 {
		t.Fatalf("reused-slot 10s window = %+v, want queries=7 exact=0", w10)
	}
	if w300.Queries != 7 {
		t.Fatalf("reused-slot 300s window = %+v, want queries=7 (old revolution dropped)", w300)
	}
}

func TestLoadRingConcurrentFeeders(t *testing.T) {
	r := NewLoadRing()
	var clk fakeClock
	clk.install(r, 5_000_000)

	const feeders, per = 8, 500
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%16 == 0 {
					clk.advance(1) // force concurrent rotations
				}
				r.Feed(LoadSample{Queries: 1, ExactHits: int64(f & 1)})
			}
		}(f)
	}
	wg.Wait()

	// Rotation may legitimately drop whole seconds behind the advancing
	// fake clock, but whatever survives must keep the partition: hits
	// never exceed arrivals, in any window.
	w10, w60, w300 := windows(r)
	for i, w := range []LoadSample{w10, w60, w300} {
		if w.ExactHits+w.WindowHits+w.Deduped > w.Queries {
			t.Fatalf("window %d violates partition: %+v", i, w)
		}
	}
	if w300.Queries > feeders*per {
		t.Fatalf("300s window overcounts: %d > %d fed", w300.Queries, feeders*per)
	}
}

// TestLoadRingScrapePartitionMidTraffic hammers snapshots while
// feeders run on the real clock: every windowed view must satisfy
// ExactHits+WindowHits+Deduped <= Queries, mid-rotation included.
func TestLoadRingScrapePartitionMidTraffic(t *testing.T) {
	r := NewLoadRing()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for f := 0; f < 4; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s := LoadSample{Queries: 1}
				switch i % 3 {
				case 0:
					s.ExactHits = 1
				case 1:
					s.WindowHits = 1
				default:
					s.EngineSearches = 1
					s.CountReason(ReasonNoExactEntry)
				}
				r.Feed(s)
			}
		}(f)
	}

	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, w := range r.Windows(LoadWindows) {
			if w.ExactHits+w.WindowHits+w.Deduped > w.Queries {
				close(stop)
				wg.Wait()
				t.Fatalf("scrape violates partition: %+v", w)
			}
			if w.MissNoExactEntry > w.Queries {
				close(stop)
				wg.Wait()
				t.Fatalf("reason tally exceeds arrivals: %+v", w)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestLoadRingFeedZeroAlloc(t *testing.T) {
	r := NewLoadRing()
	s := LoadSample{Queries: 1, ExactHits: 1, HoldNanos: 123}
	if n := testing.AllocsPerRun(200, func() { r.Feed(s) }); n != 0 {
		t.Fatalf("Feed allocates %.1f per op, want 0", n)
	}
	var nilRing *LoadRing
	if n := testing.AllocsPerRun(50, func() { nilRing.Feed(s) }); n != 0 {
		t.Fatalf("nil-ring Feed allocates %.1f per op, want 0", n)
	}
}

// BenchmarkLoadRingFeed pins the always-on load ring at zero
// allocations per feed; it self-fails on regression so the CI bench
// smoke catches it without inspecting -benchmem output.
func BenchmarkLoadRingFeed(b *testing.B) {
	r := NewLoadRing()
	s := LoadSample{Queries: 1, WindowHits: 1, MissOutsideWindows: 0}
	if n := testing.AllocsPerRun(100, func() { r.Feed(s) }); n != 0 {
		b.Fatalf("load-ring Feed allocates %.1f per op, want 0 (always-on path must stay allocation-free)", n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Feed(s)
	}
}

func TestReasonNames(t *testing.T) {
	want := map[Reason]string{
		ReasonNone:               "",
		ReasonUncacheable:        "uncacheable",
		ReasonNoExactEntry:       "no_exact_entry",
		ReasonWindowFamilyAbsent: "window_family_absent",
		ReasonOutsideWindows:     "outside_windows",
		ReasonEpochRaced:         "epoch_raced",
		ReasonPrivatePartition:   "private_partition",
		ReasonSingletonGroup:     "singleton_group",
		ReasonAblation:           "ablation",
	}
	for r, name := range want {
		if r.String() != name {
			t.Errorf("Reason(%d).String() = %q, want %q", r, r.String(), name)
		}
	}
	if Reason(200).String() != "" {
		t.Errorf("out-of-range reason must stringify empty")
	}
	for r := ReasonUncacheable; r <= ReasonEpochRaced; r++ {
		if !r.IsMiss() {
			t.Errorf("%v must be a miss reason", r)
		}
	}
	for _, r := range []Reason{ReasonNone, ReasonPrivatePartition, ReasonSingletonGroup, ReasonAblation} {
		if r.IsMiss() {
			t.Errorf("%v must not be a miss reason", r)
		}
	}
}

func TestLoadSampleCountReason(t *testing.T) {
	var s LoadSample
	for r := ReasonNone; r < NumReasons; r++ {
		s.CountReason(r)
	}
	if s.MissUncacheable != 1 || s.MissNoExactEntry != 1 || s.MissFamilyAbsent != 1 ||
		s.MissOutsideWindows != 1 || s.MissEpochRaced != 1 ||
		s.SoloPrivate != 1 || s.SoloSingleton != 1 || s.SoloAblation != 1 {
		t.Fatalf("CountReason coverage: %+v", s)
	}
	if s.Queries != 0 {
		t.Fatalf("CountReason must not touch Queries: %+v", s)
	}
}
