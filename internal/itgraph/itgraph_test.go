package itgraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// sched is shorthand for a one-interval schedule.
func sched(open, close string) temporal.Schedule {
	return temporal.MustSchedule(temporal.MustInterval(
		temporal.MustParse(open), temporal.MustParse(close)))
}

// smallVenue: hall - d1(8-16) - shop, hall - d2(always) - cafe,
// hall - d3(one-way, 6-22) -> store(private), entrance e to outdoors.
func smallVenue(t testing.TB) *model.Venue {
	t.Helper()
	b := model.NewBuilder("small")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 20, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(0, 10, 10, 20, 0))
	cafe := b.AddPartition("cafe", model.PublicPartition, geom.NewRect(10, 10, 20, 20, 0))
	store := b.AddPartition("store", model.PrivatePartition, geom.NewRect(20, 0, 30, 10, 0))
	out := b.Outdoors()

	d1 := b.AddDoor("d1", model.PublicDoor, geom.Pt(5, 10, 0), sched("8:00", "16:00"))
	d2 := b.AddDoor("d2", model.PublicDoor, geom.Pt(15, 10, 0), nil)
	d3 := b.AddDoor("d3", model.PrivateDoor, geom.Pt(20, 5, 0), sched("6:00", "22:00"))
	e := b.AddDoor("e", model.EntranceDoor, geom.Pt(0, 5, 0), sched("5:00", "23:00"))

	b.ConnectBi(d1, hall, shop)
	b.ConnectBi(d2, hall, cafe)
	b.ConnectOneWay(d3, hall, store)
	b.ConnectBi(e, hall, out)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGraphConstruction(t *testing.T) {
	g := MustNew(smallVenue(t))
	st := g.Stats()
	if st.Vertices != 5 || st.Doors != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.EdgesDirected != 7 { // 3 bi-doors (6 arcs) + 1 one-way
		t.Errorf("edges = %d, want 7", st.EdgesDirected)
	}
	// Checkpoints: 8:00, 16:00, 6:00, 22:00, 5:00, 23:00 -> 6 distinct.
	if st.Checkpoints != 6 {
		t.Errorf("checkpoints = %d, want 6 (%v)", st.Checkpoints, g.Checkpoints().Times())
	}
	if st.Slots != 7 {
		t.Errorf("slots = %d, want 7", st.Slots)
	}
	if st.TemporalDoors != 3 {
		t.Errorf("temporal doors = %d", st.TemporalDoors)
	}
	if !strings.Contains(st.String(), "|V|=5") {
		t.Errorf("Stats.String = %q", st.String())
	}
	if len(g.Edges()) != 7 {
		t.Errorf("Edges() = %d", len(g.Edges()))
	}
}

func TestLabels(t *testing.T) {
	v := smallVenue(t)
	g := MustNew(v)
	var hall, store model.PartitionID
	var d1 model.DoorID
	for _, p := range v.Partitions() {
		switch p.Name {
		case "hall":
			hall = p.ID
		case "store":
			store = p.ID
		}
	}
	for _, d := range v.Doors() {
		if d.Name == "d1" {
			d1 = d.ID
		}
	}
	vl := g.VertexLabel(hall)
	if vl.Kind != model.HallwayPartition || vl.DM.Size() != 4 {
		t.Errorf("hall label = kind %v, DM size %d", vl.Kind, vl.DM.Size())
	}
	if g.VertexLabel(store).Kind != model.PrivatePartition {
		t.Error("store label kind")
	}
	el := g.EdgeLabel(d1)
	if el.Kind != model.PublicDoor || len(el.ATIs) != 1 {
		t.Errorf("d1 label = %+v", el)
	}
	if el.ATIs[0].Open != temporal.Clock(8, 0, 0) {
		t.Errorf("d1 ATI = %v", el.ATIs)
	}
}

func TestSnapshotCorrectness(t *testing.T) {
	v := smallVenue(t)
	g := MustNew(v)
	// Every (door, random time) pair: snapshot membership must agree
	// exactly with the schedule.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3000; trial++ {
		at := temporal.TimeOfDay(rng.Float64() * 86400)
		snap := g.Snapshots().At(at)
		if !(snap.Start <= at && at < snap.End) {
			t.Fatalf("snapshot slot [%v,%v) does not contain %v", snap.Start, snap.End, at)
		}
		for _, d := range v.Doors() {
			want := d.ATIs.Contains(at)
			if got := snap.DoorOpen(d.ID); got != want {
				t.Fatalf("door %s at %v: snapshot=%v schedule=%v", d.Name, at, got, want)
			}
		}
	}
}

func TestSnapshotPrunedLeaveDoors(t *testing.T) {
	v := smallVenue(t)
	g := MustNew(v)
	var hall model.PartitionID
	for _, p := range v.Partitions() {
		if p.Name == "hall" {
			hall = p.ID
		}
	}
	// At 12:00 all four doors open; hall can leave through all 4.
	noon := g.Snapshots().At(temporal.Clock(12, 0, 0))
	if got := len(noon.LeaveDoors(hall)); got != 4 {
		t.Errorf("noon leave doors = %d, want 4", got)
	}
	// At 4:00 only d2 (always open) is open.
	night := g.Snapshots().At(temporal.Clock(4, 0, 0))
	if got := len(night.LeaveDoors(hall)); got != 1 {
		t.Errorf("4:00 leave doors = %d, want 1", got)
	}
	if night.OpenCount != 1 {
		t.Errorf("4:00 open count = %d", night.OpenCount)
	}
	if noon.MemoryBytes() <= night.MemoryBytes() {
		// Pruned lists shrink with closures; noon has strictly more doors.
		t.Errorf("memory: noon %d <= night %d", noon.MemoryBytes(), night.MemoryBytes())
	}
}

func TestSnapshotLazinessAndReuse(t *testing.T) {
	g := MustNew(smallVenue(t))
	ss := g.Snapshots()
	if ss.Builds() != 0 {
		t.Fatalf("builds before use = %d", ss.Builds())
	}
	ss.At(temporal.Clock(12, 0, 0))
	ss.At(temporal.Clock(12, 30, 0)) // same slot: no new build
	if ss.Builds() != 1 {
		t.Errorf("builds after same-slot reuse = %d, want 1", ss.Builds())
	}
	ss.At(temporal.Clock(4, 0, 0))
	if ss.Builds() != 2 {
		t.Errorf("builds = %d, want 2", ss.Builds())
	}
	ss.BuildAll()
	if ss.Builds() != ss.SlotCount() {
		t.Errorf("BuildAll: builds=%d slots=%d", ss.Builds(), ss.SlotCount())
	}
	if ss.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive after builds")
	}
}

func TestSnapshotSlotClamping(t *testing.T) {
	g := MustNew(smallVenue(t))
	lo := g.Snapshots().Slot(-5)
	if lo.Slot != 0 {
		t.Errorf("clamped low slot = %d", lo.Slot)
	}
	hi := g.Snapshots().Slot(999)
	if hi.Slot != g.Snapshots().SlotCount()-1 {
		t.Errorf("clamped high slot = %d", hi.Slot)
	}
}

func TestDoorSet(t *testing.T) {
	s := NewDoorSet(130)
	for _, d := range []model.DoorID{0, 1, 63, 64, 127, 129} {
		if s.Contains(d) {
			t.Errorf("fresh set contains %d", d)
		}
		s.Add(d)
		if !s.Contains(d) {
			t.Errorf("added %d not contained", d)
		}
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("removed 64 still present")
	}
	if !s.Contains(63) || !s.Contains(127) {
		t.Error("neighbours of removed bit lost")
	}
	if s.MemoryBytes() != 3*8 {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestSerialisationRoundTrip(t *testing.T) {
	v := smallVenue(t)
	var buf bytes.Buffer
	if err := Save(&buf, v); err != nil {
		t.Fatal(err)
	}
	v2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if v2.PartitionCount() != v.PartitionCount() || v2.DoorCount() != v.DoorCount() {
		t.Fatalf("round trip counts: %d/%d vs %d/%d",
			v2.PartitionCount(), v2.DoorCount(), v.PartitionCount(), v.DoorCount())
	}
	s1, s2 := v.Stats(), v2.Stats()
	if s1 != s2 {
		t.Errorf("stats changed:\n before %+v\n after  %+v", s1, s2)
	}
	// Schedules preserved exactly.
	for i := range v.Doors() {
		d1, d2 := v.Doors()[i], v2.Doors()[i]
		if d1.Name != d2.Name || d1.ATIs.String() != d2.ATIs.String() {
			t.Errorf("door %s schedule changed: %v vs %v", d1.Name, d1.ATIs, d2.ATIs)
		}
		if len(d1.Arcs) != len(d2.Arcs) {
			t.Errorf("door %s arcs changed", d1.Name)
		}
	}
	// Graphs built from both venues agree on snapshots.
	g1, g2 := MustNew(v), MustNew(v2)
	if g1.Checkpoints().Len() != g2.Checkpoints().Len() {
		t.Error("checkpoints changed")
	}
	for slot := 0; slot < g1.Snapshots().SlotCount(); slot++ {
		a, b := g1.Snapshots().Slot(slot), g2.Snapshots().Slot(slot)
		if a.OpenCount != b.OpenCount {
			t.Errorf("slot %d open count %d vs %d", slot, a.OpenCount, b.OpenCount)
		}
	}
}

func TestSerialisationWithOverrides(t *testing.T) {
	b := model.NewBuilder("ov")
	h0 := b.AddPartition("h0", model.HallwayPartition, geom.NewRect(0, 0, 5, 5, 0))
	h1 := b.AddPartition("h1", model.HallwayPartition, geom.NewRect(0, 0, 5, 5, 1))
	sw := b.AddStairwell("sw", geom.NewRect(5, 0, 8, 3, 0))
	lo := b.AddDoor("lo", model.StairDoor, geom.Pt(5, 1, 0), nil)
	hi := b.AddDoor("hi", model.StairDoor, geom.Pt(5, 1, 1), nil)
	b.ConnectBi(lo, h0, sw)
	b.ConnectBi(hi, sw, h1)
	b.SetDistance(sw, lo, hi, 20)
	v := b.MustBuild()

	var buf bytes.Buffer
	if err := Save(&buf, v); err != nil {
		t.Fatal(err)
	}
	v2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	swID, ok := model.PartitionID(0), false
	for _, p := range v2.Partitions() {
		if p.Kind == model.StairwellPartition {
			swID, ok = p.ID, true
			if p.TopFloor != 1 {
				t.Error("stairwell TopFloor lost")
			}
		}
	}
	if !ok {
		t.Fatal("stairwell lost")
	}
	doors := v2.DoorsOf(swID)
	if len(doors) != 2 {
		t.Fatalf("stairwell doors = %d", len(doors))
	}
	if d, ok := v2.DistOverride(swID, doors[0], doors[1]); !ok || d != 20 {
		t.Errorf("override lost: %v %v", d, ok)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []string{
		`{bad json`,
		`{"name":"x","partitions":[{"name":"p","kind":"NOPE","rect":[0,0,1,1],"floor":0}],"doors":[]}`,
		`{"name":"x","partitions":[{"name":"p","kind":"PBP","rect":[0,0,1,1],"floor":0}],
		  "doors":[{"name":"d","kind":"NOPE","x":0,"y":0,"floor":0,"arcs":[["p","p"]]}]}`,
		`{"name":"x","partitions":[{"name":"p","kind":"PBP","rect":[0,0,1,1],"floor":0}],
		  "doors":[{"name":"d","kind":"PBD","x":0,"y":0,"floor":0,"atis":["25:00-26:00"],"arcs":[]}]}`,
		`{"name":"x","partitions":[{"name":"p","kind":"PBP","rect":[0,0,1,1],"floor":0}],
		  "doors":[{"name":"d","kind":"PBD","x":0,"y":0,"floor":0,"arcs":[["p","ghost"]]}]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected load error", i)
		}
	}
}
