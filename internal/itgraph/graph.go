// Package itgraph implements the Indoor Temporal-variation Graph
// (IT-Graph) of Liu et al. (ICDE 2020, Section II-A):
//
//	G_IT(V, E, L_V, L_E)
//
// where V are indoor partitions, E are directed door transitions, vertex
// labels L_V carry (IDv, p-type, DM) and edge labels L_E carry
// (IDd, d-type, ATIs). The package also provides the time-dependent
// reduced graphs maintained by Graph_Update (Algorithm 3): one topology
// snapshot per checkpoint slot, each listing only the doors open during
// that slot.
package itgraph

import (
	"fmt"

	"indoorpath/internal/dmat"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// Graph is the IT-Graph over one venue: the venue topology, the
// distance matrices for its vertex labels, and the checkpoint set
// driving snapshot maintenance. Construction is O(|V| + |E| + DM cost);
// the graph is immutable and safe for concurrent readers.
type Graph struct {
	venue *model.Venue
	dm    *dmat.Set
	cps   temporal.CheckpointSet
	snaps *SnapshotSeries
}

// New builds the IT-Graph for a venue: computes every partition's
// distance matrix and collects the checkpoint set from door ATIs.
func New(v *model.Venue) (*Graph, error) {
	dm, err := dmat.Build(v)
	if err != nil {
		return nil, fmt.Errorf("itgraph: %w", err)
	}
	g := &Graph{venue: v, dm: dm, cps: v.Checkpoints()}
	g.snaps = newSnapshotSeries(g)
	return g, nil
}

// MustNew is New that panics on error, for tests and examples.
func MustNew(v *model.Venue) *Graph {
	g, err := New(v)
	if err != nil {
		panic(err)
	}
	return g
}

// Venue returns the underlying indoor space model.
func (g *Graph) Venue() *model.Venue { return g.venue }

// DM returns the distance-matrix set (the DM components of L_V).
func (g *Graph) DM() *dmat.Set { return g.dm }

// Checkpoints returns the set T of topology change instants.
func (g *Graph) Checkpoints() temporal.CheckpointSet { return g.cps }

// Snapshots returns the per-slot topology snapshot series (the reduced
// graphs maintained by Graph_Update).
func (g *Graph) Snapshots() *SnapshotSeries { return g.snaps }

// VertexLabel is L_V(v): the paper's 3-tuple (IDv, p-type, DM).
type VertexLabel struct {
	ID   model.PartitionID
	Kind model.PartitionKind
	DM   *dmat.Matrix
}

// VertexLabel returns the label of partition p.
func (g *Graph) VertexLabel(p model.PartitionID) VertexLabel {
	return VertexLabel{ID: p, Kind: g.venue.Partition(p).Kind, DM: g.dm.Matrix(p)}
}

// EdgeLabel is L_E(d): the paper's 3-tuple (IDd, d-type, ATIs).
type EdgeLabel struct {
	ID   model.DoorID
	Kind model.DoorKind
	ATIs temporal.Schedule
}

// EdgeLabel returns the label of door d.
func (g *Graph) EdgeLabel(d model.DoorID) EdgeLabel {
	door := g.venue.Door(d)
	return EdgeLabel{ID: d, Kind: door.Kind, ATIs: door.ATIs}
}

// Edge is one directed edge (vi, vj, dk) of E.
type Edge struct {
	From, To model.PartitionID
	Door     model.DoorID
}

// Edges enumerates E, ordered by door then arc.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, d := range g.venue.Doors() {
		for _, a := range d.Arcs {
			out = append(out, Edge{From: a.From, To: a.To, Door: d.ID})
		}
	}
	return out
}

// Stats summarises the graph for logs and EXPERIMENTS.md.
type Stats struct {
	Vertices, EdgesDirected int
	Doors                   int
	Checkpoints             int
	Slots                   int
	DMBytes                 int
	MaxDoorsPerPartition    int
	TemporalDoors           int
}

// Stats computes graph statistics.
func (g *Graph) Stats() Stats {
	vs := g.venue.Stats()
	return Stats{
		Vertices:             vs.Partitions,
		EdgesDirected:        vs.ArcsTotal,
		Doors:                vs.Doors,
		Checkpoints:          g.cps.Len(),
		Slots:                g.cps.SlotCount(),
		DMBytes:              g.dm.MemoryBytes(),
		MaxDoorsPerPartition: g.dm.MaxDoorsPerPartition(),
		TemporalDoors:        vs.TemporalDoors,
	}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("IT-Graph: |V|=%d |E|=%d doors=%d (temporal=%d) |T|=%d slots=%d DM=%dB maxDeg=%d",
		s.Vertices, s.EdgesDirected, s.Doors, s.TemporalDoors, s.Checkpoints, s.Slots, s.DMBytes, s.MaxDoorsPerPartition)
}
