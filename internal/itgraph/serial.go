package itgraph

import (
	"encoding/json"
	"fmt"
	"io"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// VenueDoc is the JSON document form of a venue: partition and door
// tables (the IT-Graph's partition table and door table), arcs by
// partition name, and distance overrides. It is the storage format of
// cmd/venuegen and cmd/itspq.
type VenueDoc struct {
	Name       string         `json:"name"`
	Partitions []PartitionDoc `json:"partitions"`
	Doors      []DoorDoc      `json:"doors"`
	Overrides  []OverrideDoc  `json:"distance_overrides,omitempty"`
}

// PartitionDoc serialises one partition.
type PartitionDoc struct {
	Name  string     `json:"name"`
	Kind  string     `json:"kind"` // PBP | PRP | HALL | STAIR | OUT
	Rect  [4]float64 `json:"rect"` // minx, miny, maxx, maxy
	Floor int        `json:"floor"`
}

// DoorDoc serialises one door with its ATIs and directed arcs.
type DoorDoc struct {
	Name  string      `json:"name"`
	Kind  string      `json:"kind"` // PBD | PRD | VIRT | STAIR | ENTR
	X     float64     `json:"x"`
	Y     float64     `json:"y"`
	Floor int         `json:"floor"`
	ATIs  []string    `json:"atis,omitempty"` // "8:00-16:00"; empty = always open
	Arcs  [][2]string `json:"arcs"`           // [from, to] partition names
}

// OverrideDoc serialises one explicit intra-partition distance.
type OverrideDoc struct {
	Partition string  `json:"partition"`
	DoorA     string  `json:"door_a"`
	DoorB     string  `json:"door_b"`
	Dist      float64 `json:"dist"`
}

var partKindNames = map[model.PartitionKind]string{
	model.PublicPartition:    "PBP",
	model.PrivatePartition:   "PRP",
	model.HallwayPartition:   "HALL",
	model.StairwellPartition: "STAIR",
	model.OutdoorPartition:   "OUT",
}

var doorKindNames = map[model.DoorKind]string{
	model.PublicDoor:   "PBD",
	model.PrivateDoor:  "PRD",
	model.VirtualDoor:  "VIRT",
	model.StairDoor:    "STAIR",
	model.EntranceDoor: "ENTR",
}

func partKindFromName(s string) (model.PartitionKind, error) {
	for k, n := range partKindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("itgraph: unknown partition kind %q", s)
}

func doorKindFromName(s string) (model.DoorKind, error) {
	for k, n := range doorKindNames {
		if n == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("itgraph: unknown door kind %q", s)
}

// Encode converts a venue to its document form.
func Encode(v *model.Venue) *VenueDoc {
	doc := &VenueDoc{Name: v.Name}
	for _, p := range v.Partitions() {
		doc.Partitions = append(doc.Partitions, PartitionDoc{
			Name:  p.Name,
			Kind:  partKindNames[p.Kind],
			Rect:  [4]float64{p.Rect.MinX, p.Rect.MinY, p.Rect.MaxX, p.Rect.MaxY},
			Floor: p.Rect.Floor,
		})
	}
	for _, d := range v.Doors() {
		dd := DoorDoc{
			Name:  d.Name,
			Kind:  doorKindNames[d.Kind],
			X:     d.Pos.X,
			Y:     d.Pos.Y,
			Floor: d.Pos.Floor,
		}
		if !d.ATIs.AlwaysOpenAllDay() {
			for _, iv := range d.ATIs {
				dd.ATIs = append(dd.ATIs, fmt.Sprintf("%v-%v", iv.Open, iv.Close))
			}
		}
		for _, a := range d.Arcs {
			dd.Arcs = append(dd.Arcs, [2]string{
				v.Partition(a.From).Name, v.Partition(a.To).Name,
			})
		}
		doc.Doors = append(doc.Doors, dd)
	}
	for _, p := range v.Partitions() {
		if !v.HasDistOverrides(p.ID) {
			continue
		}
		doors := v.DoorsOf(p.ID)
		for i := 0; i < len(doors); i++ {
			for j := i + 1; j < len(doors); j++ {
				if dist, ok := v.DistOverride(p.ID, doors[i], doors[j]); ok {
					doc.Overrides = append(doc.Overrides, OverrideDoc{
						Partition: p.Name,
						DoorA:     v.Door(doors[i]).Name,
						DoorB:     v.Door(doors[j]).Name,
						Dist:      dist,
					})
				}
			}
		}
	}
	return doc
}

// Decode reconstructs a venue from its document form.
func (doc *VenueDoc) Decode() (*model.Venue, error) {
	b := model.NewBuilder(doc.Name)
	for _, pd := range doc.Partitions {
		kind, err := partKindFromName(pd.Kind)
		if err != nil {
			return nil, err
		}
		rect := geom.NewRect(pd.Rect[0], pd.Rect[1], pd.Rect[2], pd.Rect[3], pd.Floor)
		if kind == model.StairwellPartition {
			b.AddStairwell(pd.Name, rect)
		} else {
			b.AddPartition(pd.Name, kind, rect)
		}
	}
	for _, dd := range doc.Doors {
		kind, err := doorKindFromName(dd.Kind)
		if err != nil {
			return nil, err
		}
		var sched temporal.Schedule
		if len(dd.ATIs) > 0 {
			var ivs []temporal.Interval
			for _, s := range dd.ATIs {
				iv, err := temporal.ParseInterval(s)
				if err != nil {
					return nil, fmt.Errorf("itgraph: door %s: %w", dd.Name, err)
				}
				ivs = append(ivs, iv)
			}
			sched, err = temporal.NewSchedule(ivs...)
			if err != nil {
				return nil, fmt.Errorf("itgraph: door %s: %w", dd.Name, err)
			}
		}
		did := b.AddDoor(dd.Name, kind, geom.Pt(dd.X, dd.Y, dd.Floor), sched)
		for _, arc := range dd.Arcs {
			from, ok := b.PartitionByName(arc[0])
			if !ok {
				return nil, fmt.Errorf("itgraph: door %s: unknown partition %q", dd.Name, arc[0])
			}
			to, ok := b.PartitionByName(arc[1])
			if !ok {
				return nil, fmt.Errorf("itgraph: door %s: unknown partition %q", dd.Name, arc[1])
			}
			b.ConnectOneWay(did, from, to)
		}
	}
	for _, od := range doc.Overrides {
		p, ok := b.PartitionByName(od.Partition)
		if !ok {
			return nil, fmt.Errorf("itgraph: override: unknown partition %q", od.Partition)
		}
		da, ok := b.DoorByName(od.DoorA)
		if !ok {
			return nil, fmt.Errorf("itgraph: override: unknown door %q", od.DoorA)
		}
		db, ok := b.DoorByName(od.DoorB)
		if !ok {
			return nil, fmt.Errorf("itgraph: override: unknown door %q", od.DoorB)
		}
		b.SetDistance(p, da, db, od.Dist)
	}
	return b.Build()
}

// Save writes the venue as indented JSON.
func Save(w io.Writer, v *model.Venue) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Encode(v))
}

// Load reads a venue from JSON.
func Load(r io.Reader) (*model.Venue, error) {
	var doc VenueDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("itgraph: decode venue: %w", err)
	}
	return doc.Decode()
}
