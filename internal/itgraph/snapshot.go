package itgraph

import (
	"sync"
	"sync/atomic"

	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// DoorSet is a bitset over door IDs.
type DoorSet []uint64

// NewDoorSet returns a set sized for n doors.
func NewDoorSet(n int) DoorSet { return make(DoorSet, (n+63)/64) }

// Add inserts door d.
func (s DoorSet) Add(d model.DoorID) { s[d>>6] |= 1 << (uint(d) & 63) }

// Remove deletes door d.
func (s DoorSet) Remove(d model.DoorID) { s[d>>6] &^= 1 << (uint(d) & 63) }

// Contains reports whether door d is in the set.
func (s DoorSet) Contains(d model.DoorID) bool {
	return s[d>>6]&(1<<(uint(d)&63)) != 0
}

// MemoryBytes returns the set footprint.
func (s DoorSet) MemoryBytes() int { return len(s) * 8 }

// Snapshot is the reduced IT-Graph for one checkpoint slot
// [Start, End): the doors open throughout the slot and, per partition,
// the pruned leaveable-door lists (the paper's P2D^cp mapping produced
// by Graph_Update, Algorithm 3). Between two consecutive checkpoints
// the topology is constant, so one snapshot serves every query instant
// within its slot.
type Snapshot struct {
	Slot       int
	Start, End temporal.TimeOfDay
	OpenCount  int

	open      DoorSet
	leaveOpen [][]model.DoorID // pruned P2D◁ per partition
}

// DoorOpen reports whether door d is open during the slot — an O(1)
// bitset probe, the core saving of the asynchronous check.
func (s *Snapshot) DoorOpen(d model.DoorID) bool { return s.open.Contains(d) }

// LeaveDoors returns the pruned P2D◁(p): doors through which one can
// leave partition p during this slot.
func (s *Snapshot) LeaveDoors(p model.PartitionID) []model.DoorID {
	return s.leaveOpen[p]
}

// MemoryBytes estimates the snapshot footprint (bitset + pruned lists),
// reported as part of the ITG/A memory cost in Fig. 7.
func (s *Snapshot) MemoryBytes() int {
	b := s.open.MemoryBytes() + 3*8 // bitset + slot header words
	for _, l := range s.leaveOpen {
		b += 24 + 4*len(l) // slice header + door ids
	}
	return b
}

// SnapshotSeries lazily materialises snapshots per checkpoint slot and
// caches them, mirroring the paper's asynchronous maintenance: a
// snapshot is (re)built only when some arrival time first crosses into
// its slot, then reused. It is safe for concurrent use and optimised
// for the concurrent serving path: steady-state lookups are a single
// atomic load with no lock, while first-use materialisation
// double-checks under a mutex so Graph_Update still runs at most once
// per slot. A materialised Snapshot is immutable, so the pointer may be
// shared freely across goroutines.
type SnapshotSeries struct {
	g *Graph

	slots []atomic.Pointer[Snapshot]

	mu     sync.Mutex // serialises builds only; reads never take it
	builds atomic.Int64
}

func newSnapshotSeries(g *Graph) *SnapshotSeries {
	return &SnapshotSeries{g: g, slots: make([]atomic.Pointer[Snapshot], g.cps.SlotCount())}
}

// At returns the snapshot for the slot containing instant t.
func (ss *SnapshotSeries) At(t temporal.TimeOfDay) *Snapshot {
	return ss.Slot(ss.g.cps.SlotOf(t))
}

// Slot returns snapshot i, building it on first use (Graph_Update).
func (ss *SnapshotSeries) Slot(i int) *Snapshot {
	if i < 0 {
		i = 0
	}
	if i >= len(ss.slots) {
		i = len(ss.slots) - 1
	}
	if s := ss.slots[i].Load(); s != nil {
		return s
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if s := ss.slots[i].Load(); s != nil {
		return s // another goroutine built it while we waited
	}
	s := ss.build(i)
	ss.slots[i].Store(s)
	ss.builds.Add(1)
	return s
}

// Builds returns how many Graph_Update executions have run, used by
// tests and the experiment harness to verify snapshot reuse.
func (ss *SnapshotSeries) Builds() int { return int(ss.builds.Load()) }

// BuildAll materialises every slot eagerly (used to amortise all
// Graph_Update work before timed benchmark sections).
func (ss *SnapshotSeries) BuildAll() {
	for i := 0; i < len(ss.slots); i++ {
		ss.Slot(i)
	}
}

// SlotCount returns the number of slots.
func (ss *SnapshotSeries) SlotCount() int { return len(ss.slots) }

// MemoryBytes sums the footprints of currently materialised snapshots.
func (ss *SnapshotSeries) MemoryBytes() int {
	total := 0
	for i := range ss.slots {
		if s := ss.slots[i].Load(); s != nil {
			total += s.MemoryBytes()
		}
	}
	return total
}

// build is Graph_Update (Algorithm 3) for slot i: start from the full
// topology G0 and drop every door closed during the slot, producing the
// pruned P2D mappings.
func (ss *SnapshotSeries) build(i int) *Snapshot {
	v := ss.g.venue
	cps := ss.g.cps
	start, end := cps.SlotStart(i), cps.SlotEnd(i)
	s := &Snapshot{
		Slot: i, Start: start, End: end,
		open:      NewDoorSet(v.DoorCount()),
		leaveOpen: make([][]model.DoorID, v.PartitionCount()),
	}
	// A door's openness is constant within the slot (slot boundaries are
	// exactly the ATI boundaries), so testing the slot start suffices.
	for _, d := range v.Doors() {
		if d.ATIs.Contains(start) {
			s.open.Add(d.ID)
			s.OpenCount++
		}
	}
	for p := 0; p < v.PartitionCount(); p++ {
		full := v.LeaveDoors(model.PartitionID(p))
		var pruned []model.DoorID
		for _, d := range full {
			if s.open.Contains(d) {
				pruned = append(pruned, d)
			}
		}
		s.leaveOpen[p] = pruned
	}
	return s
}
