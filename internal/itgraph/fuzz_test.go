package itgraph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad: venue JSON loading must never panic, and any document it
// accepts must build a venue that survives a save/load round trip.
func FuzzLoad(f *testing.F) {
	// Seed with a real venue document and broken variants.
	var buf bytes.Buffer
	if err := Save(&buf, smallVenue(f)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{}`)
	f.Add(`{"name":"x","partitions":[],"doors":[]}`)
	f.Add(`{"name":"x","partitions":[{"name":"p","kind":"PBP","rect":[0,0,1,1],"floor":0}],"doors":[]}`)
	f.Add(`{"name":"x","partitions":[{"name":"p","kind":"ZZZ","rect":[0,0,1,1],"floor":0}],"doors":[]}`)
	f.Add(`not json at all`)
	f.Add(`{"doors":[{"name":"d","kind":"PBD","arcs":[["a","b"]]}]}`)

	f.Fuzz(func(t *testing.T, doc string) {
		v, err := Load(strings.NewReader(doc))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Save(&out, v); err != nil {
			t.Fatalf("accepted venue failed to save: %v", err)
		}
		v2, err := Load(&out)
		if err != nil {
			t.Fatalf("saved venue failed to reload: %v", err)
		}
		if v2.PartitionCount() != v.PartitionCount() || v2.DoorCount() != v.DoorCount() {
			t.Fatal("round trip changed counts")
		}
	})
}
