package geom

import (
	"fmt"
	"math"
)

// GridIndex is a uniform spatial grid over rectangles, used for point
// location (mapping an indoor point to its covering partition) in O(1)
// expected time. One index covers one floor.
type GridIndex struct {
	floor      int
	bounds     Rect
	cellSize   float64
	cols, rows int
	cells      [][]int32 // cell -> ids of rects overlapping the cell
	rects      []Rect
	ids        []int32
}

// NewGridIndex indexes the given rectangles (with external ids) on one
// floor. cellSize <= 0 picks a size that targets a handful of rectangles
// per cell.
func NewGridIndex(floor int, rects []Rect, ids []int32, cellSize float64) (*GridIndex, error) {
	if len(rects) != len(ids) {
		return nil, fmt.Errorf("geom: %d rects but %d ids", len(rects), len(ids))
	}
	g := &GridIndex{floor: floor, rects: rects, ids: ids}
	if len(rects) == 0 {
		g.cols, g.rows, g.cellSize = 1, 1, 1
		g.cells = make([][]int32, 1)
		return g, nil
	}
	b := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1), Floor: floor}
	for i, r := range rects {
		if r.Floor != floor {
			return nil, fmt.Errorf("geom: rect %d on floor %d, index floor %d", i, r.Floor, floor)
		}
		b.MinX = math.Min(b.MinX, r.MinX)
		b.MinY = math.Min(b.MinY, r.MinY)
		b.MaxX = math.Max(b.MaxX, r.MaxX)
		b.MaxY = math.Max(b.MaxY, r.MaxY)
	}
	g.bounds = b
	if cellSize <= 0 {
		// Aim for ~1 rect per cell on average, assuming roughly uniform
		// tiling of the venue footprint by partitions.
		area := math.Max(b.Area(), 1)
		cellSize = math.Sqrt(area / float64(len(rects)))
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	g.cellSize = cellSize
	g.cols = int(math.Ceil(math.Max(b.Width(), Eps)/cellSize)) + 1
	g.rows = int(math.Ceil(math.Max(b.Height(), Eps)/cellSize)) + 1
	g.cells = make([][]int32, g.cols*g.rows)
	for i, r := range rects {
		c0, r0 := g.cellOf(r.MinX, r.MinY)
		c1, r1 := g.cellOf(r.MaxX, r.MaxY)
		for cy := r0; cy <= r1; cy++ {
			for cx := c0; cx <= c1; cx++ {
				k := cy*g.cols + cx
				g.cells[k] = append(g.cells[k], int32(i))
			}
		}
	}
	return g, nil
}

func (g *GridIndex) cellOf(x, y float64) (cx, cy int) {
	cx = int((x - g.bounds.MinX) / g.cellSize)
	cy = int((y - g.bounds.MinY) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

// Locate returns the ids of all indexed rectangles containing p, in
// insertion order. A point on a shared boundary reports both neighbours.
func (g *GridIndex) Locate(p Point) []int32 {
	if p.Floor != g.floor || len(g.rects) == 0 {
		return nil
	}
	cx, cy := g.cellOf(p.X, p.Y)
	var out []int32
	for _, i := range g.cells[cy*g.cols+cx] {
		if g.rects[i].Contains(p) {
			out = append(out, g.ids[i])
		}
	}
	return out
}

// LocateFirst returns the id of one rectangle containing p, preferring
// the one whose center is nearest (stable for boundary points), and ok
// reports whether any was found.
func (g *GridIndex) LocateFirst(p Point) (int32, bool) {
	if p.Floor != g.floor || len(g.rects) == 0 {
		return 0, false
	}
	cx, cy := g.cellOf(p.X, p.Y)
	best := int32(-1)
	bestDist := math.Inf(1)
	for _, i := range g.cells[cy*g.cols+cx] {
		if g.rects[i].Contains(p) {
			d := g.rects[i].Center().DistXY(p)
			if d < bestDist {
				bestDist = d
				best = g.ids[i]
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Len returns the number of indexed rectangles.
func (g *GridIndex) Len() int { return len(g.rects) }

// Bounds returns the indexed extent.
func (g *GridIndex) Bounds() Rect { return g.bounds }
