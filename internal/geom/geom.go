// Package geom provides the 2-D geometry substrate used by the indoor
// space model: points with a floor coordinate, axis-aligned rectangles,
// rectilinear polygons, and the predicates (containment, segment
// intersection, visibility) needed for distance-matrix construction and
// point location.
//
// All linear units are metres. Floors are integers; geometry is planar
// per floor and floors are connected only through explicit stairwells in
// the model layer.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used for geometric comparisons. Venue coordinates
// are metres with sub-centimetre precision, so 1e-7 is far below any
// meaningful feature size while absorbing float rounding.
const Eps = 1e-7

// Point is a location on a floor.
type Point struct {
	X, Y  float64
	Floor int
}

// Pt is shorthand for Point{x, y, floor}.
func Pt(x, y float64, floor int) Point { return Point{X: x, Y: y, Floor: floor} }

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f, F%d)", p.X, p.Y, p.Floor)
}

// Dist returns the Euclidean distance to q. Points on different floors
// have no planar distance; Dist returns +Inf in that case so that callers
// relying on it for routing treat cross-floor pairs as unreachable unless
// connected by an explicit stairwell.
func (p Point) Dist(q Point) float64 {
	if p.Floor != q.Floor {
		return math.Inf(1)
	}
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistXY returns the planar Euclidean distance ignoring floors.
func (p Point) DistXY(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Eq reports whether p and q coincide within Eps on the same floor.
func (p Point) Eq(q Point) bool {
	return p.Floor == q.Floor && math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Rect is an axis-aligned rectangle on a single floor, the canonical
// partition shape after decomposition. MinX <= MaxX and MinY <= MaxY hold
// for every Rect produced by NewRect or Canon.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
	Floor                  int
}

// NewRect builds a canonical rectangle from two opposite corners.
func NewRect(x1, y1, x2, y2 float64, floor int) Rect {
	return Rect{
		MinX: math.Min(x1, x2), MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2), MaxY: math.Max(y1, y2),
		Floor: floor,
	}
}

// Canon returns r with min/max corners ordered.
func (r Rect) Canon() Rect {
	return NewRect(r.MinX, r.MinY, r.MaxX, r.MaxY, r.Floor)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%.1f,%.1f %.1fx%.1f F%d]", r.MinX, r.MinY, r.Width(), r.Height(), r.Floor)
}

// Width returns the X extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the Y extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area in square metres.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the rectangle's centroid.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2, Floor: r.Floor}
}

// Contains reports whether p lies in r (boundary inclusive, within Eps).
func (r Rect) Contains(p Point) bool {
	if p.Floor != r.Floor {
		return false
	}
	return p.X >= r.MinX-Eps && p.X <= r.MaxX+Eps &&
		p.Y >= r.MinY-Eps && p.Y <= r.MaxY+Eps
}

// ContainsXY is Contains ignoring the floor coordinate.
func (r Rect) ContainsXY(x, y float64) bool {
	return x >= r.MinX-Eps && x <= r.MaxX+Eps && y >= r.MinY-Eps && y <= r.MaxY+Eps
}

// Intersects reports whether r and s overlap (touching edges count) on the
// same floor.
func (r Rect) Intersects(s Rect) bool {
	if r.Floor != s.Floor {
		return false
	}
	return r.MinX <= s.MaxX+Eps && s.MinX <= r.MaxX+Eps &&
		r.MinY <= s.MaxY+Eps && s.MinY <= r.MaxY+Eps
}

// OverlapsInterior reports whether r and s share interior area (touching
// edges do not count).
func (r Rect) OverlapsInterior(s Rect) bool {
	if r.Floor != s.Floor {
		return false
	}
	return r.MinX < s.MaxX-Eps && s.MinX < r.MaxX-Eps &&
		r.MinY < s.MaxY-Eps && s.MinY < r.MaxY-Eps
}

// SharedEdge returns the segment along which r and s touch, if their
// boundaries share a segment of positive length. ok is false when the
// rectangles do not abut (or merely touch at a corner). The returned
// segment is the common boundary portion; doors between adjacent
// partitions are conventionally placed at its midpoint.
func (r Rect) SharedEdge(s Rect) (seg Segment, ok bool) {
	if r.Floor != s.Floor {
		return Segment{}, false
	}
	// Vertical contact: r's right edge on s's left edge or vice versa.
	if math.Abs(r.MaxX-s.MinX) <= Eps || math.Abs(s.MaxX-r.MinX) <= Eps {
		x := r.MaxX
		if math.Abs(s.MaxX-r.MinX) <= Eps {
			x = r.MinX
		}
		lo := math.Max(r.MinY, s.MinY)
		hi := math.Min(r.MaxY, s.MaxY)
		if hi-lo > Eps {
			return Segment{A: Pt(x, lo, r.Floor), B: Pt(x, hi, r.Floor)}, true
		}
		return Segment{}, false
	}
	// Horizontal contact.
	if math.Abs(r.MaxY-s.MinY) <= Eps || math.Abs(s.MaxY-r.MinY) <= Eps {
		y := r.MaxY
		if math.Abs(s.MaxY-r.MinY) <= Eps {
			y = r.MinY
		}
		lo := math.Max(r.MinX, s.MinX)
		hi := math.Min(r.MaxX, s.MaxX)
		if hi-lo > Eps {
			return Segment{A: Pt(lo, y, r.Floor), B: Pt(hi, y, r.Floor)}, true
		}
		return Segment{}, false
	}
	return Segment{}, false
}

// ClampPoint returns the point of r closest to p (p itself when inside).
func (r Rect) ClampPoint(p Point) Point {
	return Point{
		X:     math.Max(r.MinX, math.Min(r.MaxX, p.X)),
		Y:     math.Max(r.MinY, math.Min(r.MaxY, p.Y)),
		Floor: r.Floor,
	}
}

// Segment is a line segment between two points on one floor.
type Segment struct {
	A, B Point
}

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.DistXY(s.B) }

// Mid returns the segment midpoint.
func (s Segment) Mid() Point {
	return Point{X: (s.A.X + s.B.X) / 2, Y: (s.A.Y + s.B.Y) / 2, Floor: s.A.Floor}
}

// cross returns the z-component of (b-a) x (c-a).
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// onSegment reports whether c, known collinear with [a,b], lies on it.
func onSegment(a, b, c Point) bool {
	return math.Min(a.X, b.X)-Eps <= c.X && c.X <= math.Max(a.X, b.X)+Eps &&
		math.Min(a.Y, b.Y)-Eps <= c.Y && c.Y <= math.Max(a.Y, b.Y)+Eps
}

// SegmentsIntersect reports whether segments [a,b] and [c,d] intersect,
// including touching endpoints and collinear overlap.
func SegmentsIntersect(a, b, c, d Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	if ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps)) {
		return true
	}
	switch {
	case math.Abs(d1) <= Eps && onSegment(c, d, a):
		return true
	case math.Abs(d2) <= Eps && onSegment(c, d, b):
		return true
	case math.Abs(d3) <= Eps && onSegment(a, b, c):
		return true
	case math.Abs(d4) <= Eps && onSegment(a, b, d):
		return true
	}
	return false
}

// SegmentsCross reports whether the open interiors of [a,b] and [c,d]
// properly cross (shared endpoints and mere touches do not count). This is
// the predicate used for visibility tests, where grazing a polygon vertex
// must not block the sight line.
func SegmentsCross(a, b, c, d Point) bool {
	d1 := cross(c, d, a)
	d2 := cross(c, d, b)
	d3 := cross(a, b, c)
	d4 := cross(a, b, d)
	return ((d1 > Eps && d2 < -Eps) || (d1 < -Eps && d2 > Eps)) &&
		((d3 > Eps && d4 < -Eps) || (d3 < -Eps && d4 > Eps))
}
