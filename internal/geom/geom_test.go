package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2, 0), Pt(1, 2, 0), 0},
		{"unit x", Pt(0, 0, 0), Pt(1, 0, 0), 1},
		{"3-4-5", Pt(0, 0, 0), Pt(3, 4, 0), 5},
		{"negative coords", Pt(-3, -4, 2), Pt(0, 0, 2), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > Eps {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestPointDistCrossFloor(t *testing.T) {
	if d := Pt(0, 0, 0).Dist(Pt(0, 0, 1)); !math.IsInf(d, 1) {
		t.Errorf("cross-floor Dist = %v, want +Inf", d)
	}
	if d := Pt(0, 0, 0).DistXY(Pt(3, 4, 1)); math.Abs(d-5) > Eps {
		t.Errorf("cross-floor DistXY = %v, want 5", d)
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(ax, ay, 0), Pt(bx, by, 0), Pt(cx, cy, 0)
		if math.Abs(a.Dist(b)-b.Dist(a)) > 1e-9 {
			return false
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRectCanonAndContains(t *testing.T) {
	r := NewRect(10, 10, 0, 0, 1)
	if r.MinX != 0 || r.MinY != 0 || r.MaxX != 10 || r.MaxY != 10 {
		t.Fatalf("NewRect did not canonicalise: %+v", r)
	}
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Pt(5, 5, 1), true},
		{"corner", Pt(0, 0, 1), true},
		{"edge", Pt(10, 5, 1), true},
		{"outside x", Pt(10.1, 5, 1), false},
		{"outside y", Pt(5, -0.1, 1), false},
		{"wrong floor", Pt(5, 5, 0), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.Contains(tc.p); got != tc.want {
				t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(2, 3, 6, 9, 0)
	if w := r.Width(); w != 4 {
		t.Errorf("Width = %v, want 4", w)
	}
	if h := r.Height(); h != 6 {
		t.Errorf("Height = %v, want 6", h)
	}
	if a := r.Area(); a != 24 {
		t.Errorf("Area = %v, want 24", a)
	}
	if c := r.Center(); !c.Eq(Pt(4, 6, 0)) {
		t.Errorf("Center = %v, want (4,6)", c)
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(0, 0, 10, 10, 0)
	tests := []struct {
		name     string
		b        Rect
		hit, ovl bool
	}{
		{"overlap", NewRect(5, 5, 15, 15, 0), true, true},
		{"touch edge", NewRect(10, 0, 20, 10, 0), true, false},
		{"disjoint", NewRect(11, 11, 20, 20, 0), false, false},
		{"contained", NewRect(2, 2, 3, 3, 0), true, true},
		{"other floor", NewRect(5, 5, 15, 15, 1), false, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.Intersects(tc.b); got != tc.hit {
				t.Errorf("Intersects = %v, want %v", got, tc.hit)
			}
			if got := a.OverlapsInterior(tc.b); got != tc.ovl {
				t.Errorf("OverlapsInterior = %v, want %v", got, tc.ovl)
			}
		})
	}
}

func TestSharedEdge(t *testing.T) {
	a := NewRect(0, 0, 10, 10, 0)
	b := NewRect(10, 2, 20, 8, 0)
	seg, ok := a.SharedEdge(b)
	if !ok {
		t.Fatal("expected shared edge")
	}
	if seg.Len() != 6 {
		t.Errorf("shared edge length = %v, want 6", seg.Len())
	}
	if m := seg.Mid(); !m.Eq(Pt(10, 5, 0)) {
		t.Errorf("midpoint = %v, want (10,5)", m)
	}

	c := NewRect(0, 10, 10, 20, 0) // touches a along y=10
	seg, ok = a.SharedEdge(c)
	if !ok || seg.Len() != 10 {
		t.Fatalf("horizontal shared edge: ok=%v len=%v", ok, seg.Len())
	}

	d := NewRect(10, 10, 20, 20, 0) // corner touch only
	if _, ok := a.SharedEdge(d); ok {
		t.Error("corner touch must not yield a shared edge")
	}
	e := NewRect(30, 30, 40, 40, 0)
	if _, ok := a.SharedEdge(e); ok {
		t.Error("disjoint rects must not yield a shared edge")
	}
}

func TestSharedEdgeSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		a := NewRect(rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, rng.Float64()*50, 0)
		// Construct b sharing a's right edge with random overlap.
		b := NewRect(a.MaxX, a.MinY+rng.Float64()*10-5, a.MaxX+10, a.MaxY+rng.Float64()*10-5, 0)
		s1, ok1 := a.SharedEdge(b)
		s2, ok2 := b.SharedEdge(a)
		if ok1 != ok2 {
			t.Fatalf("asymmetric SharedEdge ok: %v vs %v (a=%v b=%v)", ok1, ok2, a, b)
		}
		if ok1 && math.Abs(s1.Len()-s2.Len()) > Eps {
			t.Fatalf("asymmetric SharedEdge len: %v vs %v", s1.Len(), s2.Len())
		}
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		name       string
		a, b, c, d Point
		want       bool
	}{
		{"crossing", Pt(0, 0, 0), Pt(10, 10, 0), Pt(0, 10, 0), Pt(10, 0, 0), true},
		{"parallel", Pt(0, 0, 0), Pt(10, 0, 0), Pt(0, 1, 0), Pt(10, 1, 0), false},
		{"touching endpoint", Pt(0, 0, 0), Pt(5, 5, 0), Pt(5, 5, 0), Pt(10, 0, 0), true},
		{"collinear overlap", Pt(0, 0, 0), Pt(10, 0, 0), Pt(5, 0, 0), Pt(15, 0, 0), true},
		{"collinear disjoint", Pt(0, 0, 0), Pt(4, 0, 0), Pt(5, 0, 0), Pt(15, 0, 0), false},
		{"T junction", Pt(0, 0, 0), Pt(10, 0, 0), Pt(5, -5, 0), Pt(5, 0, 0), true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SegmentsIntersect(tc.a, tc.b, tc.c, tc.d); got != tc.want {
				t.Errorf("SegmentsIntersect = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSegmentsCross(t *testing.T) {
	// Proper crossing counts; touching does not.
	if !SegmentsCross(Pt(0, 0, 0), Pt(10, 10, 0), Pt(0, 10, 0), Pt(10, 0, 0)) {
		t.Error("proper crossing not detected")
	}
	if SegmentsCross(Pt(0, 0, 0), Pt(5, 5, 0), Pt(5, 5, 0), Pt(10, 0, 0)) {
		t.Error("endpoint touch must not count as crossing")
	}
	if SegmentsCross(Pt(0, 0, 0), Pt(10, 0, 0), Pt(5, -5, 0), Pt(5, 0, 0)) {
		t.Error("T junction touch must not count as crossing")
	}
}

func TestPolygonBasics(t *testing.T) {
	pg, err := NewPolygon(Pt(0, 0, 0), Pt(4, 0, 0), Pt(4, 3, 0), Pt(0, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a := pg.Area(); math.Abs(a-12) > Eps {
		t.Errorf("Area = %v, want 12", a)
	}
	if !pg.IsCCW() {
		t.Error("expected CCW")
	}
	if !pg.Reverse().IsCCW() == false {
		t.Error("Reverse should flip winding")
	}
	if !pg.IsRectilinear() {
		t.Error("rectangle is rectilinear")
	}
	if !pg.IsConvex() {
		t.Error("rectangle is convex")
	}
	bb := pg.BoundingBox()
	if bb.MinX != 0 || bb.MaxX != 4 || bb.MinY != 0 || bb.MaxY != 3 {
		t.Errorf("BoundingBox = %+v", bb)
	}
}

func TestNewPolygonErrors(t *testing.T) {
	if _, err := NewPolygon(Pt(0, 0, 0), Pt(1, 1, 0)); err == nil {
		t.Error("expected error for 2 vertices")
	}
	if _, err := NewPolygon(Pt(0, 0, 0), Pt(1, 1, 0), Pt(2, 0, 1)); err == nil {
		t.Error("expected error for mixed floors")
	}
}

// lShape is a non-convex rectilinear hexagon:
//
//	(0,10)---(5,10)
//	  |         |
//	  |  (5,5)--+---(10,5)
//	  |  notch       |
//	(0,0)---------(10,0)
func lShape(t *testing.T) Polygon {
	t.Helper()
	pg, err := NewPolygon(
		Pt(0, 0, 0), Pt(10, 0, 0), Pt(10, 5, 0),
		Pt(5, 5, 0), Pt(5, 10, 0), Pt(0, 10, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestPolygonContainsLShape(t *testing.T) {
	pg := lShape(t)
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"lower arm", Pt(8, 2, 0), true},
		{"upper arm", Pt(2, 8, 0), true},
		{"notch (outside)", Pt(8, 8, 0), false},
		{"on boundary", Pt(10, 2, 0), true},
		{"reflex corner", Pt(5, 5, 0), true},
		{"far outside", Pt(20, 20, 0), false},
		{"wrong floor", Pt(2, 2, 1), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := pg.Contains(tc.p); got != tc.want {
				t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
			}
		})
	}
	if pg.IsConvex() {
		t.Error("L-shape must not be convex")
	}
	if !pg.IsRectilinear() {
		t.Error("L-shape is rectilinear")
	}
	if math.Abs(pg.Area()-75) > Eps {
		t.Errorf("L-shape area = %v, want 75", pg.Area())
	}
}

func TestPolygonVisibility(t *testing.T) {
	pg := lShape(t)
	if !pg.Visible(Pt(1, 1, 0), Pt(9, 1, 0)) {
		t.Error("straight line in lower arm should be visible")
	}
	if pg.Visible(Pt(9, 4, 0), Pt(4, 9, 0)) {
		t.Error("line through the notch must be blocked")
	}
	if !pg.Visible(Pt(1, 1, 0), Pt(1, 9, 0)) {
		t.Error("straight line in upper arm should be visible")
	}
	if pg.Visible(Pt(1, 1, 0), Pt(20, 20, 0)) {
		t.Error("line to outside point must not be visible")
	}
	// Diagonal hugging the reflex corner stays inside.
	if !pg.Visible(Pt(4, 1, 0), Pt(1, 4, 0)) {
		t.Error("diagonal within lower-left square should be visible")
	}
}

func TestGridIndexLocate(t *testing.T) {
	rects := []Rect{
		NewRect(0, 0, 10, 10, 0),
		NewRect(10, 0, 20, 10, 0),
		NewRect(0, 10, 20, 20, 0),
	}
	ids := []int32{100, 200, 300}
	g, err := NewGridIndex(0, rects, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if got := g.Locate(Pt(5, 5, 0)); len(got) != 1 || got[0] != 100 {
		t.Errorf("Locate(5,5) = %v, want [100]", got)
	}
	// Boundary point reports both neighbours.
	got := g.Locate(Pt(10, 5, 0))
	if len(got) != 2 {
		t.Errorf("Locate(10,5) = %v, want two hits", got)
	}
	if _, ok := g.LocateFirst(Pt(15, 15, 0)); !ok {
		t.Error("LocateFirst should find rect 300")
	}
	if _, ok := g.LocateFirst(Pt(50, 50, 0)); ok {
		t.Error("LocateFirst outside bounds should miss")
	}
	if hits := g.Locate(Pt(5, 5, 3)); hits != nil {
		t.Error("wrong floor should miss")
	}
}

func TestGridIndexErrors(t *testing.T) {
	if _, err := NewGridIndex(0, []Rect{NewRect(0, 0, 1, 1, 0)}, nil, 0); err == nil {
		t.Error("expected id/rect length mismatch error")
	}
	if _, err := NewGridIndex(0, []Rect{NewRect(0, 0, 1, 1, 2)}, []int32{1}, 0); err == nil {
		t.Error("expected floor mismatch error")
	}
	g, err := NewGridIndex(0, nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits := g.Locate(Pt(0, 0, 0)); hits != nil {
		t.Error("empty index should return no hits")
	}
}

func TestGridIndexRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rects []Rect
	var ids []int32
	// Non-overlapping 10x10 tiles with gaps.
	for i := 0; i < 15; i++ {
		for j := 0; j < 15; j++ {
			if (i+j)%3 == 0 {
				continue
			}
			rects = append(rects, NewRect(float64(i)*12, float64(j)*12, float64(i)*12+10, float64(j)*12+10, 0))
			ids = append(ids, int32(len(ids)))
		}
	}
	g, err := NewGridIndex(0, rects, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2000; n++ {
		p := Pt(rng.Float64()*190-5, rng.Float64()*190-5, 0)
		want := int32(-1)
		for k, r := range rects {
			if r.Contains(p) {
				want = ids[k]
				break
			}
		}
		got, ok := g.LocateFirst(p)
		if (want >= 0) != ok {
			t.Fatalf("LocateFirst(%v): ok=%v, brute force found=%v", p, ok, want >= 0)
		}
		if ok && got != want {
			// Boundary points may legitimately match several tiles; accept
			// any containing tile.
			if !rects[got].Contains(p) {
				t.Fatalf("LocateFirst(%v) = %d which does not contain p", p, got)
			}
		}
	}
}

func BenchmarkGridIndexLocate(b *testing.B) {
	var rects []Rect
	var ids []int32
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			rects = append(rects, NewRect(float64(i)*10, float64(j)*10, float64(i)*10+10, float64(j)*10+10, 0))
			ids = append(ids, int32(len(ids)))
		}
	}
	g, err := NewGridIndex(0, rects, ids, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 1024)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*400, rng.Float64()*400, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LocateFirst(pts[i%len(pts)])
	}
}
