package geom

import (
	"fmt"
	"math"
)

// Polygon is a simple polygon on a single floor, given as a ring of
// vertices without repetition of the first vertex at the end. Indoor
// partitions are rectangles after decomposition, but irregular hallways
// arrive as rectilinear polygons which internal/decompose splits into
// cells; Polygon carries them through that pipeline and supports the
// visibility tests used by internal/dmat for non-convex shapes.
type Polygon struct {
	Verts []Point
	Floor int
}

// NewPolygon builds a polygon from vertices; all must share one floor.
func NewPolygon(verts ...Point) (Polygon, error) {
	if len(verts) < 3 {
		return Polygon{}, fmt.Errorf("geom: polygon needs >= 3 vertices, got %d", len(verts))
	}
	floor := verts[0].Floor
	for i, v := range verts {
		if v.Floor != floor {
			return Polygon{}, fmt.Errorf("geom: polygon vertex %d on floor %d, expected %d", i, v.Floor, floor)
		}
	}
	return Polygon{Verts: verts, Floor: floor}, nil
}

// RectPolygon converts a rectangle into its four-vertex polygon (CCW).
func RectPolygon(r Rect) Polygon {
	return Polygon{
		Verts: []Point{
			Pt(r.MinX, r.MinY, r.Floor),
			Pt(r.MaxX, r.MinY, r.Floor),
			Pt(r.MaxX, r.MaxY, r.Floor),
			Pt(r.MinX, r.MaxY, r.Floor),
		},
		Floor: r.Floor,
	}
}

// Area returns the polygon's absolute area (shoelace formula).
func (pg Polygon) Area() float64 {
	return math.Abs(pg.SignedArea())
}

// SignedArea returns the signed shoelace area: positive for CCW rings.
func (pg Polygon) SignedArea() float64 {
	n := len(pg.Verts)
	if n < 3 {
		return 0
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		a, b := pg.Verts[i], pg.Verts[(i+1)%n]
		sum += a.X*b.Y - b.X*a.Y
	}
	return sum / 2
}

// IsCCW reports whether the vertices wind counter-clockwise.
func (pg Polygon) IsCCW() bool { return pg.SignedArea() > 0 }

// Reverse returns the polygon with opposite winding.
func (pg Polygon) Reverse() Polygon {
	out := Polygon{Verts: make([]Point, len(pg.Verts)), Floor: pg.Floor}
	for i, v := range pg.Verts {
		out.Verts[len(pg.Verts)-1-i] = v
	}
	return out
}

// BoundingBox returns the polygon's axis-aligned bounding rectangle.
func (pg Polygon) BoundingBox() Rect {
	r := Rect{MinX: math.Inf(1), MinY: math.Inf(1), MaxX: math.Inf(-1), MaxY: math.Inf(-1), Floor: pg.Floor}
	for _, v := range pg.Verts {
		r.MinX = math.Min(r.MinX, v.X)
		r.MinY = math.Min(r.MinY, v.Y)
		r.MaxX = math.Max(r.MaxX, v.X)
		r.MaxY = math.Max(r.MaxY, v.Y)
	}
	return r
}

// Contains reports whether p lies inside the polygon or on its boundary,
// using the even-odd ray-casting rule with boundary handling.
func (pg Polygon) Contains(p Point) bool {
	if p.Floor != pg.Floor {
		return false
	}
	n := len(pg.Verts)
	if n < 3 {
		return false
	}
	// Boundary check first: on-edge counts as contained.
	for i := 0; i < n; i++ {
		a, b := pg.Verts[i], pg.Verts[(i+1)%n]
		if math.Abs(cross(a, b, p)) <= Eps*math.Max(1, a.DistXY(b)) && onSegment(a, b, p) {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := pg.Verts[i], pg.Verts[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// IsRectilinear reports whether every edge is axis-parallel.
func (pg Polygon) IsRectilinear() bool {
	n := len(pg.Verts)
	for i := 0; i < n; i++ {
		a, b := pg.Verts[i], pg.Verts[(i+1)%n]
		if math.Abs(a.X-b.X) > Eps && math.Abs(a.Y-b.Y) > Eps {
			return false
		}
	}
	return true
}

// IsConvex reports whether the polygon is convex (collinear runs allowed).
func (pg Polygon) IsConvex() bool {
	n := len(pg.Verts)
	if n < 4 {
		return true
	}
	sign := 0
	for i := 0; i < n; i++ {
		c := cross(pg.Verts[i], pg.Verts[(i+1)%n], pg.Verts[(i+2)%n])
		if math.Abs(c) <= Eps {
			continue
		}
		s := 1
		if c < 0 {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if sign != s {
			return false
		}
	}
	return true
}

// Visible reports whether the open segment between a and b stays inside
// the polygon, i.e. the straight walk from a to b is unobstructed. Both
// endpoints must be contained in the polygon.
func (pg Polygon) Visible(a, b Point) bool {
	if !pg.Contains(a) || !pg.Contains(b) {
		return false
	}
	n := len(pg.Verts)
	for i := 0; i < n; i++ {
		va, vb := pg.Verts[i], pg.Verts[(i+1)%n]
		if SegmentsCross(a, b, va, vb) {
			return false
		}
	}
	// No proper crossing: the segment may still run through a notch of a
	// non-convex polygon while touching only vertices. Sample interior
	// points along the segment to reject that case.
	const samples = 8
	for i := 1; i < samples; i++ {
		f := float64(i) / samples
		m := Point{X: a.X + (b.X-a.X)*f, Y: a.Y + (b.Y-a.Y)*f, Floor: a.Floor}
		if !pg.Contains(m) {
			return false
		}
	}
	return true
}
