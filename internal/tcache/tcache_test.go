package tcache

import (
	"sync"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func key(a, b int) Key { return Key{Src: model.PartitionID(a), Tgt: model.PartitionID(b)} }

func pkey(x float64) PointKey {
	return PointKey{Src: geom.Pt(x, 0, 0), Tgt: geom.Pt(x+1, 0, 0), Speed: 1.39}
}

func entry(open, close temporal.TimeOfDay) *Entry {
	return &Entry{
		Window:     temporal.Interval{Open: open, Close: close},
		Doors:      []model.DoorID{1},
		Partitions: []model.PartitionID{0, 1},
		Length:     10,
		Dists:      []float64{5},
	}
}

func TestStoreLookup(t *testing.T) {
	s := NewStore(0)
	k, pk := key(1, 2), pkey(0)
	if _, ok := s.Lookup(k, pk, 100); ok {
		t.Fatal("lookup on empty store hit")
	}
	// Three disjoint windows inserted out of order.
	for _, iv := range [][2]temporal.TimeOfDay{{3600, 7200}, {0, 1800}, {10000, 20000}} {
		if !s.Insert(k, pk, entry(iv[0], iv[1]), s.Epoch()) {
			t.Fatalf("insert [%v, %v) failed", iv[0], iv[1])
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	cases := []struct {
		at   temporal.TimeOfDay
		want temporal.TimeOfDay // Open of the expected window; -1 = miss
	}{
		{0, 0}, {1799, 0}, {1800, -1}, {3599, -1},
		{3600, 3600}, {5000, 3600}, {7200, -1},
		{15000, 10000}, {19999.5, 10000}, {20000, -1}, {86399, -1},
	}
	for _, tc := range cases {
		e, ok := s.Lookup(k, pk, tc.at)
		if (tc.want < 0) == ok {
			t.Fatalf("Lookup(%v): hit=%v, want hit=%v", tc.at, ok, tc.want >= 0)
		}
		if ok && e.Window.Open != tc.want {
			t.Fatalf("Lookup(%v) window opens %v, want %v", tc.at, e.Window.Open, tc.want)
		}
	}
	// Other point families and buckets stay separate.
	if _, ok := s.Lookup(k, pkey(9), 100); ok {
		t.Fatal("different point key hit")
	}
	if _, ok := s.Lookup(key(2, 1), pk, 100); ok {
		t.Fatal("different bucket hit")
	}
	// Speed is part of the family identity.
	pk2 := pk
	pk2.Speed = 2.0
	if _, ok := s.Lookup(k, pk2, 100); ok {
		t.Fatal("different speed hit")
	}
}

func TestStoreOverlapDropped(t *testing.T) {
	s := NewStore(0)
	k, pk := key(1, 2), pkey(0)
	if !s.Insert(k, pk, entry(1000, 2000), s.Epoch()) {
		t.Fatal("first insert failed")
	}
	for _, iv := range [][2]temporal.TimeOfDay{{1000, 2000}, {500, 1001}, {1999, 3000}, {1200, 1300}} {
		if s.Insert(k, pk, entry(iv[0], iv[1]), s.Epoch()) {
			t.Fatalf("overlapping [%v, %v) was stored", iv[0], iv[1])
		}
	}
	// Abutting windows are disjoint and fine.
	if !s.Insert(k, pk, entry(2000, 2500), s.Epoch()) || !s.Insert(k, pk, entry(500, 1000), s.Epoch()) {
		t.Fatal("abutting windows rejected")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	// Degenerate windows are refused.
	if s.Insert(k, pk, entry(3000, 3000), s.Epoch()) || s.Insert(k, pk, nil, s.Epoch()) {
		t.Fatal("degenerate insert accepted")
	}
}

func TestStoreInvalidateRange(t *testing.T) {
	s := NewStore(0)
	k, pk := key(1, 2), pkey(0)
	s.Insert(k, pk, entry(0, 1000), s.Epoch())
	s.Insert(k, pk, entry(2000, 3000), s.Epoch())
	s.Insert(k, pk, entry(5000, 6000), s.Epoch())
	s.Insert(key(3, 4), pkey(7), entry(0, temporal.DaySeconds), s.Epoch()) // full-day (static)

	// A range touching only the middle window (and the full-day one).
	s.InvalidateRange(temporal.Interval{Open: 2500, Close: 2600})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after range invalidation", s.Len())
	}
	if _, ok := s.Lookup(k, pk, 2500); ok {
		t.Fatal("overlapping window survived")
	}
	if _, ok := s.Lookup(k, pk, 500); !ok {
		t.Fatal("non-overlapping window dropped")
	}
	if _, ok := s.Lookup(key(3, 4), pkey(7), 43200); ok {
		t.Fatal("full-day window must be dropped by any range invalidation")
	}

	s.InvalidateAll()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after InvalidateAll", s.Len())
	}
}

func TestStoreEpochGuard(t *testing.T) {
	s := NewStore(0)
	k, pk := key(1, 2), pkey(0)
	epoch := s.Epoch()
	// An invalidation lands between the epoch capture and the insert —
	// the insert must be discarded.
	s.InvalidateRange(temporal.Interval{Open: 0, Close: 1})
	if s.Insert(k, pk, entry(1000, 2000), epoch) {
		t.Fatal("stale insert accepted after invalidation")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if !s.Insert(k, pk, entry(1000, 2000), s.Epoch()) {
		t.Fatal("fresh insert rejected")
	}
}

func TestStoreEviction(t *testing.T) {
	s := NewStore(4)
	// Five OD buckets, one window each: eviction must shed whole buckets
	// but never the one just written.
	for i := 0; i < 5; i++ {
		k := key(i, i+1)
		if !s.Insert(k, pkey(0), entry(0, 1000), s.Epoch()) {
			t.Fatalf("insert %d failed", i)
		}
		if s.Len() > 4 {
			t.Fatalf("Len = %d beyond capacity", s.Len())
		}
		if _, ok := s.Lookup(k, pkey(0), 500); !ok {
			t.Fatalf("entry %d evicted immediately after insert", i)
		}
	}
	// A hot single bucket larger than the capacity keeps its newest.
	hot := NewStore(2)
	k := key(9, 9)
	for i := 0; i < 6; i++ {
		open := temporal.TimeOfDay(i * 1000)
		if !hot.Insert(k, pkey(0), entry(open, open+500), hot.Epoch()) {
			t.Fatalf("hot insert %d failed", i)
		}
		if hot.Len() > 2 {
			t.Fatalf("hot Len = %d beyond capacity", hot.Len())
		}
		if _, ok := hot.Lookup(k, pkey(0), open+100); !ok {
			t.Fatalf("hot entry %d evicted immediately after insert", i)
		}
	}
}

func TestStoreConcurrency(t *testing.T) {
	// Smoke the lock discipline: concurrent inserts, lookups and
	// invalidations over a small store (meaningful under -race).
	s := NewStore(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(w%3, i%5)
				open := temporal.TimeOfDay((i % 20) * 4000)
				s.Insert(k, pkey(float64(w)), entry(open, open+3000), s.Epoch())
				s.Lookup(k, pkey(float64(w)), open+1500)
				if i%50 == 0 {
					s.InvalidateRange(temporal.Interval{Open: open, Close: open + 1})
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() > 64 {
		t.Fatalf("Len = %d beyond capacity", s.Len())
	}
}

func TestStoreSizeAccounting(t *testing.T) {
	s := NewStore(100)
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			open := temporal.TimeOfDay(j * 2000)
			s.Insert(key(i, i), pkey(0), entry(open, open+1000), s.Epoch())
		}
	}
	if s.Len() != 30 {
		t.Fatalf("Len = %d, want 30", s.Len())
	}
	s.InvalidateRange(temporal.Interval{Open: 0, Close: 500})
	if s.Len() != 20 {
		t.Fatalf("Len = %d after invalidating one window per bucket, want 20", s.Len())
	}
	// Fill far past a tiny capacity and confirm the bound holds.
	tiny := NewStore(3)
	for i := 0; i < 50; i++ {
		tiny.Insert(key(i, 0), pkey(0), entry(0, 1000), tiny.Epoch())
		if got := tiny.Len(); got > 3 {
			t.Fatalf("tiny Len = %d beyond capacity", got)
		}
	}
}

func TestStoreProbeMissKinds(t *testing.T) {
	s := NewStore(0)
	k, pk := key(1, 2), pkey(0)

	// Empty store: the family was never cached.
	if e, mk := s.Probe(k, pk, 100); e != nil || mk != MissFamilyAbsent {
		t.Fatalf("empty store Probe = (%v, %v), want (nil, MissFamilyAbsent)", e, mk)
	}
	if !s.Insert(k, pk, entry(3600, 7200), s.Epoch()) {
		t.Fatal("insert failed")
	}

	// Hit inside the stored window.
	if e, mk := s.Probe(k, pk, 5000); e == nil || mk != MissNone {
		t.Fatalf("Probe(5000) = (%v, %v), want hit", e, mk)
	}
	// Family exists, departure outside every window.
	if e, mk := s.Probe(k, pk, 100); e != nil || mk != MissOutsideWindows {
		t.Fatalf("Probe(100) = (%v, %v), want (nil, MissOutsideWindows)", e, mk)
	}
	// Same bucket, different point family: family absent, not
	// outside-windows.
	if e, mk := s.Probe(k, pkey(9), 5000); e != nil || mk != MissFamilyAbsent {
		t.Fatalf("Probe(other family) = (%v, %v), want (nil, MissFamilyAbsent)", e, mk)
	}
	// Different bucket entirely.
	if e, mk := s.Probe(key(2, 1), pk, 5000); e != nil || mk != MissFamilyAbsent {
		t.Fatalf("Probe(other bucket) = (%v, %v), want (nil, MissFamilyAbsent)", e, mk)
	}
	// Lookup stays the thin wrapper.
	if _, ok := s.Lookup(k, pk, 5000); !ok {
		t.Fatal("Lookup lost the hit")
	}
}
