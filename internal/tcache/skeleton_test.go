package tcache

import (
	"sync"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func famEntry(open, close temporal.TimeOfDay) *FamilyEntry {
	return &FamilyEntry{
		Window: temporal.Interval{Open: open, Close: close},
		Fam: &core.SkeletonFamily{
			Window: temporal.Interval{Open: open, Close: close},
			Chains: []*core.Skeleton{{Doors: []model.DoorID{1}, Partitions: []model.PartitionID{0, 1}, Legs: []float64{0}}},
		},
	}
}

func TestStoreFamilyProbe(t *testing.T) {
	s := NewStore(0)
	k := key(1, 2)
	if _, kind := s.ProbeFamily(k, 100); kind != MissFamilyAbsent {
		t.Fatalf("empty store probe = %v, want MissFamilyAbsent", kind)
	}
	if !s.InsertFamily(k, famEntry(1000, 2000), s.Epoch()) {
		t.Fatal("insert refused")
	}
	if !s.InsertFamily(k, famEntry(3000, 4000), s.Epoch()) {
		t.Fatal("second slot insert refused")
	}
	if fe, kind := s.ProbeFamily(k, 1500); kind != MissNone || fe.Window.Open != 1000 {
		t.Fatalf("probe(1500) = %v/%v, want first family", fe, kind)
	}
	if fe, kind := s.ProbeFamily(k, 3000); kind != MissNone || fe.Window.Open != 3000 {
		t.Fatalf("probe(3000) = %v/%v, want second family", fe, kind)
	}
	if _, kind := s.ProbeFamily(k, 2500); kind != MissOutsideWindows {
		t.Fatalf("probe(2500) = %v, want MissOutsideWindows", kind)
	}
	if _, kind := s.ProbeFamily(key(9, 9), 1500); kind != MissFamilyAbsent {
		t.Fatalf("unknown pair probe, want MissFamilyAbsent")
	}
	if s.FamLen() != 2 {
		t.Fatalf("FamLen = %d, want 2", s.FamLen())
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d: families must not count as point windows", s.Len())
	}
}

func TestStoreFamilyOverlapAndEpoch(t *testing.T) {
	s := NewStore(0)
	k := key(1, 2)
	if !s.InsertFamily(k, famEntry(1000, 2000), s.Epoch()) {
		t.Fatal("insert refused")
	}
	// Overlapping slot: first-in wins.
	if s.InsertFamily(k, famEntry(1500, 2500), s.Epoch()) {
		t.Fatal("overlapping family must be dropped")
	}
	if s.InsertFamily(k, famEntry(0, 0), s.Epoch()) || s.InsertFamily(k, nil, s.Epoch()) {
		t.Fatal("degenerate families must be dropped")
	}
	epoch := s.Epoch()
	s.InvalidateRange(temporal.Interval{Open: 0, Close: 100})
	if s.InsertFamily(k, famEntry(3000, 4000), epoch) {
		t.Fatal("family computed before an invalidation must be discarded")
	}
	if !s.InsertFamily(k, famEntry(3000, 4000), s.Epoch()) {
		t.Fatal("fresh-epoch insert refused")
	}
}

func TestStoreFamilyInvalidate(t *testing.T) {
	s := NewStore(0)
	s.InsertFamily(key(1, 2), famEntry(0, 1000), s.Epoch())
	s.InsertFamily(key(1, 2), famEntry(2000, 3000), s.Epoch())
	s.InsertFamily(key(3, 4), famEntry(0, temporal.DaySeconds), s.Epoch()) // static: full day
	s.Insert(key(1, 2), pkey(0), entry(2000, 2500), s.Epoch())

	s.InvalidateRange(temporal.Interval{Open: 2100, Close: 2200})
	if _, kind := s.ProbeFamily(key(1, 2), 500); kind != MissNone {
		t.Fatal("untouched family dropped")
	}
	if _, kind := s.ProbeFamily(key(1, 2), 2500); kind == MissNone {
		t.Fatal("overlapping family survived invalidation")
	}
	if _, kind := s.ProbeFamily(key(3, 4), 50000); kind == MissNone {
		t.Fatal("full-day family must be dropped by any range")
	}
	if _, ok := s.Lookup(key(1, 2), pkey(0), 2200); ok {
		t.Fatal("overlapping point window survived invalidation")
	}
	if s.FamLen() != 1 {
		t.Fatalf("FamLen = %d, want 1", s.FamLen())
	}
	if s.FamEvictions() != 0 {
		t.Fatal("invalidation drops must not count as evictions")
	}

	s.InvalidateAll()
	if s.FamLen() != 0 || s.Len() != 0 {
		t.Fatalf("InvalidateAll left FamLen=%d Len=%d", s.FamLen(), s.Len())
	}
}

func TestStoreFamilyEviction(t *testing.T) {
	s := NewStore(4)
	for i := 0; i < 10; i++ {
		if !s.InsertFamily(key(i, i+1), famEntry(0, 1000), s.Epoch()) {
			t.Fatalf("insert %d refused", i)
		}
	}
	if s.FamLen() > 4 {
		t.Fatalf("FamLen = %d exceeds cap 4", s.FamLen())
	}
	if got := s.FamEvictions(); got != 6 {
		t.Fatalf("FamEvictions = %d, want 6", got)
	}
	// Point-window capacity is budgeted independently: families at cap
	// must not force window evictions or vice versa.
	for i := 0; i < 4; i++ {
		if !s.Insert(key(0, 1), pkey(float64(i)), entry(temporal.TimeOfDay(i*2000), temporal.TimeOfDay(i*2000+1000)), s.Epoch()) {
			t.Fatalf("window insert %d refused", i)
		}
	}
	if s.Evictions() != 0 {
		t.Fatal("family pressure leaked into window evictions")
	}

	// One hot pair past the cap always keeps its newest family.
	hot := NewStore(2)
	k := key(1, 2)
	for i := 0; i < 6; i++ {
		open := temporal.TimeOfDay(i * 2000)
		if !hot.InsertFamily(k, famEntry(open, open+1000), hot.Epoch()) {
			t.Fatalf("hot insert %d refused", i)
		}
		if _, kind := hot.ProbeFamily(k, open+500); kind != MissNone {
			t.Fatalf("newest family %d evicted", i)
		}
	}
	if hot.FamLen() > 2 {
		t.Fatalf("hot FamLen = %d exceeds cap", hot.FamLen())
	}
}

func TestStoreFamilySkeletonCoverage(t *testing.T) {
	s := NewStore(0)
	fe := famEntry(0, 3600)
	fe.Fam.Chains = append(fe.Fam.Chains, fe.Fam.Chains[0])
	s.InsertFamily(key(1, 2), fe, s.Epoch())
	s.InsertFamily(key(1, 2), famEntry(7200, 10800), s.Epoch())
	s.InsertFamily(key(5, 6), famEntry(0, 1800), s.Epoch())
	s.Insert(key(9, 9), pkey(0), entry(0, 100), s.Epoch())

	cov := s.SkeletonCoverage()
	if len(cov) != 2 {
		t.Fatalf("SkeletonCoverage pairs = %d, want 2 (point-only pair excluded)", len(cov))
	}
	if cov[0].Key != key(1, 2) || cov[0].Families != 2 || cov[0].Windows != 3 || cov[0].CoveredSec != 7200 {
		t.Fatalf("coverage[0] = %+v", cov[0])
	}
	if cov[1].Key != key(5, 6) || cov[1].Families != 1 || cov[1].Windows != 1 || cov[1].CoveredSec != 1800 {
		t.Fatalf("coverage[1] = %+v", cov[1])
	}
	// Window coverage in turn ignores skeleton-only pairs.
	wcov := s.Coverage()
	if len(wcov) != 1 || wcov[0].Key != key(9, 9) {
		t.Fatalf("Coverage = %+v, want the point-only pair alone", wcov)
	}
}

func TestStoreFamilyConcurrency(t *testing.T) {
	s := NewStore(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(w%4, w%4+1)
				open := temporal.TimeOfDay((i % 20) * 4000)
				s.InsertFamily(k, famEntry(open, open+3000), s.Epoch())
				s.ProbeFamily(k, open+1500)
				if i%50 == 0 {
					s.InvalidateRange(temporal.Interval{Open: open, Close: open + 100})
				}
			}
		}(w)
	}
	wg.Wait()
	if s.FamLen() > 64 {
		t.Fatalf("FamLen = %d exceeds cap", s.FamLen())
	}
}
