// Package tcache is the temporal result cache of the serving layer,
// holding two complementary stores under one epoch/invalidation
// regime, both keyed at the (source partition, target partition)
// granularity schedule invalidation works at:
//
//   - Skeleton families (the primary, point-free index): per pair and
//     per checkpoint slot, a core.SkeletonFamily of door-to-door
//     chains with the point-dependent legs factored out, so one
//     stored family answers *any* endpoints inside the pair — the
//     cross-space complement (ROADMAP open item 1).
//   - Validity windows (the exact-point fast path): per exact
//     (source point, target point, speed) triple, paths keyed by the
//     departure interval over which the engine's answer is provably
//     unchanged (core.Engine.AnswerWindow) — the cross-time
//     complement. An exact hit skips even the composition arithmetic,
//     so it probes first.
//
// The paper's whole premise is that indoor shortest paths vary with
// departure time; the flip side is that between topology checkpoints
// they do not vary at all, and within one slot they do not vary with
// the endpoints' exact coordinates beyond the first and last legs. A
// time-sweep workload reuses one search across a window; a jittered
// crowd leaving one hot lobby reuses one family across all of its
// members' distinct points.
//
// Layout: buckets keyed by the partition pair, each holding the
// pair's skeleton families (at most one per slot, sorted by window
// opening, pairwise disjoint) and, per exact point triple, a series
// of windows sorted by opening time and pairwise disjoint, so either
// lookup is one map step plus a short ordered scan. One store serves
// one engine method (service.Pool keeps one pool, and so one store,
// per method).
//
// Invariants the serving layer relies on:
//
//   - stored entries and families are immutable once inserted; Lookup
//     and ProbeFamily hand the same pointers to many goroutines (the
//     door/partition slices are shared into materialised paths, which
//     are immutable by the repository-wide path contract);
//   - windows are derived for no-waiting paths only, and a served
//     answer must recompute arrival times from Dists for the query's
//     own departure — never reuse the original instants; likewise a
//     family answer must be recomposed per query
//     (core.ComposeSkeletonPath), never replayed;
//   - a schedule swap must drop the whole store (service swaps the
//     backend, store included); InvalidateRange supports the finer
//     slot-granular knob and voids families and windows alike;
//   - the epoch counter guards the same race as resultCache's: a
//     search that overlapped an invalidation must not re-insert its
//     pre-invalidation window or family.
//
// Accounting: Len/Cap/Evictions cover point windows, FamLen/
// FamEvictions cover skeleton families. The two populations share the
// same capacity *value* but are budgeted independently — families are
// far fewer and far heavier than windows, so one knob with two
// ledgers keeps both bounded without starving either.
package tcache

import (
	"sort"
	"sync"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// DefaultCapacity bounds the number of stored windows (and,
// separately, stored families) when NewStore is given zero.
const DefaultCapacity = 4096

// Key addresses one bucket: the OD partition pair of the cached paths.
type Key struct {
	Src, Tgt model.PartitionID
}

// PointKey identifies one exact query family inside a bucket: the
// endpoint geometry and walking speed that all departures of a window
// share. Two queries differing in any of these can have different
// answers at the same departure, so they never share windows.
type PointKey struct {
	Src, Tgt geom.Point
	Speed    float64
}

// Entry is one cached answer with its departure-time validity window.
// All fields are read-only after insertion.
type Entry struct {
	// Window is the departure interval (core.Engine.AnswerWindow) the answer
	// holds for: same doors, partitions and length as a fresh search.
	Window temporal.Interval
	// Doors and Partitions are the cached path's sequences, shared as-is
	// into every materialised path.
	Doors      []model.DoorID
	Partitions []model.PartitionID
	// Length is the walked length in metres (departure-independent).
	Length float64
	// Dists is the cumulative walked distance at each door
	// (core.Engine.PathDistances): a served answer's arrivals are
	// departure + Dists[i]/Speed, reproducing engine arithmetic bit for
	// bit.
	Dists []float64
	// Stats are the search statistics of the run that produced the
	// entry, reported on every window hit (mirroring exact-cache hits).
	Stats core.SearchStats
}

// FamilyEntry is one stored skeleton family with the statistics of the
// search whose miss produced it. All fields are read-only after
// insertion; Window duplicates Fam.Window so probes never chase the
// inner pointer.
type FamilyEntry struct {
	// Window is the departure interval the family's frozen topology
	// holds for (the slot; the whole day for a static-method family).
	Window temporal.Interval
	// Fam is the immutable chain table (core.ComposeSkeletonPath input).
	Fam *core.SkeletonFamily
	// Stats are the search statistics of the engine run whose miss
	// triggered the family build, reported on every skeleton hit.
	Stats core.SearchStats
}

// series is the per-PointKey window list: sorted by Window.Open and
// pairwise disjoint, the invariant that makes lookups a binary search.
type series struct {
	entries []*Entry
}

// find returns the entry whose window contains at, if any.
func (s *series) find(at temporal.TimeOfDay) (*Entry, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Window.Close > at })
	if i < len(s.entries) && s.entries[i].Window.Contains(at) {
		return s.entries[i], true
	}
	return nil, false
}

// bucket holds everything stored for one partition pair: the skeleton
// families (primary, point-free index) and the exact-point window
// series (fast path).
type bucket struct {
	points map[PointKey]*series
	skels  []*FamilyEntry
}

func (b *bucket) empty() bool { return len(b.points) == 0 && len(b.skels) == 0 }

// findFam returns the family whose window contains at, if any. Linear:
// a pair stores at most one family per checkpoint slot and hot pairs
// touch a handful of slots.
func (b *bucket) findFam(at temporal.TimeOfDay) (*FamilyEntry, bool) {
	for _, fe := range b.skels {
		if fe.Window.Contains(at) {
			return fe, true
		}
	}
	return nil, false
}

// Store is a bounded, concurrency-safe temporal cache. The zero value
// is not usable; construct with NewStore.
type Store struct {
	mu         sync.RWMutex
	cap        int
	size       int   // total point windows across all series
	evicted    int64 // windows shed by capacity eviction (not invalidation)
	famSize    int   // total skeleton families across all buckets
	famEvicted int64 // families shed by capacity eviction (not invalidation)
	epochN     uint64
	buckets    map[Key]*bucket
}

// NewStore builds a store holding at most capacity windows and,
// independently, at most capacity skeleton families (0 means
// DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, buckets: make(map[Key]*bucket)}
}

// Epoch returns the invalidation epoch; capture it before the search
// whose result will be inserted and hand it back to Insert or
// InsertFamily.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epochN
}

// Lookup returns the entry whose validity window contains the
// departure at, if one is stored for the query family.
func (s *Store) Lookup(k Key, pk PointKey, at temporal.TimeOfDay) (*Entry, bool) {
	e, _ := s.Probe(k, pk, at)
	return e, e != nil
}

// MissKind says why a probe found nothing — the decision-provenance
// split between "we never cached this", "we cached it, but not for
// this departure", and "we cached it, but could not certify it for
// this query".
type MissKind uint8

const (
	// MissNone: the probe hit.
	MissNone MissKind = iota
	// MissFamilyAbsent: nothing is stored for the probed identity (the
	// point triple's series, or the pair's slot family, was never
	// inserted).
	MissFamilyAbsent
	// MissOutsideWindows: the probed identity exists but the departure
	// time falls outside every stored validity window.
	MissOutsideWindows
	// MissSkeletonUncertified: a skeleton family covers the departure,
	// but composing it for the concrete endpoints could not be
	// certified byte-identical to a fresh search (see
	// core.ComposeSkeletonPath). The store itself never returns this —
	// certification needs the query's points — but the serving layer
	// reports the outcome through the same vocabulary.
	MissSkeletonUncertified
)

// Probe is Lookup additionally reporting why it missed. A hit returns
// (entry, MissNone).
func (s *Store) Probe(k Key, pk PointKey, at temporal.TimeOfDay) (*Entry, MissKind) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[k]
	if !ok {
		return nil, MissFamilyAbsent
	}
	ser, ok := b.points[pk]
	if !ok {
		return nil, MissFamilyAbsent
	}
	if e, ok := ser.find(at); ok {
		return e, MissNone
	}
	return nil, MissOutsideWindows
}

// ProbeFamily returns the pair's skeleton family covering departure
// at, with the same miss vocabulary as Probe. The returned entry is
// immutable and shared; the caller composes it per query and must
// fall back to an engine when composition refuses.
func (s *Store) ProbeFamily(k Key, at temporal.TimeOfDay) (*FamilyEntry, MissKind) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[k]
	if !ok || len(b.skels) == 0 {
		return nil, MissFamilyAbsent
	}
	if fe, ok := b.findFam(at); ok {
		return fe, MissNone
	}
	return nil, MissOutsideWindows
}

// Insert stores an entry, keeping the series sorted and disjoint. A
// window overlapping an already-stored one is dropped (both are proven
// correct over their windows; serving either is sound, and concurrent
// searches in one slot derive identical windows anyway). Entries
// computed before the store's current epoch are discarded — they raced
// an invalidation. Reports whether the entry was stored.
func (s *Store) Insert(k Key, pk PointKey, e *Entry, epoch uint64) bool {
	if e == nil || e.Window.Duration() <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epochN {
		return false
	}
	b, ok := s.buckets[k]
	if !ok {
		b = &bucket{points: make(map[PointKey]*series)}
		s.buckets[k] = b
	}
	ser, ok := b.points[pk]
	if !ok {
		ser = &series{}
		b.points[pk] = ser
	}
	i := sort.Search(len(ser.entries), func(i int) bool { return ser.entries[i].Window.Open >= e.Window.Open })
	if i > 0 && ser.entries[i-1].Window.Overlaps(e.Window) {
		return false
	}
	if i < len(ser.entries) && ser.entries[i].Window.Overlaps(e.Window) {
		return false
	}
	ser.entries = append(ser.entries, nil)
	copy(ser.entries[i+1:], ser.entries[i:])
	ser.entries[i] = e
	s.size++
	for s.size > s.cap {
		s.evictLocked(k, e)
	}
	return true
}

// InsertFamily stores a skeleton family for its pair, keeping the
// family list sorted by opening and pairwise disjoint. A family whose
// window overlaps a stored one is dropped — concurrent misses in one
// slot build identical families, so first-in wins. Families computed
// before the current epoch are discarded (they raced an
// invalidation). Reports whether the family was stored.
func (s *Store) InsertFamily(k Key, fe *FamilyEntry, epoch uint64) bool {
	if fe == nil || fe.Fam == nil || fe.Window.Duration() <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epochN {
		return false
	}
	b, ok := s.buckets[k]
	if !ok {
		b = &bucket{points: make(map[PointKey]*series)}
		s.buckets[k] = b
	}
	i := sort.Search(len(b.skels), func(i int) bool { return b.skels[i].Window.Open >= fe.Window.Open })
	if i > 0 && b.skels[i-1].Window.Overlaps(fe.Window) {
		return false
	}
	if i < len(b.skels) && b.skels[i].Window.Overlaps(fe.Window) {
		return false
	}
	b.skels = append(b.skels, nil)
	copy(b.skels[i+1:], b.skels[i:])
	b.skels[i] = fe
	s.famSize++
	for s.famSize > s.cap {
		s.evictFamilyLocked(k, fe)
	}
	return true
}

// evictLocked sheds point windows, preferring a bucket other than keep
// (the bucket just written to), whole-bucket first; when keep is the
// only bucket holding windows it drops keep's windows other than keepE
// instead, so a hot OD pair larger than the capacity still serves its
// latest window. Skeleton families are untouched — they have their own
// ledger and evictor.
func (s *Store) evictLocked(keep Key, keepE *Entry) {
	var keepB *bucket
	for k, b := range s.buckets {
		if k == keep {
			keepB = b
			continue
		}
		if len(b.points) == 0 {
			continue
		}
		for pk, ser := range b.points {
			s.size -= len(ser.entries)
			s.evicted += int64(len(ser.entries))
			delete(b.points, pk)
		}
		s.dropEmptyLocked(k)
		return
	}
	if keepB == nil {
		return
	}
	for pk, ser := range keepB.points {
		for i := 0; i < len(ser.entries); {
			if ser.entries[i] == keepE {
				i++
				continue
			}
			copy(ser.entries[i:], ser.entries[i+1:])
			ser.entries[len(ser.entries)-1] = nil // release for GC
			ser.entries = ser.entries[:len(ser.entries)-1]
			s.size--
			s.evicted++
			if s.size <= s.cap {
				s.dropEmptyPointLocked(keep, pk)
				return
			}
		}
		s.dropEmptyPointLocked(keep, pk)
	}
}

// evictFamilyLocked sheds one skeleton family, preferring a bucket
// other than keep; within keep it spares keepFE (the family just
// inserted) so a single hot pair past the cap still serves its newest
// slot.
func (s *Store) evictFamilyLocked(keep Key, keepFE *FamilyEntry) {
	var keepB *bucket
	for k, b := range s.buckets {
		if k == keep {
			keepB = b
			continue
		}
		if len(b.skels) == 0 {
			continue
		}
		b.skels[0] = nil
		b.skels = b.skels[1:]
		s.famSize--
		s.famEvicted++
		s.dropEmptyLocked(k)
		return
	}
	if keepB == nil {
		return
	}
	for i, fe := range keepB.skels {
		if fe == keepFE {
			continue
		}
		copy(keepB.skels[i:], keepB.skels[i+1:])
		keepB.skels[len(keepB.skels)-1] = nil
		keepB.skels = keepB.skels[:len(keepB.skels)-1]
		s.famSize--
		s.famEvicted++
		return
	}
}

func (s *Store) dropEmptyPointLocked(k Key, pk PointKey) {
	b, ok := s.buckets[k]
	if !ok {
		return
	}
	if ser, ok := b.points[pk]; ok && len(ser.entries) == 0 {
		delete(b.points, pk)
	}
	s.dropEmptyLocked(k)
}

func (s *Store) dropEmptyLocked(k Key) {
	if b, ok := s.buckets[k]; ok && b.empty() {
		delete(s.buckets, k)
	}
}

// InvalidateRange drops every window and every skeleton family
// overlapping the interval — the slot-granular invalidation hook: a
// schedule concern scoped to one checkpoint slot voids exactly the
// state whose validity touches that slot. Full-day windows and
// static-method families overlap every slot and are always dropped.
func (s *Store) InvalidateRange(iv temporal.Interval) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochN++
	for k, b := range s.buckets {
		for pk, ser := range b.points {
			old := ser.entries
			kept := old[:0]
			for _, e := range old {
				if e.Window.Overlaps(iv) {
					s.size--
					continue
				}
				kept = append(kept, e)
			}
			for i := len(kept); i < len(old); i++ {
				old[i] = nil // release dropped entries for GC
			}
			ser.entries = kept
			if len(ser.entries) == 0 {
				delete(b.points, pk)
			}
		}
		oldF := b.skels
		keptF := oldF[:0]
		for _, fe := range oldF {
			if fe.Window.Overlaps(iv) {
				s.famSize--
				continue
			}
			keptF = append(keptF, fe)
		}
		for i := len(keptF); i < len(oldF); i++ {
			oldF[i] = nil
		}
		b.skels = keptF
		if b.empty() {
			delete(s.buckets, k)
		}
	}
}

// InvalidateAll drops every window and every skeleton family.
func (s *Store) InvalidateAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochN++
	s.buckets = make(map[Key]*bucket)
	s.size = 0
	s.famSize = 0
}

// Len returns the number of stored point windows (families are
// counted by FamLen).
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// FamLen returns the number of stored skeleton families.
func (s *Store) FamLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.famSize
}

// Cap returns the capacity each population (windows; families) evicts
// down to.
func (s *Store) Cap() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cap
}

// Evictions returns the number of windows shed by capacity eviction
// since construction. Invalidation drops are not counted — they are
// correctness, not pressure.
func (s *Store) Evictions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evicted
}

// FamEvictions returns the number of skeleton families shed by
// capacity eviction since construction (invalidation drops excluded,
// as with Evictions).
func (s *Store) FamEvictions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.famEvicted
}

// PairCoverage summarises one OD-pair bucket: the distinct identities
// it holds, the total stored units, and the summed validity duration
// in seconds. For window coverage (Coverage) the identities are
// exact-point families and the units their disjoint windows; for
// skeleton coverage (SkeletonCoverage) the identities are slot
// families and the units their chains. In both, the validity windows
// behind a bucket's identities are pairwise disjoint, so
// CoveredSec/Families never exceeds a day —
// CoveredSec/(Families·86400) is the mean share of the 24h departure
// axis answerable without an engine.
type PairCoverage struct {
	Key        Key
	Families   int
	Windows    int
	CoveredSec float64
}

// Coverage snapshots every bucket's point-window tallies under one
// read lock, sorted by descending window count (ties by ascending Src
// then Tgt) so scrape output is deterministic.
func (s *Store) Coverage() []PairCoverage {
	s.mu.RLock()
	out := make([]PairCoverage, 0, len(s.buckets))
	for k, b := range s.buckets {
		if len(b.points) == 0 {
			continue
		}
		pc := PairCoverage{Key: k, Families: len(b.points)}
		for _, ser := range b.points {
			pc.Windows += len(ser.entries)
			for _, e := range ser.entries {
				pc.CoveredSec += float64(e.Window.Duration())
			}
		}
		out = append(out, pc)
	}
	s.mu.RUnlock()
	sortCoverage(out)
	return out
}

// SkeletonCoverage snapshots every bucket's skeleton tallies under
// one read lock: Families counts the pair's slot families, Windows
// its stored chains, CoveredSec the summed slot durations (disjoint
// by the insert invariant). Same ordering as Coverage.
func (s *Store) SkeletonCoverage() []PairCoverage {
	s.mu.RLock()
	out := make([]PairCoverage, 0, len(s.buckets))
	for k, b := range s.buckets {
		if len(b.skels) == 0 {
			continue
		}
		pc := PairCoverage{Key: k, Families: len(b.skels)}
		for _, fe := range b.skels {
			pc.Windows += len(fe.Fam.Chains)
			pc.CoveredSec += float64(fe.Window.Duration())
		}
		out = append(out, pc)
	}
	s.mu.RUnlock()
	sortCoverage(out)
	return out
}

func sortCoverage(out []PairCoverage) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Windows != out[j].Windows {
			return out[i].Windows > out[j].Windows
		}
		if out[i].Key.Src != out[j].Key.Src {
			return out[i].Key.Src < out[j].Key.Src
		}
		return out[i].Key.Tgt < out[j].Key.Tgt
	})
}
