// Package tcache is the validity-window temporal result cache of the
// serving layer: it stores computed indoor paths keyed by the interval
// of departure times over which the engine's answer is provably
// unchanged (core.Engine.AnswerWindow), so that *any* departure inside a
// stored window — not just the exact instant that was searched — is
// served without running an engine.
//
// The paper's whole premise is that indoor shortest paths vary with
// departure time; the flip side is that between topology checkpoints
// they do not vary at all, and a time-sweep or rush-hour workload
// asking one OD pair at many nearby departures can reuse one search
// across the whole window. An exact-identity cache (service's
// resultCache) gets near-zero reuse on such workloads; this store is
// the cross-time complement.
//
// Layout: buckets keyed by the (source partition, target partition)
// pair — the spatial granularity schedule invalidation works at —
// each holding, per exact (source point, target point, speed) triple,
// a series of windows sorted by opening time and pairwise disjoint, so
// a lookup is one map step plus an O(log n) binary search. One store
// serves one engine method (service.Pool keeps one pool, and so one
// store, per method).
//
// Invariants the serving layer relies on:
//
//   - stored entries are immutable once inserted; Lookup hands the
//     same *Entry to many goroutines (the door/partition slices are
//     shared into materialised paths, which are immutable by the
//     repository-wide path contract);
//   - windows are derived for no-waiting paths only, and a served
//     answer must recompute arrival times from Dists for the query's
//     own departure — never reuse the original instants;
//   - a schedule swap must drop the whole store (service swaps the
//     backend, store included); InvalidateRange supports the finer
//     slot-granular knob;
//   - the epoch counter guards the same race as resultCache's: a
//     search that overlapped an invalidation must not re-insert its
//     pre-invalidation window.
package tcache

import (
	"sort"
	"sync"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// DefaultCapacity bounds the number of stored windows when NewStore is
// given zero.
const DefaultCapacity = 4096

// Key addresses one bucket: the OD partition pair of the cached paths.
type Key struct {
	Src, Tgt model.PartitionID
}

// PointKey identifies one exact query family inside a bucket: the
// endpoint geometry and walking speed that all departures of a window
// share. Two queries differing in any of these can have different
// answers at the same departure, so they never share windows.
type PointKey struct {
	Src, Tgt geom.Point
	Speed    float64
}

// Entry is one cached answer with its departure-time validity window.
// All fields are read-only after insertion.
type Entry struct {
	// Window is the departure interval (core.Engine.AnswerWindow) the answer
	// holds for: same doors, partitions and length as a fresh search.
	Window temporal.Interval
	// Doors and Partitions are the cached path's sequences, shared as-is
	// into every materialised path.
	Doors      []model.DoorID
	Partitions []model.PartitionID
	// Length is the walked length in metres (departure-independent).
	Length float64
	// Dists is the cumulative walked distance at each door
	// (core.Engine.PathDistances): a served answer's arrivals are
	// departure + Dists[i]/Speed, reproducing engine arithmetic bit for
	// bit.
	Dists []float64
	// Stats are the search statistics of the run that produced the
	// entry, reported on every window hit (mirroring exact-cache hits).
	Stats core.SearchStats
}

// series is the per-PointKey window list: sorted by Window.Open and
// pairwise disjoint, the invariant that makes lookups a binary search.
type series struct {
	entries []*Entry
}

// find returns the entry whose window contains at, if any.
func (s *series) find(at temporal.TimeOfDay) (*Entry, bool) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].Window.Close > at })
	if i < len(s.entries) && s.entries[i].Window.Contains(at) {
		return s.entries[i], true
	}
	return nil, false
}

// Store is a bounded, concurrency-safe window cache. The zero value is
// not usable; construct with NewStore.
type Store struct {
	mu      sync.RWMutex
	cap     int
	size    int   // total windows across all series
	evicted int64 // windows shed by capacity eviction (not invalidation)
	epochN  uint64
	buckets map[Key]map[PointKey]*series
}

// NewStore builds a store holding at most capacity windows (0 means
// DefaultCapacity).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{cap: capacity, buckets: make(map[Key]map[PointKey]*series)}
}

// Epoch returns the invalidation epoch; capture it before the search
// whose result will be inserted and hand it back to Insert.
func (s *Store) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epochN
}

// Lookup returns the entry whose validity window contains the
// departure at, if one is stored for the query family.
func (s *Store) Lookup(k Key, pk PointKey, at temporal.TimeOfDay) (*Entry, bool) {
	e, _ := s.Probe(k, pk, at)
	return e, e != nil
}

// MissKind says why a Probe found nothing — the decision-provenance
// split between "we never cached this family" and "we cached it, but
// not for this departure" (the latter is the gap point-free answers,
// ROADMAP open item 1, would close).
type MissKind uint8

const (
	// MissNone: the probe hit.
	MissNone MissKind = iota
	// MissFamilyAbsent: no validity series is stored for the endpoint
	// family (speed bucket or point pair never inserted).
	MissFamilyAbsent
	// MissOutsideWindows: the family's series exists but the departure
	// time falls outside every stored validity window.
	MissOutsideWindows
)

// Probe is Lookup additionally reporting why it missed. A hit returns
// (entry, MissNone).
func (s *Store) Probe(k Key, pk PointKey, at temporal.TimeOfDay) (*Entry, MissKind) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[k]
	if !ok {
		return nil, MissFamilyAbsent
	}
	ser, ok := b[pk]
	if !ok {
		return nil, MissFamilyAbsent
	}
	if e, ok := ser.find(at); ok {
		return e, MissNone
	}
	return nil, MissOutsideWindows
}

// Insert stores an entry, keeping the series sorted and disjoint. A
// window overlapping an already-stored one is dropped (both are proven
// correct over their windows; serving either is sound, and concurrent
// searches in one slot derive identical windows anyway). Entries
// computed before the store's current epoch are discarded — they raced
// an invalidation. Reports whether the entry was stored.
func (s *Store) Insert(k Key, pk PointKey, e *Entry, epoch uint64) bool {
	if e == nil || e.Window.Duration() <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch != s.epochN {
		return false
	}
	b, ok := s.buckets[k]
	if !ok {
		b = make(map[PointKey]*series)
		s.buckets[k] = b
	}
	ser, ok := b[pk]
	if !ok {
		ser = &series{}
		b[pk] = ser
	}
	i := sort.Search(len(ser.entries), func(i int) bool { return ser.entries[i].Window.Open >= e.Window.Open })
	if i > 0 && ser.entries[i-1].Window.Overlaps(e.Window) {
		return false
	}
	if i < len(ser.entries) && ser.entries[i].Window.Overlaps(e.Window) {
		return false
	}
	ser.entries = append(ser.entries, nil)
	copy(ser.entries[i+1:], ser.entries[i:])
	ser.entries[i] = e
	s.size++
	for s.size > s.cap {
		s.evictLocked(k, e)
	}
	return true
}

// evictLocked sheds one bucket other than keep (the bucket just written
// to); when keep is the only bucket left it drops that bucket's windows
// other than keepE instead, so a hot OD pair larger than the capacity
// still serves its latest window.
func (s *Store) evictLocked(keep Key, keepE *Entry) {
	for k, b := range s.buckets {
		if k == keep {
			if len(s.buckets) > 1 {
				continue
			}
			for pk, ser := range b {
				for i := 0; i < len(ser.entries); {
					if ser.entries[i] == keepE {
						i++
						continue
					}
					copy(ser.entries[i:], ser.entries[i+1:])
					ser.entries[len(ser.entries)-1] = nil // release for GC
					ser.entries = ser.entries[:len(ser.entries)-1]
					s.size--
					s.evicted++
					if s.size <= s.cap {
						s.dropEmptyLocked(k, pk)
						return
					}
				}
				s.dropEmptyLocked(k, pk)
			}
			return
		}
		for _, ser := range b {
			s.size -= len(ser.entries)
			s.evicted += int64(len(ser.entries))
		}
		delete(s.buckets, k)
		return
	}
}

func (s *Store) dropEmptyLocked(k Key, pk PointKey) {
	if ser, ok := s.buckets[k][pk]; ok && len(ser.entries) == 0 {
		delete(s.buckets[k], pk)
		if len(s.buckets[k]) == 0 {
			delete(s.buckets, k)
		}
	}
}

// InvalidateRange drops every window overlapping the interval — the
// slot-granular invalidation hook: a schedule concern scoped to one
// checkpoint slot voids exactly the windows whose departures (and so,
// by the answer-window clamp, whose whole walks) touch that slot.
// Full-day windows (static-method answers) overlap every slot and are
// always dropped.
func (s *Store) InvalidateRange(iv temporal.Interval) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochN++
	for k, b := range s.buckets {
		for pk, ser := range b {
			old := ser.entries
			kept := old[:0]
			for _, e := range old {
				if e.Window.Overlaps(iv) {
					s.size--
					continue
				}
				kept = append(kept, e)
			}
			for i := len(kept); i < len(old); i++ {
				old[i] = nil // release dropped entries for GC
			}
			ser.entries = kept
			if len(ser.entries) == 0 {
				delete(b, pk)
			}
		}
		if len(b) == 0 {
			delete(s.buckets, k)
		}
	}
}

// InvalidateAll drops every window.
func (s *Store) InvalidateAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochN++
	s.buckets = make(map[Key]map[PointKey]*series)
	s.size = 0
}

// Len returns the number of stored windows.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Cap returns the window capacity the store evicts down to.
func (s *Store) Cap() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cap
}

// Evictions returns the number of windows shed by capacity eviction
// since construction. Invalidation drops are not counted — they are
// correctness, not pressure.
func (s *Store) Evictions() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.evicted
}

// PairCoverage summarises one OD-pair bucket: the distinct endpoint
// families it holds, the total stored windows, and the summed window
// duration in seconds. Windows within one family are disjoint (the
// series invariant), so CoveredSec/Families never exceeds a day —
// CoveredSec/(Families·86400) is the mean share of the 24h departure
// axis a family of the pair can answer without an engine.
type PairCoverage struct {
	Key        Key
	Families   int
	Windows    int
	CoveredSec float64
}

// Coverage snapshots every bucket's window-count and day-coverage
// tallies under one read lock, sorted by descending window count (ties
// by ascending Src then Tgt) so scrape output is deterministic.
func (s *Store) Coverage() []PairCoverage {
	s.mu.RLock()
	out := make([]PairCoverage, 0, len(s.buckets))
	for k, b := range s.buckets {
		pc := PairCoverage{Key: k, Families: len(b)}
		for _, ser := range b {
			pc.Windows += len(ser.entries)
			for _, e := range ser.entries {
				pc.CoveredSec += float64(e.Window.Duration())
			}
		}
		out = append(out, pc)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Windows != out[j].Windows {
			return out[i].Windows > out[j].Windows
		}
		if out[i].Key.Src != out[j].Key.Src {
			return out[i].Key.Src < out[j].Key.Src
		}
		return out[i].Key.Tgt < out[j].Key.Tgt
	})
	return out
}
