package model

import (
	"fmt"
	"sort"

	"indoorpath/internal/geom"
	"indoorpath/internal/temporal"
)

// Venue is an immutable indoor space: partitions, doors, and the
// accessibility mappings derived from door arcs. Build one with a
// Builder; all query-time lookups are O(1) or O(degree).
type Venue struct {
	Name       string
	partitions []Partition
	doors      []Door

	p2d      [][]DoorID // all doors attached to a partition
	p2dEnter [][]DoorID // P2D▷: doors through which one can enter
	p2dLeave [][]DoorID // P2D◁: doors through which one can leave

	// distOverride holds explicit intra-partition door-to-door distances
	// keyed by partition and an ordered door pair; used for venues built
	// from published distance tables rather than geometry.
	distOverride map[PartitionID]map[[2]DoorID]float64

	indexes map[int]*geom.GridIndex // per-floor point-location index
	floors  []int                   // sorted distinct floors

	partByName map[string]PartitionID
	doorByName map[string]DoorID
}

// PartitionByName resolves a partition by display name.
func (v *Venue) PartitionByName(name string) (PartitionID, bool) {
	id, ok := v.partByName[name]
	return id, ok
}

// DoorByName resolves a door by display name.
func (v *Venue) DoorByName(name string) (DoorID, bool) {
	id, ok := v.doorByName[name]
	return id, ok
}

// PartitionCount returns the number of partitions (including outdoors
// and stairwells if present).
func (v *Venue) PartitionCount() int { return len(v.partitions) }

// DoorCount returns the number of doors.
func (v *Venue) DoorCount() int { return len(v.doors) }

// Partition returns the partition with the given id.
func (v *Venue) Partition(id PartitionID) *Partition {
	return &v.partitions[id]
}

// Door returns the door with the given id.
func (v *Venue) Door(id DoorID) *Door { return &v.doors[id] }

// Partitions returns the partition slice (shared; do not mutate).
func (v *Venue) Partitions() []Partition { return v.partitions }

// Doors returns the door slice (shared; do not mutate).
func (v *Venue) Doors() []Door { return v.doors }

// Floors returns the sorted distinct floor numbers.
func (v *Venue) Floors() []int { return v.floors }

// DoorsOf returns P2D(p): every door attached to partition p.
func (v *Venue) DoorsOf(p PartitionID) []DoorID { return v.p2d[p] }

// EnterDoors returns P2D▷(p): doors through which one can enter p.
func (v *Venue) EnterDoors(p PartitionID) []DoorID { return v.p2dEnter[p] }

// LeaveDoors returns P2D◁(p): doors through which one can leave p.
func (v *Venue) LeaveDoors(p PartitionID) []DoorID { return v.p2dLeave[p] }

// PartitionsOf returns D2P(d): the partitions door d connects.
func (v *Venue) PartitionsOf(d DoorID) []PartitionID {
	var out []PartitionID
	seen := func(p PartitionID) bool {
		for _, q := range out {
			if q == p {
				return true
			}
		}
		return false
	}
	for _, a := range v.doors[d].Arcs {
		if !seen(a.From) {
			out = append(out, a.From)
		}
		if !seen(a.To) {
			out = append(out, a.To)
		}
	}
	return out
}

// EnterParts returns D2P▷(d): partitions one can enter through d.
func (v *Venue) EnterParts(d DoorID) []PartitionID {
	var out []PartitionID
	for _, a := range v.doors[d].Arcs {
		dup := false
		for _, q := range out {
			if q == a.To {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a.To)
		}
	}
	return out
}

// LeaveParts returns D2P◁(d): partitions one can leave through d.
func (v *Venue) LeaveParts(d DoorID) []PartitionID {
	var out []PartitionID
	for _, a := range v.doors[d].Arcs {
		dup := false
		for _, q := range out {
			if q == a.From {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, a.From)
		}
	}
	return out
}

// NextPartitions returns the partitions reachable by crossing door d
// out of partition from — the v′ of Algorithm 1 line 27, resolved per
// arc rather than by set difference so one-way doors behave correctly.
func (v *Venue) NextPartitions(d DoorID, from PartitionID) []PartitionID {
	var out []PartitionID
	for _, a := range v.doors[d].Arcs {
		if a.From == from {
			out = append(out, a.To)
		}
	}
	return out
}

// PrevPartitions returns the partitions from which door d can be
// crossed into partition to — the arc-exact reverse of NextPartitions,
// used by destination-rooted (reverse) runs. One-way doors behave
// correctly: an arc contributes its From side only when its To side
// matches.
func (v *Venue) PrevPartitions(d DoorID, to PartitionID) []PartitionID {
	var out []PartitionID
	for _, a := range v.doors[d].Arcs {
		if a.To == to {
			out = append(out, a.From)
		}
	}
	return out
}

// CanCross reports whether door d permits the transition from → to.
func (v *Venue) CanCross(d DoorID, from, to PartitionID) bool {
	for _, a := range v.doors[d].Arcs {
		if a.From == from && a.To == to {
			return true
		}
	}
	return false
}

// DistOverride returns the explicit intra-partition distance between two
// doors of partition p when one was declared via Builder.SetDistance.
func (v *Venue) DistOverride(p PartitionID, a, b DoorID) (float64, bool) {
	m, ok := v.distOverride[p]
	if !ok {
		return 0, false
	}
	if a > b {
		a, b = b, a
	}
	d, ok := m[[2]DoorID{a, b}]
	return d, ok
}

// HasDistOverrides reports whether partition p carries any explicit
// distance entries.
func (v *Venue) HasDistOverrides(p PartitionID) bool {
	return len(v.distOverride[p]) > 0
}

// Locate returns the partition covering point pt. Boundary points
// resolve to the partition whose centre is nearest; outdoor partitions
// are never returned. ok is false when the point is in no partition.
func (v *Venue) Locate(pt geom.Point) (PartitionID, bool) {
	idx, ok := v.indexes[pt.Floor]
	if !ok {
		return NoPartition, false
	}
	id, ok := idx.LocateFirst(pt)
	if !ok {
		return NoPartition, false
	}
	return PartitionID(id), true
}

// LocateAll returns every partition containing pt (several for points on
// shared boundaries).
func (v *Venue) LocateAll(pt geom.Point) []PartitionID {
	idx, ok := v.indexes[pt.Floor]
	if !ok {
		return nil
	}
	raw := idx.Locate(pt)
	out := make([]PartitionID, len(raw))
	for i, id := range raw {
		out[i] = PartitionID(id)
	}
	return out
}

// Checkpoints returns the venue's checkpoint set T: the sorted union of
// every door's ATI boundaries. This is the T consumed by Graph_Update
// (Algorithm 3).
func (v *Venue) Checkpoints() temporal.CheckpointSet {
	var ts []temporal.TimeOfDay
	for i := range v.doors {
		if v.doors[i].HasTemporalVariation() {
			ts = v.doors[i].ATIs.Boundaries(ts)
		}
	}
	return temporal.NewCheckpointSet(ts)
}

// OpenDoorCount returns how many doors are open at instant t.
func (v *Venue) OpenDoorCount(t temporal.TimeOfDay) int {
	n := 0
	for i := range v.doors {
		if v.doors[i].OpenAt(t) {
			n++
		}
	}
	return n
}

// Stats summarises a venue for logs, docs and tests.
type Stats struct {
	Partitions, Doors            int
	PublicParts, PrivateParts    int
	HallwayParts, StairwellParts int
	OutdoorParts                 int
	PublicDoors, PrivateDoors    int
	VirtualDoors, StairDoors     int
	EntranceDoors                int
	TemporalDoors                int // doors with at least one closure
	Floors                       int
	Checkpoints                  int
	FloorPartitions, FloorDoors  int // excluding stairwells/stair doors and outdoors
	ArcsTotal                    int
	MultiATIDoors                int
}

// WithSchedules returns a copy of the venue in which the listed doors
// carry replacement ATI schedules (nil entries mean always open). The
// receiver is unchanged; rebuild the IT-Graph over the returned venue
// to answer queries against the new opening hours — the what-if /
// re-planning workflow (e.g. simulating a lockdown or extended hours).
func (v *Venue) WithSchedules(updates map[DoorID]temporal.Schedule) (*Venue, error) {
	out := &Venue{
		Name:         v.Name,
		partitions:   append([]Partition(nil), v.partitions...),
		doors:        make([]Door, len(v.doors)),
		p2d:          v.p2d,
		p2dEnter:     v.p2dEnter,
		p2dLeave:     v.p2dLeave,
		distOverride: v.distOverride,
		indexes:      v.indexes,
		floors:       v.floors,
		partByName:   v.partByName,
		doorByName:   v.doorByName,
	}
	copy(out.doors, v.doors)
	for id, sched := range updates {
		if int(id) < 0 || int(id) >= len(out.doors) {
			return nil, fmt.Errorf("model: WithSchedules: unknown door %d", id)
		}
		if sched == nil {
			sched = temporal.AlwaysOpen()
		}
		norm, err := temporal.NewSchedule(sched...)
		if err != nil {
			return nil, fmt.Errorf("model: WithSchedules door %s: %w", out.doors[id].Name, err)
		}
		out.doors[id].ATIs = norm
	}
	return out, nil
}

// Stats computes venue statistics.
func (v *Venue) Stats() Stats {
	s := Stats{Partitions: len(v.partitions), Doors: len(v.doors), Floors: len(v.floors)}
	for i := range v.partitions {
		switch v.partitions[i].Kind {
		case PublicPartition:
			s.PublicParts++
		case PrivatePartition:
			s.PrivateParts++
		case HallwayPartition:
			s.HallwayParts++
		case StairwellPartition:
			s.StairwellParts++
		case OutdoorPartition:
			s.OutdoorParts++
		}
	}
	s.FloorPartitions = s.Partitions - s.StairwellParts - s.OutdoorParts
	for i := range v.doors {
		d := &v.doors[i]
		switch d.Kind {
		case PublicDoor:
			s.PublicDoors++
		case PrivateDoor:
			s.PrivateDoors++
		case VirtualDoor:
			s.VirtualDoors++
		case StairDoor:
			s.StairDoors++
		case EntranceDoor:
			s.EntranceDoors++
		}
		if d.HasTemporalVariation() {
			s.TemporalDoors++
		}
		if len(d.ATIs) > 1 {
			s.MultiATIDoors++
		}
		s.ArcsTotal += len(d.Arcs)
	}
	s.FloorDoors = s.Doors - s.StairDoors
	s.Checkpoints = v.Checkpoints().Len()
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf(
		"partitions=%d (public=%d private=%d hallway=%d stairwell=%d outdoor=%d) "+
			"doors=%d (public=%d private=%d virtual=%d stair=%d entrance=%d temporal=%d multiATI=%d) "+
			"floors=%d checkpoints=%d arcs=%d",
		s.Partitions, s.PublicParts, s.PrivateParts, s.HallwayParts, s.StairwellParts, s.OutdoorParts,
		s.Doors, s.PublicDoors, s.PrivateDoors, s.VirtualDoors, s.StairDoors, s.EntranceDoors,
		s.TemporalDoors, s.MultiATIDoors, s.Floors, s.Checkpoints, s.ArcsTotal)
}

// buildIndexes constructs the per-floor point-location grids. Outdoor
// partitions and zero-area rectangles are excluded.
func (v *Venue) buildIndexes() error {
	byFloor := map[int][]int{}
	for i := range v.partitions {
		p := &v.partitions[i]
		if p.Kind == OutdoorPartition || p.Rect.Area() <= 0 {
			continue
		}
		byFloor[p.Floor()] = append(byFloor[p.Floor()], i)
	}
	floorSet := map[int]bool{}
	for i := range v.partitions {
		if v.partitions[i].Kind != OutdoorPartition {
			floorSet[v.partitions[i].Floor()] = true
		}
	}
	v.floors = v.floors[:0]
	for f := range floorSet {
		v.floors = append(v.floors, f)
	}
	sort.Ints(v.floors)

	v.indexes = make(map[int]*geom.GridIndex, len(byFloor))
	for f, idxs := range byFloor {
		rects := make([]geom.Rect, len(idxs))
		ids := make([]int32, len(idxs))
		for k, i := range idxs {
			rects[k] = v.partitions[i].Rect
			ids[k] = int32(i)
		}
		g, err := geom.NewGridIndex(f, rects, ids, 0)
		if err != nil {
			return fmt.Errorf("model: floor %d index: %w", f, err)
		}
		v.indexes[f] = g
	}
	return nil
}
