package model

import (
	"fmt"
	"math"

	"indoorpath/internal/geom"
)

// Problem is one venue-consistency finding.
type Problem struct {
	// Severity is "error" for findings that will produce wrong routing
	// answers and "warn" for suspicious-but-servable modelling.
	Severity string
	Message  string
}

// String implements fmt.Stringer.
func (p Problem) String() string { return p.Severity + ": " + p.Message }

// Lint runs deep consistency checks beyond what Build enforces. Build
// guarantees structural well-formedness (valid IDs, connected doors,
// normal schedules); Lint targets modelling mistakes in hand-authored
// or imported venues:
//
//   - partitions with overlapping interiors on one floor;
//   - doors positioned far from a partition they supposedly serve;
//   - doors that are never open;
//   - partitions unreachable from the rest of the venue even with every
//     door open;
//   - private partitions with no doors at all (dead space);
//   - stairwells that do not bridge two floors.
//
// The returned slice is empty for a clean venue.
func (v *Venue) Lint() []Problem {
	var out []Problem
	errf := func(format string, args ...any) {
		out = append(out, Problem{Severity: "error", Message: fmt.Sprintf(format, args...)})
	}
	warnf := func(format string, args ...any) {
		out = append(out, Problem{Severity: "warn", Message: fmt.Sprintf(format, args...)})
	}

	// Overlapping partitions (same floor, positive-area intersection).
	for i := 0; i < len(v.partitions); i++ {
		pi := &v.partitions[i]
		if pi.Kind == OutdoorPartition || pi.Rect.Area() <= 0 {
			continue
		}
		for j := i + 1; j < len(v.partitions); j++ {
			pj := &v.partitions[j]
			if pj.Kind == OutdoorPartition || pj.Rect.Area() <= 0 {
				continue
			}
			if pi.Rect.OverlapsInterior(pj.Rect) {
				errf("partitions %s and %s overlap", pi.Name, pj.Name)
			}
		}
	}

	// Door placement and openness.
	for i := range v.doors {
		d := &v.doors[i]
		if len(d.ATIs) == 0 {
			warnf("door %s is never open", d.Name)
		}
		for _, p := range v.PartitionsOf(d.ID) {
			part := v.Partition(p)
			if part.Kind == OutdoorPartition || part.Rect.Area() <= 0 {
				continue
			}
			// Stair doors sit on one of the stairwell's two floors.
			floorOK := d.Pos.Floor == part.Rect.Floor ||
				(part.Kind == StairwellPartition && d.Pos.Floor == part.TopFloor)
			if !floorOK {
				errf("door %s (floor %d) serves partition %s on floor %d",
					d.Name, d.Pos.Floor, part.Name, part.Rect.Floor)
				continue
			}
			if part.Kind == StairwellPartition {
				continue // stair-door geometry is conventional, not wall-aligned
			}
			clamped := part.Rect.ClampPoint(geom.Pt(d.Pos.X, d.Pos.Y, part.Rect.Floor))
			if dist := math.Hypot(clamped.X-d.Pos.X, clamped.Y-d.Pos.Y); dist > 1.0 {
				warnf("door %s is %.1f m away from partition %s", d.Name, dist, part.Name)
			}
		}
	}

	// Dead space and stairwell shape.
	for i := range v.partitions {
		p := &v.partitions[i]
		if p.Kind != OutdoorPartition && len(v.DoorsOf(p.ID)) == 0 {
			errf("partition %s has no doors", p.Name)
		}
		if p.Kind == StairwellPartition && p.TopFloor == p.Rect.Floor {
			warnf("stairwell %s does not span two floors", p.Name)
		}
	}

	// Reachability with every door open (undirected over arcs).
	if n := len(v.partitions); n > 0 {
		seen := make([]bool, n)
		var stack []PartitionID
		// Start from the first non-outdoor partition.
		for i := range v.partitions {
			if v.partitions[i].Kind != OutdoorPartition {
				stack = append(stack, PartitionID(i))
				seen[i] = true
				break
			}
		}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, d := range v.DoorsOf(p) {
				for _, a := range v.Door(d).Arcs {
					for _, nb := range []PartitionID{a.From, a.To} {
						if !seen[nb] {
							seen[nb] = true
							stack = append(stack, nb)
						}
					}
				}
			}
		}
		for i := range v.partitions {
			if !seen[i] && v.partitions[i].Kind != OutdoorPartition {
				warnf("partition %s is disconnected from the venue", v.partitions[i].Name)
			}
		}
	}
	return out
}
