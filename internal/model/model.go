// Package model defines the indoor space model underlying the IT-Graph:
// partitions (rooms, hallway cells, staircases, outdoors), doors with
// directionality and active time intervals, and the accessibility
// mappings P2D/D2P of Lu et al. (ICDE 2012) extended with the temporal
// labels of Liu et al. (ICDE 2020).
//
// A Venue is immutable once built; construct it with a Builder. IDs are
// dense small integers assigned in insertion order, so algorithm state
// can live in flat slices.
package model

import (
	"fmt"

	"indoorpath/internal/geom"
	"indoorpath/internal/temporal"
)

// PartitionID identifies a partition within one venue.
type PartitionID int32

// DoorID identifies a door within one venue.
type DoorID int32

// NoPartition is the null partition ID.
const NoPartition PartitionID = -1

// NoDoor is the null door ID.
const NoDoor DoorID = -1

// PartitionKind classifies a partition. The paper distinguishes public
// (PBP) and private (PRP) partitions; we additionally tag hallway cells,
// staircases and the outdoors for generators and display — routing
// treats Hallway, Stairwell and Outdoor exactly like Public.
type PartitionKind uint8

// Partition kinds.
const (
	PublicPartition    PartitionKind = iota // PBP: room open to everyone
	PrivatePartition                        // PRP: staff-only room, never traversed
	HallwayPartition                        // public corridor cell (from decomposition)
	StairwellPartition                      // public stairwell connecting two floors
	OutdoorPartition                        // the exterior, vertex v0 in the IT-Graph
)

// String implements fmt.Stringer.
func (k PartitionKind) String() string {
	switch k {
	case PublicPartition:
		return "PBP"
	case PrivatePartition:
		return "PRP"
	case HallwayPartition:
		return "HALL"
	case StairwellPartition:
		return "STAIR"
	case OutdoorPartition:
		return "OUT"
	}
	return fmt.Sprintf("PartitionKind(%d)", uint8(k))
}

// IsPrivate reports whether the kind blocks through-traffic (rule 2 of
// the ITSPQ definition).
func (k PartitionKind) IsPrivate() bool { return k == PrivatePartition }

// DoorKind classifies a door: the paper's public (PBD) and private (PRD)
// doors plus the virtual doors introduced by hallway decomposition and
// stair doors connecting floors.
type DoorKind uint8

// Door kinds.
const (
	PublicDoor   DoorKind = iota // PBD
	PrivateDoor                  // PRD: leads into a private partition
	VirtualDoor                  // boundary between two decomposed hallway cells
	StairDoor                    // end of a stairway
	EntranceDoor                 // building entrance (connects to outdoors)
)

// String implements fmt.Stringer.
func (k DoorKind) String() string {
	switch k {
	case PublicDoor:
		return "PBD"
	case PrivateDoor:
		return "PRD"
	case VirtualDoor:
		return "VIRT"
	case StairDoor:
		return "STAIR"
	case EntranceDoor:
		return "ENTR"
	}
	return fmt.Sprintf("DoorKind(%d)", uint8(k))
}

// Partition is one vertex of the IT-Graph: an indoor region bounded by
// walls and doors. After decomposition every partition is an axis-aligned
// rectangle; outdoors has a zero rectangle.
type Partition struct {
	ID   PartitionID
	Name string
	Kind PartitionKind
	Rect geom.Rect
	// TopFloor is the upper floor a stairwell reaches; equals Rect.Floor
	// for ordinary partitions.
	TopFloor int
}

// Floor returns the partition's (lower) floor.
func (p Partition) Floor() int { return p.Rect.Floor }

// String implements fmt.Stringer.
func (p Partition) String() string {
	return fmt.Sprintf("%s(%s #%d)", p.Name, p.Kind, p.ID)
}

// Arc is one permitted transition through a door: leaving From, entering
// To. A standard bidirectional door between partitions a and b carries
// the two arcs (a→b) and (b→a); a one-way door carries one.
type Arc struct {
	From, To PartitionID
}

// Door is one edge label of the IT-Graph: a door (possibly virtual) with
// its position, its directionality arcs and its ATIs.
type Door struct {
	ID   DoorID
	Name string
	Kind DoorKind
	Pos  geom.Point
	// ATIs is the door's active-interval schedule in normal form. A door
	// without temporal variation has AlwaysOpen().
	ATIs temporal.Schedule
	// Arcs lists the permitted transitions. Most doors have two.
	Arcs []Arc
}

// OpenAt reports whether the door is open at instant t.
func (d Door) OpenAt(t temporal.TimeOfDay) bool { return d.ATIs.Contains(t) }

// HasTemporalVariation reports whether the door is ever closed.
func (d Door) HasTemporalVariation() bool { return !d.ATIs.AlwaysOpenAllDay() }

// Bidirectional reports whether the door can be crossed both ways
// between some pair of partitions.
func (d Door) Bidirectional() bool {
	for i, a := range d.Arcs {
		for _, b := range d.Arcs[i+1:] {
			if a.From == b.To && a.To == b.From {
				return true
			}
		}
	}
	return false
}

// String implements fmt.Stringer.
func (d Door) String() string {
	return fmt.Sprintf("%s(%s #%d)", d.Name, d.Kind, d.ID)
}
