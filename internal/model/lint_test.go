package model

import (
	"strings"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/temporal"
)

func lintMessages(ps []Problem) string {
	var sb strings.Builder
	for _, p := range ps {
		sb.WriteString(p.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestLintCleanVenue(t *testing.T) {
	v, _, _ := twoRooms(t)
	if ps := v.Lint(); len(ps) != 0 {
		t.Errorf("clean venue has findings:\n%s", lintMessages(ps))
	}
}

func TestLintOverlap(t *testing.T) {
	b := NewBuilder("overlap")
	p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	q := b.AddPartition("q", PublicPartition, geom.NewRect(5, 5, 15, 15, 0))
	d := b.AddDoor("d", PublicDoor, geom.Pt(7, 7, 0), nil)
	b.ConnectBi(d, p, q)
	v := b.MustBuild()
	ps := v.Lint()
	if !strings.Contains(lintMessages(ps), "overlap") {
		t.Errorf("overlap not reported:\n%s", lintMessages(ps))
	}
}

func TestLintFarDoor(t *testing.T) {
	b := NewBuilder("far-door")
	p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	q := b.AddPartition("q", PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", PublicDoor, geom.Pt(50, 50, 0), nil) // nowhere near
	b.ConnectBi(d, p, q)
	v := b.MustBuild()
	if !strings.Contains(lintMessages(v.Lint()), "away from partition") {
		t.Error("distant door not reported")
	}
}

func TestLintNeverOpenAndWrongFloor(t *testing.T) {
	b := NewBuilder("misc")
	p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	q := b.AddPartition("q", PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("shut", PublicDoor, geom.Pt(10, 5, 2), temporal.Schedule{})
	b.ConnectBi(d, p, q)
	v := b.MustBuild()
	msgs := lintMessages(v.Lint())
	if !strings.Contains(msgs, "never open") {
		t.Errorf("never-open door not reported:\n%s", msgs)
	}
	if !strings.Contains(msgs, "floor") {
		t.Errorf("wrong-floor door not reported:\n%s", msgs)
	}
}

func TestLintDisconnected(t *testing.T) {
	b := NewBuilder("islands")
	a1 := b.AddPartition("a1", PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	a2 := b.AddPartition("a2", PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	b1 := b.AddPartition("b1", PublicPartition, geom.NewRect(40, 0, 50, 10, 0))
	b2 := b.AddPartition("b2", PublicPartition, geom.NewRect(50, 0, 60, 10, 0))
	d1 := b.AddDoor("d1", PublicDoor, geom.Pt(10, 5, 0), nil)
	d2 := b.AddDoor("d2", PublicDoor, geom.Pt(50, 5, 0), nil)
	b.ConnectBi(d1, a1, a2)
	b.ConnectBi(d2, b1, b2)
	v := b.MustBuild()
	if !strings.Contains(lintMessages(v.Lint()), "disconnected") {
		t.Error("island not reported")
	}
}

func TestLintStairwellSpan(t *testing.T) {
	b := NewBuilder("flat-stairs")
	h := b.AddPartition("h", HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	sw := b.AddPartition("sw", StairwellPartition, geom.NewRect(10, 0, 13, 3, 0)) // TopFloor not set
	d := b.AddDoor("d", StairDoor, geom.Pt(10, 1, 0), nil)
	b.ConnectBi(d, h, sw)
	v := b.MustBuild()
	if !strings.Contains(lintMessages(v.Lint()), "span two floors") {
		t.Error("flat stairwell not reported")
	}
}
