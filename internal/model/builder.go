package model

import (
	"errors"
	"fmt"

	"indoorpath/internal/geom"
	"indoorpath/internal/temporal"
)

// Builder assembles a Venue incrementally. It is not safe for concurrent
// use. All referenced IDs must come from the same builder.
type Builder struct {
	name       string
	partitions []Partition
	doors      []Door
	partNames  map[string]PartitionID
	doorNames  map[string]DoorID
	override   map[PartitionID]map[[2]DoorID]float64
	outdoors   PartitionID
	errs       []error
}

// NewBuilder starts an empty venue with the given display name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:      name,
		partNames: map[string]PartitionID{},
		doorNames: map[string]DoorID{},
		override:  map[PartitionID]map[[2]DoorID]float64{},
		outdoors:  NoPartition,
	}
}

func (b *Builder) fail(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// AddPartition registers a partition and returns its ID. Names must be
// unique; an empty name is auto-generated ("v<id>").
func (b *Builder) AddPartition(name string, kind PartitionKind, rect geom.Rect) PartitionID {
	id := PartitionID(len(b.partitions))
	if name == "" {
		name = fmt.Sprintf("v%d", id)
	}
	if prev, dup := b.partNames[name]; dup {
		b.fail("model: duplicate partition name %q (ids %d and %d)", name, prev, id)
	}
	b.partNames[name] = id
	b.partitions = append(b.partitions, Partition{
		ID: id, Name: name, Kind: kind, Rect: rect.Canon(), TopFloor: rect.Floor,
	})
	return id
}

// AddStairwell registers a stairwell partition spanning [floor, floor+1]
// with the given footprint on the lower floor.
func (b *Builder) AddStairwell(name string, rect geom.Rect) PartitionID {
	id := b.AddPartition(name, StairwellPartition, rect)
	b.partitions[id].TopFloor = rect.Floor + 1
	return id
}

// Outdoors returns the venue's single outdoor partition, creating it on
// first use (the v0 vertex of the paper's example IT-Graph).
func (b *Builder) Outdoors() PartitionID {
	if b.outdoors == NoPartition {
		b.outdoors = b.AddPartition("outdoors", OutdoorPartition, geom.Rect{})
	}
	return b.outdoors
}

// AddDoor registers a door (no connections yet) and returns its ID. A
// nil schedule means the door is always open. An empty name is
// auto-generated ("d<id>").
func (b *Builder) AddDoor(name string, kind DoorKind, pos geom.Point, atis temporal.Schedule) DoorID {
	id := DoorID(len(b.doors))
	if name == "" {
		name = fmt.Sprintf("d%d", id)
	}
	if prev, dup := b.doorNames[name]; dup {
		b.fail("model: duplicate door name %q (ids %d and %d)", name, prev, id)
	}
	b.doorNames[name] = id
	if atis == nil {
		atis = temporal.AlwaysOpen()
	}
	if !atis.IsNormal() {
		norm, err := temporal.NewSchedule(atis...)
		if err != nil {
			b.fail("model: door %q schedule: %v", name, err)
		} else {
			atis = norm
		}
	}
	b.doors = append(b.doors, Door{ID: id, Name: name, Kind: kind, Pos: pos, ATIs: atis})
	return id
}

// ConnectBi adds the two arcs a→b and b→a through door d.
func (b *Builder) ConnectBi(d DoorID, a, p PartitionID) {
	b.ConnectOneWay(d, a, p)
	b.ConnectOneWay(d, p, a)
}

// ConnectOneWay adds the single arc from→to through door d, modelling
// the door directionality of the paper's Figure 1.
func (b *Builder) ConnectOneWay(d DoorID, from, to PartitionID) {
	if int(d) < 0 || int(d) >= len(b.doors) {
		b.fail("model: connect: unknown door %d", d)
		return
	}
	if !b.validPart(from) || !b.validPart(to) {
		b.fail("model: connect door %s: unknown partition (%d→%d)", b.doors[d].Name, from, to)
		return
	}
	if from == to {
		b.fail("model: connect door %s: self-loop on partition %d", b.doors[d].Name, from)
		return
	}
	for _, arc := range b.doors[d].Arcs {
		if arc.From == from && arc.To == to {
			return // idempotent
		}
	}
	b.doors[d].Arcs = append(b.doors[d].Arcs, Arc{From: from, To: to})
}

func (b *Builder) validPart(p PartitionID) bool {
	return int(p) >= 0 && int(p) < len(b.partitions)
}

// SetDistance declares the intra-partition walking distance between two
// doors of partition p, overriding geometric computation. Distances are
// symmetric; d1 != d2 and dist must be non-negative.
func (b *Builder) SetDistance(p PartitionID, d1, d2 DoorID, dist float64) {
	if !b.validPart(p) {
		b.fail("model: SetDistance: unknown partition %d", p)
		return
	}
	if int(d1) < 0 || int(d1) >= len(b.doors) || int(d2) < 0 || int(d2) >= len(b.doors) {
		b.fail("model: SetDistance on partition %d: unknown door (%d, %d)", p, d1, d2)
		return
	}
	if d1 == d2 {
		b.fail("model: SetDistance: identical doors %d on partition %d", d1, p)
		return
	}
	if dist < 0 {
		b.fail("model: SetDistance: negative distance %f", dist)
		return
	}
	if d1 > d2 {
		d1, d2 = d2, d1
	}
	m := b.override[p]
	if m == nil {
		m = map[[2]DoorID]float64{}
		b.override[p] = m
	}
	m[[2]DoorID{d1, d2}] = dist
}

// PartitionByName resolves a previously added partition.
func (b *Builder) PartitionByName(name string) (PartitionID, bool) {
	id, ok := b.partNames[name]
	return id, ok
}

// DoorByName resolves a previously added door.
func (b *Builder) DoorByName(name string) (DoorID, bool) {
	id, ok := b.doorNames[name]
	return id, ok
}

// Build validates and freezes the venue. The builder remains usable (a
// subsequent Build reflects later additions), but the returned Venue is
// a snapshot.
func (b *Builder) Build() (*Venue, error) {
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	v := &Venue{
		Name:         b.name,
		partitions:   append([]Partition(nil), b.partitions...),
		doors:        make([]Door, len(b.doors)),
		distOverride: map[PartitionID]map[[2]DoorID]float64{},
		partByName:   make(map[string]PartitionID, len(b.partNames)),
		doorByName:   make(map[string]DoorID, len(b.doorNames)),
	}
	for n, id := range b.partNames {
		v.partByName[n] = id
	}
	for n, id := range b.doorNames {
		v.doorByName[n] = id
	}
	for i, d := range b.doors {
		d.Arcs = append([]Arc(nil), d.Arcs...)
		d.ATIs = d.ATIs.Clone()
		v.doors[i] = d
	}
	for p, m := range b.override {
		mm := make(map[[2]DoorID]float64, len(m))
		for k, dist := range m {
			mm[k] = dist
		}
		v.distOverride[p] = mm
	}

	var errs []error
	// Every door must connect something.
	for i := range v.doors {
		if len(v.doors[i].Arcs) == 0 {
			errs = append(errs, fmt.Errorf("model: door %s has no connections", v.doors[i].Name))
		}
	}
	// Distance overrides must reference doors attached to the partition.
	n := len(v.partitions)
	v.p2d = make([][]DoorID, n)
	v.p2dEnter = make([][]DoorID, n)
	v.p2dLeave = make([][]DoorID, n)
	attach := func(dst [][]DoorID, p PartitionID, d DoorID) {
		for _, e := range dst[p] {
			if e == d {
				return
			}
		}
		dst[p] = append(dst[p], d)
	}
	for i := range v.doors {
		d := DoorID(i)
		for _, a := range v.doors[i].Arcs {
			attach(v.p2d, a.From, d)
			attach(v.p2d, a.To, d)
			attach(v.p2dLeave, a.From, d)
			attach(v.p2dEnter, a.To, d)
		}
	}
	for p, m := range v.distOverride {
		for pair := range m {
			for _, d := range []DoorID{pair[0], pair[1]} {
				found := false
				for _, e := range v.p2d[p] {
					if e == d {
						found = true
						break
					}
				}
				if !found {
					errs = append(errs, fmt.Errorf(
						"model: distance override on partition %s references unattached door %s",
						v.partitions[p].Name, v.doors[d].Name))
				}
			}
		}
	}
	if err := v.buildIndexes(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return v, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Venue {
	v, err := b.Build()
	if err != nil {
		panic(err)
	}
	return v
}
