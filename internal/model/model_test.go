package model

import (
	"strings"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/temporal"
)

// twoRooms builds:  hall (0,0)-(10,10) — d1 — roomA (10,0)-(20,10)
//
//	                                   — d2 → roomB (0,10)-(10,20) (one-way in)
//	entrance e on hall's west wall to outdoors.
func twoRooms(t testing.TB) (*Venue, map[string]PartitionID, map[string]DoorID) {
	t.Helper()
	b := NewBuilder("two-rooms")
	hall := b.AddPartition("hall", HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	roomA := b.AddPartition("roomA", PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	roomB := b.AddPartition("roomB", PrivatePartition, geom.NewRect(0, 10, 10, 20, 0))
	out := b.Outdoors()

	d1 := b.AddDoor("d1", PublicDoor, geom.Pt(10, 5, 0),
		temporal.MustSchedule(temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0))))
	d2 := b.AddDoor("d2", PrivateDoor, geom.Pt(5, 10, 0), nil)
	e := b.AddDoor("e", EntranceDoor, geom.Pt(0, 5, 0), nil)

	b.ConnectBi(d1, hall, roomA)
	b.ConnectOneWay(d2, hall, roomB) // enter-only
	b.ConnectBi(e, hall, out)

	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v,
		map[string]PartitionID{"hall": hall, "roomA": roomA, "roomB": roomB, "out": out},
		map[string]DoorID{"d1": d1, "d2": d2, "e": e}
}

func TestBuilderBasics(t *testing.T) {
	v, ps, ds := twoRooms(t)
	if v.PartitionCount() != 4 || v.DoorCount() != 3 {
		t.Fatalf("counts: %d partitions, %d doors", v.PartitionCount(), v.DoorCount())
	}
	if v.Partition(ps["hall"]).Kind != HallwayPartition {
		t.Error("hall kind")
	}
	if v.Door(ds["d2"]).Kind != PrivateDoor {
		t.Error("d2 kind")
	}
	if !v.Door(ds["e"]).ATIs.AlwaysOpenAllDay() {
		t.Error("nil schedule must become always-open")
	}
}

func TestMappings(t *testing.T) {
	v, ps, ds := twoRooms(t)
	hall, roomA, roomB := ps["hall"], ps["roomA"], ps["roomB"]
	d1, d2, e := ds["d1"], ds["d2"], ds["e"]

	if got := v.DoorsOf(hall); len(got) != 3 {
		t.Errorf("P2D(hall) = %v", got)
	}
	// One-way d2: hall can leave through it but not enter.
	leave := v.LeaveDoors(hall)
	enter := v.EnterDoors(hall)
	if !containsDoor(leave, d2) {
		t.Error("d2 should be leaveable from hall")
	}
	if containsDoor(enter, d2) {
		t.Error("d2 must not be enterable into hall")
	}
	if !containsDoor(enter, d1) || !containsDoor(enter, e) {
		t.Error("d1 and e should be enterable into hall")
	}
	// roomB: enter-only.
	if got := v.LeaveDoors(roomB); len(got) != 0 {
		t.Errorf("roomB leave doors = %v", got)
	}
	if got := v.EnterDoors(roomB); len(got) != 1 || got[0] != d2 {
		t.Errorf("roomB enter doors = %v", got)
	}

	if got := v.PartitionsOf(d1); len(got) != 2 {
		t.Errorf("D2P(d1) = %v", got)
	}
	if got := v.EnterParts(d2); len(got) != 1 || got[0] != roomB {
		t.Errorf("D2P▷(d2) = %v", got)
	}
	if got := v.LeaveParts(d2); len(got) != 1 || got[0] != hall {
		t.Errorf("D2P◁(d2) = %v", got)
	}
	if got := v.NextPartitions(d1, hall); len(got) != 1 || got[0] != roomA {
		t.Errorf("NextPartitions(d1, hall) = %v", got)
	}
	if got := v.NextPartitions(d2, roomB); len(got) != 0 {
		t.Errorf("NextPartitions(d2, roomB) = %v (one-way)", got)
	}
	if !v.CanCross(d1, hall, roomA) || !v.CanCross(d1, roomA, hall) {
		t.Error("d1 is bidirectional")
	}
	if v.CanCross(d2, roomB, hall) {
		t.Error("d2 must be one-way")
	}
	if !v.Door(d1).Bidirectional() || v.Door(d2).Bidirectional() {
		t.Error("Bidirectional flags wrong")
	}
}

func TestLocate(t *testing.T) {
	v, ps, _ := twoRooms(t)
	tests := []struct {
		name string
		pt   geom.Point
		want PartitionID
		ok   bool
	}{
		{"hall center", geom.Pt(5, 5, 0), ps["hall"], true},
		{"roomA", geom.Pt(15, 5, 0), ps["roomA"], true},
		{"roomB", geom.Pt(5, 15, 0), ps["roomB"], true},
		{"nowhere", geom.Pt(50, 50, 0), NoPartition, false},
		{"wrong floor", geom.Pt(5, 5, 3), NoPartition, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := v.Locate(tc.pt)
			if ok != tc.ok || (ok && got != tc.want) {
				t.Errorf("Locate(%v) = %v,%v want %v,%v", tc.pt, got, ok, tc.want, tc.ok)
			}
		})
	}
	// Boundary point belongs to both hall and roomA.
	all := v.LocateAll(geom.Pt(10, 5, 0))
	if len(all) != 2 {
		t.Errorf("LocateAll boundary = %v", all)
	}
}

func TestCheckpointsAndStats(t *testing.T) {
	v, _, _ := twoRooms(t)
	cs := v.Checkpoints()
	if cs.Len() != 2 { // 8:00 and 16:00 from d1
		t.Fatalf("checkpoints = %v", cs.Times())
	}
	if n := v.OpenDoorCount(temporal.Clock(12, 0, 0)); n != 3 {
		t.Errorf("open at 12:00 = %d", n)
	}
	if n := v.OpenDoorCount(temporal.Clock(6, 0, 0)); n != 2 {
		t.Errorf("open at 6:00 = %d", n)
	}
	st := v.Stats()
	if st.Partitions != 4 || st.Doors != 3 || st.TemporalDoors != 1 ||
		st.PrivateParts != 1 || st.OutdoorParts != 1 || st.EntranceDoors != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.ArcsTotal != 5 {
		t.Errorf("arcs = %d, want 5", st.ArcsTotal)
	}
	if !strings.Contains(st.String(), "partitions=4") {
		t.Errorf("Stats.String = %q", st.String())
	}
	if st.FloorPartitions != 3 { // excludes outdoors
		t.Errorf("FloorPartitions = %d", st.FloorPartitions)
	}
}

func TestDistOverride(t *testing.T) {
	b := NewBuilder("ov")
	p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	q := b.AddPartition("q", PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	r := b.AddPartition("r", PublicPartition, geom.NewRect(0, 10, 10, 20, 0))
	d1 := b.AddDoor("d1", PublicDoor, geom.Pt(10, 5, 0), nil)
	d2 := b.AddDoor("d2", PublicDoor, geom.Pt(5, 10, 0), nil)
	b.ConnectBi(d1, p, q)
	b.ConnectBi(d2, p, r)
	b.SetDistance(p, d1, d2, 42)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := v.DistOverride(p, d1, d2); !ok || got != 42 {
		t.Errorf("DistOverride = %v,%v", got, ok)
	}
	if got, ok := v.DistOverride(p, d2, d1); !ok || got != 42 {
		t.Errorf("DistOverride reversed = %v,%v", got, ok)
	}
	if _, ok := v.DistOverride(q, d1, d2); ok {
		t.Error("no override on q")
	}
	if !v.HasDistOverrides(p) || v.HasDistOverrides(q) {
		t.Error("HasDistOverrides wrong")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate names", func(t *testing.T) {
		b := NewBuilder("bad")
		b.AddPartition("x", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
		b.AddPartition("x", PublicPartition, geom.NewRect(1, 0, 2, 1, 0))
		if _, err := b.Build(); err == nil {
			t.Error("expected duplicate-name error")
		}
	})
	t.Run("unconnected door", func(t *testing.T) {
		b := NewBuilder("bad")
		b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
		b.AddDoor("d", PublicDoor, geom.Pt(0, 0, 0), nil)
		if _, err := b.Build(); err == nil {
			t.Error("expected unconnected-door error")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
		d := b.AddDoor("d", PublicDoor, geom.Pt(0, 0, 0), nil)
		b.ConnectOneWay(d, p, p)
		if _, err := b.Build(); err == nil {
			t.Error("expected self-loop error")
		}
	})
	t.Run("unknown ids", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
		d := b.AddDoor("d", PublicDoor, geom.Pt(0, 0, 0), nil)
		b.ConnectOneWay(d, p, PartitionID(99))
		if _, err := b.Build(); err == nil {
			t.Error("expected unknown-partition error")
		}
	})
	t.Run("bad override", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
		q := b.AddPartition("q", PublicPartition, geom.NewRect(1, 0, 2, 1, 0))
		d := b.AddDoor("d", PublicDoor, geom.Pt(1, 0.5, 0), nil)
		d2 := b.AddDoor("far", PublicDoor, geom.Pt(0, 0.5, 0), nil)
		b.ConnectBi(d, p, q)
		b.ConnectBi(d2, p, q)
		b.SetDistance(q, d, DoorID(57), 1) // unknown door id -> panic-free failure
		if _, err := b.Build(); err == nil {
			t.Error("expected invalid override error")
		}
	})
	t.Run("negative distance", func(t *testing.T) {
		b := NewBuilder("bad")
		p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
		q := b.AddPartition("q", PublicPartition, geom.NewRect(1, 0, 2, 1, 0))
		d := b.AddDoor("d", PublicDoor, geom.Pt(1, 0.5, 0), nil)
		e := b.AddDoor("e", PublicDoor, geom.Pt(1, 0.7, 0), nil)
		b.ConnectBi(d, p, q)
		b.ConnectBi(e, p, q)
		b.SetDistance(p, d, e, -1)
		if _, err := b.Build(); err == nil {
			t.Error("expected negative-distance error")
		}
	})
}

func TestConnectIdempotent(t *testing.T) {
	b := NewBuilder("idem")
	p := b.AddPartition("p", PublicPartition, geom.NewRect(0, 0, 1, 1, 0))
	q := b.AddPartition("q", PublicPartition, geom.NewRect(1, 0, 2, 1, 0))
	d := b.AddDoor("d", PublicDoor, geom.Pt(1, 0.5, 0), nil)
	b.ConnectBi(d, p, q)
	b.ConnectBi(d, p, q) // repeated: no duplicate arcs
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(v.Door(d).Arcs); got != 2 {
		t.Errorf("arcs = %d, want 2", got)
	}
}

func TestStairwell(t *testing.T) {
	b := NewBuilder("stairs")
	h0 := b.AddPartition("hall0", HallwayPartition, geom.NewRect(0, 0, 10, 10, 0))
	h1 := b.AddPartition("hall1", HallwayPartition, geom.NewRect(0, 0, 10, 10, 1))
	sw := b.AddStairwell("stair", geom.NewRect(10, 0, 13, 3, 0))
	lo := b.AddDoor("stair-lo", StairDoor, geom.Pt(10, 1.5, 0), nil)
	hi := b.AddDoor("stair-hi", StairDoor, geom.Pt(10, 1.5, 1), nil)
	b.ConnectBi(lo, h0, sw)
	b.ConnectBi(hi, sw, h1)
	b.SetDistance(sw, lo, hi, 20) // paper: 20 m stairway
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if v.Partition(sw).TopFloor != 1 {
		t.Error("TopFloor")
	}
	if got := v.Floors(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Floors = %v", got)
	}
	if d, ok := v.DistOverride(sw, hi, lo); !ok || d != 20 {
		t.Errorf("stairway length = %v,%v", d, ok)
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[string]string{
		PublicPartition.String():    "PBP",
		PrivatePartition.String():   "PRP",
		HallwayPartition.String():   "HALL",
		StairwellPartition.String(): "STAIR",
		OutdoorPartition.String():   "OUT",
		PublicDoor.String():         "PBD",
		PrivateDoor.String():        "PRD",
		VirtualDoor.String():        "VIRT",
		StairDoor.String():          "STAIR",
		EntranceDoor.String():       "ENTR",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("kind string %q != %q", got, want)
		}
	}
	if !PrivatePartition.IsPrivate() || PublicPartition.IsPrivate() {
		t.Error("IsPrivate")
	}
	if s := PartitionKind(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown kind string %q", s)
	}
	if s := DoorKind(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown door kind string %q", s)
	}
}

func TestWithSchedules(t *testing.T) {
	v, _, ds := twoRooms(t)
	lockdown, err := v.WithSchedules(map[DoorID]temporal.Schedule{
		ds["d1"]: {}, // never open
		ds["e"]:  temporal.MustSchedule(temporal.MustInterval(temporal.Clock(9, 0, 0), temporal.Clock(10, 0, 0))),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if !v.Door(ds["d1"]).OpenAt(temporal.Clock(12, 0, 0)) {
		t.Error("original venue mutated")
	}
	if lockdown.Door(ds["d1"]).OpenAt(temporal.Clock(12, 0, 0)) {
		t.Error("locked door still open")
	}
	if !lockdown.Door(ds["e"]).OpenAt(temporal.Clock(9, 30, 0)) {
		t.Error("rescheduled entrance closed at 9:30")
	}
	// nil schedule = always open.
	reopened, err := lockdown.WithSchedules(map[DoorID]temporal.Schedule{ds["d1"]: nil})
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.Door(ds["d1"]).ATIs.AlwaysOpenAllDay() {
		t.Error("nil schedule must reopen the door")
	}
	// Topology and lookups shared and intact.
	if lockdown.PartitionCount() != v.PartitionCount() {
		t.Error("partition count changed")
	}
	if _, ok := lockdown.DoorByName("d1"); !ok {
		t.Error("name lookup lost")
	}
	// Errors.
	if _, err := v.WithSchedules(map[DoorID]temporal.Schedule{DoorID(99): nil}); err == nil {
		t.Error("unknown door must fail")
	}
	bad := temporal.Schedule{{Open: temporal.Clock(5, 0, 0), Close: temporal.Clock(4, 0, 0)}}
	if _, err := v.WithSchedules(map[DoorID]temporal.Schedule{ds["d1"]: bad}); err == nil {
		t.Error("invalid schedule must fail")
	}
}

func containsDoor(ds []DoorID, d DoorID) bool {
	for _, e := range ds {
		if e == d {
			return true
		}
	}
	return false
}
