// Skeleton-layer suite: pool answers composed from stored skeleton
// families must be byte-identical to fresh sequential engine runs, a
// jittered same-pair wave must collapse to about one search, and the
// hit/miss partition must keep holding with the new hit class.
package service

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/temporal"
)

// jitterPair returns n queries between independently jittered interior
// points of two fixed cells of a gridVenue (cell size 10), all at the
// same departure — the hot-lobby wave shape exact and window caches
// get zero reuse on.
func jitterPair(rng *rand.Rand, sr, sc, tr, tc int, at temporal.TimeOfDay, n int) []core.Query {
	qs := make([]core.Query, n)
	for i := range qs {
		qs[i] = core.Query{
			Source: geom.Pt(float64(sc)*10+1+rng.Float64()*8, float64(sr)*10+1+rng.Float64()*8, 0),
			Target: geom.Pt(float64(tc)*10+1+rng.Float64()*8, float64(tr)*10+1+rng.Float64()*8, 0),
			At:     at,
		}
	}
	return qs
}

// TestSkeletonPoolByteIdentical: every answer out of a skeleton-cache
// pool — composed or searched — equals the fresh sequential engine
// answer byte for byte, across methods and random temporal venues, and
// the workload actually exercises compositions.
func TestSkeletonPoolByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	var skeletonHits int64
	for trial := 0; trial < 6; trial++ {
		v := gridVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		for _, m := range allMethods {
			pool := New(g, Options{
				Engine:        core.Options{Method: m},
				CacheCapacity: -1, // isolate the skeleton path
				SkeletonCache: true,
			})
			oracle := core.NewEngine(g, core.Options{Method: m})
			at := temporal.TimeOfDay(rng.Intn(86400))
			for _, q := range jitterPair(rng, 0, 0, 2, 2, at, 12) {
				r := pool.RouteResult(q)
				wantPath, _, wantErr := oracle.Route(q)
				if (r.Err == nil) != (wantErr == nil) {
					t.Fatalf("%v hit=%q: err %v, sequential %v", m, r.Hit, r.Err, wantErr)
				}
				if !reflect.DeepEqual(r.Path, wantPath) {
					t.Fatalf("%v hit=%q at %v: pool path %+v != sequential %+v", m, r.Hit, q.At, r.Path, wantPath)
				}
			}
			skeletonHits += pool.Stats().SkeletonHits
		}
	}
	if skeletonHits == 0 {
		t.Fatal("no skeleton hits across all trials — the property was vacuous")
	}
}

// TestSkeletonPoolStatsPartition pins the extended accounting: exact +
// window + skeleton + deduped + misses == queries, engine searches
// never exceed misses, gauges reflect the store, and provenance uses
// the new reason when a family refuses.
func TestSkeletonPoolStatsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	v := gridVenue(t, rng, 3, 3)
	pool := New(itgraph.MustNew(v), Options{
		Engine:        core.Options{Method: core.MethodSyn},
		WindowCache:   true,
		SkeletonCache: true,
	})
	at := temporal.Clock(12, 0, 0)
	pool.RouteBatch(jitterPair(rng, 0, 0, 2, 2, at, 20))
	pool.RouteBatch(jitterPair(rng, 0, 2, 2, 0, at, 20))
	for _, q := range randomQueries(rng, 60, 30, 30) {
		pool.Route(q)
	}
	st := pool.Stats()
	if st.SkeletonHits == 0 {
		t.Fatalf("no skeleton hits: %v", st)
	}
	if got := st.CacheHits + st.WindowHits + st.SkeletonHits + st.Deduped + st.CacheMisses(); got != st.Queries {
		t.Fatalf("partition broken: hits+misses=%d queries=%d (%v)", got, st.Queries, st)
	}
	if st.EngineSearches > st.CacheMisses() {
		t.Fatalf("EngineSearches %d > CacheMisses %d", st.EngineSearches, st.CacheMisses())
	}
	if st.SkelFamilies == 0 || st.SkelCapacity == 0 {
		t.Fatalf("skeleton gauges empty: %v", st)
	}
	missSum := st.Reasons.MissUncacheable + st.Reasons.MissNoExactEntry +
		st.Reasons.MissWindowFamilyAbsent + st.Reasons.MissOutsideWindows +
		st.Reasons.MissSkeletonUncertified + st.Reasons.MissEpochRaced
	if missSum != st.CacheMisses() {
		t.Fatalf("miss reasons sum %d != CacheMisses %d (%v)", missSum, st.CacheMisses(), st.Reasons)
	}
	if cov := pool.SkeletonCoverage(); len(cov) == 0 {
		t.Fatal("SkeletonCoverage empty with families stored")
	}
}

// TestSkeletonWaveCollapses: a coalesced batch wave out of one hot
// partition pair with jittered endpoints must be answered by a handful
// of searches, the rest composed — the headline saving of the
// point-free layer (ISSUE 10 acceptance: searches/query well below 1).
func TestSkeletonWaveCollapses(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	v := openGridVenue(t, rng, 3, 3)
	g := itgraph.MustNew(v)
	for _, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
		pool := New(g, Options{
			Engine:        core.Options{Method: m},
			SharedBatch:   true,
			SkeletonCache: true,
			Workers:       4,
		})
		const n = 32
		qs := jitterPair(rng, 0, 0, 2, 2, temporal.Clock(9, 0, 0), n)
		rs, sum := pool.RouteBatchSummary(qs)
		for i, r := range rs {
			if r.Err != nil {
				t.Fatalf("%v query %d: %v", m, i, r.Err)
			}
		}
		if sum.SkeletonHits == 0 {
			t.Fatalf("%v: wave composed nothing: %+v", m, sum)
		}
		if ratio := float64(sum.Searches) / float64(n); ratio > 0.5 {
			t.Fatalf("%v: searches/query = %.2f, want <= 0.5 (%+v)", m, ratio, sum)
		}
		if got := sum.ExactHits + sum.WindowHits + sum.SkeletonHits + sum.Deduped +
			sum.SharedAnswers + sum.Searches - sum.SharedRuns; got != sum.Queries {
			t.Fatalf("%v: summary partition broken: %+v", m, sum)
		}
	}
}

// TestSkeletonUncertifiedProvenance: with a family stored but the
// departure near enough the slot close that the walk cannot finish
// inside it, the composition must refuse and the miss must carry
// obs.ReasonSkeletonUncertified.
func TestSkeletonUncertifiedProvenance(t *testing.T) {
	b := model.NewBuilder("uncert")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0),
		temporal.MustSchedule(temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0))))
	b.ConnectBi(d, hall, room)
	v := b.MustBuild()
	pool := New(itgraph.MustNew(v), Options{
		Engine:        core.Options{Method: core.MethodSyn},
		CacheCapacity: -1,
		SkeletonCache: true,
	})
	seed := core.Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(18, 5, 0), At: temporal.Clock(12, 0, 0)}
	if r := pool.RouteResult(seed); r.Err != nil {
		t.Fatal(r.Err)
	}
	// 16:00:00 - 2s: inside the slot, but ~16 m of walk cannot finish
	// before the 16:00 checkpoint.
	late := core.Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(18, 4, 0), At: temporal.Clock(16, 0, 0) - 2}
	r := pool.RouteResult(late)
	if r.CacheHit {
		t.Fatalf("late query must not be served from the family (hit=%q)", r.Hit)
	}
	if r.Explain != obs.ReasonSkeletonUncertified {
		t.Fatalf("Explain = %q, want %q", r.Explain, obs.ReasonSkeletonUncertified)
	}
	if st := pool.Stats(); st.Reasons.MissSkeletonUncertified == 0 {
		t.Fatalf("MissSkeletonUncertified not tallied: %v", st.Reasons)
	}
}

// TestRaceSkeletonSwapByteIdentical extends the swap-atomicity bar to
// skeleton compositions: goroutines fire jittered same-pair queries at
// a skeleton pool while another swaps between two schedule sets;
// every response must equal a sequential answer over the pre- or
// post-swap graph — a composition from a stale family would produce a
// third outcome.
func TestRaceSkeletonSwapByteIdentical(t *testing.T) {
	b := model.NewBuilder("skel-swap-race")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(0, 10, 20, 20, 0))
	near := b.AddDoor("near", model.PublicDoor, geom.Pt(2, 10, 0), nil)
	far := b.AddDoor("far", model.PublicDoor, geom.Pt(18, 10, 0), nil)
	b.ConnectBi(near, hall, room)
	b.ConnectBi(far, hall, room)
	v := b.MustBuild()
	nearID, _ := v.DoorByName("near")
	farID, _ := v.DoorByName("far")

	closed := temporal.Schedule{} // empty = always closed
	vA, err := v.WithSchedules(map[model.DoorID]temporal.Schedule{nearID: nil, farID: closed})
	if err != nil {
		t.Fatal(err)
	}
	vB, err := v.WithSchedules(map[model.DoorID]temporal.Schedule{nearID: closed, farID: nil})
	if err != nil {
		t.Fatal(err)
	}
	gA, gB := itgraph.MustNew(vA), itgraph.MustNew(vB)

	// A fixed roster of jittered endpoint pairs, each with sequential
	// oracle answers on both graphs.
	rng := rand.New(rand.NewSource(441))
	const nq = 24
	qs := make([]core.Query, nq)
	wantA := make([]*core.Path, nq)
	wantB := make([]*core.Path, nq)
	eA := core.NewEngine(gA, core.Options{Method: core.MethodAsyn})
	eB := core.NewEngine(gB, core.Options{Method: core.MethodAsyn})
	for i := range qs {
		qs[i] = core.Query{
			Source: geom.Pt(1+rng.Float64()*18, 1+rng.Float64()*8, 0),
			Target: geom.Pt(1+rng.Float64()*18, 11+rng.Float64()*8, 0),
			At:     temporal.Clock(12, 0, 0),
		}
		if wantA[i], _, err = eA.Route(qs[i]); err != nil {
			t.Fatal(err)
		}
		if wantB[i], _, err = eB.Route(qs[i]); err != nil {
			t.Fatal(err)
		}
	}

	pool := New(gA, Options{
		Engine:        core.Options{Method: core.MethodAsyn},
		CacheCapacity: -1,
		SkeletonCache: true,
	})
	done := make(chan struct{})
	errc := make(chan error, 8)
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			g := gA
			if i%2 == 0 {
				g = gB
			}
			pool.SetGraph(g)
		}
	}()
	var routers sync.WaitGroup
	for w := 0; w < 6; w++ {
		routers.Add(1)
		seed := int64(600 + w)
		go func() {
			defer routers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				k := rng.Intn(nq)
				r := pool.RouteResult(qs[k])
				if r.Err != nil {
					select {
					case errc <- r.Err:
					default:
					}
					return
				}
				if !reflect.DeepEqual(r.Path, wantA[k]) && !reflect.DeepEqual(r.Path, wantB[k]) {
					select {
					case errc <- fmt.Errorf("query %d (hit=%q): path matches neither schedule set's sequential answer", k, r.Hit):
					default:
					}
					return
				}
			}
		}()
	}
	routers.Wait()
	close(done)
	swapper.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced epilogue on set A: jittered repeats must now compose.
	pool.SetGraph(gA)
	before := pool.Stats().SkeletonHits
	for k := range qs {
		r := pool.RouteResult(qs[k])
		if r.Err != nil || !reflect.DeepEqual(r.Path, wantA[k]) {
			t.Fatalf("epilogue query %d (hit=%q): %v / path mismatch", k, r.Hit, r.Err)
		}
	}
	if st := pool.Stats(); st.SkeletonHits <= before {
		t.Fatalf("epilogue served no skeleton hits: %v", st)
	}
}

// TestSkeletonInvalidation: InvalidateSlot drops families overlapping
// the slot; InvalidateCache drops all of them.
func TestSkeletonInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	v := openGridVenue(t, rng, 3, 3)
	g := itgraph.MustNew(v)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodSyn}, SkeletonCache: true})
	at := temporal.Clock(12, 0, 0)
	pool.RouteBatch(jitterPair(rng, 0, 0, 2, 2, at, 8))
	if pool.Stats().SkelFamilies == 0 {
		t.Fatal("no families stored")
	}
	// Every family built above lives in the slot containing the shared
	// departure, so invalidating that slot must drop them all.
	pool.InvalidateSlot(g.Checkpoints().SlotOf(at))
	if got := pool.Stats().SkelFamilies; got != 0 {
		t.Fatalf("SkelFamilies = %d after InvalidateSlot", got)
	}
	pool.RouteBatch(jitterPair(rng, 0, 0, 2, 2, at, 8))
	if pool.Stats().SkelFamilies == 0 {
		t.Fatal("families not rebuilt after slot invalidation")
	}
	pool.InvalidateCache()
	if got := pool.Stats().SkelFamilies; got != 0 {
		t.Fatalf("SkelFamilies = %d after InvalidateCache", got)
	}
}
