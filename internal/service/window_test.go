package service

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// windowDemoVenue: hall and shop joined by one door open [8:00, 16:00)
// — checkpoint slots [0,8), [8,16), [16,24) — the minimal fixture where
// window behaviour is fully predictable.
func windowDemoVenue(t testing.TB) (*itgraph.Graph, *model.Venue) {
	t.Helper()
	b := model.NewBuilder("window-demo")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), temporal.MustSchedule(
		temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0))))
	b.ConnectBi(d, hall, shop)
	v := b.MustBuild()
	return itgraph.MustNew(v), v
}

func TestWindowPoolProvenance(t *testing.T) {
	g, _ := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true})

	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	r1 := pool.route(nil, q)
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	if r1.Hit != HitMiss || r1.CacheHit {
		t.Fatalf("first route: hit=%q cacheHit=%v, want miss", r1.Hit, r1.CacheHit)
	}
	if pool.WindowLen() != 1 {
		t.Fatalf("WindowLen = %d after one found route, want 1", pool.WindowLen())
	}

	// Same slot, shifted departure: a window hit with rebased arrivals —
	// byte-identical to a fresh engine run at the shifted time.
	q2 := q
	q2.At = temporal.Clock(13, 30, 0)
	r2 := pool.route(nil, q2)
	if r2.Hit != HitWindow || !r2.CacheHit {
		t.Fatalf("shifted route: hit=%q cacheHit=%v, want window", r2.Hit, r2.CacheHit)
	}
	wantPath, _, err := core.NewEngine(g, core.Options{Method: core.MethodAsyn}).Route(q2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.Path, wantPath) {
		t.Fatalf("window answer differs from engine:\n got  %+v\n want %+v", r2.Path, wantPath)
	}
	// Stats on a window hit are the producing search's, like exact hits.
	if r2.Stats != r1.Stats {
		t.Fatalf("window hit stats %+v, want the producing search's %+v", r2.Stats, r1.Stats)
	}

	// An identical repeat serves from the window store again (window
	// hits are deliberately not promoted into the exact cache — a sweep
	// would flood it with one-shot entries); the engine-computed
	// original, however, is an exact hit.
	r3 := pool.route(nil, q2)
	if r3.Hit != HitWindow || !r3.CacheHit {
		t.Fatalf("repeat: hit=%q, want window", r3.Hit)
	}
	if !reflect.DeepEqual(r3.Path, wantPath) {
		t.Fatal("repeated window answer differs from engine")
	}
	if r := pool.route(nil, q); r.Hit != HitExact || !r.CacheHit {
		t.Fatalf("original repeat: hit=%q, want exact", r.Hit)
	}

	st := pool.Stats()
	if st.Queries != 4 || st.CacheHits != 1 || st.WindowHits != 2 || st.CacheMisses() != 1 {
		t.Fatalf("stats = %v", st)
	}
	// At quiescence the real engine-run counter agrees with the derived
	// miss count (the former is what /metricsz exports: it must be
	// monotone, which the derived view is not under concurrency).
	if st.EngineSearches != st.CacheMisses() {
		t.Fatalf("EngineSearches = %d, CacheMisses() = %d", st.EngineSearches, st.CacheMisses())
	}

	// A departure in another slot must not hit the window.
	q4 := q
	q4.At = temporal.Clock(7, 0, 0)
	if r := pool.route(nil, q4); r.Hit != HitMiss {
		t.Fatalf("other-slot departure: hit=%q, want miss", r.Hit)
	}
}

func TestWindowPoolKeyIsolation(t *testing.T) {
	g, _ := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true})
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	if r := pool.route(nil, q); r.Err != nil {
		t.Fatal(r.Err)
	}

	// Same partitions, moved source point: windows are exact-endpoint.
	qMoved := q
	qMoved.Source = geom.Pt(6, 5, 0)
	qMoved.At = temporal.Clock(12, 30, 0)
	if r := pool.route(nil, qMoved); r.Hit != HitMiss {
		t.Fatalf("moved point: hit=%q, want miss", r.Hit)
	}
	// Same points, different speed: windows are per-speed.
	qFast := q
	qFast.Speed = 3.0
	qFast.At = temporal.Clock(12, 30, 0)
	if r := pool.route(nil, qFast); r.Hit != HitMiss {
		t.Fatalf("different speed: hit=%q, want miss", r.Hit)
	}
	// The default speed spelled explicitly is the same query family.
	qExplicit := q
	qExplicit.Speed = core.WalkingSpeedMPS
	qExplicit.At = temporal.Clock(13, 0, 0)
	if r := pool.route(nil, qExplicit); r.Hit != HitWindow {
		t.Fatalf("explicit default speed: hit=%q, want window", r.Hit)
	}
}

func TestWindowPoolNoRouteNotWindowCached(t *testing.T) {
	g, _ := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true})
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(20, 0, 0)}
	if r := pool.route(nil, q); !errors.Is(r.Err, core.ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", r.Err)
	}
	if pool.WindowLen() != 0 {
		t.Fatalf("WindowLen = %d, want 0 (no-route outcomes have no window)", pool.WindowLen())
	}
	// The exact cache still covers the identical repeat.
	if r := pool.route(nil, q); r.Hit != HitExact {
		t.Fatalf("repeat: hit=%q, want exact", r.Hit)
	}
	// A same-slot shifted no-route query is a plain miss — never a false
	// window answer.
	q2 := q
	q2.At = temporal.Clock(21, 0, 0)
	if r := pool.route(nil, q2); r.Hit != HitMiss || !errors.Is(r.Err, core.ErrNoRoute) {
		t.Fatalf("shifted no-route: hit=%q err=%v", r.Hit, r.Err)
	}
}

func TestWindowPoolSwapDropsStore(t *testing.T) {
	g, v := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true})
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	if r := pool.route(nil, q); r.Err != nil {
		t.Fatal(r.Err)
	}
	if pool.WindowLen() != 1 {
		t.Fatalf("WindowLen = %d, want 1", pool.WindowLen())
	}

	// Close the door for the day: the swap must drop the whole store and
	// post-swap queries must never see the pre-swap window.
	did, _ := v.DoorByName("d")
	night := temporal.MustSchedule(temporal.MustInterval(temporal.Clock(2, 0, 0), temporal.Clock(3, 0, 0)))
	if err := pool.UpdateSchedules(map[model.DoorID]temporal.Schedule{did: night}); err != nil {
		t.Fatal(err)
	}
	if pool.WindowLen() != 0 {
		t.Fatalf("WindowLen = %d after swap, want 0", pool.WindowLen())
	}
	q2 := q
	q2.At = temporal.Clock(12, 30, 0)
	r := pool.route(nil, q2)
	if r.Hit != HitMiss || !errors.Is(r.Err, core.ErrNoRoute) {
		t.Fatalf("post-swap: hit=%q err=%v, want a fresh no-route", r.Hit, r.Err)
	}
}

func TestWindowPoolInvalidateSlot(t *testing.T) {
	g, _ := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true})
	qOpen := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	qSame := core.Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(8, 5, 0), At: temporal.Clock(20, 0, 0)}
	if r := pool.route(nil, qOpen); r.Err != nil {
		t.Fatal(r.Err)
	}
	if r := pool.route(nil, qSame); r.Err != nil { // same-partition path, slot [16,24)
		t.Fatal(r.Err)
	}
	if pool.WindowLen() != 2 {
		t.Fatalf("WindowLen = %d, want 2", pool.WindowLen())
	}

	// Invalidating the [0,8) slot touches neither window.
	pool.InvalidateSlot(0)
	if pool.WindowLen() != 2 {
		t.Fatalf("WindowLen = %d after unrelated slot invalidation, want 2", pool.WindowLen())
	}
	// Invalidating the [8,16) slot drops exactly the door-crossing one.
	pool.InvalidateSlot(g.Checkpoints().SlotOf(qOpen.At))
	if pool.WindowLen() != 1 {
		t.Fatalf("WindowLen = %d, want 1", pool.WindowLen())
	}
	q2 := qOpen
	q2.At = temporal.Clock(13, 0, 0)
	if r := pool.route(nil, q2); r.Hit != HitMiss {
		t.Fatalf("post-invalidation: hit=%q, want miss", r.Hit)
	}
	pool.InvalidateCache()
	if pool.WindowLen() != 0 || pool.CacheLen() != 0 {
		t.Fatalf("windows=%d exact=%d after InvalidateCache", pool.WindowLen(), pool.CacheLen())
	}
}

// sweepVenue: six rooms in a row joined by five doors with staggered
// business hours, so a day sweep of the long OD pair moves through
// no-route phases, a found phase, and plenty of reusable windows.
// Checkpoints: 6:00, 8:00, 10:00, 16:00, 20:00, 22:00.
func sweepVenue(t testing.TB) *itgraph.Graph {
	t.Helper()
	b := model.NewBuilder("sweep")
	scheds := []temporal.Schedule{
		nil, // always open
		temporal.MustSchedule(temporal.MustInterval(temporal.Clock(6, 0, 0), temporal.Clock(22, 0, 0))),
		temporal.MustSchedule(temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0))),
		nil,
		temporal.MustSchedule(temporal.MustInterval(temporal.Clock(10, 0, 0), temporal.Clock(20, 0, 0))),
	}
	var prev model.PartitionID
	for i := 0; i <= len(scheds); i++ {
		p := b.AddPartition(fmt.Sprintf("room%d", i), model.PublicPartition,
			geom.NewRect(float64(i)*10, 0, float64(i+1)*10, 10, 0))
		if i > 0 {
			d := b.AddDoor(fmt.Sprintf("d%d", i), model.PublicDoor,
				geom.Pt(float64(i)*10, 5, 0), scheds[i-1])
			b.ConnectBi(d, prev, p)
		}
		prev = p
	}
	return itgraph.MustNew(b.MustBuild())
}

// TestWindowPoolSweepByteIdentical is the subsystem's oracle bar: a
// fine departure-time sweep through a window-cache pool answers
// byte-identically to a sequential engine, for every method, while
// actually serving window hits. The random grid venue adds adversarial
// breadth (random schedules, directionality, private rooms).
func TestWindowPoolSweepByteIdentical(t *testing.T) {
	sweepG := sweepVenue(t)
	rng := rand.New(rand.NewSource(31))
	gridG := itgraph.MustNew(gridVenue(t, rng, 4, 5))
	fixtures := []struct {
		name string
		g    *itgraph.Graph
		ods  []core.Query
	}{
		{"sweep", sweepG, []core.Query{
			{Source: geom.Pt(5, 5, 0), Target: geom.Pt(55, 5, 0)},  // crosses every door
			{Source: geom.Pt(5, 5, 0), Target: geom.Pt(25, 5, 0)},  // first two doors
			{Source: geom.Pt(32, 5, 0), Target: geom.Pt(38, 5, 0)}, // intra-room
		}},
		{"grid", gridG, []core.Query{
			{Source: geom.Pt(5, 5, 0), Target: geom.Pt(45, 35, 0)},
			{Source: geom.Pt(15, 25, 0), Target: geom.Pt(25, 25, 0)},
			{Source: geom.Pt(5, 35, 0), Target: geom.Pt(15, 35, 0)},
		}},
	}
	for _, fx := range fixtures {
		for _, method := range []core.Method{core.MethodSyn, core.MethodAsyn, core.MethodStatic} {
			pool := New(fx.g, Options{Engine: core.Options{Method: method}, WindowCache: true})
			seq := core.NewEngine(fx.g, core.Options{Method: method})
			for _, od := range fx.ods {
				for at := temporal.TimeOfDay(0); at < temporal.DaySeconds; at += 900 { // 15 min steps
					q := od
					q.At = at
					wantPath, _, wantErr := seq.Route(q)
					got := pool.route(nil, q)
					if (got.Err == nil) != (wantErr == nil) {
						t.Fatalf("%s/%v at %v: err %v vs %v (hit=%q)", fx.name, method, at, got.Err, wantErr, got.Hit)
					}
					if wantErr != nil {
						if errors.Is(got.Err, core.ErrNoRoute) != errors.Is(wantErr, core.ErrNoRoute) {
							t.Fatalf("%s/%v at %v: err %v vs %v", fx.name, method, at, got.Err, wantErr)
						}
						continue
					}
					if !reflect.DeepEqual(got.Path, wantPath) {
						t.Fatalf("%s/%v at %v (hit=%q): path mismatch\n got  %+v\n want %+v",
							fx.name, method, at, got.Hit, got.Path, wantPath)
					}
				}
			}
			st := pool.Stats()
			if fx.name == "sweep" && st.WindowHits == 0 {
				t.Fatalf("%s/%v: sweep produced no window hits (%v)", fx.name, method, st)
			}
			if st.CacheHits+st.WindowHits+st.CacheMisses()+st.Deduped != st.Queries {
				t.Fatalf("%s/%v: stats do not partition: %v", fx.name, method, st)
			}
		}
	}
}

// TestWindowPoolSweepBeatsExact pins the acceptance criterion: on a
// departure-time-sweep workload the window cache serves window hits and
// runs strictly fewer engine searches than the exact-only cache.
func TestWindowPoolSweepBeatsExact(t *testing.T) {
	g := sweepVenue(t)
	var batch []core.Query
	for at := temporal.TimeOfDay(0); at < temporal.DaySeconds; at += 600 { // 10 min steps
		batch = append(batch, core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(55, 5, 0), At: at})
	}
	exact := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, Workers: 1})
	window := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, Workers: 1, WindowCache: true})
	for _, r := range exact.RouteBatch(batch) {
		if r.Err != nil && !errors.Is(r.Err, core.ErrNoRoute) {
			t.Fatal(r.Err)
		}
	}
	for _, r := range window.RouteBatch(batch) {
		if r.Err != nil && !errors.Is(r.Err, core.ErrNoRoute) {
			t.Fatal(r.Err)
		}
	}
	se, sw := exact.Stats(), window.Stats()
	if sw.WindowHits == 0 {
		t.Fatalf("window pool served no window hits on a sweep: %v", sw)
	}
	if sw.CacheMisses() >= se.CacheMisses() {
		t.Fatalf("window pool ran %d engine searches, exact pool %d — want strictly fewer",
			sw.CacheMisses(), se.CacheMisses())
	}
}

// TestWindowPoolBatchComposesWithDedup: inside one batch, identical
// queries still dedupe (sharing the canonical outcome and provenance)
// and distinct departures window-hit, all byte-identical to a
// sequential engine.
func TestWindowPoolBatchComposesWithDedup(t *testing.T) {
	g, _ := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, Workers: 1, WindowCache: true})
	od := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0)}
	mk := func(at temporal.TimeOfDay) core.Query { q := od; q.At = at; return q }
	batch := []core.Query{
		mk(temporal.Clock(12, 0, 0)),
		mk(temporal.Clock(12, 0, 0)), // duplicate → shared
		mk(temporal.Clock(13, 0, 0)), // same slot → window hit
		mk(temporal.Clock(13, 0, 0)), // duplicate of the window hit → shared
		mk(temporal.Clock(7, 0, 0)),  // other slot → miss (no route)
	}
	rs := pool.RouteBatch(batch)
	seq := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
	for i, q := range batch {
		wantPath, _, wantErr := seq.Route(q)
		sameOutcome(t, fmt.Sprintf("batch[%d]", i), rs[i].Path, rs[i].Err, wantPath, wantErr)
	}
	wantHits := []struct {
		hit    Hit
		shared bool
	}{
		{HitMiss, false}, {HitMiss, true}, {HitWindow, false}, {HitWindow, true}, {HitMiss, false},
	}
	for i, want := range wantHits {
		if rs[i].Hit != want.hit || rs[i].Shared != want.shared {
			t.Fatalf("batch[%d]: hit=%q shared=%v, want %q/%v", i, rs[i].Hit, rs[i].Shared, want.hit, want.shared)
		}
	}
	st := pool.Stats()
	if st.Deduped != 2 || st.WindowHits != 1 {
		t.Fatalf("stats = %v, want deduped=2 windowHits=1", st)
	}
}

func TestWindowPoolDisabledByDefault(t *testing.T) {
	g, _ := windowDemoVenue(t)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}})
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	pool.route(nil, q)
	q2 := q
	q2.At = temporal.Clock(13, 0, 0)
	if r := pool.route(nil, q2); r.Hit != HitMiss {
		t.Fatalf("default pool served hit=%q for a shifted departure, want miss", r.Hit)
	}
	if pool.WindowLen() != 0 {
		t.Fatalf("WindowLen = %d on a default pool", pool.WindowLen())
	}

	// Negative WindowCapacity disables the store even with WindowCache
	// set, mirroring the CacheCapacity convention.
	off := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true, WindowCapacity: -1})
	off.route(nil, q)
	if r := off.route(nil, q2); r.Hit != HitMiss {
		t.Fatalf("disabled window store served hit=%q", r.Hit)
	}
	if off.WindowLen() != 0 {
		t.Fatalf("WindowLen = %d with WindowCapacity -1", off.WindowLen())
	}
}
