package service

import (
	"math/rand"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/temporal"
)

// TestRouteTracedSpans checks that a traced route records the
// expected stages with the engine's SearchStats attached on a miss,
// and only a probe span on a cache hit.
func TestRouteTracedSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := gridVenue(t, rng, 4, 5)
	pool := New(itgraph.MustNew(v), Options{})
	o := obs.NewObserver(obs.ObserverOptions{})
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(45, 35, 0), At: temporal.TimeOfDay(10 * 3600)}

	tr := o.NewTrace()
	r := pool.RouteTraced(tr, q)
	doc := tr.Doc(obs.RequestInfo{})
	stages := map[string]int{}
	var engineAttrs any
	for _, s := range doc.Spans {
		stages[s.Stage]++
		if s.Stage == "engine" {
			engineAttrs = s.Attrs
		}
	}
	if stages["probe"] != 1 || stages["engine"] != 1 || stages["store"] != 1 {
		t.Fatalf("miss spans = %v, want probe/engine/store once each", stages)
	}
	st, ok := engineAttrs.(*core.SearchStats)
	if !ok {
		t.Fatalf("engine span attrs = %T, want *core.SearchStats", engineAttrs)
	}
	if st.Pops != r.Stats.Pops || st.Settled != r.Stats.Settled {
		t.Fatalf("attached stats %+v != result stats %+v", st, r.Stats)
	}

	tr2 := o.NewTrace()
	r2 := pool.RouteTraced(tr2, q)
	if !r2.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	doc2 := tr2.Doc(obs.RequestInfo{})
	if len(doc2.Spans) != 1 || doc2.Spans[0].Stage != "probe" {
		t.Fatalf("hit spans = %+v, want a single probe", doc2.Spans)
	}
}

// TestBatchTracedSpans checks the plan span and the shared-run engine
// span with attached stats.
func TestBatchTracedSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	v := gridVenue(t, rng, 4, 5)
	pool := New(itgraph.MustNew(v), Options{SharedBatch: true})
	o := obs.NewObserver(obs.ObserverOptions{})

	// Shared-source fan-out: same origin and departure, many targets.
	src := geom.Pt(5, 5, 0)
	qs := make([]core.Query, 0, 8)
	for i := 0; i < 8; i++ {
		qs = append(qs, core.Query{
			Source: src,
			Target: geom.Pt(5+float64(i*5), 35, 0),
			At:     temporal.TimeOfDay(10 * 3600),
		})
	}
	tr := o.NewTrace()
	rs, sum := pool.RouteBatchSummaryTraced(tr, qs)
	if len(rs) != len(qs) {
		t.Fatalf("results = %d", len(rs))
	}
	doc := tr.Doc(obs.RequestInfo{})
	stages := map[string]int{}
	for _, s := range doc.Spans {
		stages[s.Stage]++
	}
	if stages["plan"] != 1 {
		t.Fatalf("plan spans = %d, want 1 (spans %v)", stages["plan"], stages)
	}
	if stages["probe"] == 0 || stages["engine"] == 0 {
		t.Fatalf("missing probe/engine spans: %v", stages)
	}
	if sum.SharedRuns > 0 {
		for _, s := range doc.Spans {
			if s.Stage == "engine" {
				if _, ok := s.Attrs.(*core.SearchStats); !ok {
					t.Fatalf("engine span attrs = %T", s.Attrs)
				}
			}
		}
	}
}

// TestNilTraceZeroAlloc pins the acceptance criterion that disabled
// tracing adds zero allocations to the pool's hot path: the traced
// entry point with a nil trace must allocate exactly as much as the
// plain one, and on a warm exact-cache hit that is zero.
func TestNilTraceZeroAlloc(t *testing.T) {
	b := model.NewBuilder("zeroalloc")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), nil)
	b.ConnectBi(d, hall, shop)
	pool := New(itgraph.MustNew(b.MustBuild()), Options{})
	q := core.Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(18, 5, 0), At: temporal.TimeOfDay(10 * 3600)}
	if r := pool.RouteResult(q); r.Err != nil {
		t.Fatalf("warm route: %v", r.Err)
	}

	base := testing.AllocsPerRun(500, func() { pool.RouteResult(q) })
	traced := testing.AllocsPerRun(500, func() { pool.RouteTraced(nil, q) })
	if traced > base {
		t.Fatalf("nil-trace route allocates %v allocs/op vs %v untraced", traced, base)
	}
	if base != 0 {
		t.Fatalf("warm cache-hit route allocates %v allocs/op, want 0", base)
	}
}
