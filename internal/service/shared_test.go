// Shared-execution oracle suite: RouteBatch with Options.SharedBatch on
// must be byte-for-byte (reflect.DeepEqual) identical to the sequential
// per-query engine for every method on adversarial fixtures, both in
// steady state and while racing live schedule swaps.
package service

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// jitterGridVenue is gridVenue with randomised door positions (and a
// few one-way doors): in the midpoint-door grid, symmetric detours have
// float-exactly equal lengths, and under such ties a shared run may
// legitimately return a different — equally shortest — door sequence
// than the solo engine (see the shared-execution section of doc.go).
// Jittering the doors makes every shortest path unique, which is the
// condition under which shared answers are byte-identical; it is also
// the generic case for real venues.
func jitterGridVenue(t testing.TB, rng *rand.Rand, rows, cols int) *model.Venue {
	t.Helper()
	b := model.NewBuilder(fmt.Sprintf("jitter-grid-%dx%d", rows, cols))
	const cell = 10.0
	parts := make([][]model.PartitionID, rows)
	for r := 0; r < rows; r++ {
		parts[r] = make([]model.PartitionID, cols)
		for c := 0; c < cols; c++ {
			kind := model.PublicPartition
			corner := (r == 0 || r == rows-1) && (c == 0 || c == cols-1)
			if !corner && rng.Float64() < 0.12 {
				kind = model.PrivatePartition
			}
			parts[r][c] = b.AddPartition(fmt.Sprintf("r%dc%d", r, c), kind,
				geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
		}
	}
	randSched := func() temporal.Schedule {
		if rng.Intn(3) == 0 {
			return nil // always open
		}
		o := temporal.TimeOfDay(rng.Intn(14) * 3600)
		return temporal.MustSchedule(temporal.MustInterval(o, o+temporal.TimeOfDay(3600*(2+rng.Intn(10)))))
	}
	connect := func(d model.DoorID, a, p model.PartitionID) {
		if rng.Float64() < 0.12 {
			b.ConnectOneWay(d, a, p)
			return
		}
		b.ConnectBi(d, a, p)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < 0.92 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c+1)*cell, float64(r)*cell+rng.Float64()*cell, 0), randSched())
				connect(d, parts[r][c], parts[r][c+1])
			}
			if r+1 < rows && rng.Float64() < 0.92 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c)*cell+rng.Float64()*cell, float64(r+1)*cell, 0), randSched())
				connect(d, parts[r][c], parts[r+1][c])
			}
		}
	}
	return b.MustBuild()
}

// sharedWorkload builds a batch with genuine sharing structure: a few
// hot sources fanning out to many targets, a few hot targets fanned
// into from many sources, duplicates, and a sprinkle of unlocatable
// endpoints — the many-queries-few-endpoints shape SharedBatch exists
// for.
func sharedWorkload(rng *rand.Rand, w, h float64, n int) []core.Query {
	pt := func() geom.Point { return geom.Pt(rng.Float64()*w, rng.Float64()*h, 0) }
	hotSrcs := []geom.Point{pt(), pt(), pt()}
	hotTgts := []geom.Point{pt(), pt()}
	times := []temporal.TimeOfDay{
		temporal.TimeOfDay(rng.Intn(86400)),
		temporal.TimeOfDay(rng.Intn(86400)),
	}
	qs := make([]core.Query, 0, n)
	for i := 0; i < n; i++ {
		q := core.Query{At: times[rng.Intn(len(times))]}
		switch rng.Intn(4) {
		case 0: // shared source
			q.Source = hotSrcs[rng.Intn(len(hotSrcs))]
			q.Target = pt()
		case 1: // shared target
			q.Source = pt()
			q.Target = hotTgts[rng.Intn(len(hotTgts))]
		case 2: // fully random
			q.Source, q.Target = pt(), pt()
		default: // duplicate of an earlier query
			if len(qs) > 0 {
				q = qs[rng.Intn(len(qs))]
			} else {
				q.Source, q.Target = pt(), pt()
			}
		}
		if rng.Float64() < 0.04 {
			q.Source.X = -50 // outside every partition
		}
		qs = append(qs, q)
	}
	return qs
}

// TestSharedBatchMatchesSequentialAllMethods is the oracle bar of the
// shared planner: on two fixtures, for syn/asyn/static, a SharedBatch
// RouteBatch must reproduce the sequential engine answer for every
// entry, byte for byte, and must actually have shared work.
func TestSharedBatchMatchesSequentialAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(2101))
	for trial, dims := range [][2]int{{4, 5}, {6, 6}} {
		v := jitterGridVenue(t, rng, dims[0], dims[1])
		g := itgraph.MustNew(v)
		qs := sharedWorkload(rng, float64(dims[1])*10, float64(dims[0])*10, 120)
		for _, method := range allMethods {
			seq := core.NewEngine(g, core.Options{Method: method})
			wantPaths := make([]*core.Path, len(qs))
			wantErrs := make([]error, len(qs))
			for i, q := range qs {
				wantPaths[i], _, wantErrs[i] = seq.Route(q)
			}
			for _, workers := range []int{1, 4} {
				pool := New(g, Options{
					Engine:      core.Options{Method: method},
					Workers:     workers,
					SharedBatch: true,
				})
				rs, sum := pool.RouteBatchSummary(qs)
				for i := range qs {
					label := fmt.Sprintf("trial %d method %v workers %d query %d", trial, method, workers, i)
					sameOutcome(t, label, rs[i].Path, rs[i].Err, wantPaths[i], wantErrs[i])
				}
				if sum.SharedRuns == 0 || sum.SharedAnswers < 2*sum.SharedRuns {
					t.Fatalf("trial %d method %v workers %d: no real sharing: %+v", trial, method, workers, sum)
				}
				if sum.Queries != len(qs) ||
					sum.ExactHits+sum.WindowHits+sum.Deduped+sum.SharedAnswers+(sum.Searches-sum.SharedRuns) != sum.Queries {
					t.Fatalf("trial %d method %v workers %d: summary does not add up: %+v", trial, method, workers, sum)
				}
				// The whole point: strictly fewer engine runs than entries.
				st := pool.Stats()
				if st.EngineSearches >= st.CacheMisses() {
					t.Fatalf("trial %d method %v workers %d: shared batch saved nothing: %v", trial, method, workers, st)
				}
				// Replay: served from caches now, still byte-identical.
				for i, r := range pool.RouteBatch(qs) {
					label := fmt.Sprintf("trial %d method %v workers %d replay %d", trial, method, workers, i)
					sameOutcome(t, label, r.Path, r.Err, wantPaths[i], wantErrs[i])
				}
			}
		}
	}
}

// TestSharedBatchComposesWithWindowCache: with both the planner and the
// validity-window cache on, a departure sweep over a multi-target fan
// stays byte-identical to the sequential engine and serves a mix of
// shared answers and window hits.
func TestSharedBatchComposesWithWindowCache(t *testing.T) {
	rng := rand.New(rand.NewSource(2201))
	v := jitterGridVenue(t, rng, 4, 5)
	g := itgraph.MustNew(v)
	src := geom.Pt(rng.Float64()*50, rng.Float64()*40, 0)
	var targets []geom.Point
	for i := 0; i < 6; i++ {
		targets = append(targets, geom.Pt(rng.Float64()*50, rng.Float64()*40, 0))
	}
	var qs []core.Query
	for min := 0; min < 24*60; min += 20 {
		for _, tgt := range targets {
			qs = append(qs, core.Query{Source: src, Target: tgt, At: temporal.TimeOfDay(min * 60)})
		}
	}
	pool := New(g, Options{
		Engine:      core.Options{Method: core.MethodAsyn},
		Workers:     4,
		SharedBatch: true,
		WindowCache: true,
	})
	seq := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
	rs, sum := pool.RouteBatchSummary(qs)
	for i, q := range qs {
		wantPath, _, wantErr := seq.Route(q)
		sameOutcome(t, fmt.Sprintf("query %d at %v", i, q.At), rs[i].Path, rs[i].Err, wantPath, wantErr)
	}
	if sum.SharedRuns == 0 {
		t.Fatalf("multi-target sweep shared nothing: %+v", sum)
	}
	if sum.Searches >= len(qs)/2 {
		t.Fatalf("sweep ran %d searches for %d queries: %+v", sum.Searches, len(qs), sum)
	}
}

// TestSharedBatchStaticMergesDepartures: the static method's planner
// key drops the departure, so a single-OD day sweep (the degenerate
// shared-source case) collapses into ONE engine run, with every other
// departure's answer restated by the bit-identical rebase.
func TestSharedBatchStaticMergesDepartures(t *testing.T) {
	rng := rand.New(rand.NewSource(2301))
	v := jitterGridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	src := geom.Pt(5, 5, 0)
	tgt := geom.Pt(35, 35, 0)
	var qs []core.Query
	for min := 0; min < 24*60; min += 10 {
		qs = append(qs, core.Query{Source: src, Target: tgt, At: temporal.TimeOfDay(min * 60)})
	}
	pool := New(g, Options{
		Engine:        core.Options{Method: core.MethodStatic},
		Workers:       4,
		SharedBatch:   true,
		CacheCapacity: -1, // isolate the planner from the exact cache
	})
	seq := core.NewEngine(g, core.Options{Method: core.MethodStatic})
	rs, sum := pool.RouteBatchSummary(qs)
	for i, q := range qs {
		wantPath, _, wantErr := seq.Route(q)
		sameOutcome(t, fmt.Sprintf("minute %d", i), rs[i].Path, rs[i].Err, wantPath, wantErr)
	}
	if sum.Searches != 1 || sum.SharedRuns != 1 || sum.SharedAnswers != len(qs) {
		t.Fatalf("static sweep should be one shared run: %+v", sum)
	}
}

// TestSharedBatchRacingUpdateSchedules: shared batches racing live
// schedule swaps must stay atomic per batch — every batch's full result
// set is byte-identical to the sequential engine over the pre-swap or
// the post-swap graph, never a mix and never a third outcome.
func TestSharedBatchRacingUpdateSchedules(t *testing.T) {
	// Deterministic two-door venue (as the window-cache race test): set
	// A opens only the near door, set B only the far one, so at every
	// departure the two graphs give different, precomputable answers.
	b := model.NewBuilder("shared-swap-race")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(0, 10, 20, 20, 0))
	near := b.AddDoor("near", model.PublicDoor, geom.Pt(2, 10, 0), nil)
	far := b.AddDoor("far", model.PublicDoor, geom.Pt(18, 10, 0), nil)
	b.ConnectBi(near, hall, room)
	b.ConnectBi(far, hall, room)
	v := b.MustBuild()
	nearID, _ := v.DoorByName("near")
	farID, _ := v.DoorByName("far")
	closed := temporal.Schedule{}
	vA, err := v.WithSchedules(map[model.DoorID]temporal.Schedule{nearID: nil, farID: closed})
	if err != nil {
		t.Fatal(err)
	}
	vB, err := v.WithSchedules(map[model.DoorID]temporal.Schedule{nearID: closed, farID: nil})
	if err != nil {
		t.Fatal(err)
	}
	gA, gB := itgraph.MustNew(vA), itgraph.MustNew(vB)

	// One shared source in the hall fanning out to targets in the room
	// at a few departures — several shared-source groups per batch.
	src := geom.Pt(3, 5, 0)
	var qs []core.Query
	for k := 0; k < 8; k++ {
		for d := 0; d < 3; d++ {
			qs = append(qs, core.Query{
				Source: src,
				Target: geom.Pt(2+float64(k)*2, 15, 0),
				At:     temporal.Clock(9+d, 0, 0),
			})
		}
	}
	answersOn := func(g *itgraph.Graph) []*core.Path {
		e := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
		out := make([]*core.Path, len(qs))
		for i, q := range qs {
			p, _, err := e.Route(q)
			if err != nil {
				t.Fatalf("oracle on %v: %v", q, err)
			}
			out[i] = p
		}
		return out
	}
	wantA, wantB := answersOn(gA), answersOn(gB)

	pool := New(gA, Options{
		Engine:      core.Options{Method: core.MethodAsyn},
		Workers:     4,
		SharedBatch: true,
		WindowCache: true,
	})
	done := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				pool.SetGraph(gB)
			} else {
				pool.SetGraph(gA)
			}
		}
	}()

	errc := make(chan error, 8)
	var routers sync.WaitGroup
	for w := 0; w < 4; w++ {
		routers.Add(1)
		go func() {
			defer routers.Done()
			for rep := 0; rep < 60; rep++ {
				rs := pool.RouteBatch(qs)
				matchesA, matchesB := true, true
				for i, r := range rs {
					if r.Err != nil {
						select {
						case errc <- fmt.Errorf("rep %d query %d: %v", rep, i, r.Err):
						default:
						}
						return
					}
					if !reflect.DeepEqual(r.Path, wantA[i]) {
						matchesA = false
					}
					if !reflect.DeepEqual(r.Path, wantB[i]) {
						matchesB = false
					}
				}
				if !matchesA && !matchesB {
					select {
					case errc <- fmt.Errorf("rep %d: batch matches neither schedule set in full", rep):
					default:
					}
					return
				}
			}
		}()
	}
	routers.Wait()
	close(done)
	swapper.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Quiesced epilogue on set A: sharing engages and stays identical.
	pool.SetGraph(gA)
	rs, sum := pool.RouteBatchSummary(qs)
	for i, r := range rs {
		if r.Err != nil || !reflect.DeepEqual(r.Path, wantA[i]) {
			t.Fatalf("epilogue query %d: err=%v, path mismatch", i, r.Err)
		}
	}
	if sum.SharedRuns == 0 {
		t.Fatalf("epilogue batch shared nothing: %+v", sum)
	}
}
