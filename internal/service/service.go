// Package service is the concurrent query-serving layer over the ITSPQ
// machinery: it turns the "one engine per goroutine over one shared
// graph" pattern into a managed Pool with engine reuse, batch fan-out
// and per-slot result caching, so a server can answer many simultaneous
// ITSPQ queries without per-request engine construction.
//
// Concurrency invariants the pool relies on (and that the rest of the
// repository upholds):
//
//   - model.Venue, dmat.Set and itgraph.Graph are immutable after
//     construction and safe for any number of concurrent readers;
//   - itgraph.SnapshotSeries materialises snapshots on first use behind
//     a mutex with lock-free steady-state reads, and a materialised
//     Snapshot is immutable;
//   - core.Engine keeps mutable search state and is confined to one
//     goroutine at a time — the Pool enforces this by checking engines
//     in and out of a sync.Pool around every search.
//
// Results returned by the pool may be served from its cache, in which
// case the same *core.Path pointer is handed to several callers:
// returned paths must be treated as immutable.
package service

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"indoorpath/internal/batchplan"
	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/tcache"
	"indoorpath/internal/temporal"
)

// Options configure a Pool. The zero value is a usable default: ITG/S
// engines, GOMAXPROCS batch workers and a 4096-entry result cache.
type Options struct {
	// Engine is the configuration every pooled engine is built with.
	Engine core.Options
	// Workers bounds RouteBatch fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// CacheCapacity bounds the number of cached query outcomes.
	// 0 means the default capacity; negative disables caching.
	CacheCapacity int
	// WindowCache additionally enables the validity-window temporal
	// result cache (internal/tcache): found no-waiting paths are stored
	// with the departure interval over which the engine's answer is
	// provably unchanged (core.Engine.AnswerWindow), and a later query on the
	// same endpoints and speed departing anywhere inside a stored
	// window is answered without an engine search — doors, partitions
	// and length from the stored answer, arrival times recomputed for
	// the query's own departure. The exact cache (when enabled) is
	// consulted first; window answers obey the same swap semantics (a
	// SetGraph/UpdateSchedules swap drops the whole store) and
	// InvalidateSlot drops windows overlapping the slot's time range.
	// Off by default: the exact cache remains the default backend.
	WindowCache bool
	// WindowCapacity bounds the number of stored validity windows:
	// 0 means tcache.DefaultCapacity, and negative disables the window
	// store even when WindowCache is set (mirroring CacheCapacity).
	// SkeletonCache families share the same store and the same capacity
	// value (budgeted independently — see tcache).
	WindowCapacity int
	// SkeletonCache enables the point-free skeleton layer
	// (core.SkeletonFamily in internal/tcache): the first engine miss
	// on a (source partition, target partition) pair also builds the
	// pair's door-to-door chain table for the departure's checkpoint
	// slot, and a later query between ANY points of the same pair in
	// the same slot is answered by composing first-leg + stored chain +
	// last-leg (core.ComposeSkeletonPath) — byte-identical to a fresh
	// search, no engine run. Compositions that cannot be certified fall
	// through to an engine with obs.ReasonSkeletonUncertified
	// provenance. Probe order: exact cache, point windows, skeletons,
	// engine. Families obey the same swap/invalidation semantics as
	// windows and are disabled alongside them by a negative
	// WindowCapacity or by the SinglePartitionExpansion ablation. Off
	// by default.
	SkeletonCache bool
	// SharedBatch enables the shared-execution batch planner
	// (internal/batchplan): RouteBatch partitions each batch into
	// shared-source groups (same source point, departure instant and
	// speed; the time-blind static method merges departures and also
	// forms shared-destination groups served by one reverse run each)
	// and answers every group with a single engine search
	// (core.Engine.RouteMany / RouteManyTo) instead of one per query.
	// Per-entry answers stay byte-identical to a sequential per-query
	// engine and still feed the exact and validity-window caches.
	// Off by default.
	SharedBatch bool
}

// DefaultCacheCapacity is the cache size used when Options.CacheCapacity
// is zero.
const DefaultCacheCapacity = 4096

// Hit is the provenance of one outcome: how the pool produced it.
type Hit string

// Hit values.
const (
	// HitMiss: the outcome came from an engine search.
	HitMiss Hit = "miss"
	// HitExact: served from the exact-identity result cache.
	HitExact Hit = "exact"
	// HitWindow: served from the validity-window cache — the stored
	// answer's doors and partitions with arrivals recomputed for this
	// query's departure.
	HitWindow Hit = "window"
	// HitSkeleton: composed from the pair's stored skeleton family —
	// first-leg + door-to-door chain + last-leg stitched for this
	// query's own endpoints and departure, certified byte-identical to
	// a fresh search.
	HitSkeleton Hit = "skeleton"
)

// Result is one RouteBatch outcome. Path and Err mirror exactly what a
// sequential core.Engine.Route would have returned for the query.
type Result struct {
	Path  *core.Path
	Stats core.SearchStats
	Err   error
	// CacheHit reports that the outcome was served from a result cache
	// (exact, window or skeleton) rather than searched.
	CacheHit bool
	// Hit is the outcome's provenance: HitMiss, HitExact, HitWindow or
	// HitSkeleton. For Shared entries it is the canonical query's
	// provenance.
	Hit Hit
	// Shared reports that the outcome was computed once for an
	// identical query elsewhere in the same batch and shared.
	Shared bool
	// SharedRun reports that the outcome came out of a multi-query
	// shared execution (one engine run answering a whole batchplan
	// group) rather than a dedicated per-query search. Requires
	// Options.SharedBatch.
	SharedRun bool
	// Coalesced reports that the outcome was answered out of a
	// multi-query flush of the standing cross-batch coalescer
	// (internal/coalesce): the solo query was held briefly and batched
	// with concurrently arriving ones. Set by the coalescer, never by
	// the pool itself.
	Coalesced bool
	// Explain is the decision provenance of a cache miss: why no cache
	// could answer (obs.ReasonNoExactEntry, ReasonWindowFamilyAbsent,
	// ReasonOutsideWindows, ReasonSkeletonUncertified, ReasonEpochRaced,
	// ReasonUncacheable). ReasonNone on hits and shared/deduped copies
	// of a hit.
	Explain obs.Reason
}

// Stats are cumulative pool counters, safe to read concurrently. The
// struct is JSON-serialisable as-is, so servers can expose it on a
// stats endpoint without translation.
type Stats struct {
	Queries        int64 `json:"queries"`         // Route calls + batch entries
	Batches        int64 `json:"batches"`         // RouteBatch calls
	CacheHits      int64 `json:"cache_hits"`      // outcomes served from the exact result cache
	WindowHits     int64 `json:"window_hits"`     // outcomes served from the validity-window cache
	SkeletonHits   int64 `json:"skeleton_hits"`   // outcomes composed from a stored skeleton family
	Deduped        int64 `json:"deduped"`         // batch entries shared from an identical query
	EnginesCreated int64 `json:"engines_created"` // engines constructed (vs reused from the pool)
	// EngineSearches counts actual engine runs. It is its own monotone
	// counter (the Prometheus series behind /metricsz must never
	// decrease); CacheMisses() is the derived view over one Stats
	// snapshot, which can transiently differ by in-flight queries —
	// and, with SharedBatch, by design: a shared run answers many
	// cache misses with one engine search, so EngineSearches <=
	// CacheMisses() is the headline saving.
	EngineSearches int64 `json:"engine_searches"`
	// SharedRuns counts multi-query shared executions: engine runs that
	// answered a whole batchplan group at once (Options.SharedBatch).
	SharedRuns int64 `json:"shared_runs"`
	// SharedAnswers counts batch entries answered by a shared run —
	// each cost 1/groupsize of a search instead of a search.
	SharedAnswers int64 `json:"shared_answers"`
	// Epoch is the backend generation: the number of SetGraph /
	// UpdateSchedules swaps since the pool was built. A response
	// computed at epoch N can never be served once epoch N+1 begins
	// (the swap replaces the cache wholesale).
	Epoch int64 `json:"epoch"`
	// Cache occupancy and pressure. CacheEntries/Windows and the
	// capacities are gauges over the live backend (zero when the cache
	// is disabled); the eviction counters count entries shed by
	// capacity pressure — not invalidation — and stay monotone across
	// backend swaps (retired backends' counts fold into the total at
	// swap time).
	CacheEntries    int64 `json:"cache_entries"`
	CacheCapacity   int64 `json:"cache_capacity"`
	CacheEvictions  int64 `json:"cache_evictions"`
	Windows         int64 `json:"windows"`
	WindowCapacity  int64 `json:"window_capacity"`
	WindowEvictions int64 `json:"window_evictions"`
	SkelFamilies    int64 `json:"skel_families"`
	SkelCapacity    int64 `json:"skel_capacity"`
	SkelEvictions   int64 `json:"skel_evictions"`
	// Reasons are the cumulative decision-provenance tallies: why
	// queries missed every cache and why planned members ran solo.
	Reasons ReasonStats `json:"reasons"`
}

// ReasonStats are cumulative decision-provenance tallies. The miss
// fields partition the engine-answered queries by why no cache could
// serve them; the solo fields count batch/coalesce members that ran a
// dedicated search instead of joining a shared run. Field names match
// the obs.Reason wire vocabulary.
type ReasonStats struct {
	MissUncacheable         int64 `json:"miss_uncacheable"`
	MissNoExactEntry        int64 `json:"miss_no_exact_entry"`
	MissWindowFamilyAbsent  int64 `json:"miss_window_family_absent"`
	MissOutsideWindows      int64 `json:"miss_outside_windows"`
	MissSkeletonUncertified int64 `json:"miss_skeleton_uncertified"`
	MissEpochRaced          int64 `json:"miss_epoch_raced"`
	SoloPrivatePartition    int64 `json:"solo_private_partition"`
	SoloSingletonGroup      int64 `json:"solo_singleton_group"`
	SoloAblation            int64 `json:"solo_ablation"`
}

// ReasonCount pairs a provenance code with its tally.
type ReasonCount struct {
	Reason obs.Reason
	Count  int64
}

// Counts lists the tallies in declaration order — the deterministic
// iteration metrics renderers need. Split miss from solo families with
// obs.Reason.IsMiss.
func (r ReasonStats) Counts() []ReasonCount {
	return []ReasonCount{
		{obs.ReasonUncacheable, r.MissUncacheable},
		{obs.ReasonNoExactEntry, r.MissNoExactEntry},
		{obs.ReasonWindowFamilyAbsent, r.MissWindowFamilyAbsent},
		{obs.ReasonOutsideWindows, r.MissOutsideWindows},
		{obs.ReasonSkeletonUncertified, r.MissSkeletonUncertified},
		{obs.ReasonEpochRaced, r.MissEpochRaced},
		{obs.ReasonPrivatePartition, r.SoloPrivatePartition},
		{obs.ReasonSingletonGroup, r.SoloSingletonGroup},
		{obs.ReasonAblation, r.SoloAblation},
	}
}

// Sub returns the field-wise difference r - o: the movement between
// two snapshots (replay phases report these deltas).
func (r ReasonStats) Sub(o ReasonStats) ReasonStats {
	return ReasonStats{
		MissUncacheable:         r.MissUncacheable - o.MissUncacheable,
		MissNoExactEntry:        r.MissNoExactEntry - o.MissNoExactEntry,
		MissWindowFamilyAbsent:  r.MissWindowFamilyAbsent - o.MissWindowFamilyAbsent,
		MissOutsideWindows:      r.MissOutsideWindows - o.MissOutsideWindows,
		MissSkeletonUncertified: r.MissSkeletonUncertified - o.MissSkeletonUncertified,
		MissEpochRaced:          r.MissEpochRaced - o.MissEpochRaced,
		SoloPrivatePartition:    r.SoloPrivatePartition - o.SoloPrivatePartition,
		SoloSingletonGroup:      r.SoloSingletonGroup - o.SoloSingletonGroup,
		SoloAblation:            r.SoloAblation - o.SoloAblation,
	}
}

// Add returns the field-wise sum r + o (summing across method pools).
func (r ReasonStats) Add(o ReasonStats) ReasonStats {
	return ReasonStats{
		MissUncacheable:         r.MissUncacheable + o.MissUncacheable,
		MissNoExactEntry:        r.MissNoExactEntry + o.MissNoExactEntry,
		MissWindowFamilyAbsent:  r.MissWindowFamilyAbsent + o.MissWindowFamilyAbsent,
		MissOutsideWindows:      r.MissOutsideWindows + o.MissOutsideWindows,
		MissSkeletonUncertified: r.MissSkeletonUncertified + o.MissSkeletonUncertified,
		MissEpochRaced:          r.MissEpochRaced + o.MissEpochRaced,
		SoloPrivatePartition:    r.SoloPrivatePartition + o.SoloPrivatePartition,
		SoloSingletonGroup:      r.SoloSingletonGroup + o.SoloSingletonGroup,
		SoloAblation:            r.SoloAblation + o.SoloAblation,
	}
}

// CacheMisses returns the number of queries that went to an engine:
// every query that was not an exact hit, a window hit, a skeleton
// composition, or shared from an identical batch entry.
func (s Stats) CacheMisses() int64 {
	return s.Queries - s.CacheHits - s.WindowHits - s.SkeletonHits - s.Deduped
}

// String renders a one-line summary of the counters.
func (s Stats) String() string {
	return fmt.Sprintf("queries=%d batches=%d cacheHits=%d windowHits=%d skeletonHits=%d cacheMisses=%d deduped=%d sharedRuns=%d sharedAnswers=%d engines=%d epoch=%d",
		s.Queries, s.Batches, s.CacheHits, s.WindowHits, s.SkeletonHits, s.CacheMisses(), s.Deduped, s.SharedRuns, s.SharedAnswers, s.EnginesCreated, s.Epoch)
}

// poolBackend bundles one graph with the engine pool and result cache
// built over it, so all three can be swapped atomically on a schedule
// update: engines from an old backend can never be checked out against
// a new graph, and results computed on an old graph can only ever land
// in the old (now unreachable) cache — never be served after the swap.
type poolBackend struct {
	g       *itgraph.Graph
	v       *model.Venue
	engines sync.Pool
	cache   *resultCache  // nil when caching is disabled
	windows *tcache.Store // nil unless Options.WindowCache
}

// Pool serves ITSPQ queries concurrently over one shared IT-Graph. It
// keeps warm core.Engines in a sync.Pool (engines are goroutine-
// confined while checked out), deduplicates identical queries inside a
// batch, and caches outcomes keyed by (source partition, target
// partition, checkpoint slot). All methods are safe for concurrent use,
// including SetGraph/UpdateSchedules swapping the graph under live
// queries.
type Pool struct {
	backend atomic.Pointer[poolBackend]
	opts    Options

	queries        atomic.Int64
	batches        atomic.Int64
	cacheHits      atomic.Int64
	windowHits     atomic.Int64
	skeletonHits   atomic.Int64
	deduped        atomic.Int64
	enginesCreated atomic.Int64
	engineSearches atomic.Int64
	sharedRuns     atomic.Int64
	sharedAnswers  atomic.Int64
	swapEpoch      atomic.Int64

	// reasonCounts are the cumulative decision-provenance tallies,
	// indexed by obs.Reason (ReasonNone's slot stays zero).
	reasonCounts [obs.NumReasons]atomic.Int64

	// load is the always-on rolling load-signal ring. Unlike the
	// caches it survives SetGraph swaps: arrival history is a property
	// of the traffic, not of a backend generation.
	load *obs.LoadRing

	// pairs is the always-on space-saving heavy-hitter table over
	// (source partition, target partition) OD pairs — the evidence base
	// for a door-to-door skeleton store (ROADMAP open item 1). Like
	// load it survives swaps: workload shape outlives any backend.
	pairs *obs.TopK

	// effort* are the per-search engine-effort distributions (count
	// histograms over core.SearchStats), fed once per actual engine
	// run. They survive swaps for the same reason as load.
	effortPops   *obs.Histogram
	effortSettle *obs.Histogram
	effortRelax  *obs.Histogram
	effortTV     *obs.Histogram

	// cacheEvictBase / windowEvictBase / skelEvictBase fold retired
	// backends' eviction counts in at swap time, keeping the exported
	// eviction counters monotone across SetGraph swaps. A scrape racing
	// a swap can transiently under-read by the retiring backend's
	// count; the next scrape corrects it.
	cacheEvictBase  atomic.Int64
	windowEvictBase atomic.Int64
	skelEvictBase   atomic.Int64
}

// New builds a Pool over the graph.
func New(g *itgraph.Graph, opts Options) *Pool {
	p := &Pool{
		opts:         opts,
		load:         obs.NewLoadRing(),
		pairs:        obs.NewTopK(0),
		effortPops:   obs.NewCountHistogram(nil),
		effortSettle: obs.NewCountHistogram(nil),
		effortRelax:  obs.NewCountHistogram(nil),
		effortTV:     obs.NewCountHistogram(nil),
	}
	p.backend.Store(p.newBackend(g))
	return p
}

// LoadRing exposes the pool's rolling load-signal ring: per-second
// arrival/hit/shareability/hold tallies over the last
// obs.LoadRetentionSec seconds. Always non-nil; servers snapshot it
// with LoadRing().Windows(obs.LoadWindows).
func (p *Pool) LoadRing() *obs.LoadRing { return p.load }

// HotPairs snapshots the pool's OD-pair heavy-hitter table, sorted by
// descending query weight. Snapshot it before Stats() when comparing
// tallies against pool counters: Stats reads Queries last, so per-pair
// tallies never exceed the query counter within one scrape.
func (p *Pool) HotPairs() []obs.PairCount { return p.pairs.Snapshot() }

// HotPairCapacity returns the heavy-hitter table's fixed slot budget.
func (p *Pool) HotPairCapacity() int { return p.pairs.Capacity() }

// EffortSnapshot bundles the four per-search engine-effort
// distributions. Each histogram observes once per actual engine run
// (dedicated or shared); the snapshot's SumSeconds fields carry raw
// summed counts (obs.NewCountHistogram semantics).
type EffortSnapshot struct {
	Pops        obs.HistogramSnapshot `json:"pops"`
	Settled     obs.HistogramSnapshot `json:"settled"`
	Relaxations obs.HistogramSnapshot `json:"relaxations"`
	TVChecks    obs.HistogramSnapshot `json:"tv_checks"`
}

// Effort snapshots the per-search engine-effort histograms.
func (p *Pool) Effort() EffortSnapshot {
	return EffortSnapshot{
		Pops:        p.effortPops.Snapshot(),
		Settled:     p.effortSettle.Snapshot(),
		Relaxations: p.effortRelax.Snapshot(),
		TVChecks:    p.effortTV.Snapshot(),
	}
}

// WindowCoverage snapshots the live window store's per-pair window
// counts and day coverage (nil when the window cache is disabled).
func (p *Pool) WindowCoverage() []tcache.PairCoverage {
	b := p.backend.Load()
	if b.windows == nil || !p.opts.WindowCache {
		return nil
	}
	return b.windows.Coverage()
}

// SkeletonCoverage snapshots the live store's per-pair skeleton
// occupancy — slot families, stored chains and covered slot seconds —
// nil when the skeleton cache is disabled.
func (p *Pool) SkeletonCoverage() []tcache.PairCoverage {
	b := p.backend.Load()
	if !p.skeletonEnabled(b) {
		return nil
	}
	return b.windows.SkeletonCoverage()
}

// observeEffort feeds one completed search's statistics into the
// per-search effort histograms. Allocation-free, always on.
func (p *Pool) observeEffort(stats core.SearchStats) {
	p.effortPops.ObserveCount(int64(stats.Pops))
	p.effortSettle.ObserveCount(int64(stats.Settled))
	p.effortRelax.ObserveCount(int64(stats.Relaxations))
	p.effortTV.ObserveCount(int64(stats.Checker.Checks))
}

// pairKeyOf projects a cache key onto the heavy-hitter table's OD-pair
// addressing. Only cacheable queries feed the table: an endpoint in no
// partition has no pair to attribute traffic to.
func pairKeyOf(key cacheKey) obs.PairKey {
	return obs.PairKey{Src: int32(key.src), Tgt: int32(key.tgt)}
}

func (p *Pool) newBackend(g *itgraph.Graph) *poolBackend {
	b := &poolBackend{g: g, v: g.Venue()}
	b.engines.New = func() any {
		p.enginesCreated.Add(1)
		return core.NewEngine(g, p.opts.Engine)
	}
	switch {
	case p.opts.CacheCapacity < 0:
		// caching disabled
	case p.opts.CacheCapacity == 0:
		b.cache = newResultCache(DefaultCacheCapacity)
	default:
		b.cache = newResultCache(p.opts.CacheCapacity)
	}
	if (p.opts.WindowCache || p.opts.SkeletonCache) && p.opts.WindowCapacity >= 0 {
		b.windows = tcache.NewStore(p.opts.WindowCapacity)
	}
	return b
}

// skeletonEnabled reports whether the backend serves and builds
// skeleton families: the option is on, the shared temporal store
// exists, and the engine is not the SinglePartitionExpansion ablation
// (whose visited-partition gate makes per-entry-door families
// unsound — core.BuildSkeletonFamily refuses them anyway).
func (p *Pool) skeletonEnabled(b *poolBackend) bool {
	return p.opts.SkeletonCache && b.windows != nil && !p.opts.Engine.SinglePartitionExpansion
}

// Graph returns the shared IT-Graph.
func (p *Pool) Graph() *itgraph.Graph { return p.backend.Load().g }

// SetGraph atomically replaces the pool's graph together with the warm
// engines and the result cache built over the old one. In-flight
// queries finish against the backend they started on and can only
// populate that backend's now-unreachable cache, so nothing computed
// on the old graph is ever served afterwards. This is the live
// schedule-update hook: build a new graph (e.g. over
// Venue.WithSchedules output) and swap it in without draining the
// server.
func (p *Pool) SetGraph(g *itgraph.Graph) {
	old := p.backend.Load()
	p.backend.Store(p.newBackend(g))
	p.swapEpoch.Add(1)
	// Fold the retired backend's eviction counts into the monotone
	// bases. In-flight queries pinned to the old backend may still
	// evict after this capture; those tail counts are dropped, which
	// only ever under-reports pressure on an unreachable cache.
	if old.cache != nil {
		_, _, ev := old.cache.usage()
		p.cacheEvictBase.Add(ev)
	}
	if old.windows != nil {
		p.windowEvictBase.Add(old.windows.Evictions())
		p.skelEvictBase.Add(old.windows.FamEvictions())
	}
}

// UpdateSchedules is the convenience form of SetGraph for door
// schedule changes: it rebuilds the venue via WithSchedules, builds
// the IT-Graph over it, and swaps it in (nil schedule = always open).
func (p *Pool) UpdateSchedules(updates map[model.DoorID]temporal.Schedule) error {
	v2, err := p.backend.Load().v.WithSchedules(updates)
	if err != nil {
		return err
	}
	g2, err := itgraph.New(v2)
	if err != nil {
		return err
	}
	p.SetGraph(g2)
	return nil
}

// Stats returns a snapshot of the cumulative counters. The counters
// are independent atomics, not one consistent snapshot; CacheHits and
// Deduped are read before Queries so that CacheMisses() can never go
// transiently negative (every route increments queries before its
// hit/dedup counter, so queries read last dominates).
func (p *Pool) Stats() Stats {
	hits := p.cacheHits.Load()
	windowHits := p.windowHits.Load()
	skeletonHits := p.skeletonHits.Load()
	deduped := p.deduped.Load()
	// Eviction bases before backend counts: a swap between the two
	// reads can only under-read (next scrape corrects), never regress.
	cacheEv := p.cacheEvictBase.Load()
	windowEv := p.windowEvictBase.Load()
	skelEv := p.skelEvictBase.Load()
	b := p.backend.Load()
	var cacheSize, cacheCap, winSize, winCap, skelSize, skelCap int
	if b.cache != nil {
		var ev int64
		cacheSize, cacheCap, ev = b.cache.usage()
		cacheEv += ev
	}
	if b.windows != nil {
		winSize, winCap = b.windows.Len(), b.windows.Cap()
		windowEv += b.windows.Evictions()
		skelSize, skelCap = b.windows.FamLen(), b.windows.Cap()
		skelEv += b.windows.FamEvictions()
	}
	return Stats{
		Batches:         p.batches.Load(),
		CacheHits:       hits,
		WindowHits:      windowHits,
		SkeletonHits:    skeletonHits,
		Deduped:         deduped,
		EnginesCreated:  p.enginesCreated.Load(),
		EngineSearches:  p.engineSearches.Load(),
		SharedRuns:      p.sharedRuns.Load(),
		SharedAnswers:   p.sharedAnswers.Load(),
		Epoch:           p.swapEpoch.Load(),
		CacheEntries:    int64(cacheSize),
		CacheCapacity:   int64(cacheCap),
		CacheEvictions:  cacheEv,
		Windows:         int64(winSize),
		WindowCapacity:  int64(winCap),
		WindowEvictions: windowEv,
		SkelFamilies:    int64(skelSize),
		SkelCapacity:    int64(skelCap),
		SkelEvictions:   skelEv,
		Reasons:         p.reasonStats(),
		Queries:         p.queries.Load(),
	}
}

func (p *Pool) reasonStats() ReasonStats {
	return ReasonStats{
		MissUncacheable:         p.reasonCounts[obs.ReasonUncacheable].Load(),
		MissNoExactEntry:        p.reasonCounts[obs.ReasonNoExactEntry].Load(),
		MissWindowFamilyAbsent:  p.reasonCounts[obs.ReasonWindowFamilyAbsent].Load(),
		MissOutsideWindows:      p.reasonCounts[obs.ReasonOutsideWindows].Load(),
		MissSkeletonUncertified: p.reasonCounts[obs.ReasonSkeletonUncertified].Load(),
		MissEpochRaced:          p.reasonCounts[obs.ReasonEpochRaced].Load(),
		SoloPrivatePartition:    p.reasonCounts[obs.ReasonPrivatePartition].Load(),
		SoloSingletonGroup:      p.reasonCounts[obs.ReasonSingletonGroup].Load(),
		SoloAblation:            p.reasonCounts[obs.ReasonAblation].Load(),
	}
}

// noteMiss books one engine-answered miss: the per-reason counter plus
// one ring sample carrying the query's whole outcome (arrival, search,
// reason) so the windowed partition stays consistent. Allocation-free.
func (p *Pool) noteMiss(reason obs.Reason, extra obs.LoadSample) {
	p.reasonCounts[reason].Add(1)
	extra.Queries = 1
	extra.CountReason(reason)
	p.load.Feed(extra)
}

// noteSolo books one member that ran a dedicated search instead of
// sharing. Solo tallies ride their own sample: they are not part of
// the hit+dedup <= queries partition.
func (p *Pool) noteSolo(reason obs.Reason) {
	p.reasonCounts[reason].Add(1)
	var s obs.LoadSample
	s.CountReason(reason)
	p.load.Feed(s)
}

// workers resolves the effective fan-out width.
func (p *Pool) workers() int {
	if p.opts.Workers > 0 {
		return p.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Route answers one ITSPQ query, exactly as core.Engine.Route would,
// using a pooled engine and the result cache. Safe to call from any
// number of goroutines.
func (p *Pool) Route(q core.Query) (*core.Path, core.SearchStats, error) {
	r := p.route(nil, q)
	return r.Path, r.Stats, r.Err
}

// RouteResult is Route returning the full Result, including the
// CacheHit flag — the form servers want for per-response provenance.
func (p *Pool) RouteResult(q core.Query) Result {
	return p.route(nil, q)
}

// RouteTraced is RouteResult recording observability spans — cache
// probe, engine run (with the search's SearchStats attached) and
// cache store — onto tr. A nil tr selects the untraced fast path:
// identical behaviour, no clock reads, no allocations.
func (p *Pool) RouteTraced(tr *obs.Trace, q core.Query) Result {
	return p.route(tr, q)
}

// route is Route returning the full Result (cache-hit flag included).
func (p *Pool) route(tr *obs.Trace, q core.Query) Result {
	b := p.backend.Load()
	key, ekey, cacheable := keysFor(b, q)
	return p.routeKeyed(tr, b, q, key, ekey, cacheable)
}

// routeKeyed is route with the backend pinned and the cache keys
// already derived (RouteBatch computes them once for deduplication and
// reuses them here). Lookup order: exact cache, then validity-window
// cache, then an engine search whose outcome feeds both.
func (p *Pool) routeKeyed(tr *obs.Trace, b *poolBackend, q core.Query, key cacheKey, ekey entryKey, cacheable bool) Result {
	p.queries.Add(1)
	sp := tr.Start(obs.StageProbe)
	r, ok, epoch, wepoch, reason := p.lookupCaches(b, q, key, ekey, cacheable)
	if tr == nil || ok {
		sp.End()
	} else {
		// Copy under the guard: building the attachment unconditionally
		// would heap-allocate on the untraced path.
		attach := reasonAttrs{Reason: reason.String()}
		sp.EndWith(&attach)
	}
	if ok {
		return r
	}
	sp = tr.Start(obs.StageEngine)
	p.engineSearches.Add(1)
	e := b.engines.Get().(*core.Engine)
	path, stats, err := e.Route(q)
	if tr == nil {
		sp.End()
	} else {
		// Copy under the guard: taking stats' address unconditionally
		// would make it escape and heap-allocate on the untraced path.
		attach := stats
		sp.EndWith(&attach)
	}
	r = Result{Path: path, Stats: stats, Err: err, Hit: HitMiss}
	sp = tr.Start(obs.StageStore)
	if p.storeOutcome(b, e, q, key, ekey, cacheable, r, epoch, wepoch) {
		// The computed outcome was discarded by an epoch guard: the
		// cache state this miss reasoned about no longer exists.
		reason = obs.ReasonEpochRaced
	}
	b.engines.Put(e)
	sp.End()
	r.Explain = reason
	p.noteMiss(reason, obs.LoadSample{EngineSearches: 1})
	p.observeEffort(stats)
	if cacheable {
		p.pairs.Feed(pairKeyOf(key),
			obs.PairSample{Queries: 1, EngineSearches: 1, Effort: int64(stats.Pops)})
	}
	return r
}

// reasonAttrs is the probe-span attachment on a miss: the decision-
// provenance code, rendered as {"reason":"..."} in trace docs.
type reasonAttrs struct {
	Reason string `json:"reason"`
}

// planAttrs is the plan-span attachment: how the batch decomposed,
// solo provenance included.
type planAttrs struct {
	Units         int `json:"units"`
	SharedGroups  int `json:"shared_groups,omitempty"`
	Deduped       int `json:"deduped,omitempty"`
	SoloPrivate   int `json:"solo_private,omitempty"`
	SoloSingleton int `json:"solo_singleton,omitempty"`
}

// lookupCaches serves q from the exact cache, then the validity-window
// cache, then the pair's skeleton family, counting hits (pool counters
// and the load ring — a hit's whole outcome is fed here in one
// sample). On a miss it returns the store epochs captured before any
// search, for the epoch-guarded inserts of storeOutcome, plus the
// miss's provenance; the caller books the miss (noteMiss) once the
// outcome — including a possible epoch race — is known.
//
// Probe order is cheapest-first: an exact hit is a map step, a window
// hit a binary search plus an arrival rebase, a skeleton hit a
// composition over the family's chains (two distance-matrix reads per
// chain). None of the three checks out an engine.
func (p *Pool) lookupCaches(b *poolBackend, q core.Query, key cacheKey, ekey entryKey, cacheable bool) (Result, bool, uint64, uint64, obs.Reason) {
	useCache := cacheable && b.cache != nil
	useWindows := cacheable && b.windows != nil && p.opts.WindowCache
	useSkel := cacheable && p.skeletonEnabled(b) && key.src != key.tgt
	reason := obs.ReasonNoExactEntry
	if !cacheable {
		reason = obs.ReasonUncacheable
	}
	var epoch, wepoch uint64
	if useCache {
		if r, ok := b.cache.get(key, ekey); ok {
			p.cacheHits.Add(1)
			p.load.Feed(obs.LoadSample{Queries: 1, ExactHits: 1})
			p.pairs.Feed(pairKeyOf(key), obs.PairSample{Queries: 1, ExactHits: 1})
			r.CacheHit = true
			r.Hit = HitExact
			return r, true, 0, 0, obs.ReasonNone
		}
		epoch = b.cache.epoch()
	}
	if useWindows || useSkel {
		wepoch = b.windows.Epoch()
	}
	if useWindows {
		ent, mk := b.windows.Probe(windowKey(key), windowPointKey(ekey), ekey.at)
		if ent != nil {
			// Deliberately not promoted into the exact cache: a sweep
			// workload would flood it with one-shot per-departure
			// entries (evicting genuinely hot exact entries), and the
			// window lookup repeats serve from is already O(log n).
			r := materializeWindow(ent, q, ekey)
			p.windowHits.Add(1)
			p.load.Feed(obs.LoadSample{Queries: 1, WindowHits: 1})
			p.pairs.Feed(pairKeyOf(key), obs.PairSample{Queries: 1, WindowHits: 1})
			r.CacheHit = true
			r.Hit = HitWindow
			return r, true, 0, 0, obs.ReasonNone
		}
		if mk == tcache.MissOutsideWindows {
			reason = obs.ReasonOutsideWindows
		} else {
			reason = obs.ReasonWindowFamilyAbsent
		}
	}
	if useSkel {
		fe, mk := b.windows.ProbeFamily(windowKey(key), ekey.at)
		switch {
		case fe != nil:
			if path, ok := core.ComposeSkeletonPath(b.g, q.Source, q.Target, ekey.at, ekey.speed, fe.Fam); ok {
				r := Result{Path: path, Stats: fe.Stats, CacheHit: true, Hit: HitSkeleton}
				p.skeletonHits.Add(1)
				p.load.Feed(obs.LoadSample{Queries: 1, SkeletonHits: 1})
				p.pairs.Feed(pairKeyOf(key), obs.PairSample{Queries: 1, SkeletonHits: 1})
				return r, true, 0, 0, obs.ReasonNone
			}
			// A family covers the departure but refused these endpoints:
			// the most specific provenance, overriding the point-window
			// miss kinds.
			reason = obs.ReasonSkeletonUncertified
		case mk == tcache.MissOutsideWindows && reason != obs.ReasonOutsideWindows:
			// Skeletons exist for the pair, just not this slot: upgrade
			// "family absent" to the sharper outside-windows provenance
			// (same rule the point probe applies).
			reason = obs.ReasonOutsideWindows
		case reason == obs.ReasonNoExactEntry:
			// Skeleton-only configuration (window cache off): the family
			// store is the temporal cache that had nothing for the pair.
			reason = obs.ReasonWindowFamilyAbsent
		}
	}
	return Result{}, false, epoch, wepoch, reason
}

// storeOutcome feeds one computed outcome into the exact and window
// caches, and — when the skeleton layer is on and the pair has no
// family covering this departure yet — builds and stores the pair's
// skeleton family, riding the same engine checkout (the build is part
// of the triggering miss's cost; later same-pair queries compose
// instead of searching). The engine that produced (or rebased) the
// answer must still be checked out: the window derivation replays its
// leg arithmetic and the family build runs its frozen Dijkstras.
// Reports whether an insert was discarded by an epoch guard (an
// invalidation ran while the search was in flight) — the epoch_raced
// provenance.
func (p *Pool) storeOutcome(b *poolBackend, e *core.Engine, q core.Query, key cacheKey, ekey entryKey,
	cacheable bool, r Result, epoch, wepoch uint64) (raced bool) {

	if cacheable && b.cache != nil {
		if !b.cache.put(key, ekey, entryFor(b, key, r), epoch) {
			raced = true
		}
	}
	if cacheable && b.windows != nil && p.opts.WindowCache && r.Err == nil && r.Path != nil {
		if went := windowEntryFor(e, q, r.Path, r.Stats); went != nil {
			// Insert also rejects overlaps and degenerate windows; only
			// an epoch move counts as a race.
			if !b.windows.Insert(windowKey(key), windowPointKey(ekey), went, wepoch) &&
				b.windows.Epoch() != wepoch {
				raced = true
			}
		}
	}
	if cacheable && p.skeletonEnabled(b) && key.src != key.tgt && r.Err == nil {
		if _, mk := b.windows.ProbeFamily(windowKey(key), ekey.at); mk != tcache.MissNone {
			if fam := e.BuildSkeletonFamily(key.src, key.tgt, ekey.at); fam != nil {
				fe := &tcache.FamilyEntry{Window: fam.Window, Fam: fam, Stats: r.Stats}
				// A losing insert against a concurrent same-slot build is
				// not a race — identical families, first-in wins. Only an
				// epoch move is.
				if !b.windows.InsertFamily(windowKey(key), fe, wepoch) &&
					b.windows.Epoch() != wepoch {
					raced = true
				}
			}
		}
	}
	return raced
}

// windowKey and windowPointKey project the exact-cache keys onto the
// window store's addressing.
func windowKey(key cacheKey) tcache.Key {
	return tcache.Key{Src: key.src, Tgt: key.tgt}
}

func windowPointKey(ekey entryKey) tcache.PointKey {
	return tcache.PointKey{Src: ekey.src, Tgt: ekey.tgt, Speed: ekey.speed}
}

// windowEntryFor derives the validity-window entry for a found path,
// or nil when the answer is not window-cacheable (its walk crosses a
// checkpoint, its arrival wraps midnight, …). Called with the engine
// still checked out: both the window derivation and PathDistances
// replay the engine's own leg arithmetic, so the window and the
// rebased arrivals are faithful to the search that produced the path.
func windowEntryFor(e *core.Engine, q core.Query, path *core.Path, stats core.SearchStats) *tcache.Entry {
	dists := e.PathDistances(path, q)
	w, err := e.AnswerWindowDists(path, q, dists)
	if err != nil {
		return nil
	}
	return &tcache.Entry{
		Window:     w,
		Doors:      path.Doors,
		Partitions: path.Partitions,
		Length:     path.Length,
		Dists:      dists,
		Stats:      stats,
	}
}

// materializeWindow builds the answer for a departure covered by a
// stored window: the entry's door and partition sequences (shared —
// paths are immutable) with every arrival recomputed for this query's
// departure, exactly as the engine's reconstruct would have
// (departure + cumulative distance / speed, the same float64 ops in
// the same order). The original Path.Arrival instants are never
// reused. Stats are the producing search's, mirroring exact hits.
func materializeWindow(ent *tcache.Entry, q core.Query, ekey entryKey) Result {
	arrivals := make([]temporal.TimeOfDay, len(ent.Doors))
	for i, d := range ent.Dists {
		arrivals[i] = ekey.at + temporal.TimeOfDay(d/ekey.speed)
	}
	return Result{
		Path: &core.Path{
			Source:       q.Source,
			Target:       q.Target,
			Doors:        ent.Doors,
			Partitions:   ent.Partitions,
			Length:       ent.Length,
			Arrivals:     arrivals,
			ArrivalAtTgt: ekey.at + temporal.TimeOfDay(ent.Length/ekey.speed),
			DepartedAt:   ekey.at,
		},
		Stats: ent.Stats,
	}
}

// entryFor derives the checkpoint-slot range a cached outcome depends
// on. A found path's answer depends exactly on the slots its walk
// spans; a no-route outcome (or a walk wrapping past midnight) can be
// affected by a schedule change in any slot, so it is marked spansAll
// and dropped on every slot invalidation.
func entryFor(b *poolBackend, key cacheKey, r Result) cacheEntry {
	e := cacheEntry{res: r, minSlot: key.slot, maxSlot: key.slot}
	if r.Err != nil || r.Path == nil || r.Path.ArrivalAtTgt >= temporal.DaySeconds {
		e.spansAll = true
		return e
	}
	e.maxSlot = b.g.Checkpoints().SlotOf(r.Path.ArrivalAtTgt)
	return e
}

// keysFor derives the cache keys of a query. cacheable is false when an
// endpoint lies in no partition (the engine will return ErrNotIndoor
// with a query-specific message; such outcomes are not cached).
func keysFor(b *poolBackend, q core.Query) (cacheKey, entryKey, bool) {
	srcPart, ok := b.v.Locate(q.Source)
	if !ok {
		return cacheKey{}, entryKey{}, false
	}
	tgtPart, ok := b.v.Locate(q.Target)
	if !ok {
		return cacheKey{}, entryKey{}, false
	}
	at := q.At.Mod()
	speed := q.Speed
	if speed <= 0 {
		speed = core.WalkingSpeedMPS
	}
	key := cacheKey{src: srcPart, tgt: tgtPart, slot: b.g.Checkpoints().SlotOf(at)}
	ekey := entryKey{src: q.Source, tgt: q.Target, at: at, speed: speed}
	return key, ekey, true
}

// BatchSummary describes how one RouteBatch was served: how many
// entries came from each cache, how many engine searches actually ran
// (Searches counts runs, so one shared run answering a 64-query group
// adds 1, not 64), and the shared-execution tallies. Queries ==
// ExactHits + WindowHits + SkeletonHits + Deduped + SharedAnswers +
// (Searches - SharedRuns) always holds: every entry is a hit, a
// duplicate, a shared-run answer, or a dedicated search.
type BatchSummary struct {
	Queries       int
	ExactHits     int
	WindowHits    int
	SkeletonHits  int
	Deduped       int
	Searches      int
	SharedRuns    int
	SharedAnswers int
}

// RouteBatch answers a batch of queries with worker fan-out. Identical
// queries (same source, target, normalised time and speed) are searched
// once and shared across the batch; distinct queries run concurrently
// on up to Options.Workers goroutines, each checking a warm engine out
// of the shared pool per query (or per batchplan group when
// Options.SharedBatch is on). Results are positionally aligned with qs,
// and each Path/Err pair is byte-for-byte what a sequential
// core.Engine.Route would have produced.
func (p *Pool) RouteBatch(qs []core.Query) []Result {
	rs, _ := p.RouteBatchSummary(qs)
	return rs
}

// RouteBatchSummary is RouteBatch returning the per-batch serving
// summary alongside the results — the form the HTTP batch endpoint and
// the CLI sweep report from.
func (p *Pool) RouteBatchSummary(qs []core.Query) ([]Result, BatchSummary) {
	return p.RouteBatchSummaryTraced(nil, qs)
}

// RouteBatchSummaryTraced is RouteBatchSummary recording spans onto
// tr: one plan span covering dedup and batchplan grouping, then
// probe/engine/store spans from the work units (batch workers record
// concurrently; the trace is internally synchronised). Nil tr is the
// untraced fast path.
func (p *Pool) RouteBatchSummaryTraced(tr *obs.Trace, qs []core.Query) ([]Result, BatchSummary) {
	p.batches.Add(1)
	out := make([]Result, len(qs))
	sum := BatchSummary{Queries: len(qs)}
	if len(qs) == 0 {
		return out, sum
	}

	planSpan := tr.Start(obs.StagePlan)

	// Shared-query deduplication: collapse identical (ps, pt, t, v)
	// requests onto one canonical search each. The derived keys are
	// kept and fed to routeKeyed so point location runs once per entry.
	type group struct {
		canon int
		dups  []int
	}
	b := p.backend.Load() // one consistent graph view for the whole batch
	keys := make([]cacheKey, len(qs))
	ekeys := make([]entryKey, len(qs))
	cacheable := make([]bool, len(qs))
	groups := make([]group, 0, len(qs))
	index := make(map[entryKey]int, len(qs)) // entryKey -> groups index
	var uncacheable []int                    // queries outside every partition
	for i, q := range qs {
		keys[i], ekeys[i], cacheable[i] = keysFor(b, q)
		if !cacheable[i] {
			uncacheable = append(uncacheable, i)
			continue
		}
		if gi, seen := index[ekeys[i]]; seen {
			groups[gi].dups = append(groups[gi].dups, i)
			continue
		}
		index[ekeys[i]] = len(groups)
		groups = append(groups, group{canon: i})
	}

	// Build the work units: with the shared planner on, canonical
	// cacheable queries are partitioned into batchplan groups (largest
	// fan-out first); otherwise each is its own unit. Unlocatable
	// queries always run solo.
	type unit struct {
		solo int // batch index, when grp is nil
		grp  *batchplan.Group
	}
	var units []unit
	var items []batchplan.Item
	var sharedRuns atomic.Int64 // this batch's shared executions
	if p.opts.SharedBatch {
		items = make([]batchplan.Item, 0, len(groups))
		for _, g := range groups {
			i := g.canon
			items = append(items, batchplan.Item{
				Index:      i,
				Src:        qs[i].Source,
				Tgt:        qs[i].Target,
				At:         ekeys[i].at,
				Speed:      ekeys[i].speed,
				SrcPart:    keys[i].src,
				TgtPart:    keys[i].tgt,
				SrcPrivate: b.v.Partition(keys[i].src).Kind.IsPrivate(),
				TgtPrivate: b.v.Partition(keys[i].tgt).Kind.IsPrivate(),
			})
		}
		plan := batchplan.NewOpts(items, p.opts.Engine.Method, batchplan.Options{
			// Partition-pair coalescing rides the skeleton layer: without
			// a family store the members would just run solo anyway.
			PartitionGroups: p.skeletonEnabled(b),
		})
		units = make([]unit, 0, len(plan.Groups)+len(uncacheable))
		for gi := range plan.Groups {
			units = append(units, unit{solo: -1, grp: &plan.Groups[gi]})
		}
	} else {
		units = make([]unit, 0, len(groups)+len(uncacheable))
		for _, g := range groups {
			units = append(units, unit{solo: g.canon})
		}
	}
	for _, i := range uncacheable {
		units = append(units, unit{solo: i})
	}
	if tr == nil {
		planSpan.End()
	} else {
		// Plan provenance: how the batch decomposed, including why solo
		// groups could not share. Built under the guard (see routeKeyed).
		attach := planAttrs{Units: len(units), Deduped: len(qs) - len(groups) - len(uncacheable)}
		for _, u := range units {
			if u.grp == nil {
				continue
			}
			switch {
			case u.grp.Kind != batchplan.Solo:
				attach.SharedGroups++
			case u.grp.Why == obs.ReasonPrivatePartition:
				attach.SoloPrivate++
			default:
				attach.SoloSingleton++
			}
		}
		planSpan.EndWith(&attach)
	}

	runUnit := func(u unit) {
		if u.grp == nil {
			out[u.solo] = p.routeKeyed(tr, b, qs[u.solo], keys[u.solo], ekeys[u.solo], cacheable[u.solo])
			return
		}
		p.routeGroup(tr, b, qs, items, u.grp, keys, ekeys, out, &sharedRuns)
	}

	w := p.workers()
	if w > len(units) {
		w = len(units)
	}
	if w <= 1 {
		for _, u := range units {
			runUnit(u)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for range w {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					n := int(next.Add(1)) - 1
					if n >= len(units) {
						return
					}
					runUnit(units[n])
				}
			}()
		}
		wg.Wait()
	}

	// Propagate canonical outcomes to their duplicates. SharedRun is
	// cleared on the copy (as cache.put does when re-labelling): the
	// duplicate is accounted as deduped, not as a shared-run answer, so
	// per-entry flags always sum to the summary's tallies. One ring
	// sample per group keeps a duplicate's arrival and dedup mark in
	// one bucket.
	for _, g := range groups {
		if n := int64(len(g.dups)); n > 0 {
			p.load.Feed(obs.LoadSample{Queries: n, Deduped: n})
		}
		for _, i := range g.dups {
			p.queries.Add(1)
			p.deduped.Add(1)
			r := out[g.canon]
			r.Shared = true
			r.SharedRun = false
			out[i] = r
		}
		// Pair tallies after the queries.Add loop, so a concurrent
		// scrape that snapshots the table before reading the query
		// counter never sees tallies exceed it.
		if n := int64(len(g.dups)); n > 0 && cacheable[g.canon] {
			p.pairs.Feed(pairKeyOf(keys[g.canon]), obs.PairSample{Queries: n, Deduped: n})
		}
	}

	// Derive the serving summary from the results (Searches counts
	// engine runs: each plain miss ran one, each shared run ran one).
	for i := range out {
		r := &out[i]
		switch {
		case r.Shared:
			sum.Deduped++
		case r.Hit == HitExact:
			sum.ExactHits++
		case r.Hit == HitWindow:
			sum.WindowHits++
		case r.Hit == HitSkeleton:
			sum.SkeletonHits++
		case r.SharedRun:
			sum.SharedAnswers++
		default:
			sum.Searches++
		}
	}
	sum.SharedRuns = int(sharedRuns.Load())
	sum.Searches += sum.SharedRuns
	return out, sum
}

// routeGroup executes one batchplan group: a per-member cache pass
// (exact and window hits never reach the shared run), then one
// checked-out engine answering every remaining member together via
// RouteMany / RouteManyTo, with each answer fed through the same
// epoch-guarded cache inserts a solo search uses. Static groups may
// mix departure instants; those answers are restated per member by a
// bit-identical departure rebase before caching and delivery.
func (p *Pool) routeGroup(tr *obs.Trace, b *poolBackend, qs []core.Query, items []batchplan.Item, grp *batchplan.Group,
	keys []cacheKey, ekeys []entryKey, out []Result, sharedRuns *atomic.Int64) {

	if grp.Kind == batchplan.SharedPartition {
		p.routePartitionGroup(tr, b, qs, items, grp, keys, ekeys, out)
		return
	}
	if grp.Kind == batchplan.Solo || len(grp.Members) == 1 {
		soloWhy := grp.Why
		if soloWhy == obs.ReasonNone {
			// A shared-kind group reduced to one member shares nothing.
			soloWhy = obs.ReasonSingletonGroup
		}
		for _, m := range grp.Members {
			i := items[m].Index
			out[i] = p.routeKeyed(tr, b, qs[i], keys[i], ekeys[i], true)
			if !out[i].CacheHit {
				// Only members that actually ran a dedicated search
				// count as solo decisions; a cache hit shared nothing
				// because it cost nothing.
				p.noteSolo(soloWhy)
			}
		}
		return
	}

	type pending struct {
		i      int // batch index
		epoch  uint64
		wepoch uint64
		reason obs.Reason // the member's miss provenance
	}
	var rem []pending
	var pts []geom.Point
	// One probe span for the whole member cache pass: per-member spans
	// would blow the trace's span budget on a 64-query group.
	sp := tr.Start(obs.StageProbe)
	for _, m := range grp.Members {
		i := items[m].Index
		p.queries.Add(1)
		r, ok, epoch, wepoch, reason := p.lookupCaches(b, qs[i], keys[i], ekeys[i], true)
		if ok {
			out[i] = r
			continue
		}
		rem = append(rem, pending{i: i, epoch: epoch, wepoch: wepoch, reason: reason})
		if grp.Kind == batchplan.SharedSource {
			pts = append(pts, qs[i].Target)
		} else {
			pts = append(pts, qs[i].Source)
		}
	}
	if tr == nil || len(rem) == 0 {
		sp.End()
	} else {
		// The group pass's dominant miss reason (members share endpoint
		// family and departure semantics, so they rarely diverge).
		attach := reasonAttrs{Reason: rem[0].reason.String()}
		sp.EndWith(&attach)
	}
	if len(rem) == 0 {
		return
	}

	e := b.engines.Get().(*core.Engine)
	defer b.engines.Put(e)
	if len(rem) == 1 {
		// The caches absorbed the fan-out: a single miss is a plain
		// solo search (solo provenance: nothing left to share with).
		pm := rem[0]
		sp = tr.Start(obs.StageEngine)
		p.engineSearches.Add(1)
		path, stats, err := e.Route(qs[pm.i])
		if tr == nil {
			sp.End()
		} else {
			attach := stats
			sp.EndWith(&attach)
		}
		r := Result{Path: path, Stats: stats, Err: err, Hit: HitMiss}
		sp = tr.Start(obs.StageStore)
		reason := pm.reason
		if p.storeOutcome(b, e, qs[pm.i], keys[pm.i], ekeys[pm.i], true, r, pm.epoch, pm.wepoch) {
			reason = obs.ReasonEpochRaced
		}
		sp.End()
		r.Explain = reason
		p.noteMiss(reason, obs.LoadSample{EngineSearches: 1})
		p.noteSolo(obs.ReasonSingletonGroup)
		p.observeEffort(stats)
		p.pairs.Feed(pairKeyOf(keys[pm.i]),
			obs.PairSample{Queries: 1, EngineSearches: 1, Effort: int64(stats.Pops)})
		out[pm.i] = r
		return
	}

	sp = tr.Start(obs.StageEngine)
	var outs []core.ManyOutcome
	if grp.Kind == batchplan.SharedSource {
		outs = e.RouteMany(grp.Source, pts, grp.At, grp.Speed)
	} else {
		outs = e.RouteManyTo(pts, grp.Target, grp.At, grp.Speed)
	}
	if tr == nil {
		sp.End()
	} else {
		// The shared run's frontier stats: every non-solo outcome
		// carries the same search's numbers, so the first one stands
		// for the run.
		attach := outs[0].Stats
		sp.EndWith(&attach)
	}
	nShared := 0
	for _, o := range outs {
		if o.Solo {
			p.engineSearches.Add(1)
		} else if o.Err == nil || errors.Is(o.Err, core.ErrNoRoute) {
			nShared++
		}
	}
	if nShared > 0 {
		p.engineSearches.Add(1) // the one shared search
		// The run's frontier stats, observed once: every non-solo
		// outcome carries the same search's numbers.
		for _, o := range outs {
			if !o.Solo {
				p.observeEffort(o.Stats)
				break
			}
		}
	}
	counted := nShared >= 2 // a "shared run" must actually share
	if counted {
		sharedRuns.Add(1)
		p.sharedRuns.Add(1)
		p.sharedAnswers.Add(int64(nShared))
	}
	sp = tr.Start(obs.StageStore)
	defer sp.End()
	for k, pm := range rem {
		o := outs[k]
		path := o.Path
		if path != nil && ekeys[pm.i].at != path.DepartedAt {
			path = e.RebaseDeparture(path, qs[pm.i])
		}
		fromRun := !o.Solo && (o.Err == nil || errors.Is(o.Err, core.ErrNoRoute))
		r := Result{
			Path:      path,
			Stats:     o.Stats,
			Err:       o.Err,
			Hit:       HitMiss,
			SharedRun: counted && fromRun,
		}
		reason := pm.reason
		if p.storeOutcome(b, e, qs[pm.i], keys[pm.i], ekeys[pm.i], true, r, pm.epoch, pm.wepoch) {
			reason = obs.ReasonEpochRaced
		}
		r.Explain = reason
		extra := obs.LoadSample{}
		if r.SharedRun {
			extra.SharedAnswers = 1
		}
		ps := obs.PairSample{Queries: 1}
		if o.Solo {
			// The run refused this member (privacy, or the ablation
			// forbids shared expansion) and fell back to a dedicated
			// search — already tallied in engineSearches above.
			extra.EngineSearches = 1
			soloWhy := obs.ReasonPrivatePartition
			if p.opts.Engine.SinglePartitionExpansion {
				soloWhy = obs.ReasonAblation
			}
			p.reasonCounts[soloWhy].Add(1)
			extra.CountReason(soloWhy)
			p.observeEffort(o.Stats)
			// The dedicated fallback search is attributable to the
			// member's own pair; shared-run answers are not (one run
			// spans many pairs), so those feed queries only.
			ps.EngineSearches = 1
			ps.Effort = int64(o.Stats.Pops)
		}
		p.noteMiss(reason, extra)
		p.pairs.Feed(pairKeyOf(keys[pm.i]), ps)
		out[pm.i] = r
	}
	if nShared > 0 {
		p.load.Feed(obs.LoadSample{EngineSearches: 1}) // the one shared search
	}
}

// routePartitionGroup executes one SharedPartition group: members
// sharing (source partition, target partition, departure, speed) but
// not their exact endpoints, served sequentially so that the first
// member's miss builds the pair's skeleton family (inside routeKeyed's
// store stage) and every later member composes from it — a jittered
// wave out of one hot lobby collapses to about one engine search. Each
// member runs the full probe/engine/store path of a solo query, so
// hit, miss and provenance accounting are identical to the unplanned
// flow; members the family cannot certify fall back to dedicated
// searches and are booked as singleton-group solo decisions (the
// producer's search is not solo — the family it built IS the sharing).
func (p *Pool) routePartitionGroup(tr *obs.Trace, b *poolBackend, qs []core.Query, items []batchplan.Item,
	grp *batchplan.Group, keys []cacheKey, ekeys []entryKey, out []Result) {

	produced := false
	for _, m := range grp.Members {
		i := items[m].Index
		r := p.routeKeyed(tr, b, qs[i], keys[i], ekeys[i], true)
		out[i] = r
		if r.CacheHit {
			continue
		}
		if !produced {
			// The group's first engine run: its store stage built the
			// family the rest of the wave composes from.
			produced = true
			continue
		}
		p.noteSolo(obs.ReasonSingletonGroup)
	}
}

// InvalidateSlot drops every cached outcome whose answer can depend on
// checkpoint slot i. A cached path depends on every slot between its
// departure and arrival, not just the departure slot, and no-route
// outcomes have no slot bound at all, so this drops entries whose walk
// spans slot i plus all no-route entries. Note that applying a
// schedule change requires swapping the graph (SetGraph /
// UpdateSchedules, which replace the whole cache); InvalidateSlot is
// the finer-grained knob for cache-only concerns such as bounding
// staleness per slot.
func (p *Pool) InvalidateSlot(i int) {
	b := p.backend.Load()
	if c := b.cache; c != nil {
		c.invalidateSlot(i)
	}
	if w := b.windows; w != nil {
		// A stored window's departures — and, by the answer-window
		// clamp, its whole walks — lie inside one checkpoint slot, so
		// dropping windows overlapping the slot's time range voids
		// exactly the answers that depend on it. Full-day windows
		// (static answers) overlap every slot and always drop.
		cps := b.g.Checkpoints()
		w.InvalidateRange(temporal.Interval{Open: cps.SlotStart(i), Close: cps.SlotEnd(i)})
	}
}

// InvalidateCache drops every cached outcome, windows included.
func (p *Pool) InvalidateCache() {
	b := p.backend.Load()
	if c := b.cache; c != nil {
		c.invalidateAll()
	}
	if w := b.windows; w != nil {
		w.InvalidateAll()
	}
}

// CacheLen returns the number of cached exact outcomes (0 when
// disabled).
func (p *Pool) CacheLen() int {
	c := p.backend.Load().cache
	if c == nil {
		return 0
	}
	return c.len()
}

// WindowLen returns the number of stored validity windows (0 when the
// window cache is disabled).
func (p *Pool) WindowLen() int {
	w := p.backend.Load().windows
	if w == nil {
		return 0
	}
	return w.Len()
}
