package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// gridVenue builds a rows x cols grid of public rooms with randomised
// door schedules and directionality — the shared adversarial fixture of
// this package's tests.
func gridVenue(t testing.TB, rng *rand.Rand, rows, cols int) *model.Venue {
	t.Helper()
	b := model.NewBuilder(fmt.Sprintf("grid-%dx%d", rows, cols))
	const cell = 10.0
	parts := make([][]model.PartitionID, rows)
	for r := 0; r < rows; r++ {
		parts[r] = make([]model.PartitionID, cols)
		for c := 0; c < cols; c++ {
			kind := model.PublicPartition
			corner := (r == 0 || r == rows-1) && (c == 0 || c == cols-1)
			if !corner && rng.Float64() < 0.12 {
				kind = model.PrivatePartition
			}
			parts[r][c] = b.AddPartition(fmt.Sprintf("r%dc%d", r, c), kind,
				geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
		}
	}
	randSched := func() temporal.Schedule {
		switch rng.Intn(3) {
		case 0:
			return nil // always open
		default:
			o := temporal.TimeOfDay(rng.Intn(14) * 3600)
			return temporal.MustSchedule(temporal.MustInterval(o, o+temporal.TimeOfDay(3600*(2+rng.Intn(10)))))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < 0.92 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c+1)*cell, float64(r)*cell+cell/2, 0), randSched())
				b.ConnectBi(d, parts[r][c], parts[r][c+1])
			}
			if r+1 < rows && rng.Float64() < 0.92 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c)*cell+cell/2, float64(r+1)*cell, 0), randSched())
				b.ConnectBi(d, parts[r][c], parts[r+1][c])
			}
		}
	}
	return b.MustBuild()
}

// randomQueries draws n random point-to-point queries over a grid venue
// of the given extent, including a sprinkle of duplicates and outdoor
// (uncacheable) endpoints.
func randomQueries(rng *rand.Rand, n int, w, h float64) []core.Query {
	qs := make([]core.Query, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 && rng.Float64() < 0.2 {
			qs = append(qs, qs[rng.Intn(len(qs))]) // exact duplicate
			continue
		}
		q := core.Query{
			Source: geom.Pt(rng.Float64()*w, rng.Float64()*h, 0),
			Target: geom.Pt(rng.Float64()*w, rng.Float64()*h, 0),
			At:     temporal.TimeOfDay(rng.Intn(86400)),
		}
		if rng.Float64() < 0.05 {
			q.Source.X = -50 // outside every partition
		}
		qs = append(qs, q)
	}
	return qs
}

// sameOutcome asserts that a pool result and a sequential engine result
// are byte-for-byte identical (path contents and error identity).
func sameOutcome(t *testing.T, label string, gotPath *core.Path, gotErr error, wantPath *core.Path, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: err %v vs sequential %v", label, gotErr, wantErr)
	}
	if gotErr != nil {
		if !errors.Is(gotErr, core.ErrNoRoute) && !errors.Is(gotErr, core.ErrNotIndoor) {
			t.Fatalf("%s: unexpected error class %v", label, gotErr)
		}
		if errors.Is(gotErr, core.ErrNoRoute) != errors.Is(wantErr, core.ErrNoRoute) {
			t.Fatalf("%s: error mismatch %v vs %v", label, gotErr, wantErr)
		}
		return
	}
	if !reflect.DeepEqual(gotPath, wantPath) {
		t.Fatalf("%s: path mismatch\n got: %+v\nwant: %+v", label, gotPath, wantPath)
	}
}

func TestPoolRouteMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, method := range []core.Method{core.MethodSyn, core.MethodAsyn, core.MethodStatic} {
		v := gridVenue(t, rng, 4, 5)
		g := itgraph.MustNew(v)
		pool := New(g, Options{Engine: core.Options{Method: method}})
		seq := core.NewEngine(g, core.Options{Method: method})
		for _, q := range randomQueries(rng, 60, 50, 40) {
			wantPath, _, wantErr := seq.Route(q)
			gotPath, _, gotErr := pool.Route(q)
			sameOutcome(t, fmt.Sprintf("%v %v", method, q.At), gotPath, gotErr, wantPath, wantErr)
		}
	}
}

func TestPoolCacheHitsAndExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	v := gridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}})

	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(35, 35, 0), At: temporal.Clock(12, 0, 0)}
	r1 := pool.route(nil, q)
	if r1.CacheHit {
		t.Fatal("first route reported a cache hit")
	}
	r2 := pool.route(nil, q)
	if !r2.CacheHit {
		t.Fatal("identical repeat was not served from cache")
	}
	if !reflect.DeepEqual(r1.Path, r2.Path) || !errors.Is(r2.Err, r1.Err) && (r1.Err != nil || r2.Err != nil) {
		t.Fatal("cached outcome differs from computed outcome")
	}

	// A 24h-shifted time normalises to the same instant and must hit.
	qShift := q
	qShift.At = q.At + temporal.DaySeconds
	if r := pool.route(nil, qShift); !r.CacheHit {
		t.Fatal("day-wrapped identical query missed the cache")
	}

	// Same partitions, different point: must MISS (exact semantics).
	qMoved := q
	qMoved.Source = geom.Pt(6, 6, 0)
	if r := pool.route(nil, qMoved); r.CacheHit {
		t.Fatal("different source point wrongly hit the cache")
	}
	// Same points, different slot: must miss.
	qLate := q
	qLate.At = temporal.Clock(23, 30, 0)
	if r := pool.route(nil, qLate); r.CacheHit {
		t.Fatal("different time wrongly hit the cache")
	}

	st := pool.Stats()
	if st.CacheHits != 2 {
		t.Fatalf("CacheHits = %d, want 2", st.CacheHits)
	}
	if pool.CacheLen() == 0 {
		t.Fatal("cache is empty after cached routes")
	}
}

func TestPoolCacheInvalidation(t *testing.T) {
	// Deterministic two-room venue: one door open [8:00, 16:00), so the
	// checkpoint slots are [0,8), [8,16), [16,24).
	b := model.NewBuilder("inval")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), temporal.MustSchedule(
		temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0))))
	b.ConnectBi(d, hall, shop)
	g := itgraph.MustNew(b.MustBuild())
	pool := New(g, Options{Engine: core.Options{Method: core.MethodSyn}})

	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	pool.route(nil, q)
	slot := g.Checkpoints().SlotOf(q.At) // the walk starts and ends inside this slot
	// Invalidating an unrelated slot keeps the entry.
	pool.InvalidateSlot(slot - 1)
	if r := pool.route(nil, q); !r.CacheHit {
		t.Fatal("unrelated slot invalidation dropped the found-path entry")
	}
	// Invalidating a slot the walk spans drops it.
	pool.InvalidateSlot(slot)
	if r := pool.route(nil, q); r.CacheHit {
		t.Fatal("query hit the cache after its slot was invalidated")
	}

	// A no-route outcome has no slot bound (a schedule change anywhere
	// could create a route), so any slot invalidation drops it.
	night := q
	night.At = temporal.Clock(20, 0, 0)
	if r := pool.route(nil, night); !errors.Is(r.Err, core.ErrNoRoute) {
		t.Fatalf("night route err = %v, want ErrNoRoute", r.Err)
	}
	if r := pool.route(nil, night); !r.CacheHit {
		t.Fatal("no-route outcome was not cached")
	}
	pool.InvalidateSlot(slot - 1)
	if r := pool.route(nil, night); r.CacheHit {
		t.Fatal("no-route entry survived a slot invalidation")
	}

	pool.InvalidateCache()
	if pool.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d after full invalidation", pool.CacheLen())
	}
}

func TestPoolUpdateSchedules(t *testing.T) {
	// Two rooms, door open [8:00, 16:00). After closing the door for the
	// whole day via UpdateSchedules, live routing must flip to no-route
	// and match a fresh engine over the new graph byte for byte.
	b := model.NewBuilder("swap")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), temporal.MustSchedule(
		temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0))))
	b.ConnectBi(d, hall, shop)
	v := b.MustBuild()
	g := itgraph.MustNew(v)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}})

	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	if r := pool.route(nil, q); r.Err != nil {
		t.Fatalf("route before swap: %v", r.Err)
	}
	pool.route(nil, q) // populate the cache

	did, _ := v.DoorByName("d")
	night := temporal.MustSchedule(temporal.MustInterval(temporal.Clock(2, 0, 0), temporal.Clock(3, 0, 0)))
	if err := pool.UpdateSchedules(map[model.DoorID]temporal.Schedule{did: night}); err != nil {
		t.Fatal(err)
	}
	if pool.CacheLen() != 0 {
		t.Fatalf("CacheLen = %d after schedule swap", pool.CacheLen())
	}
	r := pool.route(nil, q)
	if !errors.Is(r.Err, core.ErrNoRoute) {
		t.Fatalf("route after closing the door: err = %v, want ErrNoRoute", r.Err)
	}
	if r.CacheHit {
		t.Fatal("post-swap answer served from the pre-swap cache")
	}
	// Byte-for-byte parity with a fresh engine over the swapped graph.
	q2 := q
	q2.At = temporal.Clock(2, 30, 0)
	wantPath, _, wantErr := core.NewEngine(pool.Graph(), core.Options{Method: core.MethodAsyn}).Route(q2)
	got := pool.route(nil, q2)
	sameOutcome(t, "post-swap", got.Path, got.Err, wantPath, wantErr)
	if err := pool.UpdateSchedules(map[model.DoorID]temporal.Schedule{model.DoorID(99): nil}); err == nil {
		t.Fatal("UpdateSchedules accepted an unknown door")
	}
}

func TestPoolCacheHotBucketEviction(t *testing.T) {
	// One OD pair, one slot, more distinct departure times than the
	// capacity: the just-written entry must survive eviction, so an
	// immediate repeat hits the cache.
	b := model.NewBuilder("hot")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), nil)
	b.ConnectBi(d, hall, shop)
	g := itgraph.MustNew(b.MustBuild())
	pool := New(g, Options{Engine: core.Options{Method: core.MethodSyn}, CacheCapacity: 4})
	for i := 0; i < 10; i++ {
		q := core.Query{
			Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0),
			At: temporal.Clock(12, 0, i), // distinct seconds, same slot
		}
		pool.route(nil, q)
		if n := pool.CacheLen(); n > 4 {
			t.Fatalf("cache grew to %d entries, capacity 4", n)
		}
		if r := pool.route(nil, q); !r.CacheHit {
			t.Fatalf("iteration %d: just-computed entry was evicted", i)
		}
	}
}

func TestPoolCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	v := gridVenue(t, rng, 5, 5)
	g := itgraph.MustNew(v)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodSyn}, CacheCapacity: 8})
	for _, q := range randomQueries(rng, 200, 50, 50) {
		pool.route(nil, q)
		if n := pool.CacheLen(); n > 8 {
			t.Fatalf("cache grew to %d entries, capacity 8", n)
		}
	}
}

func TestPoolCacheDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	v := gridVenue(t, rng, 3, 3)
	g := itgraph.MustNew(v)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodSyn}, CacheCapacity: -1})
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(25, 25, 0), At: temporal.Clock(12, 0, 0)}
	pool.route(nil, q)
	if r := pool.route(nil, q); r.CacheHit {
		t.Fatal("cache hit with caching disabled")
	}
	if pool.CacheLen() != 0 {
		t.Fatal("disabled cache holds entries")
	}
}

func TestRouteBatchDedupAndAlignment(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	v := gridVenue(t, rng, 4, 5)
	g := itgraph.MustNew(v)
	for _, workers := range []int{1, 4} {
		pool := New(g, Options{
			Engine:        core.Options{Method: core.MethodAsyn},
			Workers:       workers,
			CacheCapacity: -1, // isolate dedup from caching
		})
		qs := randomQueries(rng, 80, 50, 40)
		rs := pool.RouteBatch(qs)
		if len(rs) != len(qs) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(rs), len(qs))
		}
		seq := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
		sharedSeen := false
		for i, q := range qs {
			wantPath, _, wantErr := seq.Route(q)
			sameOutcome(t, fmt.Sprintf("workers=%d i=%d", workers, i), rs[i].Path, rs[i].Err, wantPath, wantErr)
			sharedSeen = sharedSeen || rs[i].Shared
		}
		if !sharedSeen {
			t.Fatalf("workers=%d: no batch entry was deduplicated (fixture has duplicates)", workers)
		}
		if st := pool.Stats(); st.Deduped == 0 {
			t.Fatalf("workers=%d: Stats.Deduped = 0", workers)
		}
	}
}

func TestRouteBatchEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	g := itgraph.MustNew(gridVenue(t, rng, 2, 2))
	pool := New(g, Options{})
	if rs := pool.RouteBatch(nil); len(rs) != 0 {
		t.Fatalf("RouteBatch(nil) returned %d results", len(rs))
	}
}

func TestPoolStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	g := itgraph.MustNew(gridVenue(t, rng, 3, 3))
	pool := New(g, Options{Workers: 2})
	qs := randomQueries(rng, 30, 30, 30)
	pool.RouteBatch(qs)
	pool.Route(qs[0])
	st := pool.Stats()
	if st.Queries != int64(len(qs))+1 {
		t.Fatalf("Queries = %d, want %d", st.Queries, len(qs)+1)
	}
	if st.Batches != 1 {
		t.Fatalf("Batches = %d, want 1", st.Batches)
	}
	if st.EnginesCreated == 0 {
		t.Fatal("EnginesCreated = 0")
	}
}

func TestStatsSerialisation(t *testing.T) {
	st := Stats{Queries: 10, Batches: 1, CacheHits: 3, WindowHits: 1, SkeletonHits: 1, Deduped: 2, EnginesCreated: 4,
		EngineSearches: 3, SharedRuns: 1, SharedAnswers: 2, Epoch: 5}
	if got := st.CacheMisses(); got != 3 {
		t.Fatalf("CacheMisses = %d, want 3", got)
	}
	want := "queries=10 batches=1 cacheHits=3 windowHits=1 skeletonHits=1 cacheMisses=3 deduped=2 sharedRuns=1 sharedAnswers=2 engines=4 epoch=5"
	if st.String() != want {
		t.Fatalf("String = %q, want %q", st, want)
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("round trip: %+v != %+v", back, st)
	}
	for _, field := range []string{"queries", "batches", "cache_hits", "window_hits", "deduped", "engines_created", "engine_searches", "shared_runs", "shared_answers", "epoch"} {
		if !strings.Contains(string(raw), `"`+field+`"`) {
			t.Fatalf("JSON missing %q: %s", field, raw)
		}
	}
}

func TestStatsEpochCountsSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := itgraph.MustNew(gridVenue(t, rng, 2, 2))
	pool := New(g, Options{})
	if e := pool.Stats().Epoch; e != 0 {
		t.Fatalf("initial epoch = %d", e)
	}
	pool.SetGraph(g)
	if err := pool.UpdateSchedules(nil); err != nil {
		t.Fatal(err)
	}
	if e := pool.Stats().Epoch; e != 2 {
		t.Fatalf("epoch after two swaps = %d, want 2", e)
	}
}
