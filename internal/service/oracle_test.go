// Oracle-equivalence suite: concurrent RouteBatch answers must be
// byte-for-byte identical to sequential core.Engine.Route, and
// consistent with the exhaustive core.OracleShortest reference, for all
// three methods (ITG/S, ITG/A, Static).
package service

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

var allMethods = []core.Method{core.MethodSyn, core.MethodAsyn, core.MethodStatic}

// openGridVenue builds a small always-open grid: with no temporal
// variation the label-setting search is exact, so engine == oracle for
// every method and the three-way equivalence below is total.
func openGridVenue(t testing.TB, rng *rand.Rand, rows, cols int) *model.Venue {
	t.Helper()
	b := model.NewBuilder("open-grid")
	const cell = 10.0
	parts := make([][]model.PartitionID, rows)
	for r := 0; r < rows; r++ {
		parts[r] = make([]model.PartitionID, cols)
		for c := 0; c < cols; c++ {
			parts[r][c] = b.AddPartition(fmt.Sprintf("p%d-%d", r, c), model.PublicPartition,
				geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < 0.9 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c+1)*cell, float64(r)*cell+rng.Float64()*cell, 0), nil)
				b.ConnectBi(d, parts[r][c], parts[r][c+1])
			}
			if r+1 < rows && rng.Float64() < 0.9 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c)*cell+rng.Float64()*cell, float64(r+1)*cell, 0), nil)
				b.ConnectBi(d, parts[r][c], parts[r+1][c])
			}
		}
	}
	return b.MustBuild()
}

// TestBatchMatchesSequentialAllMethods: for every method, concurrent
// RouteBatch output is byte-for-byte (reflect.DeepEqual) the sequential
// Engine.Route output on the same query set, on temporal venues.
func TestBatchMatchesSequentialAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 6; trial++ {
		v := gridVenue(t, rng, 3+rng.Intn(2), 3+rng.Intn(2))
		g := itgraph.MustNew(v)
		qs := randomQueries(rng, 40, 50, 50)
		for _, method := range allMethods {
			seq := core.NewEngine(g, core.Options{Method: method})
			wantPaths := make([]*core.Path, len(qs))
			wantErrs := make([]error, len(qs))
			for i, q := range qs {
				wantPaths[i], _, wantErrs[i] = seq.Route(q)
			}
			pool := New(g, Options{Engine: core.Options{Method: method}, Workers: 4})
			rs := pool.RouteBatch(qs)
			for i := range qs {
				label := fmt.Sprintf("trial %d method %v query %d", trial, method, i)
				sameOutcome(t, label, rs[i].Path, rs[i].Err, wantPaths[i], wantErrs[i])
			}
			// Replay the batch: cache-served answers must stay identical.
			for i, r := range pool.RouteBatch(qs) {
				label := fmt.Sprintf("trial %d method %v replay %d", trial, method, i)
				sameOutcome(t, label, r.Path, r.Err, wantPaths[i], wantErrs[i])
			}
		}
	}
}

// TestBatchMatchesOracleAllOpen: on always-open venues all three
// methods agree with each other and with the exhaustive oracle, through
// the concurrent batch path.
func TestBatchMatchesOracleAllOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 5; trial++ {
		v := openGridVenue(t, rng, 3, 4)
		g := itgraph.MustNew(v)
		var qs []core.Query
		for probe := 0; probe < 12; probe++ {
			qs = append(qs, core.Query{
				Source: geom.Pt(rng.Float64()*40, rng.Float64()*30, 0),
				Target: geom.Pt(rng.Float64()*40, rng.Float64()*30, 0),
				At:     temporal.TimeOfDay(rng.Intn(86400)),
			})
		}
		for _, method := range allMethods {
			pool := New(g, Options{Engine: core.Options{Method: method}, Workers: 4})
			rs := pool.RouteBatch(qs)
			for i, q := range qs {
				or := core.OracleShortest(g, q)
				if or.Found != (rs[i].Err == nil) {
					t.Fatalf("trial %d method %v query %d: oracle found=%v, pool err=%v",
						trial, method, i, or.Found, rs[i].Err)
				}
				if rs[i].Err == nil && math.Abs(rs[i].Path.Length-or.Length) > 1e-9 {
					t.Fatalf("trial %d method %v query %d: pool %v != oracle %v",
						trial, method, i, rs[i].Path.Length, or.Length)
				}
			}
		}
	}
}

// TestBatchNeverBeatsOracleTemporal: on temporal venues the concurrent
// batch answer for the temporally exact methods is never shorter than
// the exhaustive optimum, never finds a route the oracle cannot, and
// every found path validates.
func TestBatchNeverBeatsOracleTemporal(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 5; trial++ {
		v := gridVenue(t, rng, 3, 3)
		g := itgraph.MustNew(v)
		var qs []core.Query
		for probe := 0; probe < 10; probe++ {
			qs = append(qs, core.Query{
				Source: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
				Target: geom.Pt(rng.Float64()*30, rng.Float64()*30, 0),
				At:     temporal.TimeOfDay(rng.Intn(86400)),
			})
		}
		for _, method := range []core.Method{core.MethodSyn, core.MethodAsyn} {
			pool := New(g, Options{Engine: core.Options{Method: method}, Workers: 4})
			rs := pool.RouteBatch(qs)
			for i, q := range qs {
				if rs[i].Err != nil {
					if !errors.Is(rs[i].Err, core.ErrNoRoute) && !errors.Is(rs[i].Err, core.ErrNotIndoor) {
						t.Fatal(rs[i].Err)
					}
					continue
				}
				if verr := rs[i].Path.Validate(g, q); verr != nil {
					t.Fatalf("trial %d method %v query %d: invalid path: %v", trial, method, i, verr)
				}
				or := core.OracleShortest(g, q)
				if !or.Found {
					t.Fatalf("trial %d method %v query %d: pool found a %v m path the oracle missed",
						trial, method, i, rs[i].Path.Length)
				}
				if rs[i].Path.Length < or.Length-1e-9 {
					t.Fatalf("trial %d method %v query %d: pool %v beat oracle %v",
						trial, method, i, rs[i].Path.Length, or.Length)
				}
			}
		}
	}
}

// TestSynAsynAgreeThroughPool: the two temporally exact methods agree
// on found/not-found and length through the concurrent path, mirroring
// core's sequential cross-method property.
func TestSynAsynAgreeThroughPool(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	v := gridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	qs := randomQueries(rng, 50, 40, 40)
	syn := New(g, Options{Engine: core.Options{Method: core.MethodSyn}, Workers: 4})
	asyn := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}, Workers: 4})
	rsS := syn.RouteBatch(qs)
	rsA := asyn.RouteBatch(qs)
	for i := range qs {
		if (rsS[i].Err == nil) != (rsA[i].Err == nil) {
			t.Fatalf("query %d: syn err=%v asyn err=%v", i, rsS[i].Err, rsA[i].Err)
		}
		if rsS[i].Err == nil {
			if !reflect.DeepEqual(rsS[i].Path.Doors, rsA[i].Path.Doors) &&
				math.Abs(rsS[i].Path.Length-rsA[i].Path.Length) > 1e-9 {
				t.Fatalf("query %d: syn %v vs asyn %v", i, rsS[i].Path.Length, rsA[i].Path.Length)
			}
		}
	}
}
