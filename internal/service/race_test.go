// Race-detector hammer suite: many goroutines sharing one Pool (and so
// one Graph, one SnapshotSeries and one result cache) over realistic
// venues. These tests are meaningful under `go test -race`; CI and the
// tier-1 gate should run
//
//	go test -race ./internal/service/ ./internal/core/
//
// so that the engine-pooling and snapshot-materialisation paths are
// exercised with the detector on.
package service

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/synth"
	"indoorpath/internal/temporal"
)

// hammer fires goroutines*perG random-time queries at one shared pool,
// validating every found path against the graph.
func hammer(t *testing.T, pool *Pool, queries []core.Query, goroutines, perG int) {
	t.Helper()
	g := pool.Graph()
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		seed := int64(w)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				q := queries[rng.Intn(len(queries))]
				q.At = temporal.TimeOfDay(rng.Intn(86400))
				path, _, err := pool.Route(q)
				if err != nil {
					continue // ErrNoRoute / ErrNotIndoor are regular outcomes
				}
				if verr := path.Validate(g, q); verr != nil {
					select {
					case errc <- verr:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// mallPool builds a pool over the paper's synthetic mall.
func mallPool(t *testing.T, method core.Method, opts Options) (*Pool, []core.Query) {
	t.Helper()
	m, err := synth.GenerateMall(synth.MallConfig{
		Floors: 2,
		Seed:   42,
		ATI:    synth.ATIConfig{CheckpointCount: 8, Seed: 43},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := itgraph.New(m.Venue)
	if err != nil {
		t.Fatal(err)
	}
	qis, err := synth.GenerateQueries(m, g.DM(), synth.QueryConfig{S2T: 900, Count: 8, Seed: 44})
	if err != nil {
		t.Fatal(err)
	}
	var qs []core.Query
	for _, qi := range qis {
		qs = append(qs, core.Query{Source: qi.Source, Target: qi.Target})
	}
	opts.Engine.Method = method
	return New(g, opts), qs
}

func TestRaceMallPoolRoute(t *testing.T) {
	for _, method := range []core.Method{core.MethodSyn, core.MethodAsyn} {
		t.Run(method.String(), func(t *testing.T) {
			pool, qs := mallPool(t, method, Options{})
			hammer(t, pool, qs, 8, 40)
		})
	}
}

func TestRaceMallPoolRouteNoCache(t *testing.T) {
	// With the cache disabled every query runs a real search, maximising
	// pressure on engine check-in/check-out and snapshot materialisation.
	pool, qs := mallPool(t, core.MethodAsyn, Options{CacheCapacity: -1})
	hammer(t, pool, qs, 8, 40)
}

func TestRaceHospitalPoolRoute(t *testing.T) {
	v := synth.Hospital()
	g := itgraph.MustNew(v)
	pool := New(g, Options{Engine: core.Options{Method: core.MethodAsyn}})
	// Cover the wing: probe points across every partition's centre.
	var qs []core.Query
	for p := 0; p < v.PartitionCount(); p++ {
		part := v.Partition(model.PartitionID(p))
		if part.Kind == model.OutdoorPartition {
			continue
		}
		r := part.Rect
		c := geom.Pt((r.MinX+r.MaxX)/2, (r.MinY+r.MaxY)/2, part.Floor())
		qs = append(qs, core.Query{Source: c, Target: c})
	}
	// Pair centres up into OD queries.
	var odqs []core.Query
	for i := range qs {
		for j := range qs {
			if i != j {
				odqs = append(odqs, core.Query{Source: qs[i].Source, Target: qs[j].Target})
			}
		}
	}
	hammer(t, pool, odqs, 8, 60)
}

func TestRaceRouteBatchSharedPool(t *testing.T) {
	// Concurrent RouteBatch calls on one pool: batches overlap in the
	// cache and in the engine pool.
	pool, qs := mallPool(t, core.MethodAsyn, Options{Workers: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		seed := int64(100 + w)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for rep := 0; rep < 5; rep++ {
				batch := make([]core.Query, 0, 32)
				for i := 0; i < 32; i++ {
					q := qs[rng.Intn(len(qs))]
					q.At = temporal.TimeOfDay(rng.Intn(86400))
					batch = append(batch, q)
				}
				for _, r := range pool.RouteBatch(batch) {
					if r.Err == nil && r.Path == nil {
						t.Error("nil path with nil error")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestRaceScheduleSwapDuringRoutes(t *testing.T) {
	// UpdateSchedules swaps the whole backend (graph + engine pool)
	// while queries are in flight; routes must keep returning coherent
	// outcomes (a path or a regular error) throughout.
	b := model.NewBuilder("swap-race")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), nil)
	b.ConnectBi(d, hall, shop)
	v := b.MustBuild()
	pool := New(itgraph.MustNew(v), Options{Engine: core.Options{Method: core.MethodAsyn}})
	did, _ := v.DoorByName("d")

	open := temporal.MustSchedule(temporal.MustInterval(temporal.Clock(8, 0, 0), temporal.Clock(16, 0, 0)))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			var sched temporal.Schedule
			if i%2 == 0 {
				sched = open
			}
			if err := pool.UpdateSchedules(map[model.DoorID]temporal.Schedule{did: sched}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(15, 5, 0), At: temporal.Clock(12, 0, 0)}
	var routers sync.WaitGroup
	for w := 0; w < 6; w++ {
		routers.Add(1)
		go func() {
			defer routers.Done()
			for i := 0; i < 200; i++ {
				path, _, err := pool.Route(q)
				if err == nil && path == nil {
					t.Error("nil path with nil error during swap")
					return
				}
			}
		}()
	}
	routers.Wait()
	close(done)
	wg.Wait()
}

// TestRaceWindowPoolSweepByteIdentical is the window cache's oracle
// bar under concurrency: goroutines sweep departure times through one
// window-cache pool while another goroutine swaps schedules between
// two sets; every response must be byte-identical to a sequential
// core.Engine answer over the pre-swap or the post-swap graph (swap
// atomicity per response), with no third outcome.
func TestRaceWindowPoolSweepByteIdentical(t *testing.T) {
	// Two-door venue: schedule set A opens only the near door (short
	// path), set B only the far one (long path) — at every minute of the
	// day the two graphs give different, precomputable answers.
	b := model.NewBuilder("window-swap-race")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(0, 10, 20, 20, 0))
	near := b.AddDoor("near", model.PublicDoor, geom.Pt(2, 10, 0), nil)
	far := b.AddDoor("far", model.PublicDoor, geom.Pt(18, 10, 0), nil)
	b.ConnectBi(near, hall, room)
	b.ConnectBi(far, hall, room)
	v := b.MustBuild()
	nearID, _ := v.DoorByName("near")
	farID, _ := v.DoorByName("far")

	closed := temporal.Schedule{} // empty = always closed
	setA := map[model.DoorID]temporal.Schedule{nearID: nil, farID: closed}
	setB := map[model.DoorID]temporal.Schedule{nearID: closed, farID: nil}
	vA, err := v.WithSchedules(setA)
	if err != nil {
		t.Fatal(err)
	}
	vB, err := v.WithSchedules(setB)
	if err != nil {
		t.Fatal(err)
	}
	gA, gB := itgraph.MustNew(vA), itgraph.MustNew(vB)

	// Sequential oracle answers for every sweep departure on both graphs.
	const stepSec = 60
	q0 := core.Query{Source: geom.Pt(2, 5, 0), Target: geom.Pt(2, 15, 0)}
	eA := core.NewEngine(gA, core.Options{Method: core.MethodAsyn})
	eB := core.NewEngine(gB, core.Options{Method: core.MethodAsyn})
	var wantA, wantB []*core.Path
	for at := temporal.TimeOfDay(0); at < temporal.DaySeconds; at += stepSec {
		q := q0
		q.At = at
		pa, _, err := eA.Route(q)
		if err != nil {
			t.Fatalf("oracle A at %v: %v", at, err)
		}
		pb, _, err := eB.Route(q)
		if err != nil {
			t.Fatalf("oracle B at %v: %v", at, err)
		}
		wantA, wantB = append(wantA, pa), append(wantB, pb)
	}

	pool := New(gA, Options{Engine: core.Options{Method: core.MethodAsyn}, WindowCache: true})
	done := make(chan struct{})
	errc := make(chan error, 8)
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			g := gA
			if i%2 == 0 {
				g = gB
			}
			pool.SetGraph(g)
		}
	}()

	var routers sync.WaitGroup
	for w := 0; w < 6; w++ {
		routers.Add(1)
		seed := int64(300 + w)
		go func() {
			defer routers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 400; i++ {
				k := rng.Intn(len(wantA))
				q := q0
				q.At = temporal.TimeOfDay(k * stepSec)
				r := pool.route(nil, q)
				if r.Err != nil {
					select {
					case errc <- r.Err:
					default:
					}
					return
				}
				if !reflect.DeepEqual(r.Path, wantA[k]) && !reflect.DeepEqual(r.Path, wantB[k]) {
					select {
					case errc <- fmt.Errorf("departure %v (hit=%q): path %+v matches neither schedule set's sequential answer", q.At, r.Hit, r.Path):
					default:
					}
					return
				}
			}
		}()
	}
	routers.Wait()
	close(done)
	swapper.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.WindowHits == 0 {
		t.Logf("note: no window hits under this interleaving (%v)", st)
	}

	// Sequential epilogue: with the swaps quiesced on set A, the sweep
	// must serve window hits and stay byte-identical.
	pool.SetGraph(gA)
	before := pool.Stats().WindowHits
	for k := range wantA {
		q := q0
		q.At = temporal.TimeOfDay(k * stepSec)
		r := pool.route(nil, q)
		if r.Err != nil || !reflect.DeepEqual(r.Path, wantA[k]) {
			t.Fatalf("epilogue departure %v (hit=%q): %v / path mismatch", q.At, r.Hit, r.Err)
		}
	}
	if st := pool.Stats(); st.WindowHits <= before {
		t.Fatalf("epilogue sweep served no window hits: %v", st)
	}
}

func TestRaceCacheInvalidationDuringRoutes(t *testing.T) {
	// Invalidation racing with queries: exercises the cache write paths
	// from multiple directions at once.
	pool, qs := mallPool(t, core.MethodSyn, Options{CacheCapacity: 64})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		slot := 0
		for {
			select {
			case <-done:
				return
			default:
			}
			pool.InvalidateSlot(slot % pool.Graph().Checkpoints().SlotCount())
			slot++
			if slot%7 == 0 {
				pool.InvalidateCache()
			}
		}
	}()
	hammer(t, pool, qs, 6, 30)
	close(done)
	wg.Wait()
}
