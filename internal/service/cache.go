package service

import (
	"sync"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/temporal"
)

// cacheKey addresses one cache bucket: the (source partition, target
// partition, checkpoint slot) triple of the issue's caching scheme.
// Keying buckets by partition pair and slot gives slot-granular
// invalidation (a schedule change voids exactly the affected slots)
// and partition-level locality: every exact-query entry for one OD
// region at one topology epoch lives in one bucket.
type cacheKey struct {
	src  model.PartitionID
	tgt  model.PartitionID
	slot int
}

// entryKey identifies one exact query inside a bucket. Entries match on
// the full normalised query identity — source and target points, time
// of day and walking speed — because two queries that differ only
// within a partition, or whose walks cross slot boundaries at different
// instants, can legitimately have different answers. The bucket key
// narrows the search; the entry key preserves exact ITSPQ semantics.
type entryKey struct {
	src, tgt geom.Point
	at       temporal.TimeOfDay
	speed    float64
}

// cacheEntry is one stored outcome plus the checkpoint-slot range its
// answer depends on. A found path's validity and optimality depend on
// every slot between departure and arrival: closing a door can only
// break the path itself (whose arrivals lie in that range), and opening
// a door can only create a shorter path, whose door arrivals all
// precede the cached arrival. No-route outcomes and walks that wrap
// past midnight have no such bound and are marked spansAll.
type cacheEntry struct {
	res              Result
	minSlot, maxSlot int
	spansAll         bool
}

func (e cacheEntry) touches(slot int) bool {
	return e.spansAll || (slot >= e.minSlot && slot <= e.maxSlot)
}

// resultCache is a bounded, concurrency-safe map from (bucket, entry)
// to query outcomes. Eviction drops whole buckets (arbitrary order via
// map iteration) until the entry count is back under capacity — crude,
// but O(1) amortised and sufficient for a steady-state serving cache
// where whole OD-pair/slot regions age out together. The epoch counter
// guards against a search that raced an invalidation re-inserting a
// pre-invalidation result: put discards outcomes computed before the
// latest invalidation.
type resultCache struct {
	mu      sync.RWMutex
	cap     int
	size    int
	evicted int64 // entries shed by capacity eviction (not invalidation)
	epochN  uint64
	buckets map[cacheKey]map[entryKey]cacheEntry
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, buckets: make(map[cacheKey]map[entryKey]cacheEntry)}
}

// epoch returns the invalidation epoch; capture it before a search and
// hand it back to put.
func (c *resultCache) epoch() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.epochN
}

func (c *resultCache) get(key cacheKey, ekey entryKey) (Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	b, ok := c.buckets[key]
	if !ok {
		return Result{}, false
	}
	e, ok := b[ekey]
	return e.res, ok
}

// put stores an entry, reporting whether it was kept. False means the
// capture epoch is stale — an invalidation ran while the outcome was
// computed — which callers surface as the epoch_raced miss reason.
func (c *resultCache) put(key cacheKey, ekey entryKey, e cacheEntry, epoch uint64) bool {
	// Never republish transient flags from the computing caller: a
	// later get re-labels the outcome as its own (exact) hit.
	e.res.CacheHit = false
	e.res.Shared = false
	e.res.SharedRun = false
	e.res.Hit = HitMiss
	e.res.Explain = obs.ReasonNone
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epochN {
		return false // an invalidation ran while this outcome was computed
	}
	b, ok := c.buckets[key]
	if !ok {
		b = make(map[entryKey]cacheEntry)
		c.buckets[key] = b
	}
	if _, exists := b[ekey]; !exists {
		c.size++
	}
	b[ekey] = e
	for c.size > c.cap {
		c.evictLocked(key, ekey)
	}
	return true
}

// evictLocked drops one bucket other than keep (the bucket just written
// to). When keep is the only bucket left it sheds that bucket's entries
// individually instead, sparing the entry just written so a hot bucket
// larger than the capacity still serves its latest results.
func (c *resultCache) evictLocked(keep cacheKey, keepE entryKey) {
	for k, b := range c.buckets {
		if k == keep {
			if len(c.buckets) > 1 {
				continue
			}
			for ek := range b {
				if ek == keepE {
					continue
				}
				delete(b, ek)
				c.size--
				c.evicted++
				if c.size <= c.cap {
					return
				}
			}
			return
		}
		c.size -= len(b)
		c.evicted += int64(len(b))
		delete(c.buckets, k)
		return
	}
}

// invalidateSlot drops every entry whose answer can depend on slot:
// entries whose departure-to-arrival slot range contains it, plus all
// unbounded (spansAll) entries.
func (c *resultCache) invalidateSlot(slot int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochN++
	for k, b := range c.buckets {
		for ek, e := range b {
			if e.touches(slot) {
				delete(b, ek)
				c.size--
			}
		}
		if len(b) == 0 {
			delete(c.buckets, k)
		}
	}
}

func (c *resultCache) invalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epochN++
	c.buckets = make(map[cacheKey]map[entryKey]cacheEntry)
	c.size = 0
}

func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size
}

// usage returns occupancy, capacity and the count of entries shed by
// capacity eviction since construction (invalidation drops not
// included).
func (c *resultCache) usage() (size, capacity int, evicted int64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.size, c.cap, c.evicted
}
