package batchplan

import (
	"reflect"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/temporal"
)

// item builds a planner item with sane defaults.
func item(idx int, src, tgt geom.Point, at temporal.TimeOfDay) Item {
	return Item{
		Index: idx, Src: src, Tgt: tgt, At: at, Speed: core.WalkingSpeedMPS,
		SrcPart: model.PartitionID(1), TgtPart: model.PartitionID(2),
	}
}

func coverage(t *testing.T, p Plan, n int) {
	t.Helper()
	seen := make(map[int]bool, n)
	for _, g := range p.Groups {
		for _, m := range g.Members {
			if seen[m] {
				t.Fatalf("member %d planned twice", m)
			}
			seen[m] = true
		}
		if g.Kind != Solo && len(g.Members) < 2 {
			t.Fatalf("%v group with %d members", g.Kind, len(g.Members))
		}
	}
	if len(seen) != n {
		t.Fatalf("plan covers %d of %d items", len(seen), n)
	}
}

func TestPlanSharedSourceTemporal(t *testing.T) {
	src := geom.Pt(1, 1, 0)
	at := temporal.Clock(12, 0, 0)
	items := []Item{
		item(0, src, geom.Pt(5, 5, 0), at),
		item(1, src, geom.Pt(6, 6, 0), at),
		item(2, src, geom.Pt(7, 7, 0), at),
		item(3, src, geom.Pt(8, 8, 0), temporal.Clock(13, 0, 0)), // other departure: not groupable
		item(4, geom.Pt(2, 2, 0), geom.Pt(9, 9, 0), at),          // other source
	}
	p := New(items, core.MethodAsyn)
	coverage(t, p, len(items))
	if p.SharedGroups() != 1 {
		t.Fatalf("plan: %+v", p.Groups)
	}
	g := p.Groups[0]
	if g.Kind != SharedSource || g.Source != src || g.At != at || !reflect.DeepEqual(g.Members, []int{0, 1, 2}) {
		t.Fatalf("group: %+v", g)
	}
	// Temporal methods never form destination groups.
	tgt := geom.Pt(5, 5, 0)
	items = []Item{
		item(0, geom.Pt(1, 1, 0), tgt, at),
		item(1, geom.Pt(2, 2, 0), tgt, at),
	}
	if p := New(items, core.MethodSyn); p.SharedGroups() != 0 {
		t.Fatalf("temporal destination group formed: %+v", p.Groups)
	}
}

func TestPlanStaticMergesDeparturesAndDestinations(t *testing.T) {
	src := geom.Pt(1, 1, 0)
	tgt := geom.Pt(20, 20, 0)
	items := []Item{
		item(0, src, geom.Pt(5, 5, 0), temporal.Clock(8, 0, 0)),
		item(1, src, geom.Pt(6, 6, 0), temporal.Clock(14, 0, 0)), // static: departures merge
		item(2, geom.Pt(2, 2, 0), tgt, temporal.Clock(9, 0, 0)),
		item(3, geom.Pt(3, 3, 0), tgt, temporal.Clock(10, 0, 0)),
		item(4, geom.Pt(4, 4, 0), tgt, temporal.Clock(11, 0, 0)),
	}
	p := New(items, core.MethodStatic)
	coverage(t, p, len(items))
	if p.SharedGroups() != 2 {
		t.Fatalf("plan: %+v", p.Groups)
	}
	// Ordered by fan-out: the destination group (3) before the source
	// group (2); canonical At is the first member's.
	if g := p.Groups[0]; g.Kind != SharedTarget || g.Target != tgt ||
		!reflect.DeepEqual(g.Members, []int{2, 3, 4}) || g.At != temporal.Clock(9, 0, 0) {
		t.Fatalf("first group: %+v", g)
	}
	if g := p.Groups[1]; g.Kind != SharedSource || g.Source != src ||
		!reflect.DeepEqual(g.Members, []int{0, 1}) || g.At != temporal.Clock(8, 0, 0) {
		t.Fatalf("second group: %+v", g)
	}
}

func TestPlanPrefersLargerSide(t *testing.T) {
	// One query qualifies for both a 2-strong source family and a
	// 3-strong target family: static planning sends it to the target
	// side.
	src := geom.Pt(1, 1, 0)
	tgt := geom.Pt(20, 20, 0)
	at := temporal.Clock(12, 0, 0)
	items := []Item{
		item(0, src, tgt, at),              // contested
		item(1, src, geom.Pt(5, 5, 0), at), // source family
		item(2, geom.Pt(2, 2, 0), tgt, at), // target family
		item(3, geom.Pt(3, 3, 0), tgt, at), // target family
	}
	p := New(items, core.MethodStatic)
	coverage(t, p, len(items))
	var tg *Group
	for i := range p.Groups {
		if p.Groups[i].Kind == SharedTarget {
			tg = &p.Groups[i]
		}
	}
	if tg == nil || !reflect.DeepEqual(tg.Members, []int{0, 2, 3}) {
		t.Fatalf("contested item not on the larger side: %+v", p.Groups)
	}
}

func TestPlanPrivatePartitionsBlockSharing(t *testing.T) {
	src := geom.Pt(1, 1, 0)
	at := temporal.Clock(12, 0, 0)
	a := item(0, src, geom.Pt(5, 5, 0), at)
	b := item(1, src, geom.Pt(6, 6, 0), at)
	b.TgtPrivate = true // rule-2 exemption is per query: not source-shareable
	c := item(2, src, geom.Pt(7, 7, 0), at)
	c.TgtPrivate = true
	c.TgtPart = c.SrcPart // ... unless the private partition IS the source's
	d := item(3, src, geom.Pt(8, 8, 0), at)
	p := New([]Item{a, b, c, d}, core.MethodAsyn)
	coverage(t, p, 4)
	if p.SharedGroups() != 1 || !reflect.DeepEqual(p.Groups[0].Members, []int{0, 2, 3}) {
		t.Fatalf("plan: %+v", p.Groups)
	}
	// Destination side: private sources block target grouping.
	e := item(0, geom.Pt(2, 2, 0), src, at)
	f := item(1, geom.Pt(3, 3, 0), src, at)
	f.SrcPrivate = true
	p = New([]Item{e, f}, core.MethodStatic)
	coverage(t, p, 2)
	if p.SharedGroups() != 0 {
		t.Fatalf("private source joined a destination group: %+v", p.Groups)
	}
}

func TestPlanDeterministicOrder(t *testing.T) {
	var items []Item
	at := temporal.Clock(12, 0, 0)
	for i := 0; i < 5; i++ {
		items = append(items, item(i, geom.Pt(1, 1, 0), geom.Pt(float64(i), 9, 0), at))
	}
	for i := 5; i < 8; i++ {
		items = append(items, item(i, geom.Pt(2, 2, 0), geom.Pt(float64(i), 9, 0), at))
	}
	items = append(items, item(8, geom.Pt(3, 3, 0), geom.Pt(9, 9, 0), at)) // solo
	want := New(items, core.MethodAsyn)
	for rep := 0; rep < 20; rep++ {
		if got := New(items, core.MethodAsyn); !reflect.DeepEqual(got, want) {
			t.Fatalf("plan differs across runs:\n got: %+v\nwant: %+v", got.Groups, want.Groups)
		}
	}
	// Largest group first, solo tail last.
	if len(want.Groups[0].Members) != 5 || want.Groups[len(want.Groups)-1].Kind != Solo {
		t.Fatalf("ordering: %+v", want.Groups)
	}
}

func TestPlanSoloProvenance(t *testing.T) {
	at := temporal.TimeOfDay(3600)
	// Items 0+1 share a source; item 2's target partition is private
	// (and distinct from its source), blocking its only sharing side;
	// item 3 is an ordinary singleton.
	items := []Item{
		item(0, geom.Pt(0, 0, 0), geom.Pt(9, 0, 0), at),
		item(1, geom.Pt(0, 0, 0), geom.Pt(8, 0, 0), at),
		item(2, geom.Pt(1, 1, 0), geom.Pt(7, 0, 0), at),
		item(3, geom.Pt(2, 2, 0), geom.Pt(6, 0, 0), at),
	}
	items[2].TgtPrivate = true
	p := New(items, core.MethodSyn)
	coverage(t, p, len(items))

	why := map[int]obs.Reason{}
	for _, g := range p.Groups {
		if g.Kind == Solo {
			why[g.Members[0]] = g.Why
		} else if g.Why != obs.ReasonNone {
			t.Fatalf("shared group carries Why=%v", g.Why)
		}
	}
	if why[2] != obs.ReasonPrivatePartition {
		t.Fatalf("privacy-blocked solo Why = %v, want private_partition", why[2])
	}
	if why[3] != obs.ReasonSingletonGroup {
		t.Fatalf("singleton solo Why = %v, want singleton_group", why[3])
	}

	// Static method: item 2's source side opens up (shared-target runs
	// exist), but with no partners it is a singleton, not
	// privacy-blocked — only a fully closed item reports privacy.
	p = New(items[2:3], core.MethodStatic)
	if g := p.Groups[0]; g.Kind != Solo || g.Why != obs.ReasonSingletonGroup {
		t.Fatalf("static half-open solo = kind %v why %v, want solo/singleton_group", g.Kind, g.Why)
	}
	both := items[2]
	both.SrcPrivate = true
	p = New([]Item{both}, core.MethodStatic)
	if g := p.Groups[0]; g.Why != obs.ReasonPrivatePartition {
		t.Fatalf("fully blocked static solo Why = %v, want private_partition", g.Why)
	}
}

// pitem builds an item with explicit partitions for SharedPartition
// planning tests; points are all distinct so no point-level group forms.
func pitem(idx int, sp, tp model.PartitionID, at temporal.TimeOfDay) Item {
	return Item{
		Index: idx,
		Src:   geom.Pt(float64(idx), 1, 0), Tgt: geom.Pt(float64(idx), 50, 0),
		At: at, Speed: core.WalkingSpeedMPS,
		SrcPart: sp, TgtPart: tp,
	}
}

func TestPlanPartitionGroups(t *testing.T) {
	at := temporal.Clock(9, 0, 0)
	items := []Item{
		pitem(0, 1, 2, at),
		pitem(1, 1, 2, at),
		pitem(2, 1, 2, at),
		pitem(3, 1, 2, temporal.Clock(10, 0, 0)), // other departure: solo
		pitem(4, 2, 1, at),                       // reversed pair: solo (direction matters)
		pitem(5, 3, 3, at),                       // degenerate pair: solo
		pitem(6, 3, 3, at),
	}
	p := NewOpts(items, core.MethodAsyn, Options{PartitionGroups: true})
	coverage(t, p, len(items))
	if p.SharedGroups() != 1 {
		t.Fatalf("plan: %+v", p.Groups)
	}
	g := p.Groups[0]
	if g.Kind != SharedPartition || g.At != at || !reflect.DeepEqual(g.Members, []int{0, 1, 2}) {
		t.Fatalf("group: %+v", g)
	}
	// Without the option the same batch is all solos.
	if got := NewOpts(items, core.MethodAsyn, Options{}).SharedGroups(); got != 0 {
		t.Fatalf("option off still built %d shared groups", got)
	}
	// Static planning ignores the option: its groups already merge
	// departures at the point level.
	for _, g := range NewOpts(items, core.MethodStatic, Options{PartitionGroups: true}).Groups {
		if g.Kind == SharedPartition {
			t.Fatalf("static plan emitted a partition group: %+v", g)
		}
	}
}

// TestPlanPartitionGroupsAfterPointGroups: point-level sharing wins
// first; only the leftovers regroup by pair, and replanning is
// deterministic.
func TestPlanPartitionGroupsAfterPointGroups(t *testing.T) {
	at := temporal.Clock(9, 0, 0)
	src := geom.Pt(1, 1, 0)
	items := []Item{
		{Index: 0, Src: src, Tgt: geom.Pt(9, 9, 0), At: at, Speed: core.WalkingSpeedMPS, SrcPart: 1, TgtPart: 2},
		{Index: 1, Src: src, Tgt: geom.Pt(8, 8, 0), At: at, Speed: core.WalkingSpeedMPS, SrcPart: 1, TgtPart: 2},
		pitem(2, 1, 2, at),
		pitem(3, 1, 2, at),
		pitem(4, 7, 8, at), // lone pair: stays solo
	}
	p := NewOpts(items, core.MethodSyn, Options{PartitionGroups: true})
	coverage(t, p, len(items))
	var kinds []Kind
	for _, g := range p.Groups {
		kinds = append(kinds, g.Kind)
	}
	want := []Kind{SharedSource, SharedPartition, Solo}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("kinds = %v, want %v (groups %+v)", kinds, want, p.Groups)
	}
	if !reflect.DeepEqual(p.Groups[1].Members, []int{2, 3}) {
		t.Fatalf("partition group members: %+v", p.Groups[1])
	}
	if p.Groups[2].Why != obs.ReasonSingletonGroup {
		t.Fatalf("solo why = %v", p.Groups[2].Why)
	}
	for i := 0; i < 20; i++ {
		if again := NewOpts(items, core.MethodSyn, Options{PartitionGroups: true}); !reflect.DeepEqual(again, p) {
			t.Fatalf("replan differs: %+v vs %+v", again, p)
		}
	}
}
