// Package batchplan is the shared-execution batch planner of the
// serving layer: it partitions a batch of located ITSPQ queries into
// groups that one engine run can answer together, so that a
// many-queries-few-endpoints workload (rush-hour crowds heading to one
// gate, boarding calls, mall openings) costs a handful of searches
// instead of one per query.
//
// Grouping rules (the execution side lives in service.Pool and
// core.Engine.RouteMany / RouteManyTo):
//
//   - The temporal methods (ITG/S, ITG/A) share a forward run across
//     queries with the same source point, departure instant and speed —
//     TV_Check outcomes depend on all three, so nothing weaker is
//     sound. Destination-side sharing is not available to them (a
//     reverse run cannot replay forward arrival-time checks), so they
//     fall back to source grouping only.
//   - The static method ignores time entirely: its source groups drop
//     the departure from the key (answers are restated per member by a
//     bit-identical departure rebase), and it additionally forms
//     shared-destination groups (same target point and speed) answered
//     by one reverse run each. When a query qualifies for both sides it
//     joins the larger group (ties prefer the source side).
//   - Queries whose sharing-relevant endpoint partition is private are
//     never grouped on that side: rule 2 exempts only the query's own
//     endpoints, so a shared expansion through such a partition would
//     be query-specific. They plan as Solo and run as ordinary
//     per-query searches (as do singleton groups).
//   - With Options.PartitionGroups, temporal-method queries left over
//     after point-level grouping are regrouped by (source partition,
//     target partition, departure, speed) into SharedPartition groups:
//     their endpoints differ, so no single engine run can answer them,
//     but one member's miss builds the pair's skeleton family
//     (core.BuildSkeletonFamily) and the rest compose from it — a
//     jittered wave out of one hot lobby collapses to about one
//     search. Both endpoint partitions ride the key: certifiable
//     composition needs the exact pair's family (a hot-lobby wave to
//     one destination shares the pair anyway). Privacy does not block
//     these groups — every member shares both endpoint partitions, so
//     the rule-2 exemptions are identical group-wide.
//
// The planner emits groups ordered by fan-out, largest first, so a
// worker pool drains the expensive shared runs before the solo tail.
// Planning is deterministic: group order, member order and canonical
// departures depend only on the input order.
//
// The planner has two consumers: explicit RouteBatch calls, and the
// standing cross-batch coalescer (internal/coalesce), which
// accumulates concurrently arriving solo queries for a few
// milliseconds and flushes them through RouteBatchSummary — so the
// grouping rules above decide sharing for cross-request traffic too.
package batchplan

import (
	"sort"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/temporal"
)

// Item is one located query of a batch, annotated with what the
// planner needs. At and Speed must be normalised (At.Mod(), effective
// walking speed > 0) so that equal keys mean equal engine inputs;
// Index is the caller's slot (e.g. the batch position) and is carried
// through untouched.
type Item struct {
	Index      int
	Src, Tgt   geom.Point
	At         temporal.TimeOfDay
	Speed      float64
	SrcPart    model.PartitionID
	TgtPart    model.PartitionID
	SrcPrivate bool
	TgtPrivate bool
}

// Kind says how a group is executed.
type Kind uint8

// Group kinds.
const (
	// Solo: one ordinary per-query engine search.
	Solo Kind = iota
	// SharedSource: one forward run from Source answers every member
	// (core.Engine.RouteMany).
	SharedSource
	// SharedTarget: one reverse run rooted at Target answers every
	// member (core.Engine.RouteManyTo; static method only).
	SharedTarget
	// SharedPartition: members share their endpoint partition pair,
	// departure and speed but not their exact points; one member's
	// engine search builds the pair's skeleton family and the rest are
	// composed from it (temporal methods, Options.PartitionGroups).
	SharedPartition
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SharedSource:
		return "shared-source"
	case SharedTarget:
		return "shared-target"
	case SharedPartition:
		return "shared-partition"
	}
	return "solo"
}

// Group is one execution unit of a plan. Members index the planned
// items slice, in input order; the first member's departure is the
// canonical At a shared run executes at (static members departing at
// other instants are rebased by the executor).
type Group struct {
	Kind    Kind
	Members []int
	// Source is the shared source point of a SharedSource group.
	Source geom.Point
	// Target is the shared target point of a SharedTarget group.
	Target geom.Point
	// At is the canonical departure of the shared run.
	At temporal.TimeOfDay
	// Speed is the shared walking speed.
	Speed float64
	// Why records the decision provenance of a Solo group: why this
	// member could not share (obs.ReasonPrivatePartition when the
	// privacy rule blocked every available sharing side,
	// obs.ReasonSingletonGroup when a side was open but had no
	// partners). Zero for shared groups.
	Why obs.Reason
}

// Plan is an ordered set of execution groups covering every input item
// exactly once.
type Plan struct {
	Groups []Group
}

// SharedGroups counts the multi-member shared groups of the plan.
func (p Plan) SharedGroups() int {
	n := 0
	for _, g := range p.Groups {
		if g.Kind != Solo {
			n++
		}
	}
	return n
}

// endpointKey identifies one shared-endpoint family. For the static
// method at stays zero: the answer is departure-independent, so
// departures merge into one group.
type endpointKey struct {
	pt    geom.Point
	at    temporal.TimeOfDay
	speed float64
}

// Options tune the planner beyond the method-implied rules.
type Options struct {
	// PartitionGroups regroups temporal-method leftovers into
	// SharedPartition groups keyed by (source partition, target
	// partition, departure, speed) — the skeleton-composition coalescing
	// unit. The executor must have a skeleton store to serve them;
	// service.Pool sets this exactly when Options.SkeletonCache is
	// usable. Ignored for the static method (its point-level groups
	// already merge departures, and skeleton families there certify the
	// whole day from any single miss).
	PartitionGroups bool
}

// New plans a batch for the given engine method. Every item lands in
// exactly one group; see the package comment for the grouping rules.
func New(items []Item, method core.Method) Plan {
	return NewOpts(items, method, Options{})
}

// NewOpts is New with planner options.
func NewOpts(items []Item, method core.Method, opts Options) Plan {
	static := method == core.MethodStatic
	srcKey := func(it Item) endpointKey {
		k := endpointKey{pt: it.Src, speed: it.Speed}
		if !static {
			k.at = it.At
		}
		return k
	}
	tgtKey := func(it Item) endpointKey { return endpointKey{pt: it.Tgt, speed: it.Speed} }
	// Rule-2 exemptions are per query: an endpoint partition that is
	// private blocks sharing on the opposite side unless it coincides
	// with the shared partition (which is exempt for the whole group).
	srcShareable := func(it Item) bool { return !it.TgtPrivate || it.TgtPart == it.SrcPart }
	tgtShareable := func(it Item) bool {
		return static && (!it.SrcPrivate || it.SrcPart == it.TgtPart)
	}

	srcCount := make(map[endpointKey]int)
	tgtCount := make(map[endpointKey]int)
	for _, it := range items {
		if srcShareable(it) {
			srcCount[srcKey(it)]++
		}
		if tgtShareable(it) {
			tgtCount[tgtKey(it)]++
		}
	}

	srcGroups := make(map[endpointKey][]int)
	tgtGroups := make(map[endpointKey][]int)
	var solos []int
	for m, it := range items {
		sOK := srcShareable(it) && srcCount[srcKey(it)] >= 2
		tOK := tgtShareable(it) && tgtCount[tgtKey(it)] >= 2
		switch {
		case sOK && (!tOK || srcCount[srcKey(it)] >= tgtCount[tgtKey(it)]):
			srcGroups[srcKey(it)] = append(srcGroups[srcKey(it)], m)
		case tOK:
			tgtGroups[tgtKey(it)] = append(tgtGroups[tgtKey(it)], m)
		default:
			solos = append(solos, m)
		}
	}

	var groups []Group
	collect := func(kind Kind, keyed map[endpointKey][]int) {
		for k, ms := range keyed {
			if len(ms) < 2 {
				// The counterpart group absorbed the family's other
				// members; a singleton shares nothing.
				solos = append(solos, ms...)
				continue
			}
			g := Group{Kind: kind, Members: ms, At: items[ms[0]].At, Speed: k.speed}
			if kind == SharedSource {
				g.Source = k.pt
			} else {
				g.Target = k.pt
			}
			groups = append(groups, g)
		}
	}
	collect(SharedSource, srcGroups)
	collect(SharedTarget, tgtGroups)

	if opts.PartitionGroups && !static {
		// Regroup the leftovers by partition pair: queries no point-level
		// group could absorb still coalesce when they share the pair,
		// departure and speed — one miss's skeleton family composes the
		// rest. Same-partition queries stay solo (families refuse the
		// degenerate pair). Sorted first so member order is input order.
		type pairKey struct {
			src, tgt model.PartitionID
			at       temporal.TimeOfDay
			speed    float64
		}
		sort.Ints(solos)
		pairGroups := make(map[pairKey][]int)
		var rest []int
		for _, m := range solos {
			it := items[m]
			if it.SrcPart == it.TgtPart {
				rest = append(rest, m)
				continue
			}
			k := pairKey{src: it.SrcPart, tgt: it.TgtPart, at: it.At, speed: it.Speed}
			pairGroups[k] = append(pairGroups[k], m)
		}
		solos = rest
		for k, ms := range pairGroups {
			if len(ms) < 2 {
				solos = append(solos, ms...)
				continue
			}
			groups = append(groups, Group{Kind: SharedPartition, Members: ms,
				At: items[ms[0]].At, Speed: k.speed})
		}
	}

	// Largest fan-out first; ties and determinism by first member.
	sort.Slice(groups, func(i, j int) bool {
		gi, gj := groups[i], groups[j]
		if len(gi.Members) != len(gj.Members) {
			return len(gi.Members) > len(gj.Members)
		}
		return items[gi.Members[0]].Index < items[gj.Members[0]].Index
	})
	// Solo provenance: private_partition when the privacy rule closed
	// every sharing side this method offers; otherwise the member
	// simply had no partners (singleton family, or the counterpart
	// group absorbed them — those items had an open side by
	// construction, so the first test is false for them).
	soloWhy := func(it Item) obs.Reason {
		if !srcShareable(it) && !tgtShareable(it) && (it.SrcPrivate || it.TgtPrivate) {
			return obs.ReasonPrivatePartition
		}
		return obs.ReasonSingletonGroup
	}
	sort.Ints(solos)
	for _, m := range solos {
		groups = append(groups, Group{Kind: Solo, Members: []int{m}, Why: soloWhy(items[m])})
	}
	return Plan{Groups: groups}
}
