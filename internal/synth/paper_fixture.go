package synth

import (
	"math"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// PaperExample is the hand-encoded venue of the paper's running example:
// the floor plan of Figure 1, the IT-Graph of Figure 2, and the door
// ATIs of Table I. The published facts it reproduces exactly:
//
//   - partitions v1..v17 plus outdoors v0; doors d1..d21 with Table I's
//     ATIs;
//   - d3 is a one-way door from v3 into v16 (D2P(d3)={v3,v16},
//     D2P◁(d3)=v3, D2P▷(d3)=v16);
//   - P2D(v3) = P2D◁(v3) = {d1,d2,d3,d5,d6}, P2D▷(v3) = {d1,d2,d5,d6};
//   - v1 is private with the single door d1; v15 is private;
//   - v16's distance matrix has DM(d3,d17)=2, DM(d3,d21)=4,
//     DM(d17,d21)=5;
//   - Example 1: the candidate paths (p3,d15,d16,p4) of length 10 m
//     (through private v15) and (p3,d18,p4) of length 12 m, so
//     ITSPQ(p3,p4,9:00) = (p3,d18,p4) and ITSPQ(p3,p4,23:30) = null.
//
// The full wall geometry is not published; the rectangle coordinates
// here are a reconstruction chosen to satisfy every stated fact (door
// positions make the two candidate path lengths exactly 10 and 12).
type PaperExample struct {
	Venue *model.Venue
	// P1..P4 are the query points marked in Figure 1 (p1, p2 are placed
	// representatively; p3, p4 exactly reproduce Example 1).
	P1, P2, P3, P4 geom.Point
}

// ati parses a Table I schedule string.
func ati(s string) temporal.Schedule {
	sched, err := temporal.ParseSchedule(s)
	if err != nil {
		panic(err)
	}
	return sched
}

// PaperFigure1 builds the running-example venue.
func PaperFigure1() *PaperExample {
	b := model.NewBuilder("icde20-figure1")

	part := func(name string, kind model.PartitionKind, x1, y1, x2, y2 float64) model.PartitionID {
		return b.AddPartition(name, kind, geom.NewRect(x1, y1, x2, y2, 0))
	}
	v1 := part("v1", model.PrivatePartition, 0, 30, 10, 40)
	v2 := part("v2", model.PublicPartition, 10, 30, 20, 40)
	v3 := part("v3", model.HallwayPartition, 0, 20, 30, 30)
	v4 := part("v4", model.PublicPartition, 20, 30, 30, 40)
	v5 := part("v5", model.PublicPartition, 8, 10, 18, 20)
	v6 := part("v6", model.PublicPartition, 18, 12, 24, 20)
	v7 := part("v7", model.PublicPartition, 30, 30, 42, 40)
	v8 := part("v8", model.HallwayPartition, 30, 20, 42, 30)
	v9 := part("v9", model.PrivatePartition, 42, 20, 54, 30)
	v10 := part("v10", model.HallwayPartition, 36, 12, 42, 20)
	v11 := part("v11", model.PublicPartition, 42, 10, 54, 20)
	v12 := part("v12", model.PublicPartition, 0, 0, 18, 10)
	v13 := part("v13", model.PublicPartition, 18, 0, 30, 12)
	v14 := part("v14", model.PublicPartition, 30, 0, 42, 12)
	v15 := part("v15", model.PrivatePartition, 24, 12, 36, 16)
	v16 := part("v16", model.PublicPartition, 0, 10, 8, 20)
	v17 := part("v17", model.PublicPartition, 42, 30, 54, 40)
	v0 := b.Outdoors()

	door := func(name string, kind model.DoorKind, x, y float64, atis string) model.DoorID {
		return b.AddDoor(name, kind, geom.Pt(x, y, 0), ati(atis))
	}
	// Table I ATIs, verbatim.
	d1 := door("d1", model.PrivateDoor, 5, 30, "[5:00, 23:00)")
	d2 := door("d2", model.PublicDoor, 15, 30, "[8:00, 16:00)")
	d3 := door("d3", model.PublicDoor, 4, 20, "[6:00, 23:00)")
	d4 := door("d4", model.PublicDoor, 30, 35, "[9:00, 18:00)")
	d5 := door("d5", model.PublicDoor, 13, 20, "[6:30, 23:00)")
	d6 := door("d6", model.PublicDoor, 21, 20, "[8:00, 16:00)")
	d7 := door("d7", model.PrivateDoor, 42, 25, "[6:00, 23:30)")
	d8 := door("d8", model.PublicDoor, 36, 30, "[9:00, 18:00)")
	d9 := door("d9", model.PublicDoor, 39, 20, "[0:00, 6:00), [6:30, 23:00)")
	d10 := door("d10", model.PublicDoor, 42, 16, "[8:00, 16:00)")
	d11 := door("d11", model.PublicDoor, 39, 12, "[5:00, 23:00)")
	d12 := door("d12", model.PublicDoor, 18, 5, "[5:00, 23:00)")
	d13 := door("d13", model.PublicDoor, 21, 12, "[5:00, 17:00), [18:00, 23:00)")
	d14 := door("d14", model.PrivateDoor, 48, 20, "[0:00, 24:00)")
	d15 := door("d15", model.PrivateDoor, 26, 12, "[8:00, 16:00)")
	d16 := door("d16", model.PrivateDoor, 34, 12, "[8:00, 17:00)")
	d17 := door("d17", model.PublicDoor, 2, 10, "[0:00, 24:00)")
	// d18 sits on the v13/v14 wall such that both point legs of the
	// (p3, d18, p4) path are exactly 6 m: total 12 m as in Example 1.
	d18 := door("d18", model.PublicDoor, 30, 11-2*math.Sqrt(5), "[0:00, 23:00)")
	d19 := door("d19", model.PublicDoor, 12, 10, "[8:00, 16:00)")
	d20 := door("d20", model.EntranceDoor, 48, 40, "[5:00, 23:00)")
	d21 := door("d21", model.PublicDoor, 8, 17, "[8:00, 16:00)")

	b.ConnectBi(d1, v3, v1)
	b.ConnectBi(d2, v3, v2)
	b.ConnectOneWay(d3, v3, v16) // door directionality from Figure 1
	b.ConnectBi(d4, v4, v7)
	b.ConnectBi(d5, v3, v5)
	b.ConnectBi(d6, v3, v6)
	b.ConnectBi(d7, v8, v9)
	b.ConnectBi(d8, v7, v8)
	b.ConnectBi(d9, v8, v10)
	b.ConnectBi(d10, v10, v11)
	b.ConnectBi(d11, v10, v14)
	b.ConnectBi(d12, v12, v13)
	b.ConnectBi(d13, v6, v13)
	b.ConnectBi(d14, v11, v9)
	b.ConnectBi(d15, v13, v15)
	b.ConnectBi(d16, v15, v14)
	b.ConnectBi(d17, v16, v12)
	b.ConnectBi(d18, v13, v14)
	b.ConnectBi(d19, v5, v12)
	b.ConnectBi(d20, v17, v0)
	b.ConnectBi(d21, v16, v5)

	// v16's published distance matrix (Figure 2's partition table).
	b.SetDistance(v16, d3, d17, 2)
	b.SetDistance(v16, d3, d21, 4)
	b.SetDistance(v16, d17, d21, 5)

	return &PaperExample{
		Venue: b.MustBuild(),
		P1:    geom.Pt(15, 25, 0), // in hallway v3
		P2:    geom.Pt(36, 25, 0), // in hallway v8
		P3:    geom.Pt(26, 11, 0), // in v13
		P4:    geom.Pt(34, 11, 0), // in v14
	}
}
