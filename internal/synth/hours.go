// Package synth generates the synthetic evaluation data of Liu et al.
// (ICDE 2020, Section III): multi-floor mall venues matching the paper's
// partition/door counts, door ATIs sampled from a pool of realistic
// shopping-mall opening hours (substituting for the authors' crawl of
// five Hong Kong malls), and δs2t-controlled query instances. It also
// ships the hand-encoded venue of the paper's Figure 1 / Table I running
// example, plus smaller office and hospital presets for the examples.
//
// All generation is deterministic given a seed.
package synth

import "indoorpath/internal/temporal"

// openPool and closePool are the opening and closing instants observed
// in typical Hong Kong shopping-mall shop hours — the embedded
// substitute for the paper's crawled dataset. The pools are ordered so
// that drawing a prefix without replacement yields progressively more
// diverse hours: small checkpoint sets |T| contain only early openings
// and late closings (most doors open at any probe time), while larger
// sets pull in late openers and early closers, closing more doors at
// off-peak probe times — the behaviour the paper reports in Fig. 4.
var openPool = []temporal.TimeOfDay{
	temporal.MustParse("5:00"),
	temporal.MustParse("6:00"),
	temporal.MustParse("7:00"),
	temporal.MustParse("8:30"),
	temporal.MustParse("9:00"),
	temporal.MustParse("6:30"),
	temporal.MustParse("9:30"),
	temporal.MustParse("7:30"),
	temporal.MustParse("10:00"),
	temporal.MustParse("8:00"),
}

var closePool = []temporal.TimeOfDay{
	temporal.MustParse("22:00"),
	temporal.MustParse("21:00"),
	temporal.MustParse("23:00"),
	temporal.MustParse("20:00"),
	temporal.MustParse("21:30"),
	temporal.MustParse("16:00"),
	temporal.MustParse("22:30"),
	temporal.MustParse("18:00"),
	temporal.MustParse("20:30"),
	temporal.MustParse("17:00"),
	temporal.MustParse("23:30"),
	temporal.MustParse("19:00"),
}

// HourPools exposes copies of the embedded pools (for docs and tests).
func HourPools() (opens, closes []temporal.TimeOfDay) {
	return append([]temporal.TimeOfDay(nil), openPool...),
		append([]temporal.TimeOfDay(nil), closePool...)
}
