package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"indoorpath/internal/dmat"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/pqueue"
)

// QueryConfig controls query-instance generation (paper Sec. III-1,
// "Query Instances"): pick a random start point ps, find a door whose
// static indoor distance from ps approaches δs2t, then place pt beyond
// it so that the ps→pt indoor distance approximates δs2t.
type QueryConfig struct {
	// S2T is δs2t, the target indoor distance in metres (paper default
	// 1500; sweeps 1100–1900).
	S2T float64
	// Count is the number of instances per setting (paper uses 5).
	Count int
	// Tolerance is the accepted relative deviation from S2T (default 5%).
	Tolerance float64
	// Seed drives the random choices.
	Seed int64
}

func (c QueryConfig) normalised() (QueryConfig, error) {
	if c.S2T == 0 {
		c.S2T = 1500
	}
	if c.S2T <= 0 {
		return c, fmt.Errorf("synth: S2T must be positive")
	}
	if c.Count == 0 {
		c.Count = 5
	}
	if c.Count < 0 {
		return c, fmt.Errorf("synth: Count must be positive")
	}
	if c.Tolerance == 0 {
		c.Tolerance = 0.05
	}
	return c, nil
}

// QueryInstance is one generated (ps, pt) pair with its static indoor
// distance.
type QueryInstance struct {
	Source, Target geom.Point
	StaticDist     float64
}

// GenerateQueries produces Count query instances whose static indoor
// distance approximates cfg.S2T. Both endpoints land in public
// partitions (hallway cells or public shops). Deterministic per seed.
func GenerateQueries(m *Mall, dm *dmat.Set, cfg QueryConfig) ([]QueryInstance, error) {
	cfg, err := cfg.normalised()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := m.Venue
	var out []QueryInstance
	const maxAttempts = 400
	for attempt := 0; attempt < maxAttempts && len(out) < cfg.Count; attempt++ {
		// Random start point in a random hallway cell.
		floor := rng.Intn(len(m.HallwayCells))
		cells := m.HallwayCells[floor]
		part := cells[rng.Intn(len(cells))]
		ps := randomInteriorPoint(rng, v.Partition(part).Rect)

		dist := staticDistances(v, dm, ps, part)
		// Candidate doors with distance within reach of δs2t (sorted for
		// deterministic selection; map iteration order is random).
		var cands []model.DoorID
		for d, dd := range dist {
			if dd <= cfg.S2T-10 && dd >= cfg.S2T-150 {
				cands = append(cands, d)
			}
		}
		if len(cands) == 0 {
			continue
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		d := cands[rng.Intn(len(cands))]
		remain := cfg.S2T - dist[d]
		// Place pt beyond d inside one of its enterable partitions.
		for _, w := range v.EnterParts(d) {
			p := v.Partition(w)
			if p.Kind == model.PrivatePartition || p.Kind == model.OutdoorPartition ||
				p.Kind == model.StairwellPartition {
				continue
			}
			pt, ok := pointAtDistance(rng, p.Rect, v.Door(d).Pos, remain)
			if !ok {
				continue
			}
			actual := staticPointDistance(v, dm, dist, ps, part, pt, w)
			if math.Abs(actual-cfg.S2T) <= cfg.Tolerance*cfg.S2T {
				out = append(out, QueryInstance{Source: ps, Target: pt, StaticDist: actual})
				break
			}
		}
	}
	if len(out) < cfg.Count {
		return out, fmt.Errorf("synth: generated only %d of %d query instances for δs2t=%.0f",
			len(out), cfg.Count, cfg.S2T)
	}
	return out, nil
}

// randomInteriorPoint samples a point strictly inside the rectangle.
func randomInteriorPoint(rng *rand.Rand, r geom.Rect) geom.Point {
	margin := math.Min(r.Width(), r.Height()) * 0.1
	return geom.Pt(
		r.MinX+margin+rng.Float64()*(r.Width()-2*margin),
		r.MinY+margin+rng.Float64()*(r.Height()-2*margin),
		r.Floor,
	)
}

// pointAtDistance finds a point inside rect at (approximately) the given
// Euclidean distance from anchor. ok is false when the rectangle cannot
// host such a point.
func pointAtDistance(rng *rand.Rand, r geom.Rect, anchor geom.Point, dist float64) (geom.Point, bool) {
	if dist < 0 {
		return geom.Point{}, false
	}
	for tries := 0; tries < 32; tries++ {
		ang := rng.Float64() * 2 * math.Pi
		p := geom.Pt(anchor.X+dist*math.Cos(ang), anchor.Y+dist*math.Sin(ang), r.Floor)
		if r.ContainsXY(p.X, p.Y) {
			return p, true
		}
	}
	// Fall back to the point toward the rect centre at that distance.
	c := r.Center()
	d := anchor.DistXY(c)
	if d == 0 {
		return c, dist < math.Hypot(r.Width(), r.Height())/2
	}
	f := dist / d
	p := geom.Pt(anchor.X+(c.X-anchor.X)*f, anchor.Y+(c.Y-anchor.Y)*f, r.Floor)
	if r.ContainsXY(p.X, p.Y) {
		return p, true
	}
	return geom.Point{}, false
}

// staticDistances runs a temporal-unaware door Dijkstra from point ps in
// partition srcPart, honouring directionality and privacy. It returns
// the static indoor distance from ps to every reachable door.
func staticDistances(v *model.Venue, dm *dmat.Set, ps geom.Point, srcPart model.PartitionID) map[model.DoorID]float64 {
	dist := map[model.DoorID]float64{}
	prevPart := map[model.DoorID]model.PartitionID{}
	settled := map[model.DoorID]bool{}
	h := pqueue.New(64)

	// Exact door-graph Dijkstra: a partition is relaxed from every
	// settled door entering it (doors settle once, so this terminates).
	expand := func(w model.PartitionID, anchor model.DoorID, base float64) {
		for _, dj := range v.LeaveDoors(w) {
			if settled[dj] {
				continue
			}
			var leg float64
			if anchor == model.NoDoor {
				leg = dm.PointToDoor(w, ps, dj)
			} else {
				leg = dm.Dist(w, anchor, dj)
			}
			if math.IsInf(leg, 1) {
				continue
			}
			cand := base + leg
			if old, seen := dist[dj]; !seen || cand < old {
				dist[dj] = cand
				prevPart[dj] = w
				h.Push(int32(dj), cand)
			}
		}
	}
	expand(srcPart, model.NoDoor, 0)
	for {
		item, ok := h.Pop()
		if !ok {
			break
		}
		d := model.DoorID(item.Key)
		if settled[d] {
			continue
		}
		settled[d] = true
		for _, w := range v.NextPartitions(d, prevPart[d]) {
			p := v.Partition(w)
			if p.Kind == model.PrivatePartition || p.Kind == model.OutdoorPartition {
				continue
			}
			expand(w, d, dist[d])
		}
	}
	return dist
}

// staticPointDistance resolves the static indoor distance from ps to pt
// given the door-distance map from ps.
func staticPointDistance(v *model.Venue, dm *dmat.Set, dist map[model.DoorID]float64,
	ps geom.Point, srcPart model.PartitionID, pt geom.Point, tgtPart model.PartitionID) float64 {

	best := math.Inf(1)
	if srcPart == tgtPart {
		best = dm.PointToPoint(srcPart, ps, pt)
	}
	for _, e := range v.EnterDoors(tgtPart) {
		dd, ok := dist[e]
		if !ok {
			continue
		}
		leg := dm.PointToDoor(tgtPart, pt, e)
		if math.IsInf(leg, 1) {
			continue
		}
		if t := dd + leg; t < best {
			best = t
		}
	}
	return best
}
