package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// ATIConfig controls temporal-variation generation (paper Sec. III-1,
// "Temporal Variations").
type ATIConfig struct {
	// CheckpointCount is |T|, the number of distinct open/close instants
	// from which door ATIs are formed; the paper sweeps 4, 8, 12, 16
	// (default 8). Must be even and >= 2.
	CheckpointCount int
	// MultiATIFraction is the fraction of temporal doors that receive a
	// split schedule (two ATIs with an afternoon gap, like the paper's
	// d13). Defaults to 0.2; set negative to disable.
	MultiATIFraction float64
	// Seed drives all random choices.
	Seed int64
}

func (c ATIConfig) normalised() (ATIConfig, error) {
	if c.CheckpointCount == 0 {
		c.CheckpointCount = 8
	}
	if c.CheckpointCount < 2 || c.CheckpointCount%2 != 0 {
		return c, fmt.Errorf("synth: CheckpointCount must be even and >= 2, got %d", c.CheckpointCount)
	}
	if c.MultiATIFraction == 0 {
		c.MultiATIFraction = 0.2
	}
	if c.MultiATIFraction < 0 {
		c.MultiATIFraction = 0
	}
	if c.MultiATIFraction > 1 {
		return c, fmt.Errorf("synth: MultiATIFraction above 1: %v", c.MultiATIFraction)
	}
	return c, nil
}

// DoorClass describes one planned door for ATI assignment, before the
// venue is built.
type DoorClass struct {
	Kind model.DoorKind
	// ShareKey links doors that must share one schedule (the two doors
	// of a two-door shop). Doors with the same non-negative key receive
	// identical ATIs; use -1 for independent doors.
	ShareKey int
}

// ATIAssignment is the result of GenerateATIs: the checkpoint set T and
// one schedule per planned door (nil = always open).
type ATIAssignment struct {
	T         temporal.CheckpointSet
	Opens     []temporal.TimeOfDay // sampled opening instants (half of T)
	Closes    []temporal.TimeOfDay // sampled closing instants (half of T)
	Schedules []temporal.Schedule
}

// GenerateATIs draws the checkpoint set T (|T| sampled open/close
// instants from the embedded shop-hours pools) and assigns each planned
// door up to three ATIs formed from instants of T, mirroring the
// paper's procedure. Public, private and entrance doors vary; virtual
// and stair doors are structural and stay always open.
func GenerateATIs(classes []DoorClass, cfg ATIConfig) (*ATIAssignment, error) {
	cfg, err := cfg.normalised()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.CheckpointCount / 2
	if k > len(openPool) {
		k = len(openPool)
	}
	if k > len(closePool) {
		k = len(closePool)
	}
	opens := append([]temporal.TimeOfDay(nil), openPool[:k]...)
	closes := append([]temporal.TimeOfDay(nil), closePool[:k]...)
	sort.Slice(opens, func(i, j int) bool { return opens[i] < opens[j] })
	sort.Slice(closes, func(i, j int) bool { return closes[i] < closes[j] })

	var ts []temporal.TimeOfDay
	ts = append(ts, opens...)
	ts = append(ts, closes...)
	asg := &ATIAssignment{
		T:         temporal.NewCheckpointSet(ts),
		Opens:     opens,
		Closes:    closes,
		Schedules: make([]temporal.Schedule, len(classes)),
	}

	shared := map[int]temporal.Schedule{}
	pick := func(pool []temporal.TimeOfDay) temporal.TimeOfDay {
		return pool[rng.Intn(len(pool))]
	}
	for i, c := range classes {
		if c.Kind == model.VirtualDoor || c.Kind == model.StairDoor {
			continue
		}
		if c.ShareKey >= 0 {
			if s, ok := shared[c.ShareKey]; ok {
				asg.Schedules[i] = s
				continue
			}
		}
		var sched temporal.Schedule
		switch {
		case c.Kind == model.EntranceDoor:
			// Building entrances follow the widest sampled hours.
			sched = temporal.MustSchedule(temporal.MustInterval(opens[0], closes[len(closes)-1]))
		case rng.Float64() < cfg.MultiATIFraction && len(closes) >= 3:
			// Split schedule like the paper's d13: [o, c_a) ∪ [c_b, c_c)
			// with c_a < c_b < c_c drawn from the sampled closes.
			o := pick(opens)
			idx := rng.Perm(len(closes))[:3]
			sort.Ints(idx)
			sched = temporal.MustSchedule(
				temporal.MustInterval(o, closes[idx[0]]),
				temporal.MustInterval(closes[idx[1]], closes[idx[2]]),
			)
		default:
			sched = temporal.MustSchedule(temporal.MustInterval(pick(opens), pick(closes)))
		}
		asg.Schedules[i] = sched
		if c.ShareKey >= 0 {
			shared[c.ShareKey] = sched
		}
	}
	return asg, nil
}
