package synth

import (
	"errors"
	"math"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// The fixture must reproduce every fact the paper states about its
// running example (Figure 1, Figure 2, Table I, Example 1, Section
// II-A's mapping walkthrough).

func ids(t *testing.T, v *model.Venue, names ...string) []model.DoorID {
	t.Helper()
	out := make([]model.DoorID, len(names))
	for i, n := range names {
		id, ok := v.DoorByName(n)
		if !ok {
			t.Fatalf("door %q missing", n)
		}
		out[i] = id
	}
	return out
}

func pid(t *testing.T, v *model.Venue, name string) model.PartitionID {
	t.Helper()
	id, ok := v.PartitionByName(name)
	if !ok {
		t.Fatalf("partition %q missing", name)
	}
	return id
}

func TestFixtureShape(t *testing.T) {
	ex := PaperFigure1()
	v := ex.Venue
	st := v.Stats()
	if st.Partitions != 18 { // v1..v17 + outdoors
		t.Errorf("partitions = %d, want 18", st.Partitions)
	}
	if st.Doors != 21 {
		t.Errorf("doors = %d, want 21", st.Doors)
	}
	if st.PrivateParts != 3 { // v1, v9, v15
		t.Errorf("private partitions = %d, want 3", st.PrivateParts)
	}
	if st.MultiATIDoors != 2 { // d9 and d13 per Table I
		t.Errorf("multi-ATI doors = %d, want 2", st.MultiATIDoors)
	}
}

func TestFixtureMappingFacts(t *testing.T) {
	v := PaperFigure1().Venue
	d3 := ids(t, v, "d3")[0]
	v3, v16 := pid(t, v, "v3"), pid(t, v, "v16")

	// D2P(d3) = {v3, v16}.
	parts := v.PartitionsOf(d3)
	if len(parts) != 2 {
		t.Fatalf("D2P(d3) = %v", parts)
	}
	// D2P◁(d3) = v3, D2P▷(d3) = v16.
	if lv := v.LeaveParts(d3); len(lv) != 1 || lv[0] != v3 {
		t.Errorf("D2P◁(d3) = %v, want {v3}", lv)
	}
	if ev := v.EnterParts(d3); len(ev) != 1 || ev[0] != v16 {
		t.Errorf("D2P▷(d3) = %v, want {v16}", ev)
	}
	// P2D(v3) = P2D◁(v3) = {d1,d2,d3,d5,d6}; P2D▷(v3) = {d1,d2,d5,d6}.
	want := map[string]bool{"d1": true, "d2": true, "d3": true, "d5": true, "d6": true}
	all := v.DoorsOf(v3)
	if len(all) != 5 {
		t.Fatalf("P2D(v3) size = %d: %v", len(all), all)
	}
	for _, d := range all {
		if !want[v.Door(d).Name] {
			t.Errorf("unexpected door %s on v3", v.Door(d).Name)
		}
	}
	if lv := v.LeaveDoors(v3); len(lv) != 5 {
		t.Errorf("P2D◁(v3) size = %d", len(lv))
	}
	enter := v.EnterDoors(v3)
	if len(enter) != 4 {
		t.Fatalf("P2D▷(v3) size = %d", len(enter))
	}
	for _, d := range enter {
		if v.Door(d).Name == "d3" {
			t.Error("d3 must not be enterable into v3")
		}
	}
	// v1 is private with the single door d1.
	v1 := pid(t, v, "v1")
	if !v.Partition(v1).Kind.IsPrivate() {
		t.Error("v1 must be private")
	}
	if ds := v.DoorsOf(v1); len(ds) != 1 || v.Door(ds[0]).Name != "d1" {
		t.Errorf("P2D(v1) = %v, want {d1}", ds)
	}
	// d7 is a private door (Figure 2's door table row).
	d7 := ids(t, v, "d7")[0]
	if v.Door(d7).Kind != model.PrivateDoor {
		t.Error("d7 must be PRD")
	}
	if v.Door(d7).ATIs.String() != "〈[6:00, 23:30)〉" {
		t.Errorf("d7 ATIs = %v", v.Door(d7).ATIs)
	}
	// v16's published DM.
	dd := ids(t, v, "d3", "d17", "d21")
	g := itgraph.MustNew(v)
	if got := g.DM().Dist(v16, dd[0], dd[1]); got != 2 {
		t.Errorf("DM(v16,d3,d17) = %v, want 2", got)
	}
	if got := g.DM().Dist(v16, dd[0], dd[2]); got != 4 {
		t.Errorf("DM(v16,d3,d21) = %v, want 4", got)
	}
	if got := g.DM().Dist(v16, dd[1], dd[2]); got != 5 {
		t.Errorf("DM(v16,d17,d21) = %v, want 5", got)
	}
}

func TestFixtureTableI(t *testing.T) {
	v := PaperFigure1().Venue
	atis := map[string]string{
		"d1":  "〈[5:00, 23:00)〉",
		"d2":  "〈[8:00, 16:00)〉",
		"d3":  "〈[6:00, 23:00)〉",
		"d4":  "〈[9:00, 18:00)〉",
		"d5":  "〈[6:30, 23:00)〉",
		"d6":  "〈[8:00, 16:00)〉",
		"d7":  "〈[6:00, 23:30)〉",
		"d8":  "〈[9:00, 18:00)〉",
		"d9":  "〈[0:00, 6:00), [6:30, 23:00)〉",
		"d10": "〈[8:00, 16:00)〉",
		"d11": "〈[5:00, 23:00)〉",
		"d12": "〈[5:00, 23:00)〉",
		"d13": "〈[5:00, 17:00), [18:00, 23:00)〉",
		"d14": "〈[0:00, 24:00)〉",
		"d15": "〈[8:00, 16:00)〉",
		"d16": "〈[8:00, 17:00)〉",
		"d17": "〈[0:00, 24:00)〉",
		"d18": "〈[0:00, 23:00)〉",
		"d19": "〈[8:00, 16:00)〉",
		"d20": "〈[5:00, 23:00)〉",
		"d21": "〈[8:00, 16:00)〉",
	}
	for name, want := range atis {
		id, ok := v.DoorByName(name)
		if !ok {
			t.Fatalf("door %s missing", name)
		}
		if got := v.Door(id).ATIs.String(); got != want {
			t.Errorf("%s ATIs = %s, want %s", name, got, want)
		}
	}
}

func TestFixtureExample1At9(t *testing.T) {
	ex := PaperFigure1()
	g := itgraph.MustNew(ex.Venue)
	q := core.Query{Source: ex.P3, Target: ex.P4, At: temporal.MustParse("9:00")}
	for _, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
		e := core.NewEngine(g, core.Options{Method: m})
		p, _, err := e.Route(q)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if got := p.Format(ex.Venue); got != "(ps, d18, pt)" {
			t.Errorf("%v: path = %s, want (ps, d18, pt)", m, got)
		}
		if math.Abs(p.Length-12) > 1e-9 {
			t.Errorf("%v: length = %v, want 12", m, p.Length)
		}
		if err := p.Validate(g, q); err != nil {
			t.Errorf("%v: Validate: %v", m, err)
		}
	}
	// The rejected candidate (p3, d15, d16, p4) is indeed 10 m but runs
	// through private v15: verify its geometry and its invalidity.
	v := ex.Venue
	dd := ids(t, v, "d15", "d16")
	v15 := pid(t, v, "v15")
	lenA := ex.P3.DistXY(v.Door(dd[0]).Pos) +
		g.DM().Dist(v15, dd[0], dd[1]) +
		v.Door(dd[1]).Pos.DistXY(ex.P4)
	if math.Abs(lenA-10) > 1e-9 {
		t.Errorf("candidate through v15 = %v, want 10", lenA)
	}
	if !v.Partition(v15).Kind.IsPrivate() {
		t.Error("v15 must be private")
	}
}

func TestFixtureExample1At2330(t *testing.T) {
	ex := PaperFigure1()
	g := itgraph.MustNew(ex.Venue)
	q := core.Query{Source: ex.P3, Target: ex.P4, At: temporal.MustParse("23:30")}
	for _, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
		e := core.NewEngine(g, core.Options{Method: m})
		_, _, err := e.Route(q)
		if !errors.Is(err, core.ErrNoRoute) {
			t.Errorf("%v: err = %v, want ErrNoRoute (paper: returns null)", m, err)
		}
	}
	// Confirm the reason: d18 is closed at 23:30.
	d18 := ids(t, ex.Venue, "d18")[0]
	if ex.Venue.Door(d18).OpenAt(temporal.MustParse("23:30")) {
		t.Error("d18 must be closed at 23:30")
	}
}

func TestFixtureOtherQueries(t *testing.T) {
	ex := PaperFigure1()
	g := itgraph.MustNew(ex.Venue)
	// p1 (hallway v3) to p2 (hallway v8) at noon: hallways link through
	// v6/v13/.../v10 or around; must exist and validate.
	q := core.Query{Source: ex.P1, Target: ex.P2, At: temporal.MustParse("12:00")}
	e := core.NewEngine(g, core.Options{})
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatalf("p1→p2 at noon: %v", err)
	}
	if err := p.Validate(g, q); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// Against the exhaustive oracle.
	or := core.OracleShortest(g, q)
	if !or.Found || math.Abs(or.Length-p.Length) > 1e-9 {
		t.Errorf("oracle %v vs engine %v", or.Length, p.Length)
	}
	// At 4:00 only d9, d14, d17, d18 are open; v2 (behind d2) must be
	// unreachable.
	v2c := ex.Venue.Partition(pid(t, ex.Venue, "v2")).Rect.Center()
	q2 := core.Query{Source: ex.P3, Target: v2c, At: temporal.MustParse("4:00")}
	if _, _, err := e.Route(q2); !errors.Is(err, core.ErrNoRoute) {
		t.Errorf("v2 at 4:00: err = %v, want ErrNoRoute", err)
	}
}

func TestFixtureSerialisationRoundTrip(t *testing.T) {
	ex := PaperFigure1()
	// The fixture survives a save/load cycle with Example 1 intact.
	var err error
	doc := itgraph.Encode(ex.Venue)
	v2, err := doc.Decode()
	if err != nil {
		t.Fatal(err)
	}
	g := itgraph.MustNew(v2)
	e := core.NewEngine(g, core.Options{})
	p, _, err := e.Route(core.Query{Source: ex.P3, Target: ex.P4, At: temporal.MustParse("9:00")})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Length-12) > 1e-9 {
		t.Errorf("after round trip: length = %v", p.Length)
	}
}
