package synth

import (
	"math"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/dmat"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

func TestGenerateMallPaperCounts(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Venue.Stats()
	// Paper Sec. III-1: 141 partitions and 224 doors per floor; the
	// 5-floor space has 705 partitions and 1120 doors (staircases and
	// outdoors are bookkept separately).
	if st.FloorPartitions != 705 {
		t.Errorf("floor partitions = %d, want 705", st.FloorPartitions)
	}
	if st.FloorDoors != 1120 {
		t.Errorf("floor doors = %d, want 1120", st.FloorDoors)
	}
	if st.StairwellParts != 16 { // 4 staircases x 4 floor gaps
		t.Errorf("stairwells = %d, want 16", st.StairwellParts)
	}
	if st.StairDoors != 32 {
		t.Errorf("stair doors = %d, want 32", st.StairDoors)
	}
	if st.Floors != 5 {
		t.Errorf("floors = %d", st.Floors)
	}
	if st.VirtualDoors != 36*5 {
		t.Errorf("virtual doors = %d, want 180", st.VirtualDoors)
	}
	if st.EntranceDoors != 4 {
		t.Errorf("entrances = %d, want 4", st.EntranceDoors)
	}
	if st.PrivateParts != 10*5 {
		t.Errorf("private shops = %d, want 50", st.PrivateParts)
	}
}

func TestGenerateMallSingleFloorCounts(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Venue.Stats()
	if st.FloorPartitions != 141 {
		t.Errorf("floor partitions = %d, want 141", st.FloorPartitions)
	}
	if st.FloorDoors != 224 {
		t.Errorf("floor doors = %d, want 224", st.FloorDoors)
	}
	if st.StairwellParts != 0 || st.StairDoors != 0 {
		t.Error("single floor must have no stairs")
	}
}

func TestMallDeterminism(t *testing.T) {
	a, err := GenerateMall(MallConfig{Floors: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMall(MallConfig{Floors: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Venue.Stats() != b.Venue.Stats() {
		t.Fatal("same seed must give identical stats")
	}
	for i := range a.Venue.Doors() {
		da, db := a.Venue.Doors()[i], b.Venue.Doors()[i]
		if da.Name != db.Name || da.ATIs.String() != db.ATIs.String() {
			t.Fatalf("door %d differs: %s %v vs %s %v", i, da.Name, da.ATIs, db.Name, db.ATIs)
		}
	}
	c, err := GenerateMall(MallConfig{Floors: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := range a.Venue.Doors() {
		if a.Venue.Doors()[i].ATIs.String() != c.Venue.Doors()[i].ATIs.String() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should differ somewhere")
	}
}

func TestMallTopologyHealthy(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := m.Venue
	// Every non-outdoor partition reachable from a hallway cell of
	// floor 0 when all doors are treated open (static connectivity).
	start := m.HallwayCells[0][0]
	seen := map[model.PartitionID]bool{start: true}
	stack := []model.PartitionID{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range v.DoorsOf(p) {
			for _, n := range v.NextPartitions(d, p) {
				if !seen[n] {
					seen[n] = true
					stack = append(stack, n)
				}
			}
		}
	}
	for _, p := range v.Partitions() {
		if p.Kind == model.OutdoorPartition {
			continue
		}
		if !seen[p.ID] {
			t.Fatalf("partition %s unreachable", p.Name)
		}
	}
	// Snapshot of noon: venue should be almost fully open.
	noonOpen := v.OpenDoorCount(temporal.MustParse("12:00"))
	if noonOpen != v.DoorCount() {
		t.Errorf("open at noon = %d of %d; generator must keep noon fully open",
			noonOpen, v.DoorCount())
	}
	// At 4:00 only structural doors (virtual + stairs) remain open.
	nightOpen := v.OpenDoorCount(temporal.MustParse("4:00"))
	st := v.Stats()
	if nightOpen != st.VirtualDoors+st.StairDoors {
		t.Errorf("open at 4:00 = %d, want %d structural doors",
			nightOpen, st.VirtualDoors+st.StairDoors)
	}
}

func TestMallCheckpointSweep(t *testing.T) {
	for _, tSize := range []int{4, 8, 12, 16} {
		m, err := GenerateMall(MallConfig{Floors: 1, Seed: 4, ATI: ATIConfig{CheckpointCount: tSize, Seed: 5}})
		if err != nil {
			t.Fatalf("|T|=%d: %v", tSize, err)
		}
		if got := m.ATIs.T.Len(); got != tSize {
			t.Errorf("|T| = %d, want %d", got, tSize)
		}
		if got := m.Venue.Checkpoints().Len(); got > tSize {
			t.Errorf("venue checkpoints %d exceed |T|=%d", got, tSize)
		}
		// More checkpoints => more doors closed at 8:00 (paper Fig. 4
		// trend), monotone by pool ordering.
		open8 := m.Venue.OpenDoorCount(temporal.MustParse("8:00"))
		open12 := m.Venue.OpenDoorCount(temporal.MustParse("12:00"))
		if open8 > open12 {
			t.Errorf("|T|=%d: more doors open at 8:00 (%d) than noon (%d)", tSize, open8, open12)
		}
	}
	// Trend check across |T| at t=8:00.
	var opens []int
	for _, tSize := range []int{4, 8, 12, 16} {
		m, err := GenerateMall(MallConfig{Floors: 1, Seed: 4, ATI: ATIConfig{CheckpointCount: tSize, Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		opens = append(opens, m.Venue.OpenDoorCount(temporal.MustParse("8:00")))
	}
	for i := 1; i < len(opens); i++ {
		if opens[i] > opens[i-1] {
			t.Errorf("open doors at 8:00 should not increase with |T|: %v", opens)
		}
	}
}

func TestGenerateATIsErrors(t *testing.T) {
	if _, err := GenerateATIs(nil, ATIConfig{CheckpointCount: 3}); err == nil {
		t.Error("odd checkpoint count must fail")
	}
	if _, err := GenerateATIs(nil, ATIConfig{MultiATIFraction: 1.5}); err == nil {
		t.Error("fraction > 1 must fail")
	}
	// Virtual and stair doors stay always open (nil schedule).
	asg, err := GenerateATIs([]DoorClass{
		{Kind: model.VirtualDoor, ShareKey: -1},
		{Kind: model.StairDoor, ShareKey: -1},
		{Kind: model.PublicDoor, ShareKey: -1},
	}, ATIConfig{CheckpointCount: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if asg.Schedules[0] != nil || asg.Schedules[1] != nil {
		t.Error("structural doors must have nil schedules")
	}
	if asg.Schedules[2] == nil {
		t.Error("public door must be temporal")
	}
}

func TestSharedSchedules(t *testing.T) {
	classes := []DoorClass{
		{Kind: model.PublicDoor, ShareKey: 7},
		{Kind: model.PublicDoor, ShareKey: 7},
		{Kind: model.PublicDoor, ShareKey: -1},
	}
	asg, err := GenerateATIs(classes, ATIConfig{CheckpointCount: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if asg.Schedules[0].String() != asg.Schedules[1].String() {
		t.Error("shared keys must share schedules")
	}
}

func TestGenerateQueries(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := dmat.Build(m.Venue)
	if err != nil {
		t.Fatal(err)
	}
	for _, s2t := range []float64{1100, 1500, 1900} {
		qs, err := GenerateQueries(m, dm, QueryConfig{S2T: s2t, Count: 5, Seed: 13})
		if err != nil {
			t.Fatalf("δs2t=%v: %v", s2t, err)
		}
		if len(qs) != 5 {
			t.Fatalf("δs2t=%v: got %d instances", s2t, len(qs))
		}
		for i, q := range qs {
			if rel := math.Abs(q.StaticDist-s2t) / s2t; rel > 0.05 {
				t.Errorf("δs2t=%v instance %d: static dist %v deviates %.1f%%",
					s2t, i, q.StaticDist, rel*100)
			}
			if _, ok := m.Venue.Locate(q.Source); !ok {
				t.Errorf("instance %d: source not indoor", i)
			}
			if _, ok := m.Venue.Locate(q.Target); !ok {
				t.Errorf("instance %d: target not indoor", i)
			}
		}
	}
	// Determinism.
	a, err := GenerateQueries(m, dm, QueryConfig{S2T: 1500, Count: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateQueries(m, dm, QueryConfig{S2T: 1500, Count: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("query generation must be deterministic")
		}
	}
}

func TestQueryConfigErrors(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dm, err := dmat.Build(m.Venue)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateQueries(m, dm, QueryConfig{S2T: -5}); err == nil {
		t.Error("negative S2T must fail")
	}
	if _, err := GenerateQueries(m, dm, QueryConfig{Count: -1}); err == nil {
		t.Error("negative count must fail")
	}
}

func TestMallConfigErrors(t *testing.T) {
	if _, err := GenerateMall(MallConfig{Floors: -1}); err == nil {
		t.Error("negative floors must fail")
	}
	if _, err := GenerateMall(MallConfig{PrivateShopsPerFloor: 109}); err == nil {
		t.Error("too many private shops must fail")
	}
	if _, err := GenerateMall(MallConfig{TwoDoorShopsGround: 200}); err == nil {
		t.Error("too many two-door shops must fail")
	}
	if _, err := GenerateMall(MallConfig{ATI: ATIConfig{CheckpointCount: 5}}); err == nil {
		t.Error("odd |T| must fail")
	}
}

func TestHourPools(t *testing.T) {
	opens, closes := HourPools()
	if len(opens) < 8 || len(closes) < 8 {
		t.Fatal("pools too small for |T|=16")
	}
	for _, o := range opens {
		if o < temporal.MustParse("5:00") || o > temporal.MustParse("10:00") {
			t.Errorf("open %v outside 5:00–10:00", o)
		}
	}
	for _, c := range closes {
		if c < temporal.MustParse("16:00") || c > temporal.MustParse("23:30") {
			t.Errorf("close %v outside 16:00–23:30", c)
		}
	}
}

func TestCrossFloorRouting(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	g := itgraph.MustNew(m.Venue)
	e := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
	// Hallway point on floor 0 to hallway point on floor 2: the path
	// must cross at least four stair doors (two flights).
	src := m.Venue.Partition(m.HallwayCells[0][0]).Rect.Center()
	tgt := m.Venue.Partition(m.HallwayCells[2][0]).Rect.Center()
	q := core.Query{Source: src, Target: tgt, At: temporal.MustParse("12:00")}
	p, _, err := e.Route(q)
	if err != nil {
		t.Fatal(err)
	}
	stairDoors := 0
	for _, d := range p.Doors {
		if m.Venue.Door(d).Kind == model.StairDoor {
			stairDoors++
		}
	}
	if stairDoors < 4 {
		t.Errorf("cross-floor path uses %d stair doors, want >= 4 (%s)", stairDoors, p.Format(m.Venue))
	}
	if err := p.Validate(g, q); err != nil {
		t.Error(err)
	}
	// Each stairway contributes its 20 m override to the length.
	if p.Length < 2*StairwayLen {
		t.Errorf("cross-floor length %v shorter than two stairways", p.Length)
	}
	// Floors sequence is monotone 0→1→2 along the partition path.
	lastFloor := 0
	for _, part := range p.Partitions {
		f := m.Venue.Partition(part).Rect.Floor
		if f < lastFloor {
			t.Errorf("path descends from floor %d to %d", lastFloor, f)
		}
		if f > lastFloor {
			lastFloor = f
		}
	}
	if lastFloor != 2 {
		t.Errorf("path tops out at floor %d", lastFloor)
	}
}

func TestGeneratedVenuesLint(t *testing.T) {
	m, err := GenerateMall(MallConfig{Floors: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	venues := map[string]*model.Venue{
		"mall":     m.Venue,
		"hospital": Hospital(),
		"office":   Office(),
		"paper":    PaperFigure1().Venue,
	}
	for name, v := range venues {
		for _, p := range v.Lint() {
			if p.Severity == "error" {
				t.Errorf("%s: %s", name, p)
			}
			// Warnings are acceptable only where expected: the paper
			// fixture's v17 connects solely through outdoors.
			if p.Severity == "warn" && name != "paper" {
				t.Errorf("%s: unexpected %s", name, p)
			}
		}
	}
}

func TestPresetsBuild(t *testing.T) {
	h := Hospital()
	if h.PartitionCount() < 10 || h.DoorCount() < 10 {
		t.Errorf("hospital too small: %d/%d", h.PartitionCount(), h.DoorCount())
	}
	if _, ok := h.PartitionByName("staff-only"); !ok {
		t.Error("hospital staff area missing")
	}
	o := Office()
	if _, ok := o.DoorByName("fire-exit"); !ok {
		t.Error("office fire exit missing")
	}
	fe, _ := o.DoorByName("fire-exit")
	if o.Door(fe).Bidirectional() {
		t.Error("fire exit must be one-way")
	}
	st := h.Stats()
	if st.MultiATIDoors == 0 {
		t.Error("hospital wards should have split visiting hours")
	}
}
