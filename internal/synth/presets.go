package synth

import (
	"fmt"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// Hospital builds a single-floor hospital wing: a central corridor, six
// patient wards that only admit visitors during visiting hours
// (10:00–12:00 and 14:00–18:00, a split schedule like the paper's d13),
// a 24 h emergency room, a pharmacy with business hours, and private
// staff areas that visitors may never traverse.
//
// Layout (corridor 60 m x 8 m at y 20..28):
//
//	wards w1..w6 above the corridor, staff areas and ER/pharmacy below.
func Hospital() *model.Venue {
	b := model.NewBuilder("hospital-wing")
	visiting := temporal.MustSchedule(
		temporal.MustInterval(temporal.MustParse("10:00"), temporal.MustParse("12:00")),
		temporal.MustInterval(temporal.MustParse("14:00"), temporal.MustParse("18:00")),
	)
	pharmacyHours := temporal.MustSchedule(
		temporal.MustInterval(temporal.MustParse("8:00"), temporal.MustParse("20:00")))
	lobbyHours := temporal.MustSchedule(
		temporal.MustInterval(temporal.MustParse("5:00"), temporal.MustParse("23:00")))

	corridor := b.AddPartition("corridor", model.HallwayPartition, geom.NewRect(0, 20, 60, 28, 0))
	lobby := b.AddPartition("lobby", model.HallwayPartition, geom.NewRect(0, 0, 20, 20, 0))
	er := b.AddPartition("emergency", model.PublicPartition, geom.NewRect(20, 0, 40, 20, 0))
	pharmacy := b.AddPartition("pharmacy", model.PublicPartition, geom.NewRect(40, 0, 60, 20, 0))
	staff := b.AddPartition("staff-only", model.PrivatePartition, geom.NewRect(60, 0, 80, 28, 0))

	// Lobby entrance from outdoors.
	ent := b.AddDoor("main-entrance", model.EntranceDoor, geom.Pt(0, 10, 0), lobbyHours)
	b.ConnectBi(ent, lobby, b.Outdoors())
	erEnt := b.AddDoor("er-entrance", model.EntranceDoor, geom.Pt(30, 0, 0), nil) // 24h
	b.ConnectBi(erEnt, er, b.Outdoors())

	lc := b.AddDoor("lobby-corridor", model.PublicDoor, geom.Pt(10, 20, 0), nil)
	b.ConnectBi(lc, lobby, corridor)
	le := b.AddDoor("lobby-er", model.PublicDoor, geom.Pt(20, 10, 0), nil)
	b.ConnectBi(le, lobby, er)
	ec := b.AddDoor("er-corridor", model.PublicDoor, geom.Pt(30, 20, 0), nil)
	b.ConnectBi(ec, er, corridor)
	pc := b.AddDoor("pharmacy-corridor", model.PublicDoor, geom.Pt(50, 20, 0), pharmacyHours)
	b.ConnectBi(pc, pharmacy, corridor)
	ep := b.AddDoor("er-pharmacy", model.PublicDoor, geom.Pt(40, 10, 0), pharmacyHours)
	b.ConnectBi(ep, er, pharmacy)
	sc := b.AddDoor("staff-corridor", model.PrivateDoor, geom.Pt(60, 24, 0), nil)
	b.ConnectBi(sc, staff, corridor)
	sp := b.AddDoor("staff-pharmacy", model.PrivateDoor, geom.Pt(60, 10, 0), nil)
	b.ConnectBi(sp, staff, pharmacy)

	for i := 0; i < 6; i++ {
		x0 := float64(i) * 10
		ward := b.AddPartition(fmt.Sprintf("ward-%d", i+1), model.PublicPartition,
			geom.NewRect(x0, 28, x0+10, 40, 0))
		d := b.AddDoor(fmt.Sprintf("ward-%d-door", i+1), model.PublicDoor,
			geom.Pt(x0+5, 28, 0), visiting)
		b.ConnectBi(d, ward, corridor)
	}
	return b.MustBuild()
}

// Office builds a single-floor office: an L-shaped hallway decomposed
// into two cells, public meeting rooms with core hours, a kitchen, and
// private offices reachable but never traversable. The front door uses
// business hours; a one-way fire exit allows leaving at any time.
func Office() *model.Venue {
	b := model.NewBuilder("office-floor")
	core := temporal.MustSchedule(
		temporal.MustInterval(temporal.MustParse("7:00"), temporal.MustParse("19:00")))
	business := temporal.MustSchedule(
		temporal.MustInterval(temporal.MustParse("8:00"), temporal.MustParse("18:00")))

	// L-shaped hallway as two rectangular cells with a virtual door.
	hallA := b.AddPartition("hall-a", model.HallwayPartition, geom.NewRect(0, 0, 30, 6, 0))
	hallB := b.AddPartition("hall-b", model.HallwayPartition, geom.NewRect(24, 6, 30, 30, 0))
	vd := b.AddDoor("hall-join", model.VirtualDoor, geom.Pt(27, 6, 0), nil)
	b.ConnectBi(vd, hallA, hallB)

	front := b.AddDoor("front-door", model.EntranceDoor, geom.Pt(0, 3, 0), business)
	b.ConnectBi(front, hallA, b.Outdoors())
	fire := b.AddDoor("fire-exit", model.PublicDoor, geom.Pt(30, 28, 0), nil)
	b.ConnectOneWay(fire, hallB, b.Outdoors()) // exit only

	meet1 := b.AddPartition("meeting-1", model.PublicPartition, geom.NewRect(0, 6, 12, 18, 0))
	meet2 := b.AddPartition("meeting-2", model.PublicPartition, geom.NewRect(12, 6, 24, 18, 0))
	kitchen := b.AddPartition("kitchen", model.PublicPartition, geom.NewRect(0, 18, 12, 30, 0))
	office1 := b.AddPartition("office-1", model.PrivatePartition, geom.NewRect(12, 18, 24, 30, 0))

	m1 := b.AddDoor("meeting-1-door", model.PublicDoor, geom.Pt(6, 6, 0), core)
	b.ConnectBi(m1, meet1, hallA)
	m2 := b.AddDoor("meeting-2-door", model.PublicDoor, geom.Pt(18, 6, 0), core)
	b.ConnectBi(m2, meet2, hallA)
	m12 := b.AddDoor("meeting-passage", model.PublicDoor, geom.Pt(12, 12, 0), core)
	b.ConnectBi(m12, meet1, meet2)
	k1 := b.AddDoor("kitchen-door", model.PublicDoor, geom.Pt(12, 24, 0), nil)
	b.ConnectBi(k1, kitchen, office1) // kitchen reachable via office (private!)
	k2 := b.AddDoor("kitchen-meeting", model.PublicDoor, geom.Pt(6, 18, 0), core)
	b.ConnectBi(k2, kitchen, meet1)
	o1 := b.AddDoor("office-1-door", model.PrivateDoor, geom.Pt(24, 24, 0), core)
	b.ConnectBi(o1, office1, hallB)

	return b.MustBuild()
}
