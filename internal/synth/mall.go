package synth

import (
	"fmt"
	"math/rand"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
)

// Mall layout constants (paper Sec. III-1: each floor is 1368 m x 1368 m
// with hallways decomposed into regular cells; 141 partitions and 224
// doors per floor; adjacent floors joined by four staircases with 20 m
// stairways).
const (
	FloorSize     = 1368.0
	CorridorWidth = 8.0
	BlocksPerAxis = 4
	CorridorCount = BlocksPerAxis - 1 // full-span corridors per axis
	BlockSize     = (FloorSize - CorridorCount*CorridorWidth) / BlocksPerAxis
	ShopDepth     = 30.0
	ShopsPerFloor = 108
	StairwayLen   = 20.0
	StairsPerGap  = 4
)

// MallConfig parameterises the synthetic mall generator.
type MallConfig struct {
	// Floors is the number of floors; the paper's default is 5.
	Floors int
	// PrivateShopsPerFloor marks this many shops per floor as private
	// partitions (storage/back-of-house). Default 10.
	PrivateShopsPerFloor int
	// TwoDoorShopsGround / TwoDoorShopsUpper control how many shops per
	// floor get a second door. The defaults (76 and 80) together with
	// 108 shops, 36 virtual doors and 4 ground-floor entrances yield the
	// paper's exact 224 doors per floor.
	TwoDoorShopsGround int
	TwoDoorShopsUpper  int
	// Seed drives layout randomness (which shops are two-door/private).
	Seed int64
	// ATI configures temporal-variation generation.
	ATI ATIConfig
}

func (c MallConfig) normalised() (MallConfig, error) {
	if c.Floors == 0 {
		c.Floors = 5
	}
	if c.Floors < 1 {
		return c, fmt.Errorf("synth: Floors must be >= 1, got %d", c.Floors)
	}
	if c.PrivateShopsPerFloor == 0 {
		c.PrivateShopsPerFloor = 10
	}
	if c.PrivateShopsPerFloor < 0 || c.PrivateShopsPerFloor > ShopsPerFloor {
		return c, fmt.Errorf("synth: PrivateShopsPerFloor out of range: %d", c.PrivateShopsPerFloor)
	}
	if c.TwoDoorShopsGround == 0 {
		c.TwoDoorShopsGround = 76
	}
	if c.TwoDoorShopsUpper == 0 {
		c.TwoDoorShopsUpper = 80
	}
	if c.TwoDoorShopsGround < 0 || c.TwoDoorShopsGround > ShopsPerFloor ||
		c.TwoDoorShopsUpper < 0 || c.TwoDoorShopsUpper > ShopsPerFloor {
		return c, fmt.Errorf("synth: two-door shop counts out of range")
	}
	if c.ATI.Seed == 0 {
		c.ATI.Seed = c.Seed + 1
	}
	return c, nil
}

// Mall is a generated venue with the handles the experiment harness
// needs.
type Mall struct {
	Venue *model.Venue
	ATIs  *ATIAssignment
	// HallwayCells lists the hallway partitions per floor (intersections
	// and corridor segments), used by the query generator to place
	// points.
	HallwayCells [][]model.PartitionID
	// PublicShops lists the non-private shop partitions per floor.
	PublicShops [][]model.PartitionID
}

// corridorLow returns the low edge coordinate of corridor i (0-based).
func corridorLow(i int) float64 {
	return float64(i+1)*BlockSize + float64(i)*CorridorWidth
}

// blockLow returns the low edge coordinate of block k.
func blockLow(k int) float64 {
	return float64(k) * (BlockSize + CorridorWidth)
}

// doorPlan is a door staged before ATI assignment.
type doorPlan struct {
	name     string
	kind     model.DoorKind
	pos      geom.Point
	from, to model.PartitionID
	oneWay   bool
	shareKey int
}

// GenerateMall builds the paper's synthetic venue: per floor 33 hallway
// cells (9 intersections + 24 corridor segments) and 108 shops = 141
// partitions, and 224 doors (shop doors, second shop doors, 36 virtual
// doors, 4 ground-floor entrances); floors joined by 4 staircases per
// gap with 20 m stairways; ATIs drawn from the embedded hours pool.
func GenerateMall(cfg MallConfig) (*Mall, error) {
	cfg, err := cfg.normalised()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := model.NewBuilder(fmt.Sprintf("mall-%dF", cfg.Floors))
	out := b.Outdoors()

	m := &Mall{
		HallwayCells: make([][]model.PartitionID, cfg.Floors),
		PublicShops:  make([][]model.PartitionID, cfg.Floors),
	}
	var plans []doorPlan
	shareKey := 0

	// inter[f][i][j] is intersection cell of vertical corridor i and
	// horizontal corridor j; hseg[f][j][k] / vseg[f][i][k] are corridor
	// segment cells.
	inter := make([][][]model.PartitionID, cfg.Floors)
	hseg := make([][][]model.PartitionID, cfg.Floors)
	vseg := make([][][]model.PartitionID, cfg.Floors)

	for f := 0; f < cfg.Floors; f++ {
		inter[f] = grid2(CorridorCount, CorridorCount)
		hseg[f] = grid2(CorridorCount, BlocksPerAxis)
		vseg[f] = grid2(CorridorCount, BlocksPerAxis)

		// Hallway cells.
		for i := 0; i < CorridorCount; i++ {
			cx := corridorLow(i)
			for j := 0; j < CorridorCount; j++ {
				cy := corridorLow(j)
				id := b.AddPartition(fmt.Sprintf("f%d-x-%d-%d", f, i, j), model.HallwayPartition,
					geom.NewRect(cx, cy, cx+CorridorWidth, cy+CorridorWidth, f))
				inter[f][i][j] = id
				m.HallwayCells[f] = append(m.HallwayCells[f], id)
			}
		}
		for j := 0; j < CorridorCount; j++ {
			cy := corridorLow(j)
			for k := 0; k < BlocksPerAxis; k++ {
				bx := blockLow(k)
				id := b.AddPartition(fmt.Sprintf("f%d-h-%d-%d", f, j, k), model.HallwayPartition,
					geom.NewRect(bx, cy, bx+BlockSize, cy+CorridorWidth, f))
				hseg[f][j][k] = id
				m.HallwayCells[f] = append(m.HallwayCells[f], id)
			}
		}
		for i := 0; i < CorridorCount; i++ {
			cx := corridorLow(i)
			for k := 0; k < BlocksPerAxis; k++ {
				by := blockLow(k)
				id := b.AddPartition(fmt.Sprintf("f%d-v-%d-%d", f, i, k), model.HallwayPartition,
					geom.NewRect(cx, by, cx+CorridorWidth, by+BlockSize, f))
				vseg[f][i][k] = id
				m.HallwayCells[f] = append(m.HallwayCells[f], id)
			}
		}

		// Virtual doors: every intersection joins its four neighbouring
		// segments (9 * 4 = 36 per floor).
		for i := 0; i < CorridorCount; i++ {
			cx := corridorLow(i)
			for j := 0; j < CorridorCount; j++ {
				cy := corridorLow(j)
				id := inter[f][i][j]
				mid := CorridorWidth / 2
				plans = append(plans,
					doorPlan{name: fmt.Sprintf("f%d-vd-%d-%d-w", f, i, j), kind: model.VirtualDoor,
						pos: geom.Pt(cx, cy+mid, f), from: id, to: hseg[f][j][i], shareKey: -1},
					doorPlan{name: fmt.Sprintf("f%d-vd-%d-%d-e", f, i, j), kind: model.VirtualDoor,
						pos: geom.Pt(cx+CorridorWidth, cy+mid, f), from: id, to: hseg[f][j][i+1], shareKey: -1},
					doorPlan{name: fmt.Sprintf("f%d-vd-%d-%d-s", f, i, j), kind: model.VirtualDoor,
						pos: geom.Pt(cx+mid, cy, f), from: id, to: vseg[f][i][j], shareKey: -1},
					doorPlan{name: fmt.Sprintf("f%d-vd-%d-%d-n", f, i, j), kind: model.VirtualDoor,
						pos: geom.Pt(cx+mid, cy+CorridorWidth, f), from: id, to: vseg[f][i][j+1], shareKey: -1},
				)
			}
		}

		// Shops: blocks 0..11 hold 7 shops, 12..15 hold 6 (108 total).
		twoDoorTarget := cfg.TwoDoorShopsUpper
		if f == 0 {
			twoDoorTarget = cfg.TwoDoorShopsGround
		}
		twoDoor := pickSet(rng, ShopsPerFloor, twoDoorTarget)
		private := pickSet(rng, ShopsPerFloor, cfg.PrivateShopsPerFloor)
		shopIdx := 0
		for bj := 0; bj < BlocksPerAxis; bj++ {
			for bi := 0; bi < BlocksPerAxis; bi++ {
				block := bj*BlocksPerAxis + bi
				n := 7
				if block >= 12 {
					n = 6
				}
				// Shops line the block edge facing a horizontal corridor:
				// the corridor above for rows 0..2, below for row 3.
				facingUp := bj <= CorridorCount-1
				var rowY, doorY float64
				var corridor model.PartitionID
				if facingUp {
					doorY = blockLow(bj) + BlockSize
					rowY = doorY - ShopDepth
					corridor = hseg[f][bj][bi]
				} else {
					doorY = blockLow(bj)
					rowY = doorY
					corridor = hseg[f][bj-1][bi]
				}
				w := BlockSize / float64(n)
				bx := blockLow(bi)
				for s := 0; s < n; s++ {
					x0 := bx + float64(s)*w
					kind := model.PublicPartition
					doorKind := model.PublicDoor
					if private[shopIdx] {
						kind = model.PrivatePartition
						doorKind = model.PrivateDoor
					}
					shop := b.AddPartition(fmt.Sprintf("f%d-shop-%d", f, shopIdx), kind,
						geom.NewRect(x0, rowY, x0+w, rowY+ShopDepth, f))
					if kind == model.PublicPartition {
						m.PublicShops[f] = append(m.PublicShops[f], shop)
					}
					key := -1
					if twoDoor[shopIdx] {
						key = shareKey
						shareKey++
					}
					plans = append(plans, doorPlan{
						name: fmt.Sprintf("f%d-sd-%d", f, shopIdx), kind: doorKind,
						pos: geom.Pt(x0+w/2, doorY, f), from: shop, to: corridor, shareKey: key,
					})
					if twoDoor[shopIdx] {
						plans = append(plans, doorPlan{
							name: fmt.Sprintf("f%d-sd2-%d", f, shopIdx), kind: doorKind,
							pos: geom.Pt(x0+w/4, doorY, f), from: shop, to: corridor, shareKey: key,
						})
					}
					shopIdx++
				}
			}
		}

		// Ground-floor entrances at the four ends of the middle corridors.
		if f == 0 {
			cMid := corridorLow(1) + CorridorWidth/2
			plans = append(plans,
				doorPlan{name: "ent-w", kind: model.EntranceDoor, pos: geom.Pt(0, cMid, 0),
					from: hseg[0][1][0], to: out, shareKey: -1},
				doorPlan{name: "ent-e", kind: model.EntranceDoor, pos: geom.Pt(FloorSize, cMid, 0),
					from: hseg[0][1][BlocksPerAxis-1], to: out, shareKey: -1},
				doorPlan{name: "ent-s", kind: model.EntranceDoor, pos: geom.Pt(cMid, 0, 0),
					from: vseg[0][1][0], to: out, shareKey: -1},
				doorPlan{name: "ent-n", kind: model.EntranceDoor, pos: geom.Pt(cMid, FloorSize, 0),
					from: vseg[0][1][BlocksPerAxis-1], to: out, shareKey: -1},
			)
		}
	}

	// Staircases: four per adjacent-floor pair, anchored at the four
	// mid-edge intersections, 20 m stairways (distance override).
	type stairRef struct {
		part   model.PartitionID
		lo, hi int // plan indices of the two stair doors
	}
	var stairs []stairRef
	anchors := [][2]int{{1, 0}, {0, 1}, {2, 1}, {1, 2}} // (i, j) intersections
	for f := 0; f+1 < cfg.Floors; f++ {
		for s, a := range anchors {
			cx, cy := corridorLow(a[0]), corridorLow(a[1])
			sw := b.AddStairwell(fmt.Sprintf("st-%d-f%d", s, f),
				geom.NewRect(cx-54, cy-54, cx-50, cy-50, f))
			lo := len(plans)
			plans = append(plans, doorPlan{
				name: fmt.Sprintf("st-%d-f%d-lo", s, f), kind: model.StairDoor,
				pos:  geom.Pt(cx+CorridorWidth/2, cy+CorridorWidth/2, f),
				from: sw, to: inter[f][a[0]][a[1]], shareKey: -1,
			})
			hi := len(plans)
			plans = append(plans, doorPlan{
				name: fmt.Sprintf("st-%d-f%d-hi", s, f), kind: model.StairDoor,
				pos:  geom.Pt(cx+CorridorWidth/2, cy+CorridorWidth/2, f+1),
				from: sw, to: inter[f+1][a[0]][a[1]], shareKey: -1,
			})
			stairs = append(stairs, stairRef{part: sw, lo: lo, hi: hi})
		}
	}

	// Assign ATIs, then realise the doors.
	classes := make([]DoorClass, len(plans))
	for i, p := range plans {
		classes[i] = DoorClass{Kind: p.kind, ShareKey: p.shareKey}
	}
	asg, err := GenerateATIs(classes, cfg.ATI)
	if err != nil {
		return nil, err
	}
	doorIDs := make([]model.DoorID, len(plans))
	for i, p := range plans {
		id := b.AddDoor(p.name, p.kind, p.pos, asg.Schedules[i])
		doorIDs[i] = id
		if p.oneWay {
			b.ConnectOneWay(id, p.from, p.to)
		} else {
			b.ConnectBi(id, p.from, p.to)
		}
	}
	for _, st := range stairs {
		b.SetDistance(st.part, doorIDs[st.lo], doorIDs[st.hi], StairwayLen)
	}

	v, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("synth: mall build: %w", err)
	}
	m.Venue = v
	m.ATIs = asg
	return m, nil
}

// MallCorridorRings returns the corridor network of one mall floor as
// a region with holes: the floor square as the outer ring and the 16
// shop blocks as hole rings. Feeding it to decompose.DecomposeWithHoles
// reproduces the hallway decomposition the generator performs
// analytically — the full pipeline of the paper's venue preparation.
func MallCorridorRings(floor int) (outer geom.Polygon, holes []geom.Polygon) {
	outer = geom.RectPolygon(geom.NewRect(0, 0, FloorSize, FloorSize, floor))
	for bj := 0; bj < BlocksPerAxis; bj++ {
		for bi := 0; bi < BlocksPerAxis; bi++ {
			bx, by := blockLow(bi), blockLow(bj)
			holes = append(holes, geom.RectPolygon(
				geom.NewRect(bx, by, bx+BlockSize, by+BlockSize, floor)))
		}
	}
	return outer, holes
}

// MallCorridorArea returns the analytic corridor area of one floor:
// the floor square minus the 16 shop blocks.
func MallCorridorArea() float64 {
	return FloorSize*FloorSize - float64(BlocksPerAxis*BlocksPerAxis)*BlockSize*BlockSize
}

// grid2 allocates a rows x cols partition-ID grid.
func grid2(rows, cols int) [][]model.PartitionID {
	g := make([][]model.PartitionID, rows)
	for i := range g {
		g[i] = make([]model.PartitionID, cols)
	}
	return g
}

// pickSet returns a deterministic random subset of size k of [0, n) as a
// membership slice.
func pickSet(rng *rand.Rand, n, k int) []bool {
	set := make([]bool, n)
	for _, i := range rng.Perm(n)[:k] {
		set[i] = true
	}
	return set
}
