package dmat

import (
	"math"
	"math/rand"
	"testing"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/temporal"
)

// buildTestVenue: one hall with three doors, one stairwell.
func buildTestVenue(t testing.TB) (*model.Venue, []model.DoorID, model.PartitionID) {
	t.Helper()
	b := model.NewBuilder("dm-test")
	hall := b.AddPartition("hall", model.HallwayPartition, geom.NewRect(0, 0, 12, 9, 0))
	east := b.AddPartition("east", model.PublicPartition, geom.NewRect(12, 0, 20, 9, 0))
	north := b.AddPartition("north", model.PublicPartition, geom.NewRect(0, 9, 12, 18, 0))
	hall1 := b.AddPartition("hall1", model.HallwayPartition, geom.NewRect(0, 0, 12, 9, 1))
	sw := b.AddStairwell("sw", geom.NewRect(12, 9, 15, 12, 0))

	d1 := b.AddDoor("d1", model.PublicDoor, geom.Pt(12, 3, 0), nil)
	d2 := b.AddDoor("d2", model.PublicDoor, geom.Pt(4, 9, 0), nil)
	d3 := b.AddDoor("d3", model.PublicDoor, geom.Pt(0, 0, 0), nil)
	sLo := b.AddDoor("s-lo", model.StairDoor, geom.Pt(12, 9, 0), nil)
	sHi := b.AddDoor("s-hi", model.StairDoor, geom.Pt(12, 9, 1), nil)

	b.ConnectBi(d1, hall, east)
	b.ConnectBi(d2, hall, north)
	b.ConnectBi(d3, hall, b.Outdoors())
	b.ConnectBi(sLo, hall, sw)
	b.ConnectBi(sHi, sw, hall1)
	b.SetDistance(sw, sLo, sHi, 20)

	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return v, []model.DoorID{d1, d2, d3, sLo, sHi}, hall
}

func TestBuildEuclidean(t *testing.T) {
	v, ds, hall := buildTestVenue(t)
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2, d3 := ds[0], ds[1], ds[2]
	want12 := math.Hypot(12-4, 3-9)
	if got := s.Dist(hall, d1, d2); math.Abs(got-want12) > 1e-9 {
		t.Errorf("Dist(d1,d2) = %v, want %v", got, want12)
	}
	if got := s.Dist(hall, d2, d1); math.Abs(got-want12) > 1e-9 {
		t.Error("DM must be symmetric")
	}
	if got := s.Dist(hall, d1, d1); got != 0 {
		t.Errorf("diagonal = %v", got)
	}
	want13 := math.Hypot(12, 3)
	if got := s.Dist(hall, d1, d3); math.Abs(got-want13) > 1e-9 {
		t.Errorf("Dist(d1,d3) = %v, want %v", got, want13)
	}
}

func TestStairwellOverride(t *testing.T) {
	v, ds, _ := buildTestVenue(t)
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	var swID model.PartitionID = -1
	for _, p := range v.Partitions() {
		if p.Kind == model.StairwellPartition {
			swID = p.ID
		}
	}
	if got := s.Dist(swID, ds[3], ds[4]); got != 20 {
		t.Errorf("stairway = %v, want override 20", got)
	}
}

func TestStairwellFallback(t *testing.T) {
	b := model.NewBuilder("sw-fallback")
	h0 := b.AddPartition("h0", model.HallwayPartition, geom.NewRect(0, 0, 5, 5, 0))
	h1 := b.AddPartition("h1", model.HallwayPartition, geom.NewRect(0, 0, 5, 5, 1))
	sw := b.AddStairwell("sw", geom.NewRect(5, 0, 8, 3, 0))
	lo := b.AddDoor("lo", model.StairDoor, geom.Pt(5, 1, 0), nil)
	hi := b.AddDoor("hi", model.StairDoor, geom.Pt(5, 2, 1), nil)
	b.ConnectBi(lo, h0, sw)
	b.ConnectBi(hi, sw, h1)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	// No override: planar distance (1) + one flight (20).
	if got := s.Dist(sw, lo, hi); math.Abs(got-21) > 1e-9 {
		t.Errorf("fallback stair distance = %v, want 21", got)
	}
}

func TestCrossFloorNonStairwellFails(t *testing.T) {
	b := model.NewBuilder("bad-floors")
	p := b.AddPartition("p", model.PublicPartition, geom.NewRect(0, 0, 5, 5, 0))
	q := b.AddPartition("q", model.PublicPartition, geom.NewRect(5, 0, 10, 5, 0))
	d1 := b.AddDoor("a", model.PublicDoor, geom.Pt(5, 1, 0), nil)
	d2 := b.AddDoor("b", model.PublicDoor, geom.Pt(5, 2, 1), nil) // wrong floor
	b.ConnectBi(d1, p, q)
	b.ConnectBi(d2, p, q)
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(v); err == nil {
		t.Error("expected cross-floor error for non-stairwell partition")
	}
}

func TestDistUnknownDoor(t *testing.T) {
	v, ds, hall := buildTestVenue(t)
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Dist(hall, ds[0], ds[4]); !math.IsInf(got, 1) {
		t.Errorf("unattached door pair should be +Inf, got %v", got)
	}
	m := s.Matrix(hall)
	if m.Size() != 4 {
		t.Errorf("hall matrix size = %d, want 4", m.Size())
	}
	if _, ok := m.Dist(ds[4], ds[0]); ok {
		t.Error("Dist with unattached door must report !ok")
	}
	if m.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}

func TestPointHelpers(t *testing.T) {
	v, ds, hall := buildTestVenue(t)
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	pt := geom.Pt(6, 3, 0)
	if got := s.PointToDoor(hall, pt, ds[0]); math.Abs(got-6) > 1e-9 {
		t.Errorf("PointToDoor = %v, want 6", got)
	}
	if got := s.PointToDoor(hall, geom.Pt(6, 3, 1), ds[0]); !math.IsInf(got, 1) {
		t.Errorf("cross-floor PointToDoor = %v", got)
	}
	if got := s.PointToDoor(hall, pt, ds[4]); !math.IsInf(got, 1) {
		t.Errorf("unattached PointToDoor = %v", got)
	}
	if got := s.PointToPoint(hall, pt, geom.Pt(6, 8, 0)); math.Abs(got-5) > 1e-9 {
		t.Errorf("PointToPoint = %v, want 5", got)
	}
	if got := s.PointToPoint(hall, pt, geom.Pt(6, 8, 1)); !math.IsInf(got, 1) {
		t.Errorf("cross-floor PointToPoint = %v", got)
	}
}

func TestOverrideBeatsGeometry(t *testing.T) {
	b := model.NewBuilder("ov")
	p := b.AddPartition("p", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	q := b.AddPartition("q", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	r := b.AddPartition("r", model.PublicPartition, geom.NewRect(0, 10, 10, 20, 0))
	d1 := b.AddDoor("d1", model.PublicDoor, geom.Pt(10, 5, 0), temporal.AlwaysOpen())
	d2 := b.AddDoor("d2", model.PublicDoor, geom.Pt(5, 10, 0), nil)
	b.ConnectBi(d1, p, q)
	b.ConnectBi(d2, p, r)
	b.SetDistance(p, d1, d2, 99) // door detour longer than straight line
	v, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Dist(p, d1, d2); got != 99 {
		t.Errorf("override ignored: %v", got)
	}
}

func TestMetricProperties(t *testing.T) {
	// Random door layouts in one rectangle: DM must be a metric
	// (symmetry, identity, triangle inequality) when purely Euclidean.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		b := model.NewBuilder("metric")
		room := b.AddPartition("room", model.PublicPartition, geom.NewRect(0, 0, 50, 40, 0))
		nd := 3 + rng.Intn(5)
		neighbors := make([]model.PartitionID, nd)
		doors := make([]model.DoorID, nd)
		for i := 0; i < nd; i++ {
			neighbors[i] = b.AddPartition("", model.PublicPartition,
				geom.NewRect(60+float64(i)*10, 0, 70+float64(i)*10, 10, 0))
			doors[i] = b.AddDoor("", model.PublicDoor,
				geom.Pt(rng.Float64()*50, rng.Float64()*40, 0), nil)
			b.ConnectBi(doors[i], room, neighbors[i])
		}
		v, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s, err := Build(v)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nd; i++ {
			if d := s.Dist(room, doors[i], doors[i]); d != 0 {
				t.Fatalf("identity violated: %v", d)
			}
			for j := 0; j < nd; j++ {
				dij := s.Dist(room, doors[i], doors[j])
				if dji := s.Dist(room, doors[j], doors[i]); dij != dji {
					t.Fatalf("symmetry violated: %v vs %v", dij, dji)
				}
				for k := 0; k < nd; k++ {
					if dik, dkj := s.Dist(room, doors[i], doors[k]), s.Dist(room, doors[k], doors[j]); dij > dik+dkj+1e-9 {
						t.Fatalf("triangle violated: %v > %v + %v", dij, dik, dkj)
					}
				}
			}
		}
	}
}

func TestVisibilityDistanceConvex(t *testing.T) {
	pg := geom.RectPolygon(geom.NewRect(0, 0, 10, 10, 0))
	d, err := VisibilityDistance(pg, geom.Pt(1, 1, 0), geom.Pt(9, 9, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Hypot(8, 8)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("convex visibility = %v, want %v", d, want)
	}
}

func TestVisibilityDistanceLShape(t *testing.T) {
	pg, err := geom.NewPolygon(
		geom.Pt(0, 0, 0), geom.Pt(10, 0, 0), geom.Pt(10, 5, 0),
		geom.Pt(5, 5, 0), geom.Pt(5, 10, 0), geom.Pt(0, 10, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	a, bp := geom.Pt(9, 4, 0), geom.Pt(4, 9, 0)
	d, err := VisibilityDistance(pg, a, bp)
	if err != nil {
		t.Fatal(err)
	}
	// Shortest path bends at the reflex corner (5,5).
	want := a.DistXY(geom.Pt(5, 5, 0)) + geom.Pt(5, 5, 0).DistXY(bp)
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("L-shape visibility = %v, want %v", d, want)
	}
	// Must exceed the (blocked) straight line.
	if d <= a.DistXY(bp) {
		t.Error("bent path cannot be shorter than the chord")
	}
}

func TestVisibilityDistanceErrors(t *testing.T) {
	pg := geom.RectPolygon(geom.NewRect(0, 0, 10, 10, 0))
	if _, err := VisibilityDistance(pg, geom.Pt(-5, 0, 0), geom.Pt(5, 5, 0)); err == nil {
		t.Error("outside endpoint must fail")
	}
}

func TestSetStats(t *testing.T) {
	v, _, _ := buildTestVenue(t)
	s, err := Build(v)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxDoorsPerPartition(); got != 4 {
		t.Errorf("MaxDoorsPerPartition = %d", got)
	}
	if s.MemoryBytes() <= 0 {
		t.Error("MemoryBytes must be positive")
	}
}
