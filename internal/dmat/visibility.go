package dmat

import (
	"fmt"
	"math"

	"indoorpath/internal/geom"
)

// VisibilityDistance returns the shortest obstacle-free walking distance
// between points a and b inside the simple polygon pg, via a visibility
// graph over the polygon vertices. It generalises the Euclidean DM entry
// to non-convex partitions (irregular hallways before decomposition) and
// is the reference metric the decomposition substrate is validated
// against.
//
// Complexity is O(k^3) for k polygon vertices — fine for the small rooms
// and hallway fragments it is applied to; large irregular hallways go
// through internal/decompose instead.
func VisibilityDistance(pg geom.Polygon, a, b geom.Point) (float64, error) {
	if !pg.Contains(a) || !pg.Contains(b) {
		return 0, fmt.Errorf("dmat: visibility endpoints must lie inside the polygon")
	}
	if pg.Visible(a, b) {
		return a.DistXY(b), nil
	}
	// Nodes: a, b, then polygon vertices.
	nodes := make([]geom.Point, 0, len(pg.Verts)+2)
	nodes = append(nodes, a, b)
	nodes = append(nodes, pg.Verts...)
	n := len(nodes)
	const inf = math.MaxFloat64
	adj := make([][]float64, n)
	for i := range adj {
		adj[i] = make([]float64, n)
		for j := range adj[i] {
			adj[i][j] = inf
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pg.Visible(nodes[i], nodes[j]) {
				d := nodes[i].DistXY(nodes[j])
				adj[i][j], adj[j][i] = d, d
			}
		}
	}
	// Dijkstra from node 0 (a) to node 1 (b); n is tiny, use the simple
	// O(n^2) scan.
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	for iter := 0; iter < n; iter++ {
		u, best := -1, inf
		for i := 0; i < n; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		if u == 1 {
			return dist[1], nil
		}
		done[u] = true
		for w := 0; w < n; w++ {
			if adj[u][w] < inf && dist[u]+adj[u][w] < dist[w] {
				dist[w] = dist[u] + adj[u][w]
			}
		}
	}
	if dist[1] == inf {
		return 0, fmt.Errorf("dmat: no visible path between points (degenerate polygon?)")
	}
	return dist[1], nil
}
