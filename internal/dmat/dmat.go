// Package dmat builds the intra-partition distance matrices (DM) stored
// in the IT-Graph vertex labels. Following Lu, Cao and Jensen (ICDE
// 2012), DM(v, di, dj) is the walking distance between doors di and dj
// inside partition v; the ITSPQ search composes path lengths from these
// matrices plus the source/target segments.
//
// Partitions are convex rectangles after decomposition, so the default
// distance is Euclidean. Three refinements:
//
//   - explicit overrides from the venue builder win (used for stairway
//     lengths and venues transcribed from published tables);
//   - stairwell partitions connect doors on different floors, where the
//     planar metric is meaningless — they must carry an override;
//   - for non-convex (rectilinear) polygons the package also provides a
//     visibility-graph shortest-path distance, used by the decomposition
//     substrate and available for venues that skip decomposition.
package dmat

import (
	"fmt"
	"math"

	"indoorpath/internal/geom"
	"indoorpath/internal/model"
)

// Matrix is the DM of a single partition: symmetric door-to-door
// distances over the doors attached to that partition. The paper sets DM
// to null for single-door partitions; here a 1x1 zero matrix plays that
// role.
type Matrix struct {
	doors []model.DoorID
	idx   map[model.DoorID]int
	d     []float64 // row-major n x n
	max   float64   // largest entry
}

// MaxEntry returns the largest door-to-door distance in the matrix,
// used to bound arrival-time windows during snapshot-pruned expansion.
func (m *Matrix) MaxEntry() float64 { return m.max }

// Doors returns the doors covered by the matrix (shared; do not mutate).
func (m *Matrix) Doors() []model.DoorID { return m.doors }

// Size returns the number of doors.
func (m *Matrix) Size() int { return len(m.doors) }

// Dist returns the intra-partition distance between doors a and b. ok is
// false when either door is not attached to the partition.
func (m *Matrix) Dist(a, b model.DoorID) (float64, bool) {
	i, ok := m.idx[a]
	if !ok {
		return 0, false
	}
	j, ok := m.idx[b]
	if !ok {
		return 0, false
	}
	return m.d[i*len(m.doors)+j], true
}

// set stores a symmetric entry.
func (m *Matrix) set(a, b model.DoorID, dist float64) {
	i, j := m.idx[a], m.idx[b]
	n := len(m.doors)
	m.d[i*n+j] = dist
	m.d[j*n+i] = dist
	if dist > m.max {
		m.max = dist
	}
}

// MemoryBytes estimates the matrix footprint, reported by graph stats.
func (m *Matrix) MemoryBytes() int {
	return len(m.d)*8 + len(m.doors)*4 + len(m.idx)*12
}

// Set holds one Matrix per partition of a venue.
type Set struct {
	venue *model.Venue
	mats  []Matrix
}

// Build computes distance matrices for every partition of the venue.
func Build(v *model.Venue) (*Set, error) {
	s := &Set{venue: v, mats: make([]Matrix, v.PartitionCount())}
	for p := 0; p < v.PartitionCount(); p++ {
		pid := model.PartitionID(p)
		doors := v.DoorsOf(pid)
		m := &s.mats[p]
		m.doors = doors
		m.idx = make(map[model.DoorID]int, len(doors))
		for i, d := range doors {
			m.idx[d] = i
		}
		m.d = make([]float64, len(doors)*len(doors))
		for i := 0; i < len(doors); i++ {
			for j := i + 1; j < len(doors); j++ {
				dist, err := doorDistance(v, pid, doors[i], doors[j])
				if err != nil {
					return nil, err
				}
				m.set(doors[i], doors[j], dist)
			}
		}
	}
	return s, nil
}

// doorDistance resolves the intra-partition distance between two doors,
// trying overrides first, then geometry.
func doorDistance(v *model.Venue, p model.PartitionID, a, b model.DoorID) (float64, error) {
	if d, ok := v.DistOverride(p, a, b); ok {
		return d, nil
	}
	part := v.Partition(p)
	da, db := v.Door(a), v.Door(b)
	if da.Pos.Floor != db.Pos.Floor {
		if part.Kind != model.StairwellPartition {
			return 0, fmt.Errorf(
				"dmat: doors %s and %s of non-stairwell partition %s lie on different floors and no distance override is set",
				da.Name, db.Name, part.Name)
		}
		// Stairwell without an explicit stairway length: fall back to the
		// planar distance plus a nominal flight length per floor.
		const flightLength = 20.0 // metres, the paper's stairway length
		floors := db.Pos.Floor - da.Pos.Floor
		if floors < 0 {
			floors = -floors
		}
		return da.Pos.DistXY(db.Pos) + float64(floors)*flightLength, nil
	}
	return da.Pos.DistXY(db.Pos), nil
}

// Matrix returns partition p's distance matrix.
func (s *Set) Matrix(p model.PartitionID) *Matrix { return &s.mats[p] }

// Dist returns DM(p, a, b), the intra-partition distance between doors a
// and b of partition p. It returns +Inf when either door is not attached
// to p, so a buggy caller surfaces as an unreachable route rather than a
// silently wrong short one.
func (s *Set) Dist(p model.PartitionID, a, b model.DoorID) float64 {
	d, ok := s.mats[p].Dist(a, b)
	if !ok {
		return math.Inf(1)
	}
	return d
}

// PointToDoor returns the walking distance from an in-partition point to
// door d of partition p (Euclidean; partitions are convex after
// decomposition). +Inf when d is not attached to p or floors mismatch.
func (s *Set) PointToDoor(p model.PartitionID, pt geom.Point, d model.DoorID) float64 {
	if _, ok := s.mats[p].idx[d]; !ok {
		return math.Inf(1)
	}
	door := s.venue.Door(d)
	if door.Pos.Floor != pt.Floor {
		return math.Inf(1)
	}
	return pt.DistXY(door.Pos)
}

// PointToPoint returns the in-partition walking distance between two
// points covered by the same (convex) partition.
func (s *Set) PointToPoint(p model.PartitionID, a, b geom.Point) float64 {
	if a.Floor != b.Floor {
		return math.Inf(1)
	}
	return a.DistXY(b)
}

// MemoryBytes estimates the total footprint of all matrices.
func (s *Set) MemoryBytes() int {
	total := 0
	for i := range s.mats {
		total += s.mats[i].MemoryBytes()
	}
	return total
}

// MaxDoorsPerPartition returns the largest matrix dimension, a venue
// complexity indicator used in stats.
func (s *Set) MaxDoorsPerPartition() int {
	max := 0
	for i := range s.mats {
		if n := s.mats[i].Size(); n > max {
			max = n
		}
	}
	return max
}
