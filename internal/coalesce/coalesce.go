// Package coalesce implements the standing cross-batch request
// coalescer of the serving layer: solo Route calls that arrive within
// a few milliseconds of each other are accumulated into one batch and
// flushed through service.Pool.RouteBatchSummary, so shareable
// singletons (same source point, departure and speed — or, for the
// static method, a shared destination) that arrive on separate HTTP
// requests are answered by ONE engine run instead of one each.
//
// The shared-execution batch planner (internal/batchplan, PR 4) only
// helps queries that arrive in the same RouteBatch call; under
// production-style traffic shareable queries arrive milliseconds apart
// on separate requests. The coalescer closes that gap: it trades a
// bounded hold latency (Options.Hold, a few milliseconds) for
// cross-request sharing, the classic request-coalescing pattern from
// batch-scheduling systems.
//
// Guarantees:
//
//   - Every caller receives exactly the service.Result a solo
//     Pool.Route would have produced: a flush is planned with the same
//     internal/batchplan grouping keys and executed with the same
//     engine primitives (RouteMany / RouteManyTo), so the PR 4
//     soundness argument applies unchanged — answers are byte-identical
//     whenever the shortest valid path is unique.
//   - Added latency is bounded: a query waits at most Options.Hold
//     (the flush timer is armed when the first query of a window
//     enqueues) plus the flush's own execution time, and a window
//     flushes immediately when Options.MaxGroup queries are held.
//   - Flushes are swap-atomic: one flush is one RouteBatchSummary
//     call, which pins one pool backend for the whole batch, so a
//     flush racing SetGraph/UpdateSchedules reflects entirely the old
//     or entirely the new graph — a held queue drains old-or-new,
//     never a mix.
//
// The pool should have service.Options.SharedBatch enabled: without
// the planner a flush still deduplicates identical queries but cannot
// share engine runs across distinct targets, which is most of the win.
package coalesce

import (
	"sync"
	"sync/atomic"
	"time"

	"indoorpath/internal/core"
	"indoorpath/internal/obs"
	"indoorpath/internal/service"
)

// Defaults for Options zero values.
const (
	// DefaultHold is the accumulation window: how long the first query
	// of a group waits for companions before the flush timer fires.
	DefaultHold = 2 * time.Millisecond
	// DefaultMaxGroup caps a group's size; reaching it flushes
	// immediately, without waiting out the hold window.
	DefaultMaxGroup = 64
)

// HoldBucketBounds are the upper bounds, in seconds, of the hold-time
// histogram buckets (a final overflow bucket catches everything
// above). The bounds bracket the useful hold range: DefaultHold sits
// in the second bucket, and anything beyond 100ms means the flush
// path is stalled.
var HoldBucketBounds = [...]float64{0.001, 0.002, 0.005, 0.010, 0.025, 0.100}

// Options tune a Coalescer. The zero value is a usable default.
type Options struct {
	// Hold is the accumulation window; <= 0 means DefaultHold. The
	// first query to enqueue into an empty coalescer arms a flush
	// timer for Hold; every query that arrives before it fires joins
	// the same flush.
	Hold time.Duration
	// MaxGroup flushes a group as soon as it holds this many queries,
	// bounding both group size and the worst-case latency pile-up
	// behind one flush; <= 0 means DefaultMaxGroup.
	MaxGroup int
}

// Stats are cumulative coalescer counters, safe to read concurrently
// and JSON-serialisable for the daemon's stats endpoint.
type Stats struct {
	// Queries counts Route calls accepted.
	Queries int64 `json:"queries"`
	// Flushes counts groups executed (including singletons whose hold
	// window expired without company).
	Flushes int64 `json:"flushes"`
	// Groups counts coalesced flushes: flushes that held >= 2 queries,
	// i.e. windows in which cross-request accumulation actually
	// happened.
	Groups int64 `json:"coalesced_groups"`
	// Answers counts queries answered out of a coalesced flush — each
	// was delivered for a fraction of a dedicated engine search
	// whenever the batch planner shared or deduplicated it.
	Answers int64 `json:"coalesced_answers"`
	// HoldBuckets is the per-answer hold-time histogram (time from
	// enqueue to flush start): HoldBuckets[i] counts holds <=
	// HoldBucketBounds[i] seconds but above the previous bound; the
	// final element is the overflow bucket. Non-cumulative.
	HoldBuckets [len(HoldBucketBounds) + 1]int64 `json:"hold_buckets"`
	// HoldSumNanos is the total held time across all answers.
	HoldSumNanos int64 `json:"hold_sum_nanos"`
	// MaxHoldNanos is the largest single hold observed.
	MaxHoldNanos int64 `json:"max_hold_nanos"`
}

// waiter is one enqueued query: its promise channel (buffered, so a
// flush never blocks on delivery — e.g. when the HTTP handler that
// asked has already timed out and gone away) and its arrival time.
type waiter struct {
	q   core.Query
	ch  chan service.Result
	enq time.Time
	tr  *obs.Trace // nil unless the caller is traced
}

// Coalescer is a standing accumulator in front of one service.Pool
// (i.e. one venue and engine method). All methods are safe for
// concurrent use. A Coalescer has no background goroutine of its own:
// flush timers are armed per window and pending queries are always
// answered, so there is nothing to close or drain on shutdown.
type Coalescer struct {
	pool     *service.Pool
	hold     time.Duration
	maxGroup int

	mu      sync.Mutex
	pending []waiter
	// gen identifies the window currently accumulating in pending; a
	// flush timer only acts on the window it was armed for, so a timer
	// outliving its window (flushed early by MaxGroup) cannot cut a
	// newer window short.
	gen uint64

	queries     atomic.Int64
	flushes     atomic.Int64
	groups      atomic.Int64
	answers     atomic.Int64
	holdBuckets [len(HoldBucketBounds) + 1]atomic.Int64
	holdSum     atomic.Int64
	holdMax     atomic.Int64
}

// New builds a Coalescer over a pool. For cross-query sharing the pool
// should have service.Options.SharedBatch enabled (see the package
// comment); the coalescer works — dedup only — without it.
func New(pool *service.Pool, opts Options) *Coalescer {
	if opts.Hold <= 0 {
		opts.Hold = DefaultHold
	}
	if opts.MaxGroup <= 0 {
		opts.MaxGroup = DefaultMaxGroup
	}
	return &Coalescer{pool: pool, hold: opts.Hold, maxGroup: opts.MaxGroup}
}

// Pool returns the pool flushes execute on.
func (c *Coalescer) Pool() *service.Pool { return c.pool }

// Route answers one query, blocking until its window flushes: at most
// the hold window plus the flush's execution time. The result is
// exactly what a solo Pool.Route would have returned, with Coalesced
// set when the flush held more than one query.
func (c *Coalescer) Route(q core.Query) service.Result {
	return c.RouteTraced(nil, q)
}

// RouteTraced is Route recording observability spans onto tr: a hold
// span from enqueue to flush start, then the flush's batch spans
// (plan/probe/engine/store) adopted from the flush's shared
// collector. Since one flush serves every waiter of a window, the
// shared spans appear in each waiter's trace but feed the stage
// histograms exactly once. Nil tr is the untraced fast path.
func (c *Coalescer) RouteTraced(tr *obs.Trace, q core.Query) service.Result {
	c.queries.Add(1)
	w := waiter{q: q, ch: make(chan service.Result, 1), enq: time.Now(), tr: tr}
	c.mu.Lock()
	c.pending = append(c.pending, w)
	if len(c.pending) == 1 && c.maxGroup > 1 {
		gen := c.gen
		time.AfterFunc(c.hold, func() { c.flushGen(gen) })
	}
	var batch []waiter
	if len(c.pending) >= c.maxGroup {
		batch = c.take()
	}
	c.mu.Unlock()
	if batch != nil {
		c.flush(batch)
	}
	return <-w.ch
}

// flushGen is the timer path: flush the pending window iff it is still
// the one the timer was armed for.
func (c *Coalescer) flushGen(gen uint64) {
	c.mu.Lock()
	if c.gen != gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.take()
	c.mu.Unlock()
	c.flush(batch)
}

// take claims the pending window. Callers hold mu.
func (c *Coalescer) take() []waiter {
	batch := c.pending
	c.pending = nil
	c.gen++
	return batch
}

// flush answers one claimed window with a single RouteBatchSummary
// call (one backend pin: the whole flush is atomic under graph swaps)
// and delivers each result to its waiter.
func (c *Coalescer) flush(batch []waiter) {
	start := time.Now()
	qs := make([]core.Query, len(batch))
	// The flush's work is shared by every waiter, so its spans are
	// recorded once on a collector (built from the first traced
	// waiter) and adopted into each waiter's trace afterwards; each
	// waiter's hold span is its own real wait.
	var collector *obs.Trace
	for i, w := range batch {
		qs[i] = w.q
		w.tr.Add(obs.StageHold, w.enq, start.Sub(w.enq), nil)
		if collector == nil {
			collector = w.tr.NewCollector()
		}
	}
	rs, _ := c.pool.RouteBatchSummaryTraced(collector, qs)
	// Counter write order (flushes, then answers, then groups) pairs
	// with the Stats read order so that a concurrent snapshot always
	// satisfies Groups <= Flushes and Answers >= 2*Groups.
	c.flushes.Add(1)
	coalesced := len(batch) >= 2
	if coalesced {
		c.answers.Add(int64(len(batch)))
		c.groups.Add(1)
	}
	var holdSum time.Duration
	for i, w := range batch {
		hold := start.Sub(w.enq)
		c.observeHold(hold)
		if hold > 0 {
			holdSum += hold
		}
		r := rs[i]
		r.Coalesced = coalesced
		w.tr.Adopt(collector)
		w.ch <- r
	}
	// Feed the pool's load ring: one flush, its fan-out, and actual vs
	// configured hold time — the windowed hold-utilization and
	// flush-fan-out signals the adaptive hold policy will steer by. A
	// maxGroup flush that fired early spent less than the configured
	// hold; utilization < 1 measures the headroom.
	c.pool.LoadRing().Feed(obs.LoadSample{
		Flushes:         1,
		FlushedQueries:  int64(len(batch)),
		HoldNanos:       int64(holdSum),
		HoldTargetNanos: int64(c.hold) * int64(len(batch)),
	})
}

// observeHold records one answer's enqueue-to-flush latency.
func (c *Coalescer) observeHold(d time.Duration) {
	if d < 0 {
		d = 0
	}
	secs := d.Seconds()
	i := 0
	for i < len(HoldBucketBounds) && secs > HoldBucketBounds[i] {
		i++
	}
	c.holdBuckets[i].Add(1)
	c.holdSum.Add(int64(d))
	for {
		max := c.holdMax.Load()
		if int64(d) <= max || c.holdMax.CompareAndSwap(max, int64(d)) {
			return
		}
	}
}

// Stats returns a snapshot of the cumulative counters. The counters
// are independent atomics, not one consistent snapshot; Groups is read
// first and Answers/Flushes/Queries after it (mirroring the write
// order in flush: queries at enqueue, then flushes, answers, groups)
// so that every snapshot satisfies Groups <= Flushes, Answers >=
// 2*Groups and Answers <= Queries even while flushes are in flight.
func (c *Coalescer) Stats() Stats {
	groups := c.groups.Load()
	answers := c.answers.Load()
	flushes := c.flushes.Load()
	s := Stats{
		Queries:      c.queries.Load(),
		Flushes:      flushes,
		Groups:       groups,
		Answers:      answers,
		HoldSumNanos: c.holdSum.Load(),
		MaxHoldNanos: c.holdMax.Load(),
	}
	for i := range c.holdBuckets {
		s.HoldBuckets[i] = c.holdBuckets[i].Load()
	}
	return s
}
