package coalesce

import (
	"sync"
	"testing"
	"time"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/service"
	"indoorpath/internal/temporal"
)

// TestCoalescerTraced drives one deterministic two-waiter flush with
// both callers traced and checks that (a) each trace records its own
// hold span plus the adopted flush spans, and (b) the flush's shared
// work feeds the stage histograms exactly once, not once per waiter.
func TestCoalescerTraced(t *testing.T) {
	b := model.NewBuilder("traced")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 10, 10, 0))
	shop := b.AddPartition("shop", model.PublicPartition, geom.NewRect(10, 0, 20, 10, 0))
	d := b.AddDoor("d", model.PublicDoor, geom.Pt(10, 5, 0), nil)
	b.ConnectBi(d, hall, shop)
	pool := service.New(itgraph.MustNew(b.MustBuild()), service.Options{SharedBatch: true, CacheCapacity: -1, WindowCapacity: -1})
	c := New(pool, Options{Hold: time.Hour, MaxGroup: 2})
	o := obs.NewObserver(obs.ObserverOptions{})

	at := temporal.TimeOfDay(10 * 3600)
	qs := []core.Query{
		{Source: geom.Pt(2, 5, 0), Target: geom.Pt(18, 5, 0), At: at},
		{Source: geom.Pt(2, 5, 0), Target: geom.Pt(16, 2, 0), At: at},
	}
	traces := make([]*obs.Trace, len(qs))
	var wg sync.WaitGroup
	for i := range qs {
		traces[i] = o.NewTrace()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := c.RouteTraced(traces[i], qs[i])
			if r.Err != nil {
				t.Errorf("query %d: %v", i, r.Err)
			}
			if !r.Coalesced {
				t.Errorf("query %d not coalesced", i)
			}
		}(i)
	}
	wg.Wait()

	for i, tr := range traces {
		doc := tr.Doc(obs.RequestInfo{})
		stages := map[string]int{}
		for _, s := range doc.Spans {
			stages[s.Stage]++
		}
		if stages["hold"] != 1 {
			t.Errorf("trace %d hold spans = %d, want 1 (%v)", i, stages["hold"], stages)
		}
		if stages["plan"] != 1 || stages["engine"] == 0 {
			t.Errorf("trace %d missing adopted flush spans: %v", i, stages)
		}
	}
	// Shared flush work observed once, per-waiter holds observed per
	// waiter.
	st := o.StageSnapshots()
	if got := st["plan"].Count; got != 1 {
		t.Errorf("plan histogram count = %d, want 1", got)
	}
	if got := st["hold"].Count; got != 2 {
		t.Errorf("hold histogram count = %d, want 2", got)
	}
}
