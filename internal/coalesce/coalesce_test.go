// Coalescer oracle suite: concurrent solo Route calls through a
// standing coalescer must be byte-for-byte (reflect.DeepEqual)
// identical to a sequential per-query engine for every method on the
// jittered fixtures, in steady state and while racing live schedule
// swaps. Tests make flush composition deterministic by setting
// MaxGroup to the wave size and an effectively-infinite hold: the
// N-th concurrent arrival triggers the flush, so every wave is
// exactly one group regardless of scheduling.
package coalesce

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/service"
	"indoorpath/internal/temporal"
)

var allMethods = []core.Method{core.MethodSyn, core.MethodAsyn, core.MethodStatic}

// jitterGridVenue builds a rows×cols grid with randomised door
// positions and schedules (mirroring the service oracle fixtures):
// jittered doors make every shortest path unique, which is the
// condition under which shared-execution answers are byte-identical
// to solo ones.
func jitterGridVenue(t testing.TB, rng *rand.Rand, rows, cols int) *model.Venue {
	t.Helper()
	b := model.NewBuilder(fmt.Sprintf("coalesce-grid-%dx%d", rows, cols))
	const cell = 10.0
	parts := make([][]model.PartitionID, rows)
	for r := 0; r < rows; r++ {
		parts[r] = make([]model.PartitionID, cols)
		for c := 0; c < cols; c++ {
			kind := model.PublicPartition
			corner := (r == 0 || r == rows-1) && (c == 0 || c == cols-1)
			if !corner && rng.Float64() < 0.1 {
				kind = model.PrivatePartition
			}
			parts[r][c] = b.AddPartition(fmt.Sprintf("r%dc%d", r, c), kind,
				geom.NewRect(float64(c)*cell, float64(r)*cell, float64(c+1)*cell, float64(r+1)*cell, 0))
		}
	}
	randSched := func() temporal.Schedule {
		if rng.Intn(3) == 0 {
			return nil // always open
		}
		o := temporal.TimeOfDay(rng.Intn(14) * 3600)
		return temporal.MustSchedule(temporal.MustInterval(o, o+temporal.TimeOfDay(3600*(2+rng.Intn(10)))))
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols && rng.Float64() < 0.94 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c+1)*cell, float64(r)*cell+rng.Float64()*cell, 0), randSched())
				b.ConnectBi(d, parts[r][c], parts[r][c+1])
			}
			if r+1 < rows && rng.Float64() < 0.94 {
				d := b.AddDoor("", model.PublicDoor,
					geom.Pt(float64(c)*cell+rng.Float64()*cell, float64(r+1)*cell, 0), randSched())
				b.ConnectBi(d, parts[r][c], parts[r+1][c])
			}
		}
	}
	return b.MustBuild()
}

func sameOutcome(t *testing.T, label string, gotP *core.Path, gotErr error, wantP *core.Path, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) ||
		(gotErr != nil && gotErr.Error() != wantErr.Error()) {
		t.Fatalf("%s: err = %v, want %v", label, gotErr, wantErr)
	}
	if !reflect.DeepEqual(gotP, wantP) {
		t.Fatalf("%s: path mismatch\n got: %+v\nwant: %+v", label, gotP, wantP)
	}
}

// coalesceWave fires all queries concurrently through the coalescer
// and returns the positionally aligned results.
func coalesceWave(c *Coalescer, qs []core.Query) []service.Result {
	out := make([]service.Result, len(qs))
	var wg sync.WaitGroup
	for i, q := range qs {
		wg.Add(1)
		go func(i int, q core.Query) {
			defer wg.Done()
			out[i] = c.Route(q)
		}(i, q)
	}
	wg.Wait()
	return out
}

// TestCoalescerMatchesSoloAllMethods is the oracle bar: one wave of
// concurrent solo requests — shared-source runs, off-key singletons,
// duplicates and an unlocatable endpoint — must reproduce the
// sequential engine answer for every entry, with strictly fewer
// engine runs than queries.
func TestCoalescerMatchesSoloAllMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(5101))
	v := jitterGridVenue(t, rng, 5, 5)
	g := itgraph.MustNew(v)

	hot := geom.Pt(5, 5, 0)
	at := temporal.Clock(11, 0, 0)
	var qs []core.Query
	for k := 0; k < 10; k++ { // shareable fan-out: one source, one departure
		qs = append(qs, core.Query{Source: hot, Target: geom.Pt(5+float64(k)*4, 45, 0), At: at})
	}
	qs = append(qs,
		core.Query{Source: hot, Target: geom.Pt(45, 45, 0), At: temporal.Clock(15, 0, 0)}, // off-departure
		core.Query{Source: geom.Pt(25, 25, 0), Target: geom.Pt(45, 5, 0), At: at},         // lone pair
		core.Query{Source: hot, Target: geom.Pt(5, 45, 0), At: at},                        // dup seed
		core.Query{Source: hot, Target: geom.Pt(5, 45, 0), At: at},                        // duplicate
		core.Query{Source: geom.Pt(-50, 5, 0), Target: geom.Pt(45, 45, 0), At: at},        // unlocatable
	)

	for _, method := range allMethods {
		seq := core.NewEngine(g, core.Options{Method: method})
		wantPaths := make([]*core.Path, len(qs))
		wantErrs := make([]error, len(qs))
		for i, q := range qs {
			wantPaths[i], _, wantErrs[i] = seq.Route(q)
		}

		pool := service.New(g, service.Options{
			Engine:      core.Options{Method: method},
			Workers:     4,
			SharedBatch: true,
		})
		c := New(pool, Options{Hold: time.Hour, MaxGroup: len(qs)})
		rs := coalesceWave(c, qs)
		for i := range qs {
			label := fmt.Sprintf("method %v query %d", method, i)
			sameOutcome(t, label, rs[i].Path, rs[i].Err, wantPaths[i], wantErrs[i])
			if !rs[i].Coalesced {
				t.Fatalf("%s: not marked coalesced in a %d-query flush", label, len(qs))
			}
		}

		st := c.Stats()
		if st.Queries != int64(len(qs)) || st.Flushes != 1 || st.Groups != 1 || st.Answers != int64(len(qs)) {
			t.Fatalf("method %v: coalescer stats = %+v, want one full flush of %d", method, st, len(qs))
		}
		ps := pool.Stats()
		if ps.Queries != int64(len(qs)) {
			t.Fatalf("method %v: pool queries = %d, want %d (coalesced dedup double-counted?)",
				method, ps.Queries, len(qs))
		}
		if ps.EngineSearches >= int64(len(qs)) {
			t.Fatalf("method %v: %d engine runs for %d coalesced queries — nothing shared", method, ps.EngineSearches, len(qs))
		}
		// The service partition invariant must hold with the coalescer
		// in front: hits + windows + misses + deduped == queries.
		if ps.CacheHits+ps.WindowHits+ps.CacheMisses()+ps.Deduped != ps.Queries {
			t.Fatalf("method %v: stats do not partition: %+v", method, ps)
		}
	}
}

// TestCoalescerSingletonFlush: a query with no company is flushed by
// the hold timer — answered exactly like a solo Route, not marked
// coalesced, and held no shorter than the window.
func TestCoalescerSingletonFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(5201))
	v := jitterGridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	pool := service.New(g, service.Options{Engine: core.Options{Method: core.MethodAsyn}, SharedBatch: true})
	const hold = 20 * time.Millisecond
	c := New(pool, Options{Hold: hold, MaxGroup: 64})

	q := core.Query{Source: geom.Pt(5, 5, 0), Target: geom.Pt(35, 35, 0), At: temporal.Clock(12, 0, 0)}
	start := time.Now()
	res := c.Route(q)
	elapsed := time.Since(start)

	wantPath, _, wantErr := core.NewEngine(g, core.Options{Method: core.MethodAsyn}).Route(q)
	sameOutcome(t, "singleton", res.Path, res.Err, wantPath, wantErr)
	if res.Coalesced {
		t.Fatal("singleton flush must not be marked coalesced")
	}
	if elapsed < hold/2 {
		t.Fatalf("singleton answered after %v, before the %v hold window could fire", elapsed, hold)
	}
	st := c.Stats()
	if st.Flushes != 1 || st.Groups != 0 || st.Answers != 0 || st.Queries != 1 {
		t.Fatalf("singleton stats = %+v", st)
	}
	if st.HoldSumNanos <= 0 || st.MaxHoldNanos <= 0 {
		t.Fatalf("hold histogram not fed: %+v", st)
	}
}

// TestCoalescerMaxGroupCaps: the size cap flushes immediately — two
// waves of MaxGroup arrivals become exactly two coalesced groups, and
// no waiter is lost or double-answered.
func TestCoalescerMaxGroupCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(5301))
	v := jitterGridVenue(t, rng, 4, 4)
	g := itgraph.MustNew(v)
	pool := service.New(g, service.Options{Engine: core.Options{Method: core.MethodAsyn}, SharedBatch: true})
	c := New(pool, Options{Hold: time.Hour, MaxGroup: 4})

	src := geom.Pt(5, 5, 0)
	var qs []core.Query
	for k := 0; k < 8; k++ {
		qs = append(qs, core.Query{Source: src, Target: geom.Pt(5+float64(k)*4, 35, 0), At: temporal.Clock(10, 0, 0)})
	}
	rs := coalesceWave(c, qs)
	seq := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
	for i, q := range qs {
		wantPath, _, wantErr := seq.Route(q)
		sameOutcome(t, fmt.Sprintf("query %d", i), rs[i].Path, rs[i].Err, wantPath, wantErr)
	}
	st := c.Stats()
	if st.Flushes != 2 || st.Groups != 2 || st.Answers != 8 || st.Queries != 8 {
		t.Fatalf("stats = %+v, want exactly two capped flushes of 4", st)
	}
}

// TestCoalescerObserveHoldBuckets pins the histogram bucketing: each
// observation lands in the first bucket whose bound is >= the hold.
func TestCoalescerObserveHoldBuckets(t *testing.T) {
	c := New(nil, Options{})
	c.observeHold(500 * time.Microsecond)  // <= 1ms: bucket 0
	c.observeHold(1500 * time.Microsecond) // <= 2ms: bucket 1
	c.observeHold(2 * time.Millisecond)    // boundary is inclusive: bucket 1
	c.observeHold(time.Second)             // overflow bucket
	c.observeHold(-time.Millisecond)       // clamped to 0: bucket 0
	st := c.Stats()
	want := [len(HoldBucketBounds) + 1]int64{2, 2, 0, 0, 0, 0, 1}
	if st.HoldBuckets != want {
		t.Fatalf("buckets = %v, want %v", st.HoldBuckets, want)
	}
	if st.MaxHoldNanos != int64(time.Second) {
		t.Fatalf("max hold = %d, want 1s", st.MaxHoldNanos)
	}
}

// TestCoalescerRacingUpdateSchedules: a held queue racing live
// schedule swaps must drain old-or-new atomically. Every wave is one
// flush (MaxGroup = wave size), one flush is one RouteBatchSummary
// call pinning one pool backend, so the whole wave's answers must
// reflect schedule set A in full or set B in full — never a mix. Run
// under -race. (SetGraph is the exact swap entry point
// UpdateSchedules delegates to; using prebuilt graphs keeps the
// expected answers precomputable.)
func TestCoalescerRacingUpdateSchedules(t *testing.T) {
	// Two-door venue: set A opens only the near door, set B only the
	// far one, so every query's answer differs between the two sets.
	b := model.NewBuilder("coalesce-swap-race")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(0, 10, 20, 20, 0))
	near := b.AddDoor("near", model.PublicDoor, geom.Pt(2, 10, 0), nil)
	far := b.AddDoor("far", model.PublicDoor, geom.Pt(18, 10, 0), nil)
	b.ConnectBi(near, hall, room)
	b.ConnectBi(far, hall, room)
	v := b.MustBuild()
	nearID, _ := v.DoorByName("near")
	farID, _ := v.DoorByName("far")
	closed := temporal.Schedule{}
	vA, err := v.WithSchedules(map[model.DoorID]temporal.Schedule{nearID: nil, farID: closed})
	if err != nil {
		t.Fatal(err)
	}
	vB, err := v.WithSchedules(map[model.DoorID]temporal.Schedule{nearID: closed, farID: nil})
	if err != nil {
		t.Fatal(err)
	}
	gA, gB := itgraph.MustNew(vA), itgraph.MustNew(vB)

	src := geom.Pt(3, 5, 0)
	var qs []core.Query
	for k := 0; k < 8; k++ {
		qs = append(qs, core.Query{Source: src, Target: geom.Pt(2+float64(k)*2, 15, 0), At: temporal.Clock(9, 0, 0)})
	}
	answersOn := func(g *itgraph.Graph) []*core.Path {
		e := core.NewEngine(g, core.Options{Method: core.MethodAsyn})
		out := make([]*core.Path, len(qs))
		for i, q := range qs {
			p, _, err := e.Route(q)
			if err != nil {
				t.Fatalf("oracle on %v: %v", q, err)
			}
			out[i] = p
		}
		return out
	}
	wantA, wantB := answersOn(gA), answersOn(gB)

	pool := service.New(gA, service.Options{
		Engine:      core.Options{Method: core.MethodAsyn},
		Workers:     4,
		SharedBatch: true,
	})
	c := New(pool, Options{Hold: time.Hour, MaxGroup: len(qs)})

	done := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			if i%2 == 0 {
				pool.SetGraph(gB)
			} else {
				pool.SetGraph(gA)
			}
		}
	}()

	for rep := 0; rep < 50; rep++ {
		rs := coalesceWave(c, qs)
		matchesA, matchesB := true, true
		for i, r := range rs {
			if r.Err != nil {
				t.Fatalf("rep %d query %d: %v", rep, i, r.Err)
			}
			if !reflect.DeepEqual(r.Path, wantA[i]) {
				matchesA = false
			}
			if !reflect.DeepEqual(r.Path, wantB[i]) {
				matchesB = false
			}
		}
		if !matchesA && !matchesB {
			t.Fatalf("rep %d: coalesced flush matches neither schedule set in full — the held queue drained a mix", rep)
		}
	}
	close(done)
	swapper.Wait()

	// Quiesced epilogue on set A: sharing engages and stays identical.
	pool.SetGraph(gA)
	rs := coalesceWave(c, qs)
	for i, r := range rs {
		if r.Err != nil || !reflect.DeepEqual(r.Path, wantA[i]) {
			t.Fatalf("epilogue query %d: err=%v, path mismatch", i, r.Err)
		}
	}
	if st := c.Stats(); st.Groups < 51 {
		t.Fatalf("coalesced groups = %d, want one per wave", st.Groups)
	}
}
