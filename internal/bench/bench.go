// Package bench is the experiment harness that regenerates every figure
// of the paper's evaluation (Liu et al., ICDE 2020, Section III): search
// time vs |T| (Fig. 4), vs δs2t (Fig. 5), vs query time t (Fig. 6), and
// memory cost vs t (Fig. 7), plus the ablation studies documented in
// DESIGN.md. It is consumed by cmd/experiments and by the testing.B
// benchmarks in the repository root.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"indoorpath/internal/core"
	"indoorpath/internal/dmat"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/synth"
	"indoorpath/internal/temporal"
)

// Config controls venue scale and measurement effort. The zero value
// reproduces the paper's defaults.
type Config struct {
	// Floors of the synthetic mall (paper default 5).
	Floors int
	// QueryCount is the number of query instances per setting (paper: 5).
	QueryCount int
	// RunsPerQuery is how often each instance is repeated (paper: 10).
	RunsPerQuery int
	// Seed drives venue and query generation.
	Seed int64
	// Quick shrinks the workload (1 floor, 3 queries, 3 runs) for smoke
	// tests and CI.
	Quick bool
}

func (c Config) normalised() Config {
	if c.Floors == 0 {
		c.Floors = 5
	}
	if c.QueryCount == 0 {
		c.QueryCount = 5
	}
	if c.RunsPerQuery == 0 {
		c.RunsPerQuery = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Quick {
		c.Floors = 1
		c.QueryCount = 3
		c.RunsPerQuery = 3
	}
	return c
}

// maxS2T returns a δs2t feasible for the venue scale (single-floor quick
// runs cannot host 1900 m paths comfortably, so sweeps shrink).
func (c Config) scaleS2T(s2t float64) float64 {
	if c.Floors >= 2 {
		return s2t
	}
	return s2t * 0.5
}

// Measurement aggregates one (method, setting) cell.
type Measurement struct {
	Method string
	// AvgTimeUS is the mean per-query wall time in microseconds.
	AvgTimeUS float64
	// AvgAllocBytes is the mean per-query heap allocation (runtime
	// TotalAlloc delta).
	AvgAllocBytes float64
	// AvgEstBytes is the mean per-query modelled working set
	// (SearchStats.BytesEstimate), the deterministic Fig. 7 metric.
	AvgEstBytes float64
	// Found / Total count answered vs issued queries.
	Found, Total int
	// AvgPops/AvgChecks characterise search effort.
	AvgPops, AvgChecks float64
}

// measure runs every query RunsPerQuery times on a fresh engine and
// averages. One untimed warmup pass absorbs lazily built snapshots
// (Graph_Update amortises across queries in the paper's asynchronous
// design) and allocator warmup.
func measure(g *itgraph.Graph, opts core.Options, qs []core.Query, runs int) Measurement {
	e := core.NewEngine(g, opts)
	for _, q := range qs {
		if _, _, err := e.RouteOrNil(q); err != nil {
			// Surfacing engine misuse loudly beats silently timing noise.
			panic(fmt.Sprintf("bench: warmup query failed: %v", err))
		}
	}
	m := Measurement{Method: e.MethodName()}
	// Settle the heap so venue-construction garbage is not collected
	// inside the timed section.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	allocBefore := ms.TotalAlloc

	// Three timed passes; the fastest one is reported, suppressing GC
	// pauses and scheduler noise at the microsecond scale.
	const passes = 3
	best := time.Duration(1<<62 - 1)
	for p := 0; p < passes; p++ {
		start := time.Now()
		for r := 0; r < runs; r++ {
			for _, q := range qs {
				e.RouteOrNil(q)
			}
		}
		if elapsed := time.Since(start); elapsed < best {
			best = elapsed
		}
	}
	runtime.ReadMemStats(&ms)
	// One counting pass (untimed) for the work metrics.
	for r := 0; r < runs; r++ {
		for _, q := range qs {
			p, st, _ := e.RouteOrNil(q)
			m.Total++
			if p != nil {
				m.Found++
			}
			m.AvgEstBytes += float64(st.BytesEstimate)
			m.AvgPops += float64(st.Pops)
			m.AvgChecks += float64(st.Checker.Checks)
		}
	}
	n := float64(m.Total)
	m.AvgTimeUS = float64(best.Microseconds()) / n
	m.AvgAllocBytes = float64(ms.TotalAlloc-allocBefore) / n / passes
	m.AvgEstBytes /= n
	m.AvgPops /= n
	m.AvgChecks /= n
	return m
}

// Series is one line of a figure.
type Series struct {
	Name string
	Ys   []float64
}

// FigureData is a regenerated figure: x tick labels and one or more
// series, with the measurement unit recorded.
type FigureData struct {
	ID     string
	Title  string
	XLabel string
	Unit   string
	Xs     []string
	Series []Series
	// Cells holds the full measurements, indexed [series][x].
	Cells [][]Measurement
}

// newFigure allocates a figure shell.
func newFigure(id, title, xlabel, unit string, xs []string, seriesNames []string) *FigureData {
	fd := &FigureData{ID: id, Title: title, XLabel: xlabel, Unit: unit, Xs: xs}
	for _, n := range seriesNames {
		fd.Series = append(fd.Series, Series{Name: n, Ys: make([]float64, len(xs))})
		fd.Cells = append(fd.Cells, make([]Measurement, len(xs)))
	}
	return fd
}

func (fd *FigureData) set(si, xi int, m Measurement, y float64) {
	fd.Series[si].Ys[xi] = y
	fd.Cells[si][xi] = m
}

// buildVenue generates the mall for a given |T| and wraps it in an
// IT-Graph plus generated queries.
type testbed struct {
	mall    *synth.Mall
	graph   *itgraph.Graph
	queries []core.Query
}

func makeTestbed(cfg Config, tSize int, s2t float64, at temporal.TimeOfDay) (*testbed, error) {
	m, err := synth.GenerateMall(synth.MallConfig{
		Floors: cfg.Floors,
		Seed:   cfg.Seed,
		ATI:    synth.ATIConfig{CheckpointCount: tSize, Seed: cfg.Seed + 1},
	})
	if err != nil {
		return nil, err
	}
	dm, err := dmat.Build(m.Venue)
	if err != nil {
		return nil, err
	}
	qis, err := synth.GenerateQueries(m, dm, synth.QueryConfig{
		S2T: s2t, Count: cfg.QueryCount, Seed: cfg.Seed + 2,
	})
	if err != nil {
		return nil, err
	}
	g, err := itgraph.New(m.Venue)
	if err != nil {
		return nil, err
	}
	tb := &testbed{mall: m, graph: g}
	for _, qi := range qis {
		tb.queries = append(tb.queries, core.Query{Source: qi.Source, Target: qi.Target, At: at})
	}
	return tb, nil
}

// atTime returns a copy of the query set with a different query time.
func (tb *testbed) atTime(at temporal.TimeOfDay) []core.Query {
	out := make([]core.Query, len(tb.queries))
	for i, q := range tb.queries {
		q.At = at
		out[i] = q
	}
	return out
}
