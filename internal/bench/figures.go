package bench

import (
	"fmt"

	"indoorpath/internal/core"
	"indoorpath/internal/temporal"
)

// Paper parameter grids (Table II; defaults bold: |T|=8, δs2t=1500,
// t=12:00).
var (
	CheckpointGrid = []int{4, 8, 12, 16}
	S2TGrid        = []float64{1100, 1300, 1500, 1700, 1900}
	TimeGrid       = []temporal.TimeOfDay{
		temporal.Clock(0, 0, 0), temporal.Clock(2, 0, 0), temporal.Clock(4, 0, 0),
		temporal.Clock(6, 0, 0), temporal.Clock(8, 0, 0), temporal.Clock(10, 0, 0),
		temporal.Clock(12, 0, 0), temporal.Clock(14, 0, 0), temporal.Clock(16, 0, 0),
		temporal.Clock(18, 0, 0), temporal.Clock(20, 0, 0), temporal.Clock(22, 0, 0),
	}
	DefaultT   = 8
	DefaultS2T = 1500.0
	DefaultAt  = temporal.Clock(12, 0, 0)
)

// RunFig4 regenerates Figure 4 (search time vs |T|) with the paper's
// four series: ITG/S and ITG/A at t=12:00 and at t=8:00.
func RunFig4(cfg Config) (*FigureData, error) {
	cfg = cfg.normalised()
	xs := make([]string, len(CheckpointGrid))
	for i, t := range CheckpointGrid {
		xs[i] = fmt.Sprintf("%d", t)
	}
	fd := newFigure("fig4", "Search Time vs |T|", "|T|", "us",
		xs, []string{"ITG/S(t=12)", "ITG/A(t=12)", "ITG/S(t=8)", "ITG/A(t=8)"})
	for xi, tSize := range CheckpointGrid {
		tb, err := makeTestbed(cfg, tSize, cfg.scaleS2T(DefaultS2T), DefaultAt)
		if err != nil {
			return nil, fmt.Errorf("bench fig4 |T|=%d: %w", tSize, err)
		}
		qNoon := tb.atTime(temporal.Clock(12, 0, 0))
		qMorn := tb.atTime(temporal.Clock(8, 0, 0))
		for si, run := range []struct {
			opts core.Options
			qs   []core.Query
		}{
			{core.Options{Method: core.MethodSyn}, qNoon},
			{core.Options{Method: core.MethodAsyn}, qNoon},
			{core.Options{Method: core.MethodSyn}, qMorn},
			{core.Options{Method: core.MethodAsyn}, qMorn},
		} {
			m := measure(tb.graph, run.opts, run.qs, cfg.RunsPerQuery)
			fd.set(si, xi, m, m.AvgTimeUS)
		}
	}
	return fd, nil
}

// RunFig5 regenerates Figure 5 (search time vs δs2t) at the defaults
// |T|=8, t=12:00.
func RunFig5(cfg Config) (*FigureData, error) {
	cfg = cfg.normalised()
	xs := make([]string, len(S2TGrid))
	for i, d := range S2TGrid {
		xs[i] = fmt.Sprintf("%.0f", cfg.scaleS2T(d))
	}
	fd := newFigure("fig5", "Search Time vs δs2t", "δs2t (m)", "us",
		xs, []string{"ITG/S", "ITG/A"})
	for xi, s2t := range S2TGrid {
		tb, err := makeTestbed(cfg, DefaultT, cfg.scaleS2T(s2t), DefaultAt)
		if err != nil {
			return nil, fmt.Errorf("bench fig5 δ=%v: %w", s2t, err)
		}
		for si, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
			meas := measure(tb.graph, core.Options{Method: m}, tb.queries, cfg.RunsPerQuery)
			fd.set(si, xi, meas, meas.AvgTimeUS)
		}
	}
	return fd, nil
}

// RunFig6And7 regenerates Figure 6 (search time vs t) and Figure 7
// (memory cost vs t) in one sweep, as the paper varies only the query
// time over a fixed venue and query set.
func RunFig6And7(cfg Config) (timeFig, memFig *FigureData, err error) {
	cfg = cfg.normalised()
	xs := make([]string, len(TimeGrid))
	for i, at := range TimeGrid {
		xs[i] = fmt.Sprintf("%d", int(float64(at)/3600))
	}
	timeFig = newFigure("fig6", "Search Time vs t", "t (o'clock)", "us",
		xs, []string{"ITG/S", "ITG/A"})
	memFig = newFigure("fig7", "Memory Cost vs t", "t (o'clock)", "KB",
		xs, []string{"ITG/S", "ITG/A"})
	tb, err := makeTestbed(cfg, DefaultT, cfg.scaleS2T(DefaultS2T), DefaultAt)
	if err != nil {
		return nil, nil, fmt.Errorf("bench fig6/7: %w", err)
	}
	for xi, at := range TimeGrid {
		qs := tb.atTime(at)
		for si, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
			meas := measure(tb.graph, core.Options{Method: m}, qs, cfg.RunsPerQuery)
			timeFig.set(si, xi, meas, meas.AvgTimeUS)
			memFig.set(si, xi, meas, meas.AvgEstBytes/1024)
		}
	}
	return timeFig, memFig, nil
}

// RunAblationHeapInit compares lazy heap insertion with the literal
// "enheap every door at ∞" initialisation of Algorithm 1 (A1).
func RunAblationHeapInit(cfg Config) (*FigureData, error) {
	cfg = cfg.normalised()
	fd := newFigure("a1", "Heap Init: lazy vs eager (time)", "variant", "us",
		[]string{"ITG/S", "ITG/A"}, []string{"lazy", "eager"})
	tb, err := makeTestbed(cfg, DefaultT, cfg.scaleS2T(DefaultS2T), DefaultAt)
	if err != nil {
		return nil, err
	}
	for xi, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
		lazy := measure(tb.graph, core.Options{Method: m}, tb.queries, cfg.RunsPerQuery)
		eager := measure(tb.graph, core.Options{Method: m, EagerHeapInit: true}, tb.queries, cfg.RunsPerQuery)
		fd.set(0, xi, lazy, lazy.AvgTimeUS)
		fd.set(1, xi, eager, eager.AvgTimeUS)
	}
	return fd, nil
}

// RunAblationDM compares distance-matrix lookups with on-the-fly
// Euclidean recomputation (A3).
func RunAblationDM(cfg Config) (*FigureData, error) {
	cfg = cfg.normalised()
	fd := newFigure("a3", "Distance source: DM vs recompute (time)", "variant", "us",
		[]string{"ITG/S"}, []string{"DM lookup", "recompute"})
	tb, err := makeTestbed(cfg, DefaultT, cfg.scaleS2T(DefaultS2T), DefaultAt)
	if err != nil {
		return nil, err
	}
	withDM := measure(tb.graph, core.Options{Method: core.MethodSyn}, tb.queries, cfg.RunsPerQuery)
	noDM := measure(tb.graph, core.Options{Method: core.MethodSyn, NoDistanceMatrix: true}, tb.queries, cfg.RunsPerQuery)
	fd.set(0, 0, withDM, withDM.AvgTimeUS)
	fd.set(1, 0, noDM, noDM.AvgTimeUS)
	return fd, nil
}

// RunAblationPartitionExpansion compares the exact multi-entry
// expansion (default) with the literal "visited partitions" pruning of
// Algorithm 1 line 18 (A6), reporting both time and result quality
// (average path length — the literal variant may return longer paths).
func RunAblationPartitionExpansion(cfg Config) (*FigureData, error) {
	cfg = cfg.normalised()
	fd := newFigure("a6", "Partition expansion: exact vs literal (time)", "variant", "us",
		[]string{"ITG/S", "ITG/A"}, []string{"exact", "literal"})
	tb, err := makeTestbed(cfg, DefaultT, cfg.scaleS2T(DefaultS2T), DefaultAt)
	if err != nil {
		return nil, err
	}
	for xi, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
		exact := measure(tb.graph, core.Options{Method: m}, tb.queries, cfg.RunsPerQuery)
		literal := measure(tb.graph, core.Options{Method: m, SinglePartitionExpansion: true}, tb.queries, cfg.RunsPerQuery)
		fd.set(0, xi, exact, exact.AvgTimeUS)
		fd.set(1, xi, literal, literal.AvgTimeUS)
	}
	return fd, nil
}

// PathQualityComparison reports average path length of the exact vs
// literal expansion on one testbed (used by cmd/experiments -fig a6 and
// EXPERIMENTS.md to quantify the literal variant's suboptimality).
func PathQualityComparison(cfg Config) (exactAvg, literalAvg float64, err error) {
	cfg = cfg.normalised()
	tb, err := makeTestbed(cfg, DefaultT, cfg.scaleS2T(DefaultS2T), DefaultAt)
	if err != nil {
		return 0, 0, err
	}
	sum := func(opts core.Options) float64 {
		e := core.NewEngine(tb.graph, opts)
		total, n := 0.0, 0
		for _, q := range tb.queries {
			if p, _, _ := e.RouteOrNil(q); p != nil {
				total += p.Length
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return total / float64(n)
	}
	return sum(core.Options{Method: core.MethodSyn}),
		sum(core.Options{Method: core.MethodSyn, SinglePartitionExpansion: true}), nil
}

// RunAblationFloors measures search time as the venue grows (A5).
func RunAblationFloors(cfg Config, floors []int) (*FigureData, error) {
	cfg = cfg.normalised()
	if len(floors) == 0 {
		floors = []int{1, 3, 5, 7}
	}
	xs := make([]string, len(floors))
	for i, f := range floors {
		xs[i] = fmt.Sprintf("%d", f)
	}
	fd := newFigure("a5", "Search Time vs floors", "floors", "us",
		xs, []string{"ITG/S", "ITG/A"})
	for xi, f := range floors {
		sub := cfg
		sub.Floors = f
		sub.Quick = false
		tb, err := makeTestbed(sub, DefaultT, sub.scaleS2T(DefaultS2T), DefaultAt)
		if err != nil {
			return nil, fmt.Errorf("bench a5 floors=%d: %w", f, err)
		}
		for si, m := range []core.Method{core.MethodSyn, core.MethodAsyn} {
			meas := measure(tb.graph, core.Options{Method: m}, tb.queries, cfg.RunsPerQuery)
			fd.set(si, xi, meas, meas.AvgTimeUS)
		}
	}
	return fd, nil
}
