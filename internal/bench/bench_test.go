package bench

import (
	"strings"
	"testing"

	"indoorpath/internal/core"
	"indoorpath/internal/temporal"
)

func quickCfg() Config {
	return Config{Quick: true, Seed: 42}
}

func TestMakeTestbed(t *testing.T) {
	tb, err := makeTestbed(quickCfg().normalised(), 8, 750, DefaultAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.queries) != 3 {
		t.Fatalf("queries = %d", len(tb.queries))
	}
	qs := tb.atTime(temporal.Clock(8, 0, 0))
	if qs[0].At != temporal.Clock(8, 0, 0) {
		t.Error("atTime did not retime")
	}
	if tb.queries[0].At != DefaultAt {
		t.Error("atTime must not mutate the original")
	}
}

func TestMeasure(t *testing.T) {
	cfg := quickCfg().normalised()
	tb, err := makeTestbed(cfg, 8, 750, DefaultAt)
	if err != nil {
		t.Fatal(err)
	}
	m := measure(tb.graph, core.Options{Method: core.MethodSyn}, tb.queries, 2)
	if m.Total != len(tb.queries)*2 {
		t.Errorf("total = %d", m.Total)
	}
	if m.Found == 0 {
		t.Error("no queries answered at noon")
	}
	if m.AvgTimeUS <= 0 || m.AvgEstBytes <= 0 || m.AvgPops <= 0 {
		t.Errorf("bad measurement: %+v", m)
	}
	if m.Method != "ITG/S" {
		t.Errorf("method = %q", m.Method)
	}
}

func TestRunFig4Quick(t *testing.T) {
	fd, err := RunFig4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Xs) != 4 || len(fd.Series) != 4 {
		t.Fatalf("fig4 shape: %d xs, %d series", len(fd.Xs), len(fd.Series))
	}
	for _, s := range fd.Series {
		for i, y := range s.Ys {
			if y <= 0 {
				t.Errorf("series %s point %d non-positive: %v", s.Name, i, y)
			}
		}
	}
}

func TestRunFig5Quick(t *testing.T) {
	fd, err := RunFig5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Xs) != 5 || len(fd.Series) != 2 {
		t.Fatalf("fig5 shape: %d xs, %d series", len(fd.Xs), len(fd.Series))
	}
}

func TestRunFig6And7Quick(t *testing.T) {
	f6, f7, err := RunFig6And7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Xs) != 12 || len(f7.Xs) != 12 {
		t.Fatalf("fig6/7 xs: %d, %d", len(f6.Xs), len(f7.Xs))
	}
	// Shape check: midnight searches must be cheaper than noon searches
	// (temporal doors all closed → tiny reachable graph).
	for _, fd := range []*FigureData{f6, f7} {
		for _, s := range fd.Series {
			night := s.Ys[0] // 0:00
			noon := s.Ys[6]  // 12:00
			if night >= noon {
				t.Errorf("%s %s: night %.1f >= noon %.1f — plateau shape violated",
					fd.ID, s.Name, night, noon)
			}
		}
	}
	// Memory unit sanity: noon working set within 1KB..100MB.
	noonMem := f7.Series[0].Ys[6]
	if noonMem < 1 || noonMem > 100*1024 {
		t.Errorf("noon memory = %v KB out of sane range", noonMem)
	}
}

func TestAblations(t *testing.T) {
	if _, err := RunAblationHeapInit(quickCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunAblationDM(quickCfg()); err != nil {
		t.Fatal(err)
	}
	fd, err := RunAblationFloors(quickCfg(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fd.Xs) != 2 {
		t.Fatalf("a5 xs = %d", len(fd.Xs))
	}
}

func TestRenderers(t *testing.T) {
	fd := newFigure("figX", "Demo", "x", "us", []string{"1", "2"}, []string{"A", "B"})
	fd.set(0, 0, Measurement{AvgTimeUS: 1}, 1234.5)
	fd.set(0, 1, Measurement{}, 12.34)
	fd.set(1, 0, Measurement{}, 0.5)
	fd.set(1, 1, Measurement{}, 99)
	table := RenderTable(fd)
	if !strings.Contains(table, "FIGX") || !strings.Contains(table, "1234") {
		t.Errorf("table rendering:\n%s", table)
	}
	csv := RenderCSV(fd)
	if !strings.HasPrefix(csv, "x,A,B\n") {
		t.Errorf("csv header: %q", csv)
	}
	if !strings.Contains(csv, "1,1234.5,0.5") {
		t.Errorf("csv body: %q", csv)
	}
	if s := Summary(fd); !strings.Contains(s, "figX") {
		t.Errorf("summary: %q", s)
	}
	if csvEscape(`a,"b`) != `"a,""b"` {
		t.Error("csv escaping")
	}
}
