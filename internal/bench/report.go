package bench

import (
	"fmt"
	"strings"
)

// RenderTable renders a figure as an aligned plain-text table, one row
// per x tick and one column per series — the shape of the paper's plot
// data.
func RenderTable(fd *FigureData) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s (%s)\n", strings.ToUpper(fd.ID), fd.Title, fd.Unit)
	// Header.
	cols := make([]int, len(fd.Series)+1)
	cols[0] = len(fd.XLabel)
	for _, x := range fd.Xs {
		if len(x) > cols[0] {
			cols[0] = len(x)
		}
	}
	for i, s := range fd.Series {
		cols[i+1] = len(s.Name)
		for _, y := range s.Ys {
			if n := len(formatY(y)); n > cols[i+1] {
				cols[i+1] = n
			}
		}
	}
	fmt.Fprintf(&sb, "  %-*s", cols[0], fd.XLabel)
	for i, s := range fd.Series {
		fmt.Fprintf(&sb, "  %*s", cols[i+1], s.Name)
	}
	sb.WriteByte('\n')
	for xi, x := range fd.Xs {
		fmt.Fprintf(&sb, "  %-*s", cols[0], x)
		for si := range fd.Series {
			fmt.Fprintf(&sb, "  %*s", cols[si+1], formatY(fd.Series[si].Ys[xi]))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatY(y float64) string {
	switch {
	case y >= 1000:
		return fmt.Sprintf("%.0f", y)
	case y >= 10:
		return fmt.Sprintf("%.1f", y)
	default:
		return fmt.Sprintf("%.2f", y)
	}
}

// RenderCSV renders a figure as CSV: header "x,series...", one row per
// tick.
func RenderCSV(fd *FigureData) string {
	var sb strings.Builder
	sb.WriteString(csvEscape(fd.XLabel))
	for _, s := range fd.Series {
		sb.WriteByte(',')
		sb.WriteString(csvEscape(s.Name))
	}
	sb.WriteByte('\n')
	for xi, x := range fd.Xs {
		sb.WriteString(csvEscape(x))
		for si := range fd.Series {
			fmt.Fprintf(&sb, ",%g", fd.Series[si].Ys[xi])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Summary renders per-cell diagnostics (found counts, pops, checks) for
// EXPERIMENTS.md appendices.
func Summary(fd *FigureData) string {
	var sb strings.Builder
	for si, s := range fd.Series {
		for xi, x := range fd.Xs {
			c := fd.Cells[si][xi]
			fmt.Fprintf(&sb, "%s %s=%s: %s time=%.1fus est=%.1fKB alloc=%.1fKB found=%d/%d pops=%.0f checks=%.0f\n",
				fd.ID, fd.XLabel, x, s.Name, c.AvgTimeUS, c.AvgEstBytes/1024,
				c.AvgAllocBytes/1024, c.Found, c.Total, c.AvgPops, c.AvgChecks)
		}
	}
	return sb.String()
}
