package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"indoorpath/internal/service"
)

// newTinyCacheTestServer boots a hospital-only registry whose exact
// result cache holds four entries, so eviction pressure is cheap to
// force.
func newTinyCacheTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	reg := NewRegistry(service.Options{CacheCapacity: 4})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	t.Cleanup(ts.Close)
	return ts
}

// TestCachezAfterTraffic walks one query family through all three
// provenance outcomes on a window-enabled server and checks the
// /cachez body tells the same story: exact-cache and window-store
// occupancy within capacity, a populated coverage map, and a top-pair
// row whose tallies match the driven traffic exactly.
func TestCachezAfterTraffic(t *testing.T) {
	ts, _ := newWindowTestServer(t, Options{})
	routeAt(t, ts.URL, "11:00", false) // miss: engine search
	routeAt(t, ts.URL, "11:20", false) // same visiting-hours slot: window hit
	routeAt(t, ts.URL, "11:00", false) // exact repeat

	var cz CachezResponse
	if resp := getJSON(t, ts.URL+"/cachez", &cz); resp.StatusCode != http.StatusOK {
		t.Fatalf("cachez status = %d", resp.StatusCode)
	}
	methods, ok := cz.Venues["hospital"]
	if !ok {
		t.Fatalf("cachez venues = %v, want hospital", cz.Venues)
	}
	for _, m := range []string{"syn", "asyn", "static"} {
		if _, ok := methods[m]; !ok {
			t.Fatalf("cachez hospital missing method %q", m)
		}
	}

	doc := methods["asyn"]
	if doc.Queries != 3 {
		t.Fatalf("queries = %d, want 3", doc.Queries)
	}
	if doc.Exact.Entries < 1 || doc.Exact.Capacity <= 0 || doc.Exact.Entries > doc.Exact.Capacity {
		t.Fatalf("exact occupancy = %+v", doc.Exact)
	}
	if doc.Window.Windows < 1 || doc.Window.Capacity <= 0 || doc.Window.Windows > doc.Window.Capacity {
		t.Fatalf("window occupancy = %+v", doc.Window)
	}
	if doc.Window.PairsTotal < 1 || len(doc.Window.Pairs) != doc.Window.PairsTotal {
		t.Fatalf("window coverage = %d pairs listed, pairs_total = %d", len(doc.Window.Pairs), doc.Window.PairsTotal)
	}
	for _, p := range doc.Window.Pairs {
		if p.Windows < p.Families || p.Families < 1 {
			t.Fatalf("coverage row %+v: want windows >= families >= 1", p)
		}
		if p.DayCoverage <= 0 || p.DayCoverage > 1 {
			t.Fatalf("coverage row %+v: day_coverage outside (0, 1]", p)
		}
	}

	if doc.PairCapacity <= 0 {
		t.Fatalf("pair_capacity = %d", doc.PairCapacity)
	}
	if len(doc.TopPairs) != 1 {
		t.Fatalf("top_pairs = %+v, want exactly the one driven pair", doc.TopPairs)
	}
	top := doc.TopPairs[0]
	if top.Src == "" || top.Tgt == "" {
		t.Fatalf("top pair endpoints unresolved: %+v", top)
	}
	if top.Queries != 3 || top.ExactHits != 1 || top.WindowHits != 1 ||
		top.EngineSearches != 1 || top.Deduped != 0 || top.ErrBound != 0 {
		t.Fatalf("top pair tallies = %+v, want 3 queries / 1 exact / 1 window / 1 search", top)
	}
	if top.Effort <= 0 {
		t.Fatalf("top pair effort = %d, want > 0 (one engine run)", top.Effort)
	}
	if top.ExactHitRate != 1.0/3 || top.WindowHitRate != 1.0/3 {
		t.Fatalf("top pair hit rates = %v/%v, want 1/3 each", top.ExactHitRate, top.WindowHitRate)
	}
	if top.DayCoverage <= 0 || top.DayCoverage > 1 {
		t.Fatalf("top pair day_coverage = %v, want (0, 1]", top.DayCoverage)
	}

	// One engine run: every effort histogram holds exactly one
	// observation, and the count-valued sums carry raw units.
	eff := doc.EngineEffort
	if eff.Pops.Count != 1 || eff.Settled.Count != 1 || eff.Relaxations.Count != 1 || eff.TVChecks.Count != 1 {
		t.Fatalf("effort counts = %d/%d/%d/%d, want 1 each",
			eff.Pops.Count, eff.Settled.Count, eff.Relaxations.Count, eff.TVChecks.Count)
	}
	if eff.Pops.SumSeconds < 1 || eff.Settled.SumSeconds < 1 {
		t.Fatalf("effort sums = %v pops / %v settled, want >= 1 raw units", eff.Pops.SumSeconds, eff.Settled.SumSeconds)
	}
	if int64(eff.Pops.SumSeconds) != top.Effort {
		t.Fatalf("histogram pops sum %v != top-pair effort %d for a single search", eff.Pops.SumSeconds, top.Effort)
	}

	// The effort families surface on /metricsz from the same counters.
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status = %d", resp.StatusCode)
	}
	body := string(raw)
	labels := `{venue="hospital",method="asyn"}`
	if got := metricValue(t, body, "indoorpath_engine_effort_pops_count"+labels); got != 1 {
		t.Fatalf("effort pops metric count = %d, want 1", got)
	}
	if got := metricValue(t, body, "indoorpath_cache_entries"+labels); got != doc.Exact.Entries {
		t.Fatalf("cache entries metric = %d, want %d", got, doc.Exact.Entries)
	}
	if got := metricValue(t, body, "indoorpath_window_entries"+labels); got < 1 {
		t.Fatalf("window entries metric = %d, want >= 1", got)
	}
}

// TestCacheEvictionCountersSurface forces exact-cache eviction with a
// tiny capacity and checks the pressure shows up on /cachez and
// /metricsz.
func TestCacheEvictionCountersSurface(t *testing.T) {
	ts := newTinyCacheTestServer(t)
	// Nine distinct departures through a 4-entry cache: at least five
	// insertions must shed an entry.
	for i := 0; i < 9; i++ {
		routeAt(t, ts.URL, fmt.Sprintf("10:%02d", i*5), false)
	}
	var cz CachezResponse
	getJSON(t, ts.URL+"/cachez", &cz)
	doc := cz.Venues["hospital"]["asyn"]
	if doc.Exact.Capacity != 4 {
		t.Fatalf("exact capacity = %d, want 4", doc.Exact.Capacity)
	}
	if doc.Exact.Entries > doc.Exact.Capacity {
		t.Fatalf("exact occupancy %d > capacity %d", doc.Exact.Entries, doc.Exact.Capacity)
	}
	if doc.Exact.Evictions < 5 {
		t.Fatalf("exact evictions = %d, want >= 5 after 9 inserts into 4 slots", doc.Exact.Evictions)
	}
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status = %d", resp.StatusCode)
	}
	got := metricValue(t, string(raw), `indoorpath_cache_evictions_total{venue="hospital",method="asyn"}`)
	if got != doc.Exact.Evictions {
		t.Fatalf("evictions metric = %d, cachez = %d", got, doc.Exact.Evictions)
	}
}

// TestScopeFilters drives mixed traffic and checks the shared
// ?venue=/?method= filters narrow /statsz, /loadz and /cachez bodies
// to exactly the requested scope.
func TestScopeFilters(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	routeAt(t, ts.URL, "10:30", false)

	var st StatsResponse
	getJSON(t, ts.URL+"/statsz?venue=hospital&method=asyn", &st)
	if len(st.Venues) != 1 {
		t.Fatalf("filtered statsz venues = %v, want hospital only", st.Venues)
	}
	doc, ok := st.Venues["hospital"]
	if !ok {
		t.Fatalf("filtered statsz missing hospital: %v", st.Venues)
	}
	if len(doc.Methods) != 1 || len(doc.EngineEffort) != 1 {
		t.Fatalf("filtered statsz methods = %v effort = %v, want asyn only", doc.Methods, doc.EngineEffort)
	}
	if doc.Methods["asyn"].Queries != 1 {
		t.Fatalf("filtered statsz asyn queries = %d, want 1", doc.Methods["asyn"].Queries)
	}

	var lz LoadzResponse
	getJSON(t, ts.URL+"/loadz?venue=office", &lz)
	if len(lz.Venues) != 1 {
		t.Fatalf("filtered loadz venues = %v, want office only", lz.Venues)
	}
	if methods, ok := lz.Venues["office"]; !ok || len(methods) != 3 {
		t.Fatalf("filtered loadz office methods = %v, want all three", methods)
	}

	var cz CachezResponse
	getJSON(t, ts.URL+"/cachez?method=syn", &cz)
	if len(cz.Venues) != 2 {
		t.Fatalf("cachez venues = %v, want both venues", cz.Venues)
	}
	for id, methods := range cz.Venues {
		if len(methods) != 1 {
			t.Fatalf("filtered cachez %s methods = %v, want syn only", id, methods)
		}
		if _, ok := methods["syn"]; !ok {
			t.Fatalf("filtered cachez %s missing syn: %v", id, methods)
		}
	}
}

// TestScopeFilterValidation checks the strict-400 contract shared by
// /statsz, /loadz and /cachez: unknown parameter names, unregistered
// venues and unknown methods are rejected rather than silently
// matching everything (or nothing).
func TestScopeFilterValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for _, ep := range []string{"/statsz", "/loadz", "/cachez"} {
		for _, query := range []string{
			"?bogus=1", "?venues=hospital", "?venue=atlantis", "?method=dijkstra", "?outcome=ok",
		} {
			resp, raw := doJSON(t, http.MethodGet, ts.URL+ep+query, nil)
			if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != "bad_request" {
				t.Errorf("%s%s status = %d body = %s, want 400 bad_request", ep, query, resp.StatusCode, raw)
			}
		}
		// Valid scopes still answer 200.
		if resp, raw := doJSON(t, http.MethodGet, ts.URL+ep+"?venue=hospital&method=static", nil); resp.StatusCode != http.StatusOK {
			t.Errorf("%s?venue=hospital&method=static status = %d body = %s", ep, resp.StatusCode, raw)
		}
	}
}
