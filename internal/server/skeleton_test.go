package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"indoorpath/internal/service"
)

// newSkeletonTestServer boots a hospital-only registry with the
// skeleton-family store enabled (and the shared batch planner, so
// SharedPartition waves plan).
func newSkeletonTestServer(t testing.TB) *httptest.Server {
	t.Helper()
	reg := NewRegistry(service.Options{SkeletonCache: true, SharedBatch: true})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	t.Cleanup(ts.Close)
	return ts
}

// skelRoute posts one hospital route between explicit points and
// requires HTTP 200.
func skelRoute(t testing.TB, base string, from, to PointDoc, at string) RouteResponse {
	t.Helper()
	resp, raw := postJSON(t, base+"/v1/venues/hospital/route",
		map[string]any{"from": from, "to": to, "at": at})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route status = %d: %s", resp.StatusCode, raw)
	}
	var out RouteResponse
	decodeInto(t, raw, &out)
	return out
}

// TestSkeletonServerEndToEnd drives the CI-smoke scenario through the
// full HTTP stack: a first ER-to-ward route misses and builds the
// pair's skeleton family, a second route between DIFFERENT points of
// the same partitions answers "hit":"skeleton", and every
// introspection surface tells the same story.
func TestSkeletonServerEndToEnd(t *testing.T) {
	ts := newSkeletonTestServer(t)

	first := skelRoute(t, ts.URL, erCentre, wardCentre, "10:30")
	if !first.Found || first.CacheHit || first.Hit != "miss" {
		t.Fatalf("first route = found %v hit %q, want an engine miss", first.Found, first.Hit)
	}
	second := skelRoute(t, ts.URL, PointDoc{X: 27, Y: 13, Floor: 0}, PointDoc{X: 7, Y: 36, Floor: 0}, "10:40")
	if !second.Found || !second.CacheHit || second.Hit != "skeleton" {
		t.Fatalf("second route = found %v cache_hit %v hit %q, want a skeleton composition",
			second.Found, second.CacheHit, second.Hit)
	}
	if second.Path == nil || second.Path.LengthM <= 0 || len(second.Path.Doors) == 0 {
		t.Fatalf("skeleton answer path = %+v", second.Path)
	}

	// /statsz: the new hit class counts and the partition extends.
	var sr StatsResponse
	getJSON(t, ts.URL+"/statsz", &sr)
	st := sr.Venues["hospital"].Methods["asyn"]
	if st.SkeletonHits != 1 {
		t.Fatalf("statsz skeleton_hits = %d, want 1 (%+v)", st.SkeletonHits, st)
	}
	if st.CacheHits+st.WindowHits+st.SkeletonHits+st.Deduped+st.CacheMisses() != st.Queries {
		t.Fatalf("statsz partition broken: %+v", st)
	}

	// /loadz: the composition shows up in the trailing windows with a
	// non-zero derived rate.
	var lz LoadzResponse
	getJSON(t, ts.URL+"/loadz", &lz)
	ld := lz.Venues["hospital"]["asyn"][len(lz.Venues["hospital"]["asyn"])-1]
	if ld.SkeletonHits != 1 || ld.SkeletonHitRate <= 0 {
		t.Fatalf("loadz skeleton hits = %d rate = %v, want 1 and > 0", ld.SkeletonHits, ld.SkeletonHitRate)
	}
	if ld.ExactHits+ld.WindowHits+ld.SkeletonHits+ld.Deduped > ld.Queries {
		t.Fatalf("loadz partition broken: %+v", ld)
	}

	// /cachez: skeleton occupancy, per-pair coverage and the top-pair
	// tally all reflect the stored family.
	var cz CachezResponse
	getJSON(t, ts.URL+"/cachez", &cz)
	doc := cz.Venues["hospital"]["asyn"]
	if doc.Skeleton.Families < 1 || doc.Skeleton.Capacity <= 0 || doc.Skeleton.Families > doc.Skeleton.Capacity {
		t.Fatalf("skeleton occupancy = %+v", doc.Skeleton)
	}
	if doc.Skeleton.PairsTotal != 1 || len(doc.Skeleton.Pairs) != 1 {
		t.Fatalf("skeleton coverage = %+v, want the one driven pair", doc.Skeleton)
	}
	pair := doc.Skeleton.Pairs[0]
	if pair.Src != "emergency" || pair.Tgt != "ward-1" {
		t.Fatalf("skeleton pair = %s -> %s, want emergency -> ward-1", pair.Src, pair.Tgt)
	}
	if pair.Families < 1 || pair.Chains < pair.Families {
		t.Fatalf("skeleton pair row = %+v, want chains >= families >= 1", pair)
	}
	if pair.DayCoverage <= 0 || pair.DayCoverage > 1 {
		t.Fatalf("skeleton pair day_coverage = %v, want (0, 1]", pair.DayCoverage)
	}
	if len(doc.TopPairs) != 1 || doc.TopPairs[0].SkeletonHits != 1 {
		t.Fatalf("top pairs = %+v, want one row with skeleton_hits 1", doc.TopPairs)
	}

	// /metricsz: the same counters in Prometheus clothes.
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status = %d", resp.StatusCode)
	}
	body := string(raw)
	labels := `{venue="hospital",method="asyn"}`
	if got := metricValue(t, body, "indoorpath_pool_skeleton_hits_total"+labels); got != 1 {
		t.Fatalf("skeleton hits metric = %d, want 1", got)
	}
	if got := metricValue(t, body, "indoorpath_skeleton_families"+labels); got < 1 {
		t.Fatalf("skeleton families metric = %d, want >= 1", got)
	}
	if got := metricValue(t, body, "indoorpath_skeleton_capacity"+labels); got <= 0 {
		t.Fatalf("skeleton capacity metric = %d, want > 0", got)
	}
}

// TestSkeletonBatchWire: a jittered same-pair batch reports its
// skeleton compositions in the batch cache summary, and the summary
// partition extends with the new class.
func TestSkeletonBatchWire(t *testing.T) {
	ts := newSkeletonTestServer(t)
	const n = 8
	queries := make([]map[string]any, n)
	for i := range queries {
		queries[i] = map[string]any{
			"from": PointDoc{X: 22 + float64(i*2), Y: 3 + float64(i), Floor: 0},
			"to":   PointDoc{X: 1 + float64(i), Y: 30 + float64(i), Floor: 0},
			"at":   "11:00",
		}
	}
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route:batch",
		map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d: %s", resp.StatusCode, raw)
	}
	var br BatchResponse
	decodeInto(t, raw, &br)
	c := br.Cache
	if c.SkeletonHits == 0 {
		t.Fatalf("batch composed nothing: %+v", c)
	}
	if got := c.ExactHits + c.WindowHits + c.SkeletonHits + c.SharedAnswers + (c.Searches - c.SharedRuns); got > c.Queries {
		t.Fatalf("batch summary partition broken: %+v", c)
	}
	if 2*c.Searches > c.Queries {
		t.Fatalf("searches = %d over %d queries, want a collapsed wave", c.Searches, c.Queries)
	}
	skel := 0
	for i, r := range br.Results {
		if !r.Found || r.Error != nil {
			t.Fatalf("batch entry %d: %+v", i, r)
		}
		if r.Hit == "skeleton" {
			skel++
		}
	}
	if skel != c.SkeletonHits {
		t.Fatalf("per-entry skeleton hits %d != summary %d", skel, c.SkeletonHits)
	}
}

// TestRaceStatszSkeleton hammers a skeleton-enabled server with
// jittered same-pair traffic (distinct points every request, so only
// skeleton composition can serve repeats) while scraping /statsz and
// /cachez: the extended partition invariant must hold in every body.
func TestRaceStatszSkeleton(t *testing.T) {
	ts := newSkeletonTestServer(t)
	client := ts.Client()
	url := ts.URL + "/v1/venues/hospital/route"

	const goroutines, perG = 6, 40
	errc := make(chan error, goroutines+1)
	done := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var sr StatsResponse
			if _, err := post(client, http.MethodGet, ts.URL+"/statsz", nil, &sr); err != nil {
				continue
			}
			st := sr.Venues["hospital"].Methods["asyn"]
			if st.CacheHits+st.WindowHits+st.SkeletonHits+st.CacheMisses()+st.Deduped != st.Queries {
				errc <- fmt.Errorf("statsz does not partition: %+v", st)
				return
			}
			var cz CachezResponse
			if _, err := post(client, http.MethodGet, ts.URL+"/cachez", nil, &cz); err != nil {
				continue
			}
			doc := cz.Venues["hospital"]["asyn"]
			if doc.Skeleton.Families > doc.Skeleton.Capacity {
				errc <- fmt.Errorf("skeleton occupancy %d > capacity %d", doc.Skeleton.Families, doc.Skeleton.Capacity)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j := float64((seed*perG+i)%160) / 10 // 0.0 .. 15.9
				req := RouteRequest{
					From: &PointDoc{X: 21 + j, Y: 2 + j/2, Floor: 0},
					To:   &PointDoc{X: 1 + j/2, Y: 29 + j/2, Floor: 0},
					At:   "10:30",
				}
				var rr RouteResponse
				status, err := post(client, http.MethodPost, url, req, &rr)
				if err != nil || status != http.StatusOK {
					errc <- fmt.Errorf("route: status %d err %v", status, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	poller.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	var sr StatsResponse
	getJSON(t, ts.URL+"/statsz", &sr)
	st := sr.Venues["hospital"].Methods["asyn"]
	if st.SkeletonHits == 0 {
		t.Fatalf("hammer produced no skeleton hits: %+v", st)
	}
	if st.CacheHits+st.WindowHits+st.SkeletonHits+st.CacheMisses()+st.Deduped != st.Queries {
		t.Fatalf("final statsz does not partition: %+v", st)
	}
}
