package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"indoorpath/internal/obs"
)

// routeAt posts one hospital route (ER centre to ward centre) at the
// given departure time and returns the decoded response.
func routeAt(t testing.TB, base, at string, trace bool) RouteResponse {
	t.Helper()
	body := map[string]any{"from": erCentre, "to": wardCentre, "at": at}
	if trace {
		body["trace"] = true
	}
	resp, raw := postJSON(t, base+"/v1/venues/hospital/route", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route status = %d: %s", resp.StatusCode, raw)
	}
	var out RouteResponse
	decodeInto(t, raw, &out)
	return out
}

// TestTracezAfterTraffic checks that served requests land in /tracez
// with the expected stage spans and that span durations are consistent
// with the recorded request latency.
func TestTracezAfterTraffic(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	routeAt(t, ts.URL, "10:30", false)

	var tz TracezResponse
	resp := getJSON(t, ts.URL+"/tracez", &tz)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tracez status = %d", resp.StatusCode)
	}
	if tz.Count != 1 || len(tz.Traces) != 1 {
		t.Fatalf("tracez count = %d, traces = %d, want 1", tz.Count, len(tz.Traces))
	}
	tr := tz.Traces[0]
	if tr.Venue != "hospital" || tr.Method != "asyn" || tr.Outcome != obs.OutcomeOK {
		t.Fatalf("trace labels = %s/%s/%s", tr.Venue, tr.Method, tr.Outcome)
	}
	if !tr.Slow {
		t.Fatal("first trace not in the slow population")
	}
	stages := map[string]int{}
	var sumMs float64
	for _, sp := range tr.Spans {
		stages[sp.Stage]++
		sumMs += sp.DurationMs
		if sp.StartMs < 0 || sp.DurationMs < 0 {
			t.Fatalf("negative span offsets: %+v", sp)
		}
	}
	for _, want := range []string{"decode", "probe", "engine", "store", "render"} {
		if stages[want] != 1 {
			t.Fatalf("stage %q spans = %d, want 1 (%v)", want, stages[want], stages)
		}
	}
	// The solo-route stages run back to back inside the request, so
	// their durations must account for (and never exceed) the request
	// latency, up to clock-reading slack.
	if sumMs <= 0 {
		t.Fatal("span durations sum to zero")
	}
	if sumMs > tr.DurationMs+1.0 {
		t.Fatalf("span durations sum to %.3fms > request latency %.3fms", sumMs, tr.DurationMs)
	}
}

// TestInlineTrace checks the per-request "trace": true opt-in: the
// trace rides inline in the response (without the render span, which
// has not happened yet at encode time) and is absent otherwise.
func TestInlineTrace(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	if out := routeAt(t, ts.URL, "10:30", false); out.Trace != nil {
		t.Fatal("trace present without the opt-in")
	}
	out := routeAt(t, ts.URL, "10:40", true)
	if out.Trace == nil {
		t.Fatal("no inline trace with \"trace\": true")
	}
	stages := map[string]int{}
	for _, sp := range out.Trace.Spans {
		stages[sp.Stage]++
	}
	if stages["decode"] != 1 || stages["probe"] != 1 {
		t.Fatalf("inline trace stages = %v", stages)
	}
	if stages["render"] != 0 {
		t.Fatal("inline trace contains its own render span")
	}
	if out.Trace.DurationMs <= 0 {
		t.Fatalf("inline trace duration = %v", out.Trace.DurationMs)
	}
}

// TestBatchTraceRejected checks that per-query inline traces are
// rejected inside a batch, like per-query methods.
func TestBatchTraceRejected(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route:batch", map[string]any{
		"queries": []map[string]any{
			{"from": erCentre, "to": wardCentre, "at": "10:30", "trace": true},
		},
	})
	if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != "bad_request" {
		t.Fatalf("status = %d body = %s", resp.StatusCode, raw)
	}
}

// TestTracezRingBounds drives more requests than the ring holds and
// checks retention stays bounded with both populations flagged.
func TestTracezRingBounds(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for i := 0; i < 100; i++ {
		routeAt(t, ts.URL, fmt.Sprintf("10:00:%02d", i%60), false)
	}
	var tz TracezResponse
	getJSON(t, ts.URL+"/tracez", &tz)
	if tz.Count > 64 {
		t.Fatalf("tracez retained %d traces, ring capacity is 64", tz.Count)
	}
	if tz.Count == 0 {
		t.Fatal("tracez empty after 100 requests")
	}
	for _, tr := range tz.Traces {
		if tr.Slow == tr.Sampled {
			t.Fatalf("trace in %v populations (slow=%v sampled=%v)", map[bool]string{true: "both", false: "neither"}[tr.Slow], tr.Slow, tr.Sampled)
		}
	}
}

// TestTracezJSONFieldSet pins the /tracez wire format: the field set
// of trace and span objects is closed, so dashboards parsing it don't
// silently break when fields move.
func TestTracezJSONFieldSet(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	routeAt(t, ts.URL, "10:30", false)

	var generic struct {
		Count  int              `json:"count"`
		Traces []map[string]any `json:"traces"`
	}
	getJSON(t, ts.URL+"/tracez", &generic)
	if len(generic.Traces) == 0 {
		t.Fatal("no traces")
	}
	traceKeys := map[string]bool{
		"venue": true, "method": true, "outcome": true, "hit": true,
		"coalesced": true, "shared_run": true, "start": true,
		"duration_ms": true, "slow": true, "sampled": true,
		"dropped_spans": true, "spans": true,
	}
	spanKeys := map[string]bool{"stage": true, "start_ms": true, "duration_ms": true, "attrs": true}
	for _, tr := range generic.Traces {
		for k := range tr {
			if !traceKeys[k] {
				t.Fatalf("unexpected trace field %q", k)
			}
		}
		for _, req := range []string{"venue", "method", "outcome", "start", "duration_ms", "spans"} {
			if _, ok := tr[req]; !ok {
				t.Fatalf("trace missing required field %q: %v", req, tr)
			}
		}
		for _, sp := range tr["spans"].([]any) {
			for k := range sp.(map[string]any) {
				if !spanKeys[k] {
					t.Fatalf("unexpected span field %q", k)
				}
			}
		}
	}
}

// metricValue extracts one un-suffixed series value from a Prometheus
// text body, e.g. metricValue(body, `indoorpath_pool_queries_total{venue="hospital",method="asyn"}`).
func metricValue(t testing.TB, body, series string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("series %s not found", series)
	return 0
}

// checkPartition asserts the serving-partition invariant on one set of
// pool counters: every query is a cache hit, a window hit, a skeleton
// composition, a batch dedup or a miss, and engine runs never exceed
// misses. Guaranteed even in torn snapshots by the pool's counter read
// order.
func checkPartition(t testing.TB, where string, queries, cacheHits, windowHits, skeletonHits, deduped, engineSearches int64) {
	t.Helper()
	misses := queries - cacheHits - windowHits - skeletonHits - deduped
	if misses < 0 {
		t.Errorf("%s: misses = %d - %d - %d - %d - %d = %d < 0",
			where, queries, cacheHits, windowHits, skeletonHits, deduped, misses)
	}
	if engineSearches > misses {
		t.Errorf("%s: engine_searches %d > misses %d", where, engineSearches, misses)
	}
}

// TestScrapeConsistencyHammer hammers the server with concurrent
// route traffic while scraping /statsz, /metricsz and /tracez, and
// asserts the partition invariant in every scraped body — i.e. a
// scrape landing mid-request never shows torn counters that violate
// it, and one body is one consistent snapshot.
func TestScrapeConsistencyHammer(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	const writers, perWriter = 6, 25

	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				// Mix repeats (cache hits) with distinct departures
				// (misses / window hits).
				routeAt(t, ts.URL, fmt.Sprintf("10:%02d", (w*7+i)%30), false)
			}
		}(w)
	}
	for sc := 0; sc < 2; sc++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var st StatsResponse
				getJSON(t, ts.URL+"/statsz", &st)
				for id, doc := range st.Venues {
					for m, ms := range doc.Methods {
						checkPartition(t, fmt.Sprintf("statsz %s/%s", id, m),
							ms.Queries, ms.CacheHits, ms.WindowHits, ms.SkeletonHits, ms.Deduped, ms.EngineSearches)
					}
				}
				resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("metricsz status = %d", resp.StatusCode)
					return
				}
				body := string(raw)
				labels := `{venue="hospital",method="asyn"}`
				checkPartition(t, "metricsz hospital/asyn",
					metricValue(t, body, "indoorpath_pool_queries_total"+labels),
					metricValue(t, body, "indoorpath_pool_exact_hits_total"+labels),
					metricValue(t, body, "indoorpath_pool_window_hits_total"+labels),
					metricValue(t, body, "indoorpath_pool_skeleton_hits_total"+labels),
					metricValue(t, body, "indoorpath_pool_deduped_total"+labels),
					metricValue(t, body, "indoorpath_pool_engine_searches_total"+labels))
				var tz TracezResponse
				getJSON(t, ts.URL+"/tracez", &tz)
				if tz.Count > 64 {
					t.Errorf("tracez retained %d traces", tz.Count)
					return
				}
				// The windowed load view must satisfy the same
				// partition per window even while feeds race the
				// scrape and buckets rotate underneath it.
				var lz LoadzResponse
				getJSON(t, ts.URL+"/loadz", &lz)
				for id, methods := range lz.Venues {
					for m, docs := range methods {
						for _, doc := range docs {
							if doc.ExactHits+doc.WindowHits+doc.SkeletonHits+doc.Deduped > doc.Queries {
								t.Errorf("loadz %s/%s %ds window violates partition: %+v", id, m, doc.WindowSec, doc)
								return
							}
						}
					}
				}
				// The cache-introspection view must hold its own
				// invariants in every body: occupancy within capacity,
				// and — because the top-K table is snapshotted before
				// the pool counters — every pair tally bounded by the
				// body's query counter.
				var cz CachezResponse
				getJSON(t, ts.URL+"/cachez", &cz)
				for id, methods := range cz.Venues {
					for m, doc := range methods {
						where := fmt.Sprintf("cachez %s/%s", id, m)
						if doc.Exact.Entries > doc.Exact.Capacity {
							t.Errorf("%s: exact occupancy %d > capacity %d", where, doc.Exact.Entries, doc.Exact.Capacity)
							return
						}
						if doc.Window.Windows > doc.Window.Capacity {
							t.Errorf("%s: window occupancy %d > capacity %d", where, doc.Window.Windows, doc.Window.Capacity)
							return
						}
						if doc.Skeleton.Families > doc.Skeleton.Capacity {
							t.Errorf("%s: skeleton occupancy %d > capacity %d", where, doc.Skeleton.Families, doc.Skeleton.Capacity)
							return
						}
						var pairQueries int64
						for _, p := range doc.TopPairs {
							pairQueries += p.Queries
							if p.ExactHits+p.WindowHits+p.SkeletonHits+p.Deduped > p.Queries {
								t.Errorf("%s: pair %s->%s tallies exceed its queries: %+v", where, p.Src, p.Tgt, p)
								return
							}
						}
						if pairQueries > doc.Queries {
							t.Errorf("%s: top-K pair queries sum %d > pool queries %d", where, pairQueries, doc.Queries)
							return
						}
					}
				}
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	scrapeWG.Wait()

	// Final quiescent check: both histogram families present with a
	// matching total request count.
	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status = %d", resp.StatusCode)
	}
	body := string(raw)
	reqCount := metricValue(t, body, `indoorpath_request_seconds_count{venue="hospital",method="asyn",outcome="ok"}`)
	if want := int64(writers * perWriter); reqCount != want {
		t.Fatalf("request histogram count = %d, want %d", reqCount, want)
	}
	if !strings.Contains(body, `indoorpath_stage_seconds_bucket{stage="engine",le="+Inf"}`) {
		t.Fatal("stage histogram family missing from /metricsz")
	}
	if engines := metricValue(t, body, `indoorpath_stage_seconds_count{stage="engine"}`); engines == 0 {
		t.Fatal("engine stage histogram empty after traffic")
	}
}

// TestBuildz checks the build-provenance endpoint: the binary's go
// toolchain is always known, the start time is a parseable instant,
// and /healthz carries the same start time for restart detection.
func TestBuildz(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var bz BuildzResponse
	if resp := getJSON(t, ts.URL+"/buildz", &bz); resp.StatusCode != http.StatusOK {
		t.Fatalf("buildz status = %d", resp.StatusCode)
	}
	if bz.Build.GoVersion == "" {
		t.Fatal("buildz go_version empty")
	}
	start, err := time.Parse(time.RFC3339Nano, bz.StartTime)
	if err != nil {
		t.Fatalf("buildz start_time %q: %v", bz.StartTime, err)
	}
	if bz.UptimeSec < 0 {
		t.Fatalf("buildz uptime_sec = %v", bz.UptimeSec)
	}
	var hz HealthResponse
	getJSON(t, ts.URL+"/healthz", &hz)
	if hz.StartTime == "" || hz.Build == nil || hz.Build.GoVersion != bz.Build.GoVersion {
		t.Fatalf("healthz provenance = %+v, want start_time and build matching /buildz", hz)
	}
	if hzStart, err := time.Parse(time.RFC3339Nano, hz.StartTime); err != nil || !hzStart.Equal(start) {
		t.Fatalf("healthz start_time %q != buildz start_time %q", hz.StartTime, bz.StartTime)
	}
}

// TestTracezFilters drives known traffic and checks each filter
// narrows the listing: matching values keep every trace, non-matching
// values yield an empty (but well-formed) body.
func TestTracezFilters(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for i := 0; i < 3; i++ {
		routeAt(t, ts.URL, fmt.Sprintf("10:3%d", i), false)
	}
	count := func(query string) int {
		t.Helper()
		var tz TracezResponse
		if resp := getJSON(t, ts.URL+"/tracez"+query, &tz); resp.StatusCode != http.StatusOK {
			t.Fatalf("tracez%s status = %d", query, resp.StatusCode)
		}
		if tz.Count != len(tz.Traces) {
			t.Fatalf("tracez%s count %d != len(traces) %d", query, tz.Count, len(tz.Traces))
		}
		return tz.Count
	}
	all := count("")
	if all != 3 {
		t.Fatalf("unfiltered tracez count = %d, want 3", all)
	}
	for query, want := range map[string]int{
		"?venue=hospital":                  all,
		"?venue=office":                    0,
		"?method=asyn":                     all,
		"?method=syn":                      0,
		"?outcome=ok":                      all,
		"?outcome=no_route":                0,
		"?min_ms=0":                        all,
		"?min_ms=3600000":                  0,
		"?venue=hospital&method=asyn":      all,
		"?venue=hospital&outcome=no_route": 0,
	} {
		if got := count(query); got != want {
			t.Errorf("tracez%s count = %d, want %d", query, got, want)
		}
	}
}

// TestTracezFilterValidation checks the strict-400 contract: unknown
// parameter names, malformed min_ms and unknown outcome labels are
// rejected rather than silently matching everything.
func TestTracezFilterValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for _, query := range []string{
		"?bogus=1", "?venues=hospital", "?min_ms=abc", "?min_ms=-1", "?outcome=fine",
	} {
		resp, raw := doJSON(t, http.MethodGet, ts.URL+"/tracez"+query, nil)
		if resp.StatusCode != http.StatusBadRequest || errCode(t, raw) != "bad_request" {
			t.Errorf("tracez%s status = %d body = %s, want 400 bad_request", query, resp.StatusCode, raw)
		}
	}
}

// TestLoadzAfterTraffic checks the rolling load view end to end: known
// traffic (two misses, one exact repeat) shows up in every window with
// the partition invariant, the derived rates, and the miss-reason
// tallies the provenance layer recorded.
func TestLoadzAfterTraffic(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	routeAt(t, ts.URL, "10:30", false)
	routeAt(t, ts.URL, "10:45", false)
	routeAt(t, ts.URL, "10:30", false) // exact repeat

	var lz LoadzResponse
	if resp := getJSON(t, ts.URL+"/loadz", &lz); resp.StatusCode != http.StatusOK {
		t.Fatalf("loadz status = %d", resp.StatusCode)
	}
	if fmt.Sprint(lz.WindowsSec) != fmt.Sprint(obs.LoadWindows) {
		t.Fatalf("windows_sec = %v, want %v", lz.WindowsSec, obs.LoadWindows)
	}
	docs := lz.Venues["hospital"]["asyn"]
	if len(docs) != len(obs.LoadWindows) {
		t.Fatalf("hospital/asyn windows = %d, want %d", len(docs), len(obs.LoadWindows))
	}
	for i, doc := range docs {
		if doc.WindowSec != obs.LoadWindows[i] {
			t.Fatalf("window %d span = %d, want %d", i, doc.WindowSec, obs.LoadWindows[i])
		}
		if doc.ExactHits+doc.WindowHits+doc.Deduped > doc.Queries {
			t.Fatalf("window %ds violates partition: %+v", doc.WindowSec, doc)
		}
	}
	// All three routes ran milliseconds apart, so the widest window has
	// seen all of them (the 10s window might straddle a second edge only
	// if the test itself takes 10s).
	widest := docs[len(docs)-1]
	if widest.Queries != 3 || widest.ExactHits != 1 || widest.EngineSearches != 2 {
		t.Fatalf("widest window = %+v, want 3 queries / 1 exact hit / 2 searches", widest)
	}
	if got, want := widest.ArrivalPerSec, 3.0/float64(widest.WindowSec); got != want {
		t.Fatalf("arrival_per_sec = %v, want %v", got, want)
	}
	if got, want := widest.ExactHitRate, 1.0/3.0; got != want {
		t.Fatalf("exact_hit_rate = %v, want %v", got, want)
	}
	if widest.MissReasons["no_exact_entry"] != 2 {
		t.Fatalf("miss reasons = %v, want no_exact_entry: 2", widest.MissReasons)
	}
	// Untouched pools still report, with all-zero windows.
	if quiet := lz.Venues["office"]["static"]; len(quiet) != len(obs.LoadWindows) || quiet[0].Queries != 0 {
		t.Fatalf("quiet pool windows = %+v", quiet)
	}
}

// TestExplainProvenance checks the inline decision provenance: a cache
// miss explains why it missed, and a hit (which answered without an
// engine run) carries no explain field at all.
func TestExplainProvenance(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	miss := routeAt(t, ts.URL, "11:20", true)
	if miss.CacheHit || miss.Explain != "no_exact_entry" {
		t.Fatalf("miss explain = %q (hit=%v), want no_exact_entry", miss.Explain, miss.CacheHit)
	}
	hit := routeAt(t, ts.URL, "11:20", true)
	if !hit.CacheHit || hit.Explain != "" {
		t.Fatalf("hit explain = %q (hit=%v), want empty", hit.Explain, hit.CacheHit)
	}
	// The wire field must be absent on hits, not an empty string.
	resp, raw := postJSON(t, ts.URL+"/v1/venues/hospital/route",
		map[string]any{"from": erCentre, "to": wardCentre, "at": "11:20"})
	if resp.StatusCode != http.StatusOK || strings.Contains(string(raw), `"explain"`) {
		t.Fatalf("hit body carries explain: %s", raw)
	}
}

// TestMetricszLoadAndReasonFamilies checks the /metricsz side of the
// telemetry layer: windowed load gauges per (venue, method, window)
// and cumulative per-reason counters, all from one scrape snapshot.
func TestMetricszLoadAndReasonFamilies(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	routeAt(t, ts.URL, "10:30", false)
	routeAt(t, ts.URL, "10:30", false)

	resp, raw := doJSON(t, http.MethodGet, ts.URL+"/metricsz", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz status = %d", resp.StatusCode)
	}
	body := string(raw)
	for _, family := range []string{
		"indoorpath_load_arrival_per_sec", "indoorpath_load_exact_hit_rate",
		"indoorpath_load_window_hit_rate", "indoorpath_load_shareability",
		"indoorpath_load_searches_per_query", "indoorpath_load_hold_utilization",
		"indoorpath_load_flush_fanout",
	} {
		if !strings.Contains(body, "# TYPE "+family+" gauge") {
			t.Errorf("family %s missing or not a gauge", family)
		}
		for _, window := range []string{"10s", "1m", "5m"} {
			series := fmt.Sprintf("%s{venue=%q,method=%q,window=%q} ", family, "hospital", "asyn", window)
			if !strings.Contains(body, series) {
				t.Errorf("series %s missing", series)
			}
		}
	}
	if v := metricValue(t, body, `indoorpath_reason_miss_total{venue="hospital",method="asyn",reason="no_exact_entry"}`); v != 1 {
		t.Errorf("miss reason counter = %d, want 1", v)
	}
	if strings.Contains(body, `indoorpath_reason_miss_total{venue="office"`) {
		t.Error("zero-count reason series rendered for idle venue")
	}
}
