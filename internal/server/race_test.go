// Race-detector suite for the HTTP layer: real HTTP traffic from many
// goroutines against one Server, concurrently with live schedule
// updates. Run with `go test -race ./internal/server/` (CI does).
//
// These tests encode the serving-layer contract:
//
//  1. concurrent /route traffic over several venues answers
//     byte-identically to a sequential core.Engine;
//  2. a PUT /schedules mid-traffic is atomic — every response reflects
//     either the old or the new schedule set in full, and requests
//     after the PUT's response never see pre-swap cache entries;
//  3. /statsz counters add up under load.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/service"
	"indoorpath/internal/temporal"
)

// expected is the sequential-engine answer a concurrent response must
// reproduce exactly.
type expected struct {
	found  bool
	format string
	length float64
	arrive float64
	doors  []string
}

// post is a bare JSON POST/PUT helper for hot loops (no testing.TB so
// goroutines can report over channels).
func post(client *http.Client, method, url string, body, out any) (int, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return 0, err
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// TestRaceRoutesByteIdenticalAcrossVenues hammers two venues over real
// HTTP and checks every response against precomputed sequential-engine
// answers. Float64 values survive the JSON round trip exactly, so ==
// comparisons are byte-identity.
func TestRaceRoutesByteIdenticalAcrossVenues(t *testing.T) {
	ts, reg := newTestServer(t, Options{})
	client := ts.Client()

	// Per venue: a fixed request set and its engine-computed answers.
	type fixture struct {
		id   string
		reqs []RouteRequest
		want []expected
	}
	venuePoints := map[string][]PointDoc{
		"hospital": {erCentre, wardCentre, {X: 10, Y: 10, Floor: 0} /* lobby */, {X: 50, Y: 10, Floor: 0} /* pharmacy */},
		"office":   {},
	}
	// Office probe points: partition centres, computed from the model.
	offVe, _ := reg.Get("office")
	for _, p := range offVe.Model().Partitions() {
		if p.Kind == model.OutdoorPartition {
			continue
		}
		r := p.Rect
		venuePoints["office"] = append(venuePoints["office"],
			PointDoc{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2, Floor: p.Floor()})
		if len(venuePoints["office"]) == 4 {
			break
		}
	}

	var fixtures []fixture
	for id, pts := range venuePoints {
		ve, _ := reg.Get(id)
		e := core.NewEngine(ve.Graph(), core.Options{Method: core.MethodAsyn})
		mv := ve.Model()
		fx := fixture{id: id}
		for i, src := range pts {
			for j, tgt := range pts {
				if i == j {
					continue
				}
				for _, hour := range []int{6, 11, 13, 21} {
					at := temporal.Clock(hour, 0, 0)
					fx.reqs = append(fx.reqs, RouteRequest{From: &src, To: &tgt, At: at.String()})
					p, _, err := e.Route(core.Query{Source: src.point(), Target: tgt.point(), At: at})
					switch {
					case err == nil:
						exp := expected{found: true, format: p.Format(mv), length: p.Length, arrive: float64(p.ArrivalAtTgt)}
						for _, d := range p.Doors {
							exp.doors = append(exp.doors, mv.Door(d).Name)
						}
						fx.want = append(fx.want, exp)
					default:
						// ErrNoRoute; probe points are partition centres,
						// so ErrNotIndoor cannot happen.
						fx.want = append(fx.want, expected{found: false})
					}
				}
			}
		}
		fixtures = append(fixtures, fx)
	}

	const goroutines, perG = 8, 60
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				fx := fixtures[(seed+i)%len(fixtures)]
				k := (seed*perG + i*7) % len(fx.reqs)
				var rr RouteResponse
				status, err := post(client, http.MethodPost, ts.URL+"/v1/venues/"+fx.id+"/route", fx.reqs[k], &rr)
				if err != nil || status != http.StatusOK {
					errc <- fmt.Errorf("%s req %d: status %d err %v", fx.id, k, status, err)
					return
				}
				want := fx.want[k]
				if rr.Found != want.found {
					errc <- fmt.Errorf("%s req %d: found = %v, want %v", fx.id, k, rr.Found, want.found)
					return
				}
				if !want.found {
					continue
				}
				if rr.Path.Format != want.format || rr.Path.LengthM != want.length || rr.Path.ArriveSec != want.arrive {
					errc <- fmt.Errorf("%s req %d: path %q %v→%v, want %q %v→%v",
						fx.id, k, rr.Path.Format, rr.Path.LengthM, rr.Path.ArriveSec,
						want.format, want.length, want.arrive)
					return
				}
				for di, d := range want.doors {
					if rr.Path.Doors[di].Door != d {
						errc <- fmt.Errorf("%s req %d: door[%d] = %q, want %q", fx.id, k, di, rr.Path.Doors[di].Door, d)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// twoDoorVenue builds hall|room connected by a near door (short path)
// and a far door (long path), the instrument for the swap-atomicity
// test: schedule set A opens only the near door, set B only the far
// one. Any response mixing the two sets would either see both doors
// closed (no route — detectable) or answer while the applied set says
// otherwise.
func twoDoorVenue(t testing.TB) (*model.Venue, float64, float64) {
	t.Helper()
	b := model.NewBuilder("two-door")
	hall := b.AddPartition("hall", model.PublicPartition, geom.NewRect(0, 0, 20, 10, 0))
	room := b.AddPartition("room", model.PublicPartition, geom.NewRect(0, 10, 20, 20, 0))
	near := b.AddDoor("near", model.PublicDoor, geom.Pt(2, 10, 0), nil)
	far := b.AddDoor("far", model.PublicDoor, geom.Pt(18, 10, 0), nil)
	b.ConnectBi(near, hall, room)
	b.ConnectBi(far, hall, room)
	v := b.MustBuild()

	src, tgt := geom.Pt(2, 5, 0), geom.Pt(2, 15, 0)
	nearLen := src.Dist(geom.Pt(2, 10, 0)) + geom.Pt(2, 10, 0).Dist(tgt)
	farLen := src.Dist(geom.Pt(18, 10, 0)) + geom.Pt(18, 10, 0).Dist(tgt)
	return v, nearLen, farLen
}

// TestRaceScheduleSwapAtomicity alternates PUT /schedules between
// "only the near door open" and "only the far door open" while 6
// goroutines route across the doors. Exactly one door is open under
// either schedule set, so every response must find a path of exactly
// nearLen or farLen; a no-route response would mean a request observed
// a half-applied update (or a stale post-swap cache entry).
func TestRaceScheduleSwapAtomicity(t *testing.T) {
	// Run the same contract over both cache backends: the validity-
	// window cache must obey the identical swap semantics (a PUT drops
	// the whole window store with the backend).
	for _, opts := range []struct {
		name string
		pool service.Options
	}{
		{"exact-cache", service.Options{}},
		{"window-cache", service.Options{WindowCache: true}},
	} {
		t.Run(opts.name, func(t *testing.T) {
			raceScheduleSwapAtomicity(t, opts.pool)
		})
	}
}

func raceScheduleSwapAtomicity(t *testing.T, poolOpts service.Options) {
	v, nearLen, farLen := twoDoorVenue(t)
	reg := NewRegistry(poolOpts)
	if err := reg.Add("two-door", v); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}))
	defer ts.Close()
	client := ts.Client()

	setA := SchedulesRequest{Updates: map[string][]string{"near": nil, "far": {}}}
	setB := SchedulesRequest{Updates: map[string][]string{"near": {}, "far": nil}}
	url := ts.URL + "/v1/venues/two-door"

	if status, err := post(client, http.MethodPut, url+"/schedules", setA, nil); err != nil || status != http.StatusOK {
		t.Fatalf("initial PUT: status %d err %v", status, err)
	}

	req := RouteRequest{
		From: &PointDoc{X: 2, Y: 5, Floor: 0},
		To:   &PointDoc{X: 2, Y: 15, Floor: 0},
		At:   "12:00",
	}

	done := make(chan struct{})
	errc := make(chan error, 8)
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			set := setA
			if i%2 == 0 {
				set = setB
			}
			if status, err := post(client, http.MethodPut, url+"/schedules", set, nil); err != nil || status != http.StatusOK {
				errc <- fmt.Errorf("PUT %d: status %d err %v", i, status, err)
				return
			}
		}
	}()

	// Departure times vary per request: with the window cache enabled,
	// cross-time hits serve most of them (the doors have no checkpoints,
	// so one search covers nearly the whole day), and every served
	// answer must still reflect a fully-applied schedule set.
	ats := []string{"12:00", "9:30", "15:45", "3:10", "21:05"}
	var routers sync.WaitGroup
	for w := 0; w < 6; w++ {
		routers.Add(1)
		go func() {
			defer routers.Done()
			for i := 0; i < 120; i++ {
				req := req
				req.At = ats[i%len(ats)]
				var rr RouteResponse
				status, err := post(client, http.MethodPost, url+"/route", req, &rr)
				if err != nil || status != http.StatusOK {
					errc <- fmt.Errorf("route: status %d err %v", status, err)
					return
				}
				if !rr.Found {
					errc <- fmt.Errorf("no route mid-swap: a response saw a half-applied schedule update")
					return
				}
				if rr.Path.LengthM != nearLen && rr.Path.LengthM != farLen {
					errc <- fmt.Errorf("path length %v is neither %v (near) nor %v (far)", rr.Path.LengthM, nearLen, farLen)
					return
				}
			}
		}()
	}
	routers.Wait()
	close(done)
	swapper.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Sequential epilogue: after each acknowledged PUT, the very next
	// route must reflect exactly the schedule just applied — catching
	// any pre-swap cache entry surviving the swap.
	for i := 0; i < 10; i++ {
		set, wantLen := setA, nearLen
		if i%2 == 0 {
			set, wantLen = setB, farLen
		}
		if status, err := post(client, http.MethodPut, url+"/schedules", set, nil); err != nil || status != http.StatusOK {
			t.Fatalf("PUT %d: status %d err %v", i, status, err)
		}
		var rr RouteResponse
		if status, err := post(client, http.MethodPost, url+"/route", req, &rr); err != nil || status != http.StatusOK {
			t.Fatalf("route %d: status %d err %v", i, status, err)
		}
		if !rr.Found || rr.Path.LengthM != wantLen {
			t.Fatalf("route %d after PUT: found=%v len=%v, want len %v (stale cache?)",
				i, rr.Found, rr.Path.LengthM, wantLen)
		}
	}
}

// TestRaceStatszConsistent checks the counters add up after (and
// while) concurrent traffic flows: queries equals requests sent, and
// hits + misses + deduped partitions the total.
func TestRaceStatszConsistent(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	client := ts.Client()
	url := ts.URL + "/v1/venues/hospital/route"

	const goroutines, perG = 6, 50
	var sent atomic.Int64
	errc := make(chan error, goroutines+1)
	done := make(chan struct{})

	// A poller decodes /statsz concurrently with traffic; invariants
	// must hold for every snapshot (counters only grow).
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		var lastQueries int64
		for {
			select {
			case <-done:
				return
			default:
			}
			var sr StatsResponse
			if _, err := post(client, http.MethodGet, ts.URL+"/statsz", nil, &sr); err != nil {
				continue // transient decode overlap with shutdown is fine
			}
			st := sr.Venues["hospital"].Methods["asyn"]
			if st.Queries < lastQueries {
				errc <- fmt.Errorf("statsz went backwards: %d -> %d", lastQueries, st.Queries)
				return
			}
			lastQueries = st.Queries
			if st.CacheHits+st.WindowHits+st.SkeletonHits+st.CacheMisses()+st.Deduped != st.Queries {
				errc <- fmt.Errorf("statsz does not partition: %+v", st)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				hour := (seed + i) % 24
				req := RouteRequest{From: &erCentre, To: &wardCentre, At: temporal.Clock(hour, 0, 0).String()}
				var rr RouteResponse
				status, err := post(client, http.MethodPost, url, req, &rr)
				if err != nil || status != http.StatusOK {
					errc <- fmt.Errorf("route: status %d err %v", status, err)
					return
				}
				sent.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	poller.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	var sr StatsResponse
	if _, err := post(client, http.MethodGet, ts.URL+"/statsz", nil, &sr); err != nil {
		t.Fatal(err)
	}
	st := sr.Venues["hospital"].Methods["asyn"]
	if st.Queries != sent.Load() {
		t.Fatalf("statsz queries = %d, want %d", st.Queries, sent.Load())
	}
	if st.CacheHits+st.WindowHits+st.CacheMisses() != st.Queries {
		t.Fatalf("hits %d + windowHits %d + misses %d != queries %d",
			st.CacheHits, st.WindowHits, st.CacheMisses(), st.Queries)
	}
	if st.CacheHits == 0 {
		t.Fatal("traffic with only 24 distinct queries should produce cache hits")
	}
	if st.Epoch != 0 {
		t.Fatalf("epoch = %d, want 0 (no schedule updates)", st.Epoch)
	}
}

// TestRaceStatszCoalesced re-runs the counter-consistency hammer with
// the standing coalescer in front of the pools: the /statsz partition
// invariant (hits + window hits + misses + deduped == queries) must
// keep holding when SharedBatch dedup and coalesced flushes combine,
// no request may be double-counted (a deduped member of a coalesced
// flush is one query, not two), and the coalescer's own counters must
// stay coherent with the pool's.
func TestRaceStatszCoalesced(t *testing.T) {
	reg := NewRegistry(service.Options{SharedBatch: true})
	if _, err := reg.AddPresets("hospital"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{
		Coalesce:     true,
		CoalesceHold: 2 * time.Millisecond,
	}))
	defer ts.Close()
	client := ts.Client()
	url := ts.URL + "/v1/venues/hospital/route"

	const goroutines, perG = 6, 40
	var sent atomic.Int64
	errc := make(chan error, goroutines+1)
	done := make(chan struct{})

	checkSnapshot := func(sr *StatsResponse) error {
		st := sr.Venues["hospital"].Methods["asyn"]
		if st.CacheHits+st.WindowHits+st.CacheMisses()+st.Deduped != st.Queries {
			return fmt.Errorf("statsz does not partition: %+v", st)
		}
		if st.CacheMisses() < 0 {
			return fmt.Errorf("negative cache misses: %+v", st)
		}
		if st.EngineSearches > st.CacheMisses() {
			return fmt.Errorf("more engine runs than misses (coalesced members double-counted?): %+v", st)
		}
		cs := sr.Venues["hospital"].Coalesce["asyn"]
		if cs.Groups > cs.Flushes {
			return fmt.Errorf("coalesce groups %d > flushes %d", cs.Groups, cs.Flushes)
		}
		if cs.Answers < 2*cs.Groups {
			return fmt.Errorf("coalesce answers %d < 2×groups %d", cs.Answers, cs.Groups)
		}
		if cs.Queries < cs.Answers {
			return fmt.Errorf("coalesce answers %d exceed accepted queries %d", cs.Answers, cs.Queries)
		}
		return nil
	}

	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			var sr StatsResponse
			if _, err := post(client, http.MethodGet, ts.URL+"/statsz", nil, &sr); err != nil {
				continue // transient decode overlap with shutdown is fine
			}
			if err := checkSnapshot(&sr); err != nil {
				errc <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// A few hot departures so concurrent arrivals share keys
				// (dedup + shared runs inside coalesced flushes).
				hour := 10 + (seed+i)%2
				req := RouteRequest{From: &erCentre, To: &wardCentre, At: temporal.Clock(hour, 0, 0).String()}
				var rr RouteResponse
				status, err := post(client, http.MethodPost, url, req, &rr)
				if err != nil || status != http.StatusOK {
					errc <- fmt.Errorf("route: status %d err %v", status, err)
					return
				}
				sent.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	poller.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	var sr StatsResponse
	if _, err := post(client, http.MethodGet, ts.URL+"/statsz", nil, &sr); err != nil {
		t.Fatal(err)
	}
	if err := checkSnapshot(&sr); err != nil {
		t.Fatal(err)
	}
	st := sr.Venues["hospital"].Methods["asyn"]
	if st.Queries != sent.Load() {
		t.Fatalf("pool queries = %d, want %d (every request exactly once)", st.Queries, sent.Load())
	}
	cs := sr.Venues["hospital"].Coalesce["asyn"]
	if cs.Queries != sent.Load() {
		t.Fatalf("coalescer accepted %d queries, want %d", cs.Queries, sent.Load())
	}
	if cs.Flushes == 0 {
		t.Fatal("no flushes recorded")
	}
	if cs.Groups == 0 {
		t.Fatal("6 goroutines hammering 2 hot keys through a 2ms hold window never coalesced")
	}
	if sr.Server.Timeouts != 0 {
		t.Fatalf("coalesced traffic within the default deadline produced %d timeouts", sr.Server.Timeouts)
	}
}
