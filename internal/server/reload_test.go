package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorpath/internal/itgraph"
	"indoorpath/internal/service"
	"indoorpath/internal/synth"
)

// TestVenuesHotReload: POST /v1/venues loads presets and venue-JSON
// directories into the running daemon, new venues route immediately,
// and duplicate IDs answer 409.
func TestVenuesHotReload(t *testing.T) {
	ts, reg := newTestServer(t, Options{}) // hospital + office preloaded

	// Load a preset.
	resp, raw := postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Preset: "figure1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var lr VenuesLoadResponse
	decodeInto(t, raw, &lr)
	if len(lr.Added) != 1 || lr.Added[0] != "figure1" || lr.Venues != 3 {
		t.Fatalf("load response: %+v", lr)
	}
	if _, ok := reg.Get("figure1"); !ok {
		t.Fatalf("figure1 not registered: %v", reg.IDs())
	}

	// The hot-loaded venue routes (the paper's running example: p3 to
	// p4 mid-morning).
	ex := synth.PaperFigure1()
	q := RouteRequest{
		From: &PointDoc{X: ex.P3.X, Y: ex.P3.Y, Floor: ex.P3.Floor},
		To:   &PointDoc{X: ex.P4.X, Y: ex.P4.Y, Floor: ex.P4.Floor},
		At:   "9:00",
	}
	resp, raw = postJSON(t, ts.URL+"/v1/venues/figure1/route", q)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route on hot-loaded venue: %d: %s", resp.StatusCode, raw)
	}

	// Duplicate ID: conflict.
	resp, raw = postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Preset: "figure1"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate preset: status = %d: %s", resp.StatusCode, raw)
	}
	var envelope struct {
		Error *ErrorDoc `json:"error"`
	}
	decodeInto(t, raw, &envelope)
	if envelope.Error == nil || envelope.Error.Code != "conflict" {
		t.Fatalf("duplicate preset error: %s", raw)
	}

	// Directory loads are gated: this server has no VenueDirBase.
	resp, raw = postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Dir: t.TempDir()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ungated dir load: status = %d: %s", resp.StatusCode, raw)
	}
}

// TestVenuesHotReloadDir: with Options.VenueDirBase set (itspqd
// -venues), directories inside the base hot-load; escapes are
// rejected.
func TestVenuesHotReloadDir(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "extra")
	if err := os.Mkdir(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := itgraph.Save(&buf, synth.Hospital()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "annex.json"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(service.Options{})
	ts := httptest.NewServer(New(reg, Options{VenueDirBase: base}))
	t.Cleanup(ts.Close)

	resp, raw := postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Dir: dir})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dir load: status = %d: %s", resp.StatusCode, raw)
	}
	var lr VenuesLoadResponse
	decodeInto(t, raw, &lr)
	if len(lr.Added) != 1 || lr.Added[0] != "annex" || lr.Venues != 1 {
		t.Fatalf("dir load response: %+v", lr)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/venues/annex/route",
		RouteRequest{From: &erCentre, To: &wardCentre, At: "11:00"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route on dir-loaded venue: %d: %s", resp.StatusCode, raw)
	}
	var rr RouteResponse
	decodeInto(t, raw, &rr)
	if !rr.Found {
		t.Fatalf("annex route not found: %s", raw)
	}

	// Paths escaping the base are rejected before touching the disk.
	for _, esc := range []string{"/etc", filepath.Join(base, ".."), filepath.Join(dir, "..", "..")} {
		resp, raw := postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Dir: esc})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("escape %q: status = %d: %s", esc, resp.StatusCode, raw)
		}
	}

	// A mid-directory failure reports the venues that did get added.
	bad := filepath.Join(base, "bad")
	if err := os.Mkdir(bad, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "a-ok.json"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bad, "broken.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Dir: bad})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial load: status = %d: %s", resp.StatusCode, raw)
	}
	var envelope struct {
		Error *ErrorDoc `json:"error"`
	}
	decodeInto(t, raw, &envelope)
	if envelope.Error == nil || !strings.Contains(envelope.Error.Message, "added before the failure: a-ok") {
		t.Fatalf("partial-load error hides the mutation: %s", raw)
	}
	if _, ok := reg.Get("a-ok"); !ok {
		t.Fatalf("a-ok not registered after partial load: %v", reg.IDs())
	}
}

// TestVenuesHotReloadValidation: the request must set exactly one of
// preset/dir, and load failures surface as bad_request.
func TestVenuesHotReloadValidation(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	for name, req := range map[string]VenuesLoadRequest{
		"neither": {},
		"both":    {Preset: "figure1", Dir: "/tmp"},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/venues", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d: %s", name, resp.StatusCode, raw)
		}
	}
	if resp, raw := postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Preset: "narnia"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown preset: status = %d: %s", resp.StatusCode, raw)
	}
	if resp, raw := postJSON(t, ts.URL+"/v1/venues", VenuesLoadRequest{Dir: t.TempDir()}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty dir: status = %d: %s", resp.StatusCode, raw)
	}
	// Strict body decoding applies.
	resp, err := http.Post(ts.URL+"/v1/venues", "application/json", bytes.NewReader([]byte(`{"nope":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status = %d", resp.StatusCode)
	}
}

// TestBatchSharedExecutionOnWire: a shared-source batch against a
// -shared-batch daemon reports the planner's work in the cache summary
// and flags shared-run entries, while answers stay byte-identical to
// an unshared daemon's.
func TestBatchSharedExecutionOnWire(t *testing.T) {
	boot := func(shared bool) *httptest.Server {
		reg := NewRegistry(service.Options{SharedBatch: shared})
		if _, err := reg.AddPresets("hospital"); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(reg, Options{}))
		t.Cleanup(ts.Close)
		return ts
	}
	sharedTS := boot(true)
	plainTS := boot(false)

	req := BatchRequest{}
	for _, to := range []PointDoc{
		{X: 5, Y: 34, Floor: 0}, {X: 15, Y: 34, Floor: 0},
		{X: 25, Y: 34, Floor: 0}, {X: 35, Y: 34, Floor: 0},
	} {
		to := to
		req.Queries = append(req.Queries, RouteRequest{From: &erCentre, To: &to, At: "11:00"})
	}
	_, rawShared := postJSON(t, sharedTS.URL+"/v1/venues/hospital/route:batch", req)
	_, rawPlain := postJSON(t, plainTS.URL+"/v1/venues/hospital/route:batch", req)

	var shared, plain BatchResponse
	decodeInto(t, rawShared, &shared)
	decodeInto(t, rawPlain, &plain)
	if shared.Cache.SharedRuns == 0 || shared.Cache.SharedAnswers < 2 {
		t.Fatalf("shared daemon reported no sharing: %+v", shared.Cache)
	}
	if shared.Cache.Searches >= plain.Cache.Searches {
		t.Fatalf("shared searches %d not fewer than plain %d",
			shared.Cache.Searches, plain.Cache.Searches)
	}
	if plain.Cache.SharedRuns != 0 || plain.Cache.SharedAnswers != 0 {
		t.Fatalf("plain daemon reported sharing: %+v", plain.Cache)
	}
	sharedRunSeen := false
	for i := range shared.Results {
		s, p := shared.Results[i], plain.Results[i]
		if s.Found != p.Found {
			t.Fatalf("result %d: found %v vs %v", i, s.Found, p.Found)
		}
		if s.Found {
			sb, _ := json.Marshal(s.Path)
			pb, _ := json.Marshal(p.Path)
			if !bytes.Equal(sb, pb) {
				t.Fatalf("result %d: shared path differs:\n%s\n%s", i, sb, pb)
			}
		}
		sharedRunSeen = sharedRunSeen || s.SharedRun
		if p.SharedRun {
			t.Fatalf("result %d: plain daemon flagged shared_run", i)
		}
	}
	if !sharedRunSeen {
		t.Fatal("no result carried shared_run=true")
	}
}
