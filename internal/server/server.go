// Package server is the HTTP/JSON front-end of the ITSPQ machinery: a
// Registry of venues (one service.Pool per engine method each) behind
// a small REST-ish API, turning the concurrent serving layer into a
// network daemon (cmd/itspqd).
//
// Endpoints:
//
//	GET  /healthz                       liveness + venue count + build provenance
//	GET  /buildz                        build provenance (VCS revision, go version, start time)
//	GET  /statsz                        per-venue, per-method pool counters
//	GET  /loadz                         windowed (10s/1m/5m) load signals per venue/method
//	GET  /cachez                        cache occupancy, hot pairs, window coverage, engine effort
//	GET  /metricsz                      the same counters in Prometheus text format
//	GET  /v1/venues                     venue listing
//	POST /v1/venues                     hot venue reload (preset / JSON dir)
//	POST /v1/venues/{id}/route          one ITSPQ query
//	POST /v1/venues/{id}/route:batch    batch fan-out via Pool.RouteBatch
//	GET  /v1/venues/{id}/profile        day profile between two points
//	PUT  /v1/venues/{id}/schedules      live door-schedule update
//
// Concurrency: every handler is safe for arbitrary concurrency. Routes
// go through the per-(venue, method) service.Pool, so they inherit its
// guarantees — answers byte-identical to a sequential core.Engine, and
// schedule updates that swap graph+engines+cache atomically per pool
// (a response reflects either the pre- or the post-update schedules in
// full, and post-update requests can never be served pre-update cache
// entries). Schedule updates are serialised per venue; the registry
// row itself is never replaced by an update.
//
// With Options.Coalesce, solo route requests go through a standing
// per-(venue, method) coalescer (internal/coalesce): concurrent
// arrivals are held for up to Options.CoalesceHold and flushed as one
// shared-execution batch, so shareable singletons on separate HTTP
// requests cost one engine run together. Request aborts are
// classified: a server-side deadline answers 504 and counts a
// timeout, while a client disconnect is only counted (client_gone)
// and logged — nothing is written into the dead connection.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indoorpath/internal/coalesce"
	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/service"
)

// Options tune a Server. The zero value is usable.
type Options struct {
	// RequestTimeout bounds route, batch and profile requests; when it
	// expires the handler answers 504 (the underlying search still runs
	// to completion on its goroutine — searches are not cancellable —
	// but its result is discarded). 0 means DefaultRequestTimeout;
	// negative disables the timeout. Schedule updates are never timed
	// out: once accepted they are applied.
	RequestTimeout time.Duration
	// MaxBatch caps the number of queries in one batch request.
	// 0 means DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps request body sizes. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// VenueDirBase gates POST /v1/venues {"dir": ...} hot reloads: when
	// empty (the default) directory loads are rejected — a remote
	// client must not get to point the daemon at arbitrary host paths —
	// and when set, the requested directory must resolve inside this
	// base. Preset loads are always allowed. cmd/itspqd sets it to the
	// -venues directory.
	VenueDirBase string
	// Coalesce enables the standing cross-batch request coalescer
	// (internal/coalesce) in front of every venue's method pools: solo
	// route requests are held for up to CoalesceHold and flushed as one
	// shared-execution batch, so shareable singletons arriving on
	// separate requests share engine runs. The registry's pools should
	// have service.Options.SharedBatch enabled (cmd/itspqd does this
	// automatically when -coalesce is set). The waiting method has no
	// pool and bypasses the coalescer.
	Coalesce bool
	// CoalesceHold is the coalescer's accumulation window; 0 means
	// coalesce.DefaultHold. It bounds the latency a solo request can
	// trade for sharing.
	CoalesceHold time.Duration
	// CoalesceMaxGroup caps one coalesced flush; 0 means
	// coalesce.DefaultMaxGroup.
	CoalesceMaxGroup int
	// Logf sinks server-side log lines (client disconnects, …); nil
	// means the standard library logger.
	Logf func(format string, args ...any)
}

// Defaults for Options zero values.
const (
	DefaultRequestTimeout = 15 * time.Second
	DefaultMaxBatch       = 4096
	DefaultMaxBodyBytes   = 8 << 20
)

// Server answers the HTTP API over a Registry. It implements
// http.Handler; wire it into an http.Server (or httptest) directly.
type Server struct {
	reg  *Registry
	opts Options
	mux  *http.ServeMux

	// coal maps a *service.Pool to its standing coalescer, built
	// lazily on first route (venues can hot-load after the server
	// exists). Pool pointers are stable: schedule updates swap the
	// graph inside a pool, never the pool itself.
	coal sync.Map

	// timeouts counts requests that hit the server-side deadline
	// (answered 504); clientGone counts requests whose client
	// disconnected before the answer was ready (no body written — the
	// connection is dead). Keeping them separate is the point: a wave
	// of impatient clients must not read as a wave of slow searches.
	timeouts   atomic.Int64
	clientGone atomic.Int64

	// started stamps server construction; /statsz reports it so two
	// scrapes of the same process can be rate-normalised (and a
	// restart between scrapes is detectable as a start-time change).
	started time.Time

	// obsv owns the request/stage latency histograms and the /tracez
	// trace ring. Every route, batch and profile request carries a
	// trace; the pool and coalescer layers below only pay for it
	// when the server hands one down.
	obsv *obs.Observer

	// build is the binary's provenance, read once at construction
	// (/healthz and /buildz report it so replay artifacts and fleet
	// debugging can pin which build produced a number).
	build BuildInfoDoc
}

// New builds a Server over a registry.
func New(reg *Registry, opts Options) *Server {
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	// A hold window at or beyond the request deadline would 504 every
	// lightly-loaded solo route (a singleton waits the full hold before
	// its flush): clamp it under the deadline rather than serve a
	// server that times out by construction.
	var clampedHold time.Duration
	if opts.Coalesce && opts.RequestTimeout > 0 {
		hold := opts.CoalesceHold
		if hold <= 0 {
			hold = coalesce.DefaultHold
		}
		if hold >= opts.RequestTimeout {
			clampedHold = hold
			opts.CoalesceHold = opts.RequestTimeout / 2
		}
	}
	s := &Server{
		reg: reg, opts: opts, mux: http.NewServeMux(), started: time.Now(),
		obsv:  obs.NewObserver(obs.ObserverOptions{}),
		build: readBuildInfo(),
	}
	if clampedHold > 0 {
		s.logf("coalesce hold %v >= request timeout %v; clamped to %v",
			clampedHold, opts.RequestTimeout, opts.CoalesceHold)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /buildz", s.handleBuildz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /loadz", s.handleLoadz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	s.mux.HandleFunc("GET /tracez", s.handleTracez)
	s.mux.HandleFunc("GET /cachez", s.handleCachez)
	s.mux.HandleFunc("GET /v1/venues", s.handleVenues)
	s.mux.HandleFunc("POST /v1/venues", s.handleVenuesLoad)
	s.mux.HandleFunc("POST /v1/venues/{id}/route", s.venueHandler(s.handleRoute))
	s.mux.HandleFunc("POST /v1/venues/{id}/route:batch", s.venueHandler(s.handleRouteBatch))
	s.mux.HandleFunc("GET /v1/venues/{id}/profile", s.venueHandler(s.handleProfile))
	s.mux.HandleFunc("PUT /v1/venues/{id}/schedules", s.venueHandler(s.handleSchedules))
	return s
}

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// venueHandler resolves the {id} path segment to a registered venue.
func (s *Server) venueHandler(h func(http.ResponseWriter, *http.Request, *Venue)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		ve, ok := s.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, &ErrorDoc{
				Code: "not_found", Message: fmt.Sprintf("unknown venue %q", id),
			})
			return
		}
		h(w, r, ve)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:    "ok",
		Venues:    s.reg.Len(),
		StartTime: s.started.UTC().Format(time.RFC3339Nano),
		Build:     &s.build,
	})
}

func (s *Server) handleBuildz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, BuildzResponse{
		Build:     s.build,
		StartTime: s.started.UTC().Format(time.RFC3339Nano),
		UptimeSec: time.Since(s.started).Seconds(),
	})
}

// handleStatsz serves the cumulative serving counters. Supports the
// shared strict ?venue=/?method= filters (parseScopeFilter): filtered
// bodies come from the same one-read-per-venue snapshot, just narrowed.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	f, ok := s.parseScopeFilter(w, r)
	if !ok {
		return
	}
	sn := s.snapshotStats()
	resp := StatsResponse{
		Venues: make(map[string]VenueStatsDoc, len(sn.venues)),
		Server: sn.server,
		Stages: sn.stages,
		Process: &ProcessStatsDoc{
			StartTime:  s.started.UTC().Format(time.RFC3339Nano),
			UptimeSec:  time.Since(s.started).Seconds(),
			Goroutines: runtime.NumGoroutine(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}
	for i, ve := range sn.venues {
		if !f.matchVenue(ve.ID()) {
			continue
		}
		resp.Venues[ve.ID()] = filterVenueStats(sn.docs[i], f)
	}
	writeJSON(w, http.StatusOK, resp)
}

// filterVenueStats narrows one venue's stats doc to the filter's
// method (a no-op without a method filter). The snapshot maps are
// shared, so narrowed docs are rebuilt rather than mutated.
func filterVenueStats(doc VenueStatsDoc, f scopeFilter) VenueStatsDoc {
	if f.method == "" {
		return doc
	}
	out := VenueStatsDoc{Epoch: doc.Epoch, Methods: make(map[string]service.Stats, 1)}
	if st, ok := doc.Methods[f.method]; ok {
		out.Methods[f.method] = st
	}
	if st, ok := doc.Coalesce[f.method]; ok {
		out.Coalesce = map[string]coalesce.Stats{f.method: st}
	}
	if h, ok := doc.Requests[f.method]; ok {
		out.Requests = map[string]obs.HistogramSnapshot{f.method: h}
	}
	if e, ok := doc.EngineEffort[f.method]; ok {
		out.EngineEffort = map[string]service.EffortSnapshot{f.method: e}
	}
	return out
}

func (s *Server) handleVenues(w http.ResponseWriter, _ *http.Request) {
	resp := VenuesResponse{Venues: []VenueInfo{}}
	for _, ve := range s.reg.Venues() {
		resp.Venues = append(resp.Venues, ve.Info())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleVenuesLoad is POST /v1/venues: hot venue reload. Presets and
// server-local venue-JSON directories load into the running registry
// exactly as the daemon's startup flags would (the registry supports
// concurrent Add; routes to existing venues keep flowing throughout).
// Like schedule updates, loads are deliberately not subject to the
// request timeout: once validated they are applied, so the response is
// truthful about what is being served.
func (s *Server) handleVenuesLoad(w http.ResponseWriter, r *http.Request) {
	var req VenuesLoadRequest
	if errDoc := s.decodeBody(w, r, &req); errDoc != nil {
		writeError(w, statusOf(errDoc), errDoc)
		return
	}
	if (req.Preset == "") == (req.Dir == "") {
		writeError(w, http.StatusBadRequest, badRequest("set exactly one of \"preset\" or \"dir\""))
		return
	}
	var added []string
	var err error
	if req.Preset != "" {
		added, err = s.reg.AddPresets(req.Preset)
	} else {
		var errDoc *ErrorDoc
		if errDoc = s.checkVenueDir(req.Dir); errDoc != nil {
			writeError(w, statusOf(errDoc), errDoc)
			return
		}
		added, err = s.reg.LoadDir(req.Dir)
	}
	if err != nil {
		// A mid-list failure leaves the earlier venues registered
		// (documented on LoadDir); say so instead of hiding the
		// mutation behind the error.
		msg := err.Error()
		if len(added) > 0 {
			msg = fmt.Sprintf("%s (venues added before the failure: %s)", msg, strings.Join(added, ", "))
		}
		errDoc := &ErrorDoc{Code: "bad_request", Message: msg}
		if errors.Is(err, ErrDuplicateVenue) {
			errDoc.Code = "conflict"
		}
		writeError(w, statusOf(errDoc), errDoc)
		return
	}
	writeJSON(w, http.StatusOK, VenuesLoadResponse{Added: added, Venues: s.reg.Len()})
}

// checkVenueDir enforces Options.VenueDirBase on a requested hot-load
// directory: loads are disabled without a base, and the request must
// resolve inside it (path-cleaned; no ".." escapes).
func (s *Server) checkVenueDir(dir string) *ErrorDoc {
	if s.opts.VenueDirBase == "" {
		return badRequest("directory loads are disabled on this daemon (start it with -venues to enable; presets are always available)")
	}
	base, err := filepath.Abs(s.opts.VenueDirBase)
	if err != nil {
		return &ErrorDoc{Code: "internal", Message: err.Error()}
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return badRequest("bad \"dir\": %v", err)
	}
	rel, err := filepath.Rel(base, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return badRequest("\"dir\" must lie inside the daemon's venue directory")
	}
	return nil
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request, ve *Venue) {
	tr := s.obsv.NewTrace()
	info := obs.RequestInfo{Venue: ve.ID(), Method: methodAsyn}

	sp := tr.Start(obs.StageDecode)
	var req RouteRequest
	errDoc := s.decodeBody(w, r, &req)
	var q core.Query
	var m core.Method
	var waiting bool
	if errDoc == nil {
		q, errDoc = req.query()
	}
	if errDoc == nil {
		if m, waiting, errDoc = parseMethod(req.Method, true); errDoc == nil {
			if waiting {
				info.Method = methodWaiting
			} else {
				info.Method = methodName(m)
			}
		}
	}
	sp.End()
	if errDoc != nil {
		s.finishError(w, tr, info, errDoc)
		return
	}

	resp, outcome := runWithTimeout(r.Context(), s.opts.RequestTimeout, func() RouteResponse {
		if waiting {
			return routeWaiting(ve, q)
		}
		if c := s.coalescer(ve, m); c != nil {
			return routeCoalesced(ve, c, tr, q)
		}
		return routePooled(ve, m, tr, q)
	})
	if s.finishAborted(w, r, outcome, "route") {
		s.finishAbortedTrace(tr, info, outcome)
		return
	}
	info.Hit, info.Coalesced, info.SharedRun = resp.Hit, resp.Coalesced, resp.SharedRun
	if resp.Error != nil {
		s.finishError(w, tr, info, resp.Error)
		return
	}
	if resp.Found {
		info.Outcome = obs.OutcomeOK
	} else {
		info.Outcome = obs.OutcomeNoRoute
	}
	if req.Trace {
		resp.Trace = tr.Doc(info)
	}
	sp = tr.Start(obs.StageRender)
	writeJSON(w, http.StatusOK, resp)
	sp.End()
	s.obsv.FinishRequest(tr, info)
}

// finishError answers an error response with its render span recorded
// and the request's latency observed under the "error" outcome.
func (s *Server) finishError(w http.ResponseWriter, tr *obs.Trace, info obs.RequestInfo, e *ErrorDoc) {
	info.Outcome = obs.OutcomeError
	sp := tr.Start(obs.StageRender)
	writeError(w, statusOf(e), e)
	sp.End()
	s.obsv.FinishRequest(tr, info)
}

// finishAbortedTrace closes out the trace of a timed-out or
// client-abandoned request. The search may still be running on its
// orphaned goroutine; its spans keep feeding the stage histograms
// after this trace is published, they just no longer appear in it.
func (s *Server) finishAbortedTrace(tr *obs.Trace, info obs.RequestInfo, outcome runOutcome) {
	if outcome == runTimeout {
		info.Outcome = obs.OutcomeTimeout
	} else {
		info.Outcome = obs.OutcomeClientGone
	}
	s.obsv.FinishRequest(tr, info)
}

func (s *Server) handleRouteBatch(w http.ResponseWriter, r *http.Request, ve *Venue) {
	tr := s.obsv.NewTrace()
	info := obs.RequestInfo{Venue: ve.ID(), Method: methodAsyn}

	sp := tr.Start(obs.StageDecode)
	m, qs, errDoc := s.decodeBatch(w, r)
	if errDoc == nil {
		info.Method = methodName(m)
	}
	sp.End()
	if errDoc != nil {
		s.finishError(w, tr, info, errDoc)
		return
	}
	resp, outcome := runWithTimeout(r.Context(), s.opts.RequestTimeout, func() BatchResponse {
		pool := ve.Pool(m)
		results, sum := pool.RouteBatchSummaryTraced(tr, qs)
		out := BatchResponse{Results: make([]RouteResponse, len(results))}
		out.Cache = BatchCacheDoc{
			Queries:       sum.Queries,
			ExactHits:     sum.ExactHits,
			WindowHits:    sum.WindowHits,
			SkeletonHits:  sum.SkeletonHits,
			Searches:      sum.Searches,
			SharedRuns:    sum.SharedRuns,
			SharedAnswers: sum.SharedAnswers,
		}
		mv := ve.Model()
		for i, res := range results {
			out.Results[i] = resultResponse(mv, res)
		}
		return out
	})
	if s.finishAborted(w, r, outcome, "batch") {
		s.finishAbortedTrace(tr, info, outcome)
		return
	}
	info.Outcome = obs.OutcomeOK
	sp = tr.Start(obs.StageRender)
	writeJSON(w, http.StatusOK, resp)
	sp.End()
	s.obsv.FinishRequest(tr, info)
}

// decodeBatch reads and validates a batch request body. It returns
// the batch method and queries, or the error to answer with (status
// via statusOf).
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) (core.Method, []core.Query, *ErrorDoc) {
	var req BatchRequest
	if errDoc := s.decodeBody(w, r, &req); errDoc != nil {
		return 0, nil, errDoc
	}
	if len(req.Queries) == 0 {
		return 0, nil, badRequest("empty \"queries\"")
	}
	if len(req.Queries) > s.opts.MaxBatch {
		return 0, nil, &ErrorDoc{
			Code:    "too_large",
			Message: fmt.Sprintf("batch of %d queries exceeds the %d-query limit", len(req.Queries), s.opts.MaxBatch),
		}
	}
	m, _, errDoc := parseMethod(req.Method, false)
	if errDoc != nil {
		return 0, nil, errDoc
	}
	qs := make([]core.Query, len(req.Queries))
	for i := range req.Queries {
		if req.Queries[i].Method != "" {
			return 0, nil, badRequest("queries[%d]: per-query methods are not allowed in a batch (set the batch-level \"method\")", i)
		}
		if req.Queries[i].Trace {
			return 0, nil, badRequest("queries[%d]: inline traces are not available in a batch (trace solo routes, or read /tracez)", i)
		}
		q, errDoc := req.Queries[i].query()
		if errDoc != nil {
			errDoc.Message = fmt.Sprintf("queries[%d]: %s", i, errDoc.Message)
			return 0, nil, errDoc
		}
		qs[i] = q
	}
	return m, qs, nil
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request, ve *Venue) {
	tr := s.obsv.NewTrace()
	info := obs.RequestInfo{Venue: ve.ID(), Method: "profile"}

	sp := tr.Start(obs.StageDecode)
	src, tgt, m, errDoc := parseProfileParams(r)
	sp.End()
	if errDoc != nil {
		s.finishError(w, tr, info, errDoc)
		return
	}
	type profileOut struct {
		entries []core.ProfileEntry
		err     error
	}
	out, outcome := runWithTimeout(r.Context(), s.opts.RequestTimeout, func() profileOut {
		// Engines are cheap to build (lazily allocated search state);
		// the profile walks every checkpoint slot on one fresh,
		// goroutine-confined engine over the current graph.
		sp := tr.Start(obs.StageEngine)
		defer sp.End()
		e := core.NewEngine(ve.Graph(), core.Options{Method: m})
		entries, err := core.DayProfile(e, src, tgt)
		return profileOut{entries, err}
	})
	if s.finishAborted(w, r, outcome, "profile") {
		s.finishAbortedTrace(tr, info, outcome)
		return
	}
	if out.err != nil {
		s.finishError(w, tr, info, errorDocOf(out.err))
		return
	}
	resp := ProfileResponse{
		Venue:   ve.ID(),
		From:    PointDoc{X: src.X, Y: src.Y, Floor: src.Floor},
		To:      PointDoc{X: tgt.X, Y: tgt.Y, Floor: tgt.Floor},
		Entries: make([]ProfileEntryDoc, 0, len(out.entries)),
	}
	for _, e := range out.entries {
		resp.Entries = append(resp.Entries, ProfileEntryDoc{
			StartSec:  float64(e.Start),
			Start:     e.Start.String(),
			EndSec:    float64(e.End),
			End:       e.End.String(),
			Reachable: e.Reachable,
			LengthM:   e.Length,
			Hops:      e.Hops,
		})
	}
	info.Outcome = obs.OutcomeOK
	sp = tr.Start(obs.StageRender)
	writeJSON(w, http.StatusOK, resp)
	sp.End()
	s.obsv.FinishRequest(tr, info)
}

// parseProfileParams extracts the profile endpoint's query parameters.
func parseProfileParams(r *http.Request) (src, tgt geom.Point, m core.Method, errDoc *ErrorDoc) {
	fromStr := r.URL.Query().Get("from")
	toStr := r.URL.Query().Get("to")
	if fromStr == "" || toStr == "" {
		return src, tgt, 0, badRequest("missing \"from\" / \"to\" query parameters (x,y,floor)")
	}
	var err error
	if src, err = ParsePoint(fromStr); err != nil {
		return src, tgt, 0, badRequest("bad \"from\": %v", err)
	}
	if tgt, err = ParsePoint(toStr); err != nil {
		return src, tgt, 0, badRequest("bad \"to\": %v", err)
	}
	m, _, errDoc = parseMethod(r.URL.Query().Get("method"), false)
	return src, tgt, m, errDoc
}

func (s *Server) handleSchedules(w http.ResponseWriter, r *http.Request, ve *Venue) {
	var req SchedulesRequest
	if errDoc := s.decodeBody(w, r, &req); errDoc != nil {
		writeError(w, statusOf(errDoc), errDoc)
		return
	}
	if len(req.Updates) == 0 {
		writeError(w, http.StatusBadRequest, badRequest("empty \"updates\""))
		return
	}
	parsed, errDoc := parseUpdates(ve.Model(), req.Updates)
	if errDoc != nil {
		writeError(w, http.StatusBadRequest, errDoc)
		return
	}
	// Deliberately not subject to the request timeout: once validated,
	// the update is applied — a timed-out-but-applied swap would leave
	// the client unable to tell which schedules are live.
	epoch, err := ve.UpdateSchedules(parsed)
	if err != nil {
		writeError(w, http.StatusInternalServerError, &ErrorDoc{Code: "internal", Message: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SchedulesResponse{
		Venue:        ve.ID(),
		DoorsUpdated: len(parsed),
		Epoch:        epoch,
	})
}

// resultResponse maps one pool outcome — path, error, stats and every
// provenance flag — onto the wire. The single mapping point for solo,
// coalesced and batch-entry responses, so a new Result flag reaches
// all three the moment it is added here.
func resultResponse(mv *model.Venue, res service.Result) RouteResponse {
	resp := responseOf(mv, res.Path, res.Err, &res.Stats)
	resp.CacheHit = res.CacheHit
	resp.Hit = string(res.Hit)
	resp.Shared = res.Shared
	resp.SharedRun = res.SharedRun
	resp.Coalesced = res.Coalesced
	resp.Explain = res.Explain.String() // "" on hits (omitted from the wire)
	return resp
}

// routePooled answers one query on the venue's method pool. Cache hits
// carry the stats of the search that produced the cached outcome, so a
// client sees exactly what Pool.Route reports.
func routePooled(ve *Venue, m core.Method, tr *obs.Trace, q core.Query) RouteResponse {
	return resultResponse(ve.Model(), ve.Pool(m).RouteTraced(tr, q))
}

// routeWaiting answers one query with the earliest-arrival waiting
// router (per-request: the router is goroutine-confined).
func routeWaiting(ve *Venue, q core.Query) RouteResponse {
	path, err := core.NewWaitingRouter(ve.Graph()).Route(q)
	return responseOf(ve.Model(), path, err, nil)
}

// responseOf maps an engine outcome to the wire. ErrNoRoute is the
// regular negative answer (Found=false, no error); ErrNotIndoor and
// anything else become embedded error docs.
func responseOf(mv *model.Venue, path *core.Path, err error, stats *core.SearchStats) RouteResponse {
	switch {
	case errors.Is(err, core.ErrNoRoute):
		return RouteResponse{Found: false, Stats: stats}
	case err != nil:
		return RouteResponse{Error: errorDocOf(err)}
	default:
		return RouteResponse{Found: true, Path: pathDoc(mv, path), Stats: stats}
	}
}

// errorDocOf classifies an engine error.
func errorDocOf(err error) *ErrorDoc {
	if errors.Is(err, core.ErrNotIndoor) {
		return &ErrorDoc{Code: "not_indoor", Message: err.Error()}
	}
	return &ErrorDoc{Code: "internal", Message: err.Error()}
}

// runOutcome says how runWithTimeout ended: with fn's result, by the
// server-side deadline, or because the client disconnected first. The
// two abort causes were previously conflated into one "timed out"
// answer, which both inflated the timeout counters with impatient
// clients and wrote 504 bodies into dead connections.
type runOutcome uint8

const (
	// runDone: fn completed within the deadline.
	runDone runOutcome = iota
	// runTimeout: the server-side deadline expired (context.DeadlineExceeded).
	runTimeout
	// runClientGone: the client's request context was cancelled — the
	// connection is gone and nobody is listening for an answer.
	runClientGone
)

// runWithTimeout runs fn on its own goroutine and waits for the result,
// the deadline, or the client hanging up, whichever comes first. fn
// always runs to completion (searches are not cancellable); on either
// abort its result is discarded. A client that is already gone aborts
// before fn starts — no point burning an engine search for a dead
// connection.
func runWithTimeout[T any](ctx context.Context, d time.Duration, fn func() T) (T, runOutcome) {
	var zero T
	if ctx.Err() != nil {
		return zero, runClientGone
	}
	if d < 0 {
		// Timeout disabled: run inline, but still classify a client
		// that hung up while fn ran — its result has nowhere to go.
		v := fn()
		if ctx.Err() != nil {
			return zero, runClientGone
		}
		return v, runDone
	}
	tctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	ch := make(chan T, 1)
	go func() { ch <- fn() }()
	select {
	case v := <-ch:
		return v, runDone
	case <-tctx.Done():
		if errors.Is(tctx.Err(), context.Canceled) {
			return zero, runClientGone
		}
		return zero, runTimeout
	}
}

// finishAborted resolves a non-done runWithTimeout outcome: a real
// deadline answers 504 and counts a timeout; a client disconnect is
// counted and logged but no body is written — the connection is dead,
// and a 504 there would only corrupt the stats. Returns true when the
// request is finished.
func (s *Server) finishAborted(w http.ResponseWriter, r *http.Request, outcome runOutcome, what string) bool {
	switch outcome {
	case runTimeout:
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout, &ErrorDoc{Code: "timeout", Message: what + " timed out"})
		return true
	case runClientGone:
		s.clientGone.Add(1)
		s.logf("%s %s: client disconnected before the %s completed; result discarded", r.Method, r.URL.Path, what)
		return true
	}
	return false
}

// logf writes one server log line through Options.Logf (default: the
// standard library logger).
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
		return
	}
	log.Printf("indoorpath/server: "+format, args...)
}

// coalescer returns the standing coalescer of a venue's method pool,
// building it on first use (venues can hot-load into a running
// server), or nil when coalescing is disabled. Keyed by pool pointer:
// pools are stable for the life of a venue row, one coalescer per
// (venue, method).
func (s *Server) coalescer(ve *Venue, m core.Method) *coalesce.Coalescer {
	if !s.opts.Coalesce {
		return nil
	}
	pool := ve.Pool(m)
	if c, ok := s.coal.Load(pool); ok {
		return c.(*coalesce.Coalescer)
	}
	c, _ := s.coal.LoadOrStore(pool, coalesce.New(pool, coalesce.Options{
		Hold:     s.opts.CoalesceHold,
		MaxGroup: s.opts.CoalesceMaxGroup,
	}))
	return c.(*coalesce.Coalescer)
}

// coalesceStats collects a venue's per-method coalescer counters (nil
// when coalescing is off or the venue has not routed yet).
func (s *Server) coalesceStats(ve *Venue) map[string]coalesce.Stats {
	if !s.opts.Coalesce {
		return nil
	}
	var out map[string]coalesce.Stats
	for _, m := range pooledMethods {
		if c, ok := s.coal.Load(ve.Pool(m)); ok {
			if out == nil {
				out = make(map[string]coalesce.Stats, len(pooledMethods))
			}
			out[methodName(m)] = c.(*coalesce.Coalescer).Stats()
		}
	}
	return out
}

// routeCoalesced answers one query through the venue's standing
// coalescer: the call blocks for at most the hold window plus one
// flush, and the result is exactly what Pool.Route would have
// produced, with coalescing provenance on top.
func routeCoalesced(ve *Venue, c *coalesce.Coalescer, tr *obs.Trace, q core.Query) RouteResponse {
	return resultResponse(ve.Model(), c.RouteTraced(tr, q))
}

// decodeBody reads and strictly decodes a JSON request body.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) *ErrorDoc {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &ErrorDoc{Code: "too_large", Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest("bad request body: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	_, _ = io.Copy(io.Discard, r.Body)
	return nil
}

// statusOf maps an error code to its HTTP status.
func statusOf(e *ErrorDoc) int {
	switch e.Code {
	case "bad_request":
		return http.StatusBadRequest
	case "not_found":
		return http.StatusNotFound
	case "not_indoor":
		return http.StatusUnprocessableEntity
	case "timeout":
		return http.StatusGatewayTimeout
	case "too_large":
		return http.StatusRequestEntityTooLarge
	case "conflict":
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, e *ErrorDoc) {
	writeJSON(w, status, struct {
		Error *ErrorDoc `json:"error"`
	}{e})
}
