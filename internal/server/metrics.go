package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"indoorpath/internal/coalesce"
	"indoorpath/internal/obs"
	"indoorpath/internal/service"
)

// This file implements GET /metricsz: the pool counters of /statsz in
// Prometheus text exposition format (version 0.0.4), hand-rolled so the
// daemon stays dependency-free. Output is deterministic — venues sorted
// by ID (Registry.Venues), methods in pooledMethods order — so scrapes
// and tests see stable series ordering. One scrape renders one
// snapshotStats() call: every series in a response body comes from the
// same per-venue counter read.

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricDef is one exported series family over the per-(venue, method)
// pool stats.
type metricDef struct {
	name  string
	kind  string // counter | gauge
	help  string
	value func(VenueStatsDoc, string) int64
}

var poolMetrics = []metricDef{
	{"indoorpath_pool_queries_total", "counter",
		"Route calls and batch entries served, per venue and engine method.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Queries }},
	{"indoorpath_pool_batches_total", "counter",
		"RouteBatch calls served.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Batches }},
	{"indoorpath_pool_exact_hits_total", "counter",
		"Outcomes served from the exact-identity result cache.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].CacheHits }},
	{"indoorpath_pool_window_hits_total", "counter",
		"Outcomes served from the validity-window temporal result cache.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].WindowHits }},
	{"indoorpath_pool_skeleton_hits_total", "counter",
		"Outcomes composed from a stored door-to-door skeleton family.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SkeletonHits }},
	{"indoorpath_pool_deduped_total", "counter",
		"Batch entries shared from an identical query in the same batch.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Deduped }},
	{"indoorpath_pool_engine_searches_total", "counter",
		"Queries answered by running an engine search (cache misses).",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].EngineSearches }},
	{"indoorpath_pool_shared_runs_total", "counter",
		"Multi-query shared executions: engine runs answering a whole batch group.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SharedRuns }},
	{"indoorpath_pool_shared_answers_total", "counter",
		"Batch entries answered by a shared multi-query engine run.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SharedAnswers }},
	{"indoorpath_pool_engines_created_total", "counter",
		"Engines constructed rather than reused from the pool.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].EnginesCreated }},
	{"indoorpath_pool_epoch", "gauge",
		"Backend generation: graph swaps applied to the pool since start.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Epoch }},
	{"indoorpath_cache_entries", "gauge",
		"Exact-identity result-cache occupancy (entries currently held).",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].CacheEntries }},
	{"indoorpath_cache_capacity", "gauge",
		"Exact-identity result-cache entry capacity.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].CacheCapacity }},
	{"indoorpath_cache_evictions_total", "counter",
		"Exact-cache entries shed by capacity eviction (invalidation swaps excluded); survives backend swaps.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].CacheEvictions }},
	{"indoorpath_window_entries", "gauge",
		"Validity-window store occupancy (windows currently held).",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Windows }},
	{"indoorpath_window_capacity", "gauge",
		"Validity-window store window capacity.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].WindowCapacity }},
	{"indoorpath_window_evictions_total", "counter",
		"Window-store windows shed by capacity eviction; survives backend swaps.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].WindowEvictions }},
	{"indoorpath_skeleton_families", "gauge",
		"Skeleton-family store occupancy (slot families currently held).",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SkelFamilies }},
	{"indoorpath_skeleton_capacity", "gauge",
		"Skeleton-family store family capacity.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SkelCapacity }},
	{"indoorpath_skeleton_evictions_total", "counter",
		"Skeleton families shed by capacity eviction; survives backend swaps.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SkelEvictions }},
}

// handleMetricsz renders every pool counter, the request/stage latency
// histograms and per-venue and process gauges in Prometheus text
// format.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	sn := s.snapshotStats()
	var sb strings.Builder

	fmt.Fprintf(&sb, "# HELP indoorpath_venues Venues registered in the serving registry.\n")
	fmt.Fprintf(&sb, "# TYPE indoorpath_venues gauge\n")
	fmt.Fprintf(&sb, "indoorpath_venues %d\n", len(sn.venues))

	fmt.Fprintf(&sb, "# HELP indoorpath_venue_epoch Schedule updates applied to the venue.\n")
	fmt.Fprintf(&sb, "# TYPE indoorpath_venue_epoch gauge\n")
	for i, ve := range sn.venues {
		fmt.Fprintf(&sb, "indoorpath_venue_epoch{venue=%q} %d\n", ve.ID(), sn.docs[i].Epoch)
	}

	for _, md := range poolMetrics {
		fmt.Fprintf(&sb, "# HELP %s %s\n", md.name, md.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", md.name, md.kind)
		for i, ve := range sn.venues {
			for _, m := range pooledMethods {
				fmt.Fprintf(&sb, "%s{venue=%q,method=%q} %d\n",
					md.name, ve.ID(), methodName(m), md.value(sn.docs[i], methodName(m)))
			}
		}
	}

	// Request-lifecycle counters: real deadline 504s vs clients that
	// hung up first (kept apart so disconnect waves don't read as slow
	// searches).
	fmt.Fprintf(&sb, "# HELP indoorpath_server_timeouts_total Requests that hit the server-side deadline and answered 504.\n")
	fmt.Fprintf(&sb, "# TYPE indoorpath_server_timeouts_total counter\n")
	fmt.Fprintf(&sb, "indoorpath_server_timeouts_total %d\n", sn.server.Timeouts)
	fmt.Fprintf(&sb, "# HELP indoorpath_server_client_gone_total Requests whose client disconnected before the answer was ready (no 504 emitted).\n")
	fmt.Fprintf(&sb, "# TYPE indoorpath_server_client_gone_total counter\n")
	fmt.Fprintf(&sb, "indoorpath_server_client_gone_total %d\n", sn.server.ClientGone)

	if s.opts.Coalesce {
		writeCoalesceMetrics(&sb, sn)
	}
	writeLoadMetrics(&sb, sn)
	writeReasonMetrics(&sb, sn)
	writeLatencyMetrics(&sb, sn)
	writeEffortMetrics(&sb, sn)

	w.Header().Set("Content-Type", metricsContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}

// loadMetrics are the windowed load-signal gauge families: the /loadz
// derived rates re-exported per (venue, method, window) so dashboards
// and the adaptive serving policy read the same numbers. Gauges, not
// counters — each scrape re-derives them from the rolling ring.
var loadMetrics = []struct {
	name  string
	help  string
	value func(LoadWindowDoc) float64
}{
	{"indoorpath_load_arrival_per_sec",
		"Windowed arrival rate: queries per second over the window.",
		func(d LoadWindowDoc) float64 { return d.ArrivalPerSec }},
	{"indoorpath_load_exact_hit_rate",
		"Windowed fraction of queries served from the exact-identity cache.",
		func(d LoadWindowDoc) float64 { return d.ExactHitRate }},
	{"indoorpath_load_window_hit_rate",
		"Windowed fraction of queries served from the validity-window cache.",
		func(d LoadWindowDoc) float64 { return d.WindowHitRate }},
	{"indoorpath_load_skeleton_hit_rate",
		"Windowed fraction of queries composed from a stored skeleton family.",
		func(d LoadWindowDoc) float64 { return d.SkeletonHitRate }},
	{"indoorpath_load_shareability",
		"Windowed fraction of queries answered by another query's engine run (deduped or shared).",
		func(d LoadWindowDoc) float64 { return d.Shareability }},
	{"indoorpath_load_searches_per_query",
		"Windowed engine searches per query: the cache+sharing miss cost.",
		func(d LoadWindowDoc) float64 { return d.SearchesPerQuery }},
	{"indoorpath_load_hold_utilization",
		"Windowed actual vs configured coalescer hold time (1 means windows run their full hold).",
		func(d LoadWindowDoc) float64 { return d.HoldUtilization }},
	{"indoorpath_load_flush_fanout",
		"Windowed queries per coalescer flush.",
		func(d LoadWindowDoc) float64 { return d.FlushFanout }},
}

// windowLabel renders a window span as its metric label: 10s, 1m, 5m.
func windowLabel(sec int) string {
	if sec >= 60 && sec%60 == 0 {
		return strconv.Itoa(sec/60) + "m"
	}
	return strconv.Itoa(sec) + "s"
}

// writeLoadMetrics renders the indoorpath_load_* gauge families from
// the snapshot's one-read-per-ring load view, in deterministic order
// (venues sorted, pooledMethods order, LoadWindows order).
func writeLoadMetrics(sb *strings.Builder, sn statsSnapshot) {
	for _, md := range loadMetrics {
		fmt.Fprintf(sb, "# HELP %s %s\n", md.name, md.help)
		fmt.Fprintf(sb, "# TYPE %s gauge\n", md.name)
		for i, ve := range sn.venues {
			for _, m := range pooledMethods {
				for wi, smp := range sn.loads[i][methodName(m)] {
					doc := loadWindowDoc(obs.LoadWindows[wi], smp)
					fmt.Fprintf(sb, "%s{venue=%q,method=%q,window=%q} %g\n",
						md.name, ve.ID(), methodName(m), windowLabel(doc.WindowSec), md.value(doc))
				}
			}
		}
	}
}

// writeReasonMetrics renders the cumulative decision-provenance
// counters: why queries missed the caches and why plan members ran
// solo, per (venue, method, reason). Reasons with zero counts are
// omitted so the families stay proportional to what actually happened.
func writeReasonMetrics(sb *strings.Builder, sn statsSnapshot) {
	families := []struct {
		name, help string
		miss       bool
	}{
		{"indoorpath_reason_miss_total",
			"Cache misses by provenance reason, per venue and engine method.", true},
		{"indoorpath_reason_solo_total",
			"Plan members that ran a dedicated engine search, by solo reason.", false},
	}
	for _, fam := range families {
		fmt.Fprintf(sb, "# HELP %s %s\n", fam.name, fam.help)
		fmt.Fprintf(sb, "# TYPE %s counter\n", fam.name)
		for i, ve := range sn.venues {
			for _, m := range pooledMethods {
				for _, rc := range sn.docs[i].Methods[methodName(m)].Reasons.Counts() {
					if rc.Count == 0 || rc.Reason.IsMiss() != fam.miss {
						continue
					}
					fmt.Fprintf(sb, "%s{venue=%q,method=%q,reason=%q} %d\n",
						fam.name, ve.ID(), methodName(m), rc.Reason.String(), rc.Count)
				}
			}
		}
	}
}

// writeLatencyMetrics renders the whole-request and per-stage latency
// histogram families. Request series appear per (venue, method,
// outcome) once touched, in deterministic key order; stage series
// always appear, in stage-pipeline order.
func writeLatencyMetrics(sb *strings.Builder, sn statsSnapshot) {
	fmt.Fprintf(sb, "# HELP indoorpath_request_seconds End-to-end request latency per venue, engine method and outcome.\n")
	fmt.Fprintf(sb, "# TYPE indoorpath_request_seconds histogram\n")
	for _, k := range obs.SortedRequestKeys(sn.requests) {
		labels := fmt.Sprintf("venue=%q,method=%q,outcome=%q", k.Venue, k.Method, k.Outcome)
		writeHistogramSeries(sb, "indoorpath_request_seconds", labels, sn.requests[k])
	}
	fmt.Fprintf(sb, "# HELP indoorpath_stage_seconds Time spent per request-pipeline stage, process-wide.\n")
	fmt.Fprintf(sb, "# TYPE indoorpath_stage_seconds histogram\n")
	for _, stage := range obs.StageNames() {
		writeHistogramSeries(sb, "indoorpath_stage_seconds", fmt.Sprintf("stage=%q", stage), sn.stages[stage])
	}
}

// effortMetrics are the per-search engine-effort histogram families:
// count-valued distributions (one observation per engine run), so the
// _sum lines carry raw counts, not seconds.
var effortMetrics = []struct {
	name  string
	help  string
	value func(service.EffortSnapshot) obs.HistogramSnapshot
}{
	{"indoorpath_engine_effort_pops",
		"Heap pops per engine search.",
		func(e service.EffortSnapshot) obs.HistogramSnapshot { return e.Pops }},
	{"indoorpath_engine_effort_settled",
		"Nodes settled per engine search.",
		func(e service.EffortSnapshot) obs.HistogramSnapshot { return e.Settled }},
	{"indoorpath_engine_effort_relaxations",
		"Edge relaxations per engine search.",
		func(e service.EffortSnapshot) obs.HistogramSnapshot { return e.Relaxations }},
	{"indoorpath_engine_effort_tv_checks",
		"Temporal-variation (door interval) checks per engine search.",
		func(e service.EffortSnapshot) obs.HistogramSnapshot { return e.TVChecks }},
}

// writeEffortMetrics renders the per-search engine-effort histograms
// per (venue, method), from the same snapshot as the pool counters, in
// the deterministic pool-metric order.
func writeEffortMetrics(sb *strings.Builder, sn statsSnapshot) {
	for _, md := range effortMetrics {
		fmt.Fprintf(sb, "# HELP %s %s\n", md.name, md.help)
		fmt.Fprintf(sb, "# TYPE %s histogram\n", md.name)
		for i, ve := range sn.venues {
			for _, m := range pooledMethods {
				labels := fmt.Sprintf("venue=%q,method=%q", ve.ID(), methodName(m))
				writeHistogramSeries(sb, md.name, labels, md.value(sn.docs[i].EngineEffort[methodName(m)]))
			}
		}
	}
}

// writeHistogramSeries renders one histogram in Prometheus text
// format: cumulative _bucket lines, the +Inf bucket, _sum and _count.
// labels is the pre-rendered label list without a trailing comma.
func writeHistogramSeries(sb *strings.Builder, name, labels string, snap obs.HistogramSnapshot) {
	cum := int64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		fmt.Fprintf(sb, "%s_bucket{%s,le=%q} %d\n",
			name, labels, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	if len(snap.Counts) > len(snap.Bounds) {
		cum += snap.Counts[len(snap.Bounds)]
	}
	fmt.Fprintf(sb, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(sb, "%s_sum{%s} %g\n", name, labels, snap.SumSeconds)
	fmt.Fprintf(sb, "%s_count{%s} %d\n", name, labels, cum)
}

// coalesceMetrics are the counter families over the standing
// coalescers' stats (the hold-time histogram is rendered separately).
var coalesceMetrics = []struct {
	name  string
	help  string
	value func(coalesce.Stats) int64
}{
	{"indoorpath_coalesce_queries_total",
		"Solo route requests accepted by the standing coalescer.",
		func(s coalesce.Stats) int64 { return s.Queries }},
	{"indoorpath_coalesce_flushes_total",
		"Coalescer windows flushed (singleton windows included).",
		func(s coalesce.Stats) int64 { return s.Flushes }},
	{"indoorpath_coalesce_groups_total",
		"Coalesced flushes: windows that accumulated two or more solo requests.",
		func(s coalesce.Stats) int64 { return s.Groups }},
	{"indoorpath_coalesce_answers_total",
		"Solo requests answered out of a coalesced (multi-request) flush.",
		func(s coalesce.Stats) int64 { return s.Answers }},
}

// writeCoalesceMetrics renders the coalescer counters and the
// hold-time histogram in Prometheus text format, from the same
// snapshot the rest of the scrape uses. Series appear for every
// (venue, pooled method) whose coalescer exists — i.e. that has routed
// at least once — in the same deterministic order as the pool metrics.
func writeCoalesceMetrics(sb *strings.Builder, sn statsSnapshot) {
	type row struct {
		venue, method string
		st            coalesce.Stats
	}
	var rows []row
	for i, ve := range sn.venues {
		for _, m := range pooledMethods {
			if st, ok := sn.docs[i].Coalesce[methodName(m)]; ok {
				rows = append(rows, row{ve.ID(), methodName(m), st})
			}
		}
	}
	for _, md := range coalesceMetrics {
		fmt.Fprintf(sb, "# HELP %s %s\n", md.name, md.help)
		fmt.Fprintf(sb, "# TYPE %s counter\n", md.name)
		for _, r := range rows {
			fmt.Fprintf(sb, "%s{venue=%q,method=%q} %d\n", md.name, r.venue, r.method, md.value(r.st))
		}
	}
	fmt.Fprintf(sb, "# HELP indoorpath_coalesce_hold_seconds Time a solo request was held between arrival and its flush starting.\n")
	fmt.Fprintf(sb, "# TYPE indoorpath_coalesce_hold_seconds histogram\n")
	for _, r := range rows {
		cum := int64(0)
		for i, bound := range coalesce.HoldBucketBounds {
			cum += r.st.HoldBuckets[i]
			fmt.Fprintf(sb, "indoorpath_coalesce_hold_seconds_bucket{venue=%q,method=%q,le=%q} %d\n",
				r.venue, r.method, strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		cum += r.st.HoldBuckets[len(coalesce.HoldBucketBounds)]
		fmt.Fprintf(sb, "indoorpath_coalesce_hold_seconds_bucket{venue=%q,method=%q,le=\"+Inf\"} %d\n",
			r.venue, r.method, cum)
		fmt.Fprintf(sb, "indoorpath_coalesce_hold_seconds_sum{venue=%q,method=%q} %g\n",
			r.venue, r.method, float64(r.st.HoldSumNanos)/1e9)
		fmt.Fprintf(sb, "indoorpath_coalesce_hold_seconds_count{venue=%q,method=%q} %d\n",
			r.venue, r.method, cum)
	}
}
