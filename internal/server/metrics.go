package server

import (
	"fmt"
	"net/http"
	"strings"
)

// This file implements GET /metricsz: the pool counters of /statsz in
// Prometheus text exposition format (version 0.0.4), hand-rolled so the
// daemon stays dependency-free. Output is deterministic — venues sorted
// by ID (Registry.Venues), methods in pooledMethods order — so scrapes
// and tests see stable series ordering.

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricDef is one exported series family over the per-(venue, method)
// pool stats.
type metricDef struct {
	name  string
	kind  string // counter | gauge
	help  string
	value func(VenueStatsDoc, string) int64
}

var poolMetrics = []metricDef{
	{"indoorpath_pool_queries_total", "counter",
		"Route calls and batch entries served, per venue and engine method.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Queries }},
	{"indoorpath_pool_batches_total", "counter",
		"RouteBatch calls served.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Batches }},
	{"indoorpath_pool_exact_hits_total", "counter",
		"Outcomes served from the exact-identity result cache.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].CacheHits }},
	{"indoorpath_pool_window_hits_total", "counter",
		"Outcomes served from the validity-window temporal result cache.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].WindowHits }},
	{"indoorpath_pool_deduped_total", "counter",
		"Batch entries shared from an identical query in the same batch.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Deduped }},
	{"indoorpath_pool_engine_searches_total", "counter",
		"Queries answered by running an engine search (cache misses).",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].EngineSearches }},
	{"indoorpath_pool_shared_runs_total", "counter",
		"Multi-query shared executions: engine runs answering a whole batch group.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SharedRuns }},
	{"indoorpath_pool_shared_answers_total", "counter",
		"Batch entries answered by a shared multi-query engine run.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].SharedAnswers }},
	{"indoorpath_pool_engines_created_total", "counter",
		"Engines constructed rather than reused from the pool.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].EnginesCreated }},
	{"indoorpath_pool_epoch", "gauge",
		"Backend generation: graph swaps applied to the pool since start.",
		func(d VenueStatsDoc, m string) int64 { return d.Methods[m].Epoch }},
}

// handleMetricsz renders every pool counter plus per-venue and process
// gauges in Prometheus text format.
func (s *Server) handleMetricsz(w http.ResponseWriter, _ *http.Request) {
	venues := s.reg.Venues()
	var sb strings.Builder

	fmt.Fprintf(&sb, "# HELP indoorpath_venues Venues registered in the serving registry.\n")
	fmt.Fprintf(&sb, "# TYPE indoorpath_venues gauge\n")
	fmt.Fprintf(&sb, "indoorpath_venues %d\n", len(venues))

	fmt.Fprintf(&sb, "# HELP indoorpath_venue_epoch Schedule updates applied to the venue.\n")
	fmt.Fprintf(&sb, "# TYPE indoorpath_venue_epoch gauge\n")
	stats := make([]VenueStatsDoc, len(venues))
	for i, ve := range venues {
		stats[i] = ve.Stats()
		fmt.Fprintf(&sb, "indoorpath_venue_epoch{venue=%q} %d\n", ve.ID(), ve.Epoch())
	}

	for _, md := range poolMetrics {
		fmt.Fprintf(&sb, "# HELP %s %s\n", md.name, md.help)
		fmt.Fprintf(&sb, "# TYPE %s %s\n", md.name, md.kind)
		for i, ve := range venues {
			for _, m := range pooledMethods {
				fmt.Fprintf(&sb, "%s{venue=%q,method=%q} %d\n",
					md.name, ve.ID(), methodName(m), md.value(stats[i], methodName(m)))
			}
		}
	}

	w.Header().Set("Content-Type", metricsContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(sb.String()))
}
