package server

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestStatszProcess verifies the /statsz process block: a parseable
// start time, a sane uptime, and live goroutine / GOMAXPROCS values —
// the fields that let two scrapes be rate-normalised (and a restart
// between them detected).
func TestStatszProcess(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	var st StatsResponse
	if resp := getJSON(t, ts.URL+"/statsz", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	p := st.Process
	if p == nil {
		t.Fatal("no process block in /statsz")
	}
	start, err := time.Parse(time.RFC3339Nano, p.StartTime)
	if err != nil {
		t.Fatalf("start_time %q: %v", p.StartTime, err)
	}
	if since := time.Since(start); since < 0 || since > time.Minute {
		t.Fatalf("start_time %v is not a recent instant (%v ago)", start, since)
	}
	if p.UptimeSec < 0 || p.UptimeSec > 60 {
		t.Fatalf("uptime_sec = %v", p.UptimeSec)
	}
	if p.Goroutines <= 0 {
		t.Fatalf("goroutines = %d", p.Goroutines)
	}
	if p.GOMAXPROCS != runtime.GOMAXPROCS(0) {
		t.Fatalf("gomaxprocs = %d, want %d", p.GOMAXPROCS, runtime.GOMAXPROCS(0))
	}

	// Uptime must move between scrapes of one process, start time must
	// not: that pair is what makes scrape deltas rate-normalisable.
	time.Sleep(5 * time.Millisecond)
	var st2 StatsResponse
	getJSON(t, ts.URL+"/statsz", &st2)
	if st2.Process.StartTime != p.StartTime {
		t.Fatalf("start_time changed across scrapes: %q -> %q", p.StartTime, st2.Process.StartTime)
	}
	if st2.Process.UptimeSec <= p.UptimeSec {
		t.Fatalf("uptime did not advance: %v -> %v", p.UptimeSec, st2.Process.UptimeSec)
	}
}
