package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"indoorpath/internal/core"
	"indoorpath/internal/itgraph"
	"indoorpath/internal/model"
	"indoorpath/internal/service"
	"indoorpath/internal/synth"
	"indoorpath/internal/temporal"
)

// pooledMethods are the engine methods a venue keeps warm pools for.
// The waiting method has no pooled engine (its router is stateful and
// cheap); servers build one per request instead.
var pooledMethods = [...]core.Method{core.MethodSyn, core.MethodAsyn, core.MethodStatic}

// Venue is one served venue: an ID plus one service.Pool per engine
// method, all over the same IT-Graph. Schedule updates swap the shared
// graph into every pool (each swap is atomic per pool: a response is
// computed entirely against the old backend or entirely against the
// new one, and post-swap requests can never hit pre-swap cache
// entries).
type Venue struct {
	id     string
	source string
	pools  [len(pooledMethods)]*service.Pool

	// updMu serialises schedule updates so concurrent PUTs cannot
	// interleave their WithSchedules bases; routes never take it.
	updMu sync.Mutex
	// epoch counts applied schedule updates.
	epoch atomic.Int64
}

// ID returns the registry key.
func (v *Venue) ID() string { return v.id }

// Source describes where the venue came from ("preset:mall",
// "file:/path/mall.json", "api").
func (v *Venue) Source() string { return v.source }

// Epoch returns the number of schedule updates applied so far.
func (v *Venue) Epoch() int64 { return v.epoch.Load() }

// Pool returns the serving pool for a pooled method.
func (v *Venue) Pool(m core.Method) *service.Pool { return v.pools[m] }

// Graph returns the current shared IT-Graph.
func (v *Venue) Graph() *itgraph.Graph { return v.pools[core.MethodAsyn].Graph() }

// Model returns the current venue model.
func (v *Venue) Model() *model.Venue { return v.Graph().Venue() }

// UpdateSchedules applies door-schedule changes as one atomic swap:
// the venue model is rebuilt via WithSchedules, one new IT-Graph is
// constructed, and every method pool swaps to it (engines and result
// caches included). Updates are serialised; routes keep flowing
// throughout and each response reflects either the old or the new
// schedule set in full, never a mix. The returned epoch is THIS
// update's generation (computed under the update lock, so concurrent
// updaters each get their own number).
func (v *Venue) UpdateSchedules(updates map[model.DoorID]temporal.Schedule) (int64, error) {
	v.updMu.Lock()
	defer v.updMu.Unlock()
	base := v.Graph().Venue()
	v2, err := base.WithSchedules(updates)
	if err != nil {
		return v.epoch.Load(), err
	}
	g2, err := itgraph.New(v2)
	if err != nil {
		return v.epoch.Load(), err
	}
	for _, p := range v.pools {
		p.SetGraph(g2)
	}
	return v.epoch.Add(1), nil
}

// Stats snapshots the venue's per-method pool counters and engine-
// effort histograms. Effort is read before the counters so the
// counter read order inside service.Stats (queries last) stays the
// final read of the method's scrape.
func (v *Venue) Stats() VenueStatsDoc {
	doc := VenueStatsDoc{
		Epoch:        v.Epoch(),
		Methods:      make(map[string]service.Stats, len(pooledMethods)),
		EngineEffort: make(map[string]service.EffortSnapshot, len(pooledMethods)),
	}
	for _, m := range pooledMethods {
		doc.EngineEffort[methodName(m)] = v.pools[m].Effort()
		doc.Methods[methodName(m)] = v.pools[m].Stats()
	}
	return doc
}

// Info summarises the venue for the listing endpoint.
func (v *Venue) Info() VenueInfo {
	mv := v.Model()
	g := v.Graph()
	return VenueInfo{
		ID:          v.id,
		Name:        mv.Name,
		Source:      v.source,
		Partitions:  mv.PartitionCount(),
		Doors:       mv.DoorCount(),
		Floors:      len(mv.Floors()),
		Checkpoints: g.Checkpoints().Len(),
		Epoch:       v.Epoch(),
	}
}

// Registry maps venue IDs to served venues. Registration (Add,
// LoadDir, AddPresets) and lookup are safe for concurrent use; the
// expensive per-venue state lives in the Venue, so lookups are a brief
// read-lock away from lock-free.
type Registry struct {
	poolOpts service.Options

	mu     sync.RWMutex
	venues map[string]*Venue
}

// NewRegistry builds an empty registry; every venue added later gets
// one pool per method configured from opts (the Engine.Method field is
// overridden per pool).
func NewRegistry(opts service.Options) *Registry {
	return &Registry{poolOpts: opts, venues: make(map[string]*Venue)}
}

// Presets lists the built-in venue IDs AddPresets understands.
func Presets() []string { return []string{"mall", "hospital", "office", "figure1"} }

// PresetVenue builds one preset's venue model. Presets are pure
// functions of their name (the mall's generator seeds are fixed), so
// every caller — AddPresets here, the replay harness rebuilding served
// geometry client-side — gets the identical model.
func PresetVenue(name string) (*model.Venue, error) {
	switch name {
	case "mall":
		m, err := synth.GenerateMall(synth.MallConfig{
			Seed: 42,
			ATI:  synth.ATIConfig{CheckpointCount: 8, Seed: 43},
		})
		if err != nil {
			return nil, fmt.Errorf("server: preset mall: %w", err)
		}
		return m.Venue, nil
	case "hospital":
		return synth.Hospital(), nil
	case "office":
		return synth.Office(), nil
	case "figure1":
		return synth.PaperFigure1().Venue, nil
	}
	return nil, fmt.Errorf("server: unknown preset %q (want one of %s)", name, strings.Join(Presets(), ", "))
}

// ErrDuplicateVenue is wrapped by Add/AddGraph when the ID is taken —
// the hot-reload endpoint maps it to HTTP 409.
var ErrDuplicateVenue = errors.New("venue id already registered")

// Add registers a venue model under an ID, building its IT-Graph and
// method pools. IDs are path segments: non-empty, no "/".
func (r *Registry) Add(id string, v *model.Venue) error {
	g, err := itgraph.New(v)
	if err != nil {
		return fmt.Errorf("server: venue %q: %w", id, err)
	}
	return r.AddGraph(id, g, "api")
}

// AddGraph registers a venue by its already-built IT-Graph (source is
// recorded for the listing endpoint).
func (r *Registry) AddGraph(id string, g *itgraph.Graph, source string) error {
	if id == "" || strings.ContainsAny(id, "/ ") {
		return fmt.Errorf("server: bad venue id %q: must be a non-empty path segment", id)
	}
	ve := &Venue{id: id, source: source}
	for _, m := range pooledMethods {
		opts := r.poolOpts
		opts.Engine.Method = m
		ve.pools[m] = service.New(g, opts)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.venues[id]; dup {
		return fmt.Errorf("server: venue %q: %w", id, ErrDuplicateVenue)
	}
	r.venues[id] = ve
	return nil
}

// LoadDir registers every *.json venue document in dir (see
// cmd/venuegen for the format); the ID is the file name without the
// extension. Returns the IDs added, in load (sorted file name) order.
// On a mid-directory error the venues already registered stay
// registered — the hot-reload endpoint reports the error and callers
// can inspect IDs().
func (r *Registry) LoadDir(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("server: no *.json venue files in %q", dir)
	}
	sort.Strings(files)
	added := make([]string, 0, len(files))
	for _, file := range files {
		// Cheap duplicate check before parsing and graph construction
		// (benign TOCTOU: AddGraph re-checks under the lock).
		if id := strings.TrimSuffix(filepath.Base(file), ".json"); r.has(id) {
			return added, fmt.Errorf("server: venue %q: %w", id, ErrDuplicateVenue)
		}
		f, err := os.Open(file)
		if err != nil {
			return added, err
		}
		v, err := itgraph.Load(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return added, fmt.Errorf("server: %s: %w", file, err)
		}
		id := strings.TrimSuffix(filepath.Base(file), ".json")
		g, err := itgraph.New(v)
		if err != nil {
			return added, fmt.Errorf("server: %s: %w", file, err)
		}
		if err := r.AddGraph(id, g, "file:"+file); err != nil {
			return added, err
		}
		added = append(added, id)
	}
	return added, nil
}

// AddPresets registers built-in synthetic venues from a comma-
// separated list: mall (the paper's 5-floor synthetic mall), hospital,
// office, figure1 (the paper's running example). Returns the IDs
// added, in list order.
func (r *Registry) AddPresets(names string) ([]string, error) {
	var added []string
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		known := false
		for _, p := range Presets() {
			if p == name {
				known = true
				break
			}
		}
		if !known {
			return added, fmt.Errorf("server: unknown preset %q (want one of %s)", name, strings.Join(Presets(), ", "))
		}
		// Cheap duplicate check before venue synthesis and graph
		// construction (benign TOCTOU: AddGraph re-checks under the
		// lock) — a replayed hot-reload request must not burn a full
		// mall build just to answer 409.
		if r.has(name) {
			return added, fmt.Errorf("server: venue %q: %w", name, ErrDuplicateVenue)
		}
		v, err := PresetVenue(name)
		if err != nil {
			return added, err
		}
		g, err := itgraph.New(v)
		if err != nil {
			return added, fmt.Errorf("server: preset %s: %w", name, err)
		}
		if err := r.AddGraph(name, g, "preset:"+name); err != nil {
			return added, err
		}
		added = append(added, name)
	}
	return added, nil
}

// has reports whether id is registered.
func (r *Registry) has(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.venues[id]
	return ok
}

// Get returns the venue registered under id.
func (r *Registry) Get(id string) (*Venue, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ve, ok := r.venues[id]
	return ve, ok
}

// Len returns the number of registered venues.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.venues)
}

// IDs returns the registered venue IDs, sorted.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, 0, len(r.venues))
	for id := range r.venues {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Venues returns the registered venues sorted by ID.
func (r *Registry) Venues() []*Venue {
	r.mu.RLock()
	out := make([]*Venue, 0, len(r.venues))
	for _, ve := range r.venues {
		out = append(out, ve)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
