package server

import (
	"net/http"

	"indoorpath/internal/core"
	"indoorpath/internal/model"
	"indoorpath/internal/tcache"
	"indoorpath/internal/temporal"
)

// This file implements GET /cachez: the cache- and workload-
// introspection endpoint. Per venue and method it renders exact-cache
// and window-store occupancy vs capacity with eviction counters, the
// window store's per-OD-pair coverage map, the space-saving top-K pair
// table with hit rates, and the per-search engine-effort histograms.
// Supports the shared strict ?venue=/?method= filters.

// maxWindowPairs caps the per-pair window listing in one /cachez body.
// PairsTotal always reports the uncapped count, so the cap is never a
// silent truncation.
const maxWindowPairs = 64

// handleCachez serves the cache introspection view. Each venue/method
// doc is gathered in one pass whose read order makes the body's
// invariants hold under racing traffic: the top-K table is snapshotted
// before the pool counters (whose own read order puts queries last),
// so every pair tally is <= the body's Queries; occupancy and capacity
// come from one locked read, so occupancy <= capacity.
func (s *Server) handleCachez(w http.ResponseWriter, r *http.Request) {
	f, ok := s.parseScopeFilter(w, r)
	if !ok {
		return
	}
	venues := s.reg.Venues()
	resp := CachezResponse{Venues: make(map[string]map[string]CacheMethodDoc, len(venues))}
	for _, ve := range venues {
		if !f.matchVenue(ve.ID()) {
			continue
		}
		mv := ve.Model()
		methods := make(map[string]CacheMethodDoc, len(pooledMethods))
		for _, m := range pooledMethods {
			if !f.matchMethod(methodName(m)) {
				continue
			}
			methods[methodName(m)] = cacheMethodDoc(ve, m, mv)
		}
		resp.Venues[ve.ID()] = methods
	}
	writeJSON(w, http.StatusOK, resp)
}

// cacheMethodDoc gathers one pool's introspection doc. Read order is
// the scrape-consistency discipline: top-K pairs first, then effort
// histograms and window coverage, then Stats — whose own read order
// puts the query counter last, so it dominates every tally above.
func cacheMethodDoc(ve *Venue, m core.Method, mv *model.Venue) CacheMethodDoc {
	pool := ve.Pool(m)
	pairs := pool.HotPairs()
	effort := pool.Effort()
	coverage := pool.WindowCoverage()
	skelCov := pool.SkeletonCoverage()
	st := pool.Stats()

	doc := CacheMethodDoc{
		Exact: CacheOccupancyDoc{
			Entries:   st.CacheEntries,
			Capacity:  st.CacheCapacity,
			Evictions: st.CacheEvictions,
		},
		Window: WindowStoreDoc{
			Windows:    st.Windows,
			Capacity:   st.WindowCapacity,
			Evictions:  st.WindowEvictions,
			PairsTotal: len(coverage),
		},
		Skeleton: SkeletonStoreDoc{
			Families:   st.SkelFamilies,
			Capacity:   st.SkelCapacity,
			Evictions:  st.SkelEvictions,
			PairsTotal: len(skelCov),
		},
		PairCapacity: pool.HotPairCapacity(),
		Queries:      st.Queries,
		EngineEffort: effort,
	}

	// The skeleton coverage map: per-pair family and chain counts with
	// whole-pair day coverage, most chains first (tcache order).
	for i, pc := range skelCov {
		if i >= maxWindowPairs {
			break
		}
		doc.Skeleton.Pairs = append(doc.Skeleton.Pairs, SkeletonPairDoc{
			Src:         partName(mv, pc.Key.Src),
			Tgt:         partName(mv, pc.Key.Tgt),
			Families:    pc.Families,
			Chains:      pc.Windows,
			DayCoverage: pc.CoveredSec / float64(temporal.DaySeconds),
		})
	}

	// The coverage map: per-pair window counts and day coverage, most
	// windows first (tcache.Coverage order), capped but never silently.
	covByKey := make(map[tcache.Key]tcache.PairCoverage, len(coverage))
	for i, pc := range coverage {
		covByKey[pc.Key] = pc
		if i < maxWindowPairs {
			doc.Window.Pairs = append(doc.Window.Pairs, WindowPairDoc{
				Src:         partName(mv, pc.Key.Src),
				Tgt:         partName(mv, pc.Key.Tgt),
				Families:    pc.Families,
				Windows:     pc.Windows,
				DayCoverage: dayCoverage(pc),
			})
		}
	}

	ratio := func(num, den int64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	for _, pc := range pairs {
		key := tcache.Key{Src: model.PartitionID(pc.Key.Src), Tgt: model.PartitionID(pc.Key.Tgt)}
		row := HotPairDoc{
			Src:            partName(mv, key.Src),
			Tgt:            partName(mv, key.Tgt),
			Queries:        pc.Queries,
			ExactHits:      pc.ExactHits,
			WindowHits:     pc.WindowHits,
			SkeletonHits:   pc.SkeletonHits,
			Deduped:        pc.Deduped,
			EngineSearches: pc.EngineSearches,
			Effort:         pc.Effort,
			ErrBound:       pc.ErrBound,
			ExactHitRate:   ratio(pc.ExactHits, pc.Queries),
			WindowHitRate:  ratio(pc.WindowHits, pc.Queries),
		}
		if cov, ok := covByKey[key]; ok {
			row.DayCoverage = dayCoverage(cov)
		}
		doc.TopPairs = append(doc.TopPairs, row)
	}
	return doc
}

// dayCoverage derives a pair's mean per-family share of the 24h
// departure axis. Windows within one family are disjoint, so the
// value lies in [0, 1].
func dayCoverage(pc tcache.PairCoverage) float64 {
	if pc.Families == 0 {
		return 0
	}
	return pc.CoveredSec / (float64(pc.Families) * float64(temporal.DaySeconds))
}

// partName resolves a partition ID against the venue model.
func partName(mv *model.Venue, id model.PartitionID) string {
	return mv.Partition(id).Name
}
