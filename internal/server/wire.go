package server

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"indoorpath/internal/coalesce"
	"indoorpath/internal/core"
	"indoorpath/internal/geom"
	"indoorpath/internal/model"
	"indoorpath/internal/obs"
	"indoorpath/internal/service"
	"indoorpath/internal/temporal"
)

// This file defines the JSON wire format of the query daemon. Times
// travel in two forms side by side: numeric seconds since midnight
// (exact, fractional — what clients doing arithmetic want) and the
// paper's "H:MM" rendering (what humans reading curl output want).

// PointDoc is a location on a floor.
type PointDoc struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Floor int     `json:"floor"`
}

func (p PointDoc) point() geom.Point { return geom.Pt(p.X, p.Y, p.Floor) }

// RouteRequest is the body of POST /v1/venues/{id}/route. From, To and
// At are required; Method defaults to "asyn"; Speed 0 means the
// paper's 5 km/h walking speed.
type RouteRequest struct {
	From *PointDoc `json:"from"`
	To   *PointDoc `json:"to"`
	// At is the departure time of day, "H:MM" or "H:MM:SS".
	At string `json:"at"`
	// Method is syn | asyn | static | waiting. Empty means asyn.
	// Inside a batch the method is fixed batch-wide and per-query
	// methods are rejected.
	Method string `json:"method,omitempty"`
	// Speed is the walking speed in m/s; 0 means 5 km/h.
	Speed float64 `json:"speed,omitempty"`
	// Trace opts into returning the request's span trace inline in
	// the response (solo routes only; rejected inside a batch).
	Trace bool `json:"trace,omitempty"`
}

// query validates the request and converts it to a core query. The
// returned *ErrorDoc is nil on success.
func (rq *RouteRequest) query() (core.Query, *ErrorDoc) {
	if rq.From == nil {
		return core.Query{}, badRequest("missing \"from\" point")
	}
	if rq.To == nil {
		return core.Query{}, badRequest("missing \"to\" point")
	}
	if rq.At == "" {
		return core.Query{}, badRequest("missing \"at\" time of day")
	}
	at, err := temporal.Parse(rq.At)
	if err != nil {
		return core.Query{}, badRequest("bad \"at\": %v", err)
	}
	if rq.Speed < 0 || math.IsNaN(rq.Speed) || math.IsInf(rq.Speed, 0) {
		return core.Query{}, badRequest("bad \"speed\" %v: must be a finite non-negative m/s value", rq.Speed)
	}
	return core.Query{Source: rq.From.point(), Target: rq.To.point(), At: at, Speed: rq.Speed}, nil
}

// BatchRequest is the body of POST /v1/venues/{id}/route:batch. The
// whole batch runs through one pool, so the method is batch-wide
// (waiting has no batch form).
type BatchRequest struct {
	Method  string         `json:"method,omitempty"`
	Queries []RouteRequest `json:"queries"`
}

// DoorStep is one door crossing of a returned path.
type DoorStep struct {
	Door      string  `json:"door"`
	ArriveSec float64 `json:"arrive_sec"`
	Arrive    string  `json:"arrive"`
}

// PathDoc is a found path on the wire.
type PathDoc struct {
	// Format is the paper's path notation, e.g. "(ps, d18, pt)".
	Format     string     `json:"format"`
	LengthM    float64    `json:"length_m"`
	Hops       int        `json:"hops"`
	DepartSec  float64    `json:"depart_sec"`
	Depart     string     `json:"depart"`
	ArriveSec  float64    `json:"arrive_sec"`
	Arrive     string     `json:"arrive"`
	WaitSec    float64    `json:"wait_sec,omitempty"`
	Doors      []DoorStep `json:"doors"`
	Partitions []string   `json:"partitions"`
}

// RouteResponse is one route outcome. Found=false with no error is the
// paper's regular "no such routes" answer (HTTP 200); per-query errors
// (e.g. an endpoint outside every partition) ride in Error.
type RouteResponse struct {
	Found bool     `json:"found"`
	Path  *PathDoc `json:"path,omitempty"`
	// Stats are the search statistics of the engine run that produced
	// the outcome (for cache hits: the original search); absent for
	// the waiting method, which has no comparable counters.
	Stats *core.SearchStats `json:"stats,omitempty"`
	// CacheHit marks outcomes served from a pool result cache (exact
	// or validity-window).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Hit is the outcome's cache provenance: "miss" (engine search),
	// "exact" (exact-identity cache), "window" (validity-window cache,
	// arrivals recomputed for this departure) or "skeleton" (answer
	// composed from the OD pair's door-to-door skeleton family — no
	// stored answer for these exact points existed; itspqd
	// -skeleton-cache). Absent for the waiting method, which has no
	// pool.
	Hit string `json:"hit,omitempty"`
	// Shared marks batch entries answered by an identical query's
	// search elsewhere in the same batch.
	Shared bool `json:"shared,omitempty"`
	// SharedRun marks batch entries answered by a multi-query shared
	// execution — one engine run serving a whole same-endpoint group
	// (the shared-execution batch planner; itspqd -shared-batch).
	SharedRun bool `json:"shared_run,omitempty"`
	// Coalesced marks solo route answers that came out of a
	// multi-query flush of the standing cross-batch coalescer (itspqd
	// -coalesce): the request was held briefly and answered together
	// with concurrently arriving ones.
	Coalesced bool `json:"coalesced,omitempty"`
	// Explain is the decision provenance of a cache miss — why no
	// cache could answer: "no_exact_entry", "window_family_absent",
	// "outside_windows", "skeleton_uncertified" (a skeleton family
	// covered the departure but could not certify a composition for
	// these exact points), "epoch_raced" or "uncacheable" (the
	// obs.Reason vocabulary). Absent on hits and on deduped copies.
	Explain string    `json:"explain,omitempty"`
	Error   *ErrorDoc `json:"error,omitempty"`
	// Trace is the request's span trace, present only when the
	// request set "trace": true. Snapshotted just before the response
	// is encoded, so the render span itself is not included (the full
	// trace, render included, lands in /tracez).
	Trace *obs.TraceDoc `json:"trace,omitempty"`
}

// BatchCacheDoc summarises how one batch was served — the fields
// cmd/itspq prints as its sweep summary line. Searches counts engine
// runs actually executed: with the shared-execution planner one run
// can answer a whole group, so SharedAnswers entries share SharedRuns
// of those runs, and Queries = ExactHits + WindowHits + SkeletonHits +
// SharedAnswers + (Searches - SharedRuns) + deduplicated entries.
type BatchCacheDoc struct {
	Queries    int `json:"queries"`
	ExactHits  int `json:"exact_hits"`
	WindowHits int `json:"window_hits"`
	// SkeletonHits counts entries composed from a stored skeleton
	// family (itspqd -skeleton-cache); omitted while zero so the wire
	// is unchanged with the store off.
	SkeletonHits int `json:"skeleton_hits,omitempty"`
	Searches     int `json:"searches"`
	// SharedRuns / SharedAnswers are the shared-execution tallies,
	// omitted while zero so the wire is unchanged with the planner off.
	SharedRuns    int `json:"shared_runs,omitempty"`
	SharedAnswers int `json:"shared_answers,omitempty"`
}

// BatchResponse aligns positionally with BatchRequest.Queries.
type BatchResponse struct {
	Results []RouteResponse `json:"results"`
	// Cache summarises how the batch was served.
	Cache BatchCacheDoc `json:"cache"`
}

// pathDoc converts a found path, resolving door and partition names
// against the venue.
func pathDoc(v *model.Venue, p *core.Path) *PathDoc {
	doc := &PathDoc{
		Format:    p.Format(v),
		LengthM:   p.Length,
		Hops:      p.Hops(),
		DepartSec: float64(p.DepartedAt),
		Depart:    p.DepartedAt.String(),
		ArriveSec: float64(p.ArrivalAtTgt),
		Arrive:    p.ArrivalAtTgt.String(),
		WaitSec:   float64(p.TotalWait),
	}
	for i, d := range p.Doors {
		doc.Doors = append(doc.Doors, DoorStep{
			Door:      v.Door(d).Name,
			ArriveSec: float64(p.Arrivals[i]),
			Arrive:    p.Arrivals[i].String(),
		})
	}
	for _, part := range p.Partitions {
		doc.Partitions = append(doc.Partitions, v.Partition(part).Name)
	}
	return doc
}

// ProfileEntryDoc is one checkpoint slot of a day profile.
type ProfileEntryDoc struct {
	StartSec  float64 `json:"start_sec"`
	Start     string  `json:"start"`
	EndSec    float64 `json:"end_sec"`
	End       string  `json:"end"`
	Reachable bool    `json:"reachable"`
	LengthM   float64 `json:"length_m,omitempty"`
	Hops      int     `json:"hops,omitempty"`
}

// ProfileResponse is the body of GET /v1/venues/{id}/profile.
type ProfileResponse struct {
	Venue   string            `json:"venue"`
	From    PointDoc          `json:"from"`
	To      PointDoc          `json:"to"`
	Entries []ProfileEntryDoc `json:"entries"`
}

// SchedulesRequest is the body of PUT /v1/venues/{id}/schedules.
// Updates maps door names to ATI lists ("8:00-16:00" or the paper's
// "[8:00, 16:00)"); null means always open, an empty list means always
// closed. The whole map is applied as one atomic graph swap.
type SchedulesRequest struct {
	Updates map[string][]string `json:"updates"`
}

// SchedulesResponse confirms an applied schedule update. Epoch is the
// venue's update generation after the swap; any request answered at
// this epoch or later reflects the new schedules.
type SchedulesResponse struct {
	Venue        string `json:"venue"`
	DoorsUpdated int    `json:"doors_updated"`
	Epoch        int64  `json:"epoch"`
}

// VenuesLoadRequest is the body of POST /v1/venues — hot venue reload:
// load built-in presets and/or a server-local directory of venue JSON
// files into the running daemon. Exactly one of Preset or Dir must be
// set. IDs are derived as at startup (preset names / file names); a
// taken ID answers 409 conflict.
type VenuesLoadRequest struct {
	// Preset is a comma-separated built-in list (see GET /v1/venues
	// sources), e.g. "office" or "hospital,figure1".
	Preset string `json:"preset,omitempty"`
	// Dir is a directory on the server host containing *.json venue
	// documents (the cmd/venuegen format). Directory loads are gated by
	// Options.VenueDirBase (itspqd -venues): disabled when unset, and
	// the requested directory must resolve inside the base.
	Dir string `json:"dir,omitempty"`
}

// VenuesLoadResponse confirms a hot venue load: the IDs added by this
// request and the new registry size.
type VenuesLoadResponse struct {
	Added  []string `json:"added"`
	Venues int      `json:"venues"`
}

// VenueInfo is one row of GET /v1/venues.
type VenueInfo struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Source      string `json:"source"`
	Partitions  int    `json:"partitions"`
	Doors       int    `json:"doors"`
	Floors      int    `json:"floors"`
	Checkpoints int    `json:"checkpoints"`
	Epoch       int64  `json:"epoch"`
}

// VenuesResponse is the body of GET /v1/venues, sorted by ID.
type VenuesResponse struct {
	Venues []VenueInfo `json:"venues"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Venues int    `json:"venues"`
	// StartTime is the server's construction instant, RFC 3339 UTC —
	// a changed start time between two probes means a restart.
	StartTime string `json:"start_time,omitempty"`
	// Build is the binary's provenance (see BuildInfoDoc).
	Build *BuildInfoDoc `json:"build,omitempty"`
}

// BuildInfoDoc is the binary's build provenance, read once at server
// construction via runtime/debug.ReadBuildInfo. The VCS fields are
// stamped by `go build` for main packages in a repository checkout and
// absent otherwise (e.g. under `go test`), so consumers must treat
// them as best-effort.
type BuildInfoDoc struct {
	// GoVersion is the toolchain that built the binary ("go1.22.x").
	GoVersion string `json:"go_version"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
	// Revision is the VCS commit the binary was built from.
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the commit timestamp (RFC 3339).
	Time string `json:"vcs_time,omitempty"`
	// Dirty reports uncommitted local modifications at build time — a
	// dirty binary's revision does not pin its behaviour.
	Dirty bool `json:"vcs_dirty,omitempty"`
}

// BuildzResponse is the body of GET /buildz: build provenance plus
// process start time, so replay artifacts and fleet debugging can pin
// which build produced a report.
type BuildzResponse struct {
	Build     BuildInfoDoc `json:"build"`
	StartTime string       `json:"start_time"`
	UptimeSec float64      `json:"uptime_sec"`
}

// VenueStatsDoc holds one venue's serving counters, one service.Stats
// per method pool; Coalesce adds the standing coalescer's counters per
// method when coalescing is enabled (and the method has seen a route).
type VenueStatsDoc struct {
	Epoch    int64                     `json:"epoch"`
	Methods  map[string]service.Stats  `json:"methods"`
	Coalesce map[string]coalesce.Stats `json:"coalesce,omitempty"`
	// Requests are the server-side request-latency histograms per
	// method (merged over outcomes), present once the method has
	// served a request. internal/replay subtracts two scrapes of
	// these to derive per-phase latency quantiles independently of
	// its own client-side clock.
	Requests map[string]obs.HistogramSnapshot `json:"request_seconds,omitempty"`
	// EngineEffort are the per-search engine-effort histograms per
	// method (pops, settled, relaxations, TV checks; one observation
	// per actual engine run). internal/replay subtracts two scrapes to
	// derive per-phase effort distributions — the before/after baseline
	// for engine-core optimisation work.
	EngineEffort map[string]service.EffortSnapshot `json:"engine_effort,omitempty"`
}

// ServerStatsDoc holds request-lifecycle counters of the server
// itself. Timeouts and ClientGone are deliberately separate: a client
// that hangs up is not a slow search, and counting it as one would
// inflate the 504 rate.
type ServerStatsDoc struct {
	Timeouts   int64 `json:"timeouts"`
	ClientGone int64 `json:"client_gone"`
}

// ProcessStatsDoc describes the serving process itself: when it
// started, how long it has been up, and its current concurrency
// footprint. Two /statsz scrapes can only be rate-normalised against
// each other when they come from one uninterrupted process — a changed
// start time means the counters reset in between.
type ProcessStatsDoc struct {
	// StartTime is the server's construction instant, RFC 3339 UTC.
	StartTime string `json:"start_time"`
	// UptimeSec is seconds since StartTime, at scrape time.
	UptimeSec float64 `json:"uptime_sec"`
	// Goroutines is the live goroutine count at scrape time.
	Goroutines int `json:"goroutines"`
	// GOMAXPROCS is the scheduler's processor limit.
	GOMAXPROCS int `json:"gomaxprocs"`
}

// StatsResponse is the body of GET /statsz.
type StatsResponse struct {
	Venues map[string]VenueStatsDoc `json:"venues"`
	Server ServerStatsDoc           `json:"server"`
	// Process describes the serving process (start time, uptime,
	// goroutines) so scrape pairs can be rate-normalised.
	Process *ProcessStatsDoc `json:"process,omitempty"`
	// Stages are the process-wide per-stage duration histograms
	// (decode, hold, probe, plan, engine, store, render), keyed by
	// stage name.
	Stages map[string]obs.HistogramSnapshot `json:"stage_seconds,omitempty"`
}

// TracezResponse is the body of GET /tracez: the retained recent
// traces, slowest first, then the 1-in-N sampled population newest
// first. Filter query params (?venue=, ?method=, ?min_ms=, ?outcome=)
// narrow the listing server-side; Count counts the traces returned.
type TracezResponse struct {
	Count  int             `json:"count"`
	Traces []*obs.TraceDoc `json:"traces"`
}

// LoadWindowDoc is one trailing-window view of a pool's rolling load
// signals: raw totals over the window plus the derived rates the
// adaptive policies steer by. Within any single doc the partition
// ExactHits+WindowHits+SkeletonHits+Deduped <= Queries holds (the
// load ring's feed/read ordering guarantees it even mid-rotation).
type LoadWindowDoc struct {
	// WindowSec is the trailing span this view covers (10, 60, 300).
	WindowSec int `json:"window_sec"`

	// Raw totals over the window.
	Queries        int64 `json:"queries"`
	ExactHits      int64 `json:"exact_hits"`
	WindowHits     int64 `json:"window_hits"`
	SkeletonHits   int64 `json:"skeleton_hits"`
	Deduped        int64 `json:"deduped"`
	SharedAnswers  int64 `json:"shared_answers"`
	EngineSearches int64 `json:"engine_searches"`
	Flushes        int64 `json:"flushes"`
	FlushedQueries int64 `json:"flushed_queries"`

	// Derived rates (0 when the denominator is 0).
	ArrivalPerSec    float64 `json:"arrival_per_sec"`    // Queries / WindowSec
	ExactHitRate     float64 `json:"exact_hit_rate"`     // ExactHits / Queries
	WindowHitRate    float64 `json:"window_hit_rate"`    // WindowHits / Queries
	SkeletonHitRate  float64 `json:"skeleton_hit_rate"`  // SkeletonHits / Queries
	Shareability     float64 `json:"shareability"`       // (Deduped+SharedAnswers) / Queries
	SearchesPerQuery float64 `json:"searches_per_query"` // EngineSearches / Queries
	// HoldUtilization is actual hold time over configured hold time
	// across the window's coalescer flushes: 1.0 means every waiter
	// sat out the full hold; well under 1.0 means flushes fire early
	// (maxGroup) or singletons dominate.
	HoldUtilization float64 `json:"hold_utilization"`
	// FlushFanout is FlushedQueries / Flushes — mean coalesced group
	// size, the coalescer's grouping-rate health metric.
	FlushFanout float64 `json:"flush_fanout"`

	// Decision-provenance tallies over the window, keyed by the
	// obs.Reason vocabulary. Omitted when empty.
	MissReasons map[string]int64 `json:"miss_reasons,omitempty"`
	SoloReasons map[string]int64 `json:"solo_reasons,omitempty"`
}

// LoadzResponse is the body of GET /loadz: per venue, per method, one
// LoadWindowDoc per trailing window (10s, 1m, 5m — WindowsSec, in
// order). All windows of one venue/method come from a single pass over
// that pool's ring, so they are mutually consistent.
type LoadzResponse struct {
	WindowsSec []int                                 `json:"windows_sec"`
	Venues     map[string]map[string][]LoadWindowDoc `json:"venues"`
}

// CachezResponse is the body of GET /cachez: per venue and method, the
// cache-introspection view — exact-cache and window-store occupancy vs
// capacity with eviction counters, per-OD-pair window counts and day
// coverage, the space-saving top-K pair table, and the per-search
// engine-effort histograms. Each venue/method doc is gathered in one
// pass ordered so its invariants hold under racing traffic (top-K
// before the query counter; see CacheMethodDoc.Queries).
type CachezResponse struct {
	Venues map[string]map[string]CacheMethodDoc `json:"venues"`
}

// CacheMethodDoc is one (venue, method) pool's cache introspection.
type CacheMethodDoc struct {
	Exact  CacheOccupancyDoc `json:"exact"`
	Window WindowStoreDoc    `json:"window"`
	// Skeleton is the door-to-door skeleton-family store's view; all
	// zero (and Pairs empty) when -skeleton-cache is off.
	Skeleton SkeletonStoreDoc `json:"skeleton"`
	// TopPairs is the space-saving heavy-hitter table, heaviest first.
	// Tallies are exact up to each row's ErrBound (obs.TopK).
	TopPairs []HotPairDoc `json:"top_pairs"`
	// PairCapacity is the top-K table's fixed slot budget.
	PairCapacity int `json:"pair_capacity"`
	// Queries is the pool's cumulative query counter, read after the
	// top-K snapshot: every TopPairs tally is <= Queries in any body,
	// even mid-traffic.
	Queries int64 `json:"queries"`
	// EngineEffort are the pool's per-search effort histograms.
	EngineEffort service.EffortSnapshot `json:"engine_effort"`
}

// CacheOccupancyDoc is the exact cache's occupancy and pressure.
// Entries <= Capacity in every body; Evictions counts entries shed by
// capacity pressure (not invalidation) and is monotone across
// schedule-update swaps.
type CacheOccupancyDoc struct {
	Entries   int64 `json:"entries"`
	Capacity  int64 `json:"capacity"`
	Evictions int64 `json:"evictions"`
}

// WindowStoreDoc is the validity-window store's occupancy, pressure
// and per-pair coverage map.
type WindowStoreDoc struct {
	Windows   int64 `json:"windows"`
	Capacity  int64 `json:"capacity"`
	Evictions int64 `json:"evictions"`
	// Pairs lists per-OD-pair window counts and day coverage, most
	// windows first, capped at maxWindowPairs rows; PairsTotal counts
	// all pairs before the cap so truncation is never silent.
	Pairs      []WindowPairDoc `json:"pairs,omitempty"`
	PairsTotal int             `json:"pairs_total"`
}

// SkeletonStoreDoc is the skeleton-family store's occupancy, pressure
// and per-pair coverage map. The store shares the window store's
// capacity value but its family budget is accounted independently, so
// Families <= Capacity in every body.
type SkeletonStoreDoc struct {
	Families  int64 `json:"families"`
	Capacity  int64 `json:"capacity"`
	Evictions int64 `json:"evictions"`
	// Pairs lists per-OD-pair family occupancy and day coverage, most
	// chains first, capped at maxWindowPairs rows; PairsTotal counts
	// all pairs before the cap so truncation is never silent.
	Pairs      []SkeletonPairDoc `json:"pairs,omitempty"`
	PairsTotal int               `json:"pairs_total"`
}

// SkeletonPairDoc is one OD pair's stored skeleton-family summary.
type SkeletonPairDoc struct {
	Src string `json:"src"`
	Tgt string `json:"tgt"`
	// Families counts the pair's slot families (disjoint departure
	// windows); Chains sums their entry-door skeleton chains.
	Families int `json:"families"`
	Chains   int `json:"chains"`
	// DayCoverage is the share of the 24h departure axis the pair's
	// families cover: summed family-window seconds / 86400. Family
	// windows of one pair are disjoint, so the value never exceeds 1.
	DayCoverage float64 `json:"day_coverage"`
}

// WindowPairDoc is one OD pair's stored-window summary.
type WindowPairDoc struct {
	Src string `json:"src"`
	Tgt string `json:"tgt"`
	// Families counts distinct endpoint (source point, target point,
	// speed) triples holding windows for the pair.
	Families int `json:"families"`
	Windows  int `json:"windows"`
	// DayCoverage is the mean share of the 24h departure axis the
	// pair's endpoint families can answer without an engine: summed
	// stored-window seconds / (Families * 86400). Windows within one
	// family are disjoint, so the value never exceeds 1.
	DayCoverage float64 `json:"day_coverage"`
}

// HotPairDoc is one row of the top-K pair table, partition IDs
// resolved to names.
type HotPairDoc struct {
	Src            string `json:"src"`
	Tgt            string `json:"tgt"`
	Queries        int64  `json:"queries"`
	ExactHits      int64  `json:"exact_hits"`
	WindowHits     int64  `json:"window_hits"`
	SkeletonHits   int64  `json:"skeleton_hits"`
	Deduped        int64  `json:"deduped"`
	EngineSearches int64  `json:"engine_searches"`
	// Effort is the summed frontier pops of the pair's dedicated
	// engine searches.
	Effort int64 `json:"effort"`
	// ErrBound is the space-saving overestimate bound: Queries exceeds
	// the pair's true count by at most this much (0 = exact).
	ErrBound      int64   `json:"err_bound"`
	ExactHitRate  float64 `json:"exact_hit_rate"`
	WindowHitRate float64 `json:"window_hit_rate"`
	// DayCoverage is the pair's window-store day coverage (see
	// WindowPairDoc), 0 when the window cache is off or holds nothing
	// for the pair.
	DayCoverage float64 `json:"day_coverage"`
}

// ErrorDoc is the structured error envelope every non-2xx response
// carries (and batch entries embed).
type ErrorDoc struct {
	// Code is one of bad_request, not_found, not_indoor, timeout,
	// too_large, conflict, internal.
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *ErrorDoc) Error() string { return e.Message }

func badRequest(format string, args ...any) *ErrorDoc {
	return &ErrorDoc{Code: "bad_request", Message: fmt.Sprintf(format, args...)}
}

// Method names on the wire.
const (
	methodSyn     = "syn"
	methodAsyn    = "asyn"
	methodStatic  = "static"
	methodWaiting = "waiting"
)

// parseMethod resolves a wire method name; empty means asyn. waiting
// is valid only where allowWaiting (it has no pooled engine).
func parseMethod(s string, allowWaiting bool) (core.Method, bool, *ErrorDoc) {
	switch s {
	case methodSyn:
		return core.MethodSyn, false, nil
	case methodAsyn, "":
		return core.MethodAsyn, false, nil
	case methodStatic:
		return core.MethodStatic, false, nil
	case methodWaiting:
		if !allowWaiting {
			return 0, false, badRequest("method %q has no pooled engine and is only available for single route requests", s)
		}
		return 0, true, nil
	default:
		return 0, false, badRequest("unknown method %q (want syn, asyn, static or waiting)", s)
	}
}

// methodName renders a pooled method's wire name.
func methodName(m core.Method) string {
	switch m {
	case core.MethodSyn:
		return methodSyn
	case core.MethodAsyn:
		return methodAsyn
	case core.MethodStatic:
		return methodStatic
	}
	return m.String()
}

// ParsePoint reads "x,y,floor" (the cmd/itspq flag syntax), used by the
// profile endpoint's query parameters.
func ParsePoint(s string) (geom.Point, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		return geom.Point{}, fmt.Errorf("want x,y,floor, got %q", s)
	}
	x, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	y, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return geom.Point{}, err
	}
	floor, err := strconv.Atoi(strings.TrimSpace(parts[2]))
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Pt(x, y, floor), nil
}

// parseUpdates resolves a wire schedule-update map (door names to ATI
// lists) against the venue model.
func parseUpdates(mv *model.Venue, updates map[string][]string) (map[model.DoorID]temporal.Schedule, *ErrorDoc) {
	out := make(map[model.DoorID]temporal.Schedule, len(updates))
	for door, atis := range updates {
		id, ok := mv.DoorByName(door)
		if !ok {
			return nil, badRequest("unknown door %q", door)
		}
		sched, errDoc := parseSchedule(door, atis)
		if errDoc != nil {
			return nil, errDoc
		}
		out[id] = sched
	}
	return out, nil
}

// parseSchedule converts one wire ATI list to a schedule: nil = always
// open (the WithSchedules convention), empty = always closed.
func parseSchedule(door string, atis []string) (temporal.Schedule, *ErrorDoc) {
	if atis == nil {
		return nil, nil
	}
	ivs := make([]temporal.Interval, 0, len(atis))
	for _, s := range atis {
		iv, err := temporal.ParseInterval(s)
		if err != nil {
			return nil, badRequest("door %q: bad ATI %q: %v", door, s, err)
		}
		ivs = append(ivs, iv)
	}
	sched, err := temporal.NewSchedule(ivs...)
	if err != nil {
		return nil, badRequest("door %q: %v", door, err)
	}
	return sched, nil
}
